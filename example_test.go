package softcell_test

import (
	"fmt"
	"log"

	softcell "repro"
	"repro/internal/packet"
	"repro/internal/policy"
)

// Example runs the quickstart flow end to end: attach a subscriber, send a
// packet to the Internet through the policy's middlebox chain, and deliver
// the reply back to the device's permanent address.
func Example() {
	net, err := softcell.Example()
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Ctrl.RegisterSubscriber("alice", policy.Attributes{Provider: "A"}); err != nil {
		log.Fatal(err)
	}
	ue, err := net.Attach("alice", 0)
	if err != nil {
		log.Fatal(err)
	}
	p := &softcell.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(93, 184, 216, 34),
		SrcPort: 44123, DstPort: 443, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendUpstream(0, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("upstream:", res.Disposition)
	reply := &softcell.Packet{
		Src: p.Dst, Dst: p.Src, SrcPort: p.DstPort, DstPort: p.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64,
	}
	dres, err := net.SendDownstream(reply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("downstream:", dres.Disposition, "to", reply.Dst == ue.PermIP)
	// Output:
	// upstream: exited
	// downstream: delivered to true
}
