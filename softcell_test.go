package softcell_test

import (
	"testing"

	softcell "repro"
	"repro/internal/packet"
	"repro/internal/policy"
)

func TestExampleNetworkEndToEnd(t *testing.T) {
	net, err := softcell.Example()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Ctrl.RegisterSubscriber("alice", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		t.Fatal(err)
	}
	ue, err := net.Attach("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &softcell.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(93, 184, 216, 34),
		SrcPort: 44000, DstPort: 443, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendUpstream(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != softcell.ExitedNet {
		t.Fatalf("disposition = %s", res.Disposition)
	}
	reply := &softcell.Packet{
		Src: p.Dst, Dst: p.Src, SrcPort: p.DstPort, DstPort: p.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64,
	}
	dres, err := net.SendDownstream(reply)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Disposition != softcell.Delivered || reply.Dst != ue.PermIP {
		t.Fatalf("reply: %s to %s", dres.Disposition, reply.Dst)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := softcell.New(softcell.Options{}); err == nil {
		t.Fatal("missing topology should fail")
	}
	g, err := softcell.GenerateTopology(4, 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := softcell.New(softcell.Options{Topology: g.Topology, Gateway: g.GatewayID}); err == nil {
		t.Fatal("missing policy should fail")
	}
}

func TestGeneratedTopologyNetwork(t *testing.T) {
	g, err := softcell.GenerateTopology(4, 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := softcell.New(softcell.Options{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   policy.ExampleCarrierPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = net.Ctrl.RegisterSubscriber("u", policy.Attributes{Provider: "A"})
	ue, err := net.Attach("u", 42)
	if err != nil {
		t.Fatal(err)
	}
	p := &softcell.Packet{Src: ue.PermIP, Dst: packet.AddrFrom4(1, 1, 1, 1),
		SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64}
	res, err := net.SendUpstream(42, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != softcell.ExitedNet {
		t.Fatalf("disposition = %s at node %d", res.Disposition, res.Last)
	}
}

func TestStandardMappingsInverse(t *testing.T) {
	types := softcell.StandardMBTypes()
	funcs := softcell.StandardMBFuncs()
	if len(types) != len(funcs) {
		t.Fatal("mapping sizes differ")
	}
	for fn, typ := range types {
		if funcs[typ] != fn {
			t.Fatalf("mapping not inverse at %s", fn)
		}
	}
}
