// softcell-workload regenerates §6.1 / Fig. 6: the LTE control-plane
// workload characteristics, from the synthetic generator that substitutes
// for the paper's proprietary 1 TB trace (see DESIGN.md).
//
// Usage:
//
//	softcell-workload                  # full day, 1500 stations (paper scale)
//	softcell-workload -seconds 7200    # two-hour window
//	softcell-workload -cdf arrivals    # also dump a plottable CDF series
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		stations = flag.Int("stations", 1500, "base stations (paper: ~1500)")
		seconds  = flag.Int("seconds", 86400, "simulated seconds (default: one day)")
		seed     = flag.Int64("seed", 42, "random seed")
		cdf      = flag.String("cdf", "", "dump a CDF series: arrivals | handoffs | active | bearers")
		points   = flag.Int("points", 40, "points per dumped CDF")
	)
	flag.Parse()

	fmt.Printf("simulating %d stations for %d seconds (seed %d)...\n", *stations, *seconds, *seed)
	res := workload.Generate(workload.Params{Stations: *stations, Seconds: *seconds, Seed: *seed})
	tg := workload.Targets()

	tab := metrics.NewTable("figure", "quantity", "median", "p99", "p99.999", "paper p99.999")
	tab.AddRow("6(a)", "UE arrivals/s (network)",
		res.ArrivalsPerSec.Quantile(0.5), res.ArrivalsPerSec.Quantile(0.99),
		res.ArrivalsPerSec.Quantile(0.99999), tg.ArrivalsP99999)
	tab.AddRow("6(a)", "handoffs/s (network)",
		res.HandoffsPerSec.Quantile(0.5), res.HandoffsPerSec.Quantile(0.99),
		res.HandoffsPerSec.Quantile(0.99999), tg.HandoffsP99999)
	tab.AddRow("6(b)", "active UEs per station",
		res.ActiveUEsPerBS.Quantile(0.5), res.ActiveUEsPerBS.Quantile(0.99),
		res.ActiveUEsPerBS.Quantile(0.99999), tg.ActiveP99999)
	tab.AddRow("6(c)", "bearer arrivals/s per station",
		res.BearersPerBSSec.Quantile(0.5), res.BearersPerBSSec.Quantile(0.99),
		res.BearersPerBSSec.Quantile(0.99999), tg.BearersP99999)
	fmt.Print(tab)
	fmt.Printf("\ntotals: %d arrivals, %d handoffs, %d bearers; peak station population %d\n",
		res.TotalArrivals, res.TotalHandoffs, res.TotalBearers, res.PeakActive)

	if *cdf == "" {
		return
	}
	var c *metrics.CDF
	switch *cdf {
	case "arrivals":
		c = &res.ArrivalsPerSec
	case "handoffs":
		c = &res.HandoffsPerSec
	case "active":
		c = &res.ActiveUEsPerBS
	case "bearers":
		c = &res.BearersPerBSSec
	default:
		fmt.Fprintf(os.Stderr, "unknown cdf %q\n", *cdf)
		os.Exit(2)
	}
	fmt.Printf("\nCDF of %s (x, P[X<=x]):\n", *cdf)
	for _, pt := range c.Points(*points) {
		fmt.Printf("%.2f\t%.5f\n", pt.X, pt.Y)
	}
}
