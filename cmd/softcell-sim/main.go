// softcell-sim regenerates the paper's large-scale simulations (§6.3,
// Fig. 7) and the design-choice ablations.
//
// Usage:
//
//	softcell-sim -sweep clauses            # Fig. 7(a): n = 1000..8000, k=8, m=5
//	softcell-sim -sweep length             # Fig. 7(b): m = 4..8
//	softcell-sim -sweep size               # Fig. 7(c): k = 8..20
//	softcell-sim -sweep ablation           # DESIGN.md §5 ablations
//	softcell-sim -k 8 -n 1000 -m 5         # one point
//
// -scale divides every clause count (e.g. -scale 10 runs a 10x-reduced
// sweep in minutes; the slopes are the claim, not the intercepts). The
// paper-exact run is -scale 1 (the default), which needs tens of minutes
// for the largest points on one core.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/simexp"
)

func main() {
	var (
		sweep = flag.String("sweep", "", "clauses | length | size | ablation (empty: single point)")
		k     = flag.Int("k", 8, "topology parameter (even)")
		n     = flag.Int("n", 1000, "service policy clauses")
		m     = flag.Int("m", 5, "clause length (middleboxes per clause)")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Int("scale", 1, "divide clause counts by this factor")
		both  = flag.Bool("both-directions", false, "install and count upstream rules too (paper counts downstream)")
		all   = flag.Bool("count-access", false, "include software access switches in the summary")

		stride     = flag.Int("stride", 1, "install paths for the first 1/stride of stations at large k (size sweep)")
		strideFrom = flag.Int("stride-from", 14, "apply -stride from this k upward (size sweep)")
	)
	flag.Parse()

	tab := metrics.NewTable("point", "base stations", "paths", "max rules", "median", "mean", "tags", "seconds")
	report := func(label string, r simexp.Result) {
		tab.AddRow(label, r.BaseStations, r.PathsInstalled, r.Max, r.Median, r.Mean,
			r.TagsAllocated, r.Elapsed.Seconds())
	}
	opt := simexp.SweepOptions{Seed: *seed, Scale: *scale, Now: time.Now}

	var err error
	switch *sweep {
	case "":
		st := 1
		if *stride > 1 && *k >= *strideFrom {
			st = *stride
		}
		var r simexp.Result
		r, err = simexp.Run(simexp.Params{K: *k, N: *n / maxInt(*scale, 1), M: *m, Seed: *seed,
			StationStride: st, BothDirections: *both, CountAccessSwitches: *all, Now: time.Now})
		if err == nil {
			label := fmt.Sprintf("k=%d n=%d m=%d", *k, r.Params.N, *m)
			if st > 1 {
				label += fmt.Sprintf(" stride=%d", st)
			}
			report(label, r)
		}
	case "clauses":
		fmt.Println("Fig. 7(a): switch table size vs number of service policy clauses (k=8, m=5)")
		err = simexp.Fig7a(opt, func(r simexp.Result) {
			report(fmt.Sprintf("n=%d", r.Params.N**scale), r)
		})
	case "length":
		fmt.Println("Fig. 7(b): switch table size vs service policy clause length (k=8, n=1000)")
		err = simexp.Fig7b(opt, func(r simexp.Result) {
			report(fmt.Sprintf("m=%d", r.Params.M), r)
		})
	case "size":
		fmt.Println("Fig. 7(c): switch table size vs network size (n=1000, m=5)")
		if *stride > 1 {
			opt.StrideAt = map[int]int{}
			for _, kk := range simexp.Fig7cPoints {
				if kk >= *strideFrom {
					opt.StrideAt[kk] = *stride
				}
			}
		}
		err = simexp.Fig7c(opt, func(r simexp.Result) {
			label := fmt.Sprintf("k=%d (%d BS)", r.Params.K, r.BaseStations)
			if r.Params.StationStride > 1 {
				label += fmt.Sprintf(" stride=%d", r.Params.StationStride)
			}
			report(label, r)
		})
	case "ablation":
		fmt.Printf("DESIGN.md ablations at k=%d n=%d m=%d\n", *k, *n/maxInt(*scale, 1), *m)
		err = simexp.Ablations(simexp.Params{K: *k, N: *n / maxInt(*scale, 1), M: *m, Seed: *seed, Now: time.Now},
			func(r simexp.AblationResult) { report(r.Name, r.Result) })
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Print(tab)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
