// softcell-bench regenerates §6.2: the controller micro-benchmark (Cbench
// equivalent) and Table 2 (local-agent throughput vs classifier-cache hit
// ratio).
//
// Usage:
//
//	softcell-bench -mode controller        # throughput vs worker count
//	softcell-bench -mode agent             # Table 2
//	softcell-bench -mode shards            # sharded-dispatcher scaling sweep
//	softcell-bench -mode chaos             # seeded fault-injection soak
//	softcell-bench -mode blackout          # control-plane blackout continuity soak
//	softcell-bench -mode dataplane         # forwarding-plane packets/s sweep
//	softcell-bench -mode city              # city-scale 1M-UE memory/churn soak
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/cbench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// benchPoint is one row of the machine-readable controller benchmark.
type benchPoint struct {
	Workers        int     `json:"workers"`
	Requests       uint64  `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
}

// benchReport is the BENCH_controller.json schema: enough configuration to
// reproduce the run, plus the sweep rows.
type benchReport struct {
	Mode       string       `json:"mode"`
	Agents     int          `json:"agents"`
	OverWire   bool         `json:"over_wire"`
	DurationMS int64        `json:"duration_ms"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []benchPoint `json:"points"`
	// Mem is the controller's memory accounting after the last sweep point.
	Mem core.MemStats `json:"mem"`
	// Obs is the cumulative telemetry snapshot across every sweep point
	// (one registry spans the sweep; get-or-create registration merges the
	// points into the same series).
	Obs obs.Snapshot `json:"obs"`
	// Attribution is the span critical-path waterfall over the sweep's
	// sampled traces (bench.op roots with wire and controller children).
	Attribution obs.Attribution `json:"attribution"`
}

// dpPoint is one row of the forwarding-plane sweep.
type dpPoint struct {
	Path          string  `json:"path"` // "single" | "burst"
	Workers       int     `json:"workers"`
	Burst         int     `json:"burst"`
	Packets       uint64  `json:"packets"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	// SpeedupVsSingle is throughput relative to the 1-worker
	// single-packet baseline measured in the same sweep.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
}

// dpReport is the BENCH_dataplane.json schema.
type dpReport struct {
	Mode       string        `json:"mode"`
	Flows      int           `json:"flows"`
	DurationMS int64         `json:"duration_ms"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Points     []dpPoint     `json:"points"`
	Mem        core.MemStats `json:"mem"` // testbed controller, last point
	Obs        obs.Snapshot  `json:"obs"`
}

// chaosReport is the BENCH_chaos.json schema: the run's configuration,
// wall-clock throughput, fault/check tallies, and the registry snapshot.
type chaosReport struct {
	Seed         int64             `json:"seed"`
	Events       int               `json:"events"`
	EventsPerSec float64           `json:"events_per_sec"`
	Ops          int               `json:"ops"`
	OpErrors     int               `json:"op_errors"`
	Checks       int               `json:"checks"`
	Releases     int               `json:"releases"`
	Faults       chaos.FaultCounts `json:"faults"`
	Mem          core.MemStats     `json:"mem"` // fleet accounting at quiescence
	Obs          obs.Snapshot      `json:"obs"`
}

// blackoutReport is the BENCH_blackout.json schema: the continuity result,
// wall-clock forwarding throughput sustained while the control plane was
// dark, and the registry snapshot.
type blackoutReport struct {
	Seed                 int64                `json:"seed"`
	Result               chaos.BlackoutResult `json:"result"`
	WallMS               int64                `json:"wall_ms"`
	OutageForwardPerSec  float64              `json:"outage_forward_per_sec"`
	OutageNewFlowsPerSec float64              `json:"outage_new_flows_per_sec"`
	GOMAXPROCS           int                  `json:"gomaxprocs"`
	Obs                  obs.Snapshot         `json:"obs"`
	// Attribution is the span critical-path waterfall over the soak's
	// sampled control-plane traces.
	Attribution obs.Attribution `json:"attribution"`
}

// cityReport is the BENCH_city.json schema: the soak result plus the host
// shape and the telemetry snapshot.
type cityReport struct {
	cbench.CityResult
	GOMAXPROCS int          `json:"gomaxprocs"`
	Obs        obs.Snapshot `json:"obs"`
}

// writeJSON renders v indented and writes it to path.
func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

// emitAttr renders the span attribution a run collected: the critical-path
// waterfall to stdout when asked, and the raw attribution JSON to a file
// (the CI artifact make city-smoke uploads).
func emitAttr(a obs.Attribution, show bool, path string) {
	if show {
		fmt.Println()
		fmt.Print(a.Waterfall())
	}
	if path == "" {
		return
	}
	if err := os.WriteFile(path, append(a.JSON(), '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func main() {
	var (
		mode     = flag.String("mode", "controller", "controller | agent | shards | chaos | blackout | dataplane | city")
		flows    = flag.Int("flows", 64, "dataplane: warmed flows the generators cycle through")
		reps     = flag.Int("reps", 2, "dataplane: measurements per point (best is reported)")
		agents   = flag.Int("agents", 16, "emulated agent connections")
		duration = flag.Duration("duration", time.Second, "per-point measurement window")
		wire     = flag.Bool("wire", true, "drive the binary control protocol (false: in-process calls)")
		rtt      = flag.Duration("rtt", 500*time.Microsecond, "simulated controller RTT for agent cache misses")
		out      = flag.String("out", "", "with -mode shards: also write the sweep table to this file")
		jsonOut  = flag.String("json", "", "with -mode controller or chaos: write the report as JSON to this file")

		seed     = flag.Int64("seed", 1, "chaos, city: schedule/workload seed")
		events   = flag.Int("events", 2000, "chaos: schedule length in events")
		shards   = flag.Int("shards", 3, "chaos, city: control-plane shards (city default 4)")
		ues      = flag.Int("ues", 16, "chaos, city: subscriber population (city default 1000000)")

		stations = flag.Int("stations", 1536, "city: base stations (must be C·K³/4; 48 for the smoke point)")
		simSecs  = flag.Int("sim-seconds", 300, "city: minimum simulated workload seconds to soak")
		soakWall = flag.Duration("soak", 0, "city: keep soaking until this much wall clock has elapsed")
		legacyN  = flag.Int("legacy-sample", 100000, "city: UEs for the pre-compaction baseline emulation (negative skips)")
		cluster  = flag.Int("cluster", 4, "chaos, blackout: base stations per pod cluster")
		outage   = flag.Int("outage-ticks", 30000, "blackout: outage length in 1ms sim ticks")
		wireRate = flag.Float64("wire-fault-rate", 0.25, "chaos: per-frame fault probability (negative disables)")
		mixWork  = flag.Int("mix-workload", 0, "chaos: workload weight (0 = default)")
		mixSw    = flag.Int("mix-switch", 0, "chaos: switch fail/recover weight (0 = default)")
		mixShard = flag.Int("mix-shard-kill", 0, "chaos: shard-kill weight (0 = default)")
		mixAgent = flag.Int("mix-agent-restart", 0, "chaos: agent-restart weight (0 = default)")
		mixDet   = flag.Int("mix-detach", 0, "chaos: detach-mid-handoff weight (0 = default)")
		mixPol   = flag.Int("mix-policy", 0, "chaos: policy-churn weight (0 = default)")
		traceOut = flag.String("trace", "", "chaos: write the deterministic event trace to this file")

		traceSample = flag.Int("trace-sample", 0, "span tracing: sample one request in N (0 keeps the default, 1024)")
		attrShow    = flag.Bool("attr", false, "controller, blackout, city: print the span critical-path waterfall")
		attrJSON    = flag.String("attr-json", "", "controller, blackout, city: also write the span attribution as JSON to this file")
	)
	flag.Parse()
	// The chaos-calibrated -shards/-ues defaults are far too small for a
	// city soak; only explicit values override the city defaults.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	switch *mode {
	case "controller":
		fmt.Printf("controller throughput (Cbench equivalent): %d emulated agents, %v per point, GOMAXPROCS=%d\n",
			*agents, *duration, runtime.GOMAXPROCS(0))
		tab := metrics.NewTable("workers", "requests", "requests/s", "allocs/op")
		reg := obs.New()
		reg.SetClock(func() int64 { return time.Now().UnixNano() })
		if *traceSample > 0 {
			reg.SetSpanSampling(*traceSample)
		}
		report := benchReport{
			Mode: "controller", Agents: *agents, OverWire: *wire,
			DurationMS: duration.Milliseconds(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		for _, workers := range []int{1, 2, 4, 8, 15} {
			res, err := cbench.BenchController(cbench.ControllerOptions{
				Agents: *agents, Workers: workers, Duration: *duration, OverWire: *wire,
				Obs: reg,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			tab.AddRow(workers, res.Requests, res.PerSecond(), fmt.Sprintf("%.1f", res.AllocsPerOp))
			report.Points = append(report.Points, benchPoint{
				Workers: workers, Requests: res.Requests,
				RequestsPerSec: res.PerSecond(), AllocsPerOp: res.AllocsPerOp,
			})
			report.Mem = res.Mem
		}
		fmt.Print(tab)
		report.Attribution = obs.Attribute(reg.SpanRecords())
		emitAttr(report.Attribution, *attrShow, *attrJSON)
		if *jsonOut != "" {
			report.Obs = reg.Snapshot()
			writeJSON(*jsonOut, report)
		}
		fmt.Println("\npaper: 2.2M requests/s at 15 threads on a dual Xeon W5580; absolute")
		fmt.Println("numbers depend on the host, the shape (scaling with workers until the")
		fmt.Println("core count saturates) is the claim.")
	case "agent":
		fmt.Printf("local-agent throughput vs cache hit ratio (Table 2), controller RTT %v\n", *rtt)
		tab := metrics.NewTable("cache hit ratio", "flows", "flows/s")
		for _, row := range []struct {
			ratio float64
			flows int
		}{{1, 40000}, {0.99, 40000}, {0.9, 10000}, {0.8, 6000}, {0, 2000}} {
			res, err := cbench.BenchAgent(cbench.AgentOptions{
				HitRatio: row.ratio, Flows: row.flows, ControllerRTT: *rtt,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			tab.AddRow(fmt.Sprintf("%.0f%%", row.ratio*100), res.Requests, res.PerSecond())
		}
		fmt.Print(tab)
		fmt.Println("\npaper Table 2: throughput falls monotonically with the hit ratio; the")
		fmt.Println("worst case (0%: every flow asks the controller) still sustains ~1.8K/s.")
	case "shards":
		fmt.Printf("sharded-controller scaling: %d emulated agents, %v per point, GOMAXPROCS=%d\n",
			*agents, *duration, runtime.GOMAXPROCS(0))
		baseline, rows, err := cbench.ShardSweep(cbench.ControllerOptions{
			Agents: *agents, Duration: *duration,
		}, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		table := cbench.FormatSweep(baseline, rows)
		caveat := `
Reading the numbers: the baseline is the in-process single controller —
callers invoke the controller lock directly, with zero dispatch cost. The
sharded rows pay a bounded-queue round trip (two channel handoffs) per
request, which buys lock-free fan-out across shards. Speedup therefore
tracks available cores: with N cores, N shards run their controller locks
in parallel and the sweep crosses 1x and climbs; on a single-core host the
shards time-slice one CPU and the queue overhead is all that is visible
(speedup well below 1x, flat across widths). GOMAXPROCS above records
which regime this file was produced in.
`
		fmt.Print(table)
		fmt.Print(caveat)
		if *out != "" {
			report := fmt.Sprintf("sharded-controller scaling sweep\nagents=%d duration=%v GOMAXPROCS=%d\n\n%s%s",
				*agents, *duration, runtime.GOMAXPROCS(0), table, caveat)
			if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("\nwrote %s\n", *out)
		}
	case "dataplane":
		fmt.Printf("forwarding-plane throughput: %d warmed flows, %v per point, GOMAXPROCS=%d\n",
			*flows, *duration, runtime.GOMAXPROCS(0))
		tab := metrics.NewTable("path", "workers", "burst", "packets", "packets/s", "vs single", "allocs/pkt")
		reg := obs.New()
		reg.SetClock(func() int64 { return time.Now().UnixNano() })
		report := dpReport{
			Mode: "dataplane", Flows: *flows,
			DurationMS: duration.Milliseconds(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		run := func(path string, workers, burst int) {
			// Best of -reps: throughput points on a shared host are
			// noise-prone downward (GC, neighbours), never upward.
			var res cbench.DataplaneResult
			for r := 0; r < *reps || r == 0; r++ {
				one, err := cbench.BenchDataplane(cbench.DataplaneOptions{
					Flows: *flows, Burst: burst, Workers: workers, Duration: *duration, Obs: reg,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				if one.PerSecond() > res.PerSecond() {
					res = one
				}
			}
			pt := dpPoint{
				Path: path, Workers: workers, Burst: burst,
				Packets: res.Packets, PacketsPerSec: res.PerSecond(),
				AllocsPerPacket: res.AllocsPerPacket,
			}
			if len(report.Points) > 0 && report.Points[0].PacketsPerSec > 0 {
				pt.SpeedupVsSingle = pt.PacketsPerSec / report.Points[0].PacketsPerSec
			}
			report.Points = append(report.Points, pt)
			report.Mem = res.Mem
			vs := ""
			if pt.SpeedupVsSingle > 0 {
				vs = fmt.Sprintf("%.2fx", pt.SpeedupVsSingle)
			}
			tab.AddRow(path, workers, burst, res.Packets,
				fmt.Sprintf("%.0f", res.PerSecond()), vs, fmt.Sprintf("%.2f", res.AllocsPerPacket))
		}
		// The 1-worker single-packet walk is the baseline every other
		// point is normalised against.
		run("single", 1, 0)
		for _, burst := range []int{1, 8, 32, 128} {
			run("burst", 1, burst)
		}
		for _, workers := range []int{2, 4} {
			run("burst", workers, 32)
		}
		fmt.Print(tab)
		if *jsonOut != "" {
			report.Obs = reg.Snapshot()
			writeJSON(*jsonOut, report)
		}
		fmt.Println("\nthe claim is the shape: burst amortisation alone (1 worker) should")
		fmt.Println("clear 3x the per-packet walk at burst 32, and workers scale it further")
		fmt.Println("until the core count saturates — steady-state forwarding shares no locks.")
	case "chaos":
		var trace io.Writer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			defer f.Close()
			trace = f
		}
		fmt.Printf("chaos soak: seed=%d events=%d shards=%d ues=%d wire-fault-rate=%g\n",
			*seed, *events, *shards, *ues, *wireRate)
		reg := obs.New()
		start := time.Now()
		res, err := chaos.Run(chaos.Config{
			Seed:          *seed,
			Events:        *events,
			Shards:        *shards,
			UEs:           *ues,
			ClusterSize:   *cluster,
			WireFaultRate: *wireRate,
			Mix: chaos.Mix{
				Workload:         *mixWork,
				SwitchFault:      *mixSw,
				ShardKill:        *mixShard,
				AgentRestart:     *mixAgent,
				DetachMidHandoff: *mixDet,
				PolicyChurn:      *mixPol,
			},
			Trace: trace,
			Obs:   reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos: INVARIANT VIOLATION:", err)
			fmt.Fprintf(os.Stderr, "reproduce with: softcell-bench -mode chaos -seed %d -events %d -trace trace.log\n", *seed, *events)
			os.Exit(1)
		}
		tab := metrics.NewTable("fault", "count")
		tab.AddRow("switch fail", res.Faults.SwitchFail)
		tab.AddRow("switch recover", res.Faults.SwitchRecover)
		tab.AddRow("shard kill", res.Faults.ShardKill)
		tab.AddRow("agent restart", res.Faults.AgentRestart)
		tab.AddRow("detach mid-handoff", res.Faults.DetachMidHandoff)
		tab.AddRow("policy churn", res.Faults.PolicyChurn)
		tab.AddRow("wire frames faulted", fmt.Sprintf("%d/%d", res.Faults.WireFaulted, res.Faults.WireFrames))
		fmt.Print(tab)
		fmt.Printf("\n%d events, %d workload ops (%d errored under faults), %d invariant-checker passes, %d handoff releases\n",
			res.Events, res.Ops, res.OpErrors, res.Checks, res.Releases)
		fmt.Printf("final state: %d live shards, %d paths, %d rules, %d attached UEs, %d reservations\n",
			res.Final.Shards, res.Final.Paths, res.Final.Rules, res.Final.Attached, res.Final.Reservations)
		fmt.Println("every invariant held; two runs with the same seed write identical traces.")
		if *jsonOut != "" {
			wall := time.Since(start)
			rep := chaosReport{
				Seed: *seed, Events: res.Events, Ops: res.Ops,
				OpErrors: res.OpErrors, Checks: res.Checks, Releases: res.Releases,
				Faults: res.Faults, Mem: res.Mem, Obs: reg.Snapshot(),
			}
			if wall > 0 {
				rep.EventsPerSec = float64(res.Events) / wall.Seconds()
			}
			writeJSON(*jsonOut, rep)
		}
	case "blackout":
		var trace io.Writer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			defer f.Close()
			trace = f
		}
		cfg := chaos.BlackoutConfig{
			Seed:        *seed,
			OutageTicks: *outage,
			ClusterSize: *cluster,
			Trace:       trace,
		}
		if setFlags["shards"] {
			cfg.Shards = *shards
		}
		if setFlags["ues"] {
			cfg.UEs = *ues
		}
		reg := obs.New()
		if *traceSample > 0 {
			reg.SetSpanSampling(*traceSample)
		}
		cfg.Obs = reg
		fmt.Printf("blackout soak: seed=%d outage=%d sim-ms GOMAXPROCS=%d\n",
			*seed, *outage, runtime.GOMAXPROCS(0))
		start := time.Now()
		res, err := chaos.RunBlackout(cfg)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blackout: CONTINUITY VIOLATION:", err)
			fmt.Fprintf(os.Stderr, "reproduce with: softcell-bench -mode blackout -seed %d -outage-ticks %d -trace trace.log\n", *seed, *outage)
			os.Exit(1)
		}
		tab := metrics.NewTable("quantity", "value")
		tab.AddRow("stations / admitted UEs", fmt.Sprintf("%d / %d", res.Stations, res.Admitted))
		tab.AddRow("outage length", fmt.Sprintf("%d sim-ms", res.OutageTicks))
		tab.AddRow("probes while dark", res.OutageProbes)
		tab.AddRow("forwarded while dark", res.OutageForward)
		tab.AddRow("new flows while dark", res.OutageNewFlows)
		tab.AddRow("verdict flips", fmt.Sprintf("%d (invariant: 0)", res.VerdictFlips))
		tab.AddRow("policy churns injected", res.PolicyChurns)
		tab.AddRow("reconcile kept/replayed/torndown", fmt.Sprintf("%d / %d / %d", res.Kept, res.Replayed, res.TornDown))
		tab.AddRow("stale snapshots refused", res.StaleRejected)
		tab.AddRow("converged", res.Converged)
		fmt.Print(tab)
		fmt.Printf("\n%d probe packets forwarded on last-known-good state across a %d sim-ms\n",
			res.OutageForward, res.OutageTicks)
		fmt.Println("control-plane blackout with zero verdict flips; reconciliation converged.")
		attribution := obs.Attribute(reg.SpanRecords())
		emitAttr(attribution, *attrShow, *attrJSON)
		if *jsonOut != "" {
			rep := blackoutReport{
				Seed: *seed, Result: res, WallMS: wall.Milliseconds(),
				GOMAXPROCS: runtime.GOMAXPROCS(0), Obs: reg.Snapshot(),
				Attribution: attribution,
			}
			if wall > 0 {
				rep.OutageForwardPerSec = float64(res.OutageForward) / wall.Seconds()
				rep.OutageNewFlowsPerSec = float64(res.OutageNewFlows) / wall.Seconds()
			}
			writeJSON(*jsonOut, rep)
		}
	case "city":
		opts := cbench.CityOptions{
			Stations:     *stations,
			SimSeconds:   *simSecs,
			MinWall:      *soakWall,
			Seed:         *seed,
			LegacySample: *legacyN,
		}
		if setFlags["shards"] {
			opts.Shards = *shards
		}
		if setFlags["ues"] {
			opts.UEs = *ues
		}
		if err := cbench.ValidateCity(opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		reg := obs.New()
		reg.SetClock(func() int64 { return time.Now().UnixNano() })
		if *traceSample > 0 {
			reg.SetSpanSampling(*traceSample)
		}
		opts.Obs = reg
		fmt.Printf("city soak: stations=%d sim-seconds>=%d soak>=%v GOMAXPROCS=%d\n",
			opts.Stations, opts.SimSeconds, *soakWall, runtime.GOMAXPROCS(0))
		res, err := cbench.BenchCity(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		tab := metrics.NewTable("quantity", "value")
		tab.AddRow("subscribers registered", res.Registered)
		tab.AddRow("initially attached", res.InitialAttach)
		tab.AddRow("load phase", fmt.Sprintf("%.1fs (%.0f ops/s)", float64(res.LoadWallMS)/1000, res.LoadOpsPerSec))
		tab.AddRow("soak", fmt.Sprintf("%d sim-seconds in %.1fs wall", res.SimSeconds, float64(res.SoakWallMS)/1000))
		tab.AddRow("ops/s sustained", fmt.Sprintf("%.0f", res.OpsPerSec))
		tab.AddRow("arrivals/s", fmt.Sprintf("%.0f (paper 99.999-pct: 214)", res.ArrivalsPerSec))
		tab.AddRow("handoffs/s", fmt.Sprintf("%.0f (paper 99.999-pct: 280)", res.HandoffsPerSec))
		tab.AddRow("handoff p99", fmt.Sprintf("%.0fµs", res.HandoffP99NS/1000))
		tab.AddRow("rule table max/median", fmt.Sprintf("%d / %d", res.RuleTableMax, res.RuleTableMedian))
		tab.AddRow("live heap (fleet)", fmt.Sprintf("%.1f MB (%.1f B/subscriber)", float64(res.LiveHeapBytes)/1e6, res.BytesPerUE))
		if res.LegacyBytesPerUE > 0 {
			tab.AddRow("pre-compaction fleet", fmt.Sprintf("%.1f B/subscriber (%d shards × %.1f)",
				res.LegacyFleetPerUE, res.Shards, res.LegacyBytesPerUE))
			tab.AddRow("compaction ratio", fmt.Sprintf("%.2fx smaller", res.CompactionRatio))
		}
		tab.AddRow("attr intern hit rate", fmt.Sprintf("%.4f (%d sets live)", res.Mem.AttrHitRate(), res.Mem.InternedAttrs))
		tab.AddRow("GC", fmt.Sprintf("%d cycles, %.1fms total pause, %.2fms max", res.GCCount, res.GCPauseTotalMS, res.GCPauseMaxMS))
		fmt.Print(tab)
		fmt.Printf("\n%d op errors; post-soak cross-shard invariants held\n", res.OpErrors)
		if res.Attribution != nil {
			emitAttr(*res.Attribution, *attrShow, *attrJSON)
		}
		if *jsonOut != "" {
			writeJSON(*jsonOut, cityReport{
				CityResult: res, GOMAXPROCS: runtime.GOMAXPROCS(0), Obs: reg.Snapshot(),
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
