// softcell-scenario runs the randomized control-plane churn harness over a
// generated topology: Poisson attaches, flows, handoffs and detaches, with
// every live connection re-exercised end to end through the switch tables
// and middleboxes. Zero policy-consistency violations and zero broken flows
// is the pass condition (§5.1).
//
// Usage:
//
//	softcell-scenario -k 4 -ues 60 -duration 2m -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	softcell "repro"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		k        = flag.Int("k", 2, "generated topology parameter")
		ues      = flag.Int("ues", 24, "subscriber population")
		duration = flag.Duration("duration", time.Minute, "simulated time")
		seed     = flag.Int64("seed", 1, "schedule seed")
	)
	flag.Parse()

	g, err := softcell.GenerateTopology(*k, 10, 3, *seed)
	if err != nil {
		log.Fatal(err)
	}
	net, err := softcell.New(softcell.Options{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   policy.ExampleCarrierPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := scenario.New(net, scenario.Params{
		Seed: *seed, Duration: sim.Time(*duration), UEs: *ues,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %v of simulated churn over %d stations, %d subscribers...\n",
		*duration, len(g.Stations), *ues)
	stats, err := r.Run()
	if err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	fmt.Printf("attaches=%d detaches=%d handoffs=%d flows=%d probes=%d denied=%d\n",
		stats.Attaches, stats.Detaches, stats.Handoffs, stats.FlowsOpen, stats.Probes, stats.Denied)
	fmt.Printf("middleboxes: %d connections, %d policy-consistency violations\n",
		stats.Connections, stats.Violations)
	fmt.Printf("controller: %d path asks, %d installs (agents cached the rest)\n",
		stats.ControllerPathAsks, stats.ControllerMisses)
	if stats.Violations == 0 {
		fmt.Println("PASS: policy consistency held under the whole schedule")
	} else {
		log.Fatal("FAIL: consistency violations detected")
	}
}
