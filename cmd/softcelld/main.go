// softcelld runs a SoftCell controller serving the binary control channel
// over TCP, with the full data plane assembled in-process. It demonstrates
// the deployable control plane: external agents (or the bundled emulation)
// connect, attach subscribers and request policy paths over the wire.
//
// Usage:
//
//	softcelld -listen 127.0.0.1:9444                # serve and wait
//	softcelld -emulate-agents 8 -ues 200            # plus an emulated RAN
//	softcelld -shards 4                             # sharded control plane
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	softcell "repro"
	"repro/internal/ctrlproto"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/topo"
)

// serveDebug exposes the registry's introspection endpoints (/metrics,
// /debug/snapshot, /debug/events, /debug/pprof/) when addr is non-empty.
func serveDebug(addr string, reg *obs.Registry) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("softcelld: debug endpoints on http://%s (/metrics /debug/snapshot /debug/events /debug/pprof/)", ln.Addr())
	go func() {
		if err := http.Serve(ln, obs.DebugHandler(reg)); err != nil {
			log.Printf("debug: %v", err)
		}
	}()
}

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9444", "control channel listen address")
		k       = flag.Int("k", 4, "generated topology parameter")
		emulate = flag.Int("emulate-agents", 0, "spawn this many wire-connected emulated agents")
		ues     = flag.Int("ues", 100, "emulated subscribers to attach (with -emulate-agents)")
		shards  = flag.Int("shards", 0, "partition the control plane across this many controller shards (0: single controller with data plane)")
		debug   = flag.String("debug-addr", "", "serve Prometheus /metrics, pprof and trace-dump endpoints on this address (empty: disabled)")
		sample  = flag.Int("trace-sample", 0, "span tracing: sample one request in N (0 keeps the default, 1024; negative disables)")
	)
	flag.Parse()

	// The daemon is the wall-clock edge: the registry timestamps trace
	// events with real time here (sim/chaos runs inject virtual clocks).
	reg := obs.New()
	reg.SetClock(func() int64 { return time.Now().UnixNano() })
	if *sample != 0 {
		reg.SetSpanSampling(*sample)
	}

	g, err := softcell.GenerateTopology(*k, 10, 3, 1)
	if err != nil {
		log.Fatal(err)
	}

	if *shards > 0 {
		// Sharded mode serves the control plane only: the in-process data
		// plane assumes one controller owning every switch, so agents talk
		// to the dispatcher over the wire exactly as they would in a real
		// deployment.
		d, err := shard.New(shard.Config{
			Topology: g.Topology,
			Gateway:  g.GatewayID,
			Policy:   policy.ExampleCarrierPolicy(),
			MBTypes: map[string]topo.MBType{
				policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
			},
			Shards: *shards,
			Obs:    reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		srv := ctrlproto.NewServer(d)
		srv.Instrument(reg)
		serveDebug(*debug, reg)
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("softcelld: %d base stations across %d controller shards", len(g.Stations), *shards)
		log.Printf("softcelld: control channel on %s", ln.Addr())
		go func() {
			if err := srv.Serve(ln); err != nil {
				log.Printf("serve: %v", err)
			}
		}()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		log.Println("softcelld: shutting down")
		return
	}

	nw, err := softcell.New(softcell.Options{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   policy.ExampleCarrierPolicy(),
		Replicas: 2,
		Obs:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ag := range nw.Agents {
		ag.Instrument(reg)
	}
	srv := ctrlproto.NewServer(nw.Ctrl)
	srv.Instrument(reg)
	serveDebug(*debug, reg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("softcelld: %d base stations, %d switches, %d middlebox instances",
		len(g.Stations), len(g.Nodes), len(g.MBoxes))
	log.Printf("softcelld: control channel on %s", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("serve: %v", err)
		}
	}()

	if *emulate > 0 {
		for a := 0; a < *emulate; a++ {
			bs := packet.BSID(a % len(g.Stations))
			cl, err := ctrlproto.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			if err := cl.Hello(bs); err != nil {
				log.Fatal(err)
			}
			ag := nw.Agents[bs]
			cl.Reporter = ag.LocationReport
			defer cl.Close()
		}
		log.Printf("softcelld: %d emulated agents connected", *emulate)
		for i := 0; i < *ues; i++ {
			imsi := fmt.Sprintf("emu-%d", i)
			if err := nw.Ctrl.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"}); err != nil {
				log.Fatal(err)
			}
			if _, err := nw.Attach(imsi, packet.BSID(i%len(g.Stations))); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("softcelld: %d subscribers attached", *ues)
		// Warm one policy path per emulated station to show the data plane.
		web, _ := nw.Ctrl.Policy.Match(policy.Attributes{Provider: "A"}, policy.AppWeb)
		for a := 0; a < *emulate; a++ {
			if _, err := nw.Ctrl.RequestPath(packet.BSID(a%len(g.Stations)), web); err != nil {
				log.Fatal(err)
			}
		}
		st := nw.Ctrl.Installer.Stats()
		log.Printf("softcelld: %d policy paths, %d rules, %d tags installed",
			st.Paths, st.Rules, st.TagsAllocated)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("softcelld: shutting down")
}
