// softcell-lint loads and type-checks every package in the repository and
// runs the repo-specific invariant analyzers (lockcheck, lockorder,
// hotpath, atomicpub, determinism, layering, wiresafe, errdrop, obscheck)
// over them. It prints one diagnostic per line as "file:line: [rule]
// message" and exits non-zero when anything is found, so `make verify`
// can gate on it. Built on the standard library only; works offline.
//
// Usage:
//
//	softcell-lint [-list] [-escape] [-json file] [packages]
//
// The package argument is accepted for familiarity ("./..."), but the tool
// always analyzes the whole module containing the working directory: the
// invariants are whole-program properties (wire reachability, layering).
//
// -escape runs `go build -gcflags=-m ./...` and feeds the compiler's
// escape-analysis output to the hotpath analyzer, which cross-checks it
// against `// hotpath: no alloc` functions. -json writes the full machine-
// readable report (all findings, including suppressed ones, and every
// //lint:ignore directive) to the given file.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	escape := flag.Bool("escape", false, "cross-check hotpath annotations against go build -gcflags=-m")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "softcell-lint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, "repro")
	prog, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "softcell-lint:", err)
		os.Exit(2)
	}
	rules := lint.DefaultRules()
	if *escape {
		diags, err := compilerEscapes(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "softcell-lint: -escape:", err)
			os.Exit(2)
		}
		rules.Escapes = diags
	}
	diags, report := lint.RunReport(prog, rules, lint.Analyzers())
	if *jsonPath != "" {
		report.Module = "repro"
		report.Relativize(root)
		data, err := report.JSON()
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "softcell-lint: -json:", err)
			os.Exit(2)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		wd = "" // diagnostics fall back to absolute paths
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, d.Pos.Line, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "softcell-lint: %d finding(s) in %d packages\n", len(diags), len(prog.Pkgs))
		os.Exit(1)
	}
}

// compilerEscapes runs the compiler's escape analysis over the module and
// parses its diagnostics. -count=1 style cache-busting is unnecessary:
// -gcflags applies to every package, so the build runs uncached anyway.
func compilerEscapes(root string) ([]lint.EscapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	return lint.ParseEscapes(root, out), nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
