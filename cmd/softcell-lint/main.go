// softcell-lint loads and type-checks every package in the repository and
// runs the repo-specific invariant analyzers (lockcheck, determinism,
// layering, wiresafe, errdrop) over them. It prints one diagnostic per
// line as "file:line: [rule] message" and exits non-zero when anything is
// found, so `make verify` can gate on it. Built on the standard library
// only; works offline.
//
// Usage:
//
//	softcell-lint [-list] [packages]
//
// The package argument is accepted for familiarity ("./..."), but the tool
// always analyzes the whole module containing the working directory: the
// invariants are whole-program properties (wire reachability, layering).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "softcell-lint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, "repro")
	prog, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "softcell-lint:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, lint.DefaultRules(), lint.Analyzers())
	wd, err := os.Getwd()
	if err != nil {
		wd = "" // diagnostics fall back to absolute paths
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, d.Pos.Line, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "softcell-lint: %d finding(s) in %d packages\n", len(diags), len(prog.Pkgs))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
