package softcell

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/mbox"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// Re-exported names so library users work with one import. The internal
// packages remain the implementation; these aliases are the public surface.
type (
	// Network is a fully assembled SoftCell deployment: controller,
	// programmed switches, middlebox instances, local agents, tunnels.
	Network = dataplane.Network
	// WalkResult reports a packet's end-to-end journey.
	WalkResult = dataplane.WalkResult
	// UE is a device's controller-side record.
	UE = core.UE
	// HandoffResult reports a completed UE move.
	HandoffResult = core.HandoffResult
	// Packet is the data-plane unit.
	Packet = packet.Packet
	// Addr is an IPv4 address in host order.
	Addr = packet.Addr
	// Plan is the carrier's LocIP/tag layout (paper Fig. 4).
	Plan = packet.Plan
	// Policy is a prioritised service policy (paper Table 1).
	Policy = policy.Policy
	// Attributes describe one subscriber.
	Attributes = policy.Attributes
	// Topology is the core network graph.
	Topology = topo.Topology
	// Generated is a synthetic §6.3 topology.
	Generated = topo.Generated
)

// Walk dispositions, re-exported.
const (
	Delivered = dataplane.Delivered
	ExitedNet = dataplane.ExitedNet
	DroppedAt = dataplane.DroppedAt
)

// DefaultPlan is the library's default address layout.
var DefaultPlan = packet.DefaultPlan

// Options configure New. Topology, Gateway and Policy are required; the
// middlebox maps default to the standard function set when the topology's
// middlebox types are 0..4 (firewall, transcoder, echo-cancel, ids, nat).
type Options struct {
	Topology *topo.Topology
	Gateway  topo.NodeID
	Policy   *policy.Policy

	// MBTypes maps policy function names to topology middlebox types;
	// MBFuncs is the inverse for instantiation. Both default to the
	// standard mapping below.
	MBTypes map[string]topo.MBType
	MBFuncs map[topo.MBType]string

	// Plan defaults to DefaultPlan; Replicas to 1.
	Plan     packet.Plan
	Replicas int

	// NATPool enables the gateway NAT (§4.1) when non-zero.
	NATPool packet.Prefix

	// Install passes Algorithm 1 options through (ablations, bounds).
	Install core.InstallerOptions

	// Obs instruments the controller's hot paths on this registry (nil:
	// no telemetry).
	Obs *obs.Registry
}

// StandardMBTypes is the default function-name-to-type mapping.
func StandardMBTypes() map[string]topo.MBType {
	return map[string]topo.MBType{
		policy.MBFirewall:   0,
		policy.MBTranscoder: 1,
		policy.MBEchoCancel: 2,
		policy.MBIDS:        3,
		policy.MBNAT:        4,
	}
}

// StandardMBFuncs is the inverse of StandardMBTypes.
func StandardMBFuncs() map[topo.MBType]string {
	out := make(map[topo.MBType]string)
	for fn, typ := range StandardMBTypes() {
		out[typ] = fn
	}
	return out
}

// New assembles a complete SoftCell network: central controller (with its
// replicated store), Algorithm 1 installer, one programmed switch per node,
// live middlebox instances, and a local agent per base station.
func New(opts Options) (*Network, error) {
	if opts.Topology == nil {
		return nil, fmt.Errorf("softcell: Options.Topology is required")
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("softcell: Options.Policy is required")
	}
	if opts.MBTypes == nil {
		opts.MBTypes = StandardMBTypes()
	}
	if opts.MBFuncs == nil {
		opts.MBFuncs = StandardMBFuncs()
	}
	ctrl, err := core.NewController(opts.Topology, core.ControllerConfig{
		Plan:     opts.Plan,
		Gateway:  opts.Gateway,
		Policy:   opts.Policy,
		MBTypes:  opts.MBTypes,
		Replicas: opts.Replicas,
		Install:  opts.Install,
		Obs:      opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	natPool := opts.NATPool
	registryPool := natPool
	if registryPool == (packet.Prefix{}) {
		registryPool = packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24)
	}
	reg := mbox.NewRegistry(ctrl.Plan(), registryPool)
	return dataplane.New(ctrl, dataplane.Config{
		Registry: reg,
		MBFuncs:  opts.MBFuncs,
		NATPool:  natPool,
	})
}

// GenerateTopology builds the paper's §6.3 three-layer synthetic topology
// (k pods, rings of clusterSize stations, k middlebox types, 10k³/4 base
// stations for clusterSize=10).
func GenerateTopology(k, clusterSize, mbTypes int, seed int64) (*Generated, error) {
	return topo.Generate(topo.GenParams{K: k, ClusterSize: clusterSize, MBTypes: mbTypes, Seed: seed})
}

// Example builds a small ready-to-use deployment: the Fig. 2/3-style
// network (one gateway, three core switches, four stations) running the
// Table 1 carrier policy with a firewall, two transcoders and an echo
// canceller. It is what the quickstart example and the end-to-end benches
// use.
func Example() (*Network, error) {
	t := topo.New()
	gw := t.AddNode(topo.Gateway, "gw")
	cs1 := t.AddNode(topo.Core, "cs1")
	cs2 := t.AddNode(topo.Core, "cs2")
	cs3 := t.AddNode(topo.Core, "cs3")
	var access [4]topo.NodeID
	for i := range access {
		access[i] = t.AddNode(topo.Access, fmt.Sprintf("as%d", i))
		if err := t.AddBaseStation(packet.BSID(i), access[i]); err != nil {
			return nil, err
		}
	}
	links := [][2]topo.NodeID{
		{gw, cs1}, {cs1, cs2}, {cs2, cs3},
		{cs2, access[0]}, {cs2, access[1]}, {cs3, access[2]}, {cs3, access[3]},
	}
	for _, l := range links {
		if err := t.Connect(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	for _, m := range []struct {
		typ topo.MBType
		sw  topo.NodeID
	}{{0, cs1}, {1, cs2}, {1, cs3}, {2, cs1}} {
		if _, err := t.AttachMiddlebox(m.typ, m.sw); err != nil {
			return nil, err
		}
	}
	return New(Options{
		Topology: t,
		Gateway:  gw,
		Policy:   policy.ExampleCarrierPolicy(),
	})
}
