// Quickstart: build the paper's Fig. 2-style network, attach a subscriber,
// and push a web flow out to the Internet and back. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	softcell "repro"
	"repro/internal/packet"
	"repro/internal/policy"
)

func main() {
	// A ready-made small deployment: gateway, three core switches, four
	// base stations, firewall + transcoders + echo canceller, running the
	// Table 1 carrier policy.
	net, err := softcell.Example()
	if err != nil {
		log.Fatal(err)
	}

	// The carrier's subscriber database (HSS): alice is a home subscriber.
	if err := net.Ctrl.RegisterSubscriber("alice", policy.Attributes{
		Provider: "A", Plan: "silver", DeviceType: "phone",
	}); err != nil {
		log.Fatal(err)
	}

	// Alice's phone attaches at base station 0: the controller assigns a
	// permanent IP and a location-dependent address (LocIP), and pushes the
	// compiled packet classifiers to the station's local agent.
	ue, err := net.Attach("alice", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice attached: permanent IP %s, LocIP %s (base station %d, UE id %d)\n",
		ue.PermIP, ue.LocIP, ue.BS, ue.UEID)

	// Alice opens an HTTPS connection. The access switch misses, punts to
	// the local agent, which classifies the flow, gets a policy tag, and
	// installs the microflow pair; the packet then traverses the firewall
	// and exits at the gateway.
	p := &softcell.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(93, 184, 216, 34),
		SrcPort: 44123, DstPort: 443, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendUpstream(0, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upstream: %s after %d hops\n", res.Disposition, len(res.Hops))
	tag, eph := net.Ctrl.Plan().SplitPort(p.SrcPort)
	fmt.Printf("  exit header: src=%s sport=%d (policy tag %d, ephemeral %d) — the\n",
		p.Src, p.SrcPort, tag, eph)
	fmt.Println("  classification is embedded in the header (paper §4.1, Fig. 4), so the")
	fmt.Println("  gateway needs no per-flow state for the return direction.")

	// The server replies to exactly what it saw. The gateway forwards on
	// (destination LocIP, tag) alone; the access switch restores alice's
	// permanent address.
	reply := &softcell.Packet{
		Src: p.Dst, Dst: p.Src, SrcPort: p.DstPort, DstPort: p.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64, Payload: []byte("hello alice"),
	}
	dres, err := net.SendDownstream(reply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downstream: %s, restored to %s:%d\n", dres.Disposition, reply.Dst, reply.DstPort)

	// Observability: what did the control plane do?
	st := net.Ctrl.Installer.Stats()
	ag := net.Agents[0].Stats()
	fmt.Printf("\ncontrol plane: %d policy path(s) installed, %d TCAM rules, %d tag(s)\n",
		st.Paths, st.Rules, st.TagsAllocated)
	fmt.Printf("local agent:   %d packet-in(s), %d cache hit(s), %d controller ask(s), %d microflows\n",
		ag.PacketIns, ag.CacheHits, ag.CacheMiss, ag.Microflows)
	viol, conns := net.MiddleboxStats()
	fmt.Printf("middleboxes:   %d connection(s), %d consistency violation(s)\n", conns, viol)
}
