// Mobility example: §5.1's policy consistency under handoff. A subscriber
// opens a video connection (stateful transcoder + firewall), moves to a base
// station served by a *different* transcoder instance, and the old
// connection keeps flowing through the old instance in both directions
// while new connections take the new path. Run with:
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	softcell "repro"
	"repro/internal/packet"
	"repro/internal/policy"
)

func main() {
	net, err := softcell.Example()
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Ctrl.RegisterSubscriber("vera", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		log.Fatal(err)
	}
	ue, err := net.Attach("vera", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vera attaches at base station 0: LocIP %s\n", ue.LocIP)

	// Open a video stream: firewall + transcoder (stateful: it builds codec
	// context from the setup packet).
	video := &softcell.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 9),
		SrcPort: 41000, DstPort: 554, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendUpstream(0, video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video flow opened (%s); exit header %s:%d\n", res.Disposition, video.Src, video.SrcPort)

	// Handoff to station 3 — the far side of the network, served by the
	// other transcoder instance.
	ho, err := net.Handoff("vera", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhandoff 0 -> 3: new LocIP %s; old LocIP %s stays reserved\n",
		ho.UE.LocIP, ho.OldLocIP)
	fmt.Printf("controller installed %d shortcut(s) so old-flow traffic branches to the\n",
		len(ho.Shortcuts))
	fmt.Println("new station AFTER its original middlebox sequence (paper Fig. 5)")

	// Downstream media on the OLD connection: addressed to the old LocIP,
	// still transcoded (payload halves), delivered at the NEW station.
	media := &softcell.Packet{
		Src: video.Dst, Dst: video.Src, SrcPort: video.DstPort, DstPort: video.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64, Payload: make([]byte, 1000),
	}
	dres, err := net.SendDownstream(media)
	if err != nil {
		log.Fatal(err)
	}
	st3, _ := net.T.Station(3)
	fmt.Printf("\nold flow downstream: %s at node %d (station 3's switch = %d)\n",
		dres.Disposition, dres.Last, st3.Access)
	fmt.Printf("  payload 1000 -> %d bytes: the SAME transcoder instance still owns the stream\n",
		len(media.Payload))

	// Upstream on the old connection from the new station: keeps the old
	// LocIP/tag and triangle-routes through the inter-station tunnel.
	up2 := &softcell.Packet{
		Src: ho.UE.PermIP, Dst: video.Dst, SrcPort: 41000, DstPort: 554,
		Proto: packet.ProtoTCP, TTL: 64,
	}
	ures, err := net.SendUpstream(3, up2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old flow upstream from station 3: %s, still sourced from %s\n",
		ures.Disposition, up2.Src)

	// A NEW video connection after the move uses the new LocIP and the
	// transcoder near station 3.
	nv := &softcell.Packet{
		Src: ho.UE.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 9),
		SrcPort: 41777, DstPort: 554, Proto: packet.ProtoTCP, TTL: 64,
	}
	nres, err := net.SendUpstream(3, nv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new flow after handoff: %s, sourced from the new LocIP %s\n",
		nres.Disposition, nv.Src)

	viol, conns := net.MiddleboxStats()
	fmt.Printf("\npolicy consistency: %d connections, %d violations\n", conns, viol)

	// Soft timeout: release the old address and tear the shortcuts down.
	net.Ctrl.ReleaseOldLocIP(ho.OldLocIP, ho.Shortcuts)
	if err := net.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("soft timeout expired: shortcuts removed, old LocIP released")
}
