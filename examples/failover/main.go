// Failover example: §5.2's control-plane failure handling. The controller's
// replicated store takes over on failure; UE locations — the only fast-
// changing state — are rebuilt by querying the local agents over the
// control channel; a local agent restart re-fetches its read-only state.
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"net"

	softcell "repro"
	"repro/internal/core"
	"repro/internal/ctrlproto"
	"repro/internal/packet"
	"repro/internal/policy"
)

func main() {
	nw, err := softcell.Example()
	if err != nil {
		log.Fatal(err)
	}

	// A real control channel: the controller serves the binary protocol
	// over TCP; each base station's agent connects as a client.
	srv := ctrlproto.NewServer(nw.Ctrl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Serve returns when the listener closes at process exit.
	//lint:ignore errdrop the server lives until process exit
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("controller serving the control channel on %s\n", ln.Addr())

	clients := map[packet.BSID]*ctrlproto.Client{}
	for bs := packet.BSID(0); bs < 4; bs++ {
		cl, err := ctrlproto.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.Hello(bs); err != nil {
			log.Fatal(err)
		}
		ag := nw.Agents[bs]
		cl.Reporter = ag.LocationReport // answers recovery queries
		clients[bs] = cl
	}

	// Attach a handful of subscribers through the wire protocol.
	for i := 0; i < 6; i++ {
		imsi := fmt.Sprintf("ue-%d", i)
		if err := nw.Ctrl.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"}); err != nil {
			log.Fatal(err)
		}
		bs := packet.BSID(i % 4)
		ue, cls, err := clients[bs].Attach(imsi, bs)
		if err != nil {
			log.Fatal(err)
		}
		if err := nw.Agents[bs].AdmitUE(ue, cls); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("6 subscribers attached over the wire")

	before, _ := nw.Ctrl.LookupUE("ue-3")

	// --- Controller failure ------------------------------------------------
	fmt.Println("\n*** primary controller store fails ***")
	newPrimary, err := nw.Ctrl.Store.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica %q promoted; slow state (policy, subscribers, paths) intact:\n", newPrimary.Name())
	fmt.Printf("  store keys: %d subscriber, %d ue, %d path\n",
		len(nw.Ctrl.Store.Keys("sub/")), len(nw.Ctrl.Store.Keys("ue/")), len(nw.Ctrl.Store.Keys("path/")))

	// UE locations are the fast state: rebuild them from the live agents.
	answered, err := srv.QueryLocations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("location recovery: %d agents answered the location query\n", answered)
	after, ok := nw.Ctrl.LookupUE("ue-3")
	if !ok || after.LocIP != before.LocIP {
		log.Fatalf("recovery mismatch: %+v vs %+v", after, before)
	}
	fmt.Printf("ue-3 recovered at base station %d with LocIP %s (unchanged)\n", after.BS, after.LocIP)

	// The recovered controller keeps serving: a brand-new attach works.
	if err := nw.Ctrl.RegisterSubscriber("late", policy.Attributes{Provider: "A"}); err != nil {
		log.Fatal(err)
	}
	ue, _, err := clients[1].Attach("late", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-failover attach: %s got LocIP %s\n", ue.IMSI, ue.LocIP)

	// --- Local agent failure ------------------------------------------------
	fmt.Println("\n*** local agent at station 0 restarts ***")
	nw.Agents[0].Restart()
	fmt.Printf("agent state after restart: %d UEs cached\n", nw.Agents[0].NumUEs())
	// The agent's state is read-only (§5.2): the controller simply pushes
	// it again for each of the station's UEs.
	restored := 0
	for i := 0; i < 6; i++ {
		imsi := fmt.Sprintf("ue-%d", i)
		rec, ok := nw.Ctrl.LookupUE(imsi)
		if !ok || rec.BS != 0 {
			continue
		}
		u2, cls, err := clients[0].Attach(imsi, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := nw.Agents[0].AdmitUE(u2, cls); err != nil {
			log.Fatal(err)
		}
		if u2.LocIP != rec.LocIP {
			log.Fatalf("re-push changed the LocIP: %s vs %s", u2.LocIP, rec.LocIP)
		}
		restored++
	}
	fmt.Printf("controller re-pushed state for %d UE(s); addresses unchanged\n", restored)
	fmt.Println("\nfailures handled: the impact was local and no data-plane state was lost")
	_ = core.AgentLocationReport{}
}
