// Policy example: the paper's Table 1 carrier policy in action — roamers,
// foreign denial, per-plan video transcoding, VoIP echo cancellation, M2M
// low latency — plus the multi-dimensional aggregation statistics that make
// it cheap. Run with:
//
//	go run ./examples/policy
package main

import (
	"fmt"
	"log"

	softcell "repro"
	"repro/internal/packet"
	"repro/internal/policy"
)

type subscriber struct {
	imsi string
	attr policy.Attributes
	bs   packet.BSID
}

type flow struct {
	who     string
	dstPort uint16
	label   string
}

func main() {
	net, err := softcell.Example()
	if err != nil {
		log.Fatal(err)
	}

	subs := []subscriber{
		{"alice-silver", policy.Attributes{Provider: "A", Plan: "silver"}, 0},
		{"bob-gold", policy.Attributes{Provider: "A", Plan: "gold"}, 1},
		{"roamer-b", policy.Attributes{Provider: "B"}, 2},
		{"intruder-c", policy.Attributes{Provider: "C"}, 2},
		{"fleet-42", policy.Attributes{Provider: "A", DeviceType: "m2m-fleet"}, 3},
	}
	for _, s := range subs {
		if err := net.Ctrl.RegisterSubscriber(s.imsi, s.attr); err != nil {
			log.Fatal(err)
		}
		if _, err := net.Attach(s.imsi, s.bs); err != nil {
			log.Fatal(err)
		}
	}
	where := map[string]packet.BSID{}
	for _, s := range subs {
		where[s.imsi] = s.bs
	}

	fmt.Println("Table 1 policy, clause by clause:")
	flows := []flow{
		{"roamer-b", 80, "roamer web (firewalled per the roaming agreement)"},
		{"intruder-c", 80, "foreign carrier C (clause 2: disallow)"},
		{"alice-silver", 554, "silver-plan video (firewall then transcoder)"},
		{"bob-gold", 554, "gold-plan video (firewall only: clause 3 predicate misses)"},
		{"alice-silver", 5060, "VoIP (firewall then echo canceller)"},
		{"fleet-42", 5684, "M2M fleet tracking (low-latency QoS class)"},
		{"bob-gold", 443, "plain web (default clause)"},
	}
	sport := uint16(42000)
	for _, f := range flows {
		ue, _ := net.Ctrl.LookupUE(f.who)
		sport++
		p := &softcell.Packet{
			Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 7),
			SrcPort: sport, DstPort: f.dstPort, Proto: packet.ProtoTCP, TTL: 64,
		}
		res, err := net.SendUpstream(where[f.who], p)
		if err != nil {
			log.Fatal(err)
		}
		var boxes []string
		for _, h := range res.Hops {
			if h.MB >= 0 {
				boxes = append(boxes, net.Boxes[h.MB].Func())
			}
		}
		fmt.Printf("  %-62s -> %-9s via %v\n", f.label, res.Disposition, boxes)
	}

	// The scalability story: rule counts per switch stay tiny because the
	// tables aggregate on tag, prefix and UE dimensions.
	fmt.Println("\nswitch TCAM occupancy after installing every policy path used above:")
	for i, sw := range net.Switches {
		if n := sw.NumRules(); n > 0 {
			fmt.Printf("  %-4s  %3d TCAM rules, %d microflows\n",
				net.T.Nodes[i].Name, n, sw.NumMicroflows())
		}
	}
	t1, t2, t3, mob := net.Ctrl.Installer.RuleTypeTotals()
	fmt.Printf("\nrule types (paper §7): %d tag+prefix (TCAM), %d tag-only (exact), %d location (LPM), %d mobility\n",
		t1, t2, t3, mob)
	st := net.Ctrl.Installer.Stats()
	fmt.Printf("%d policy paths share %d tags across %d total rules\n",
		st.Paths, st.TagsAllocated, st.Rules)
}
