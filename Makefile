GO ?= go

.PHONY: all build test race vet verify bench-shards clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the gate every change must pass.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench-shards regenerates the committed shard-scaling sweep.
bench-shards:
	$(GO) run ./cmd/softcell-bench -mode shards -duration 500ms -out results/bench_shards.txt

clean:
	$(GO) clean ./...
