GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet lint fuzz verify bench-shards clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the softcell-lint invariant checkers (DESIGN.md §9): lock
# discipline, determinism, layering, wire-safety, dropped errors.
lint:
	$(GO) run ./cmd/softcell-lint ./...

# fuzz gives each wire-codec fuzz target a short budget (the seed corpora
# under testdata/fuzz also run on every plain `go test`).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/ctrlproto
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/ctrlproto

# verify is the gate every change must pass.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/softcell-lint ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench-shards regenerates the committed shard-scaling sweep.
bench-shards:
	$(GO) run ./cmd/softcell-bench -mode shards -duration 500ms -out results/bench_shards.txt

clean:
	$(GO) clean ./...
