GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet lint fuzz verify bench bench-shards bench-dataplane bench-city city-smoke blackout-smoke profile clean chaos cover span-alloc-gate

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the softcell-lint invariant checkers (DESIGN.md §9): lock
# discipline and ordering, hot-path alloc/lock freedom (cross-checked
# against compiler escape analysis), atomic publication, determinism,
# layering, wire-safety, dropped errors. The machine-readable report
# (including suppressed findings and every //lint:ignore) lands in
# results/lint.json.
lint:
	$(GO) run ./cmd/softcell-lint -escape -json results/lint.json ./...

# fuzz gives each wire-codec fuzz target a short budget (the seed corpora
# under testdata/fuzz also run on every plain `go test`).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/ctrlproto
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/ctrlproto
	$(GO) test -run '^$$' -fuzz '^FuzzMatch$$' -fuzztime $(FUZZTIME) ./internal/switchsim
	$(GO) test -run '^$$' -fuzz '^FuzzBurstEquivalence$$' -fuzztime $(FUZZTIME) ./internal/fastpath

# chaos runs a long seeded fault-injection soak (DESIGN.md §11). The
# fixed-seed smoke run is part of tier-1 (`go test -race ./internal/chaos`
# inside verify); this target is the extended schedule.
chaos:
	$(GO) run ./cmd/softcell-bench -mode chaos -seed 1 -events 5000 \
		-json results/BENCH_chaos.json

# cover enforces the checked-in statement-coverage floor for the packages
# whose invariants the chaos harness leans on. Raise the baseline in
# results/coverage_baseline.txt when coverage grows; verify fails if a
# change drops below it.
cover:
	@for pkg in internal/core internal/fastpath internal/obs internal/shard; do \
		pct=$$($(GO) test -cover ./$$pkg | awk '{for (i=1;i<=NF;i++) if ($$i == "coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}'); \
		base=$$(awk -v p="repro/$$pkg" '$$1 == p {print $$2}' results/coverage_baseline.txt); \
		if [ -z "$$pct" ] || [ -z "$$base" ]; then echo "cover: no coverage or baseline for $$pkg"; exit 1; fi; \
		echo "coverage $$pkg: $$pct% (baseline $$base%)"; \
		if [ "$$(awk -v c="$$pct" -v b="$$base" 'BEGIN {print (c+0 >= b+0) ? 1 : 0}')" != "1" ]; then \
			echo "FAIL: $$pkg coverage $$pct% fell below the $$base% baseline"; exit 1; \
		fi; \
	done

# verify is the gate every change must pass. The city smoke at the end is
# the scaled-down §6.1 soak (48 stations, 20k UEs): it exercises the same
# workload generator, shard fan-out, and memory accounting as bench-city
# and fails on op errors or invariant violations.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/softcell-lint -escape -json results/lint.json ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) cover
	$(MAKE) span-alloc-gate
	$(MAKE) city-smoke
	$(MAKE) blackout-smoke

# span-alloc-gate pins the tracing tax on the unsampled hot path: the
# not-sampled span branch must stay at 0 allocs/op (DESIGN.md §16), on
# top of the hotpath lint annotations the lint step already cross-checks.
span-alloc-gate:
	@out=$$($(GO) test -run '^$$' -bench '^BenchmarkSpanNotSampled$$' -benchmem ./internal/obs); \
	echo "$$out"; \
	allocs=$$(echo "$$out" | awk '/BenchmarkSpanNotSampled/ {for (i=1;i<=NF;i++) if ($$i == "allocs/op") print $$(i-1)}'); \
	if [ -z "$$allocs" ]; then echo "span-alloc-gate: benchmark produced no allocs/op figure"; exit 1; fi; \
	if [ "$$allocs" != "0" ]; then echo "FAIL: not-sampled span path allocates ($$allocs allocs/op, want 0)"; exit 1; fi; \
	echo "span-alloc-gate: not-sampled span path is allocation free"

# city-smoke is bench-city shrunk to CI scale: same code path end to end,
# seconds instead of minutes. The report lands next to the full soak's so
# CI can archive it, along with the span critical-path attribution
# (sampled 1-in-64 so a short smoke still collects a real waterfall).
city-smoke:
	$(GO) run ./cmd/softcell-bench -mode city -stations 48 -ues 20000 -shards 2 \
		-sim-seconds 30 -legacy-sample 20000 -trace-sample 64 -attr \
		-attr-json results/ATTR_city_smoke.json -json results/BENCH_city_smoke.json

# blackout-smoke is the agent-survivability gate (DESIGN.md §15): the
# control plane goes dark for 30 sim-seconds under live traffic, and the
# run fails on any verdict flip, dropped microflow, accepted stale
# snapshot, or reconciliation divergence. The -race half of the same
# invariant runs in tier-1 as TestBlackoutContinuity; this target produces
# the CI artifact.
blackout-smoke:
	$(GO) run ./cmd/softcell-bench -mode blackout -seed 1 -outage-ticks 30000 \
		-json results/BENCH_blackout.json

# bench regenerates the committed controller sweep (§6.2): human-readable
# table on stdout, machine-readable results/BENCH_controller.json on disk.
bench:
	$(GO) run ./cmd/softcell-bench -mode controller -agents 16 -duration 1s \
		-json results/BENCH_controller.json | tee results/bench_controller.txt
	$(MAKE) bench-dataplane

# bench-shards regenerates the committed shard-scaling sweep.
bench-shards:
	$(GO) run ./cmd/softcell-bench -mode shards -duration 500ms -out results/bench_shards.txt

# bench-dataplane regenerates the committed forwarding-plane pps sweep
# (DESIGN.md §13): single-packet walk vs burst fast path across burst
# sizes and worker counts.
bench-dataplane:
	$(GO) run ./cmd/softcell-bench -mode dataplane -duration 1s \
		-json results/BENCH_dataplane.json | tee results/bench_dataplane.txt

# bench-city regenerates the committed city-scale soak (§6.1 at full
# width): 1536 base stations, 1M registered subscribers, a multi-minute
# sustained arrival/handoff/bearer schedule, and the memory-compaction
# report (live-heap bytes per UE vs the pre-compaction layout).
bench-city:
	$(GO) run ./cmd/softcell-bench -mode city -soak 3m \
		-json results/BENCH_city.json | tee results/bench_city.txt

# profile captures CPU and heap profiles of the controller hot path via the
# Go benchmarks (DESIGN.md §10). Inspect with `go tool pprof results/cpu.pprof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkRequestPath' -benchtime 2s \
		-cpuprofile results/cpu.pprof -memprofile results/mem.pprof \
		-o results/core.test ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkObsOverhead' -benchmem \
		-o results/obs.test ./internal/obs | tee results/bench_obs.txt

clean:
	$(GO) clean ./...
