GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet lint fuzz verify bench bench-shards profile clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the softcell-lint invariant checkers (DESIGN.md §9): lock
# discipline, determinism, layering, wire-safety, dropped errors.
lint:
	$(GO) run ./cmd/softcell-lint ./...

# fuzz gives each wire-codec fuzz target a short budget (the seed corpora
# under testdata/fuzz also run on every plain `go test`).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime $(FUZZTIME) ./internal/ctrlproto
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/ctrlproto

# verify is the gate every change must pass.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/softcell-lint ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench regenerates the committed controller sweep (§6.2): human-readable
# table on stdout, machine-readable results/BENCH_controller.json on disk.
bench:
	$(GO) run ./cmd/softcell-bench -mode controller -agents 16 -duration 1s \
		-json results/BENCH_controller.json | tee results/bench_controller.txt

# bench-shards regenerates the committed shard-scaling sweep.
bench-shards:
	$(GO) run ./cmd/softcell-bench -mode shards -duration 500ms -out results/bench_shards.txt

# profile captures CPU and heap profiles of the controller hot path via the
# Go benchmarks (DESIGN.md §10). Inspect with `go tool pprof results/cpu.pprof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkRequestPath' -benchtime 2s \
		-cpuprofile results/cpu.pprof -memprofile results/mem.pprof \
		-o results/core.test ./internal/core

clean:
	$(GO) clean ./...
