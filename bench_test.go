// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus the DESIGN.md §5 design-choice ablations. Each benchmark
// reports the figure's series values as custom metrics (ns/op is incidental
// for the figure-regeneration benches; read the reported metrics).
//
// The in-test sweeps are scaled down (documented per bench) so a laptop run
// finishes in minutes; cmd/softcell-sim, cmd/softcell-workload and
// cmd/softcell-bench run the paper-exact configurations.
package softcell_test

import (
	"fmt"
	"testing"
	"time"

	softcell "repro"
	"repro/internal/cbench"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/simexp"
	"repro/internal/workload"
)

// --- §6.1 / Fig. 6: LTE workload characteristics -------------------------

// benchWorkload runs the generator over a three-hour window around the
// evening peak at full station scale (the full-day run lives in
// cmd/softcell-workload).
func benchWorkload(b *testing.B) *workload.Result {
	b.Helper()
	var res *workload.Result
	for i := 0; i < b.N; i++ {
		res = workload.Generate(workload.Params{
			Stations: 1500, Seconds: 3 * 3600, StartSecond: 18*3600 + 1800, Seed: 42,
		})
	}
	return res
}

func BenchmarkFig6aNetworkEvents(b *testing.B) {
	res := benchWorkload(b)
	b.ReportMetric(res.ArrivalsPerSec.Quantile(0.99999), "arrivals-p99.999")
	b.ReportMetric(res.HandoffsPerSec.Quantile(0.99999), "handoffs-p99.999")
	b.ReportMetric(res.ArrivalsPerSec.Quantile(0.5), "arrivals-median")
}

func BenchmarkFig6bActiveUEs(b *testing.B) {
	res := benchWorkload(b)
	b.ReportMetric(res.ActiveUEsPerBS.Quantile(0.99999), "active-p99.999")
	b.ReportMetric(res.ActiveUEsPerBS.Quantile(0.5), "active-median")
}

func BenchmarkFig6cBearerArrivals(b *testing.B) {
	res := benchWorkload(b)
	b.ReportMetric(res.BearersPerBSSec.Quantile(0.99999), "bearers-p99.999")
	b.ReportMetric(res.BearersPerBSSec.Quantile(0.5), "bearers-median")
}

// --- §6.2: controller micro-benchmark -------------------------------------

// BenchmarkControllerThroughput is the paper's Cbench experiment: emulated
// agents streaming path requests. Sub-benchmarks sweep the worker
// dimension (the paper's thread count) for both the in-process request path
// and the full wire protocol.
func BenchmarkControllerThroughput(b *testing.B) {
	for _, wire := range []bool{false, true} {
		mode := "inproc"
		if wire {
			mode = "wire"
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					res, err := cbench.BenchController(cbench.ControllerOptions{
						Agents: 8, Workers: workers,
						Duration: 200 * time.Millisecond, OverWire: wire,
					})
					if err != nil {
						b.Fatal(err)
					}
					total += res.PerSecond()
				}
				b.ReportMetric(total/float64(b.N), "requests/s")
			})
		}
	}
}

// --- §6.2 Table 2: local agent throughput vs cache hit ratio --------------

func BenchmarkTable2LocalAgent(b *testing.B) {
	for _, row := range []struct {
		name  string
		ratio float64
		flows int
	}{
		{"hit=100%", 1.00, 20000},
		{"hit=99%", 0.99, 20000},
		{"hit=90%", 0.90, 8000},
		{"hit=80%", 0.80, 5000},
		{"hit=0%", 0.00, 1500},
	} {
		b.Run(row.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := cbench.BenchAgent(cbench.AgentOptions{
					HitRatio: row.ratio, Flows: row.flows,
				})
				if err != nil {
					b.Fatal(err)
				}
				total += res.PerSecond()
			}
			b.ReportMetric(total/float64(b.N), "flows/s")
		})
	}
}

// --- §6.3 / Fig. 7: large-scale rule-table simulations ---------------------

// figure7Point runs one simulation point and reports the figure's series.
func figure7Point(b *testing.B, p simexp.Params) {
	b.Helper()
	var last simexp.Result
	for i := 0; i < b.N; i++ {
		r, err := simexp.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Max), "max-rules")
	b.ReportMetric(float64(last.Median), "median-rules")
	b.ReportMetric(float64(last.TagsAllocated), "tags")
}

// BenchmarkFig7aPolicyClauses sweeps the clause count at 1/10 of the
// paper's n (the slope, not the intercept, is the claim); cmd/softcell-sim
// runs n up to 8000 exactly.
func BenchmarkFig7aPolicyClauses(b *testing.B) {
	for _, n := range simexp.Fig7aPoints {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			figure7Point(b, simexp.Params{K: 8, N: n / 10, M: 5, Seed: 1})
		})
	}
}

// BenchmarkFig7bPolicyLength sweeps the clause length at n=100 (1/10 scale).
func BenchmarkFig7bPolicyLength(b *testing.B) {
	for _, m := range simexp.Fig7bPoints {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			figure7Point(b, simexp.Params{K: 8, N: 100, M: m, Seed: 1})
		})
	}
}

// BenchmarkFig7cNetworkSize sweeps the network size at n=100, installing
// paths for a contiguous quarter of the stations for k >= 14 (keeping
// sibling-prefix aggregation intact in the covered region). Note the paper's
// monotone decrease needs the full n=1000 scale to show (results/fig7c.txt):
// at n=100 the location tables — whose size grows with k but not with n —
// dominate the median and mask it.
func BenchmarkFig7cNetworkSize(b *testing.B) {
	for _, k := range simexp.Fig7cPoints {
		stride := 1
		if k >= 14 {
			stride = 4
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			figure7Point(b, simexp.Params{K: k, N: 100, M: 5, Seed: 1, StationStride: stride})
		})
	}
}

// --- DESIGN.md §5 ablations ------------------------------------------------

func BenchmarkAblationFreshTag(b *testing.B) {
	figure7Point(b, simexp.Params{K: 8, N: 100, M: 5, Seed: 1, FreshTagPerPath: true})
}

func BenchmarkAblationNoPrefixAgg(b *testing.B) {
	figure7Point(b, simexp.Params{K: 8, N: 100, M: 5, Seed: 1, NoPrefixAggregation: true})
}

func BenchmarkAblationNoTagDefault(b *testing.B) {
	figure7Point(b, simexp.Params{K: 8, N: 100, M: 5, Seed: 1, NoTagDefault: true})
}

func BenchmarkAblationNoLocationRouting(b *testing.B) {
	figure7Point(b, simexp.Params{K: 8, N: 100, M: 5, Seed: 1, NoLocationRouting: true})
}

func BenchmarkAblationNoLocalAgent(b *testing.B) {
	// Table 2's architectural point: without the agent cache every flow
	// pays the controller round trip (hit ratio 0).
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := cbench.BenchAgent(cbench.AgentOptions{HitRatio: 0, Flows: 1000})
		if err != nil {
			b.Fatal(err)
		}
		total += res.PerSecond()
	}
	b.ReportMetric(total/float64(b.N), "flows/s")
}

// --- end-to-end data plane -------------------------------------------------

// BenchmarkDataplanePacketWalk measures per-packet forwarding cost through
// the assembled network (access microflow, three core switches, firewall,
// gateway exit).
func BenchmarkDataplanePacketWalk(b *testing.B) {
	net, err := softcell.Example()
	if err != nil {
		b.Fatal(err)
	}
	_ = net.Ctrl.RegisterSubscriber("bench", policy.Attributes{Provider: "A"})
	ue, err := net.Attach("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	warm := &softcell.Packet{Src: ue.PermIP, Dst: packet.AddrFrom4(1, 1, 1, 1),
		SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64}
	if _, err := net.SendUpstream(0, warm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &softcell.Packet{Src: ue.PermIP, Dst: packet.AddrFrom4(1, 1, 1, 1),
			SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64}
		if _, err := net.SendUpstream(0, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1Install measures raw policy-path installation
// throughput (plan + Algorithm 1) on the k=8 topology.
func BenchmarkAlgorithm1Install(b *testing.B) {
	r, err := simexp.Run(simexp.Params{K: 8, N: 50, M: 5, Seed: 1, Now: time.Now})
	if err != nil {
		b.Fatal(err)
	}
	perPath := r.Elapsed.Seconds() / float64(r.PathsInstalled)
	for i := 1; i < b.N; i++ {
		if r2, err := simexp.Run(simexp.Params{K: 8, N: 50, M: 5, Seed: 1, Now: time.Now}); err != nil {
			b.Fatal(err)
		} else {
			perPath = r2.Elapsed.Seconds() / float64(r2.PathsInstalled)
		}
	}
	b.ReportMetric(1/perPath, "paths/s")
}
