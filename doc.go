// Package softcell is a from-scratch reproduction of
//
//	SoftCell: Scalable and Flexible Cellular Core Network Architecture
//	Xin Jin, Li Erran Li, Laurent Vanbever, Jennifer Rexford
//	ACM CoNEXT 2013 — https://doi.org/10.1145/2535372.2535377
//
// as a production-quality Go library. It implements the paper's two core
// ideas — multi-dimensional aggregation of forwarding rules (policy tag ×
// base-station prefix × UE ID, Algorithm 1) and the asymmetric "smart access
// edge, dumb gateway edge" design — together with every substrate the paper
// evaluates on: an OpenFlow-style switch model, stateful middleboxes, a
// hierarchical cellular topology generator, local agents, a binary control
// channel, a replicated control store, mobility handling with policy
// consistency, a synthetic LTE workload, and the benchmark harnesses that
// regenerate each of the paper's tables and figures.
//
// The package itself is the facade: build a Network over any topology, load
// a service policy, attach UEs and send traffic; everything underneath lives
// in internal/ packages keyed by subsystem. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	net, _ := softcell.New(softcell.Options{
//	        Topology: g.Topology, Gateway: g.GatewayID,
//	        Policy:   policy.ExampleCarrierPolicy(), ...})
//	net.Ctrl.RegisterSubscriber("alice", policy.Attributes{Provider: "A"})
//	ue, _ := net.Attach("alice", 0)
//	res, _ := net.SendUpstream(0, pkt)
//
// See examples/quickstart for the runnable version.
package softcell
