package topo

import (
	"testing"

	"repro/internal/packet"
)

func lineTopo(t *testing.T, n int) *Topology {
	t.Helper()
	tp := New()
	prev := None
	for i := 0; i < n; i++ {
		kind := Core
		if i == 0 {
			kind = Access
		}
		if i == n-1 {
			kind = Gateway
		}
		id := tp.AddNode(kind, "")
		if prev != None {
			if err := tp.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return tp
}

func TestConnectErrors(t *testing.T) {
	tp := New()
	a := tp.AddNode(Core, "a")
	b := tp.AddNode(Core, "b")
	if err := tp.Connect(a, a); err == nil {
		t.Error("self link should fail")
	}
	if err := tp.Connect(a, 99); err == nil {
		t.Error("unknown node should fail")
	}
	if err := tp.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := tp.Connect(b, a); err == nil {
		t.Error("duplicate link should fail")
	}
	if tp.Links() != 1 {
		t.Errorf("Links = %d, want 1", tp.Links())
	}
}

func TestPortNumbering(t *testing.T) {
	tp := New()
	a := tp.AddNode(Core, "a")
	b := tp.AddNode(Core, "b")
	c := tp.AddNode(Core, "c")
	_ = tp.Connect(a, b)
	_ = tp.Connect(a, c)
	if p := tp.Nodes[a].PortTo(b); p != 0 {
		t.Errorf("port a->b = %d, want 0", p)
	}
	if p := tp.Nodes[a].PortTo(c); p != 1 {
		t.Errorf("port a->c = %d, want 1", p)
	}
	if p := tp.Nodes[b].PortTo(c); p != -1 {
		t.Errorf("port b->c = %d, want -1", p)
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	tp := lineTopo(t, 5)
	dist := tp.BFS(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	path := tp.ShortestPath(0, 4)
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestBFSUnreachable(t *testing.T) {
	tp := New()
	tp.AddNode(Core, "a")
	tp.AddNode(Core, "b") // island
	dist := tp.BFS(0)
	if dist[1] != -1 {
		t.Errorf("unreachable dist = %d", dist[1])
	}
	if tp.ShortestPath(0, 1) != nil {
		t.Error("path to island should be nil")
	}
	if tp.Connected() {
		t.Error("should not be connected")
	}
}

func TestWalkTowardDeterministic(t *testing.T) {
	// Diamond: 0-1-3, 0-2-3. Walk should always pick the lower neighbor.
	tp := New()
	for i := 0; i < 4; i++ {
		tp.AddNode(Core, "")
	}
	_ = tp.Connect(0, 1)
	_ = tp.Connect(0, 2)
	_ = tp.Connect(1, 3)
	_ = tp.Connect(2, 3)
	dist := tp.BFS(3)
	for i := 0; i < 10; i++ {
		path := tp.WalkToward(0, dist)
		if len(path) != 3 || path[1] != 1 {
			t.Fatalf("walk = %v, want [0 1 3]", path)
		}
	}
}

func TestBaseStations(t *testing.T) {
	tp := New()
	as := tp.AddNode(Access, "as0")
	core := tp.AddNode(Core, "c0")
	if err := tp.AddBaseStation(1, as); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddBaseStation(1, as); err == nil {
		t.Error("duplicate base station should fail")
	}
	if err := tp.AddBaseStation(2, core); err == nil {
		t.Error("base station on core switch should fail")
	}
	bs, ok := tp.Station(1)
	if !ok || bs.Access != as {
		t.Fatalf("Station(1) = %+v %v", bs, ok)
	}
	if _, ok := tp.Station(9); ok {
		t.Error("unknown station should not resolve")
	}
}

func TestMiddleboxes(t *testing.T) {
	tp := New()
	sw := tp.AddNode(Core, "c0")
	id, err := tp.AttachMiddlebox(MBType(2), sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.AttachMiddlebox(MBType(2), 99); err == nil {
		t.Error("attach to unknown node should fail")
	}
	got := tp.InstancesOf(MBType(2))
	if len(got) != 1 || got[0] != id {
		t.Fatalf("InstancesOf = %v", got)
	}
	inst := tp.Instance(id)
	if inst.Type != 2 || inst.Attached != sw {
		t.Fatalf("Instance = %+v", inst)
	}
}

func TestGenerateCounts(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		p := GenParams{K: k, ClusterSize: 10, MBTypes: k, Seed: 1}
		g, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		wantBS := 10 * k * k * k / 4
		if len(g.Stations) != wantBS {
			t.Errorf("k=%d: stations = %d, want %d", k, len(g.Stations), wantBS)
		}
		if p.NumBaseStations() != wantBS {
			t.Errorf("k=%d: NumBaseStations = %d, want %d", k, p.NumBaseStations(), wantBS)
		}
		// Nodes: k² core + 1 gateway + k·k agg + one access switch per BS.
		wantNodes := k*k + 1 + k*k + wantBS
		if len(g.Nodes) != wantNodes {
			t.Errorf("k=%d: nodes = %d, want %d", k, len(g.Nodes), wantNodes)
		}
		// Middleboxes: k types × (k pods + 2 core instances).
		wantMB := k * (k + 2)
		if len(g.MBoxes) != wantMB {
			t.Errorf("k=%d: middleboxes = %d, want %d", k, len(g.MBoxes), wantMB)
		}
		if !g.Connected() {
			t.Errorf("k=%d: topology not connected", k)
		}
		if len(g.Gateways()) != 1 || g.Gateways()[0] != g.GatewayID {
			t.Errorf("k=%d: gateways = %v", k, g.Gateways())
		}
	}
}

func TestGeneratePaperSizes(t *testing.T) {
	// The paper: k=8 → 1280 base stations, k=20 → 20000.
	if n := (GenParams{K: 8, ClusterSize: 10}).NumBaseStations(); n != 1280 {
		t.Errorf("k=8 → %d, want 1280", n)
	}
	if n := (GenParams{K: 20, ClusterSize: 10}).NumBaseStations(); n != 20000 {
		t.Errorf("k=20 → %d, want 20000", n)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenParams{
		{K: 3, ClusterSize: 10},
		{K: 0, ClusterSize: 10},
		{K: 4, ClusterSize: 0},
		{K: 4, ClusterSize: 10, MBTypes: -1},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenParams{K: 4, ClusterSize: 4, MBTypes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenParams{K: 4, ClusterSize: 4, MBTypes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.MBoxes) != len(b.MBoxes) {
		t.Fatal("instance counts differ")
	}
	for i := range a.MBoxes {
		if a.MBoxes[i] != b.MBoxes[i] {
			t.Fatalf("placement differs at %d: %+v vs %+v", i, a.MBoxes[i], b.MBoxes[i])
		}
	}
}

func TestGenerateClusterContiguity(t *testing.T) {
	g, err := Generate(GenParams{K: 4, ClusterSize: 10, MBTypes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Base stations are numbered densely in cluster order: stations 0..9 are
	// one ring, and consecutive stations in a cluster are ring neighbors.
	s0, _ := g.Station(0)
	s1, _ := g.Station(1)
	if g.Nodes[s0.Access].PortTo(s1.Access) < 0 {
		t.Error("stations 0 and 1 should be ring-adjacent")
	}
	s9, _ := g.Station(9)
	if g.Nodes[s9.Access].PortTo(s0.Access) < 0 {
		t.Error("ring should wrap around")
	}
	// Station IDs are dense from 0.
	for i, st := range g.Stations {
		if st.ID != packet.BSID(i) {
			t.Fatalf("station %d has ID %d", i, st.ID)
		}
	}
}

func TestGenerateAccessUplinkRedundancy(t *testing.T) {
	g, err := Generate(GenParams{K: 4, ClusterSize: 10, MBTypes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ring head (station 0) and midpoint (station 5) both uplink to a pod
	// switch: their access switches have 3 neighbors (2 ring + 1 up).
	s0, _ := g.Station(0)
	s5, _ := g.Station(5)
	if n := len(g.Nodes[s0.Access].Neighbors); n != 3 {
		t.Errorf("head uplinks: %d neighbors, want 3", n)
	}
	if n := len(g.Nodes[s5.Access].Neighbors); n != 3 {
		t.Errorf("midpoint uplinks: %d neighbors, want 3", n)
	}
	s1, _ := g.Station(1)
	if n := len(g.Nodes[s1.Access].Neighbors); n != 2 {
		t.Errorf("ordinary ring member: %d neighbors, want 2", n)
	}
}

func TestSPTree(t *testing.T) {
	// Diamond 0-1-3, 0-2-3 plus island 4.
	tp := New()
	for i := 0; i < 5; i++ {
		tp.AddNode(Core, "")
	}
	_ = tp.Connect(0, 1)
	_ = tp.Connect(0, 2)
	_ = tp.Connect(1, 3)
	_ = tp.Connect(2, 3)
	par := tp.SPTree(0)
	if par[0] != None {
		t.Errorf("root parent = %d", par[0])
	}
	if par[1] != 0 || par[2] != 0 {
		t.Errorf("layer-1 parents: %d %d", par[1], par[2])
	}
	if par[3] != 1 && par[3] != 2 {
		t.Errorf("parent[3] = %d, want one of its equally close neighbors", par[3])
	}
	// Deterministic across calls.
	par2 := tp.SPTree(0)
	for i := range par {
		if par[i] != par2[i] {
			t.Fatalf("SPTree not deterministic at %d", i)
		}
	}
	if par[4] != None {
		t.Errorf("island parent = %d", par[4])
	}
}

func TestSPTreeCoversGenerated(t *testing.T) {
	g, err := Generate(GenParams{K: 4, ClusterSize: 10, MBTypes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	par := g.SPTree(g.GatewayID)
	dist := g.BFS(g.GatewayID)
	for i, p := range par {
		if NodeID(i) == g.GatewayID {
			continue
		}
		if p == None {
			t.Fatalf("node %d has no parent", i)
		}
		if dist[p] != dist[i]-1 {
			t.Fatalf("parent of %d not one hop closer", i)
		}
	}
}
