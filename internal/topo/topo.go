// Package topo models the cellular core network graph — access, aggregation
// and core switches, gateways, base stations and middlebox attachment points
// — and generates the synthetic three-layer topologies the paper uses for
// its large-scale simulations (§6.3).
package topo

import (
	"fmt"

	"repro/internal/packet"
)

// NodeID identifies a switch in the topology. IDs are dense, starting at 0.
type NodeID int32

// None is the absent-node sentinel.
const None NodeID = -1

// Kind classifies a switch.
type Kind uint8

// Switch kinds.
const (
	Access  Kind = iota // software switch at a base station
	Agg                 // aggregation-layer switch
	Core                // core-layer switch
	Gateway             // Internet-facing gateway switch
)

func (k Kind) String() string {
	switch k {
	case Access:
		return "access"
	case Agg:
		return "agg"
	case Core:
		return "core"
	case Gateway:
		return "gateway"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is one switch.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Neighbors lists adjacent switch IDs; the index in this slice is the
	// switch's port number for that adjacency.
	Neighbors []NodeID
}

// PortTo returns the local port facing neighbor n, or -1.
func (nd *Node) PortTo(n NodeID) int {
	for i, v := range nd.Neighbors {
		if v == n {
			return i
		}
	}
	return -1
}

// MBType identifies a middlebox function (firewall, transcoder, ...).
type MBType int

// MBInstanceID identifies one deployed middlebox instance.
type MBInstanceID int32

// MBInstance is a middlebox instance attached to a switch.
type MBInstance struct {
	ID       MBInstanceID
	Type     MBType
	Attached NodeID // switch the instance hangs off
}

// BaseStation ties a base-station ID to its access switch.
type BaseStation struct {
	ID     packet.BSID
	Access NodeID
}

// Topology is the network graph. Build it with the Add/Connect methods or
// the Generate constructor; it is immutable during simulation.
type Topology struct {
	Nodes     []Node
	Stations  []BaseStation
	MBoxes    []MBInstance
	gateways  []NodeID
	mbByType  map[MBType][]MBInstanceID
	stationAt map[packet.BSID]int
	linkCount int
	down      map[NodeID]bool
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		mbByType:  make(map[MBType][]MBInstanceID),
		stationAt: make(map[packet.BSID]int),
	}
}

// AddNode appends a switch of the given kind and returns its ID.
func (t *Topology) AddNode(kind Kind, name string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Name: name})
	if kind == Gateway {
		t.gateways = append(t.gateways, id)
	}
	return id
}

// SetNodeDown marks a switch failed (or recovered). Failed switches are
// invisible to BFS, walks and trees, so path computation routes around
// them — the controller "can easily handle topology changes (e.g., switch
// failures) by recomputing paths" (§5.2).
func (t *Topology) SetNodeDown(n NodeID, isDown bool) error {
	if !t.valid(n) {
		return fmt.Errorf("topo: unknown node %d", n)
	}
	if t.down == nil {
		t.down = make(map[NodeID]bool)
	}
	if isDown {
		t.down[n] = true
	} else {
		delete(t.down, n)
	}
	return nil
}

// Down reports whether a switch is failed.
func (t *Topology) Down(n NodeID) bool { return t.down[n] }

// Connect adds a bidirectional link between a and b. Connecting a node to
// itself or duplicating an existing link is an error.
func (t *Topology) Connect(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("topo: self-link on node %d", a)
	}
	if !t.valid(a) || !t.valid(b) {
		return fmt.Errorf("topo: connect %d-%d: unknown node", a, b)
	}
	if t.Nodes[a].PortTo(b) >= 0 {
		return fmt.Errorf("topo: duplicate link %d-%d", a, b)
	}
	t.Nodes[a].Neighbors = append(t.Nodes[a].Neighbors, b)
	t.Nodes[b].Neighbors = append(t.Nodes[b].Neighbors, a)
	t.linkCount++
	return nil
}

func (t *Topology) valid(n NodeID) bool { return n >= 0 && int(n) < len(t.Nodes) }

// Links reports the number of bidirectional links.
func (t *Topology) Links() int { return t.linkCount }

// AttachMiddlebox deploys an instance of typ on switch sw.
func (t *Topology) AttachMiddlebox(typ MBType, sw NodeID) (MBInstanceID, error) {
	if !t.valid(sw) {
		return 0, fmt.Errorf("topo: attach middlebox to unknown node %d", sw)
	}
	id := MBInstanceID(len(t.MBoxes))
	t.MBoxes = append(t.MBoxes, MBInstance{ID: id, Type: typ, Attached: sw})
	t.mbByType[typ] = append(t.mbByType[typ], id)
	return id, nil
}

// InstancesOf lists the deployed instances of a middlebox type.
func (t *Topology) InstancesOf(typ MBType) []MBInstanceID { return t.mbByType[typ] }

// Instance returns the instance record for id.
func (t *Topology) Instance(id MBInstanceID) MBInstance { return t.MBoxes[id] }

// AddBaseStation registers a base station served by access switch sw.
func (t *Topology) AddBaseStation(id packet.BSID, sw NodeID) error {
	if !t.valid(sw) || t.Nodes[sw].Kind != Access {
		return fmt.Errorf("topo: base station %d needs an access switch, got node %d", id, sw)
	}
	if _, dup := t.stationAt[id]; dup {
		return fmt.Errorf("topo: duplicate base station %d", id)
	}
	t.stationAt[id] = len(t.Stations)
	t.Stations = append(t.Stations, BaseStation{ID: id, Access: sw})
	return nil
}

// Station looks a base station up by ID.
func (t *Topology) Station(id packet.BSID) (BaseStation, bool) {
	i, ok := t.stationAt[id]
	if !ok {
		return BaseStation{}, false
	}
	return t.Stations[i], true
}

// Gateways lists the Internet-facing switches.
func (t *Topology) Gateways() []NodeID { return t.gateways }

// BFS computes hop distances from src to every node. Unreachable nodes get
// distance -1. The returned slice is indexed by NodeID.
func (t *Topology) BFS(src NodeID) []int32 {
	dist := make([]int32, len(t.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	if !t.valid(src) {
		return dist
	}
	if t.down[src] {
		return dist
	}
	dist[src] = 0
	queue := make([]NodeID, 0, len(t.Nodes))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Nodes[u].Neighbors {
			if dist[v] < 0 && !t.down[v] {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// WalkToward traces the shortest path from src to the source of dist (a BFS
// field computed from the destination). The returned path includes both
// endpoints. Ties break toward the lowest neighbor ID, so the walk is
// deterministic. It returns nil when no path exists.
func (t *Topology) WalkToward(src NodeID, dist []int32) []NodeID {
	if !t.valid(src) || dist[src] < 0 {
		return nil
	}
	path := make([]NodeID, 0, dist[src]+1)
	u := src
	path = append(path, u)
	for dist[u] > 0 {
		next := None
		for _, v := range t.Nodes[u].Neighbors {
			if dist[v] == dist[u]-1 && (next == None || v < next) {
				next = v
			}
		}
		if next == None {
			return nil // inconsistent distance field
		}
		u = next
		path = append(path, u)
	}
	return path
}

// ShortestPath returns one deterministic shortest path from a to b
// (inclusive), or nil when disconnected.
func (t *Topology) ShortestPath(a, b NodeID) []NodeID {
	return t.WalkToward(a, t.BFS(b))
}

// Connected reports whether every node is reachable from node 0.
func (t *Topology) Connected() bool {
	if len(t.Nodes) == 0 {
		return true
	}
	dist := t.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// SPTree returns a deterministic shortest-path-tree parent array rooted at
// root: parent[n] is n's next hop toward the root (None for the root and
// unreachable nodes). Ties between equally close neighbors break by a hash
// of the child — not by lowest ID — so parallel fabrics (full-mesh core
// layers) spread children across peers instead of funnelling everything
// through one hub switch. SoftCell's location routing (Type 3 rules)
// follows this tree, so every switch agrees on one canonical next hop per
// destination.
func (t *Topology) SPTree(root NodeID) []NodeID {
	dist := t.BFS(root)
	parent := make([]NodeID, len(t.Nodes))
	mix := func(u, v NodeID) uint32 {
		h := uint32(u)*2654435761 ^ uint32(v)*40503
		h ^= h >> 13
		h *= 0x5bd1e995
		h ^= h >> 15
		return h
	}
	for i := range parent {
		parent[i] = None
		if dist[i] <= 0 {
			continue
		}
		var bestH uint32
		for _, v := range t.Nodes[i].Neighbors {
			if dist[v] != dist[i]-1 {
				continue
			}
			h := mix(NodeID(i), v)
			if parent[i] == None || h < bestH || (h == bestH && v < parent[i]) {
				parent[i], bestH = v, h
			}
		}
	}
	return parent
}

// AncestorChain returns the canonical chain from leaf up to the root of the
// given SPTree parent array: chain[0] = leaf, chain[len-1] = root. It
// returns nil when the leaf has no path to the root.
func (t *Topology) AncestorChain(leaf NodeID, parent []NodeID) []NodeID {
	var chain []NodeID
	for n := leaf; n != None; n = parent[n] {
		chain = append(chain, n)
		if len(chain) > len(t.Nodes) {
			return nil // cycle: malformed parent array
		}
	}
	return chain
}

// CanonicalDescend is SoftCell's shared location-routing function: the
// canonical next hop at switch u for traffic toward chain[0] (the
// destination's access switch), where chain is the destination's
// AncestorChain and chainIdx its node->index map.
//
// The rule, in precedence order: on the destination's ancestor chain, step
// down the chain; off-chain but adjacent to chain nodes, jump to the
// lowest-index (closest-to-destination) adjacent chain node — this is what
// lets full-mesh layers (core and pod fabrics) cut across instead of
// climbing through the tree root; otherwise climb to the tree parent.
// The bootstrapped Type 3 location tables implement exactly this function,
// so every clause's tail resolves identically at every switch.
//
// done=true means u is the destination access switch itself.
func (t *Topology) CanonicalDescend(u NodeID, chain []NodeID, chainIdx map[NodeID]int, parent []NodeID) (next NodeID, done bool) {
	if u == chain[0] {
		return None, true
	}
	if i, ok := chainIdx[u]; ok {
		return chain[i-1], false
	}
	best := -1
	for _, v := range t.Nodes[u].Neighbors {
		if j, ok := chainIdx[v]; ok && (best < 0 || j < best) {
			best = j
		}
	}
	if best >= 0 {
		return chain[best], false
	}
	return parent[u], false
}

// WalkTowardSpread is WalkToward with a destination-seeded tie-break:
// among equally close neighbors it picks the one minimising a hash of
// (hop, neighbor, seed) instead of the lowest ID. Deterministic for a given
// seed, but different destinations spread across parallel paths instead of
// funnelling through the lowest-numbered switches — which keeps multi-hop
// middlebox trunks from revisiting switches over the same link.
func (t *Topology) WalkTowardSpread(src NodeID, dist []int32, seed uint32) []NodeID {
	if !t.valid(src) || dist[src] < 0 {
		return nil
	}
	mix := func(u, v NodeID) uint32 {
		h := uint32(u)*2654435761 ^ uint32(v)*40503 ^ seed*97
		h ^= h >> 13
		h *= 0x5bd1e995
		h ^= h >> 15
		return h
	}
	path := make([]NodeID, 0, dist[src]+1)
	u := src
	path = append(path, u)
	for dist[u] > 0 {
		next := None
		var bestH uint32
		for _, v := range t.Nodes[u].Neighbors {
			if dist[v] != dist[u]-1 {
				continue
			}
			h := mix(u, v)
			if next == None || h < bestH || (h == bestH && v < next) {
				next, bestH = v, h
			}
		}
		if next == None {
			return nil
		}
		u = next
		path = append(path, u)
	}
	return path
}
