package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/packet"
)

// GenParams parameterises the §6.3 synthetic cellular topology.
//
// The generated network has three layers:
//
//   - access: clusters of ClusterSize base stations interconnected in a ring
//     (one access switch per base station);
//   - aggregation: K pods of K switches in full mesh; in each pod K/2
//     switches each serve K/2 base-station clusters, and the other K/2
//     switches each uplink to K/2 core switches;
//   - core: K² switches in full mesh, all connected to one gateway switch.
//
// With ClusterSize=10 this yields 10·K³/4 base stations, matching the
// paper's k=8 → 1280 and k=20 → 20000.
type GenParams struct {
	K           int   // pod parameter; must be even and >= 2
	ClusterSize int   // base stations per ring cluster (paper: 10)
	MBTypes     int   // number of middlebox types (paper: k)
	Seed        int64 // RNG seed for middlebox placement
}

// Validate checks the parameters.
func (p GenParams) Validate() error {
	if p.K < 2 || p.K%2 != 0 {
		return fmt.Errorf("topo: K=%d must be even and >= 2", p.K)
	}
	if p.ClusterSize < 1 {
		return fmt.Errorf("topo: ClusterSize=%d must be positive", p.ClusterSize)
	}
	if p.MBTypes < 0 {
		return fmt.Errorf("topo: MBTypes=%d must be non-negative", p.MBTypes)
	}
	return nil
}

// NumBaseStations returns the base-station count the parameters produce.
func (p GenParams) NumBaseStations() int {
	return p.ClusterSize * p.K * p.K / 2 * p.K / 2
}

// Generated bundles the topology with the generator's layer bookkeeping.
type Generated struct {
	*Topology
	Params     GenParams
	GatewayID  NodeID
	PodSwitch  [][]NodeID // [pod][i] aggregation switches
	CoreSwitch []NodeID
}

// Generate builds the synthetic topology. Base stations are numbered densely
// from 0 in cluster order, so stations in the same cluster (and nearby
// clusters) occupy contiguous, aggregatable ID ranges — the property the
// paper's location-based aggregation relies on ("IDs of nearby base stations
// can be further aggregated into larger blocks").
func Generate(p GenParams) (*Generated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := New()
	g := &Generated{Topology: t, Params: p}

	k := p.K
	// Core layer: k² switches, full mesh, plus the gateway.
	g.CoreSwitch = make([]NodeID, k*k)
	for i := range g.CoreSwitch {
		g.CoreSwitch[i] = t.AddNode(Core, fmt.Sprintf("core%d", i))
	}
	for i := 0; i < len(g.CoreSwitch); i++ {
		for j := i + 1; j < len(g.CoreSwitch); j++ {
			if err := t.Connect(g.CoreSwitch[i], g.CoreSwitch[j]); err != nil {
				return nil, err
			}
		}
	}
	g.GatewayID = t.AddNode(Gateway, "gw0")
	for _, cs := range g.CoreSwitch {
		if err := t.Connect(g.GatewayID, cs); err != nil {
			return nil, err
		}
	}

	// Aggregation layer: k pods of k switches in full mesh. In each pod the
	// first k/2 switches face the access layer and the last k/2 uplink to
	// the core.
	g.PodSwitch = make([][]NodeID, k)
	for pod := 0; pod < k; pod++ {
		g.PodSwitch[pod] = make([]NodeID, k)
		for i := 0; i < k; i++ {
			g.PodSwitch[pod][i] = t.AddNode(Agg, fmt.Sprintf("pod%d.agg%d", pod, i))
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if err := t.Connect(g.PodSwitch[pod][i], g.PodSwitch[pod][j]); err != nil {
					return nil, err
				}
			}
		}
		// Core uplinks: pod switch k/2+u connects to k/2 core switches,
		// striped so pods spread over the whole core layer.
		for u := 0; u < k/2; u++ {
			up := g.PodSwitch[pod][k/2+u]
			for c := 0; c < k/2; c++ {
				coreIdx := (pod*k/2 + u + c*k) % len(g.CoreSwitch)
				if t.Nodes[up].PortTo(g.CoreSwitch[coreIdx]) < 0 {
					if err := t.Connect(up, g.CoreSwitch[coreIdx]); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Access layer: each access-facing pod switch serves k/2 ring clusters
	// of ClusterSize base stations.
	nextBS := packet.BSID(0)
	for pod := 0; pod < k; pod++ {
		for s := 0; s < k/2; s++ {
			podSW := g.PodSwitch[pod][s]
			for c := 0; c < k/2; c++ {
				ring := make([]NodeID, p.ClusterSize)
				for b := 0; b < p.ClusterSize; b++ {
					ring[b] = t.AddNode(Access, fmt.Sprintf("as%d", nextBS))
					if err := t.AddBaseStation(nextBS, ring[b]); err != nil {
						return nil, err
					}
					nextBS++
				}
				for b := 0; b < p.ClusterSize; b++ {
					peer := ring[(b+1)%p.ClusterSize]
					if p.ClusterSize == 2 && b == 1 {
						break // a 2-ring is a single link
					}
					if p.ClusterSize > 1 {
						if err := t.Connect(ring[b], peer); err != nil {
							return nil, err
						}
					}
				}
				// The ring's head (and, for fault tolerance, its midpoint)
				// uplink to the pod switch.
				if err := t.Connect(ring[0], podSW); err != nil {
					return nil, err
				}
				if p.ClusterSize >= 4 {
					if err := t.Connect(ring[p.ClusterSize/2], podSW); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Middleboxes: one instance of each type per pod (on a random pod
	// switch), two instances of each type in the core layer (§6.3).
	for typ := 0; typ < p.MBTypes; typ++ {
		for pod := 0; pod < k; pod++ {
			sw := g.PodSwitch[pod][rng.Intn(k)]
			if _, err := t.AttachMiddlebox(MBType(typ), sw); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 2; i++ {
			sw := g.CoreSwitch[rng.Intn(len(g.CoreSwitch))]
			if _, err := t.AttachMiddlebox(MBType(typ), sw); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
