package core

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topo"
)

// BenchmarkRequestPath measures the steady-state hot path: every requested
// path is already installed, so each call is one tag-memo lookup. `make
// profile` drives this benchmark for its CPU/heap profiles; ReportAllocs
// pins the 0 allocs/op property in `go test -bench` output. The fixture
// runs with obs instrumentation enabled (testController wires a live
// registry), so the pinned number includes the telemetry cost.
func BenchmarkRequestPath(b *testing.B) {
	c, _ := testController(b)
	clauses := allowClauses(c.Policy)
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			if _, err := c.RequestPath(bs, cl); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.RequestPath(packet.BSID(i%4), clauses[i%len(clauses)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkRequestPathBatch measures the shard workers' batched form with a
// recycled answer slice.
func BenchmarkRequestPathBatch(b *testing.B) {
	c, _ := testController(b)
	clauses := allowClauses(c.Policy)
	var qs []PathQuery
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			qs = append(qs, PathQuery{BS: bs, Clause: cl})
		}
	}
	out := make([]PathAnswer, len(qs))
	out = c.RequestPathBatch(qs, out) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = c.RequestPathBatch(qs, out)
	}
}

// BenchmarkInstallPath measures Algorithm 1 itself: candidate evaluation,
// aggregation, and rule installation for pre-planned routes. The installer
// is recycled periodically so the rule tables stay at a realistic size
// instead of growing with b.N.
func BenchmarkInstallPath(b *testing.B) {
	n := newFig3Net(b)
	pl := routing.NewPlanner(n.Topology)
	var routes []*routing.Path
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, chain := range [][]topo.MBType{{0}, {0, 1}, {1}} {
			route, err := pl.Plan(bs, chain, n.gw)
			if err != nil {
				b.Fatal(err)
			}
			routes = append(routes, route)
		}
	}
	in := mustInstaller(b, n.Topology, InstallerOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 && i > 0 {
			b.StopTimer()
			in = mustInstaller(b, n.Topology, InstallerOptions{})
			b.StartTimer()
		}
		if _, err := in.InstallPath(routes[i%len(routes)]); err != nil {
			b.Fatal(err)
		}
	}
}
