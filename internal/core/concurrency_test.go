package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
)

// allowClauses returns the IDs of the policy's allow clauses — the ones a
// path can be requested for.
func allowClauses(p *policy.Policy) []int {
	var out []int
	for id := 0; id < p.Len(); id++ {
		if cl, ok := p.Clause(id); ok && cl.Action.Allow {
			out = append(out, id)
		}
	}
	return out
}

// TestConcurrentStressInvariants hammers the controller from many
// goroutines at once — path requests, handoffs, detach/re-attach cycles,
// and switch failure/recovery — and then checks the rule-table invariants:
// every surviving path verifies against the FIBs, the rule accounting
// matches the tables, and the tag memo agrees exactly with the installed
// paths. `make verify` runs it under -race, which is where it earns its
// keep: the race detector sees every pairing of the three lock domains and
// the lock-free fast path.
func TestConcurrentStressInvariants(t *testing.T) {
	// Twelve fail/recover cycles each rebuild every installed path on a
	// fresh tag (tags are never reused), and the requesters racing the
	// recomputations install more — too many for the default 6-bit field.
	plan := packet.DefaultPlan
	plan.TagBits = 12
	c, n := testControllerPlan(t, plan)
	const nUE = 12
	imsis := make([]string, nUE)
	for i := range imsis {
		imsis[i] = fmt.Sprintf("imsi-%d", i)
		attr := policy.Attributes{Provider: "A"}
		if i%2 == 0 {
			attr.Plan = "silver"
		}
		if err := c.RegisterSubscriber(imsis[i], attr); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Attach(imsis[i], packet.BSID(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	clauses := allowClauses(c.Policy)
	iters := 400
	if testing.Short() {
		iters = 60
	}

	var wg sync.WaitGroup
	spawn := func(seed int64, body func(rng *rand.Rand)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(rand.New(rand.NewSource(seed)))
		}()
	}
	// Path requesters: errors are legal while a failure is in flight (the
	// request races the recomputation), so only the final sweep asserts.
	for g := 0; g < 4; g++ {
		spawn(int64(g), func(rng *rand.Rand) {
			for i := 0; i < iters*5; i++ {
				_, _ = c.RequestPath(packet.BSID(rng.Intn(4)), clauses[rng.Intn(len(clauses))])
			}
		})
	}
	// Batched requesters share the fast path with the shard workers.
	spawn(50, func(rng *rand.Rand) {
		qs := make([]PathQuery, 8)
		var out []PathAnswer
		for i := 0; i < iters; i++ {
			for j := range qs {
				qs[j] = PathQuery{BS: packet.BSID(rng.Intn(4)), Clause: clauses[rng.Intn(len(clauses))]}
			}
			out = c.RequestPathBatch(qs, out)
		}
	})
	// Mobility: handoffs between stations, detach/re-attach churn.
	for g := 0; g < 2; g++ {
		spawn(100+int64(g), func(rng *rand.Rand) {
			for i := 0; i < iters; i++ {
				_, _ = c.Handoff(imsis[rng.Intn(nUE)], packet.BSID(rng.Intn(4)))
			}
		})
	}
	spawn(200, func(rng *rand.Rand) {
		for i := 0; i < iters; i++ {
			imsi := imsis[rng.Intn(nUE)]
			_ = c.Detach(imsi)
			_, _, _ = c.Attach(imsi, packet.BSID(rng.Intn(4)))
		}
	})
	// Topology churn: fail and recover the switch feeding stations 2 and 3,
	// forcing full recomputations under everyone else's feet.
	spawn(300, func(rng *rand.Rand) {
		for i := 0; i < 12; i++ {
			if _, err := c.FailSwitch(n.cs3); err != nil {
				t.Errorf("FailSwitch: %v", err)
				return
			}
			if _, err := c.RecoverSwitch(n.cs3); err != nil {
				t.Errorf("RecoverSwitch: %v", err)
				return
			}
		}
	})
	wg.Wait()

	// Quiesce mobility before verifying: expire every reserved old LocIP
	// (the soft timeout ReleaseOldLocIP models). While a reservation is
	// live, its address legitimately traces to the UE's new station through
	// shortcut overrides — steady-state verification wants those gone.
	c.ueMu.RLock()
	reserved := make([]packet.Addr, 0, len(c.reservations))
	for loc := range c.reservations {
		reserved = append(reserved, loc)
	}
	c.ueMu.RUnlock()
	for _, loc := range reserved {
		c.ReleaseOldLocIP(loc, nil)
	}

	// Invariant 1: every installed path still verifies against the FIBs.
	in := c.Installer
	for key, rec := range c.paths {
		if err := in.VerifyPath(rec); err != nil {
			t.Fatalf("path (bs %d, clause %d) broken after stress: %v", key.bs, key.clause, err)
		}
	}
	// Invariant 2: rule accounting is consistent with the tables.
	hw, sw := in.TableSizes()
	if hw.Total()+sw.Total() != in.Stats().Rules {
		t.Fatalf("rule accounting mismatch after stress: tables=%d stats=%d",
			hw.Total()+sw.Total(), in.Stats().Rules)
	}
	// Invariant 3: the tag memo agrees exactly with the installed paths.
	tags := *c.tagCache.Load()
	if len(tags) != len(c.paths) {
		t.Fatalf("tag cache has %d entries, installed paths %d", len(tags), len(c.paths))
	}
	for key, rec := range c.paths {
		if tags[key] != rec.AccessTag() {
			t.Fatalf("cached tag %d for (bs %d, clause %d), path says %d",
				tags[key], key.bs, key.clause, rec.AccessTag())
		}
	}
	// And with the dust settled the controller answers every combination.
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			tag, err := c.RequestPath(bs, cl)
			if err != nil || tag == 0 {
				t.Fatalf("RequestPath(%d, %d) after stress: tag %d, %v", bs, cl, tag, err)
			}
		}
	}
}

// TestRequestPathFastPathZeroAllocs pins the headline property of the tag
// memo: a steady-state path request allocates nothing.
func TestRequestPathFastPathZeroAllocs(t *testing.T) {
	c, _ := testController(t)
	clauses := allowClauses(c.Policy)
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			if _, err := c.RequestPath(bs, cl); err != nil {
				t.Fatal(err)
			}
		}
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, err := c.RequestPath(2, clauses[0]); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state RequestPath allocates %.1f/op, want 0", allocs)
	}

	// The batched form is equally allocation-free when the caller recycles
	// the answer slice, as the shard workers do.
	qs := make([]PathQuery, 0, 4*len(clauses))
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			qs = append(qs, PathQuery{BS: bs, Clause: cl})
		}
	}
	out := make([]PathAnswer, len(qs))
	if allocs := testing.AllocsPerRun(1000, func() {
		out = c.RequestPathBatch(qs, out)
	}); allocs != 0 {
		t.Fatalf("steady-state RequestPathBatch allocates %.1f/op, want 0", allocs)
	}
}
