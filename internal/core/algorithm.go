package core

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topo"
)

// step is one forwarding decision a policy path demands: at switch SW, for
// traffic in context FromMB (NoMB = arrived on a network port; otherwise
// returning from that locally attached middlebox), send to Next. InFrom is
// the neighbor switch whose port the traffic arrived on (topo.None at the
// path's entry: the Internet side of the gateway or the UE side of the
// access switch); it is what lets loops entering via different links share
// one tag (§3.2). Pos records which path position emitted the step, which
// is what loop segmentation cuts on.
type step struct {
	sw     topo.NodeID
	fromMB topo.MBInstanceID
	inFrom topo.NodeID
	next   NextHop
	pos    int
}

// expandSteps turns a routed path into its forwarding steps for one
// direction, appending to buf (pass a reused buffer re-sliced to zero
// length to avoid allocating). Downstream walks gateway->access; upstream
// the reverse. Consecutive duplicate switch positions (two middleboxes
// chained on one switch) produce only middlebox steps, no self-forwarding.
func expandSteps(p *routing.Path, dir Direction, buf []step) []step {
	steps := buf
	n := p.Len()
	ctx := NoMB
	inFrom := topo.None // entry: Internet side / UE side
	if dir == Down {
		for i := 0; i < n; i++ {
			if p.MBAt[i] != routing.NoMB {
				steps = append(steps, step{p.Switches[i], ctx, inFrom, ToMB(p.MBAt[i]), i})
				ctx = p.MBAt[i]
			}
			if i < n-1 {
				if p.Switches[i+1] == p.Switches[i] {
					continue // same switch again: next middlebox chains in place
				}
				steps = append(steps, step{p.Switches[i], ctx, inFrom, ToNode(p.Switches[i+1]), i})
				ctx = NoMB
				inFrom = p.Switches[i]
			}
		}
		return steps
	}
	for i := n - 1; i >= 0; i-- {
		if p.MBAt[i] != routing.NoMB {
			steps = append(steps, step{p.Switches[i], ctx, inFrom, ToMB(p.MBAt[i]), i})
			ctx = p.MBAt[i]
		}
		if i > 0 {
			if p.Switches[i-1] == p.Switches[i] {
				continue
			}
			steps = append(steps, step{p.Switches[i], ctx, inFrom, ToNode(p.Switches[i-1]), i})
			ctx = NoMB
			inFrom = p.Switches[i]
		}
	}
	// The explicit exit demand: upstream traffic reaching the gateway end
	// leaves through the Internet port. Making it a step (rather than an
	// implicit table-miss) lets the installer detect and override shadowing
	// rules when the path transits the gateway mid-route.
	steps = append(steps, step{p.Switches[0], ctx, inFrom, Exit(), 0})
	return steps
}

// InstallerOptions tune Algorithm 1 and expose the ablation switches
// DESIGN.md §5 calls out.
type InstallerOptions struct {
	// Plan is the carrier address plan; base-station prefixes derive from
	// it. The zero value means packet.DefaultPlan.
	Plan packet.Plan
	// MaxCandidates bounds how many switch-derived tags are evaluated per
	// path when the chain-signature hints are empty (0 = no bound).
	MaxCandidates int
	// PaperExactCandidates always evaluates the switch-derived candidate
	// population in addition to the chain-signature hints, exactly as
	// Algorithm 1's candTag is defined. The default (false) evaluates the
	// hints alone whenever they exist — the hinted tags are precisely the
	// paths that can share rules end-to-end, so the argmin almost always
	// lands there, at a fraction of the cost. See DESIGN.md.
	PaperExactCandidates bool
	// FreshTagPerPath disables tag reuse entirely (ablation: flat
	// tag-per-path routing).
	FreshTagPerPath bool
	// NoPrefixAggregation disables contiguous-sibling merging (ablation).
	NoPrefixAggregation bool
	// NoTagDefault disables tag-only Type 2 rules; every step installs a
	// (tag, prefix) rule (ablation: no shared-segment compression).
	NoTagDefault bool
	// DownstreamOnly installs (and counts) only the Internet->UE direction,
	// matching the paper's Fig. 3 perspective and its large-scale
	// simulation methodology. The full dataplane always installs both
	// directions; only the rule-counting sweeps set this.
	DownstreamOnly bool
	// NoLocationRouting disables Type 3 location rules (ablation): the
	// fan-out below the last middlebox is tag-routed instead.
	NoLocationRouting bool
	// DiscardPathRecords stops the installer from retaining an
	// InstalledPath entry per install. Rule-counting sweeps over tens of
	// millions of paths set this; InstallPath still returns the record.
	DiscardPathRecords bool
	// SkipAccessSwitchRules drops steps at access-layer switches entirely.
	// Use only for rule-COUNTING simulations over hardware switches (Fig.
	// 7): it saves gigabytes on 20000-station networks, but traces across
	// ring clusters no longer resolve. The dataplane never sets this.
	SkipAccessSwitchRules bool
	// UnboundedTags lifts the plan's MaxTag bound on fresh-tag allocation.
	// By default InstallPath fails cleanly when its residue class is
	// exhausted — a tag past the plan's TagBits cannot be embedded in a
	// port, so allocating one silently would surface later as corrupted
	// classifiers mid-run. Rule-COUNTING simulations set this: Fig. 7's
	// 20000-station sweeps (and the fresh-tag-per-path ablation) count
	// table entries, not encodable ports, exactly as the paper's
	// methodology does.
	UnboundedTags bool
	// TagOffset and TagStride partition the tag space across parallel
	// controller shards: this installer allocates TagOffset+TagStride,
	// TagOffset+2*TagStride, ... — the residue class TagOffset+TagStride
	// (mod TagStride). Shards configured with a common stride and distinct
	// offsets in [0, stride) therefore never emit the same tag, without any
	// cross-shard coordination; within one shard the existing per-origin
	// uniqueness argument (paper footnote 2) is unchanged. Zero values mean
	// offset 0, stride 1: the whole space, the unsharded default.
	TagOffset int
	TagStride int
}

// PathID identifies an installed policy path.
type PathID uint64

// InstalledPath records everything needed to trace, rebuild or re-anchor a
// policy path. Retained records live in the installer's arena (DESIGN.md
// §14): Chain is interned per chain signature, and a loop-free path's
// single tag is stored inline, so a steady-state record owns no private
// heap allocations. Because Tags may alias the inline array, records are
// never copied by value — Rebuild adopts payloads through copyPayloadFrom.
type InstalledPath struct {
	ID     PathID
	Origin packet.BSID
	// Tags holds one tag per loop segment, gateway side first. Loop-free
	// paths (the overwhelmingly common case) have exactly one.
	Tags  []packet.Tag
	Chain []topo.MBInstanceID
	Route *routing.Path

	tag1 [1]packet.Tag // inline storage backing Tags for loop-free paths
	slot uint32        // arena slot + 1; 0 = plain heap record
}

// setTags stores the tag sequence, inline for the single-tag case.
func (ip *InstalledPath) setTags(tags []packet.Tag) {
	if len(tags) == 1 {
		ip.tag1[0] = tags[0]
		ip.Tags = ip.tag1[:1:1]
		return
	}
	ip.Tags = append([]packet.Tag(nil), tags...)
}

// copyPayloadFrom adopts src's payload while keeping ip's identity (ID and
// arena slot). Tags are re-anchored to ip's own inline array, so src can be
// released back to the arena immediately after.
func (ip *InstalledPath) copyPayloadFrom(src *InstalledPath) {
	ip.Origin = src.Origin
	ip.Chain = src.Chain
	ip.Route = src.Route
	ip.setTags(src.Tags)
}

// GatewayTag is the tag return traffic carries when it enters the gateway.
func (ip *InstalledPath) GatewayTag() packet.Tag { return ip.Tags[0] }

// AccessTag is the tag the local agent embeds in upstream source ports.
func (ip *InstalledPath) AccessTag() packet.Tag { return ip.Tags[len(ip.Tags)-1] }

// InstallStats aggregates installer activity.
type InstallStats struct {
	Paths           uint64
	Rules           int // net TCAM rules currently installed (all switches)
	TagsAllocated   uint64
	LoopsSplit      uint64
	CandidatesTried uint64
}

// Installer realises Algorithm 1 (plus the loop-splitting extension of
// §3.2): given a stream of policy paths it chooses tags that minimise new
// rules and installs multi-dimensionally aggregated forwarding state. It
// owns one FIB per switch. It is not safe for concurrent use; the
// Controller serialises access.
type Installer struct {
	T    *topo.Topology
	Opts InstallerOptions

	plan    packet.Plan
	fibs    []*FIB
	nextTag packet.Tag
	nextID  PathID

	// chainTags remembers which tags were used for each (gateway, instance
	// chain, loop-segment index) signature — the paths that can share rules
	// end-to-end.
	chainTags map[chainSegKey][]packet.Tag
	// originTags forbids reusing a tag for two paths from one base station
	// (paper footnote 2: they would be indistinguishable everywhere).
	// Stored as sorted slices: sweeps create tens of millions of entries.
	originTags map[packet.BSID][]packet.Tag

	paths map[PathID]*InstalledPath
	stats InstallStats

	// arena backs the retained InstalledPath records (DESIGN.md §14); a
	// withdrawn path's slot is reused by the next install. chains interns
	// one middlebox-instance chain copy per chain signature — retained for
	// the installer's lifetime, bounded by distinct (gateway, chain) pairs,
	// which is why it carries no refcount. seqs interns shortcut switch
	// sequences (refcounted: shortcuts churn with handoffs).
	arena  pathArena
	chains map[string][]topo.MBInstanceID
	seqs   seqPool

	// treeParent holds the canonical shortest-path tree per gateway root,
	// built lazily; location rules are only placed for steps that follow it.
	treeParent map[topo.NodeID][]topo.NodeID

	// scratch holds buffers reused across InstallPath calls so the
	// steady-state install loop does not allocate (one set suffices: the
	// Installer is serialised — the Controller calls it under ruleMu). Maps
	// are cleared, slices re-sliced to zero length, on each use; nothing in
	// here may escape into an InstalledPath record.
	scratch struct {
		down, up   []step
		demands    map[demandKey]demand
		costUse    map[topo.NodeID]NextHop
		installUse map[topo.NodeID]NextHop
		candSeen   map[packet.Tag]bool
		cands      []packet.Tag
		chainIdx   map[topo.NodeID]int
		downSegs   [][]step
		upSegs     [][]step
	}
}

// NewInstaller builds an installer over the topology.
func NewInstaller(t *topo.Topology, opts InstallerOptions) (*Installer, error) {
	if opts.Plan == (packet.Plan{}) {
		opts.Plan = packet.DefaultPlan
	}
	if err := opts.Plan.Validate(); err != nil {
		return nil, err
	}
	if opts.TagStride < 0 || opts.TagOffset < 0 {
		return nil, fmt.Errorf("core: negative tag partition (offset %d, stride %d)", opts.TagOffset, opts.TagStride)
	}
	if opts.TagStride > 1 && opts.TagOffset >= opts.TagStride {
		return nil, fmt.Errorf("core: tag offset %d outside stride %d", opts.TagOffset, opts.TagStride)
	}
	fibs := make([]*FIB, len(t.Nodes))
	for i := range fibs {
		fibs[i] = NewFIB(topo.NodeID(i))
	}
	in := &Installer{
		T:          t,
		Opts:       opts,
		plan:       opts.Plan,
		fibs:       fibs,
		nextTag:    packet.Tag(opts.TagOffset),
		chainTags:  make(map[chainSegKey][]packet.Tag),
		originTags: make(map[packet.BSID][]packet.Tag),
		paths:      make(map[PathID]*InstalledPath),
		chains:     make(map[string][]topo.MBInstanceID),
		seqs:       newSeqPool(),
		treeParent: make(map[topo.NodeID][]topo.NodeID),
	}
	in.scratch.demands = make(map[demandKey]demand)
	in.scratch.costUse = make(map[topo.NodeID]NextHop)
	in.scratch.installUse = make(map[topo.NodeID]NextHop)
	in.scratch.candSeen = make(map[packet.Tag]bool)
	in.scratch.chainIdx = make(map[topo.NodeID]int)
	return in, nil
}

// tree returns (building lazily) the canonical tree rooted at the gateway,
// bootstrapping the full Type 3 location tables the first time.
func (in *Installer) tree(root topo.NodeID) []topo.NodeID {
	if t, ok := in.treeParent[root]; ok {
		return t
	}
	t := in.T.SPTree(root)
	in.treeParent[root] = t
	in.bootstrapLocation(root, t)
	return t
}

// EnableLocationRouting eagerly builds the canonical tree and the base
// Type 3 location tables for the given gateway root. Path installs trigger
// it lazily anyway; controllers call it up front so location-routed traffic
// (mobile-to-mobile, public-IP inbound — §7) works before any policy path
// exists. It is a no-op when NoLocationRouting is set or already enabled.
func (in *Installer) EnableLocationRouting(root topo.NodeID) {
	if in.Opts.NoLocationRouting {
		return
	}
	in.tree(root)
}

// bootstrapLocation installs the base location-routing state (Fig. 3(a)):
// per switch, a climb default toward the tree root for both directions (at
// the root, the upstream default is the Internet exit), plus one descend
// entry per station along the station's ancestor chain. Sibling stations'
// entries merge, so each switch ends up with roughly one entry per subtree
// block — an ordinary aggregated routing table, independent of the policy
// count.
func (in *Installer) bootstrapLocation(root topo.NodeID, parent []topo.NodeID) {
	rules := 0
	carrier := in.plan.Carrier
	for i := range in.fibs {
		n := topo.NodeID(i)
		if in.Opts.SkipAccessSwitchRules && in.T.Nodes[i].Kind == topo.Access {
			continue
		}
		if n == root {
			rules += in.fibs[i].InsertLocation(Up, carrier, Exit())
			continue
		}
		if parent[n] == topo.None {
			continue // unreachable island
		}
		rules += in.fibs[i].InsertLocation(Up, carrier, ToNode(parent[n]))
		rules += in.fibs[i].InsertLocation(Down, carrier, ToNode(parent[n]))
	}
	for _, st := range in.T.Stations {
		prefix, err := in.plan.BSPrefix(st.ID)
		if err != nil {
			continue
		}
		chain := in.T.AncestorChain(st.Access, parent)
		if chain == nil || chain[len(chain)-1] != root {
			continue
		}
		if !in.Opts.SkipAccessSwitchRules {
			// The leaf delivers its own block instead of climbing.
			rules += in.fibs[st.Access].InsertLocation(Down, prefix, Deliver())
		}
		for i := 1; i < len(chain); i++ {
			if in.Opts.SkipAccessSwitchRules && in.T.Nodes[chain[i]].Kind == topo.Access {
				continue
			}
			rules += in.fibs[chain[i]].InsertLocation(Down, prefix, ToNode(chain[i-1]))
		}
		// Adjacency-jump entries: every off-chain switch adjacent to a
		// chain node dispatches this block straight to its lowest-index
		// adjacent chain node, mirroring CanonicalDescend (full-mesh layers
		// cut across instead of climbing through the root).
		minIdx := make(map[topo.NodeID]int)
		onChain := make(map[topo.NodeID]bool, len(chain))
		for _, n := range chain {
			onChain[n] = true
		}
		for i, v := range chain {
			for _, u := range in.T.Nodes[v].Neighbors {
				if onChain[u] {
					continue
				}
				if j, ok := minIdx[u]; !ok || i < j {
					minIdx[u] = i
				}
			}
		}
		for u, i := range minIdx {
			if in.Opts.SkipAccessSwitchRules && in.T.Nodes[u].Kind == topo.Access {
				continue
			}
			rules += in.fibs[u].InsertLocation(Down, prefix, ToNode(chain[i]))
		}
	}
	in.stats.Rules += rules
}

// canonCtx carries the per-path canonicity oracle: the gateway tree plus
// the destination access switch's ancestor chain, against which steps are
// tested with topo.CanonicalDescend.
type canonCtx struct {
	enabled  bool
	parent   []topo.NodeID
	chain    []topo.NodeID
	chainIdx map[topo.NodeID]int
}

func (in *Installer) canonFor(p *routing.Path, access topo.NodeID) canonCtx {
	if in.Opts.NoLocationRouting {
		return canonCtx{}
	}
	parent := in.tree(p.Gateway())
	chain := in.T.AncestorChain(access, parent)
	if chain == nil || chain[len(chain)-1] != p.Gateway() {
		return canonCtx{}
	}
	// The index map is scratch state: it lives only for this path's install.
	idx := in.scratch.chainIdx
	clear(idx)
	for i, n := range chain {
		idx[n] = i
	}
	return canonCtx{enabled: true, parent: parent, chain: chain, chainIdx: idx}
}

// canonicalDown reports whether "at switch u forward to next" is the
// canonical descend decision toward the chain's access switch.
func (in *Installer) canonicalDown(c canonCtx, u topo.NodeID, next NextHop) bool {
	if !c.enabled || next.MB != NoMB || next.NewTag != 0 || next.Node < 0 {
		return false
	}
	want, done := in.T.CanonicalDescend(u, c.chain, c.chainIdx, c.parent)
	return !done && want == next.Node
}

// canonicalUp reports whether the decision matches the canonical climb
// toward the gateway root (including the exit at the root itself).
func (c canonCtx) canonicalUp(u topo.NodeID, next NextHop) bool {
	if !c.enabled || next.MB != NoMB || next.NewTag != 0 {
		return false
	}
	if next.IsExit() {
		return c.parent[u] == topo.None // only at the root
	}
	return next.Node >= 0 && next.Node == c.parent[u]
}

// Plan exposes the installer's address plan.
func (in *Installer) Plan() packet.Plan { return in.plan }

// FIB exposes the forwarding table of one switch.
func (in *Installer) FIB(n topo.NodeID) *FIB { return in.fibs[n] }

// Stats returns a copy of the installer counters.
func (in *Installer) Stats() InstallStats { return in.stats }

// Path returns an installed path record.
func (in *Installer) Path(id PathID) (*InstalledPath, bool) {
	p, ok := in.paths[id]
	return p, ok
}

// Paths returns all installed paths (unordered).
func (in *Installer) Paths() []*InstalledPath {
	out := make([]*InstalledPath, 0, len(in.paths))
	for _, p := range in.paths {
		out = append(out, p)
	}
	return out
}

// freshTag allocates the next tag of this installer's residue class,
// failing cleanly when the class is exhausted — the encodable tag space is
// bounded by the address plan, and silently allocating past it would emit
// tags no agent can embed (the mid-run allocator panic the bench guards
// against up front).
func (in *Installer) freshTag() (packet.Tag, error) {
	stride := packet.Tag(1)
	if in.Opts.TagStride > 1 {
		stride = packet.Tag(in.Opts.TagStride)
	}
	next := in.nextTag + stride
	if next > in.plan.MaxTag() && !in.Opts.UnboundedTags {
		return 0, fmt.Errorf("core: policy-tag space exhausted: residue class %d (mod %d) has no tag left under plan max %d (%d allocated); widen Plan.TagBits or lower the shard count",
			in.Opts.TagOffset, max(in.Opts.TagStride, 1), in.plan.MaxTag(), in.stats.TagsAllocated)
	}
	in.nextTag = next
	in.stats.TagsAllocated++
	return in.nextTag, nil
}

// chainSegKey identifies a shareable tag population: paths with the same
// instance chain and gateway share loop structure, so their i-th segments
// can share a tag.
type chainSegKey struct {
	chain string
	seg   int
}

// originHas reports whether origin already uses tag (binary search over the
// sorted per-origin slice).
func (in *Installer) originHas(origin packet.BSID, tag packet.Tag) bool {
	ts := in.originTags[origin]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= tag })
	return i < len(ts) && ts[i] == tag
}

// originAdd records tag against origin, keeping the slice sorted.
func (in *Installer) originAdd(origin packet.BSID, tag packet.Tag) {
	ts := in.originTags[origin]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= tag })
	if i < len(ts) && ts[i] == tag {
		return
	}
	ts = append(ts, 0)
	copy(ts[i+1:], ts[i:])
	ts[i] = tag
	in.originTags[origin] = ts
}

// demandKey identifies// demandKey identifies one forwarding decision slot. Network-port steps are
// additionally keyed by their in-port neighbor: two visits entering through
// different links coexist under one tag via in-port-qualified rules, so
// only same-link revisits force a segmentation cut (§3.2).
type demandKey struct {
	dir  Direction
	sw   topo.NodeID
	mb   topo.MBInstanceID
	from topo.NodeID
}

// demand is one recorded forwarding decision during loop detection.
type demand struct {
	next NextHop
	pos  int
}

// findCuts returns the sorted path positions where a new loop segment must
// begin: within one segment, no (direction, switch, context) may demand two
// different next hops, or a single (tag, prefix) rule could not express the
// path (§3.2 "Dealing with loops"). It refines iteratively until both
// directions are conflict-free. The demand table is scratch state (cleared
// per iteration), so the loop-free common case does not allocate.
func (in *Installer) findCuts(down, up []step, pathLen int) []int {
	var cuts []int
	inSegment := func(pos int) int { // segment index for a position
		return sort.SearchInts(cuts, pos+1)
	}
	demands := in.scratch.demands
	for iter := 0; iter < pathLen+2; iter++ {
		clear(demands)
		conflictAt := -1
		for dirIdx, steps := range [2][]step{down, up} {
			for _, st := range steps {
				from := topo.None
				if st.fromMB == NoMB {
					from = st.inFrom
				}
				k := demandKey{Direction(dirIdx), st.sw, st.fromMB, from}
				prev, ok := demands[k]
				if ok && inSegment(prev.pos) == inSegment(st.pos) && prev.next != st.next {
					// Cut between the two conflicting positions.
					lo, hi := prev.pos, st.pos
					if lo > hi {
						lo, hi = hi, lo
					}
					conflictAt = hi // boundary a: lo <= a-1 < a <= hi
					break
				}
				// Keep the later position so chained conflicts refine.
				demands[k] = demand{st.next, st.pos}
			}
			if conflictAt >= 0 {
				break
			}
		}
		if conflictAt < 0 {
			return cuts
		}
		i := sort.SearchInts(cuts, conflictAt)
		if i < len(cuts) && cuts[i] == conflictAt {
			// Refusing to loop forever on a conflict inside one position
			// (cannot happen: contexts differ within a position).
			return cuts
		}
		cuts = append(cuts, 0)
		copy(cuts[i+1:], cuts[i:])
		cuts[i] = conflictAt
	}
	return cuts
}

// sliceByPos splits annotated steps into len(cuts)+1 groups by position
// interval; group i holds positions [start_i, start_{i+1}).
func sliceByPos(steps []step, cuts []int) [][]step {
	groups := make([][]step, len(cuts)+1)
	for _, st := range steps {
		g := sort.SearchInts(cuts, st.pos+1)
		groups[g] = append(groups[g], st)
	}
	return groups
}

// candidateTags assembles candTag for one segment of a path: tags
// previously used for the same (chain signature, segment), then — when the
// hints are empty or PaperExactCandidates is set — tags present on the
// path's switches. Tags already used by this origin (or chosen for an
// earlier segment of this very path) are excluded, per footnote 2. The
// returned slice is scratch state, valid until the next call.
func (in *Installer) candidateTags(p *routing.Path, chainKey string, seg int, taken []packet.Tag) []packet.Tag {
	if in.Opts.FreshTagPerPath {
		return nil
	}
	out := in.scratch.cands[:0]
	seen := in.scratch.candSeen
	clear(seen)
	defer func() { in.scratch.cands = out[:0] }()
	add := func(t packet.Tag) {
		if t == 0 || seen[t] || in.originHas(p.Origin, t) {
			return
		}
		for _, tt := range taken {
			if tt == t {
				return
			}
		}
		seen[t] = true
		out = append(out, t)
	}
	for _, t := range in.chainTags[chainSegKey{chainKey, seg}] {
		add(t)
	}
	if len(out) > 0 && !in.Opts.PaperExactCandidates {
		return out
	}
	perSwitch := 0 // 0 = all
	if in.Opts.MaxCandidates > 0 {
		if len(out) >= in.Opts.MaxCandidates {
			return out
		}
		perSwitch = in.Opts.MaxCandidates
	}
	for _, sw := range p.Switches {
		for _, t := range in.fibs[sw].RecentTags(perSwitch) {
			add(t)
			if in.Opts.MaxCandidates > 0 && len(out) >= in.Opts.MaxCandidates {
				return out
			}
		}
	}
	return out
}

// lookupStep answers what (dir, tag, prefix) traffic in the step's context
// would currently do at the step's switch.
func (in *Installer) lookupStep(dir Direction, st step, tag packet.Tag, prefix packet.Prefix) (NextHop, bool) {
	f := in.fibs[st.sw]
	if st.fromMB != NoMB {
		return f.GetNextHopFromMB(dir, st.fromMB, tag, prefix)
	}
	return f.GetNextHopVia(dir, st.inFrom, tag, prefix)
}

// costForTag implements lines 1-6 of Algorithm 1: the number of new rules
// required to realise the segment under candidate tag t, in both
// directions. It mirrors installSteps' placement policy exactly, including
// which rules land in the in-port-qualified context.
func (in *Installer) costForTag(down, up []step, t packet.Tag, prefix packet.Prefix, canon canonCtx) int {
	cost := 0
	mainUse := in.scratch.costUse
	for dirIdx, steps := range [2][]step{down, up} {
		dir := Direction(dirIdx)
		clear(mainUse)
		for _, st := range steps {
			f := in.fibs[st.sw]
			if st.fromMB != NoMB {
				cur, ok := f.GetNextHopFromMB(dir, st.fromMB, t, prefix)
				if ok && cur == st.next {
					continue
				}
				if !f.hasMBTagState(dir, st.fromMB, t) {
					if nh, locOK := f.LookupMBLocation(dir, st.fromMB, prefix); locOK && nh == st.next {
						continue
					}
					if in.canonicalStep(dir, st, canon) {
						cost++ // one shared mb-location entry (often merges free)
						continue
					}
				}
				if ok && !in.Opts.NoPrefixAggregation {
					if s := f.mbState(dir, st.fromMB, t, false); s != nil &&
						s.prefix != nil && s.prefix.CanAggregate(prefix, st.next) {
						continue
					}
				}
				cost++
				continue
			}
			// Network-port step: port-qualified rules outrank main.
			if ps := f.portState(dir, st.inFrom, t, false); ps != nil {
				if nh, ok := ps.prefixLookup(prefix); ok {
					if nh != st.next {
						cost++ // cross-path port-rule divergence
					}
					continue
				}
			}
			var cur NextHop
			var fromTag, ok bool
			if stTag := f.state(dir, t, false); stTag != nil {
				if nh, hit := stTag.prefixLookup(prefix); hit {
					cur, fromTag, ok = nh, true, true
				} else if stTag.hasDef {
					cur, fromTag, ok = stTag.def, true, true
				}
			}
			if !ok {
				cur, ok = f.LookupLocation(dir, prefix)
			}
			if ok && cur == st.next {
				mainUse[st.sw] = cur
				continue
			}
			if prev, used := mainUse[st.sw]; used && prev != st.next {
				if !in.Opts.NoPrefixAggregation {
					if ps := f.portState(dir, st.inFrom, t, false); ps != nil &&
						ps.prefix != nil && ps.prefix.CanAggregate(prefix, st.next) {
						continue
					}
				}
				cost++
				continue
			}
			if !fromTag {
				cost++ // location entry, Type 2 default, or Type 1 rule
				mainUse[st.sw] = st.next
				continue
			}
			if !in.Opts.NoPrefixAggregation {
				if ms := f.state(dir, t, false); ms != nil && ms.prefix != nil &&
					ms.prefix.CanAggregate(prefix, st.next) {
					mainUse[st.sw] = st.next
					continue
				}
			}
			cost++
			mainUse[st.sw] = st.next
		}
	}
	return cost
}

// installSteps realises one direction's segment steps under tag t (lines
// 11-16). It returns the net rule delta. Placement policy: middlebox-return
// steps go to the middlebox in-port context; network steps prefer the
// port-wildcard main context (a tag-only default when the tag is new here,
// a (tag, prefix) override on divergence) and fall back to in-port-qualified
// rules when the segment itself needs two different decisions for the same
// (tag, prefix) at one switch — the different-link loop of §3.2.
func (in *Installer) installSteps(dir Direction, steps []step, t packet.Tag, prefix packet.Prefix, canon canonCtx) int {
	delta := 0
	mainUse := in.scratch.installUse
	clear(mainUse)
	doInsert := func(tr *prefixTrie, nh NextHop) {
		if in.Opts.NoPrefixAggregation {
			delta += insertNoAgg(tr, prefix, nh)
		} else {
			delta += tr.Insert(prefix, nh)
		}
	}
	for _, st := range steps {
		f := in.fibs[st.sw]
		if st.fromMB != NoMB {
			// Provenance-aware ladder: mb tag state, then mb location,
			// then the fall-through to the main context.
			if stMB := f.mbState(dir, st.fromMB, t, false); stMB != nil {
				if nh, ok := stMB.prefixLookup(prefix); ok {
					if nh != st.next {
						doInsert(stMB.trie(), st.next)
					}
					continue
				}
				if stMB.hasDef {
					if stMB.def != st.next {
						doInsert(stMB.trie(), st.next)
					}
					continue
				}
			}
			if nh, ok := f.LookupMBLocation(dir, st.fromMB, prefix); ok {
				if nh == st.next {
					f.MarkMBLocReliant(dir, st.fromMB, t)
					continue
				}
				// Prefix-precise override outranking the location rule.
				doInsert(f.mbState(dir, st.fromMB, t, true).trie(), st.next)
				continue
			}
			if in.canonicalStep(dir, st, canon) {
				// Tag-independent dispatch from the chain's last middlebox
				// into the canonical fan-out.
				delta += f.InsertMBLocation(dir, st.fromMB, prefix, st.next)
				f.MarkMBLocReliant(dir, st.fromMB, t)
				continue
			}
			if cur, ok := f.GetNextHop(dir, t, prefix); ok && cur == st.next {
				// Satisfied by the main-context fall-through; protect it
				// from future mb-context defaults and main clobbering.
				f.MarkMBLocReliant(dir, st.fromMB, t)
				mainUse[st.sw] = cur
				continue
			}
			if !in.Opts.NoTagDefault && !f.MBLocReliant(dir, st.fromMB, t) {
				delta += f.SetMBDefault(dir, st.fromMB, t, st.next)
				continue
			}
			doInsert(f.mbState(dir, st.fromMB, t, true).trie(), st.next)
			continue
		}
		if ps := f.portState(dir, st.inFrom, t, false); ps != nil {
			if nh, ok := ps.prefixLookup(prefix); ok {
				if nh != st.next {
					doInsert(ps.trie(), st.next)
				}
				continue
			}
		}
		// Provenance-aware resolution: tag state (Type 1/2) over the shared
		// location table (Type 3).
		var cur NextHop
		var fromTag, ok bool
		if stTag := f.state(dir, t, false); stTag != nil {
			if nh, hit := stTag.prefixLookup(prefix); hit {
				cur, fromTag, ok = nh, true, true
			} else if stTag.hasDef {
				cur, fromTag, ok = stTag.def, true, true
			}
		}
		if !ok {
			cur, ok = f.LookupLocation(dir, prefix)
		}
		if ok && cur == st.next {
			if !fromTag {
				// Satisfied by the location table: remember so no later
				// install shadows it with a Type 2 default for this tag.
				f.MarkLocReliant(dir, t)
			}
			mainUse[st.sw] = cur
			continue
		}
		if prev, used := mainUse[st.sw]; used && prev != st.next {
			doInsert(f.portState(dir, st.inFrom, t, true).trie(), st.next)
			continue
		}
		if !fromTag {
			if !ok && in.canonicalStep(dir, st, canon) {
				// Shared Type 3 location rule (Fig. 3(a)): one prefix-only
				// entry serves every clause whose tail crosses this switch.
				delta += f.InsertLocation(dir, prefix, st.next)
				f.MarkLocReliant(dir, t)
				mainUse[st.sw] = st.next
				continue
			}
			if !in.Opts.NoTagDefault && !f.LocReliant(dir, t) {
				// First tag state here: a tag-only Type 2 rule covers every
				// prefix on the shared segment (Fig. 3(c) CS1).
				delta += f.SetDefault(dir, t, st.next)
				mainUse[st.sw] = st.next
				continue
			}
		}
		doInsert(f.state(dir, t, true).trie(), st.next)
		mainUse[st.sw] = st.next
	}
	return delta
}

// canonicalStep reports whether the step's decision matches the canonical
// gateway tree, making it eligible for a shared location rule.
func (in *Installer) canonicalStep(dir Direction, st step, canon canonCtx) bool {
	if dir == Down {
		return in.canonicalDown(canon, st.sw, st.next)
	}
	return canon.canonicalUp(st.sw, st.next)
}

// dropAccessSteps filters out steps at access-layer switches (counting
// mode; see InstallerOptions.SkipAccessSwitchRules).
func (in *Installer) dropAccessSteps(steps []step) []step {
	out := steps[:0]
	for _, st := range steps {
		if in.T.Nodes[st.sw].Kind != topo.Access {
			out = append(out, st)
		}
	}
	return out
}

// insertNoAgg installs an entry without sibling merging (ablation).
func insertNoAgg(tr *prefixTrie, p packet.Prefix, nh NextHop) int {
	n := tr.node(p, true)
	delta := 0
	if !n.set {
		n.set = true
		tr.count++
		delta = 1
	}
	n.nh = nh
	return delta
}

// setCrossingSwap rewrites the last step of a segment to also swap the
// packet's tag — the §3.2 loop rule connecting two segments. The crossing
// can be a network hop or a middlebox detour (when the loop closes inside
// one switch); either way, the rewrite happens before the next lookup.
func setCrossingSwap(steps []step, to packet.Tag) {
	if len(steps) > 0 {
		steps[len(steps)-1].next.NewTag = to
	}
}

// InstallPath runs Algorithm 1 for one policy path: split loops into
// segments, pick a tag per segment (reuse minimising new rules, else
// fresh), install rules in both directions, and wire tag swaps between
// segments. Segments install far-end first so no packet can follow a
// half-installed path (consistent updates, citing [23]).
func (in *Installer) InstallPath(p *routing.Path) (*InstalledPath, error) {
	if p == nil || p.Len() == 0 {
		return nil, fmt.Errorf("core: empty path")
	}
	bs, ok := in.T.Station(p.Origin)
	if !ok {
		return nil, fmt.Errorf("core: unknown origin base station %d", p.Origin)
	}
	if p.Access() != bs.Access {
		return nil, fmt.Errorf("core: path access end %d does not serve base station %d", p.Access(), p.Origin)
	}
	for i := 0; i < p.Len()-1; i++ {
		if p.Switches[i] == bs.Access {
			return nil, fmt.Errorf("core: path transits its own access switch at position %d (unsupported: delivery microflows would short-circuit it)", i)
		}
	}
	if p.MBAt[p.Len()-1] != routing.NoMB {
		return nil, fmt.Errorf("core: middlebox at the origin's access switch is unsupported (delivery microflows would short-circuit it)")
	}
	prefix, err := in.plan.BSPrefix(p.Origin)
	if err != nil {
		return nil, err
	}

	down := expandSteps(p, Down, in.scratch.down[:0])
	var up []step
	if !in.Opts.DownstreamOnly {
		up = expandSteps(p, Up, in.scratch.up[:0])
	}
	if in.Opts.SkipAccessSwitchRules {
		down = in.dropAccessSteps(down)
		up = in.dropAccessSteps(up)
	}
	in.scratch.down, in.scratch.up = down[:0], up[:0]
	cuts := in.findCuts(down, up, p.Len())
	var downSegs, upSegs [][]step
	if len(cuts) == 0 {
		// Loop-free path (the overwhelmingly common case): one segment per
		// direction, no per-group copies.
		downSegs = append(in.scratch.downSegs[:0], down)
		upSegs = append(in.scratch.upSegs[:0], up)
		in.scratch.downSegs, in.scratch.upSegs = downSegs[:0], upSegs[:0]
	} else {
		downSegs = sliceByPos(down, cuts)
		upSegs = sliceByPos(up, cuts)
		in.stats.LoopsSplit++
	}

	canon := in.canonFor(p, bs.Access)
	chainKey := routing.ChainKey(p.Gateway(), p.Chain)
	tags := make([]packet.Tag, len(downSegs))
	for i := range tags {
		if !in.Opts.FreshTagPerPath {
			cands := in.candidateTags(p, chainKey, i, tags[:i])
			bestTag, bestCost := packet.Tag(0), -1
			for _, t := range cands {
				in.stats.CandidatesTried++
				c := in.costForTag(downSegs[i], upSegs[i], t, prefix, canon)
				if bestCost < 0 || c < bestCost {
					bestTag, bestCost = t, c
					if c == 0 {
						break
					}
				}
			}
			if bestCost >= 0 {
				tags[i] = bestTag
				continue
			}
		}
		// A new tag when candTag is empty (Algorithm 1 lines 9-10).
		t, err := in.freshTag()
		if err != nil {
			return nil, err
		}
		tags[i] = t
	}

	// Wire inter-segment swaps. Downstream crosses from segment i to i+1 on
	// segment i's last network step; upstream traverses segments in reverse
	// (i+1 before i), crossing back on segment i+1's last up step.
	for i := 0; i+1 < len(downSegs); i++ {
		setCrossingSwap(downSegs[i], tags[i+1])
		setCrossingSwap(upSegs[i+1], tags[i])
	}

	// Install far-end first per direction.
	rules := 0
	for i := len(downSegs) - 1; i >= 0; i-- {
		rules += in.installSteps(Down, downSegs[i], tags[i], prefix, canon)
	}
	for i := 0; i < len(upSegs); i++ {
		rules += in.installSteps(Up, upSegs[i], tags[i], prefix, canon)
	}
	in.stats.Rules += rules
	in.stats.Paths++

	for i, t := range tags {
		in.originAdd(p.Origin, t)
		if in.Opts.FreshTagPerPath {
			continue
		}
		key := chainSegKey{chainKey, i}
		known := false
		for _, tt := range in.chainTags[key] {
			if tt == t {
				known = true
				break
			}
		}
		if !known {
			in.chainTags[key] = append(in.chainTags[key], t)
		}
	}

	in.nextID++
	var rec *InstalledPath
	if in.Opts.DiscardPathRecords {
		// Transient record: the sweep drops it after reading; interning its
		// chain would retain one entry per signature across tens of millions
		// of installs for nothing.
		rec = &InstalledPath{Chain: append([]topo.MBInstanceID(nil), p.Chain...)}
	} else {
		rec = in.arena.alloc()
		rec.Chain = in.internChain(chainKey, p.Chain)
	}
	rec.ID = in.nextID
	rec.Origin = p.Origin
	rec.Route = p
	rec.setTags(tags)
	if !in.Opts.DiscardPathRecords {
		in.paths[rec.ID] = rec
	}
	return rec, nil
}

// internChain returns the canonical chain slice for one chain signature,
// copying on first sight. Entries live for the installer's lifetime: the
// population is bounded by distinct (gateway, instance-chain) signatures,
// not by installs.
func (in *Installer) internChain(key string, chain []topo.MBInstanceID) []topo.MBInstanceID {
	if c, ok := in.chains[key]; ok {
		return c
	}
	cp := append([]topo.MBInstanceID(nil), chain...)
	in.chains[key] = cp
	return cp
}

// Rebuild reinstalls every retained path from scratch — the paper's offline
// counterpart to the online algorithm ("couple the online algorithm with an
// offline algorithm that would regularly recompute the optimal forwarding
// entries"). It is also how path REMOVAL works: aggregated rules are shared
// between paths, so deleting one path's rules in place could strand or
// break others; recomputing from the surviving set is always correct.
// keep selects the paths to retain (nil keeps everything — a pure
// re-optimisation pass).
func (in *Installer) Rebuild(keep func(*InstalledPath) bool) error {
	retained := make([]*InstalledPath, 0, len(in.paths))
	dropped := make([]*InstalledPath, 0)
	for _, p := range in.paths {
		if keep == nil || keep(p) {
			retained = append(retained, p)
		} else {
			dropped = append(dropped, p)
		}
	}
	sort.Slice(retained, func(i, j int) bool { return retained[i].ID < retained[j].ID })

	for i := range in.fibs {
		in.fibs[i] = NewFIB(topo.NodeID(i))
	}
	in.chainTags = make(map[chainSegKey][]packet.Tag)
	in.originTags = make(map[packet.BSID][]packet.Tag)
	in.paths = make(map[PathID]*InstalledPath)
	// nextTag is NOT reset: tags already embedded in access-switch
	// microflows and agent caches must never alias onto new paths.
	roots := in.treeParent
	in.treeParent = make(map[topo.NodeID][]topo.NodeID)
	in.stats = InstallStats{}
	for root := range roots {
		in.EnableLocationRouting(root)
	}

	// Withdrawn records go back to the arena only now, after the maps no
	// longer reference them (their slots may be handed out by the
	// re-installs below).
	for _, p := range dropped {
		in.arena.release(p)
	}

	for _, old := range retained {
		rec, err := in.InstallPath(old.Route)
		if err != nil {
			return fmt.Errorf("core: rebuild of path %d failed: %w", old.ID, err)
		}
		// Preserve identity so controller caches stay valid: the original
		// record adopts the fresh payload (re-anchoring inline tags to its
		// own storage) and the fresh record's slot is recycled.
		delete(in.paths, rec.ID)
		old.copyPayloadFrom(rec)
		in.arena.release(rec)
		in.paths[old.ID] = old
	}
	return nil
}
