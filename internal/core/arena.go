package core

// This file is the installed-path arena (DESIGN.md §14): path records live
// in chunked slabs with a slot free list instead of one heap object per
// install. Records never move (chunked slabs), so *InstalledPath pointers
// held by the controller's path map stay valid across arena growth; a
// record's slot returns to the free list when the path is withdrawn
// (RemovePolicyPaths) or when Rebuild discards the fresh record after
// copying it over the identity-preserving original. Loop-free paths — the
// overwhelmingly common case — keep their single tag in the record's
// inline array, so a steady-state install allocates no per-path slices.
//
// The arena is owned by the Installer and therefore serialised under the
// controller's ruleMu. Rule-counting sweeps (DiscardPathRecords) bypass it:
// their records are transient by design and must not pin slab memory.

// pathSlabShift sizes one arena slab at 512 records.
const pathSlabShift = 9
const pathSlabSize = 1 << pathSlabShift

// pathArena allocates InstalledPath records in chunked slabs.
type pathArena struct {
	slabs [][]InstalledPath
	free  []uint32
	next  uint32
}

// alloc returns a zeroed record with its arena slot stamped (slot+1; 0
// marks a heap record the arena will refuse to reclaim).
func (a *pathArena) alloc() *InstalledPath {
	var slot uint32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		slot = a.next
		a.next++
		if int(slot>>pathSlabShift) == len(a.slabs) {
			a.slabs = append(a.slabs, make([]InstalledPath, pathSlabSize))
		}
	}
	rec := &a.slabs[slot>>pathSlabShift][slot&(pathSlabSize-1)]
	*rec = InstalledPath{slot: slot + 1}
	return rec
}

// release returns a record's slot to the free list. Heap records (slot 0,
// from DiscardPathRecords mode) are left to the garbage collector.
func (a *pathArena) release(rec *InstalledPath) {
	if rec.slot == 0 {
		return
	}
	slot := rec.slot - 1
	*rec = InstalledPath{}
	a.free = append(a.free, slot)
}

// bytes reports the slab footprint.
func (a *pathArena) bytes() uint64 {
	const recSize = 80 // unsafe.Sizeof(InstalledPath{}) on 64-bit
	return uint64(len(a.slabs))*pathSlabSize*recSize + uint64(len(a.free))*4
}

// freeSlots reports the free-list depth.
func (a *pathArena) freeSlots() int { return len(a.free) }
