package core

import (
	"errors"
	"fmt"

	"repro/internal/packet"
	"repro/internal/policy"
)

// This file is the surface the sharded controller runtime (internal/shard)
// builds on: base-station ownership, batched path resolution, and explicit
// UE migration between controller instances. A restricted controller owns a
// disjoint slice of the access network; because LocIPs embed the
// base-station ID (§4.1), disjoint station sets imply disjoint LocIP
// sub-pools with no further coordination.

// ErrNotOwned marks a request naming a base station outside the
// controller's restricted subset (ControllerConfig.Stations). The shard
// dispatcher uses it to detect misrouted requests after a ring change.
var ErrNotOwned = errors.New("base station not owned by this controller")

// ownsLocked reports whether the controller serves bs.
//
// caller holds ueMu
func (c *Controller) ownsLocked(bs packet.BSID) bool {
	return c.owned == nil || c.owned[bs]
}

// Owns reports whether the controller serves bs.
func (c *Controller) Owns(bs packet.BSID) bool {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	return c.ownsLocked(bs)
}

// Stations lists the controller's owned base stations; nil means all.
func (c *Controller) Stations() []packet.BSID {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	if c.owned == nil {
		return nil
	}
	out := make([]packet.BSID, 0, len(c.owned))
	for bs := range c.owned {
		out = append(out, bs)
	}
	return out
}

// PathQuery names one policy-path resolution.
type PathQuery struct {
	BS     packet.BSID
	Clause int
}

// PathAnswer is the result of one PathQuery.
type PathAnswer struct {
	Tag packet.Tag
	Err error
}

// RequestPathBatch resolves a batch of path requests. Shard workers
// dequeue requests in batches and answer them through this call. The first
// pass answers repeat requests from the tagCache snapshot with no lock and
// no allocation; only the misses (marked by the tag-0 sentinel — a real
// tag is never 0) pay for the ownership check and the rule-table lock, and
// those locks are taken once per batch, not once per miss. out is reused
// when it has capacity.
//
// hotpath: no alloc, no lock
func (c *Controller) RequestPathBatch(qs []PathQuery, out []PathAnswer) []PathAnswer {
	if cap(out) < len(qs) {
		//lint:ignore hotpath first-call growth only; steady-state batches reuse the caller's slice
		out = make([]PathAnswer, len(qs))
	}
	out = out[:len(qs)]
	c.pathAsks.Add(uint64(len(qs)))
	tags := *c.tagCache.Load()
	misses := 0
	for i, q := range qs {
		out[i].Tag = tags[pathKey{q.BS, q.Clause}]
		out[i].Err = nil
		if out[i].Tag == 0 {
			misses++
		}
	}
	c.obs.cacheHit.Add(uint64(len(qs) - misses))
	if misses == 0 {
		return out
	}
	return c.requestPathBatchSlow(qs, out, misses)
}

// requestPathBatchSlow answers the cache misses of one batch: the
// ownership check under the UE read lock, then resolution under the
// rule-table lock, each taken once for the whole batch.
//
// hotpath: cold
func (c *Controller) requestPathBatchSlow(qs []PathQuery, out []PathAnswer, misses int) []PathAnswer {
	c.obs.cacheMiss.Add(uint64(misses))
	c.ueMu.RLock()
	for i := range out {
		if out[i].Tag == 0 && !c.ownsLocked(qs[i].BS) {
			out[i].Err = fmt.Errorf("core: path request from base station %d: %w", qs[i].BS, ErrNotOwned)
		}
	}
	c.ueMu.RUnlock()
	// Same sampled lock-wait probe as requestPathSlow: one batch counts as
	// one slow-path entry.
	if c.obs.ruleWait != nil && c.slowSeq.Add(1)%ruleWaitSampleEvery == 0 {
		t0 := c.obs.reg.Now()
		c.ruleMu.Lock()
		c.obs.ruleWait.Observe(c.obs.reg.Now() - t0)
	} else {
		c.ruleMu.Lock()
	}
	for i := range out {
		if out[i].Tag == 0 && out[i].Err == nil {
			out[i].Tag, out[i].Err = c.resolvePathLocked(qs[i].BS, qs[i].Clause)
		}
	}
	c.ruleMu.Unlock()
	return out
}

// MigratedUE is the frozen record handed between controllers when a UE
// crosses a shard boundary: everything location-independent about the
// device, plus where it came from so the new owner can report the move.
type MigratedUE struct {
	IMSI     string
	Attr     policy.Attributes
	PermIP   packet.Addr
	OldBS    packet.BSID
	OldLocIP packet.Addr
}

// ExtractUE freezes and removes a UE's record for migration to another
// controller (phase one of a cross-shard handoff). Its location state is
// released — old-LocIP reservations and their shortcuts come down, since
// the shortcut state lives in this controller's switches only — and the
// record is deleted from the replicated store; the target controller
// persists it again under its own state. The departure station's memoised
// tags are dropped so nothing cached spans the migration.
func (c *Controller) ExtractUE(imsi string) (MigratedUE, error) {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	c.ruleMu.Lock()
	defer c.ruleMu.Unlock()
	r, slot, ok := c.ues.get(imsi)
	if !ok || r.flags&ueHasRecord == 0 {
		return MigratedUE{}, fmt.Errorf("core: unknown UE %q", imsi)
	}
	m := MigratedUE{IMSI: imsi, Attr: c.attrs.attrOf(r.attr), PermIP: r.permIP, OldBS: r.bs, OldLocIP: r.locIP}
	if r.locIP != 0 {
		c.ues.locIdx.delete(r.locIP)
		c.freeUEIDLocked(r.bs, r.ueid)
	}
	for loc, rsv := range c.reservations {
		if rsv.imsi != imsi {
			continue
		}
		for _, sc := range rsv.shortcuts {
			c.Installer.RemoveShortcut(sc)
		}
		delete(c.reservations, loc)
		// The reserved address is still indexed to this UE's slot (Handoff
		// keeps it there for in-flight downstream flows); drop the entry or
		// it would dangle after the record below is cleared.
		c.ues.locIdx.delete(loc)
		if bs, id, ok := c.plan.Split(loc); ok {
			c.freeUEIDLocked(bs, id)
		}
	}
	c.ues.permIdx.delete(r.permIP)
	// Clear the UE half of the record; the subscriber half (if registered)
	// stays, exactly as the old layout kept the subscriber map entry. A
	// record playing no role at all returns its slot to the free list.
	c.attrs.release(r.attr)
	r.attr = 0
	r.permIP, r.locIP, r.bs, r.ueid = 0, 0, 0, 0
	r.flags &^= ueHasRecord
	if r.flags == 0 {
		c.ues.freeRec(slot)
	}
	c.invalidateStationLocked(m.OldBS)
	if _, err := c.Store.Delete("ue/" + imsi); err != nil {
		return MigratedUE{}, err
	}
	return m, nil
}

// AdoptUE installs a migrated UE at a base station this controller owns
// (phase two of a cross-shard handoff): the permanent IP travels with the
// record, a fresh LocIP is allocated from this controller's sub-pool, and
// classifiers are compiled against this controller's path table — so the
// UE's policy paths keep resolving, now through its new shard.
func (c *Controller) AdoptUE(m MigratedUE, bs packet.BSID) (UE, []Classifier, error) {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	if _, ok := c.T.Station(bs); !ok {
		return UE{}, nil, fmt.Errorf("core: unknown base station %d", bs)
	}
	if !c.ownsLocked(bs) {
		return UE{}, nil, fmt.Errorf("core: adopt at base station %d: %w", bs, ErrNotOwned)
	}
	r, slot, ok := c.ues.get(m.IMSI)
	if ok && r.flags&ueHasRecord != 0 {
		return UE{}, nil, fmt.Errorf("core: UE %q already present", m.IMSI)
	}
	if !ok {
		r, slot = c.ues.alloc(m.IMSI)
	}
	if r.flags&ueRegistered == 0 {
		r.subAttr = c.attrs.acquire(m.Attr, c.Policy)
		r.flags |= ueRegistered
	}
	c.allocMu.Lock()
	id, loc, err := c.allocLocIP(bs)
	c.allocMu.Unlock()
	if err != nil {
		return UE{}, nil, err
	}
	// The migrated record's attributes travel with it, even when they differ
	// from a pre-existing local subscriber record.
	r.flags |= ueHasRecord
	r.attr = c.attrs.acquire(m.Attr, c.Policy)
	r.permIP = m.PermIP
	r.bs, r.ueid, r.locIP = bs, id, loc
	c.ues.permIdx.insert(m.PermIP, slot)
	c.ues.locIdx.insert(loc, slot)
	c.handoffs.Add(1)
	if err := c.persistUELocked(r); err != nil {
		return UE{}, nil, err
	}
	return c.ueViewLocked(r), c.classifiersLocked(r), nil
}

// AbsorbStation extends the controller's ownership to bs and imports the
// given UE records verbatim (preserving each UE's reported UEID and LocIP,
// exactly as RecoverLocations does) — the shard-failover path: a dead
// shard's stations rehash to survivors, which rebuild the location state
// from the replicated store and live agents' reports. Any memoised tags
// for the absorbed station are dropped: the first path request after the
// move re-derives against this controller's own rule table.
func (c *Controller) AbsorbStation(bs packet.BSID, ues []UE) error {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	if _, ok := c.T.Station(bs); !ok {
		return fmt.Errorf("core: unknown base station %d", bs)
	}
	if c.owned != nil {
		c.owned[bs] = true
	}
	c.ruleMu.Lock()
	c.invalidateStationLocked(bs)
	c.ruleMu.Unlock()
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	c.ensureBSLocked(bs)
	for _, u := range ues {
		if u.LocIP == 0 || u.UEID == 0 {
			continue // detached record: nothing to rebuild
		}
		r, slot, ok := c.ues.get(u.IMSI)
		if !ok {
			r, slot = c.ues.alloc(u.IMSI)
		}
		if r.flags&ueHasRecord == 0 {
			r.flags |= ueHasRecord
			c.attrs.release(r.attr)
			r.attr = c.attrs.acquire(u.Attr, c.Policy)
			r.permIP = u.PermIP
		}
		if r.flags&ueRegistered == 0 {
			r.flags |= ueRegistered
			r.subAttr = c.attrs.acquire(u.Attr, c.Policy)
		}
		r.bs, r.ueid, r.locIP = bs, u.UEID, u.LocIP
		c.ues.locIdx.insert(u.LocIP, slot)
		c.ues.permIdx.insert(r.permIP, slot)
		if u.UEID > c.nextUEID[bs] {
			c.nextUEID[bs] = u.UEID
		}
		if err := c.persistUELocked(r); err != nil {
			return err
		}
	}
	return nil
}
