package core

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/routing"
	"repro/internal/topo"
)

func TestRebuildPreservesPaths(t *testing.T) {
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{})
	pl := routing.NewPlanner(n.Topology)
	var recs []*InstalledPath
	for bs := packet.BSID(0); bs < 4; bs++ {
		route, err := pl.Plan(bs, []topo.MBType{0, 1}, n.gw)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := in.InstallPath(route)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	rulesBefore := in.Stats().Rules
	if err := in.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	// Same path population, still verifiable, comparable rule count.
	if len(in.Paths()) != len(recs) {
		t.Fatalf("paths after rebuild = %d", len(in.Paths()))
	}
	for _, rec := range recs {
		if err := in.VerifyPath(rec); err != nil {
			t.Fatalf("path %d broken after rebuild: %v", rec.ID, err)
		}
	}
	if after := in.Stats().Rules; after > rulesBefore {
		t.Fatalf("offline recomputation should not need more rules: %d > %d", after, rulesBefore)
	}
}

func TestRebuildRemovesPaths(t *testing.T) {
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{})
	pl := routing.NewPlanner(n.Topology)
	var recs []*InstalledPath
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, chain := range [][]topo.MBType{{0}, {0, 1}} {
			route, err := pl.Plan(bs, chain, n.gw)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := in.InstallPath(route)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
	}
	full := in.Stats().Rules
	// Drop every two-box path.
	if err := in.Rebuild(func(p *InstalledPath) bool { return len(p.Chain) == 1 }); err != nil {
		t.Fatal(err)
	}
	if got := len(in.Paths()); got != 4 {
		t.Fatalf("paths after removal = %d, want 4", got)
	}
	if in.Stats().Rules >= full {
		t.Fatalf("removal should shrink the tables: %d >= %d", in.Stats().Rules, full)
	}
	for _, rec := range recs {
		if len(rec.Chain) != 1 {
			continue
		}
		if err := in.VerifyPath(rec); err != nil {
			t.Fatalf("surviving path %d broken: %v", rec.ID, err)
		}
	}
}

func TestControllerRemovePolicyPaths(t *testing.T) {
	c, _ := testController(t)
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A", Plan: "silver"})
	ue, _, _ := c.Attach("a", 0)
	webClause, _ := c.Policy.Match(ue.Attr, policy.AppWeb)
	videoClause, _ := c.Policy.Match(ue.Attr, policy.AppVideo)
	if _, err := c.RequestPath(0, webClause); err != nil {
		t.Fatal(err)
	}
	tagVideo, err := c.RequestPath(0, videoClause)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemovePolicyPaths(videoClause); err != nil {
		t.Fatal(err)
	}
	// The web path survives and re-resolves; the video path is re-installed
	// fresh on demand.
	if _, err := c.RequestPath(0, webClause); err != nil {
		t.Fatal(err)
	}
	misses := c.Stats().PathMiss
	tag2, err := c.RequestPath(0, videoClause)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().PathMiss != misses+1 {
		t.Fatal("video path should have been re-installed")
	}
	_ = tagVideo
	_ = tag2
	if len(c.Store.Keys("path/")) != 2 {
		t.Fatalf("store path keys = %v", c.Store.Keys("path/"))
	}
	// Removing a clause with no paths is a no-op.
	if err := c.RemovePolicyPaths(9999); err != nil {
		t.Fatal(err)
	}
}
