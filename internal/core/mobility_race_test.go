package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
)

// TestHandoffDuringSwitchFailureReconverges races UE handoffs against
// switch failure/recovery recomputations. Each recomputation rebuilds the
// installer and the path map wholesale while handoffs are concurrently
// allocating addresses and retargeting reservation shortcuts; afterwards
// the tag cache, the installed-path map, and the rule tables must agree
// again — exactly what CheckInvariants asserts. Run under -race by `make
// verify`, this is the reconvergence half of the chaos harness distilled
// to two actors.
func TestHandoffDuringSwitchFailureReconverges(t *testing.T) {
	c, n := testController(t)
	const nUE = 8
	imsis := make([]string, nUE)
	for i := range imsis {
		imsis[i] = fmt.Sprintf("imsi-%d", i)
		if err := c.RegisterSubscriber(imsis[i], policy.Attributes{Provider: "A"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Attach(imsis[i], packet.BSID(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	clauses := allowClauses(c.Policy)
	for bs := packet.BSID(0); bs < 4; bs++ {
		if _, err := c.RequestPath(bs, clauses[0]); err != nil {
			t.Fatal(err)
		}
	}

	iters := 150
	if testing.Short() {
		iters = 30
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				_, _ = c.Handoff(imsis[rng.Intn(nUE)], packet.BSID(rng.Intn(4)))
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.FailSwitch(n.cs3); err != nil {
				t.Errorf("FailSwitch: %v", err)
				return
			}
			if _, err := c.RecoverSwitch(n.cs3); err != nil {
				t.Errorf("RecoverSwitch: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Quiesce: expire every reserved old LocIP, then demand full global
	// consistency.
	c.ueMu.RLock()
	reserved := make([]packet.Addr, 0, len(c.reservations))
	for loc := range c.reservations {
		reserved = append(reserved, loc)
	}
	c.ueMu.RUnlock()
	for _, loc := range reserved {
		c.ReleaseOldLocIP(loc, nil)
	}
	rep, err := c.CheckInvariants()
	if err != nil {
		t.Fatalf("invariants after handoff/failure race: %v", err)
	}
	if rep.Reservations != 0 {
		t.Fatalf("reservations leaked: %d", rep.Reservations)
	}
	// With the dust settled the controller answers every combination again.
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			if tag, err := c.RequestPath(bs, cl); err != nil || tag == 0 {
				t.Fatalf("RequestPath(%d, %d): tag %d, %v", bs, cl, tag, err)
			}
		}
	}
}

// TestDetachRemovesReservationShortcuts is the regression test for the
// forwarding loop the chaos harness found: a UE that detaches while an old
// LocIP is still reserved has no delivery microflows anywhere, so leaving
// its reservation shortcuts installed could combine a shortcut hop rule
// with a path's location rule into a loop for the dead address. Detach must
// tear the shortcuts down (the reservation itself stays until release).
func TestDetachRemovesReservationShortcuts(t *testing.T) {
	c, _ := testController(t)
	if err := c.RegisterSubscriber("imsi-sc", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Attach("imsi-sc", 0); err != nil {
		t.Fatal(err)
	}
	clauses := allowClauses(c.Policy)
	for _, cl := range clauses {
		if _, err := c.RequestPath(0, cl); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Handoff("imsi-sc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shortcuts) == 0 {
		t.Fatal("handoff installed no shortcuts; the regression needs them")
	}
	if err := c.Detach("imsi-sc"); err != nil {
		t.Fatal(err)
	}
	c.ueMu.RLock()
	c.ruleMu.Lock()
	rsv, ok := c.reservations[res.OldLocIP]
	var left int
	if ok {
		left = len(rsv.shortcuts)
	}
	c.ruleMu.Unlock()
	c.ueMu.RUnlock()
	if !ok {
		t.Fatal("reservation should survive Detach until ReleaseOldLocIP")
	}
	if left != 0 {
		t.Fatalf("%d reservation shortcuts still installed after Detach", left)
	}
	if _, err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after detach-mid-handoff: %v", err)
	}
	c.ReleaseOldLocIP(res.OldLocIP, nil)
	if _, err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after release: %v", err)
	}
}

// TestReleaseAfterExtractDoesNotDoubleFree: extracting a UE for migration
// frees its addresses (including reserved old LocIPs); the old shard's
// pending ReleaseOldLocIP timer may still fire afterwards. The release must
// notice the reservation is gone and not free the UE ID a second time —
// the allocator-safety invariant catches the double-free directly.
func TestReleaseAfterExtractDoesNotDoubleFree(t *testing.T) {
	c, _ := testController(t)
	if err := c.RegisterSubscriber("imsi-mig", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Attach("imsi-mig", 0); err != nil {
		t.Fatal(err)
	}
	res, err := c.Handoff("imsi-mig", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExtractUE("imsi-mig"); err != nil {
		t.Fatal(err)
	}
	// The stale timer fires after the migration already freed everything.
	c.ReleaseOldLocIP(res.OldLocIP, nil)
	if _, err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stale release: %v", err)
	}
	// The freed IDs must be reusable without collision.
	for i := 0; i < 3; i++ {
		imsi := fmt.Sprintf("imsi-re%d", i)
		if err := c.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Attach(imsi, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after re-attach: %v", err)
	}
}
