package core

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/topo"
)

// FailureReport summarises a topology-failure recomputation.
type FailureReport struct {
	Failed      topo.NodeID
	Recomputed  int // paths successfully re-planned around the failure
	Unreachable int // paths whose destination became unreachable (dropped)
}

// FailSwitch handles a switch failure (§5.2: "the controller can easily
// handle topology changes (e.g., switch failures) by recomputing paths and
// modifying rules in the affected switches"): the node is marked down,
// every cached policy path is re-planned over the surviving topology (a
// failed middlebox attachment point also forces a new instance of the same
// function), and the forwarding state is rebuilt. Paths to stations cut off
// by the failure are withdrawn; their classifiers resolve again (through
// the controller) if connectivity returns.
func (c *Controller) FailSwitch(n topo.NodeID) (FailureReport, error) {
	c.ruleMu.Lock()
	defer c.ruleMu.Unlock()
	if err := c.T.SetNodeDown(n, true); err != nil {
		return FailureReport{}, err
	}
	return c.recomputeLocked(FailureReport{Failed: n})
}

// RecoverSwitch brings a failed switch back and re-optimises the paths.
func (c *Controller) RecoverSwitch(n topo.NodeID) (FailureReport, error) {
	c.ruleMu.Lock()
	defer c.ruleMu.Unlock()
	if err := c.T.SetNodeDown(n, false); err != nil {
		return FailureReport{}, err
	}
	return c.recomputeLocked(FailureReport{Failed: n})
}

// recomputeLocked re-plans every cached path over the current topology and
// rebuilds the installer from scratch. The tag memo is republished from
// the surviving paths, so a tag whose path the failure changed or dropped
// can never be served from cache.
//
// caller holds ruleMu
func (c *Controller) recomputeLocked(rep FailureReport) (FailureReport, error) {
	// Fresh planner: its distance fields and trees reference the old graph.
	c.Planner = routing.NewPlanner(c.T)

	// Deterministic replan order: install order drives tag assignment and
	// prefix aggregation, so iterating the path map directly would make the
	// rebuilt FIBs (and every tag handed out afterwards) run-dependent.
	keys := make([]pathKey, 0, len(c.paths))
	for key := range c.paths {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bs != keys[j].bs {
			return keys[i].bs < keys[j].bs
		}
		return keys[i].clause < keys[j].clause
	})

	type replanned struct {
		key   pathKey
		route *routing.Path
	}
	var keep []replanned
	for _, key := range keys {
		rec := c.paths[key]
		cl, ok := c.Policy.Clause(key.clause)
		if !ok || !cl.Action.Allow {
			rep.Unreachable++
			continue
		}
		chain := make([]topo.MBType, 0, len(cl.Action.Chain))
		bad := false
		for _, fn := range cl.Action.Chain {
			typ, ok := c.mbTypes[fn]
			if !ok {
				bad = true
				break
			}
			chain = append(chain, typ)
		}
		if bad {
			rep.Unreachable++
			continue
		}
		route, err := c.Planner.Plan(key.bs, chain, c.gateway)
		if err != nil {
			rep.Unreachable++
			continue
		}
		keep = append(keep, replanned{key: key, route: route})
		_ = rec
	}

	inst, err := NewInstaller(c.T, c.Installer.Opts)
	if err != nil {
		return rep, err
	}
	// Continue the tag sequence: stale tags embedded in microflows and
	// agent caches must miss (and re-resolve), never alias onto new paths.
	inst.nextTag = c.Installer.nextTag
	inst.stats.TagsAllocated = c.Installer.stats.TagsAllocated
	// Carry the shortcut-route intern pool: live Shortcuts (held by
	// reservations) keep routeH handles into it, and RemoveShortcut after
	// the rebuild must release against the same pool.
	inst.seqs = c.Installer.seqs
	inst.EnableLocationRouting(c.gateway)
	newPaths := make(map[pathKey]*InstalledPath, len(keep))
	for _, r := range keep {
		rec, err := inst.InstallPath(r.route)
		if err != nil {
			rep.Unreachable++
			continue
		}
		newPaths[r.key] = rec
		rep.Recomputed++
	}
	c.Installer = inst
	c.paths = newPaths
	c.rebuildTagCacheLocked()
	if rep.Recomputed+rep.Unreachable == 0 {
		return rep, nil
	}
	if rep.Recomputed == 0 && rep.Unreachable > 0 && len(keep) > 0 {
		return rep, fmt.Errorf("core: recomputation installed no paths")
	}
	return rep, nil
}
