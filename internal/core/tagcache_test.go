package core

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
)

// tagSnapshot reads the current tag-memo snapshot (tests only; production
// readers index it directly on the fast path).
func tagSnapshot(c *Controller) tagMap { return *c.tagCache.Load() }

// warmAll requests every (station, allow-clause) path once so the memo is
// fully populated.
func warmAll(t *testing.T, c *Controller, stations []packet.BSID) []int {
	t.Helper()
	clauses := allowClauses(c.Policy)
	for _, bs := range stations {
		for _, cl := range clauses {
			if _, err := c.RequestPath(bs, cl); err != nil {
				t.Fatalf("warm RequestPath(%d, %d): %v", bs, cl, err)
			}
		}
	}
	return clauses
}

// assertCacheMatchesPaths checks the memo and the installed-path map agree
// key for key — the core consistency property every invalidation must
// restore.
func assertCacheMatchesPaths(t *testing.T, c *Controller) {
	t.Helper()
	tags := tagSnapshot(c)
	if len(tags) != len(c.paths) {
		t.Fatalf("tag cache has %d entries, installed paths %d", len(tags), len(c.paths))
	}
	for key, rec := range c.paths {
		if tags[key] != rec.AccessTag() {
			t.Fatalf("cached tag %d for (bs %d, clause %d), path says %d",
				tags[key], key.bs, key.clause, rec.AccessTag())
		}
	}
}

func TestTagCacheDropsRemovedClause(t *testing.T) {
	c, _ := testController(t)
	attr := policy.Attributes{Provider: "A", Plan: "silver"}
	web, _ := c.Policy.Match(attr, policy.AppWeb)
	video, _ := c.Policy.Match(attr, policy.AppVideo)
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range []int{web, video} {
			if _, err := c.RequestPath(bs, cl); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := tagSnapshot(c)[pathKey{0, web}]; !ok {
		t.Fatal("warmed tag not memoised")
	}

	if err := c.RemovePolicyPaths(web); err != nil {
		t.Fatal(err)
	}
	snap := tagSnapshot(c)
	for key := range snap {
		if key.clause == web {
			t.Fatalf("removed clause %d still cached for station %d", web, key.bs)
		}
	}
	if _, ok := snap[pathKey{0, video}]; !ok {
		t.Fatal("unrelated clause evicted by removal")
	}
	assertCacheMatchesPaths(t, c)

	// The next request must re-derive through Algorithm 1, not serve a
	// removed tag: PathMiss advances and the fresh tag lands in the memo.
	before := c.Stats().PathMiss
	tag, err := c.RequestPath(0, web)
	if err != nil || tag == 0 {
		t.Fatalf("re-request after removal: tag %d, %v", tag, err)
	}
	if got := c.Stats().PathMiss; got != before+1 {
		t.Fatalf("PathMiss = %d after re-request, want %d (a fresh install)", got, before+1)
	}
	if got := tagSnapshot(c)[pathKey{0, web}]; got != tag {
		t.Fatalf("memo has %d after re-install, request returned %d", got, tag)
	}
}

func TestTagCacheFollowsFailureRecompute(t *testing.T) {
	c, n := testController(t)
	warmAll(t, c, []packet.BSID{0, 1, 2, 3})
	attr := policy.Attributes{Provider: "A"}
	web, _ := c.Policy.Match(attr, policy.AppWeb)

	// cs3 feeds stations 2 and 3: failing it cuts them off, so their paths
	// are withdrawn and everything else is re-planned.
	rep, err := c.FailSwitch(n.cs3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable == 0 {
		t.Fatal("failing cs3 should strand the paths of stations 2 and 3")
	}
	assertCacheMatchesPaths(t, c)
	for key := range tagSnapshot(c) {
		if key.bs == 2 || key.bs == 3 {
			t.Fatalf("cut-off station %d still has a cached tag", key.bs)
		}
	}
	// A request for a cut-off station must fail — never serve the old tag.
	if _, err := c.RequestPath(2, web); err == nil {
		t.Fatal("request for a cut-off station served a tag")
	}

	if _, err := c.RecoverSwitch(n.cs3); err != nil {
		t.Fatal(err)
	}
	assertCacheMatchesPaths(t, c)
	// Recovery re-opens the stations; the first request re-installs.
	before := c.Stats().PathMiss
	tag, err := c.RequestPath(2, web)
	if err != nil || tag == 0 {
		t.Fatalf("request after recovery: tag %d, %v", tag, err)
	}
	if got := c.Stats().PathMiss; got != before+1 {
		t.Fatalf("PathMiss = %d after recovery request, want %d", got, before+1)
	}
	assertCacheMatchesPaths(t, c)
}

func TestTagCacheDropsMigratedStation(t *testing.T) {
	// Shard A owns stations {0,1} with the even tag partition.
	a := shardedController(t, []packet.BSID{0, 1}, 0, 2)
	if err := a.RegisterSubscriber("u", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}
	ue, _, err := a.Attach("u", 1)
	if err != nil {
		t.Fatal(err)
	}
	warmAll(t, a, []packet.BSID{0, 1})
	web := allowClauses(a.Policy)[0]

	// ExtractUE is phase one of a cross-shard handoff: the departure
	// station's memoised tags must not survive it.
	if _, err := a.ExtractUE("u"); err != nil {
		t.Fatal(err)
	}
	for key := range tagSnapshot(a) {
		if key.bs == 1 {
			t.Fatalf("station 1 tag (clause %d) survived ExtractUE", key.clause)
		}
	}
	if _, ok := tagSnapshot(a)[pathKey{0, web}]; !ok {
		t.Fatal("station 0 tags should survive a station-1 extraction")
	}
	// A still owns station 1 and its path rules are still installed, so the
	// next request re-derives through the rule table (not the memo) and
	// republishes the entry for later fast-path hits.
	tag1, err := a.RequestPath(1, web)
	if err != nil {
		t.Fatal(err)
	}
	if want := a.paths[pathKey{1, web}].AccessTag(); tag1 != want {
		t.Fatalf("re-derived tag %d, installed path says %d", tag1, want)
	}
	if got := tagSnapshot(a)[pathKey{1, web}]; got != tag1 {
		t.Fatalf("memo not republished after re-derivation: %d, want %d", got, tag1)
	}

	// Shard B re-absorbing a station it already serves (ring churn round
	// trip) must still drop its memoised tags for it.
	b := shardedController(t, []packet.BSID{2, 3}, 1, 2)
	warmAll(t, b, []packet.BSID{2, 3})
	if _, ok := tagSnapshot(b)[pathKey{2, web}]; !ok {
		t.Fatal("precondition: station 2 warmed on B")
	}
	if err := b.AbsorbStation(2, nil); err != nil {
		t.Fatal(err)
	}
	for key := range tagSnapshot(b) {
		if key.bs == 2 {
			t.Fatalf("station 2 tag (clause %d) survived AbsorbStation", key.clause)
		}
	}

	// And absorbing a genuinely new station: the first path request answers
	// from B's own rule table — its tag carries B's partition parity.
	if err := b.AbsorbStation(1, []UE{ue}); err != nil {
		t.Fatal(err)
	}
	tag, err := b.RequestPath(1, web)
	if err != nil || tag == 0 {
		t.Fatalf("request at absorbed station: tag %d, %v", tag, err)
	}
	if tag%2 != 1 {
		t.Fatalf("tag %d for absorbed station lacks B's partition parity", tag)
	}
}

// TestRequestPathBatchColdEqualsSingles drives two identical controllers —
// one through the batched entry point from cold, one path at a time — and
// requires identical answers: batching is an optimisation, never a
// semantic change.
func TestRequestPathBatchColdEqualsSingles(t *testing.T) {
	batched, _ := testController(t)
	singles, _ := testController(t)
	clauses := allowClauses(batched.Policy)
	var qs []PathQuery
	for bs := packet.BSID(0); bs < 4; bs++ {
		for _, cl := range clauses {
			qs = append(qs, PathQuery{BS: bs, Clause: cl})
		}
	}
	// Repeat every query so the second half hits the memo.
	qs = append(qs, qs...)
	ans := batched.RequestPathBatch(qs, nil)
	for i, q := range qs {
		want, err := singles.RequestPath(q.BS, q.Clause)
		if err != nil {
			t.Fatal(err)
		}
		if ans[i].Err != nil || ans[i].Tag != want {
			t.Fatalf("batch[%d] (bs %d, clause %d) = (%d, %v), singles say %d",
				i, q.BS, q.Clause, ans[i].Tag, ans[i].Err, want)
		}
	}
}
