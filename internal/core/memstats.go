package core

// This file surfaces the compacted memory layout (DESIGN.md §14) as a
// first-class measured quantity: MemStats walks the UE table, intern pools
// and path arena under the usual lock order and reports counts and byte
// footprints. The bench CLI embeds a MemStats snapshot in every BENCH_*.json
// report; with an obs registry configured, each snapshot also updates the
// core.mem.* gauges so live introspection sees the same numbers.

// MemStats is a point-in-time snapshot of the controller's state-layer
// memory accounting.
type MemStats struct {
	// UE table.
	Subscribers    int    `json:"subscribers"`      // records with a subscriber half
	UERecords      int    `json:"ue_records"`       // records with a UE half
	Attached       int    `json:"attached"`         // UE records with live location state
	SlotsAllocated int    `json:"slots_allocated"`  // slab high-water mark
	FreeSlots      int    `json:"free_slots"`       // slab free-list depth
	SlabBytes      uint64 `json:"slab_bytes"`       // record-slab footprint
	IndexBytes     uint64 `json:"index_bytes"`      // IMSI/LocIP/perm-IP open-addressed indices
	IMSIBytes      uint64 `json:"imsi_bytes"`       // retained IMSI string bytes
	FreeUEIDs      int    `json:"free_ueids"`       // per-station UE ID free-list depth (all stations)
	Reservations   int    `json:"reservations"`     // still-reserved old LocIPs
	// Attribute intern pool.
	InternedAttrs int    `json:"interned_attrs"` // distinct attribute sets
	AttrRefs      uint64 `json:"attr_refs"`      // live references from records
	AttrHits      uint64 `json:"attr_hits"`      // acquire() intern hits
	AttrMisses    uint64 `json:"attr_misses"`    // acquire() compiles (distinct sets seen)
	// Route intern pool (shortcut switch sequences).
	InternedRoutes int    `json:"interned_routes"`
	RouteRefs      uint64 `json:"route_refs"`
	// Path-record arena.
	Paths          int    `json:"paths"`            // retained installed paths
	PathArenaBytes uint64 `json:"path_arena_bytes"` // arena slab footprint
	PathFreeSlots  int    `json:"path_free_slots"`  // arena free-list depth
}

// Add accumulates another snapshot into m (used by the shard dispatcher
// to aggregate per-shard controllers into one fleet-wide view).
func (m *MemStats) Add(o MemStats) {
	m.Subscribers += o.Subscribers
	m.UERecords += o.UERecords
	m.Attached += o.Attached
	m.SlotsAllocated += o.SlotsAllocated
	m.FreeSlots += o.FreeSlots
	m.SlabBytes += o.SlabBytes
	m.IndexBytes += o.IndexBytes
	m.IMSIBytes += o.IMSIBytes
	m.FreeUEIDs += o.FreeUEIDs
	m.Reservations += o.Reservations
	m.InternedAttrs += o.InternedAttrs
	m.AttrRefs += o.AttrRefs
	m.AttrHits += o.AttrHits
	m.AttrMisses += o.AttrMisses
	m.InternedRoutes += o.InternedRoutes
	m.RouteRefs += o.RouteRefs
	m.Paths += o.Paths
	m.PathArenaBytes += o.PathArenaBytes
	m.PathFreeSlots += o.PathFreeSlots
}

// TableBytes is the UE-state footprint: slabs plus indices plus retained
// IMSI strings (excludes the path arena).
func (m MemStats) TableBytes() uint64 {
	return m.SlabBytes + m.IndexBytes + m.IMSIBytes
}

// AttrHitRate is the intern pool's acquire hit rate in [0, 1].
func (m MemStats) AttrHitRate() float64 {
	if m.AttrHits+m.AttrMisses == 0 {
		return 0
	}
	return float64(m.AttrHits) / float64(m.AttrHits+m.AttrMisses)
}

// MemStats snapshots the controller's memory accounting. It takes all
// three lock domains in the documented order, so it is safe (if not free —
// it scans the UE slabs) to call concurrently with live traffic. With an
// obs registry configured, the snapshot also updates the core.mem.* gauges.
func (c *Controller) MemStats() MemStats {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	c.ruleMu.Lock()
	defer c.ruleMu.Unlock()

	ms := MemStats{
		SlotsAllocated: int(c.ues.next),
		FreeSlots:      len(c.ues.free),
		SlabBytes:      c.ues.slabBytes(),
		IndexBytes:     c.ues.indexBytes(),
		IMSIBytes:      c.ues.imsiBytes,
		Reservations:   len(c.reservations),
		InternedAttrs:  c.attrs.liveEntries(),
		AttrRefs:       c.attrs.totalRefs(),
		AttrHits:       c.attrs.hits,
		AttrMisses:     c.attrs.misses,
		InternedRoutes: c.Installer.seqs.liveEntries(),
		RouteRefs:      c.Installer.seqs.totalRefs(),
		Paths:          len(c.Installer.paths),
		PathArenaBytes: c.Installer.arena.bytes(),
		PathFreeSlots:  c.Installer.arena.freeSlots(),
	}
	c.ues.forEach(func(_ uint32, r *ueRecord) bool {
		if r.flags&ueRegistered != 0 {
			ms.Subscribers++
		}
		if r.flags&ueHasRecord != 0 {
			ms.UERecords++
			if r.locIP != 0 {
				ms.Attached++
			}
		}
		return true
	})
	for _, free := range c.freeUEIDs {
		ms.FreeUEIDs += len(free)
	}
	c.obs.publishMem(ms)
	return ms
}

// publishMem mirrors a MemStats snapshot onto the core.mem.* gauges
// (no-op without a registry).
func (o *coreObs) publishMem(ms MemStats) {
	if o.memUEs == nil {
		return
	}
	o.memUEs.Set(int64(ms.UERecords))
	o.memAttached.Set(int64(ms.Attached))
	o.memSlabBytes.Set(int64(ms.SlabBytes + ms.IndexBytes + ms.IMSIBytes))
	o.memFreeSlots.Set(int64(ms.FreeSlots))
	o.memAttrs.Set(int64(ms.InternedAttrs))
	o.memAttrHitPct.Set(int64(ms.AttrHitRate() * 100))
	o.memPathBytes.Set(int64(ms.PathArenaBytes))
}
