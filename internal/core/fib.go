// Package core implements the SoftCell controller — the paper's primary
// contribution. It computes policy paths, allocates policy tags, installs
// forwarding state with the multi-dimensional aggregation of §3 (Algorithm
// 1), handles UE attachment and mobility with policy consistency (§5.1), and
// exposes the replicated control state used for failover (§5.2).
package core

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/topo"
)

// NextHop is a forwarding decision at one switch: either out the port toward
// a neighbor switch, or out the attachment port of a local middlebox. A
// non-zero NewTag additionally rewrites the packet's policy tag — the "swap"
// rule that disambiguates path loops (§3.2).
type NextHop struct {
	Node   topo.NodeID       // neighbor switch; topo.None when MB is set
	MB     topo.MBInstanceID // local middlebox instance; NoMB when Node is set
	NewTag packet.Tag        // 0 = keep tag
}

// NoMB is the absent-middlebox sentinel for NextHop.MB.
const NoMB topo.MBInstanceID = -1

// ExitNode is the pseudo next hop for traffic leaving the cellular core
// through a gateway's Internet port.
const ExitNode topo.NodeID = -2

// DeliverNode is the pseudo next hop for traffic that has reached its
// destination access switch: hand it to the local agent/microflows for
// delivery to the UE.
const DeliverNode topo.NodeID = -3

// ToNode builds a switch-to-switch next hop.
func ToNode(n topo.NodeID) NextHop { return NextHop{Node: n, MB: NoMB} }

// ToMB builds a next hop into a locally attached middlebox.
func ToMB(mb topo.MBInstanceID) NextHop { return NextHop{Node: topo.None, MB: mb} }

// Exit builds the leave-the-network next hop (the gateway's Internet port).
func Exit() NextHop { return NextHop{Node: ExitNode, MB: NoMB} }

// IsExit reports whether the next hop leaves the network.
func (nh NextHop) IsExit() bool { return nh.Node == ExitNode }

// Deliver builds the local-delivery next hop for a destination access
// switch.
func Deliver() NextHop { return NextHop{Node: DeliverNode, MB: NoMB} }

// IsDeliver reports whether the next hop is local delivery.
func (nh NextHop) IsDeliver() bool { return nh.Node == DeliverNode }

// Zero reports whether the next hop is unset.
func (nh NextHop) Zero() bool { return nh.Node == topo.None && nh.MB == NoMB }

func (nh NextHop) String() string {
	switch {
	case nh.MB != NoMB:
		return fmt.Sprintf("mb#%d", nh.MB)
	case nh.IsExit():
		return "exit"
	case nh.IsDeliver():
		return "deliver"
	default:
		return fmt.Sprintf("sw%d", nh.Node)
	}
}

// trieNode is one node of a binary prefix trie. An entry is present when
// set; internal nodes may also carry entries (shorter prefixes).
type trieNode struct {
	child [2]*trieNode
	set   bool
	nh    NextHop
}

// prefixTrie stores (prefix -> NextHop) entries with longest-prefix-match
// lookup and automatic contiguous-sibling aggregation: whenever both
// children of a position hold entries with the same next hop, they merge
// into their parent (paper §3.2: "the algorithm aggregates two rules if and
// only if their location prefixes are contiguous").
type prefixTrie struct {
	root  *trieNode
	count int // live entries = TCAM rules
}

func newPrefixTrie() *prefixTrie { return &prefixTrie{root: &trieNode{}} }

// bitAt extracts bit i (0 = most significant) of an address.
func bitAt(a packet.Addr, i int) int { return int(a>>(31-i)) & 1 }

// Lookup finds the longest installed prefix covering p and returns its next
// hop. Policy-path prefixes are always queried with a prefix at least as
// long as any installed entry that could cover it, so LPM over the query's
// bits is exact.
func (t *prefixTrie) Lookup(p packet.Prefix) (NextHop, bool) {
	n := t.root
	best := NextHop{Node: topo.None, MB: NoMB}
	found := false
	for depth := 0; ; depth++ {
		if n.set {
			best, found = n.nh, true
		}
		if depth >= p.Len {
			break
		}
		n = n.child[bitAt(p.Addr, depth)]
		if n == nil {
			break
		}
	}
	return best, found
}

// Exact returns the entry installed for exactly p, if any.
func (t *prefixTrie) Exact(p packet.Prefix) (NextHop, bool) {
	n := t.node(p, false)
	if n == nil || !n.set {
		return NextHop{Node: topo.None, MB: NoMB}, false
	}
	return n.nh, true
}

func (t *prefixTrie) node(p packet.Prefix, create bool) *trieNode {
	n := t.root
	for depth := 0; depth < p.Len; depth++ {
		b := bitAt(p.Addr, depth)
		if n.child[b] == nil {
			if !create {
				return nil
			}
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	return n
}

// CanAggregate reports whether installing (p -> nh) would merge with an
// existing contiguous entry: its sibling holds the same next hop.
func (t *prefixTrie) CanAggregate(p packet.Prefix, nh NextHop) bool {
	sib, ok := p.Sibling()
	if !ok {
		return false
	}
	got, present := t.Exact(sib)
	return present && got == nh
}

// Insert installs (p -> nh), merging contiguous siblings upward. It returns
// the net change in rule count (can be <= 0 when aggregation collapses
// entries). Inserting an exact duplicate with a different next hop replaces
// it (the caller guarantees this never breaks an installed path).
func (t *prefixTrie) Insert(p packet.Prefix, nh NextHop) int {
	if cur, ok := t.Lookup(p); ok && cur == nh {
		return 0 // already routed identically (possibly by a merged block)
	}
	before := t.count
	n := t.node(p, true)
	if !n.set {
		n.set = true
		t.count++
	}
	n.nh = nh
	// Merge upward while the sibling entry matches.
	for p.Len > 0 {
		sib, _ := p.Sibling()
		sn := t.node(sib, false)
		if sn == nil || !sn.set || sn.nh != nh {
			break
		}
		parent, _ := p.Parent()
		pn := t.node(parent, true)
		cn := t.node(p, false)
		cn.set = false
		sn.set = false
		t.count -= 2
		if !pn.set {
			pn.set = true
			t.count++
		}
		pn.nh = nh
		p = parent
	}
	return t.count - before
}

// Count reports live entries.
func (t *prefixTrie) Count() int { return t.count }

// Walk visits every live entry.
func (t *prefixTrie) Walk(fn func(p packet.Prefix, nh NextHop)) {
	var rec func(n *trieNode, addr packet.Addr, depth int)
	rec = func(n *trieNode, addr packet.Addr, depth int) {
		if n == nil {
			return
		}
		if n.set {
			fn(packet.Prefix{Addr: addr, Len: depth}, n.nh)
		}
		if depth < 32 {
			rec(n.child[0], addr, depth+1)
			rec(n.child[1], addr|packet.Addr(1)<<(31-depth), depth+1)
		}
	}
	rec(t.root, 0, 0)
}

// Direction orients forwarding state: downstream rules match on destination
// (LocIP, tag-in-dst-port), upstream rules on source.
type Direction uint8

// Directions.
const (
	Down Direction = iota // Internet/gateway -> base station
	Up                    // base station -> gateway
)

func (d Direction) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// tagState is the per-(direction, tag) forwarding state at one switch.
// The prefix trie is allocated lazily: most shared-segment switches only
// ever hold the tag-only default, and large simulations create millions of
// these states.
type tagState struct {
	def    NextHop // tag-only default (Type 2 rule); Zero when absent
	hasDef bool
	prefix *prefixTrie // tag+prefix overrides (Type 1 rules); nil until used
}

// trie returns the state's prefix trie, allocating on first use.
func (st *tagState) trie() *prefixTrie {
	if st.prefix == nil {
		st.prefix = newPrefixTrie()
	}
	return st.prefix
}

// prefixLookup is a nil-safe trie lookup.
func (st *tagState) prefixLookup(p packet.Prefix) (NextHop, bool) {
	if st.prefix == nil {
		return NextHop{Node: topo.None, MB: NoMB}, false
	}
	return st.prefix.Lookup(p)
}

// mbCtx keys the middlebox-return context: rules matching the in-port from
// one locally attached middlebox (paper footnote 1).
type mbCtx struct {
	dir Direction
	mb  topo.MBInstanceID
	tag packet.Tag
}

// mbLocKey keys tag-independent location rules in a middlebox-return
// context.
type mbLocKey struct {
	dir Direction
	mb  topo.MBInstanceID
}

// portCtx keys in-port-qualified rules: "a loop that enters the same switch
// twice but through different links can easily be differentiated based on
// the input ports" (§3.2). The in-port is identified by the neighbor switch
// behind it.
type portCtx struct {
	dir  Direction
	from topo.NodeID
	tag  packet.Tag
}

type tagKey struct {
	dir Direction
	tag packet.Tag
}

// FIB is the abstract forwarding table of one switch as the controller
// tracks it: Type 1/2 rules in the main context plus per-middlebox-in-port
// contexts. Rule counts correspond one-to-one to TCAM entries.
type FIB struct {
	Node topo.NodeID

	main map[tagKey]*tagState
	mb   map[mbCtx]*tagState
	port map[portCtx]*tagState

	// loc holds the Type 3 location rules: prefix-only, tag-independent,
	// lowest priority (§3.1 "Aggregation by location", §7). Downstream they
	// route the fan-out below the last middlebox; upstream a single
	// entry per switch climbs toward the gateway / Internet port.
	loc map[Direction]*prefixTrie

	// mobility rules: full-LocIP (/32) overrides, qualified by (direction,
	// tag) — a moved UE's old flows are identified by old LocIP plus the
	// policy tag they carry, and the entries rewrite to the delivery
	// (access-side) tag. mobMB holds the middlebox-return-qualified variant
	// used at a shortcut's branch switch.
	mob   map[tagKey]*prefixTrie
	mobMB map[mbCtx]*prefixTrie

	// mbLoc holds location rules in middlebox-return contexts: traffic
	// coming back from instance MB, destined to a prefix, forwarded
	// tag-independently along the canonical descend (the common case for
	// the chain's last middlebox dispatching into the fan-out).
	mbLoc map[mbLocKey]*prefixTrie
	// mbLocRely marks middlebox-context (dir, mb, tag) triples relying on
	// mbLoc rules here; a tag-only mb default would shadow them.
	mbLocRely map[mbCtx]struct{}

	// locRely marks (direction, tag) pairs whose traffic relies on the
	// Type 3 location table at this switch. Installing a Type 2 tag-only
	// default for such a pair would shadow the location rules (priority:
	// Type 2 > Type 3), so the installer must use Type 1 overrides instead.
	locRely map[tagKey]struct{}

	// recentTags is an insertion-ordered list of tags that ever gained
	// state here, used to seed Algorithm 1's candidate set cheaply.
	recentTags []packet.Tag
	seen       map[packet.Tag]bool
}

// NewFIB returns an empty FIB for a switch.
func NewFIB(n topo.NodeID) *FIB {
	return &FIB{
		Node:      n,
		main:      make(map[tagKey]*tagState),
		mb:        make(map[mbCtx]*tagState),
		port:      make(map[portCtx]*tagState),
		loc:       make(map[Direction]*prefixTrie),
		mob:       make(map[tagKey]*prefixTrie),
		mbLoc:     make(map[mbLocKey]*prefixTrie),
		mobMB:     make(map[mbCtx]*prefixTrie),
		mbLocRely: make(map[mbCtx]struct{}),
		locRely:   make(map[tagKey]struct{}),
		seen:      make(map[packet.Tag]bool),
	}
}

func (f *FIB) state(dir Direction, tag packet.Tag, create bool) *tagState {
	k := tagKey{dir, tag}
	st, ok := f.main[k]
	if !ok && create {
		st = &tagState{}
		f.main[k] = st
		f.noteTag(tag)
	}
	return st
}

func (f *FIB) mbState(dir Direction, mb topo.MBInstanceID, tag packet.Tag, create bool) *tagState {
	k := mbCtx{dir, mb, tag}
	st, ok := f.mb[k]
	if !ok && create {
		st = &tagState{}
		f.mb[k] = st
		f.noteTag(tag)
	}
	return st
}

func (f *FIB) noteTag(tag packet.Tag) {
	if !f.seen[tag] {
		f.seen[tag] = true
		f.recentTags = append(f.recentTags, tag)
	}
}

func (f *FIB) portState(dir Direction, from topo.NodeID, tag packet.Tag, create bool) *tagState {
	k := portCtx{dir, from, tag}
	st, ok := f.port[k]
	if !ok && create {
		st = &tagState{}
		f.port[k] = st
		f.noteTag(tag)
	}
	return st
}

// GetNextHop answers "where would (dir, tag, prefix) traffic arriving from a
// network port go?" — the getNextHop of Algorithm 1. Priority follows §7:
// Type 1 (tag+prefix) over Type 2 (tag-only) over Type 3 (location).
func (f *FIB) GetNextHop(dir Direction, tag packet.Tag, p packet.Prefix) (NextHop, bool) {
	if st := f.state(dir, tag, false); st != nil {
		if nh, ok := st.prefixLookup(p); ok {
			return nh, true
		}
		if st.hasDef {
			return st.def, true
		}
	}
	return f.LookupLocation(dir, p)
}

// LookupLocation consults only the Type 3 location table.
func (f *FIB) LookupLocation(dir Direction, p packet.Prefix) (NextHop, bool) {
	if t := f.loc[dir]; t != nil {
		return t.Lookup(p)
	}
	return NextHop{Node: topo.None, MB: NoMB}, false
}

// InsertLocation installs a Type 3 prefix-only rule, aggregating siblings.
func (f *FIB) InsertLocation(dir Direction, p packet.Prefix, nh NextHop) int {
	t := f.loc[dir]
	if t == nil {
		t = newPrefixTrie()
		f.loc[dir] = t
	}
	return t.Insert(p, nh)
}

// MarkLocReliant records that (dir, tag) traffic depends on the location
// table here.
func (f *FIB) MarkLocReliant(dir Direction, tag packet.Tag) {
	f.locRely[tagKey{dir, tag}] = struct{}{}
}

// LocReliant reports whether (dir, tag) traffic depends on the location
// table here.
func (f *FIB) LocReliant(dir Direction, tag packet.Tag) bool {
	_, ok := f.locRely[tagKey{dir, tag}]
	return ok
}

// HasTagState reports whether any Type 1/2 state exists for (dir, tag) in
// the main context.
func (f *FIB) HasTagState(dir Direction, tag packet.Tag) bool {
	st := f.state(dir, tag, false)
	return st != nil && (st.hasDef || (st.prefix != nil && st.prefix.count > 0))
}

// GetNextHopFromMB answers the same question for traffic returning from a
// locally attached middlebox. Absent a middlebox-context rule, the switch
// would fall through to the main-context rule (which typically points back
// at the middlebox — the reason the in-port rules exist at all).
func (f *FIB) GetNextHopFromMB(dir Direction, mb topo.MBInstanceID, tag packet.Tag, p packet.Prefix) (NextHop, bool) {
	if st := f.mbState(dir, mb, tag, false); st != nil {
		if nh, ok := st.prefixLookup(p); ok {
			return nh, true
		}
		if st.hasDef {
			return st.def, true
		}
	}
	if t := f.mbLoc[mbLocKey{dir, mb}]; t != nil {
		if nh, ok := t.Lookup(p); ok {
			return nh, true
		}
	}
	return f.GetNextHop(dir, tag, p)
}

// LookupMBLocation consults only the middlebox-context location rules.
func (f *FIB) LookupMBLocation(dir Direction, mb topo.MBInstanceID, p packet.Prefix) (NextHop, bool) {
	if t := f.mbLoc[mbLocKey{dir, mb}]; t != nil {
		return t.Lookup(p)
	}
	return NextHop{Node: topo.None, MB: NoMB}, false
}

// InsertMBLocation installs a tag-independent location rule in a
// middlebox-return context.
func (f *FIB) InsertMBLocation(dir Direction, mb topo.MBInstanceID, p packet.Prefix, nh NextHop) int {
	t := f.mbLoc[mbLocKey{dir, mb}]
	if t == nil {
		t = newPrefixTrie()
		f.mbLoc[mbLocKey{dir, mb}] = t
	}
	return t.Insert(p, nh)
}

// MarkMBLocReliant / MBLocReliant mirror the main-context reliance marks
// for middlebox-return contexts.
func (f *FIB) MarkMBLocReliant(dir Direction, mb topo.MBInstanceID, tag packet.Tag) {
	f.mbLocRely[mbCtx{dir, mb, tag}] = struct{}{}
}

// MBLocReliant reports whether (dir, mb, tag) relies on mbLoc rules here.
func (f *FIB) MBLocReliant(dir Direction, mb topo.MBInstanceID, tag packet.Tag) bool {
	_, ok := f.mbLocRely[mbCtx{dir, mb, tag}]
	return ok
}

// hasMBTagState reports Type 1/2 state for (dir, mb, tag).
func (f *FIB) hasMBTagState(dir Direction, mb topo.MBInstanceID, tag packet.Tag) bool {
	st := f.mbState(dir, mb, tag, false)
	return st != nil && (st.hasDef || (st.prefix != nil && st.prefix.count > 0))
}

// GetNextHopVia answers GetNextHop for traffic arriving from the port
// facing neighbor 'from': in-port-qualified rules outrank the port-wildcard
// main context.
func (f *FIB) GetNextHopVia(dir Direction, from topo.NodeID, tag packet.Tag, p packet.Prefix) (NextHop, bool) {
	if st := f.portState(dir, from, tag, false); st != nil {
		if nh, ok := st.prefixLookup(p); ok {
			return nh, true
		}
	}
	return f.GetNextHop(dir, tag, p)
}

// ExactMain reports the main context's exact (tag, prefix) entry, if any —
// the installer uses it to detect same-prefix divergence that must be
// resolved with an in-port-qualified rule instead.
func (f *FIB) ExactMain(dir Direction, tag packet.Tag, p packet.Prefix) (NextHop, bool) {
	st := f.state(dir, tag, false)
	if st == nil || st.prefix == nil {
		return NextHop{Node: topo.None, MB: NoMB}, false
	}
	return st.prefix.Exact(p)
}

// InsertPortPrefix installs an in-port-qualified (tag, prefix) rule for
// traffic arriving from neighbor 'from'.
func (f *FIB) InsertPortPrefix(dir Direction, from topo.NodeID, tag packet.Tag, p packet.Prefix, nh NextHop) int {
	return f.portState(dir, from, tag, true).trie().Insert(p, nh)
}

// SetDefault installs the tag-only (Type 2) rule. It returns the rule-count
// delta (1 when new, 0 when overwriting).
func (f *FIB) SetDefault(dir Direction, tag packet.Tag, nh NextHop) int {
	st := f.state(dir, tag, true)
	delta := 0
	if !st.hasDef {
		delta = 1
	}
	st.hasDef = true
	st.def = nh
	return delta
}

// InsertPrefix installs a (tag, prefix) Type 1 rule, aggregating siblings.
func (f *FIB) InsertPrefix(dir Direction, tag packet.Tag, p packet.Prefix, nh NextHop) int {
	return f.state(dir, tag, true).trie().Insert(p, nh)
}

// SetMBDefault installs the tag-only rule in a middlebox-return context.
func (f *FIB) SetMBDefault(dir Direction, mb topo.MBInstanceID, tag packet.Tag, nh NextHop) int {
	st := f.mbState(dir, mb, tag, true)
	delta := 0
	if !st.hasDef {
		delta = 1
	}
	st.hasDef = true
	st.def = nh
	return delta
}

// InsertMBPrefix installs a (tag, prefix) rule in a middlebox-return context.
func (f *FIB) InsertMBPrefix(dir Direction, mb topo.MBInstanceID, tag packet.Tag, p packet.Prefix, nh NextHop) int {
	return f.mbState(dir, mb, tag, true).trie().Insert(p, nh)
}

// InsertMobility installs a full-LocIP override for one tag (Fig. 3(b)).
func (f *FIB) InsertMobility(dir Direction, tag packet.Tag, loc packet.Addr, nh NextHop) int {
	k := tagKey{dir, tag}
	t := f.mob[k]
	if t == nil {
		t = newPrefixTrie()
		f.mob[k] = t
	}
	return t.Insert(packet.Prefix{Addr: loc, Len: 32}, nh)
}

// LookupMobilityFromMB checks the branch-switch mobility overrides for
// traffic returning from a specific middlebox with the given tag.
func (f *FIB) LookupMobilityFromMB(dir Direction, mb topo.MBInstanceID, tag packet.Tag, loc packet.Addr) (NextHop, bool) {
	t := f.mobMB[mbCtx{dir, mb, tag}]
	if t == nil {
		return NextHop{Node: topo.None, MB: NoMB}, false
	}
	return t.Lookup(packet.Prefix{Addr: loc, Len: 32})
}

// LookupMobility checks the mobility overrides for an exact (tag, LocIP).
func (f *FIB) LookupMobility(dir Direction, tag packet.Tag, loc packet.Addr) (NextHop, bool) {
	t := f.mob[tagKey{dir, tag}]
	if t == nil {
		return NextHop{Node: topo.None, MB: NoMB}, false
	}
	return t.Lookup(packet.Prefix{Addr: loc, Len: 32})
}

// NumRules counts installed TCAM entries across all contexts and bands.
func (f *FIB) NumRules() int {
	n := 0
	for _, st := range f.main {
		if st.prefix != nil {
			n += st.prefix.Count()
		}
		if st.hasDef {
			n++
		}
	}
	for _, st := range f.mb {
		if st.prefix != nil {
			n += st.prefix.Count()
		}
		if st.hasDef {
			n++
		}
	}
	for _, st := range f.port {
		if st.prefix != nil {
			n += st.prefix.Count()
		}
		if st.hasDef {
			n++
		}
	}
	for _, t := range f.loc {
		n += t.Count()
	}
	for _, t := range f.mbLoc {
		n += t.Count()
	}
	for _, t := range f.mob {
		n += t.Count()
	}
	for _, t := range f.mobMB {
		n += t.Count()
	}
	return n
}

// RuleBreakdown reports entries by SoftCell rule type: Type 1 (tag+prefix,
// including in-port-qualified and middlebox-return rules), Type 2
// (tag-only), Type 3 (location), and mobility overrides.
func (f *FIB) RuleBreakdown() (tagPrefix, tagOnly, location, mobility int) {
	for _, st := range f.main {
		if st.prefix != nil {
			tagPrefix += st.prefix.Count()
		}
		if st.hasDef {
			tagOnly++
		}
	}
	for _, st := range f.mb {
		if st.prefix != nil {
			tagPrefix += st.prefix.Count()
		}
		if st.hasDef {
			tagOnly++
		}
	}
	for _, st := range f.port {
		if st.prefix != nil {
			tagPrefix += st.prefix.Count()
		}
		if st.hasDef {
			tagOnly++
		}
	}
	for _, t := range f.loc {
		location += t.Count()
	}
	for _, t := range f.mbLoc {
		location += t.Count()
	}
	for _, t := range f.mob {
		mobility += t.Count()
	}
	for _, t := range f.mobMB {
		mobility += t.Count()
	}
	return
}

// RecentTags returns up to max of the most recently introduced tags here.
func (f *FIB) RecentTags(max int) []packet.Tag {
	if max <= 0 || max >= len(f.recentTags) {
		return f.recentTags
	}
	return f.recentTags[len(f.recentTags)-max:]
}

// DebugComposition reports rule counts by context for diagnostics: main
// trie entries, tag defaults, middlebox-context entries, port-context
// entries, location entries, and how many distinct tags hold state here.
func (f *FIB) DebugComposition() (mainTrie, defs, mbRules, portRules, locRules, tags int) {
	for _, st := range f.main {
		if st.prefix != nil {
			mainTrie += st.prefix.Count()
		}
		if st.hasDef {
			defs++
		}
	}
	for _, st := range f.mb {
		if st.prefix != nil {
			mbRules += st.prefix.Count()
		}
		if st.hasDef {
			mbRules++
		}
	}
	for _, st := range f.port {
		if st.prefix != nil {
			portRules += st.prefix.Count()
		}
		if st.hasDef {
			portRules++
		}
	}
	for _, t := range f.loc {
		locRules += t.Count()
	}
	for _, t := range f.mbLoc {
		locRules += t.Count()
	}
	tags = len(f.seen)
	return
}

// ExportedRule is one abstract FIB entry flattened for materialisation into
// a concrete switch table (internal/dataplane).
type ExportedRule struct {
	Dir    Direction
	Band   RuleBand
	Tag    packet.Tag        // 0 for location/mobility bands
	Prefix packet.Prefix     // zero value (len 0) for tag-only defaults
	FromMB topo.MBInstanceID // NoMB unless a middlebox-return rule
	From   topo.NodeID       // topo.None unless an in-port-qualified rule
	NH     NextHop
}

// RuleBand orders exported rules the way the FIB resolves them.
type RuleBand uint8

// Bands, lowest priority first.
const (
	BandLocation  RuleBand = iota // Type 3
	BandTagOnly                   // Type 2
	BandTagPrefix                 // Type 1
	BandPort                      // in-port-qualified Type 1
	BandMBLoc                     // middlebox-return location
	BandMBTag                     // middlebox-return tag rules
	BandMobility                  // /32 overrides
)

// Export visits every installed rule of this FIB.
func (f *FIB) Export(visit func(ExportedRule)) {
	for k, st := range f.main {
		if st.hasDef {
			visit(ExportedRule{Dir: k.dir, Band: BandTagOnly, Tag: k.tag,
				FromMB: NoMB, From: topo.None, NH: st.def})
		}
		if st.prefix != nil {
			dir, tag := k.dir, k.tag
			st.prefix.Walk(func(p packet.Prefix, nh NextHop) {
				visit(ExportedRule{Dir: dir, Band: BandTagPrefix, Tag: tag,
					Prefix: p, FromMB: NoMB, From: topo.None, NH: nh})
			})
		}
	}
	for k, st := range f.port {
		if st.hasDef {
			visit(ExportedRule{Dir: k.dir, Band: BandPort, Tag: k.tag,
				FromMB: NoMB, From: k.from, NH: st.def})
		}
		if st.prefix != nil {
			dir, tag, from := k.dir, k.tag, k.from
			st.prefix.Walk(func(p packet.Prefix, nh NextHop) {
				visit(ExportedRule{Dir: dir, Band: BandPort, Tag: tag,
					Prefix: p, FromMB: NoMB, From: from, NH: nh})
			})
		}
	}
	for k, st := range f.mb {
		if st.hasDef {
			visit(ExportedRule{Dir: k.dir, Band: BandMBTag, Tag: k.tag,
				FromMB: k.mb, From: topo.None, NH: st.def})
		}
		if st.prefix != nil {
			dir, tag, mb := k.dir, k.tag, k.mb
			st.prefix.Walk(func(p packet.Prefix, nh NextHop) {
				visit(ExportedRule{Dir: dir, Band: BandMBTag, Tag: tag,
					Prefix: p, FromMB: mb, From: topo.None, NH: nh})
			})
		}
	}
	for k, tr := range f.mbLoc {
		dir, mb := k.dir, k.mb
		tr.Walk(func(p packet.Prefix, nh NextHop) {
			visit(ExportedRule{Dir: dir, Band: BandMBLoc, Prefix: p,
				FromMB: mb, From: topo.None, NH: nh})
		})
	}
	for dir, tr := range f.loc {
		d := dir
		tr.Walk(func(p packet.Prefix, nh NextHop) {
			visit(ExportedRule{Dir: d, Band: BandLocation, Prefix: p,
				FromMB: NoMB, From: topo.None, NH: nh})
		})
	}
	for k, tr := range f.mob {
		d, tag := k.dir, k.tag
		tr.Walk(func(p packet.Prefix, nh NextHop) {
			visit(ExportedRule{Dir: d, Band: BandMobility, Tag: tag, Prefix: p,
				FromMB: NoMB, From: topo.None, NH: nh})
		})
	}
	for k, tr := range f.mobMB {
		d, mb, tag := k.dir, k.mb, k.tag
		tr.Walk(func(p packet.Prefix, nh NextHop) {
			visit(ExportedRule{Dir: d, Band: BandMobility, Tag: tag, Prefix: p,
				FromMB: mb, From: topo.None, NH: nh})
		})
	}
}
