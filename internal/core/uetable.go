package core

import (
	"repro/internal/packet"
)

// This file is the struct-of-arrays UE table (DESIGN.md §14): a dense slab
// of fixed-size UE records plus three small open-addressed indices. The old
// layout — map[string]*UE, map[Addr]string byLoc/byPerm, and a separate
// subscriber map — cost five heap objects and three string copies of the
// IMSI per attached UE; at the paper's 1M-UE scale that dominates the
// controller's footprint. Here one 48-byte record in a chunked slab carries
// subscriber registration, attachment, and location state together, keyed
// by a 32-bit slot number:
//
//	slabs:   [][]ueRecord — chunked, so records never move (pointers into a
//	         slab are stable for the record's lifetime) and growth never
//	         copies the population.
//	imsiIdx: open-addressed IMSI -> slot (hash stored next to the slot so
//	         probes reject without touching the slab).
//	locIdx:  open-addressed LocIP -> slot. LocIPs embed (station, UE ID),
//	         so this is the UEID->slot index; reserved old LocIPs of
//	         in-flight handoffs alias extra keys onto their UE's slot.
//	permIdx: open-addressed permanent IP -> slot.
//	free:    slot free list — Detach keeps the record (the permanent IP
//	         stays bound), but a record dropped entirely (migration of an
//	         unregistered UE) returns its slot for reuse.
//
// The table is not internally synchronised; the Controller guards it with
// ueMu exactly as it guarded the maps it replaces.

// ueFlags records which roles a slot currently plays.
type ueFlags uint32

const (
	// ueRegistered: a subscriber record exists (RegisterSubscriber).
	ueRegistered ueFlags = 1 << iota
	// ueHasRecord: a UE record exists (attached now or detached with its
	// permanent IP retained) — the old c.ues membership.
	ueHasRecord
)

// ueRecord is one fixed-size slot. Attributes live in the attrPool; the
// record stores only 32-bit handles. Two handles, because the subscriber
// database and a live UE can legitimately diverge: re-registering a
// subscriber with new attributes must not change the attributes an already
// attached UE was admitted under (they apply from its next first attach).
// The two nearly always name the same pool entry, so the second handle
// costs 4 bytes, not a copy.
type ueRecord struct {
	imsi    string
	subAttr attrHandle // subscriber half (ueRegistered)
	attr    attrHandle // UE half (ueHasRecord)
	flags   ueFlags
	permIP  packet.Addr
	locIP   packet.Addr
	bs      packet.BSID
	ueid    packet.UEID
}

// ueSlabShift sizes one slab at 8192 records (~384 KiB): big enough that a
// 1M-UE table is ~128 slab allocations, small enough that tests with ten
// UEs do not pay megabytes.
const ueSlabShift = 13
const ueSlabSize = 1 << ueSlabShift

// idxEmpty / idxTombstone are the open-addressed slot-word sentinels; live
// entries store slot+1.
const (
	idxEmpty     uint32 = 0
	idxTombstone uint32 = ^uint32(0)
)

// addrIdx is an open-addressed Addr -> slot index (linear probing, power-
// of-two capacity). Address 0 is never a valid LocIP or permanent IP, so
// the zero key needs no special casing beyond rejecting it on insert.
type addrIdx struct {
	keys  []packet.Addr
	slots []uint32 // slot+1; idxEmpty / idxTombstone
	live  int
	tombs int
}

func hashAddr(a packet.Addr) uint32 {
	x := uint32(a)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func (x *addrIdx) lookup(a packet.Addr) (uint32, bool) {
	n := uint32(len(x.slots))
	if n == 0 || a == 0 {
		return 0, false
	}
	for i := hashAddr(a) & (n - 1); ; i = (i + 1) & (n - 1) {
		s := x.slots[i]
		if s == idxEmpty {
			return 0, false
		}
		if s != idxTombstone && x.keys[i] == a {
			return s - 1, true
		}
	}
}

func (x *addrIdx) insert(a packet.Addr, slot uint32) {
	if a == 0 {
		return
	}
	if 4*(x.live+x.tombs+1) > 3*len(x.slots) {
		x.grow()
	}
	// Probe to the key or the first empty before reusing a tombstone: the
	// key may live past a tombstone left by a deleted collision, and
	// inserting at the tombstone would shadow it — a later delete would
	// then resurrect the stale entry.
	n := uint32(len(x.slots))
	reuse := n // first tombstone seen, n = none
	for i := hashAddr(a) & (n - 1); ; i = (i + 1) & (n - 1) {
		s := x.slots[i]
		if s == idxTombstone {
			if reuse == n {
				reuse = i
			}
			continue
		}
		if s == idxEmpty {
			if reuse != n {
				i = reuse
				x.tombs--
			}
			x.keys[i], x.slots[i] = a, slot+1
			x.live++
			return
		}
		if x.keys[i] == a {
			x.slots[i] = slot + 1
			return
		}
	}
}

func (x *addrIdx) delete(a packet.Addr) {
	n := uint32(len(x.slots))
	if n == 0 || a == 0 {
		return
	}
	for i := hashAddr(a) & (n - 1); ; i = (i + 1) & (n - 1) {
		s := x.slots[i]
		if s == idxEmpty {
			return
		}
		if s != idxTombstone && x.keys[i] == a {
			x.slots[i] = idxTombstone
			x.keys[i] = 0
			x.live--
			x.tombs++
			return
		}
	}
}

// grow rehashes into a table sized for the live set (doubling from the
// current capacity, shedding tombstones).
func (x *addrIdx) grow() {
	newCap := 16
	for newCap < 4*(x.live+1)/3+1 {
		newCap *= 2
	}
	if newCap < 2*len(x.slots) && 4*(x.live+1) > 3*len(x.slots) {
		newCap = 2 * len(x.slots)
	}
	oldKeys, oldSlots := x.keys, x.slots
	x.keys = make([]packet.Addr, newCap)
	x.slots = make([]uint32, newCap)
	x.live, x.tombs = 0, 0
	for i, s := range oldSlots {
		if s != idxEmpty && s != idxTombstone {
			x.insert(oldKeys[i], s-1)
		}
	}
}

// forEach visits every live (addr, slot) entry; return false to stop.
func (x *addrIdx) forEach(fn func(a packet.Addr, slot uint32) bool) {
	for i, s := range x.slots {
		if s == idxEmpty || s == idxTombstone {
			continue
		}
		if !fn(x.keys[i], s-1) {
			return
		}
	}
}

// bytes reports the index's backing-array footprint.
func (x *addrIdx) bytes() uint64 {
	return uint64(len(x.keys))*4 + uint64(len(x.slots))*4
}

// reset drops every entry, keeping capacity.
func (x *addrIdx) reset() {
	for i := range x.slots {
		x.slots[i] = idxEmpty
		x.keys[i] = 0
	}
	x.live, x.tombs = 0, 0
}

// strIdx is the open-addressed IMSI -> slot index. Keys are not stored:
// the slab record at the indexed slot holds the authoritative string, so
// the index costs 8 bytes per entry regardless of IMSI length. The cached
// hash rejects almost every false probe without touching the slab.
type strIdx struct {
	hashes []uint32
	slots  []uint32 // slot+1; idxEmpty / idxTombstone
	live   int
	tombs  int
}

func hashIMSI(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ueTable is the struct-of-arrays UE directory.
type ueTable struct {
	slabs [][]ueRecord
	free  []uint32
	next  uint32 // high-water slot count
	live  int    // slots in use (flags != 0)

	imsiIdx strIdx
	locIdx  addrIdx
	permIdx addrIdx

	imsiBytes uint64 // retained IMSI string bytes, maintained incrementally
}

func newUETable() ueTable { return ueTable{} }

// rec returns the record at slot. The pointer is stable for the record's
// lifetime: slabs are chunked and never reallocated.
func (t *ueTable) rec(slot uint32) *ueRecord {
	return &t.slabs[slot>>ueSlabShift][slot&(ueSlabSize-1)]
}

// get resolves an IMSI to its live record.
func (t *ueTable) get(imsi string) (*ueRecord, uint32, bool) {
	n := uint32(len(t.imsiIdx.slots))
	if n == 0 {
		return nil, 0, false
	}
	h := hashIMSI(imsi)
	for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
		s := t.imsiIdx.slots[i]
		if s == idxEmpty {
			return nil, 0, false
		}
		if s != idxTombstone && t.imsiIdx.hashes[i] == h {
			if r := t.rec(s - 1); r.imsi == imsi {
				return r, s - 1, true
			}
		}
	}
}

// alloc takes a slot (free list first), indexes imsi, and returns the
// zeroed record. The caller sets flags before any other table operation.
func (t *ueTable) alloc(imsi string) (*ueRecord, uint32) {
	var slot uint32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = t.next
		t.next++
		if int(slot>>ueSlabShift) == len(t.slabs) {
			t.slabs = append(t.slabs, make([]ueRecord, ueSlabSize))
		}
	}
	r := t.rec(slot)
	*r = ueRecord{imsi: imsi}
	t.imsiInsert(imsi, slot)
	t.imsiBytes += uint64(len(imsi))
	t.live++
	return r, slot
}

// freeRec removes the record's IMSI index entry and returns the slot to
// the free list. The caller has already removed any loc/perm entries.
func (t *ueTable) freeRec(slot uint32) {
	r := t.rec(slot)
	t.imsiDelete(r.imsi)
	t.imsiBytes -= uint64(len(r.imsi))
	*r = ueRecord{}
	t.free = append(t.free, slot)
	t.live--
}

func (t *ueTable) imsiInsert(imsi string, slot uint32) {
	x := &t.imsiIdx
	if 4*(x.live+x.tombs+1) > 3*len(x.slots) {
		t.imsiGrow()
	}
	// Same tombstone discipline as addrIdx.insert: find the key or an
	// empty before reusing a tombstone, so re-indexing an IMSI never
	// shadows its live entry behind a deleted collision.
	n := uint32(len(x.slots))
	h := hashIMSI(imsi)
	reuse := n // first tombstone seen, n = none
	for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
		s := x.slots[i]
		if s == idxTombstone {
			if reuse == n {
				reuse = i
			}
			continue
		}
		if s == idxEmpty {
			if reuse != n {
				i = reuse
				x.tombs--
			}
			x.hashes[i], x.slots[i] = h, slot+1
			x.live++
			return
		}
		if x.hashes[i] == h && t.rec(s-1).imsi == imsi {
			x.slots[i] = slot + 1
			return
		}
	}
}

func (t *ueTable) imsiDelete(imsi string) {
	x := &t.imsiIdx
	n := uint32(len(x.slots))
	if n == 0 {
		return
	}
	h := hashIMSI(imsi)
	for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
		s := x.slots[i]
		if s == idxEmpty {
			return
		}
		if s != idxTombstone && x.hashes[i] == h && t.rec(s-1).imsi == imsi {
			x.slots[i] = idxTombstone
			x.hashes[i] = 0
			x.live--
			x.tombs++
			return
		}
	}
}

func (t *ueTable) imsiGrow() {
	x := &t.imsiIdx
	newCap := 16
	for newCap < 4*(x.live+1)/3+1 {
		newCap *= 2
	}
	if newCap < 2*len(x.slots) && 4*(x.live+1) > 3*len(x.slots) {
		newCap = 2 * len(x.slots)
	}
	oldHashes, oldSlots := x.hashes, x.slots
	x.hashes = make([]uint32, newCap)
	x.slots = make([]uint32, newCap)
	x.live, x.tombs = 0, 0
	n := uint32(newCap)
	for i, s := range oldSlots {
		if s == idxEmpty || s == idxTombstone {
			continue
		}
		h := oldHashes[i]
		for j := h & (n - 1); ; j = (j + 1) & (n - 1) {
			if x.slots[j] == idxEmpty {
				x.hashes[j], x.slots[j] = h, s
				x.live++
				break
			}
		}
	}
}

// forEach visits every live record in slot order; return false to stop.
func (t *ueTable) forEach(fn func(slot uint32, r *ueRecord) bool) {
	for slot := uint32(0); slot < t.next; slot++ {
		r := t.rec(slot)
		if r.flags == 0 {
			continue
		}
		if !fn(slot, r) {
			return
		}
	}
}

// slabBytes reports the record-slab footprint.
func (t *ueTable) slabBytes() uint64 {
	const recSize = 48 // unsafe.Sizeof(ueRecord{}) on 64-bit, kept literal for portability
	return uint64(len(t.slabs)) * ueSlabSize * recSize
}

// indexBytes reports the three open-addressed indices' footprint.
func (t *ueTable) indexBytes() uint64 {
	return uint64(len(t.imsiIdx.hashes))*4 + uint64(len(t.imsiIdx.slots))*4 +
		t.locIdx.bytes() + t.permIdx.bytes() + uint64(len(t.free))*4
}
