package core

import (
	"fmt"
	"sort"

	"repro/internal/packet"
)

// AgentView is the controller's exportable image of one base station's
// agent state: every UE currently attached there with its compiled
// classifiers, plus the station's admitted (clause -> tag) grants from the
// tag memo. It is the payload a dispatcher pushes to the station's local
// agent as an immutable snapshot (agent.NewSnapshot), replacing the
// synchronous per-flow classifier fetch: the agent keeps classifying on
// the last pushed view through any controller outage.
type AgentView struct {
	BS packet.BSID
	// Epoch is the controller's tag-plan epoch at export time: it advances
	// on every tag publication, wholesale rebuild, or station invalidation,
	// so two views with equal epochs were cut from the same plan.
	Epoch uint64
	UEs   []AgentViewUE
	Tags  []TagGrant
}

// AgentViewUE pairs one attached UE with its compiled service policy.
type AgentViewUE struct {
	UE          UE
	Classifiers []Classifier
}

// TagGrant records one admitted policy path at the view's station.
type TagGrant struct {
	Clause int
	Tag    packet.Tag
}

// Epoch reports the controller's current tag-plan epoch.
func (c *Controller) Epoch() uint64 { return c.epoch.Load() }

// AgentView assembles the pushable snapshot of one owned station: its
// attached UEs (sorted by IMSI) with classifiers resolved against the
// current tag memo, and the station's tag grants (sorted by clause). The
// orderings make same-seed exports byte-identical, which the chaos
// harness's determinism checks rely on.
func (c *Controller) AgentView(bs packet.BSID) (AgentView, error) {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	if !c.ownsLocked(bs) {
		return AgentView{}, fmt.Errorf("core: agent view of base station %d: %w", bs, ErrNotOwned)
	}
	view := AgentView{BS: bs, Epoch: c.epoch.Load()}
	c.ues.forEach(func(_ uint32, r *ueRecord) bool {
		if r.flags&ueHasRecord == 0 || r.locIP == 0 || r.bs != bs {
			return true
		}
		view.UEs = append(view.UEs, AgentViewUE{
			UE:          c.ueViewLocked(r),
			Classifiers: c.classifiersLocked(r),
		})
		return true
	})
	sort.Slice(view.UEs, func(i, j int) bool {
		return view.UEs[i].UE.IMSI < view.UEs[j].UE.IMSI
	})
	for k, tag := range *c.tagCache.Load() {
		if k.bs == bs {
			view.Tags = append(view.Tags, TagGrant{Clause: k.clause, Tag: tag})
		}
	}
	sort.Slice(view.Tags, func(i, j int) bool {
		return view.Tags[i].Clause < view.Tags[j].Clause
	})
	return view, nil
}
