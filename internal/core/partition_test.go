package core

import (
	"errors"
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/routing"
	"repro/internal/topo"
)

// shardedController builds a controller restricted to the given stations
// with the tag partition (offset, stride) over a fresh Fig. 3 network.
func shardedController(t *testing.T, stations []packet.BSID, offset, stride int) *Controller {
	t.Helper()
	n := newFig3Net(t)
	if _, err := n.AttachMiddlebox(2, n.cs1); err != nil {
		t.Fatal(err)
	}
	c, err := NewController(n.Topology, ControllerConfig{
		Gateway: n.gw,
		Policy:  policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall:   0,
			policy.MBTranscoder: 1,
			policy.MBEchoCancel: 2,
		},
		Stations: stations,
		Install:  InstallerOptions{TagOffset: offset, TagStride: stride},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRestrictedControllerRejectsForeignStations(t *testing.T) {
	c := shardedController(t, []packet.BSID{0, 1}, 0, 2)
	if err := c.RegisterSubscriber("a", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Attach("a", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Attach("a", 2); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("attach at foreign station: err = %v, want ErrNotOwned", err)
	}
	if _, err := c.Handoff("a", 3); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("handoff to foreign station: err = %v, want ErrNotOwned", err)
	}
	web, _ := c.Policy.Match(policy.Attributes{Provider: "A"}, policy.AppWeb)
	if _, err := c.RequestPath(2, web); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("path request from foreign station: err = %v, want ErrNotOwned", err)
	}
	if _, err := c.RequestPath(1, web); err != nil {
		t.Fatalf("path request from owned station: %v", err)
	}
	if c.Owns(2) || !c.Owns(0) {
		t.Fatal("Owns disagrees with the restriction")
	}
	if got := len(c.Stations()); got != 2 {
		t.Fatalf("Stations() = %d entries, want 2", got)
	}
}

func TestRequestPathBatchMatchesSingles(t *testing.T) {
	c, _ := testController(t)
	attr := policy.Attributes{Provider: "A"}
	web, _ := c.Policy.Match(attr, policy.AppWeb)
	video, _ := c.Policy.Match(attr, policy.AppVideo)
	qs := []PathQuery{{0, web}, {1, web}, {0, video}, {2, web}, {0, web}}
	ans := c.RequestPathBatch(qs, nil)
	if len(ans) != len(qs) {
		t.Fatalf("answers = %d, want %d", len(ans), len(qs))
	}
	for i, q := range qs {
		if ans[i].Err != nil {
			t.Fatalf("batch[%d] %v: %v", i, q, ans[i].Err)
		}
		single, err := c.RequestPath(q.BS, q.Clause)
		if err != nil || single != ans[i].Tag {
			t.Fatalf("batch[%d] tag %d != single %d (err %v)", i, ans[i].Tag, single, err)
		}
	}
	// The answer slice is reused when it has capacity.
	again := c.RequestPathBatch(qs[:2], ans[:0])
	if &again[0] != &ans[0] {
		t.Fatal("batch did not reuse the provided slice")
	}
	// Errors are per-query, not batch-fatal.
	mixed := c.RequestPathBatch([]PathQuery{{0, web}, {0, 9999}}, nil)
	if mixed[0].Err != nil || mixed[1].Err == nil {
		t.Fatalf("mixed batch: %+v", mixed)
	}
}

func TestExtractAdoptMigratesUE(t *testing.T) {
	// Two shards over their own copies of the network: A owns {0,1},
	// B owns {2,3}; tag partition 0/2 and 1/2.
	a := shardedController(t, []packet.BSID{0, 1}, 0, 2)
	b := shardedController(t, []packet.BSID{2, 3}, 1, 2)
	if err := a.RegisterSubscriber("mover", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}
	ue, _, err := a.Attach("mover", 0)
	if err != nil {
		t.Fatal(err)
	}
	perm := ue.PermIP

	m, err := a.ExtractUE("mover")
	if err != nil {
		t.Fatal(err)
	}
	if m.PermIP != perm || m.OldBS != 0 || m.OldLocIP != ue.LocIP {
		t.Fatalf("migrated record wrong: %+v", m)
	}
	if _, ok := a.LookupUE("mover"); ok {
		t.Fatal("source still holds the UE after extract")
	}
	if _, err := a.ResolveLocIP(perm); err == nil {
		t.Fatal("source still resolves the moved UE's permanent IP")
	}

	got, cls, err := b.AdoptUE(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.PermIP != perm {
		t.Fatalf("permanent IP changed across shards: %s != %s", got.PermIP, perm)
	}
	if bs, _, ok := b.Plan().Split(got.LocIP); !ok || bs != 2 {
		t.Fatalf("LocIP %s not allocated at the new station", got.LocIP)
	}
	if len(cls) == 0 {
		t.Fatal("no classifiers compiled on the target shard")
	}
	if loc, err := b.ResolveLocIP(perm); err != nil || loc != got.LocIP {
		t.Fatalf("target resolve = %s, %v", loc, err)
	}
	// Policy paths resolve on the target, with tags from its partition.
	web, _ := b.Policy.Match(got.Attr, policy.AppWeb)
	tag, err := b.RequestPath(2, web)
	if err != nil {
		t.Fatal(err)
	}
	if tag%2 != 1 {
		t.Fatalf("target shard (offset 1, stride 2) emitted tag %d outside its residue class", tag)
	}
	// Adopting twice is an error; adopting at a foreign station is refused.
	if _, _, err := b.AdoptUE(m, 2); err == nil {
		t.Fatal("double adopt should fail")
	}
	if _, _, err := a.AdoptUE(MigratedUE{IMSI: "x", PermIP: 1}, 2); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("adopt at foreign station: %v", err)
	}
}

func TestTagPartitionsAreDisjoint(t *testing.T) {
	n := newFig3Net(t)
	pl := routing.NewPlanner(n.Topology)
	seen := map[packet.Tag]int{}
	for off := 0; off < 3; off++ {
		in := mustInstaller(t, n.Topology, InstallerOptions{TagOffset: off, TagStride: 3})
		for bs := packet.BSID(0); bs < 4; bs++ {
			for _, chain := range [][]topo.MBType{{0}, {0, 1}, {1}} {
				route, err := pl.Plan(bs, chain, n.gw)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := in.InstallPath(route)
				if err != nil {
					t.Fatal(err)
				}
				for _, tag := range rec.Tags {
					if int(tag%3) != off {
						t.Fatalf("installer with offset %d emitted tag %d", off, tag)
					}
					if prev, dup := seen[tag]; dup && prev != off {
						t.Fatalf("tag %d emitted by offsets %d and %d", tag, prev, off)
					}
					seen[tag] = off
				}
			}
		}
	}
	if _, err := NewInstaller(n.Topology, InstallerOptions{TagOffset: 3, TagStride: 3}); err == nil {
		t.Fatal("offset >= stride should be rejected")
	}
}

func TestAbsorbStationRebuildsState(t *testing.T) {
	a := shardedController(t, []packet.BSID{0, 1}, 0, 2)
	b := shardedController(t, []packet.BSID{2, 3}, 1, 2)
	_ = a.RegisterSubscriber("u1", policy.Attributes{Provider: "A"})
	_ = a.RegisterSubscriber("u2", policy.Attributes{Provider: "A", Plan: "silver"})
	u1, _, err := a.Attach("u1", 1)
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := a.Attach("u2", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shard A dies; B absorbs station 1 with A's reported records.
	if b.Owns(1) {
		t.Fatal("precondition: B must not own station 1 yet")
	}
	if err := b.AbsorbStation(1, []UE{u1, u2}); err != nil {
		t.Fatal(err)
	}
	if !b.Owns(1) {
		t.Fatal("absorb did not grant ownership")
	}
	for _, want := range []UE{u1, u2} {
		got, ok := b.LookupUE(want.IMSI)
		if !ok || got.LocIP != want.LocIP || got.UEID != want.UEID || got.PermIP != want.PermIP {
			t.Fatalf("absorbed %q = %+v, want %+v", want.IMSI, got, want)
		}
		if loc, err := b.ResolveLocIP(want.PermIP); err != nil || loc != want.LocIP {
			t.Fatalf("resolve %q after absorb: %s, %v", want.IMSI, loc, err)
		}
	}
	// Fresh allocations at the absorbed station skip the imported UEIDs.
	_ = b.RegisterSubscriber("new", policy.Attributes{Provider: "A"})
	nu, _, err := b.Attach("new", 1)
	if err != nil {
		t.Fatal(err)
	}
	if nu.UEID == u1.UEID || nu.UEID == u2.UEID {
		t.Fatalf("fresh UEID %d collides with an absorbed one", nu.UEID)
	}
}
