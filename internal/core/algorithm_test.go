package core

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topo"
)

// fig3Net builds the Figure 3(c) scenario: four base stations behind two
// pairs of access-facing switches, one firewall near the gateway, two
// transcoders at different branches.
//
//	gw - cs1 - cs2 - as1..as2 side, cs2 - cs3 - as3..as4 side
//
// (simplified to a tree: cs2 serves as1,as2 and reaches cs3 which serves
// as3,as4; firewall on cs1, transcoder1 on cs2, transcoder2 on cs3).
type fig3Net struct {
	*topo.Topology
	gw, cs1, cs2, cs3  topo.NodeID
	as                 [4]topo.NodeID
	firewall, tc1, tc2 topo.MBInstanceID
}

func newFig3Net(t testing.TB) *fig3Net {
	t.Helper()
	n := &fig3Net{Topology: topo.New()}
	n.gw = n.AddNode(topo.Gateway, "gw")
	n.cs1 = n.AddNode(topo.Core, "cs1")
	n.cs2 = n.AddNode(topo.Core, "cs2")
	n.cs3 = n.AddNode(topo.Core, "cs3")
	for i := 0; i < 4; i++ {
		n.as[i] = n.AddNode(topo.Access, "as")
		if err := n.AddBaseStation(packet.BSID(i), n.as[i]); err != nil {
			t.Fatal(err)
		}
	}
	links := [][2]topo.NodeID{
		{n.gw, n.cs1}, {n.cs1, n.cs2}, {n.cs2, n.cs3},
		{n.cs2, n.as[0]}, {n.cs2, n.as[1]},
		{n.cs3, n.as[2]}, {n.cs3, n.as[3]},
	}
	for _, l := range links {
		if err := n.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	if n.firewall, err = n.AttachMiddlebox(0, n.cs1); err != nil {
		t.Fatal(err)
	}
	if n.tc1, err = n.AttachMiddlebox(1, n.cs2); err != nil {
		t.Fatal(err)
	}
	if n.tc2, err = n.AttachMiddlebox(1, n.cs3); err != nil {
		t.Fatal(err)
	}
	return n
}

func mustInstaller(t testing.TB, tp *topo.Topology, opts InstallerOptions) *Installer {
	t.Helper()
	in, err := NewInstaller(tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstallSinglePathAndVerify(t *testing.T) {
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{})
	pl := routing.NewPlanner(n.Topology)
	route, err := pl.Plan(0, []topo.MBType{0, 1}, n.gw)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := in.InstallPath(route)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tags) != 1 {
		t.Fatalf("tags = %v, want one segment", rec.Tags)
	}
	if rec.GatewayTag() != rec.AccessTag() {
		t.Fatal("loop-free path should have one tag")
	}
	if err := in.VerifyPath(rec); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Paths != 1 || st.Rules <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFig3cTagSharing(t *testing.T) {
	// The paper's Fig. 3(c): all four stations' "silver video" paths share
	// one tag. CS1 needs only a single tag rule; CS2 dispatches as1/as2
	// traffic to transcoder1 and forwards as3/as4 traffic (aggregated) to
	// CS3.
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{})
	pl := routing.NewPlanner(n.Topology)
	var recs []*InstalledPath
	for bs := packet.BSID(0); bs < 4; bs++ {
		route, err := pl.Plan(bs, []topo.MBType{0, 1}, n.gw)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := in.InstallPath(route)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	// Expect the nearest-instance selector to split: bs0/bs1 via tc1,
	// bs2/bs3 via tc2.
	if recs[0].Chain[1] != n.tc1 || recs[1].Chain[1] != n.tc1 {
		t.Fatalf("bs0/bs1 chains: %v %v", recs[0].Chain, recs[1].Chain)
	}
	if recs[2].Chain[1] != n.tc2 || recs[3].Chain[1] != n.tc2 {
		t.Fatalf("bs2/bs3 chains: %v %v", recs[2].Chain, recs[3].Chain)
	}
	// All paths re-verify after all installs: no clobbering.
	for _, rec := range recs {
		if err := in.VerifyPath(rec); err != nil {
			t.Fatal(err)
		}
	}
	// CS1 carries firewall steering for the shared tag; it must not need
	// per-station rules: with two chains there are at most 2 tags, and CS1's
	// tag-specific rule count stays well below 4 stations x 2 rules. (The
	// bootstrapped Type 3 location table is shared infrastructure and
	// independent of the policy count, so it is excluded here.)
	t1, t2, _, _ := in.FIB(n.cs1).RuleBreakdown()
	if t1+t2 > 6 {
		t.Fatalf("cs1 tag rules = %d+%d; aggregation failed", t1, t2)
	}
	// Tag reuse: bs0 and bs1 share a tag (same chain); likewise bs2/bs3.
	if recs[0].GatewayTag() != recs[1].GatewayTag() {
		t.Fatalf("bs0/bs1 should share a tag: %v %v", recs[0].Tags, recs[1].Tags)
	}
	if recs[2].GatewayTag() != recs[3].GatewayTag() {
		t.Fatalf("bs2/bs3 should share a tag: %v %v", recs[2].Tags, recs[3].Tags)
	}
}

func TestSameOriginDistinctTags(t *testing.T) {
	// Two policy paths from one base station can never share a tag (paper
	// footnote 2) even when their middlebox chains coincide.
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{})
	pl := routing.NewPlanner(n.Topology)
	r1, _ := pl.Plan(0, []topo.MBType{0}, n.gw)
	r2, _ := pl.Plan(0, []topo.MBType{0}, n.gw)
	rec1, err := in.InstallPath(r1)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := in.InstallPath(r2)
	if err != nil {
		t.Fatal(err)
	}
	if rec1.GatewayTag() == rec2.GatewayTag() {
		t.Fatal("same-origin paths must get distinct tags")
	}
	if err := in.VerifyPath(rec1); err != nil {
		t.Fatal(err)
	}
	if err := in.VerifyPath(rec2); err != nil {
		t.Fatal(err)
	}
}

func TestAggregationSharesSiblingRules(t *testing.T) {
	// Installing the same chain for two sibling base stations must cost
	// fewer rules than twice the single-path cost (the prefix entries for
	// contiguous stations merge, and the tag rules are shared).
	n := newFig3Net(t)
	pl := routing.NewPlanner(n.Topology)

	single := mustInstaller(t, n.Topology, InstallerOptions{})
	r0, _ := pl.Plan(0, []topo.MBType{0, 1}, n.gw)
	if _, err := single.InstallPath(r0); err != nil {
		t.Fatal(err)
	}
	oneCost := single.Stats().Rules

	both := mustInstaller(t, n.Topology, InstallerOptions{})
	r0b, _ := pl.Plan(0, []topo.MBType{0, 1}, n.gw)
	r1b, _ := pl.Plan(1, []topo.MBType{0, 1}, n.gw)
	if _, err := both.InstallPath(r0b); err != nil {
		t.Fatal(err)
	}
	if _, err := both.InstallPath(r1b); err != nil {
		t.Fatal(err)
	}
	twoCost := both.Stats().Rules
	if twoCost >= 2*oneCost {
		t.Fatalf("no sharing: 1 path = %d rules, 2 paths = %d", oneCost, twoCost)
	}
}

func TestDifferentLinkLoopUsesInPortRules(t *testing.T) {
	// gw - A - B with the middlebox on B and the station on A: the path
	// gw,A,B(mb),A,as revisits A but through *different* links, so in-port
	// rules disambiguate it under a single tag (§3.2: "A loop that enters
	// the same switch twice but through different links can easily be
	// differentiated based on the input ports").
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	a := tp.AddNode(topo.Core, "A")
	b := tp.AddNode(topo.Core, "B")
	as := tp.AddNode(topo.Access, "as")
	for _, l := range [][2]topo.NodeID{{gw, a}, {a, b}, {a, as}} {
		if err := tp.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddBaseStation(0, as); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.AttachMiddlebox(0, b); err != nil {
		t.Fatal(err)
	}
	in := mustInstaller(t, tp, InstallerOptions{})
	pl := routing.NewPlanner(tp)
	route, err := pl.Plan(0, []topo.MBType{0}, gw)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := in.InstallPath(route)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tags) != 1 {
		t.Fatalf("tags = %v, want a single tag (in-port disambiguation)", rec.Tags)
	}
	if in.Stats().LoopsSplit != 0 {
		t.Fatalf("LoopsSplit = %d, want 0", in.Stats().LoopsSplit)
	}
	if err := in.VerifyPath(rec); err != nil {
		t.Fatal(err)
	}
}

func TestSameLinkLoopSegmentsAndSwaps(t *testing.T) {
	// gw - A - B - C with the station behind B, middlebox 1 on C and
	// middlebox 2 on A: the path gw,A,B,C(m1),B,A(m2),B,as enters B from A
	// twice with different onward hops — a same-link loop that needs two
	// tag segments connected by a swap rule (§3.2).
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	a := tp.AddNode(topo.Core, "A")
	b := tp.AddNode(topo.Core, "B")
	c := tp.AddNode(topo.Core, "C")
	as := tp.AddNode(topo.Access, "as")
	for _, l := range [][2]topo.NodeID{{gw, a}, {a, b}, {b, c}, {b, as}} {
		if err := tp.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddBaseStation(0, as); err != nil {
		t.Fatal(err)
	}
	m1, err := tp.AttachMiddlebox(0, c)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tp.AttachMiddlebox(1, a)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstaller(t, tp, InstallerOptions{})
	pl := routing.NewPlanner(tp)
	route, err := pl.PlanInstances(0, []topo.MBInstanceID{m1, m2}, gw)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := in.InstallPath(route)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tags) < 2 {
		t.Fatalf("tags = %v, want >= 2 segments", rec.Tags)
	}
	if rec.Tags[0] == rec.Tags[1] {
		t.Fatal("segments must use distinct tags")
	}
	if in.Stats().LoopsSplit != 1 {
		t.Fatalf("LoopsSplit = %d", in.Stats().LoopsSplit)
	}
	if err := in.VerifyPath(rec); err != nil {
		t.Fatal(err)
	}
}

func TestRejectTransitOwnAccess(t *testing.T) {
	// Force a route that passes through the origin's access switch by
	// constructing it manually: gw - as - agg, station on as, path listing
	// as as an intermediate hop.
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	as := tp.AddNode(topo.Access, "as")
	agg := tp.AddNode(topo.Agg, "agg")
	_ = tp.Connect(gw, as)
	_ = tp.Connect(as, agg)
	_ = tp.AddBaseStation(0, as)
	bad := &routing.Path{
		Origin:   0,
		Switches: []topo.NodeID{gw, as, agg, as},
		MBAt:     []topo.MBInstanceID{routing.NoMB, routing.NoMB, routing.NoMB, routing.NoMB},
	}
	in := mustInstaller(t, tp, InstallerOptions{})
	if _, err := in.InstallPath(bad); err == nil {
		t.Fatal("transit through own access switch must be rejected")
	}
}

func TestRejectMBAtAccess(t *testing.T) {
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	as := tp.AddNode(topo.Access, "as")
	_ = tp.Connect(gw, as)
	_ = tp.AddBaseStation(0, as)
	mb, _ := tp.AttachMiddlebox(0, as)
	bad := &routing.Path{
		Origin:   0,
		Switches: []topo.NodeID{gw, as},
		MBAt:     []topo.MBInstanceID{routing.NoMB, mb},
		Chain:    []topo.MBInstanceID{mb},
	}
	in := mustInstaller(t, tp, InstallerOptions{})
	if _, err := in.InstallPath(bad); err == nil {
		t.Fatal("middlebox at the origin access switch must be rejected")
	}
}

func TestInstallPathInputValidation(t *testing.T) {
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{})
	if _, err := in.InstallPath(nil); err == nil {
		t.Error("nil path")
	}
	if _, err := in.InstallPath(&routing.Path{Origin: 99,
		Switches: []topo.NodeID{n.gw}, MBAt: []topo.MBInstanceID{routing.NoMB}}); err == nil {
		t.Error("unknown origin")
	}
	if _, err := in.InstallPath(&routing.Path{Origin: 0,
		Switches: []topo.NodeID{n.gw, n.as[1]},
		MBAt:     []topo.MBInstanceID{routing.NoMB, routing.NoMB}}); err == nil {
		t.Error("wrong access end")
	}
}

func TestNewInstallerRejectsBadPlan(t *testing.T) {
	n := newFig3Net(t)
	if _, err := NewInstaller(n.Topology, InstallerOptions{
		Plan: packet.Plan{Carrier: packet.NewPrefix(0, 8), BSBits: 1, UEBits: 1, TagBits: 1},
	}); err == nil {
		t.Fatal("invalid plan should be rejected")
	}
}

// Property test (DESIGN.md §6): after installing a random batch of paths on
// a generated topology, every path's rule-table walk still reproduces its
// requested route — installs never clobber earlier paths.
func TestManyPathsNoClobbering(t *testing.T) {
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// BSBits for 40 stations: default plan (12 bits) is fine.
	in := mustInstaller(t, g.Topology, InstallerOptions{})
	pl := routing.NewPlanner(g.Topology)
	rng := rand.New(rand.NewSource(42))
	var recs []*InstalledPath
	for i := 0; i < 120; i++ {
		bs := packet.BSID(rng.Intn(len(g.Stations)))
		m := 1 + rng.Intn(3)
		chain := make([]topo.MBType, m)
		for j := range chain {
			chain[j] = topo.MBType(rng.Intn(4))
			for j > 0 && chain[j] == chain[j-1] {
				chain[j] = topo.MBType(rng.Intn(4))
			}
		}
		route, err := pl.Plan(bs, chain, g.GatewayID)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := in.InstallPath(route)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	for i, rec := range recs {
		if err := in.VerifyPath(rec); err != nil {
			t.Fatalf("path %d (of %d) broken after later installs: %v", i, len(recs), err)
		}
	}
	// Rule count accounting is consistent with the FIBs.
	hw, sw := in.TableSizes()
	if hw.Total()+sw.Total() != in.Stats().Rules {
		t.Fatalf("rule accounting mismatch: tables=%d stats=%d",
			hw.Total()+sw.Total(), in.Stats().Rules)
	}
}

func TestAblationsCostMoreRules(t *testing.T) {
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	chains := [][]topo.MBType{{0, 1}, {2}, {1, 3, 0}}
	stations := make([]packet.BSID, len(g.Stations))
	for i := range stations {
		stations[i] = packet.BSID(i)
	}
	run := func(opts InstallerOptions) int {
		in := mustInstaller(t, g.Topology, opts)
		pl := routing.NewPlanner(g.Topology)
		if _, err := in.InstallForStations(pl, stations, chains, g.GatewayID, false); err != nil {
			t.Fatal(err)
		}
		hw, _ := in.TableSizes()
		return hw.Total()
	}
	full := run(InstallerOptions{})
	// Fresh-tag-per-path allocates one tag per (station, chain) — far past
	// the default plan's encodable space; this is a rule-counting ablation,
	// so lift the bound exactly as the sweeps do.
	fresh := run(InstallerOptions{FreshTagPerPath: true, UnboundedTags: true})
	noAgg := run(InstallerOptions{NoPrefixAggregation: true})
	noDef := run(InstallerOptions{NoTagDefault: true})
	if fresh <= full {
		t.Errorf("fresh-tag ablation should cost more: full=%d fresh=%d", full, fresh)
	}
	if noAgg < full {
		t.Errorf("no-aggregation ablation should not cost less: full=%d noAgg=%d", full, noAgg)
	}
	if noDef <= full {
		t.Errorf("no-default ablation should cost more: full=%d noDef=%d", full, noDef)
	}
}

func TestInstallForStationsKeepsRecordsOnDemand(t *testing.T) {
	g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 4, MBTypes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstaller(t, g.Topology, InstallerOptions{})
	pl := routing.NewPlanner(g.Topology)
	stations := []packet.BSID{0, 1}
	chains := [][]topo.MBType{{0}}
	recs, err := in.InstallForStations(pl, stations, chains, g.GatewayID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(in.Paths()) != 2 {
		t.Fatalf("records = %d, paths = %d", len(recs), len(in.Paths()))
	}
	in2 := mustInstaller(t, g.Topology, InstallerOptions{})
	if _, err := in2.InstallForStations(routing.NewPlanner(g.Topology), stations, chains, g.GatewayID, false); err != nil {
		t.Fatal(err)
	}
	if len(in2.Paths()) != 0 {
		t.Fatal("records should be dropped when not kept")
	}
	if in2.Stats().Paths != 2 {
		t.Fatal("stats should still count installs")
	}
}

func TestBoundedCandidatesStillShareTags(t *testing.T) {
	n := newFig3Net(t)
	in := mustInstaller(t, n.Topology, InstallerOptions{MaxCandidates: 4})
	pl := routing.NewPlanner(n.Topology)
	var tags []packet.Tag
	for bs := packet.BSID(0); bs < 2; bs++ {
		route, _ := pl.Plan(bs, []topo.MBType{0, 1}, n.gw)
		rec, err := in.InstallPath(route)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, rec.GatewayTag())
	}
	if tags[0] != tags[1] {
		t.Fatalf("chain-signature hint should still share tags: %v", tags)
	}
}

func TestTraceLoopBudget(t *testing.T) {
	// A deliberately corrupted FIB (two switches pointing at each other)
	// must be detected, not spin forever.
	tp := topo.New()
	a := tp.AddNode(topo.Core, "a")
	b := tp.AddNode(topo.Core, "b")
	_ = tp.Connect(a, b)
	in := mustInstaller(t, tp, InstallerOptions{})
	in.FIB(a).SetDefault(Down, 1, ToNode(b))
	in.FIB(b).SetDefault(Down, 1, ToNode(a))
	if _, _, err := in.Trace(Down, a, 1, packet.AddrFrom4(10, 0, 16, 1)); err == nil {
		t.Fatal("forwarding loop should be detected")
	}
}
