package core

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// testController builds a controller over the Fig. 3 network with the
// Table 1 policy; middlebox type 0 = firewall, 1 = transcoder, 2 = echo
// cancel (attached alongside the transcoders for simplicity). It runs
// with a live obs registry, so the whole suite (benchmarks included)
// exercises the instrumented code paths.
func testController(t testing.TB) (*Controller, *fig3Net) {
	return testControllerPlan(t, packet.Plan{})
}

// testControllerPlan is testController with an explicit address plan.
// Tests that churn long enough to allocate many policy tags (tags are
// monotonic and never reused, so stale ones can't alias) pass a plan with
// a widened tag field, as the chaos harness does.
func testControllerPlan(t testing.TB, plan packet.Plan) (*Controller, *fig3Net) {
	t.Helper()
	n := newFig3Net(t)
	if _, err := n.AttachMiddlebox(2, n.cs1); err != nil { // echo-cancel
		t.Fatal(err)
	}
	c, err := NewController(n.Topology, ControllerConfig{
		Plan:    plan,
		Obs:     obs.New(),
		Gateway: n.gw,
		Policy:  policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall:   0,
			policy.MBTranscoder: 1,
			policy.MBEchoCancel: 2,
		},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, n
}

func TestAttachAllocatesAddresses(t *testing.T) {
	c, _ := testController(t)
	if err := c.RegisterSubscriber("imsi-1", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		t.Fatal(err)
	}
	ue, cls, err := c.Attach("imsi-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ue.PermIP == 0 || ue.LocIP == 0 || ue.UEID == 0 {
		t.Fatalf("addresses not allocated: %+v", ue)
	}
	bs, id, ok := c.Plan().Split(ue.LocIP)
	if !ok || bs != 0 || id != ue.UEID {
		t.Fatalf("LocIP %s does not decode to allocation", ue.LocIP)
	}
	if len(cls) == 0 {
		t.Fatal("no classifiers compiled")
	}
	// No paths installed yet: all allow-classifiers say "ask".
	for _, cl := range cls {
		if cl.Allow && cl.Tag != 0 {
			t.Fatalf("classifier has premature tag: %+v", cl)
		}
	}
	got, ok := c.LookupByLocIP(ue.LocIP)
	if !ok || got.IMSI != "imsi-1" {
		t.Fatal("LookupByLocIP failed")
	}
}

func TestAttachUnknownSubscriber(t *testing.T) {
	c, _ := testController(t)
	if _, _, err := c.Attach("ghost", 0); err == nil {
		t.Fatal("unknown subscriber should fail")
	}
	_ = c.RegisterSubscriber("x", policy.Attributes{Provider: "A"})
	if _, _, err := c.Attach("x", 99); err == nil {
		t.Fatal("unknown base station should fail")
	}
}

func TestAttachDistinctAddresses(t *testing.T) {
	c, _ := testController(t)
	seenPerm := map[packet.Addr]bool{}
	seenLoc := map[packet.Addr]bool{}
	for i := 0; i < 20; i++ {
		imsi := fmt.Sprintf("imsi-%d", i)
		_ = c.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"})
		ue, _, err := c.Attach(imsi, packet.BSID(i%4))
		if err != nil {
			t.Fatal(err)
		}
		if seenPerm[ue.PermIP] || seenLoc[ue.LocIP] {
			t.Fatalf("duplicate address for %s: %+v", imsi, ue)
		}
		seenPerm[ue.PermIP] = true
		seenLoc[ue.LocIP] = true
	}
}

func TestReattachSameStationIsStable(t *testing.T) {
	c, _ := testController(t)
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue1, _, _ := c.Attach("a", 1)
	ue2, _, err := c.Attach("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ue1.LocIP != ue2.LocIP || ue1.PermIP != ue2.PermIP {
		t.Fatal("re-attach should keep allocations")
	}
}

func TestRequestPathCachesAndTags(t *testing.T) {
	c, _ := testController(t)
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A", Plan: "silver"})
	ue, _, _ := c.Attach("a", 0)
	clause, ok := c.Policy.Match(ue.Attr, policy.AppVideo)
	if !ok {
		t.Fatal("no clause for video")
	}
	tag1, err := c.RequestPath(0, clause)
	if err != nil {
		t.Fatal(err)
	}
	if tag1 == 0 {
		t.Fatal("no tag returned")
	}
	tag2, err := c.RequestPath(0, clause)
	if err != nil {
		t.Fatal(err)
	}
	if tag1 != tag2 {
		t.Fatal("second request should hit the cache")
	}
	if st := c.Stats(); st.PathAsks != 2 || st.PathMiss != 1 {
		t.Fatalf("asks=%d miss=%d", st.PathAsks, st.PathMiss)
	}
	// Classifiers compiled now resolve the tag.
	_, cls, _ := c.Attach("a", 0)
	found := false
	for _, cl := range cls {
		if cl.App == policy.AppVideo && cl.Tag == tag1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("classifier should carry tag %d: %+v", tag1, cls)
	}
}

func TestRequestPathErrors(t *testing.T) {
	c, _ := testController(t)
	if _, err := c.RequestPath(0, 999); err == nil {
		t.Error("unknown clause should fail")
	}
	// Clause 1 of the example policy is the foreign deny.
	denyID, ok := c.Policy.Match(policy.Attributes{Provider: "C"}, policy.AppWeb)
	if !ok {
		t.Fatal("deny clause not found")
	}
	if _, err := c.RequestPath(0, denyID); err == nil {
		t.Error("deny clause should not install a path")
	}
}

func TestHandoffMovesUE(t *testing.T) {
	c, _ := testController(t)
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A", Plan: "silver"})
	ue, _, _ := c.Attach("a", 0)
	oldLoc := ue.LocIP
	clause, _ := c.Policy.Match(ue.Attr, policy.AppVideo)
	if _, err := c.RequestPath(0, clause); err != nil {
		t.Fatal(err)
	}

	res, err := c.Handoff("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.OldBS != 0 || res.OldLocIP != oldLoc {
		t.Fatalf("handoff bookkeeping: %+v", res)
	}
	if res.UE.BS != 2 || res.UE.LocIP == oldLoc || res.UE.LocIP == 0 {
		t.Fatalf("UE not moved: %+v", res.UE)
	}
	if res.UE.PermIP != ue.PermIP {
		t.Fatal("permanent IP must not change")
	}
	if len(res.Shortcuts) == 0 {
		t.Fatal("expected a shortcut for the cached path")
	}
	// The old LocIP is reserved, not reallocated: attaching new UEs at the
	// old station must not receive it.
	for i := 0; i < 5; i++ {
		imsi := fmt.Sprintf("n%d", i)
		_ = c.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"})
		nu, _, err := c.Attach(imsi, 0)
		if err != nil {
			t.Fatal(err)
		}
		if nu.LocIP == oldLoc {
			t.Fatal("old LocIP reassigned during transition")
		}
	}
	// Shortcut rules route old-LocIP traffic to the new access switch.
	sc := res.Shortcuts[0]
	if sc.Route[len(sc.Route)-1] != mustStation(t, c.T, 2).Access {
		t.Fatalf("shortcut ends at %d", sc.Route[len(sc.Route)-1])
	}
	// After release, the rules disappear and the address can be reused.
	before := c.Installer.Stats().Rules
	c.ReleaseOldLocIP(oldLoc, res.Shortcuts)
	if c.Installer.Stats().Rules >= before {
		t.Fatal("shortcut rules not removed")
	}
}

func mustStation(t *testing.T, tp *topo.Topology, bs packet.BSID) topo.BaseStation {
	t.Helper()
	st, ok := tp.Station(bs)
	if !ok {
		t.Fatalf("station %d missing", bs)
	}
	return st
}

func TestHandoffErrors(t *testing.T) {
	c, _ := testController(t)
	if _, err := c.Handoff("ghost", 1); err == nil {
		t.Error("unattached UE should fail")
	}
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	_, _, _ = c.Attach("a", 0)
	if _, err := c.Handoff("a", 0); err == nil {
		t.Error("handoff to the same station should fail")
	}
	if _, err := c.Handoff("a", 77); err == nil {
		t.Error("unknown station should fail")
	}
}

func TestDetachFreesLocIP(t *testing.T) {
	c, _ := testController(t)
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, _ := c.Attach("a", 0)
	if err := c.Detach("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LookupByLocIP(ue.LocIP); ok {
		t.Fatal("detached LocIP should not resolve")
	}
	if err := c.Detach("ghost"); err == nil {
		t.Fatal("unknown UE should fail")
	}
	// The freed UEID is reused.
	_ = c.RegisterSubscriber("b", policy.Attributes{Provider: "A"})
	ue2, _, _ := c.Attach("b", 0)
	if ue2.UEID != ue.UEID {
		t.Fatalf("freed UEID not reused: %d vs %d", ue2.UEID, ue.UEID)
	}
}

func TestRecoverLocationsFromAgents(t *testing.T) {
	c, _ := testController(t)
	var want []UE
	for i := 0; i < 6; i++ {
		imsi := fmt.Sprintf("imsi-%d", i)
		_ = c.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"})
		ue, _, err := c.Attach(imsi, packet.BSID(i%3))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ue)
	}
	// Simulate controller failover: replica takes over with no location
	// state, then rebuilds from agent reports (§5.2).
	if _, err := c.Store.Failover(); err != nil {
		t.Fatal(err)
	}
	reports := map[packet.BSID]*AgentLocationReport{}
	for _, ue := range want {
		r := reports[ue.BS]
		if r == nil {
			r = &AgentLocationReport{BS: ue.BS}
			reports[ue.BS] = r
		}
		r.UEs = append(r.UEs, ue)
	}
	var reps []AgentLocationReport
	for _, r := range reports {
		reps = append(reps, *r)
	}
	if err := c.RecoverLocations(reps); err != nil {
		t.Fatal(err)
	}
	for _, ue := range want {
		got, ok := c.LookupUE(ue.IMSI)
		if !ok || got.BS != ue.BS || got.LocIP != ue.LocIP || got.PermIP != ue.PermIP {
			t.Fatalf("recovered %+v, want %+v", got, ue)
		}
		if byLoc, ok := c.LookupByLocIP(ue.LocIP); !ok || byLoc.IMSI != ue.IMSI {
			t.Fatalf("byLoc index not rebuilt for %s", ue.IMSI)
		}
	}
	// Allocation continues without collisions after recovery.
	_ = c.RegisterSubscriber("new", policy.Attributes{Provider: "A"})
	nu, _, err := c.Attach("new", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ue := range want {
		if ue.LocIP == nu.LocIP {
			t.Fatal("post-recovery allocation collided")
		}
	}
}

func TestControllerConfigValidation(t *testing.T) {
	n := newFig3Net(t)
	if _, err := NewController(n.Topology, ControllerConfig{Gateway: n.gw}); err == nil {
		t.Error("missing policy should fail")
	}
	if _, err := NewController(n.Topology, ControllerConfig{
		Gateway:  n.gw,
		Policy:   policy.ExampleCarrierPolicy(),
		PermPool: packet.NewPrefix(packet.AddrFrom4(10, 1, 0, 0), 16),
	}); err == nil {
		t.Error("perm pool overlapping carrier should fail")
	}
}

func TestStorePersistsControlState(t *testing.T) {
	c, _ := testController(t)
	_ = c.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, _ := c.Attach("a", 0)
	if _, ok := c.Store.Get("sub/a"); !ok {
		t.Error("subscriber not in store")
	}
	if _, ok := c.Store.Get("ue/a"); !ok {
		t.Error("UE not in store")
	}
	clause, _ := c.Policy.Match(ue.Attr, policy.AppWeb)
	if _, err := c.RequestPath(0, clause); err != nil {
		t.Fatal(err)
	}
	if keys := c.Store.Keys("path/"); len(keys) != 1 {
		t.Errorf("path keys = %v", keys)
	}
	// Replicas carry the same state.
	for _, r := range c.Store.Replicas() {
		if _, ok := r.Get("ue/a"); !ok {
			t.Errorf("replica %s missing UE", r.Name())
		}
	}
}
