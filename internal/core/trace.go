package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topo"
)

// TraceEvent is one element of a rule-table walk: a switch visited, and
// optionally the middlebox traversed there.
type TraceEvent struct {
	Switch topo.NodeID
	MB     topo.MBInstanceID // NoMB when the event is plain forwarding
}

// Trace walks the installed rule tables exactly as a packet would, starting
// at 'from' carrying 'tag', addressed by the LocIP 'loc' (its base-station
// prefix selects the Type 1 rules; the full /32 selects mobility
// overrides). It returns the sequence of (switch, middlebox) events and the
// final switch reached when no rule matches any more.
//
// Trace is the verification primitive behind DESIGN.md §6's "walking the
// rule tables reproduces the requested switch/middlebox sequence".
func (in *Installer) Trace(dir Direction, from topo.NodeID, tag packet.Tag, loc packet.Addr) ([]TraceEvent, topo.NodeID, error) {
	return in.TraceDeliver(dir, from, tag, loc, topo.None)
}

// TraceDeliver is Trace with one extra downstream delivery point: a handed-
// off UE's microflows live at its *current* access switch, not the one its
// reserved old LocIP embeds, so a walk for such an address must also stop
// where those microflows would claim the packet (they outrank every TCAM
// rule). The invariant checker passes the UE's current access here when
// verifying §5's old-flow policy consistency.
func (in *Installer) TraceDeliver(dir Direction, from topo.NodeID, tag packet.Tag, loc packet.Addr, also topo.NodeID) ([]TraceEvent, topo.NodeID, error) {
	bsPfx := packet.NewPrefix(loc, in.plan.Carrier.Len+in.plan.BSBits)
	// Downstream delivery happens at the destination's access switch via
	// exact-match microflows that outrank every TCAM rule, so the walk must
	// stop there rather than follow a shared tag-only rule onward.
	deliverAt := topo.None
	if dir == Down {
		if bsID, _, ok := in.plan.Split(loc); ok {
			if st, ok := in.T.Station(bsID); ok {
				deliverAt = st.Access
			}
		}
	}
	cur := from
	ctx := NoMB
	inFrom := topo.None // arrival port: Internet/UE side at the entry switch
	var events []TraceEvent
	events = append(events, TraceEvent{Switch: cur, MB: NoMB})
	for hops := 0; hops < 4*len(in.T.Nodes)+16; hops++ {
		if dir == Down && ctx == NoMB && (cur == deliverAt || (also != topo.None && cur == also)) {
			return events, cur, nil
		}
		f := in.fibs[cur]
		var nh NextHop
		var ok bool
		// Mobility overrides outrank policy rules (priority band, §3.1
		// "UE mobility"); at a shortcut's branch switch the override is
		// qualified by the middlebox return port.
		if ctx == NoMB {
			nh, ok = f.LookupMobility(dir, tag, loc)
		} else {
			nh, ok = f.LookupMobilityFromMB(dir, ctx, tag, loc)
		}
		if !ok {
			if ctx != NoMB {
				nh, ok = f.GetNextHopFromMB(dir, ctx, tag, bsPfx)
			} else {
				nh, ok = f.GetNextHopVia(dir, inFrom, tag, bsPfx)
			}
		}
		if !ok {
			return events, cur, nil
		}
		if nh.MB != NoMB {
			if nh.MB == ctx {
				// Returning traffic would re-enter the same box: the main
				// rule matched because no onward rule exists. This is the
				// delivery point (access switches deliver via microflows
				// that outrank these rules).
				return events, cur, nil
			}
			if nh.NewTag != 0 {
				tag = nh.NewTag
			}
			events = append(events, TraceEvent{Switch: cur, MB: nh.MB})
			ctx = nh.MB
			continue
		}
		if nh.IsExit() || nh.IsDeliver() {
			// Out the gateway's Internet port, or handed to the local
			// delivery microflows: the walk is complete.
			return events, cur, nil
		}
		if nh.NewTag != 0 {
			tag = nh.NewTag
		}
		inFrom = cur
		cur = nh.Node
		ctx = NoMB
		events = append(events, TraceEvent{Switch: cur, MB: NoMB})
	}
	return events, cur, fmt.Errorf("core: trace exceeded hop budget (forwarding loop?)")
}

// VerifyPath checks that an installed path's rule-table walk reproduces its
// requested route in both directions: the downstream trace from the gateway
// must visit the route's switches and middleboxes in order and terminate at
// the access switch; the upstream trace the reverse.
func (in *Installer) VerifyPath(rec *InstalledPath) error {
	loc, err := in.plan.LocIP(rec.Origin, 1)
	if err != nil {
		return err
	}
	bs, _ := in.T.Station(rec.Origin)

	check := func(dir Direction, from, to topo.NodeID, entry packet.Tag, wantSw []topo.NodeID, wantMB []topo.MBInstanceID) error {
		events, last, err := in.Trace(dir, from, entry, loc)
		if err != nil {
			return err
		}
		if last != to {
			return fmt.Errorf("core: %s trace for path %d ended at switch %d, want %d (events %v)",
				dir, rec.ID, last, to, events)
		}
		var sw []topo.NodeID
		var mbs []topo.MBInstanceID
		for _, e := range events {
			if e.MB != NoMB {
				mbs = append(mbs, e.MB)
			} else {
				if len(sw) == 0 || sw[len(sw)-1] != e.Switch {
					sw = append(sw, e.Switch)
				}
			}
		}
		if len(mbs) != len(wantMB) {
			return fmt.Errorf("core: %s trace for path %d traversed middleboxes %v, want %v", dir, rec.ID, mbs, wantMB)
		}
		for i := range mbs {
			if mbs[i] != wantMB[i] {
				return fmt.Errorf("core: %s trace for path %d traversed middleboxes %v, want %v", dir, rec.ID, mbs, wantMB)
			}
		}
		if len(sw) != len(wantSw) {
			return fmt.Errorf("core: %s trace for path %d visited %v, want %v", dir, rec.ID, sw, wantSw)
		}
		for i := range sw {
			if sw[i] != wantSw[i] {
				return fmt.Errorf("core: %s trace for path %d visited %v, want %v", dir, rec.ID, sw, wantSw)
			}
		}
		return nil
	}

	route := rec.Route
	downSw := dedupeConsecutive(route.Switches)
	upSw := reverseNodes(downSw)
	revMB := make([]topo.MBInstanceID, len(rec.Chain))
	for i, m := range rec.Chain {
		revMB[len(rec.Chain)-1-i] = m
	}
	if err := check(Down, route.Gateway(), bs.Access, rec.GatewayTag(), downSw, rec.Chain); err != nil {
		return err
	}
	return check(Up, bs.Access, route.Gateway(), rec.AccessTag(), upSw, revMB)
}

func dedupeConsecutive(in []topo.NodeID) []topo.NodeID {
	var out []topo.NodeID
	for _, n := range in {
		if len(out) == 0 || out[len(out)-1] != n {
			out = append(out, n)
		}
	}
	return out
}

func reverseNodes(in []topo.NodeID) []topo.NodeID {
	out := make([]topo.NodeID, len(in))
	for i, n := range in {
		out[len(in)-1-i] = n
	}
	return out
}

// TableSizes summarises the per-switch TCAM occupancy, split the way the
// paper reports it: hardware switches (aggregation, core, gateway — Fig. 7's
// subject) and software access switches.
func (in *Installer) TableSizes() (hardware, software metrics.IntSummary) {
	for i, f := range in.fibs {
		n := f.NumRules()
		if in.T.Nodes[i].Kind == topo.Access {
			// Access switches hold state only when they sit on another
			// station's ring path; count them in the software column.
			software.Add(n)
			continue
		}
		hardware.Add(n)
	}
	return hardware, software
}

// RuleTypeTotals sums installed rules by SoftCell type across hardware
// switches (§7's multi-table discussion).
func (in *Installer) RuleTypeTotals() (tagPrefix, tagOnly, location, mobility int) {
	for i, f := range in.fibs {
		if in.T.Nodes[i].Kind == topo.Access {
			continue
		}
		a, b, c, d := f.RuleBreakdown()
		tagPrefix += a
		tagOnly += b
		location += c
		mobility += d
	}
	return
}

// InstallForStations is the batch driver the large-scale simulation uses:
// it plans and installs one path per (station, chain) pair, iterating
// station-major to maximise planner cache locality. It returns the installed
// records only if keepRecords is set (20M paths would otherwise hold
// gigabytes alive).
func (in *Installer) InstallForStations(pl *routing.Planner, stations []packet.BSID, chains [][]topo.MBType, gateway topo.NodeID, keepRecords bool) ([]*InstalledPath, error) {
	var recs []*InstalledPath
	for _, bs := range stations {
		for _, chain := range chains {
			route, err := pl.Plan(bs, chain, gateway)
			if err != nil {
				return recs, fmt.Errorf("core: planning bs%d: %w", bs, err)
			}
			rec, err := in.InstallPath(route)
			if err != nil {
				return recs, fmt.Errorf("core: installing bs%d: %w", bs, err)
			}
			if keepRecords {
				recs = append(recs, rec)
			} else {
				delete(in.paths, rec.ID)
			}
		}
	}
	return recs, nil
}
