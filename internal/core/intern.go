package core

import (
	"repro/internal/policy"
	"repro/internal/topo"
)

// This file holds the controller's intern pools (DESIGN.md §14). At city
// scale thousands of UEs share a handful of distinct subscriber-attribute
// sets, and every attribute set compiles to the same classifier list; the
// same goes for shortcut switch sequences, which are drawn from the small
// set of (branch point, access switch) descend routes. Records therefore
// store a 32-bit handle into a deduplicated, refcounted pool instead of a
// private copy: one entry per distinct value, reference-counted so an entry
// is reclaimed exactly when the last holder releases it.

// attrHandle names one interned attribute set; 0 means "none".
type attrHandle uint32

// attrEntry is one distinct subscriber-attribute set plus its compiled
// classifier template (policy.Compile is a pure function of the attributes,
// so compiling once per distinct set replaces compiling once per attach).
type attrEntry struct {
	attr     policy.Attributes
	compiled []policy.ClassifierEntry
	refs     uint32
}

// attrPool interns policy.Attributes. It is not internally synchronised:
// the owning Controller guards it with ueMu.
type attrPool struct {
	byAttr  map[policy.Attributes]attrHandle
	entries []attrEntry // entries[h-1] backs handle h
	free    []attrHandle
	hits    uint64
	misses  uint64
}

func newAttrPool() attrPool {
	return attrPool{byAttr: make(map[policy.Attributes]attrHandle)}
}

// acquire interns attr (compiling its classifier template on first sight)
// and takes one reference.
func (p *attrPool) acquire(attr policy.Attributes, pol *policy.Policy) attrHandle {
	if h, ok := p.byAttr[attr]; ok {
		p.hits++
		p.entries[h-1].refs++
		return h
	}
	p.misses++
	var h attrHandle
	if n := len(p.free); n > 0 {
		h = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		p.entries = append(p.entries, attrEntry{})
		h = attrHandle(len(p.entries))
	}
	e := &p.entries[h-1]
	e.attr = attr
	e.compiled = pol.Compile(attr)
	e.refs = 1
	p.byAttr[attr] = h
	return h
}

// release drops one reference; the entry is reclaimed when the count hits
// zero (the refcount-zero property the quick tests pin).
func (p *attrPool) release(h attrHandle) {
	if h == 0 {
		return
	}
	e := &p.entries[h-1]
	e.refs--
	if e.refs > 0 {
		return
	}
	delete(p.byAttr, e.attr)
	*e = attrEntry{}
	p.free = append(p.free, h)
}

// attrOf returns the interned attribute set (zero value for handle 0).
func (p *attrPool) attrOf(h attrHandle) policy.Attributes {
	if h == 0 {
		return policy.Attributes{}
	}
	return p.entries[h-1].attr
}

// compiled returns the interned classifier template. The slice is shared:
// callers must not mutate it.
func (p *attrPool) compiled(h attrHandle) []policy.ClassifierEntry {
	if h == 0 {
		return nil
	}
	return p.entries[h-1].compiled
}

// liveEntries counts distinct interned attribute sets.
func (p *attrPool) liveEntries() int { return len(p.byAttr) }

// refs reports one entry's live reference count (invariant audits).
func (p *attrPool) refs(h attrHandle) uint32 {
	if h == 0 {
		return 0
	}
	return p.entries[h-1].refs
}

// totalRefs sums the live reference counts.
func (p *attrPool) totalRefs() uint64 {
	var n uint64
	for i := range p.entries {
		n += uint64(p.entries[i].refs)
	}
	return n
}

// seqHandle names one interned switch sequence; 0 means "none".
type seqHandle uint32

// seqEntry is one distinct switch sequence.
type seqEntry struct {
	seq  []topo.NodeID
	hash uint64
	refs uint32
}

// seqPool interns switch sequences (shortcut routes). Lookup is an
// open-addressed probe over a hash bucket map with a full-slice compare on
// hash agreement — a hit allocates nothing. The pool is not internally
// synchronised: the Installer owns one, and the Installer is serialised
// under the controller's ruleMu.
type seqPool struct {
	buckets map[uint64][]seqHandle
	entries []seqEntry // entries[h-1] backs handle h
	free    []seqHandle
	hits    uint64
	misses  uint64
}

func newSeqPool() seqPool {
	return seqPool{buckets: make(map[uint64][]seqHandle)}
}

// hashSeq is FNV-1a over the node IDs.
func hashSeq(seq []topo.NodeID) uint64 {
	h := uint64(14695981039346656037)
	for _, n := range seq {
		h ^= uint64(uint32(n))
		h *= 1099511628211
	}
	return h
}

func seqEqual(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// acquire interns seq and takes one reference, returning the handle and
// the canonical (shared, immutable) slice. The canonical slice remains
// valid for holders even after release: reclamation reuses the entry slot,
// never the backing array.
func (p *seqPool) acquire(seq []topo.NodeID) (seqHandle, []topo.NodeID) {
	hash := hashSeq(seq)
	for _, h := range p.buckets[hash] {
		if e := &p.entries[h-1]; seqEqual(e.seq, seq) {
			p.hits++
			e.refs++
			return h, e.seq
		}
	}
	p.misses++
	var h seqHandle
	if n := len(p.free); n > 0 {
		h = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		p.entries = append(p.entries, seqEntry{})
		h = seqHandle(len(p.entries))
	}
	e := &p.entries[h-1]
	e.seq = append([]topo.NodeID(nil), seq...)
	e.hash = hash
	e.refs = 1
	p.buckets[hash] = append(p.buckets[hash], h)
	return h, e.seq
}

// release drops one reference and reclaims the entry at zero.
func (p *seqPool) release(h seqHandle) {
	if h == 0 {
		return
	}
	e := &p.entries[h-1]
	e.refs--
	if e.refs > 0 {
		return
	}
	bucket := p.buckets[e.hash]
	for i, bh := range bucket {
		if bh == h {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(p.buckets, e.hash)
	} else {
		p.buckets[e.hash] = bucket
	}
	*e = seqEntry{}
	p.free = append(p.free, h)
}

// liveEntries counts distinct interned sequences.
func (p *seqPool) liveEntries() int {
	n := 0
	for _, b := range p.buckets {
		n += len(b)
	}
	return n
}

// totalRefs sums the live reference counts.
func (p *seqPool) totalRefs() uint64 {
	var n uint64
	for i := range p.entries {
		n += uint64(p.entries[i].refs)
	}
	return n
}
