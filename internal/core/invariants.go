package core

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/topo"
)

// This file is the controller half of the chaos harness's global invariant
// checker (DESIGN.md §11): one call that cross-checks every piece of
// controller state against every other — rule tables against installed
// paths, the tag memo against the path map, the UE directory against the
// address allocators, and §5's policy-consistency property for every
// still-reserved old LocIP. internal/chaos runs it after every injected
// fault; the -race stress tests run it at quiescence.

// InvariantReport summarises what a CheckInvariants pass covered.
type InvariantReport struct {
	Paths        int // installed policy paths
	Rules        int // net TCAM rules across all switches
	Attached     int // UEs with live location state
	Reservations int // still-reserved old LocIPs (in-flight handoffs)
	// Tags holds every segment tag of every installed path, sorted. The
	// shard runtime unions these across shards to check that the tag
	// residue-class partition really kept the sub-spaces disjoint.
	Tags []packet.Tag
}

// CheckInvariants verifies the controller's cross-cutting consistency
// properties and returns a report of what it covered. The checks:
//
//   - UE directory coherence: ues/byLoc/byPerm agree, every LocIP splits to
//     its UE's (station, UE ID), every attached station is owned, every UE
//     has a subscriber record.
//   - Allocator safety: no UE ID is simultaneously free and live (attached
//     or reserved), and the free lists hold no duplicates — the invariant
//     that breaks first if an address is ever double-freed.
//   - Rule accounting: per-switch table sizes sum to the installer's net
//     rule counter.
//   - Tag memo agreement: every cached (station, clause) tag is the access
//     tag of a currently installed path (the cache may lag the path map
//     after a station migration, never the reverse).
//   - Tag discipline: segment tags respect the shard's residue class, and
//     no tag serves two paths of one origin (paper footnote 2).
//   - FIB verification: for every installed path whose origin station has
//     no in-flight handoff, walking the rule tables reproduces the
//     requested switch/middlebox sequence in both directions.
//   - §5 policy consistency: for every reserved old LocIP, downstream
//     traffic still traverses the full middlebox chain of every policy
//     path at its origin station, and is delivered at either the UE's new
//     access switch (via shortcut) or the origin's (triangle routing).
//
// It takes all three lock domains in the documented order, so it can run
// concurrently with live traffic; invariants hold at every quiescent point,
// not only at shutdown.
func (c *Controller) CheckInvariants() (InvariantReport, error) {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	c.ruleMu.Lock()
	defer c.ruleMu.Unlock()

	rep := InvariantReport{
		Paths:        len(c.paths),
		Reservations: len(c.reservations),
	}

	// Reservations: each names a live UE and a parseable address at an owned
	// station. reservedBS marks stations with in-flight handoffs (their
	// paths carry mobility overrides, so plain path verification is replaced
	// by the §5 trace below); liveIDs marks (station, id) pairs that must
	// not appear in the free lists.
	reservedBS := make(map[packet.BSID]bool)
	type stationID struct {
		bs packet.BSID
		id packet.UEID
	}
	liveIDs := make(map[stationID]packet.Addr)
	for loc, rsv := range c.reservations {
		_, ueSlot, ok := c.ues.get(rsv.imsi)
		if !ok {
			return rep, fmt.Errorf("core: reservation %s names unknown UE %q", loc, rsv.imsi)
		}
		bs, id, ok := c.plan.Split(loc)
		if !ok {
			return rep, fmt.Errorf("core: reserved address %s is not a LocIP", loc)
		}
		if !c.ownsLocked(bs) {
			return rep, fmt.Errorf("core: reservation %s at unowned station %d", loc, bs)
		}
		if slot, held := c.ues.locIdx.lookup(loc); !held || slot != ueSlot {
			return rep, fmt.Errorf("core: reserved address %s not indexed to its UE %q", loc, rsv.imsi)
		}
		reservedBS[bs] = true
		liveIDs[stationID{bs, id}] = loc
	}

	// UE directory coherence, plus the struct-of-arrays layout's own
	// integrity: every record reachable through its IMSI index entry, every
	// address index entry pointing at the slot that owns the address, and
	// the intern-pool reference counts exactly matching a full scan.
	var invErr error
	attrRefs := make(map[attrHandle]uint32)
	records := 0
	c.ues.forEach(func(slot uint32, r *ueRecord) bool {
		records++
		if r.flags&ueRegistered != 0 {
			if r.subAttr == 0 {
				invErr = fmt.Errorf("core: subscriber %q has no interned attributes", r.imsi)
				return false
			}
			attrRefs[r.subAttr]++
		}
		if _, gotSlot, ok := c.ues.get(r.imsi); !ok || gotSlot != slot {
			invErr = fmt.Errorf("core: record %q at slot %d not reachable through the IMSI index", r.imsi, slot)
			return false
		}
		if r.flags&ueHasRecord == 0 {
			return true // registered-only subscriber: no UE state to check
		}
		if r.attr == 0 {
			invErr = fmt.Errorf("core: UE %q has no interned attributes", r.imsi)
			return false
		}
		attrRefs[r.attr]++
		if r.flags&ueRegistered == 0 {
			invErr = fmt.Errorf("core: UE %q has no subscriber record", r.imsi)
			return false
		}
		if got, ok := c.ues.permIdx.lookup(r.permIP); !ok || got != slot {
			invErr = fmt.Errorf("core: UE %q permanent address %s not indexed back to it", r.imsi, r.permIP)
			return false
		}
		if r.locIP == 0 {
			return true
		}
		rep.Attached++
		if got, ok := c.ues.locIdx.lookup(r.locIP); !ok || got != slot {
			invErr = fmt.Errorf("core: UE %q location %s not indexed back to it", r.imsi, r.locIP)
			return false
		}
		bs, id, ok := c.plan.Split(r.locIP)
		if !ok || bs != r.bs || id != r.ueid {
			invErr = fmt.Errorf("core: UE %q location %s does not embed (bs %d, id %d)", r.imsi, r.locIP, r.bs, r.ueid)
			return false
		}
		if !c.ownsLocked(r.bs) {
			invErr = fmt.Errorf("core: UE %q attached at unowned station %d", r.imsi, r.bs)
			return false
		}
		if prev, dup := liveIDs[stationID{bs, id}]; dup {
			invErr = fmt.Errorf("core: UE ID %d at station %d serves both %s and %s", id, bs, prev, r.locIP)
			return false
		}
		liveIDs[stationID{bs, id}] = r.locIP
		return true
	})
	if invErr != nil {
		return rep, invErr
	}

	// Slot accounting: every allocated slot is live or free, never both.
	if records != c.ues.live {
		return rep, fmt.Errorf("core: %d live records scanned, table counter says %d", records, c.ues.live)
	}
	if c.ues.live+len(c.ues.free) != int(c.ues.next) {
		return rep, fmt.Errorf("core: slot leak: %d live + %d free != %d allocated", c.ues.live, len(c.ues.free), c.ues.next)
	}

	// Reverse index checks: no index entry points at a slot that does not
	// own its address.
	c.ues.locIdx.forEach(func(loc packet.Addr, slot uint32) bool {
		r := c.ues.rec(slot)
		if r.flags&ueHasRecord == 0 {
			invErr = fmt.Errorf("core: location index %s names slot %d with no UE record", loc, slot)
			return false
		}
		if r.locIP != loc {
			rsv, reserved := c.reservations[loc]
			if !reserved || rsv.imsi != r.imsi {
				invErr = fmt.Errorf("core: location index %s -> %q is neither current nor reserved", loc, r.imsi)
				return false
			}
		}
		return true
	})
	if invErr != nil {
		return rep, invErr
	}
	c.ues.permIdx.forEach(func(perm packet.Addr, slot uint32) bool {
		r := c.ues.rec(slot)
		if r.flags&ueHasRecord == 0 || r.permIP != perm {
			invErr = fmt.Errorf("core: permanent index %s -> slot %d whose record does not hold it", perm, slot)
			return false
		}
		return true
	})
	if invErr != nil {
		return rep, invErr
	}

	// Intern-pool refcounts: the scan above counted every handle reference
	// the records hold; the pools must agree exactly — an entry reclaimed
	// too early or leaked shows up here.
	var scanRefs uint64
	for h, n := range attrRefs {
		if got := c.attrs.refs(h); got != n {
			return rep, fmt.Errorf("core: interned attribute entry %d has %d refs, records hold %d", h, got, n)
		}
		scanRefs += uint64(n)
	}
	if got := c.attrs.totalRefs(); got != scanRefs {
		return rep, fmt.Errorf("core: attribute pool holds %d refs, records hold %d", got, scanRefs)
	}
	if got := c.attrs.liveEntries(); got != len(attrRefs) {
		return rep, fmt.Errorf("core: attribute pool has %d live entries, records reference %d", got, len(attrRefs))
	}
	seqRefs := uint64(0)
	seqHandles := make(map[seqHandle]bool)
	for _, rsv := range c.reservations {
		for _, sc := range rsv.shortcuts {
			if sc.routeH == 0 {
				return rep, fmt.Errorf("core: live shortcut for %s holds no route reference", sc.Loc)
			}
			seqRefs++
			seqHandles[sc.routeH] = true
		}
	}
	if got := c.Installer.seqs.totalRefs(); got != seqRefs {
		return rep, fmt.Errorf("core: route pool holds %d refs, live shortcuts hold %d", got, seqRefs)
	}
	if got := c.Installer.seqs.liveEntries(); got != len(seqHandles) {
		return rep, fmt.Errorf("core: route pool has %d live entries, shortcuts reference %d", got, len(seqHandles))
	}

	// Allocator safety: free lists hold no duplicates, nothing live, and
	// nothing beyond the high-water mark.
	for bsi, free := range c.freeUEIDs {
		bs := packet.BSID(bsi)
		seen := make(map[packet.UEID]bool, len(free))
		for _, id := range free {
			if seen[id] {
				return rep, fmt.Errorf("core: UE ID %d at station %d double-freed", id, bs)
			}
			seen[id] = true
			if id == 0 || id > c.nextUEID[bs] {
				return rep, fmt.Errorf("core: free UE ID %d at station %d outside allocated range 1..%d", id, bs, c.nextUEID[bs])
			}
			if loc, live := liveIDs[stationID{bs, id}]; live {
				return rep, fmt.Errorf("core: UE ID %d at station %d is both free and live (%s)", id, bs, loc)
			}
		}
	}

	// Path-record arena accounting: live records plus free slots cover the
	// arena exactly.
	if !c.Installer.Opts.DiscardPathRecords {
		a := &c.Installer.arena
		if len(c.Installer.paths)+len(a.free) != int(a.next) {
			return rep, fmt.Errorf("core: path arena leak: %d live + %d free != %d allocated",
				len(c.Installer.paths), len(a.free), a.next)
		}
	}

	// Rule accounting.
	hw, sw := c.Installer.TableSizes()
	rep.Rules = c.Installer.Stats().Rules
	if hw.Total()+sw.Total() != rep.Rules {
		return rep, fmt.Errorf("core: per-switch rules %d+%d != installer counter %d", hw.Total(), sw.Total(), rep.Rules)
	}

	// Tag memo: every cached entry must be the access tag of a live path.
	for key, tag := range *c.tagCache.Load() {
		rec, ok := c.paths[key]
		if !ok {
			return rep, fmt.Errorf("core: tag cache serves (bs %d, clause %d) = %d for a withdrawn path", key.bs, key.clause, tag)
		}
		if rec.AccessTag() != tag {
			return rep, fmt.Errorf("core: tag cache serves (bs %d, clause %d) = %d, installed path has %d", key.bs, key.clause, tag, rec.AccessTag())
		}
	}

	// Path records, tag discipline, and FIB verification.
	stride, offset := c.Installer.Opts.TagStride, c.Installer.Opts.TagOffset
	originTags := make(map[packet.BSID]map[packet.Tag]PathID)
	for key, rec := range c.paths {
		if rec.Origin != key.bs {
			return rep, fmt.Errorf("core: path %d filed under station %d but originates at %d", rec.ID, key.bs, rec.Origin)
		}
		if !c.ownsLocked(key.bs) {
			return rep, fmt.Errorf("core: path %d at unowned station %d", rec.ID, key.bs)
		}
		if len(rec.Tags) == 0 {
			return rep, fmt.Errorf("core: path %d has no tags", rec.ID)
		}
		for _, tag := range rec.Tags {
			rep.Tags = append(rep.Tags, tag)
			if stride > 1 && int(tag)%stride != offset {
				return rep, fmt.Errorf("core: path %d tag %d outside residue class %d (mod %d)", rec.ID, tag, offset, stride)
			}
			used := originTags[rec.Origin]
			if used == nil {
				used = make(map[packet.Tag]PathID)
				originTags[rec.Origin] = used
			}
			if other, dup := used[tag]; dup && other != rec.ID {
				return rep, fmt.Errorf("core: tag %d serves paths %d and %d at origin %d", tag, other, rec.ID, rec.Origin)
			}
			used[tag] = rec.ID
		}
		if reservedBS[key.bs] {
			continue // mobility overrides rewrite this station's traces; checked below
		}
		if err := c.Installer.VerifyPath(rec); err != nil {
			return rep, fmt.Errorf("core: path %d (bs %d, clause %d): %w", rec.ID, key.bs, key.clause, err)
		}
	}
	sort.Slice(rep.Tags, func(i, j int) bool { return rep.Tags[i] < rep.Tags[j] })

	// §5 policy consistency for in-flight handoffs: downstream traffic to a
	// reserved old LocIP must still traverse the complete middlebox chain of
	// every policy path at its origin station, and end at the UE's current
	// access switch (shortcut) or the origin's (triangle via the tunnels).
	for loc, rsv := range c.reservations {
		originBS, _, _ := c.plan.Split(loc)
		ue, _, _ := c.ues.get(rsv.imsi)
		allowed := map[topo.NodeID]bool{}
		if st, ok := c.T.Station(originBS); ok {
			allowed[st.Access] = true
		}
		// A still-attached UE's microflows claim the packet at its current
		// access switch; a detached UE delivers nowhere, so its old-flow
		// traffic must drain at the origin (its shortcuts came down with
		// Detach).
		curAccess := topo.None
		if ue.locIP != 0 {
			if st, ok := c.T.Station(ue.bs); ok {
				curAccess = st.Access
				allowed[st.Access] = true
			}
		}
		for key, rec := range c.paths {
			if key.bs != originBS {
				continue
			}
			events, last, err := c.Installer.TraceDeliver(Down, rec.Route.Gateway(), rec.GatewayTag(), loc, curAccess)
			if err != nil {
				return rep, fmt.Errorf("core: reserved %s on path %d: %w", loc, rec.ID, err)
			}
			var mbs []topo.MBInstanceID
			for _, e := range events {
				if e.MB != NoMB {
					mbs = append(mbs, e.MB)
				}
			}
			want := rec.Chain
			if curAccess != topo.None && last == curAccess && len(mbs) < len(rec.Chain) {
				// The path's route transits the UE's current access switch
				// before the chain completes; the exact-match microflows
				// there outrank every TCAM rule and claim the packet on
				// arrival. Early delivery is what the dataplane does, so
				// require only that the chain traversed so far is a prefix
				// of the policy sequence (nothing skipped *and* reordered).
				want = rec.Chain[:len(mbs)]
			}
			if len(mbs) != len(want) {
				return rep, fmt.Errorf("core: reserved %s on path %d traversed middleboxes %v, want %v (policy sequence broken by handoff)",
					loc, rec.ID, mbs, rec.Chain)
			}
			for i := range mbs {
				if mbs[i] != want[i] {
					return rep, fmt.Errorf("core: reserved %s on path %d traversed middleboxes %v, want %v (policy sequence broken by handoff)",
						loc, rec.ID, mbs, rec.Chain)
				}
			}
			if !allowed[last] {
				return rep, fmt.Errorf("core: reserved %s on path %d delivered at switch %d, want the UE's current or origin access switch", loc, rec.ID, last)
			}
		}
	}

	return rep, nil
}

// UEs snapshots every UE record (attached or not), sorted by IMSI. The
// shard runtime's cross-shard invariant checks enumerate controllers
// through it.
func (c *Controller) UEs() []UE {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	out := make([]UE, 0, c.ues.live)
	c.ues.forEach(func(_ uint32, r *ueRecord) bool {
		if r.flags&ueHasRecord != 0 {
			out = append(out, c.ueViewLocked(r))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].IMSI < out[j].IMSI })
	return out
}
