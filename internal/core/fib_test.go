package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/topo"
)

func pfx(a packet.Addr, l int) packet.Prefix { return packet.NewPrefix(a, l) }

func TestTrieInsertLookup(t *testing.T) {
	tr := newPrefixTrie()
	p1 := pfx(packet.AddrFrom4(10, 0, 0, 0), 16)
	p2 := pfx(packet.AddrFrom4(10, 1, 0, 0), 16)
	tr.Insert(p1, ToNode(1))
	tr.Insert(p2, ToNode(2))
	if nh, ok := tr.Lookup(p1); !ok || nh.Node != 1 {
		t.Fatalf("lookup p1 = %v %v", nh, ok)
	}
	if nh, ok := tr.Lookup(p2); !ok || nh.Node != 2 {
		t.Fatalf("lookup p2 = %v %v", nh, ok)
	}
	if _, ok := tr.Lookup(pfx(packet.AddrFrom4(10, 2, 0, 0), 16)); ok {
		t.Fatal("uninstalled prefix should miss")
	}
	if tr.Count() != 2 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestTrieLongestPrefixWins(t *testing.T) {
	tr := newPrefixTrie()
	tr.Insert(pfx(packet.AddrFrom4(10, 0, 0, 0), 8), ToNode(1))
	tr.Insert(pfx(packet.AddrFrom4(10, 5, 0, 0), 16), ToNode(2))
	if nh, _ := tr.Lookup(pfx(packet.AddrFrom4(10, 5, 0, 0), 20)); nh.Node != 2 {
		t.Fatalf("longest prefix should win, got %v", nh)
	}
	if nh, _ := tr.Lookup(pfx(packet.AddrFrom4(10, 6, 0, 0), 20)); nh.Node != 1 {
		t.Fatalf("fallback to /8, got %v", nh)
	}
}

func TestTrieSiblingAggregation(t *testing.T) {
	tr := newPrefixTrie()
	// 10.0.0.0/17 and 10.0.128.0/17 with the same next hop merge to /16.
	a := pfx(packet.AddrFrom4(10, 0, 0, 0), 17)
	b := pfx(packet.AddrFrom4(10, 0, 128, 0), 17)
	tr.Insert(a, ToNode(7))
	if tr.Count() != 1 {
		t.Fatalf("count = %d", tr.Count())
	}
	if !tr.CanAggregate(b, ToNode(7)) {
		t.Fatal("sibling with same next hop should aggregate")
	}
	if tr.CanAggregate(b, ToNode(8)) {
		t.Fatal("different next hop should not aggregate")
	}
	tr.Insert(b, ToNode(7))
	if tr.Count() != 1 {
		t.Fatalf("after merge count = %d, want 1", tr.Count())
	}
	if nh, ok := tr.Exact(pfx(packet.AddrFrom4(10, 0, 0, 0), 16)); !ok || nh.Node != 7 {
		t.Fatalf("merged /16 missing: %v %v", nh, ok)
	}
	// Both halves still resolve.
	for _, q := range []packet.Prefix{a, b} {
		if nh, ok := tr.Lookup(q); !ok || nh.Node != 7 {
			t.Fatalf("lookup %v after merge = %v %v", q, nh, ok)
		}
	}
}

func TestTrieCascadingMerge(t *testing.T) {
	tr := newPrefixTrie()
	// Four consecutive /18s with the same next hop collapse to one /16.
	base := packet.AddrFrom4(10, 0, 0, 0)
	for i := 0; i < 4; i++ {
		tr.Insert(pfx(base|packet.Addr(i)<<14, 18), ToNode(3))
	}
	if tr.Count() != 1 {
		t.Fatalf("count = %d, want 1", tr.Count())
	}
}

// Property: aggregation never changes the forwarding function (DESIGN.md §6).
func TestTrieAggregationPreservesLookup(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		agg := newPrefixTrie()
		var flat []struct {
			p  packet.Prefix
			nh NextHop
		}
		// Insert random /20s out of a small pool so siblings collide often.
		for i := 0; i < 60; i++ {
			p := pfx(packet.Addr(rng.Intn(64))<<12, 20)
			nh := ToNode(topo.NodeID(rng.Intn(3)))
			agg.Insert(p, nh)
			flat = append(flat, struct {
				p  packet.Prefix
				nh NextHop
			}{p, nh})
		}
		// Reference: last writer wins per exact prefix, longest match.
		lookupFlat := func(q packet.Prefix) (NextHop, bool) {
			best := -1
			var bestNH NextHop
			for _, e := range flat {
				if e.p.ContainsPrefix(q) && e.p.Len >= best {
					best = e.p.Len
					bestNH = e.nh
				}
			}
			return bestNH, best >= 0
		}
		for q := 0; q < 64; q++ {
			qp := pfx(packet.Addr(q)<<12, 20)
			got, gok := agg.Lookup(qp)
			want, wok := lookupFlat(qp)
			if gok != wok || (gok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrieWalk(t *testing.T) {
	tr := newPrefixTrie()
	tr.Insert(pfx(packet.AddrFrom4(10, 0, 0, 0), 16), ToNode(1))
	tr.Insert(pfx(packet.AddrFrom4(192, 168, 0, 0), 24), ToNode(2))
	got := map[string]topo.NodeID{}
	tr.Walk(func(p packet.Prefix, nh NextHop) { got[p.String()] = nh.Node })
	if len(got) != 2 || got["10.0.0.0/16"] != 1 || got["192.168.0.0/24"] != 2 {
		t.Fatalf("walk = %v", got)
	}
}

func TestFIBDefaultsAndOverrides(t *testing.T) {
	f := NewFIB(0)
	p1 := pfx(packet.AddrFrom4(10, 0, 16, 0), 20)
	p2 := pfx(packet.AddrFrom4(10, 0, 32, 0), 20)
	if _, ok := f.GetNextHop(Down, 5, p1); ok {
		t.Fatal("empty FIB should miss")
	}
	if d := f.SetDefault(Down, 5, ToNode(1)); d != 1 {
		t.Fatalf("default delta = %d", d)
	}
	if d := f.SetDefault(Down, 5, ToNode(1)); d != 0 {
		t.Fatalf("re-set default delta = %d", d)
	}
	if nh, ok := f.GetNextHop(Down, 5, p1); !ok || nh.Node != 1 {
		t.Fatalf("default lookup = %v %v", nh, ok)
	}
	f.InsertPrefix(Down, 5, p2, ToNode(2))
	if nh, _ := f.GetNextHop(Down, 5, p2); nh.Node != 2 {
		t.Fatal("prefix override should win")
	}
	if nh, _ := f.GetNextHop(Down, 5, p1); nh.Node != 1 {
		t.Fatal("other prefixes keep the default")
	}
	// Direction and tag isolation.
	if _, ok := f.GetNextHop(Up, 5, p1); ok {
		t.Fatal("directions must be isolated")
	}
	if _, ok := f.GetNextHop(Down, 6, p1); ok {
		t.Fatal("tags must be isolated")
	}
	if f.NumRules() != 2 {
		t.Fatalf("NumRules = %d", f.NumRules())
	}
}

func TestFIBMBContextFallback(t *testing.T) {
	f := NewFIB(0)
	p := pfx(packet.AddrFrom4(10, 0, 16, 0), 20)
	f.SetDefault(Down, 3, ToMB(9))
	// Without an in-port rule, traffic returning from mb 9 falls through to
	// the main rule — which sends it back into the box.
	if nh, ok := f.GetNextHopFromMB(Down, 9, 3, p); !ok || nh.MB != 9 {
		t.Fatalf("fallback = %v %v", nh, ok)
	}
	f.SetMBDefault(Down, 9, 3, ToNode(4))
	if nh, _ := f.GetNextHopFromMB(Down, 9, 3, p); nh.Node != 4 {
		t.Fatal("in-port rule should win")
	}
	// Main context unaffected.
	if nh, _ := f.GetNextHop(Down, 3, p); nh.MB != 9 {
		t.Fatal("main context changed")
	}
	f.InsertMBPrefix(Down, 9, 3, p, ToNode(5))
	if nh, _ := f.GetNextHopFromMB(Down, 9, 3, p); nh.Node != 5 {
		t.Fatal("in-port prefix rule should win over in-port default")
	}
	if f.NumRules() != 3 {
		t.Fatalf("NumRules = %d", f.NumRules())
	}
}

func TestFIBMobility(t *testing.T) {
	f := NewFIB(0)
	loc := packet.AddrFrom4(10, 0, 16, 10)
	if _, ok := f.LookupMobility(Down, 3, loc); ok {
		t.Fatal("no mobility rule yet")
	}
	f.InsertMobility(Down, 3, loc, ToNode(8))
	if nh, ok := f.LookupMobility(Down, 3, loc); !ok || nh.Node != 8 {
		t.Fatalf("mobility lookup = %v %v", nh, ok)
	}
	if _, ok := f.LookupMobility(Down, 3, loc+1); ok {
		t.Fatal("mobility rules are exact /32")
	}
	if _, ok := f.LookupMobility(Down, 4, loc); ok {
		t.Fatal("mobility rules are tag-qualified")
	}
	_, _, _, mob := f.RuleBreakdown()
	if mob != 1 {
		t.Fatalf("mobility rules = %d", mob)
	}
}

func TestFIBRuleBreakdown(t *testing.T) {
	f := NewFIB(0)
	p := pfx(packet.AddrFrom4(10, 0, 16, 0), 20)
	f.SetDefault(Down, 1, ToNode(1))
	f.InsertPrefix(Down, 1, p, ToNode(2))
	f.SetMBDefault(Up, 3, 1, ToNode(4))
	f.InsertMobility(Up, 9, packet.AddrFrom4(10, 0, 16, 9), ToNode(5))
	tp, to, loc, mob := f.RuleBreakdown()
	if tp != 1 || to != 2 || loc != 0 || mob != 1 {
		t.Fatalf("breakdown = %d %d %d %d", tp, to, loc, mob)
	}
	if f.NumRules() != 4 {
		t.Fatalf("NumRules = %d", f.NumRules())
	}
}

func TestFIBRecentTags(t *testing.T) {
	f := NewFIB(0)
	for tag := packet.Tag(1); tag <= 5; tag++ {
		f.SetDefault(Down, tag, ToNode(1))
	}
	all := f.RecentTags(0)
	if len(all) != 5 {
		t.Fatalf("all tags = %v", all)
	}
	last2 := f.RecentTags(2)
	if len(last2) != 2 || last2[0] != 4 || last2[1] != 5 {
		t.Fatalf("last 2 = %v", last2)
	}
	// Duplicate introduction does not duplicate the tag list.
	f.InsertPrefix(Down, 5, pfx(0, 20), ToNode(2))
	if len(f.RecentTags(0)) != 5 {
		t.Fatal("tag list should not duplicate")
	}
}

func TestNextHopHelpers(t *testing.T) {
	if !(NextHop{Node: topo.None, MB: NoMB}).Zero() {
		t.Fatal("zero detection")
	}
	if ToNode(3).Zero() || ToMB(2).Zero() {
		t.Fatal("non-zero detection")
	}
	if ToNode(3).String() != "sw3" || ToMB(2).String() != "mb#2" {
		t.Fatal("strings")
	}
	if Down.String() != "down" || Up.String() != "up" {
		t.Fatal("direction strings")
	}
}
