package core

import (
	"repro/internal/obs"
)

// coreObs bundles the controller's observability handles. With no
// registry configured every handle is nil, and obs methods on nil
// handles are no-ops — the fast path stays branch-light and allocation
// free either way (BenchmarkRequestPath pins this with instrumentation
// enabled).
type coreObs struct {
	reg *obs.Registry

	// Tag-cache effectiveness on the RequestPath fast path.
	cacheHit  *obs.Counter
	cacheMiss *obs.Counter

	// Algorithm 1 rule placement: TCAM entries actually installed vs the
	// entries multi-dimensional aggregation avoided (§4.3's saving).
	rulesAdded *obs.Counter
	rulesSaved *obs.Counter

	// Sampled ruleMu acquisition wait — lock-domain contention on the
	// install path (one in eight slow requests measures).
	ruleWait *obs.Histogram

	// Memory-layout gauges (DESIGN.md §14), refreshed by each
	// Controller.MemStats call.
	memUEs        *obs.Gauge
	memAttached   *obs.Gauge
	memSlabBytes  *obs.Gauge
	memFreeSlots  *obs.Gauge
	memAttrs      *obs.Gauge
	memAttrHitPct *obs.Gauge
	memPathBytes  *obs.Gauge

	// Trace events: path install, tag publish/evict, handoff phases.
	evInstall  *obs.EventType
	evTagPub   *obs.EventType
	evTagEvict *obs.EventType
	evHandoff  *obs.EventType
	evRelease  *obs.EventType
}

// boolInt renders a bool as a trace-event argument.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ruleWaitSampleEvery is the slow-path sampling stride for the ruleMu
// wait histogram: cheap enough to leave always-on, frequent enough to
// surface contention.
const ruleWaitSampleEvery = 8

// newCoreObs registers the controller's metrics. Registration is
// get-or-create, so several controllers sharing one registry (or a
// registry Sub view per shard) coexist; per-shard distinction comes from
// the caller passing a Sub-scoped registry.
func newCoreObs(reg *obs.Registry) coreObs {
	if reg == nil {
		return coreObs{}
	}
	return coreObs{
		reg:        reg,
		cacheHit:   reg.Counter("core.tagcache.hit"),
		cacheMiss:  reg.Counter("core.tagcache.miss"),
		rulesAdded: reg.Counter("core.rules.added"),
		rulesSaved: reg.Counter("core.rules.saved"),
		ruleWait: reg.Histogram("core.lock.rule_wait_ns",
			1000, 10000, 100000, 1000000, 10000000),
		memUEs:        reg.Gauge("core.mem.ue_records"),
		memAttached:   reg.Gauge("core.mem.attached"),
		memSlabBytes:  reg.Gauge("core.mem.table_bytes"),
		memFreeSlots:  reg.Gauge("core.mem.free_slots"),
		memAttrs:      reg.Gauge("core.mem.interned_attrs"),
		memAttrHitPct: reg.Gauge("core.mem.attr_hit_pct"),
		memPathBytes:  reg.Gauge("core.mem.path_arena_bytes"),
		evInstall:  reg.EventType("core.path.install", "bs", "clause", "tag", "rules"),
		evTagPub:   reg.EventType("core.tag.publish", "bs", "clause", "tag"),
		evTagEvict: reg.EventType("core.tag.evict", "bs", "dropped"),
		evHandoff:  reg.EventType("core.handoff.move", "old_bs", "new_bs", "shortcuts"),
		evRelease:  reg.EventType("core.handoff.release", "loc", "reserved"),
	}
}
