package core

import (
	"repro/internal/obs"
)

// coreObs bundles the controller's observability handles. With no
// registry configured every handle is nil, and obs methods on nil
// handles are no-ops — the fast path stays branch-light and allocation
// free either way (BenchmarkRequestPath pins this with instrumentation
// enabled).
type coreObs struct {
	reg *obs.Registry

	// Tag-cache effectiveness on the RequestPath fast path.
	cacheHit  *obs.Counter
	cacheMiss *obs.Counter

	// Algorithm 1 rule placement: TCAM entries actually installed vs the
	// entries multi-dimensional aggregation avoided (§4.3's saving).
	rulesAdded *obs.Counter
	rulesSaved *obs.Counter

	// Sampled ruleMu acquisition wait — lock-domain contention on the
	// install path (one in eight slow requests measures).
	ruleWait *obs.Histogram

	// Memory-layout gauges (DESIGN.md §14), refreshed by each
	// Controller.MemStats call.
	memUEs        *obs.Gauge
	memAttached   *obs.Gauge
	memSlabBytes  *obs.Gauge
	memFreeSlots  *obs.Gauge
	memAttrs      *obs.Gauge
	memAttrHitPct *obs.Gauge
	memPathBytes  *obs.Gauge

	// Trace events: path install, tag publish/evict, handoff phases.
	evInstall  *obs.EventType
	evTagPub   *obs.EventType
	evTagEvict *obs.EventType
	evHandoff  *obs.EventType
	evRelease  *obs.EventType

	// Span sections (DESIGN.md §16): recorded only for requests whose
	// incoming context is sampled, one child per lock domain so the
	// critical-path waterfall attributes wait + hold time to the lock that
	// caused it.
	spPath         *obs.SpanName // whole RequestPathCtx resolution
	spPathRule     *obs.SpanName // ruleMu wait + hold on the install path
	spAttach       *obs.SpanName // ueMu-held admission
	spHandoff      *obs.SpanName // ueMu-held move
	spHandoffAlloc *obs.SpanName // allocMu section of a handoff
	spHandoffRule  *obs.SpanName // ruleMu retarget section of a handoff
}

// boolInt renders a bool as a trace-event argument.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ruleWaitSampleEvery is the slow-path sampling stride for the ruleMu
// wait histogram: cheap enough to leave always-on, frequent enough to
// surface contention.
const ruleWaitSampleEvery = 8

// newCoreObs registers the controller's metrics. Registration is
// get-or-create, so several controllers sharing one registry (or a
// registry Sub view per shard) coexist; per-shard distinction comes from
// the caller passing a Sub-scoped registry.
func newCoreObs(reg *obs.Registry) coreObs {
	if reg == nil {
		return coreObs{}
	}
	reg.Doc("core.tagcache.hit", "RequestPath answered from the lock-free tag cache")
	reg.Doc("core.tagcache.miss", "RequestPath that fell through to the install slow path")
	reg.Doc("core.rules.added", "TCAM entries installed by Algorithm 1 placement")
	reg.Doc("core.rules.saved", "TCAM entries avoided by multi-dimensional aggregation")
	reg.Doc("core.lock.rule_wait_ns", "Sampled ruleMu acquisition wait on the install path")
	return coreObs{
		reg:        reg,
		cacheHit:   reg.Counter("core.tagcache.hit"),
		cacheMiss:  reg.Counter("core.tagcache.miss"),
		rulesAdded: reg.Counter("core.rules.added"),
		rulesSaved: reg.Counter("core.rules.saved"),
		ruleWait: reg.Histogram("core.lock.rule_wait_ns",
			1000, 10000, 100000, 1000000, 10000000),
		memUEs:        reg.Gauge("core.mem.ue_records"),
		memAttached:   reg.Gauge("core.mem.attached"),
		memSlabBytes:  reg.Gauge("core.mem.table_bytes"),
		memFreeSlots:  reg.Gauge("core.mem.free_slots"),
		memAttrs:      reg.Gauge("core.mem.interned_attrs"),
		memAttrHitPct: reg.Gauge("core.mem.attr_hit_pct"),
		memPathBytes:  reg.Gauge("core.mem.path_arena_bytes"),
		evInstall:  reg.EventType("core.path.install", "bs", "clause", "tag", "rules"),
		evTagPub:   reg.EventType("core.tag.publish", "bs", "clause", "tag"),
		evTagEvict: reg.EventType("core.tag.evict", "bs", "dropped"),
		evHandoff:  reg.EventType("core.handoff.move", "old_bs", "new_bs", "shortcuts"),
		evRelease:  reg.EventType("core.handoff.release", "loc", "reserved"),

		spPath:         reg.SpanName("core.path"),
		spPathRule:     reg.SpanName("core.lock.rule"),
		spAttach:       reg.SpanName("core.attach"),
		spHandoff:      reg.SpanName("core.handoff"),
		spHandoffAlloc: reg.SpanName("core.handoff.alloc"),
		spHandoffRule:  reg.SpanName("core.handoff.rule"),
	}
}
