package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topo"
)

// randChain draws a random middlebox chain (possibly empty) without
// consecutive repeats, which the planner would collapse anyway.
func randChain(rng *rand.Rand, mbTypes int) []topo.MBType {
	m := rng.Intn(3)
	chain := make([]topo.MBType, m)
	for j := range chain {
		chain[j] = topo.MBType(rng.Intn(mbTypes))
		for j > 0 && chain[j] == chain[j-1] {
			chain[j] = topo.MBType(rng.Intn(mbTypes))
		}
	}
	return chain
}

// candidateCosts replays Algorithm 1's tag-selection inputs for a path
// about to be installed: the candidate tag set for its (single) segment and
// the rule cost of each candidate. It must run before InstallPath (the
// costs read the current FIB state) and copies every scratch slice it
// touches. Multi-segment (loop) paths are skipped — their per-segment
// choices interact through the taken set.
func candidateCosts(in *Installer, p *routing.Path) (cands []packet.Tag, costs []int, ok bool) {
	bs, found := in.T.Station(p.Origin)
	if !found {
		return nil, nil, false
	}
	prefix, err := in.plan.BSPrefix(p.Origin)
	if err != nil {
		return nil, nil, false
	}
	down := append([]step(nil), expandSteps(p, Down, nil)...)
	up := append([]step(nil), expandSteps(p, Up, nil)...)
	if len(in.findCuts(down, up, p.Len())) != 0 {
		return nil, nil, false
	}
	canon := in.canonFor(p, bs.Access)
	chainKey := routing.ChainKey(p.Gateway(), p.Chain)
	cands = append([]packet.Tag(nil), in.candidateTags(p, chainKey, 0, nil)...)
	for _, t := range cands {
		costs = append(costs, in.costForTag(down, up, t, prefix, canon))
	}
	return cands, costs, true
}

// TestQuickTagChoiceIsCheapestCandidate is the Algorithm 1 optimality
// property: for random policy/path sets, the tag InstallPath picks never
// needs more new rules than any single candidate tag would have.
func TestQuickTagChoiceIsCheapestCandidate(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 4, MBTypes: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		in := mustInstaller(t, g.Topology, InstallerOptions{})
		pl := routing.NewPlanner(g.Topology)
		for i := 0; i < 25; i++ {
			route, err := pl.Plan(packet.BSID(rng.Intn(len(g.Stations))), randChain(rng, 3), g.GatewayID)
			if err != nil {
				t.Fatal(err)
			}
			cands, costs, single := candidateCosts(in, route)
			rec, err := in.InstallPath(route)
			if err != nil {
				t.Fatal(err)
			}
			if !single || len(cands) == 0 {
				continue // fresh tag by necessity, nothing to compare
			}
			chosen := -1
			for j, tg := range cands {
				if tg == rec.Tags[0] {
					chosen = j
					break
				}
			}
			if chosen < 0 {
				t.Fatalf("seed %d path %d: chose fresh tag %d despite candidates %v", seed, i, rec.Tags[0], cands)
			}
			for j, c := range costs {
				if costs[chosen] > c {
					t.Fatalf("seed %d path %d: chose tag %d (cost %d) over tag %d (cost %d)",
						seed, i, cands[chosen], costs[chosen], cands[j], c)
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAggregationForwardingEquivalent: for random policy/path sets,
// prefix aggregation must be behaviour-preserving — every path installed by
// the aggregating installer and by the NoPrefixAggregation ablation walks
// to the same requested switch/middlebox sequence (VerifyPath pins both
// tables to the same spec, hence to each other), and aggregation never
// costs extra rules.
func TestQuickAggregationForwardingEquivalent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 4, MBTypes: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		agg := mustInstaller(t, g.Topology, InstallerOptions{})
		flat := mustInstaller(t, g.Topology, InstallerOptions{NoPrefixAggregation: true})
		pl := routing.NewPlanner(g.Topology)
		for i := 0; i < 20; i++ {
			route, err := pl.Plan(packet.BSID(rng.Intn(len(g.Stations))), randChain(rng, 3), g.GatewayID)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := agg.InstallPath(route)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := flat.InstallPath(route)
			if err != nil {
				t.Fatal(err)
			}
			if err := agg.VerifyPath(ra); err != nil {
				t.Fatalf("seed %d path %d (aggregated): %v", seed, i, err)
			}
			if err := flat.VerifyPath(rf); err != nil {
				t.Fatalf("seed %d path %d (flat): %v", seed, i, err)
			}
		}
		ahw, asw := agg.TableSizes()
		fhw, fsw := flat.TableSizes()
		if ahw.Total()+asw.Total() > fhw.Total()+fsw.Total() {
			t.Fatalf("seed %d: aggregation used more rules (%d) than the flat tables (%d)",
				seed, ahw.Total()+asw.Total(), fhw.Total()+fsw.Total())
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
