package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// These tests pin the compacted state layer (DESIGN.md §14): the
// struct-of-arrays UE table, the open-addressed indices, the refcounted
// intern pools, and the allocation behaviour of the steady-state
// attach -> handoff -> detach cycle.

// TestQuickUETableSlotAliasing drives random register/drop churn through
// the UE table against a reference map and checks the slot-aliasing
// property: a slot freed and reused for a new IMSI must never answer
// lookups for its previous occupant, and every live IMSI must resolve to
// the record that carries it.
func TestQuickUETableSlotAliasing(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := newUETable()
		live := map[string]uint32{}      // imsi -> slot the table returned
		loc := map[packet.Addr]string{}  // locIP -> imsi
		perm := map[packet.Addr]string{} // permIP -> imsi
		nextAddr := packet.Addr(1)

		universe := make([]string, 40)
		for i := range universe {
			universe[i] = fmt.Sprintf("imsi-%03d-%d", i, seed&0xff)
		}
		for op := 0; op < 600; op++ {
			imsi := universe[rng.Intn(len(universe))]
			if slot, ok := live[imsi]; ok {
				// Drop: delete the address entries first, as the controller
				// does, then free the slot.
				r := tbl.rec(slot)
				tbl.locIdx.delete(r.locIP)
				tbl.permIdx.delete(r.permIP)
				delete(loc, r.locIP)
				delete(perm, r.permIP)
				tbl.freeRec(slot)
				delete(live, imsi)
				continue
			}
			r, slot := tbl.alloc(imsi)
			r.flags = ueRegistered | ueHasRecord
			r.locIP = nextAddr
			r.permIP = nextAddr + 1
			nextAddr += 2
			tbl.locIdx.insert(r.locIP, slot)
			tbl.permIdx.insert(r.permIP, slot)
			live[imsi] = slot
			loc[r.locIP] = imsi
			perm[r.permIP] = imsi
		}

		// Every live IMSI resolves to its own record; every dead one misses.
		for _, imsi := range universe {
			r, slot, ok := tbl.get(imsi)
			wantSlot, want := live[imsi]
			if ok != want {
				t.Fatalf("seed %d: get(%q) = %v, want %v", seed, imsi, ok, want)
			}
			if ok && (r.imsi != imsi || slot != wantSlot) {
				t.Fatalf("seed %d: get(%q) aliased to slot %d (imsi %q), want slot %d",
					seed, imsi, slot, r.imsi, wantSlot)
			}
		}
		// Address indices agree with the model in both directions.
		for a, imsi := range loc {
			slot, ok := tbl.locIdx.lookup(a)
			if !ok || tbl.rec(slot).imsi != imsi {
				t.Fatalf("seed %d: locIdx[%v] lost or aliased", seed, a)
			}
		}
		for a, imsi := range perm {
			slot, ok := tbl.permIdx.lookup(a)
			if !ok || tbl.rec(slot).imsi != imsi {
				t.Fatalf("seed %d: permIdx[%v] lost or aliased", seed, a)
			}
		}
		// Accounting: live + free == high water; forEach visits exactly the
		// live set.
		if tbl.live != len(live) || tbl.live+len(tbl.free) != int(tbl.next) {
			t.Fatalf("seed %d: live=%d free=%d next=%d, model=%d",
				seed, tbl.live, len(tbl.free), tbl.next, len(live))
		}
		seen := map[string]bool{}
		tbl.forEach(func(slot uint32, r *ueRecord) bool {
			if live[r.imsi] != slot {
				t.Fatalf("seed %d: forEach visited stale record %q at slot %d", seed, r.imsi, slot)
			}
			seen[r.imsi] = true
			return true
		})
		if len(seen) != len(live) {
			t.Fatalf("seed %d: forEach visited %d records, want %d", seed, len(seen), len(live))
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAddrIdxMatchesMap churns an open-addressed address index with a
// deliberately tiny key universe — maximum collision, tombstone, and
// grow-rehash pressure — and checks it against a plain map after every
// operation batch.
func TestQuickAddrIdxMatchesMap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var idx addrIdx
		model := map[packet.Addr]uint32{}
		for op := 0; op < 800; op++ {
			a := packet.Addr(1 + rng.Intn(48))
			switch {
			case rng.Intn(3) == 0:
				idx.delete(a)
				delete(model, a)
			default:
				slot := uint32(rng.Intn(1 << 20))
				idx.insert(a, slot)
				model[a] = slot
			}
		}
		for a := packet.Addr(1); a <= 48; a++ {
			slot, ok := idx.lookup(a)
			want, inModel := model[a]
			if ok != inModel || (ok && slot != want) {
				t.Fatalf("seed %d: lookup(%v) = (%d, %v), model (%d, %v)",
					seed, a, slot, ok, want, inModel)
			}
		}
		if idx.live != len(model) {
			t.Fatalf("seed %d: live=%d, model=%d", seed, idx.live, len(model))
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAttrPoolRefcountZero checks the intern pool's refcount-zero
// property: an entry's reference count tracks the outstanding acquires
// exactly, the entry is reclaimed exactly when the last holder releases,
// and a reclaimed handle slot can be reused without aliasing old holders.
func TestQuickAttrPoolRefcountZero(t *testing.T) {
	pol := policy.ExampleCarrierPolicy()
	universe := []policy.Attributes{
		{Provider: "A", Plan: "silver"},
		{Provider: "A", Plan: "gold"},
		{Provider: "B", Plan: "silver", DeviceType: "phone"},
		{Provider: "B", Roaming: true},
		{Provider: "C", DeviceType: "m2m-meter"},
		{Provider: "C", Plan: "gold", Roaming: true},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := newAttrPool()
		type holder struct {
			attr policy.Attributes
			h    attrHandle
		}
		var held []holder
		count := map[policy.Attributes]int{}
		for op := 0; op < 500; op++ {
			if len(held) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(held))
				hd := held[i]
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
				pool.release(hd.h)
				count[hd.attr]--
				if got := int(pool.refs(hd.h)); count[hd.attr] > 0 && got != count[hd.attr] {
					t.Fatalf("seed %d: refs=%d after release, model=%d", seed, got, count[hd.attr])
				}
				continue
			}
			attr := universe[rng.Intn(len(universe))]
			h := pool.acquire(attr, pol)
			held = append(held, holder{attr, h})
			count[attr]++
			if pool.attrOf(h) != attr {
				t.Fatalf("seed %d: handle %d resolves to %+v, want %+v", seed, h, pool.attrOf(h), attr)
			}
			if int(pool.refs(h)) != count[attr] {
				t.Fatalf("seed %d: refs=%d, model=%d", seed, pool.refs(h), count[attr])
			}
			// Interning: every holder of the same attributes has the same
			// handle and shares one compiled template.
			for _, other := range held {
				if other.attr == attr && other.h != h {
					t.Fatalf("seed %d: %+v interned twice (handles %d, %d)", seed, attr, other.h, h)
				}
			}
		}
		distinct := 0
		for _, n := range count {
			if n > 0 {
				distinct++
			}
		}
		if pool.liveEntries() != distinct {
			t.Fatalf("seed %d: liveEntries=%d, model=%d", seed, pool.liveEntries(), distinct)
		}
		// Release everything: the pool must drain to zero, and reclaimed
		// slots must serve a fresh intern correctly.
		for _, hd := range held {
			pool.release(hd.h)
		}
		if pool.liveEntries() != 0 || pool.totalRefs() != 0 {
			t.Fatalf("seed %d: pool not drained: %d entries, %d refs",
				seed, pool.liveEntries(), pool.totalRefs())
		}
		h := pool.acquire(universe[0], pol)
		if pool.attrOf(h) != universe[0] || len(pool.compiled(h)) == 0 {
			t.Fatalf("seed %d: reused slot serves wrong entry", seed)
		}
		pool.release(h)
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeqPoolCanonicalSlices checks the route pool's two contracts:
// refcount-zero reclamation (like the attribute pool), and canonical-slice
// stability — the slice acquire returns keeps its contents for as long as
// any holder references it, even after the entry itself is reclaimed and
// its slot reused, because reclamation recycles the slot, never the
// backing array.
func TestQuickSeqPoolCanonicalSlices(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := newSeqPool()
		type holder struct {
			want []topo.NodeID // private copy of the expected contents
			got  []topo.NodeID // canonical slice the pool returned
			h    seqHandle
		}
		var held, released []holder
		for op := 0; op < 400; op++ {
			if len(held) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(held))
				hd := held[i]
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
				pool.release(hd.h)
				released = append(released, hd)
				continue
			}
			seq := make([]topo.NodeID, 1+rng.Intn(4))
			for j := range seq {
				seq[j] = topo.NodeID(rng.Intn(8))
			}
			h, canon := pool.acquire(seq)
			held = append(held, holder{want: append([]topo.NodeID(nil), seq...), got: canon, h: h})
			// Mutating the caller's slice must not disturb the pool.
			seq[0] = topo.NodeID(99)
		}
		// Every canonical slice — held or already released — still carries
		// the contents it was acquired with.
		for _, hd := range append(held, released...) {
			if !seqEqual(hd.got, hd.want) {
				t.Fatalf("seed %d: canonical slice mutated: got %v, want %v", seed, hd.got, hd.want)
			}
		}
		// Refcount bookkeeping drains to zero.
		for _, hd := range held {
			pool.release(hd.h)
		}
		if pool.liveEntries() != 0 || pool.totalRefs() != 0 {
			t.Fatalf("seed %d: pool not drained: %d entries, %d refs",
				seed, pool.liveEntries(), pool.totalRefs())
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMemCompactionChurnRace runs disjoint attach -> handoff -> detach
// churn from several goroutines while readers hammer the lookup paths and
// MemStats scans the slabs, then audits the invariants. Under -race (make
// verify) this covers every pairing of the table, pools, and arena with
// the controller's three lock domains.
func TestMemCompactionChurnRace(t *testing.T) {
	c, _ := testController(t)
	const workers, perWorker = 3, 4
	imsis := make([][]string, workers)
	for w := range imsis {
		imsis[w] = make([]string, perWorker)
		for i := range imsis[w] {
			imsis[w][i] = fmt.Sprintf("imsi-race-%d-%d", w, i)
			if err := c.RegisterSubscriber(imsis[w][i], policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	iters := 150
	if testing.Short() {
		iters = 30
	}
	var churn, readers sync.WaitGroup
	// Churners: each owns its IMSIs, so every operation must succeed.
	for w := 0; w < workers; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				imsi := imsis[w][rng.Intn(perWorker)]
				bs := rng.Intn(4)
				if _, _, err := c.Attach(imsi, packet.BSID(bs)); err != nil {
					t.Errorf("worker %d: Attach(%s): %v", w, imsi, err)
					return
				}
				hr, err := c.Handoff(imsi, packet.BSID((bs+1+rng.Intn(3))%4))
				if err != nil {
					t.Errorf("worker %d: Handoff(%s): %v", w, imsi, err)
					return
				}
				c.ReleaseOldLocIP(hr.OldLocIP, hr.Shortcuts)
				if err := c.Detach(imsi); err != nil {
					t.Errorf("worker %d: Detach(%s): %v", w, imsi, err)
					return
				}
			}
		}(w)
	}
	// Readers: lookups and slab-scanning MemStats race the churn.
	stop := make(chan struct{})
	readers.Add(2)
	go func() {
		defer readers.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			imsi := imsis[rng.Intn(workers)][rng.Intn(perWorker)]
			if ue, ok := c.LookupUE(imsi); ok && ue.PermIP != 0 {
				_, _ = c.ResolveLocIP(ue.PermIP)
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ms := c.MemStats()
			if ms.Subscribers != workers*perWorker {
				t.Errorf("MemStats mid-churn: %d subscribers, want %d", ms.Subscribers, workers*perWorker)
				return
			}
		}
	}()

	churn.Wait()
	close(stop)
	readers.Wait()

	if _, err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn race: %v", err)
	}
	ms := c.MemStats()
	if ms.Attached != 0 {
		t.Fatalf("%d UEs still attached after detach-everything churn", ms.Attached)
	}
	if ms.Subscribers != workers*perWorker {
		t.Fatalf("%d subscribers, want %d", ms.Subscribers, workers*perWorker)
	}
	if ms.Reservations != 0 {
		t.Fatalf("%d reservations leaked", ms.Reservations)
	}
}

// TestInternPoolSteadyStateZeroAllocs pins the compaction fast paths to
// literal zero heap allocations: a warmed UE-table lookup, an intern hit
// in the attribute pool, and an intern hit in the route pool.
func TestInternPoolSteadyStateZeroAllocs(t *testing.T) {
	// UE table: a hit on a warmed table allocates nothing.
	tbl := newUETable()
	for i := 0; i < 100; i++ {
		r, slot := tbl.alloc(fmt.Sprintf("imsi-%03d", i))
		r.flags = ueHasRecord
		r.locIP = packet.Addr(1 + i)
		tbl.locIdx.insert(r.locIP, slot)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := tbl.get("imsi-042"); !ok {
			t.Fatal("warmed IMSI missing")
		}
		if _, ok := tbl.locIdx.lookup(43); !ok {
			t.Fatal("warmed LocIP missing")
		}
	}); allocs != 0 {
		t.Fatalf("UE-table lookup allocates %.1f/op, want 0", allocs)
	}

	// Attribute pool: an intern hit (the steady-state attach path — the
	// city workload sees >99%% hits) allocates nothing.
	pol := policy.ExampleCarrierPolicy()
	pool := newAttrPool()
	attr := policy.Attributes{Provider: "A", Plan: "silver"}
	base := pool.acquire(attr, pol)
	if allocs := testing.AllocsPerRun(1000, func() {
		h := pool.acquire(attr, pol)
		pool.release(h)
	}); allocs != 0 {
		t.Fatalf("attrPool intern hit allocates %.1f/op, want 0", allocs)
	}
	pool.release(base)

	// Route pool: an intern hit returns the canonical slice without
	// copying.
	seqs := newSeqPool()
	route := []topo.NodeID{3, 7, 1}
	baseH, _ := seqs.acquire(route)
	if allocs := testing.AllocsPerRun(1000, func() {
		h, canon := seqs.acquire(route)
		if len(canon) != 3 {
			t.Fatal("canonical slice truncated")
		}
		seqs.release(h)
	}); allocs != 0 {
		t.Fatalf("seqPool intern hit allocates %.1f/op, want 0", allocs)
	}
	seqs.release(baseH)
}

// TestChurnCycleAllocBudget pins the whole steady-state
// attach -> handoff -> detach cycle to a small constant allocation budget.
// Literal zero is out of reach — the replicated store (Put copies its
// document) and the per-handoff Shortcut records allocate by design — but
// the budget catches any regression to per-UE map/string churn, which cost
// dozens of allocations per cycle in the pre-compaction layout.
func TestChurnCycleAllocBudget(t *testing.T) {
	c, _ := testController(t)
	if err := c.RegisterSubscriber("imsi-cycle", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		if _, _, err := c.Attach("imsi-cycle", 0); err != nil {
			t.Fatal(err)
		}
		hr, err := c.Handoff("imsi-cycle", 1)
		if err != nil {
			t.Fatal(err)
		}
		c.ReleaseOldLocIP(hr.OldLocIP, hr.Shortcuts)
		if err := c.Detach("imsi-cycle"); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the slab, indices, intern pools, paths, and UEID free lists.
	for i := 0; i < 50; i++ {
		cycle()
	}
	const budget = 64
	if allocs := testing.AllocsPerRun(200, cycle); allocs > budget {
		t.Fatalf("steady-state attach/handoff/detach cycle allocates %.1f/op, budget %d", allocs, budget)
	}
}
