package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/topo"
)

// Remove deletes the exact entry for p, if present. Entries merged into
// shorter blocks cannot be removed individually; mobility rules are
// installed unmerged for exactly this reason.
func (t *prefixTrie) Remove(p packet.Prefix) bool {
	n := t.node(p, false)
	if n == nil || !n.set {
		return false
	}
	n.set = false
	t.count--
	return true
}

// RemoveMobility deletes a /32 mobility override for one tag.
func (f *FIB) RemoveMobility(dir Direction, tag packet.Tag, loc packet.Addr) bool {
	t := f.mob[tagKey{dir, tag}]
	if t == nil {
		return false
	}
	return t.Remove(packet.Prefix{Addr: loc, Len: 32})
}

// insertMobilityNoAgg installs an unmerged /32 override (so a later removal
// is exact).
func (f *FIB) insertMobilityNoAgg(dir Direction, tag packet.Tag, loc packet.Addr, nh NextHop) int {
	k := tagKey{dir, tag}
	t := f.mob[k]
	if t == nil {
		t = newPrefixTrie()
		f.mob[k] = t
	}
	return insertNoAgg(t, packet.Prefix{Addr: loc, Len: 32}, nh)
}

// insertMobilityFromMB installs a branch-switch override that applies only
// to traffic returning from the given middlebox with the given tag.
func (f *FIB) insertMobilityFromMB(dir Direction, mb topo.MBInstanceID, tag packet.Tag, loc packet.Addr, nh NextHop) int {
	k := mbCtx{dir, mb, tag}
	t := f.mobMB[k]
	if t == nil {
		t = newPrefixTrie()
		f.mobMB[k] = t
	}
	return insertNoAgg(t, packet.Prefix{Addr: loc, Len: 32}, nh)
}

// removeMobilityFromMB deletes a branch-switch override.
func (f *FIB) removeMobilityFromMB(dir Direction, mb topo.MBInstanceID, tag packet.Tag, loc packet.Addr) bool {
	t := f.mobMB[mbCtx{dir, mb, tag}]
	if t == nil {
		return false
	}
	return t.Remove(packet.Prefix{Addr: loc, Len: 32})
}

// Shortcut records the temporary mobility overrides installed for one moved
// UE along one old policy path (§5.1: "the controller can establish
// temporary shortcut paths ... removed when a soft timeout expires").
type Shortcut struct {
	Loc      packet.Addr
	Route    []topo.NodeID     // branch-point switch ... new access switch
	BranchMB topo.MBInstanceID // last middlebox at Route[0]; NoMB when none
	PathTags []packet.Tag      // the path's segment tags matched at the branch
	Delivery packet.Tag        // the access-side tag rewritten onto the flow

	// routeH is the installer's intern-pool reference for Route (DESIGN.md
	// §14): shortcut routes are drawn from the small set of descend routes,
	// so Route aliases the pool's canonical slice instead of a private copy.
	// Zeroed when RemoveShortcut drops the reference (making a second remove
	// of the same shortcut object safe, as the release paths require).
	routeH seqHandle
	// tag1 backs PathTags inline for the single-tag (loop-free path) case.
	tag1 [1]packet.Tag
}

// InstallShortcut installs downstream /32 overrides for loc along route,
// chaining from the branch point toward the new access switch. At the
// branch, one entry per path segment tag matches the flow wherever in the
// tag sequence it is and rewrites it to the delivery (access-side) tag —
// shortcuts bypass the old path's remaining switches, including any
// tag-swap rules, so the rewrite must happen here. When the branch switch
// hosts the path's last middlebox, the entries are qualified by its return
// port so traffic still enters the box before taking the shortcut. Only the
// DOWNSTREAM direction gets shortcut state (§5.1: shortcuts direct
// "incoming packets"); upstream old flows triangle-route through the
// inter-station tunnel to their origin station, where the old path's rules
// exist.
// It returns the shortcut handle and the number of rules added.
func (in *Installer) InstallShortcut(loc packet.Addr, route []topo.NodeID, branchMB topo.MBInstanceID, pathTags []packet.Tag, delivery packet.Tag) (*Shortcut, int, error) {
	if len(route) < 2 {
		return nil, 0, fmt.Errorf("core: shortcut route needs at least two switches")
	}
	if len(pathTags) == 0 || delivery == 0 {
		return nil, 0, fmt.Errorf("core: shortcut needs the path's tags")
	}
	rules := 0
	first := NextHop{Node: route[1], MB: NoMB, NewTag: delivery}
	for _, t := range pathTags {
		if branchMB != NoMB {
			rules += in.fibs[route[0]].insertMobilityFromMB(Down, branchMB, t, loc, first)
		} else {
			rules += in.fibs[route[0]].insertMobilityNoAgg(Down, t, loc, first)
		}
	}
	for i := 1; i < len(route)-1; i++ {
		rules += in.fibs[route[i]].insertMobilityNoAgg(Down, delivery, loc, ToNode(route[i+1]))
	}
	in.stats.Rules += rules
	h, canon := in.seqs.acquire(route)
	sc := &Shortcut{Loc: loc, Route: canon, BranchMB: branchMB, Delivery: delivery, routeH: h}
	if len(pathTags) == 1 {
		sc.tag1[0] = pathTags[0]
		sc.PathTags = sc.tag1[:1:1]
	} else {
		sc.PathTags = append([]packet.Tag(nil), pathTags...)
	}
	return sc, rules, nil
}

// RemoveShortcut tears a shortcut down (the soft-timeout expiry).
func (in *Installer) RemoveShortcut(sc *Shortcut) int {
	removed := 0
	for _, t := range sc.PathTags {
		if sc.BranchMB != NoMB {
			if in.fibs[sc.Route[0]].removeMobilityFromMB(Down, sc.BranchMB, t, sc.Loc) {
				removed++
			}
		} else if in.fibs[sc.Route[0]].RemoveMobility(Down, t, sc.Loc) {
			removed++
		}
	}
	for i := 1; i < len(sc.Route)-1; i++ {
		if in.fibs[sc.Route[i]].RemoveMobility(Down, sc.Delivery, sc.Loc) {
			removed++
		}
	}
	in.stats.Rules -= removed
	// Drop the route's intern reference exactly once; the canonical Route
	// slice stays readable (the pool never reuses backing arrays), so a
	// caller holding the shortcut after removal sees stable data.
	if sc.routeH != 0 {
		in.seqs.release(sc.routeH)
		sc.routeH = 0
	}
	return removed
}

// reservation tracks one reserved old LocIP and its current shortcuts.
type reservation struct {
	imsi      string
	shortcuts []*Shortcut
}

// retargetReservationsLocked points every reserved LocIP of a UE at its
// newest station: old shortcuts come down, fresh ones (from each cached
// path's branch point at the LocIP's origin station) go in. It touches
// both the reservation table and the rule tables, so it runs under both
// locks (acquired in order by Handoff).
//
// caller holds ueMu; caller holds ruleMu
func (c *Controller) retargetReservationsLocked(imsi string, newAccess topo.NodeID) []*Shortcut {
	var all []*Shortcut
	for loc, rsv := range c.reservations {
		if rsv.imsi != imsi {
			continue
		}
		for _, sc := range rsv.shortcuts {
			c.Installer.RemoveShortcut(sc)
		}
		rsv.shortcuts = nil
		originBS, _, ok := c.plan.Split(loc)
		if !ok {
			continue
		}
		for key, rec := range c.paths {
			if key.bs != originBS {
				continue
			}
			branch, branchMB := branchPoint(rec)
			route, err := c.descendRoute(branch, newAccess)
			if err != nil || len(route) < 2 {
				continue // triangle routing via the tunnels still covers it
			}
			sc, _, err := c.Installer.InstallShortcut(loc, route, branchMB, rec.Tags, rec.AccessTag())
			if err == nil {
				rsv.shortcuts = append(rsv.shortcuts, sc)
				all = append(all, sc)
			}
		}
	}
	return all
}

// HandoffResult is everything the rest of the system needs to complete a
// UE's move: the updated UE record, where it came from (for microflow
// copying and the inter-station tunnel), the classifiers for the new
// station's agent, and the shortcuts installed for its old flows.
type HandoffResult struct {
	UE          UE
	OldBS       packet.BSID
	OldLocIP    packet.Addr
	Classifiers []Classifier
	Shortcuts   []*Shortcut
}

// Handoff moves a UE to a new base station (§5.1):
//
//   - a fresh (UE ID, LocIP) is allocated at the new station; the old LocIP
//     stays reserved (not reassigned) until ReleaseOldLocIP, so in-flight
//     downstream packets stay unambiguous;
//   - for every policy path cached at the old station, a temporary shortcut
//     redirects old-LocIP traffic from the path's branch point (after its
//     last middlebox) to the new station — preserving the middlebox
//     sequence, i.e. policy consistency;
//   - classifiers for the new station are returned for the new local agent.
//
// Copying the old station's microflows and wiring the inter-station tunnel
// is the access layer's job; the dataplane package does both.
func (c *Controller) Handoff(imsi string, newBS packet.BSID) (HandoffResult, error) {
	return c.HandoffCtx(obs.SpanContext{}, imsi, newBS)
}

// HandoffCtx is Handoff carrying span context. A sampled trace records the
// ueMu-held move as a core.handoff section with one child per nested lock
// domain — core.handoff.alloc (allocMu) and core.handoff.rule (ruleMu) —
// so the waterfall shows which lock the move actually spent its time in.
func (c *Controller) HandoffCtx(sc obs.SpanContext, imsi string, newBS packet.BSID) (HandoffResult, error) {
	sp := c.obs.spHandoff.Start(sc)
	defer sp.End()
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	r, slot, ok := c.ues.get(imsi)
	if !ok || r.flags&ueHasRecord == 0 || r.locIP == 0 {
		return HandoffResult{}, fmt.Errorf("core: UE %q is not attached", imsi)
	}
	newStation, ok := c.T.Station(newBS)
	if !ok {
		return HandoffResult{}, fmt.Errorf("core: unknown base station %d", newBS)
	}
	if !c.ownsLocked(newBS) {
		return HandoffResult{}, fmt.Errorf("core: handoff to base station %d: %w", newBS, ErrNotOwned)
	}
	if r.bs == newBS {
		return HandoffResult{}, fmt.Errorf("core: UE %q already at base station %d", imsi, newBS)
	}
	oldBS, oldLoc := r.bs, r.locIP

	spa := c.obs.spHandoffAlloc.Start(sp.Context())
	c.allocMu.Lock()
	id, loc, err := c.allocLocIP(newBS)
	c.allocMu.Unlock()
	spa.End()
	if err != nil {
		return HandoffResult{}, err
	}
	// The old LocIP stays indexed to this UE's slot (reserved) for old
	// flows; only the new address is added.
	r.bs, r.ueid, r.locIP = newBS, id, loc
	c.ues.locIdx.insert(loc, slot)
	c.handoffs.Add(1)
	if err := c.persistUELocked(r); err != nil {
		return HandoffResult{}, err
	}

	res := HandoffResult{UE: c.ueViewLocked(r), OldBS: oldBS, OldLocIP: oldLoc,
		Classifiers: c.classifiersLocked(r)}

	// Reserve the vacated address and (re)target every reserved LocIP of
	// this UE — including ones from earlier, still-unreleased handoffs — at
	// the new station, so old-flow shortcuts never point at an intermediate
	// station the UE has already left. Retargeting rewires switch rules, so
	// it nests the rule-table lock inside the UE lock (the documented
	// order).
	c.reservations[oldLoc] = &reservation{imsi: r.imsi}
	spr := c.obs.spHandoffRule.Start(sp.Context())
	c.ruleMu.Lock()
	res.Shortcuts = c.retargetReservationsLocked(imsi, newStation.Access)
	c.ruleMu.Unlock()
	spr.End()
	c.obs.evHandoff.Emit(int64(oldBS), int64(newBS), int64(len(res.Shortcuts)))
	return res, nil
}

// branchPoint is the switch where a path's tail begins — the switch of its
// last middlebox (also returned), or the gateway for middlebox-free paths.
func branchPoint(rec *InstalledPath) (topo.NodeID, topo.MBInstanceID) {
	r := rec.Route
	for i := r.Len() - 1; i >= 0; i-- {
		if r.MBAt[i] != NoMB {
			return r.Switches[i], r.MBAt[i]
		}
	}
	return r.Gateway(), NoMB
}

// descendRoute computes the canonical descend route from a switch to an
// access switch (the same function location rules follow). It reads the
// Installer's spanning tree.
//
// caller holds ruleMu
func (c *Controller) descendRoute(from, access topo.NodeID) ([]topo.NodeID, error) {
	parent := c.Installer.tree(c.gateway)
	chain := c.T.AncestorChain(access, parent)
	if chain == nil {
		return nil, fmt.Errorf("core: no tree chain for access switch %d", access)
	}
	idx := make(map[topo.NodeID]int, len(chain))
	for i, n := range chain {
		idx[n] = i
	}
	route := []topo.NodeID{from}
	u := from
	for steps := 0; ; steps++ {
		if steps > 2*len(c.T.Nodes) {
			return nil, fmt.Errorf("core: descend route did not converge")
		}
		next, done := c.T.CanonicalDescend(u, chain, idx, parent)
		if done {
			return route, nil
		}
		if next == topo.None {
			return nil, fmt.Errorf("core: no descend route from %d to %d", from, access)
		}
		route = append(route, next)
		u = next
	}
}

// ReleaseOldLocIP ends a handoff transition (the soft-timeout expiry): the
// address's shortcuts come down and it returns to the allocation pool. The
// shortcuts argument is accepted for symmetry with HandoffResult but the
// controller's own reservation tracking is authoritative (shortcuts may
// have been retargeted by later handoffs).
func (c *Controller) ReleaseOldLocIP(oldLoc packet.Addr, shortcuts []*Shortcut) {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	c.ruleMu.Lock()
	rsv, reserved := c.reservations[oldLoc]
	if reserved {
		for _, sc := range rsv.shortcuts {
			c.Installer.RemoveShortcut(sc)
		}
		delete(c.reservations, oldLoc)
	} else {
		for _, sc := range shortcuts {
			c.Installer.RemoveShortcut(sc)
		}
	}
	c.ruleMu.Unlock()
	c.obs.evRelease.Emit(int64(oldLoc), boolInt(reserved))
	if !reserved {
		// Already released, or the UE migrated away (ExtractUE tears down
		// reservations and frees their IDs itself). Freeing again would hand
		// the same (station, UE ID) — the same LocIP — to two devices.
		return
	}
	if bs, id, ok := c.plan.Split(oldLoc); ok {
		slot, held := c.ues.locIdx.lookup(oldLoc)
		if !held || c.ues.rec(slot).locIP != oldLoc {
			c.allocMu.Lock()
			c.freeUEIDLocked(bs, id)
			c.allocMu.Unlock()
			c.ues.locIdx.delete(oldLoc)
		}
	}
}
