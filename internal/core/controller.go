package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/routing"
	"repro/internal/store"
	"repro/internal/topo"
)

// UE is the controller's view of one attached device.
type UE struct {
	IMSI   string
	Attr   policy.Attributes
	PermIP packet.Addr // permanent address (DHCP at first attach, never changes)
	BS     packet.BSID // current base station
	UEID   packet.UEID // local ID at the current base station
	LocIP  packet.Addr // location-dependent address (changes on handoff)
}

// Classifier is one per-UE packet classifier the controller ships to a local
// agent (§4.2): flows of App get Tag; Tag 0 means no policy path exists yet
// and the agent must come back (the "send-to-controller" action).
type Classifier struct {
	App    policy.AppType
	Clause int
	Tag    packet.Tag // the access-side tag to embed; 0 = ask the controller
	Allow  bool
	QoS    policy.QoS
}

// pathKey caches policy paths per (origin, clause).
type pathKey struct {
	bs     packet.BSID
	clause int
}

// tagMap is the read-mostly memo published to RequestPath's lock-free fast
// path: (bs, clause) -> access-side tag of the installed policy path. A
// valid tag is never 0 (Installer tags start at offset+stride), so a zero
// lookup result always means "miss". Snapshots are copy-on-write and
// immutable after publish: publishers build a fresh map and swap the
// pointer, never mutate the published one.
type tagMap map[pathKey]packet.Tag

// ControllerConfig parameterises NewController.
type ControllerConfig struct {
	Plan     packet.Plan // zero value = packet.DefaultPlan
	Gateway  topo.NodeID
	Policy   *policy.Policy
	MBTypes  map[string]topo.MBType // middlebox function name -> topology type
	Replicas int                    // control-store replicas (§5.2); default 1
	// PermPool is the block permanent UE addresses are drawn from; it must
	// not overlap the carrier's LocIP block. Zero value = 100.64.0.0/10.
	// Parallel controller shards pass disjoint sub-blocks so their
	// allocations never collide.
	PermPool packet.Prefix
	// Stations restricts the controller to a subset of base stations: any
	// Attach/Handoff/RequestPath naming a station outside the subset fails
	// with ErrNotOwned. nil (the default) means every station in the
	// topology. The shard runtime uses this to give each shard a disjoint
	// slice of the access network — and with it a disjoint LocIP sub-pool,
	// since LocIPs embed the base-station ID.
	Stations []packet.BSID
	// Installer options (ablations, candidate bounds, tag-space partition)
	// pass through.
	Install InstallerOptions
	// Obs, when non-nil, registers runtime telemetry (tag-cache hit/miss,
	// rules added/saved by aggregation, sampled lock waits) and trace
	// events on the registry. nil runs uninstrumented at zero cost.
	Obs *obs.Registry
}

// Controller is the SoftCell central controller: it owns the subscriber
// database, UE state, policy-path installation and the replicated control
// store. It is safe for concurrent use.
//
// State is split into three lock domains so readers and independent writers
// do not contend (the throughput benchmarks measure exactly this):
//
//   - ueMu guards the UE/location tables; lookups take only the read lock.
//   - allocMu guards the address/ID allocators (free lists, counters).
//   - ruleMu guards the rule tables: Planner, Installer, the installed-path
//     map, and topology up/down flags — everything Algorithm 1 and prefix
//     aggregation touch. The Installer itself is not safe for concurrent
//     use; every controller code path that mutates or reads it holds
//     ruleMu. External read-only access (dataplane assembly, examples,
//     trace dumps) happens in single-threaded contexts by design.
//
// lock ordering: ueMu, allocMu, ruleMu — a later mutex may be acquired
// while holding an earlier one, never the reverse. The fastest path of all,
// a repeat RequestPath, takes no lock: it reads the tagCache snapshot.
type Controller struct {
	ueMu    sync.RWMutex // UE/location state
	allocMu sync.Mutex   // address/ID allocation
	ruleMu  sync.Mutex   // rule tables: Planner, Installer, paths

	T         *topo.Topology
	Planner   *routing.Planner
	Installer *Installer
	Policy    *policy.Policy
	Store     *store.Store

	plan     packet.Plan
	gateway  topo.NodeID
	mbTypes  map[string]topo.MBType
	permPool packet.Prefix
	permNext uint32               // guarded by allocMu
	owned    map[packet.BSID]bool // guarded by ueMu; nil = unrestricted

	// ues is the struct-of-arrays UE directory (DESIGN.md §14): subscriber
	// registration, attachment and location state live together in one
	// fixed-size slab record per IMSI, reached through open-addressed
	// IMSI/LocIP/permanent-IP indices. attrs interns the subscriber
	// attribute sets (and their compiled classifier templates) the records
	// reference by handle.
	ues   ueTable  // guarded by ueMu
	attrs attrPool // guarded by ueMu
	// encBuf is the store-record encoding scratch buffer (store.Put copies
	// per replica, so it is reusable immediately).
	encBuf []byte // guarded by ueMu
	// reservations holds, per still-reserved old LocIP, the live shortcut
	// state for in-flight flows of a moved UE (§5.1); retargeted on every
	// subsequent handoff, removed by ReleaseOldLocIP's soft timeout.
	reservations map[packet.Addr]*reservation // guarded by ueMu
	// Per-station UE ID allocators, indexed by BSID and grown on demand
	// (ensureBSLocked) — dense arrays, not maps: station IDs are small.
	nextUEID  []packet.UEID              // guarded by allocMu
	freeUEIDs [][]packet.UEID            // guarded by allocMu
	paths     map[pathKey]*InstalledPath // guarded by ruleMu

	// tagCache is the copy-on-write (bs, clause) -> tag memo. Readers Load
	// and index it with no lock; writers (all holding ruleMu) publish a
	// fresh map. Invalidated wholesale on RemovePolicyPaths and failure
	// recomputation, per station on shard migration.
	tagCache atomic.Pointer[tagMap]
	// epoch counts tag-plan mutations (publish, rebuild, station
	// invalidation). AgentView stamps exports with it so agents can tell
	// two snapshots cut from the same plan apart from a real change.
	epoch atomic.Uint64

	// Stats counters; snapshot through Stats().
	attaches atomic.Uint64
	handoffs atomic.Uint64
	pathAsks atomic.Uint64
	pathMiss atomic.Uint64 // asks that had to install a new path

	// Runtime telemetry handles (nil-safe no-ops when unconfigured) and
	// the slow-path sequence used to sample ruleMu waits.
	obs     coreObs
	slowSeq atomic.Uint64
}

// ControllerStats is a point-in-time snapshot of the controller's counters.
type ControllerStats struct {
	Attaches uint64
	Handoffs uint64
	PathAsks uint64
	PathMiss uint64
}

// Stats snapshots the controller's counters (each is independently atomic;
// no lock is taken).
func (c *Controller) Stats() ControllerStats {
	return ControllerStats{Attaches: c.attaches.Load(), Handoffs: c.handoffs.Load(),
		PathAsks: c.pathAsks.Load(), PathMiss: c.pathMiss.Load()}
}

// NewController wires a controller over the topology.
func NewController(t *topo.Topology, cfg ControllerConfig) (*Controller, error) {
	if cfg.Plan == (packet.Plan{}) {
		cfg.Plan = packet.DefaultPlan
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: controller needs a service policy")
	}
	if cfg.PermPool == (packet.Prefix{}) {
		cfg.PermPool = packet.NewPrefix(packet.AddrFrom4(100, 64, 0, 0), 10)
	}
	if cfg.PermPool.Overlaps(cfg.Plan.Carrier) {
		return nil, fmt.Errorf("core: permanent pool %s overlaps carrier block %s", cfg.PermPool, cfg.Plan.Carrier)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	opts := cfg.Install
	opts.Plan = cfg.Plan
	inst, err := NewInstaller(t, opts)
	if err != nil {
		return nil, err
	}
	// Location routing is base infrastructure (Fig. 3(a)): build it now so
	// location-routed traffic works before the first policy path.
	inst.EnableLocationRouting(cfg.Gateway)
	var owned map[packet.BSID]bool
	if cfg.Stations != nil {
		owned = make(map[packet.BSID]bool, len(cfg.Stations))
		for _, bs := range cfg.Stations {
			if _, ok := t.Station(bs); !ok {
				return nil, fmt.Errorf("core: restricted to unknown base station %d", bs)
			}
			owned[bs] = true
		}
	}
	c := &Controller{
		T:            t,
		Planner:      routing.NewPlanner(t),
		Installer:    inst,
		Policy:       cfg.Policy,
		Store:        store.New(cfg.Replicas),
		plan:         cfg.Plan,
		gateway:      cfg.Gateway,
		mbTypes:      cfg.MBTypes,
		permPool:     cfg.PermPool,
		owned:        owned,
		ues:          newUETable(),
		attrs:        newAttrPool(),
		reservations: make(map[packet.Addr]*reservation),
		paths:        make(map[pathKey]*InstalledPath),
		obs:          newCoreObs(cfg.Obs),
	}
	empty := make(tagMap)
	c.tagCache.Store(&empty)
	return c, nil
}

// Plan exposes the controller's address plan.
func (c *Controller) Plan() packet.Plan { return c.plan }

// Gateway exposes the controller's gateway switch.
func (c *Controller) Gateway() topo.NodeID { return c.gateway }

// PermPool exposes the permanent-address block.
func (c *Controller) PermPool() packet.Prefix { return c.permPool }

// ueViewLocked materialises the public UE view of one slab record.
//
// caller holds ueMu
func (c *Controller) ueViewLocked(r *ueRecord) UE {
	return UE{IMSI: r.imsi, Attr: c.attrs.attrOf(r.attr), PermIP: r.permIP,
		BS: r.bs, UEID: r.ueid, LocIP: r.locIP}
}

// RegisterSubscriber loads one subscriber record (the HSS equivalent).
// Re-registering replaces the subscriber's attributes; an already attached
// UE keeps the attributes it was admitted under.
func (c *Controller) RegisterSubscriber(imsi string, attr policy.Attributes) error {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	r, _, ok := c.ues.get(imsi)
	if !ok {
		r, _ = c.ues.alloc(imsi)
	}
	// Acquire before release so re-registering identical attributes never
	// drops the pool entry just to re-create (and re-compile) it.
	h := c.attrs.acquire(attr, c.Policy)
	c.attrs.release(r.subAttr)
	r.subAttr = h
	r.flags |= ueRegistered
	c.encBuf = AppendSubscriberRecord(c.encBuf[:0], attr)
	_, err := c.Store.Put("sub/"+imsi, c.encBuf)
	return err
}

// ensureBSLocked grows the per-station allocator arrays to cover bs.
//
// caller holds allocMu
func (c *Controller) ensureBSLocked(bs packet.BSID) {
	if int(bs) < len(c.nextUEID) {
		return
	}
	n := len(c.nextUEID) * 2
	if n <= int(bs) {
		n = int(bs) + 1
	}
	next := make([]packet.UEID, n)
	copy(next, c.nextUEID)
	c.nextUEID = next
	free := make([][]packet.UEID, n)
	copy(free, c.freeUEIDs)
	c.freeUEIDs = free
}

// freeUEIDLocked returns one (station, UE ID) to the free list.
//
// caller holds allocMu
func (c *Controller) freeUEIDLocked(bs packet.BSID, id packet.UEID) {
	c.ensureBSLocked(bs)
	c.freeUEIDs[bs] = append(c.freeUEIDs[bs], id)
}

// allocLocIP assigns a fresh (UEID, LocIP) at a base station.
//
// caller holds allocMu
func (c *Controller) allocLocIP(bs packet.BSID) (packet.UEID, packet.Addr, error) {
	c.ensureBSLocked(bs)
	var id packet.UEID
	if free := c.freeUEIDs[bs]; len(free) > 0 {
		id = free[len(free)-1]
		c.freeUEIDs[bs] = free[:len(free)-1]
	} else {
		id = c.nextUEID[bs] + 1
		if id > c.plan.MaxUE() {
			return 0, 0, fmt.Errorf("core: base station %d out of UE IDs", bs)
		}
		c.nextUEID[bs] = id
	}
	loc, err := c.plan.LocIP(bs, id)
	if err != nil {
		return 0, 0, err
	}
	return id, loc, nil
}

// AttachCtx is Attach carrying span context: a sampled trace records the
// whole ueMu-held admission as one core.attach section (attach is rare
// enough that its internal lock domains are not broken out the way
// handoff's are).
func (c *Controller) AttachCtx(sc obs.SpanContext, imsi string, bs packet.BSID) (UE, []Classifier, error) {
	sp := c.obs.spAttach.Start(sc)
	ue, cls, err := c.Attach(imsi, bs)
	sp.End()
	return ue, cls, err
}

// Attach admits a UE at a base station: it allocates a permanent IP on
// first attach, a location-dependent address, and compiles the per-UE
// packet classifiers for the local agent.
func (c *Controller) Attach(imsi string, bs packet.BSID) (UE, []Classifier, error) {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	r, slot, ok := c.ues.get(imsi)
	if !ok || r.flags&ueRegistered == 0 {
		return UE{}, nil, fmt.Errorf("core: unknown subscriber %q", imsi)
	}
	if _, ok := c.T.Station(bs); !ok {
		return UE{}, nil, fmt.Errorf("core: unknown base station %d", bs)
	}
	if !c.ownsLocked(bs) {
		return UE{}, nil, fmt.Errorf("core: attach at base station %d: %w", bs, ErrNotOwned)
	}
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	if r.flags&ueHasRecord == 0 {
		hostBits := 32 - c.permPool.Len
		if c.permNext >= 1<<hostBits-1 {
			return UE{}, nil, fmt.Errorf("core: permanent pool exhausted")
		}
		c.permNext++
		r.flags |= ueHasRecord
		// First attach fixes the UE's attributes to the subscriber record's
		// current ones: one more reference to the same interned entry.
		r.attr = c.attrs.acquire(c.attrs.attrOf(r.subAttr), c.Policy)
		r.permIP = c.permPool.Addr | packet.Addr(c.permNext)
		c.ues.permIdx.insert(r.permIP, slot)
	} else if r.bs == bs && r.locIP != 0 {
		// Re-attach at the same station keeps the allocation.
		return c.ueViewLocked(r), c.classifiersLocked(r), nil
	}
	id, loc, err := c.allocLocIP(bs)
	if err != nil {
		return UE{}, nil, err
	}
	if r.locIP != 0 {
		c.ues.locIdx.delete(r.locIP)
		c.freeUEIDLocked(r.bs, r.ueid)
	}
	r.bs, r.ueid, r.locIP = bs, id, loc
	c.ues.locIdx.insert(loc, slot)
	c.attaches.Add(1)
	if err := c.persistUELocked(r); err != nil {
		return UE{}, nil, err
	}
	return c.ueViewLocked(r), c.classifiersLocked(r), nil
}

// persistUELocked writes a UE record to the replicated store through the
// binary codec and the controller's scratch buffer (the store copies per
// replica, so the buffer is immediately reusable — no per-persist
// allocation).
//
// caller holds ueMu
func (c *Controller) persistUELocked(r *ueRecord) error {
	ue := c.ueViewLocked(r)
	c.encBuf = AppendUERecord(c.encBuf[:0], &ue)
	_, err := c.Store.Put("ue/"+r.imsi, c.encBuf)
	return err
}

// classifiersLocked assembles the service policy for one UE from its
// interned classifier template (compiled once per distinct attribute set,
// not once per attach), resolving tags for clauses whose policy paths
// already exist at the UE's base station (read from the tagCache snapshot —
// no rule-table lock needed).
//
// caller holds ueMu
func (c *Controller) classifiersLocked(r *ueRecord) []Classifier {
	entries := c.attrs.compiled(r.attr)
	tags := *c.tagCache.Load()
	out := make([]Classifier, 0, len(entries))
	for _, e := range entries {
		cl := Classifier{App: e.App, Clause: e.Clause, Allow: e.Action.Allow, QoS: e.Action.QoS}
		if e.Action.Allow {
			cl.Tag = tags[pathKey{r.bs, e.Clause}]
			// Tag 0 = "send to controller": the agent asks for the path on
			// first use (§4.2's second classifier example).
		}
		out = append(out, cl)
	}
	return out
}

// RequestPath resolves (installing if needed) the policy path for a clause
// from a base station, returning the access-side tag the agent embeds.
// This is the controller's hot path: the micro-benchmarks drive it. The
// steady state — the path already installed — reads the tagCache snapshot
// with no lock and no allocation.
//
// hotpath: no alloc, no lock
func (c *Controller) RequestPath(bs packet.BSID, clause int) (packet.Tag, error) {
	c.pathAsks.Add(1)
	if tag, ok := (*c.tagCache.Load())[pathKey{bs, clause}]; ok {
		c.obs.cacheHit.Inc()
		return tag, nil
	}
	c.obs.cacheMiss.Inc()
	return c.requestPathSlow(obs.SpanContext{}, bs, clause)
}

// RequestPathCtx is RequestPath carrying span context. A sampled request
// records the whole resolution as a core.path section — still allocation
// free on the cache-hit path (Span is a value type and the ring write is
// lock-free) — and threads the context into the slow path so the ruleMu
// domain shows up as its own child section in the waterfall.
//
// hotpath: no alloc, no lock
func (c *Controller) RequestPathCtx(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error) {
	sp := c.obs.spPath.Start(sc)
	c.pathAsks.Add(1)
	if tag, ok := (*c.tagCache.Load())[pathKey{bs, clause}]; ok {
		c.obs.cacheHit.Inc()
		sp.End()
		return tag, nil
	}
	c.obs.cacheMiss.Inc()
	tag, err := c.requestPathSlow(sp.Context(), bs, clause)
	sp.End()
	return tag, err
}

// requestPathSlow is the miss path: it checks station ownership under the
// UE read lock, then installs (or discovers, if another goroutine raced the
// install) the path under the rule-table lock.
//
// hotpath: cold
func (c *Controller) requestPathSlow(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error) {
	c.ueMu.RLock()
	owns := c.ownsLocked(bs)
	c.ueMu.RUnlock()
	if !owns {
		return 0, fmt.Errorf("core: path request from base station %d: %w", bs, ErrNotOwned)
	}
	// The core.lock.rule section covers ruleMu wait plus hold; its End is
	// deferred first so it fires after the unlock.
	spr := c.obs.spPathRule.Start(sc)
	defer spr.End()
	// Sampled lock-domain contention: every Nth slow request times its
	// ruleMu acquisition against the injected obs clock (virtual clocks
	// observe 0, keeping deterministic harnesses deterministic).
	if c.obs.ruleWait != nil && c.slowSeq.Add(1)%ruleWaitSampleEvery == 0 {
		t0 := c.obs.reg.Now()
		c.ruleMu.Lock()
		c.obs.ruleWait.Observe(c.obs.reg.Now() - t0)
	} else {
		c.ruleMu.Lock()
	}
	defer c.ruleMu.Unlock()
	return c.resolvePathLocked(bs, clause)
}

// resolvePathLocked returns the installed path's tag for (bs, clause),
// running plan + Algorithm 1 and publishing the tag to the cache when the
// path does not exist yet. Ownership of bs has already been checked.
//
// caller holds ruleMu
func (c *Controller) resolvePathLocked(bs packet.BSID, clause int) (packet.Tag, error) {
	if rec, ok := c.paths[pathKey{bs, clause}]; ok {
		// The path survived but its memo entry may have been dropped by a
		// station-level invalidation (shard migration): republish so later
		// requests go back to hitting the lock-free fast path.
		if (*c.tagCache.Load())[pathKey{bs, clause}] != rec.AccessTag() {
			c.publishTagLocked(pathKey{bs, clause}, rec.AccessTag())
		}
		return rec.AccessTag(), nil
	}
	cl, ok := c.Policy.Clause(clause)
	if !ok {
		return 0, fmt.Errorf("core: unknown policy clause %d", clause)
	}
	if !cl.Action.Allow {
		return 0, fmt.Errorf("core: clause %d denies traffic", clause)
	}
	chain := make([]topo.MBType, 0, len(cl.Action.Chain))
	for _, fn := range cl.Action.Chain {
		typ, ok := c.mbTypes[fn]
		if !ok {
			return 0, fmt.Errorf("core: no middlebox type mapped for function %q", fn)
		}
		chain = append(chain, typ)
	}
	route, err := c.Planner.Plan(bs, chain, c.gateway)
	if err != nil {
		return 0, err
	}
	rulesBefore := c.Installer.Stats().Rules
	rec, err := c.Installer.InstallPath(route)
	if err != nil {
		return 0, err
	}
	// Rule accounting: entries this install actually placed vs the naive
	// two-per-hop (up + down) placement aggregation starts from.
	added := c.Installer.Stats().Rules - rulesBefore
	if added > 0 {
		c.obs.rulesAdded.Add(uint64(added))
	}
	if saved := 2*route.Len() - added; saved > 0 {
		c.obs.rulesSaved.Add(uint64(saved))
	}
	c.paths[pathKey{bs, clause}] = rec
	c.publishTagLocked(pathKey{bs, clause}, rec.AccessTag())
	c.obs.evInstall.Emit(int64(bs), int64(clause), int64(rec.AccessTag()), int64(added))
	c.pathMiss.Add(1)
	key := fmt.Sprintf("path/%d/%d", bs, clause)
	blob := make([]byte, 8)
	binary.BigEndian.PutUint64(blob, uint64(rec.ID))
	if _, err := c.Store.Put(key, blob); err != nil {
		return 0, err
	}
	return rec.AccessTag(), nil
}

// publishTagLocked adds one entry to the tagCache snapshot (copy-on-write:
// installs are rare and bounded by stations x clauses).
//
// caller holds ruleMu
func (c *Controller) publishTagLocked(key pathKey, tag packet.Tag) {
	old := *c.tagCache.Load()
	next := make(tagMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = tag
	c.tagCache.Store(&next)
	c.epoch.Add(1)
	c.obs.evTagPub.Emit(int64(key.bs), int64(key.clause), int64(tag))
}

// rebuildTagCacheLocked republishes the snapshot from the installed-path
// map — the wholesale invalidation used by policy-path removal and failure
// recomputation.
//
// caller holds ruleMu
func (c *Controller) rebuildTagCacheLocked() {
	old := *c.tagCache.Load()
	next := make(tagMap, len(c.paths))
	for k, rec := range c.paths {
		next[k] = rec.AccessTag()
	}
	c.tagCache.Store(&next)
	c.epoch.Add(1)
	// Wholesale invalidation: report how many memo entries did not carry
	// over (bs -1 = all stations).
	dropped := 0
	for k, v := range old {
		if next[k] != v {
			dropped++
		}
	}
	if dropped > 0 {
		c.obs.evTagEvict.Emit(-1, int64(dropped))
	}
}

// invalidateStationLocked drops every cached tag of one base station, so
// requests for it re-derive through the rule table. Used when a station
// migrates between shards (AbsorbStation / ExtractUE): a memoised tag must
// never outlive the handoff.
//
// caller holds ruleMu
func (c *Controller) invalidateStationLocked(bs packet.BSID) {
	old := *c.tagCache.Load()
	next := make(tagMap, len(old))
	for k, v := range old {
		if k.bs != bs {
			next[k] = v
		}
	}
	c.tagCache.Store(&next)
	c.epoch.Add(1)
	if dropped := len(old) - len(next); dropped > 0 {
		c.obs.evTagEvict.Emit(int64(bs), int64(dropped))
	}
}

// LookupUE resolves a UE by IMSI.
func (c *Controller) LookupUE(imsi string) (UE, bool) {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	r, _, ok := c.ues.get(imsi)
	if !ok || r.flags&ueHasRecord == 0 {
		return UE{}, false
	}
	return c.ueViewLocked(r), true
}

// ResolveLocIP translates a UE's permanent address to its current
// location-dependent address — what an access agent needs to set up a
// mobile-to-mobile flow (§7: "SoftCell establishes a direct path between
// them without detouring via a gateway").
func (c *Controller) ResolveLocIP(perm packet.Addr) (packet.Addr, error) {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	slot, ok := c.ues.permIdx.lookup(perm)
	if !ok {
		return 0, fmt.Errorf("core: no UE with permanent address %s", perm)
	}
	r := c.ues.rec(slot)
	if r.locIP == 0 {
		return 0, fmt.Errorf("core: UE %q is detached", r.imsi)
	}
	return r.locIP, nil
}

// LookupByLocIP resolves a UE by its current location-dependent address
// (or by a still-reserved old one — the UE's current record is returned
// either way).
func (c *Controller) LookupByLocIP(loc packet.Addr) (UE, bool) {
	c.ueMu.RLock()
	defer c.ueMu.RUnlock()
	slot, ok := c.ues.locIdx.lookup(loc)
	if !ok {
		return UE{}, false
	}
	return c.ueViewLocked(c.ues.rec(slot)), true
}

// Detach releases a UE's location state (its permanent IP remains bound to
// the IMSI, as in real cores). Reserved old LocIPs from unfinished handoffs
// stay reserved until their soft timeout (ReleaseOldLocIP), but their
// shortcuts come down now: the shortcuts exist to steer the UE's old flows
// to its current station, and a detached UE has neither flows nor delivery
// microflows anywhere — a shortcut pointing into a station with no
// microflows can combine with location rules into a forwarding loop for
// the dead address.
func (c *Controller) Detach(imsi string) error {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	r, _, ok := c.ues.get(imsi)
	if !ok || r.flags&ueHasRecord == 0 {
		return fmt.Errorf("core: unknown UE %q", imsi)
	}
	if r.locIP != 0 {
		c.ues.locIdx.delete(r.locIP)
		c.allocMu.Lock()
		c.freeUEIDLocked(r.bs, r.ueid)
		c.allocMu.Unlock()
		r.locIP, r.ueid = 0, 0
	}
	c.ruleMu.Lock()
	for _, rsv := range c.reservations {
		if rsv.imsi != imsi {
			continue
		}
		for _, sc := range rsv.shortcuts {
			c.Installer.RemoveShortcut(sc)
		}
		rsv.shortcuts = nil
	}
	c.ruleMu.Unlock()
	if _, err := c.Store.Delete("ue/" + imsi); err != nil {
		return err
	}
	return nil
}

// AgentLocationReport is what a local agent answers during failover
// recovery: the UEs currently attached at its base station.
type AgentLocationReport struct {
	BS  packet.BSID
	UEs []UE
}

// RecoverLocations rebuilds the UE-location state from live agents' reports
// (§5.2: "a replica can correctly rebuild the UE location state by querying
// local agents"). Existing location state is discarded first.
func (c *Controller) RecoverLocations(reports []AgentLocationReport) error {
	c.ueMu.Lock()
	defer c.ueMu.Unlock()
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	c.ues.locIdx.reset()
	for i := range c.nextUEID {
		c.nextUEID[i] = 0
	}
	for i := range c.freeUEIDs {
		c.freeUEIDs[i] = c.freeUEIDs[i][:0]
	}
	c.ues.forEach(func(_ uint32, r *ueRecord) bool {
		r.locIP, r.ueid, r.bs = 0, 0, 0
		return true
	})
	for _, rep := range reports {
		if !c.ownsLocked(rep.BS) {
			continue // another shard's station; its owner rebuilds it
		}
		for _, u := range rep.UEs {
			r, slot, ok := c.ues.get(u.IMSI)
			if !ok {
				r, slot = c.ues.alloc(u.IMSI)
			}
			if r.flags&ueHasRecord == 0 {
				r.flags |= ueHasRecord
				c.attrs.release(r.attr)
				r.attr = c.attrs.acquire(u.Attr, c.Policy)
				r.permIP = u.PermIP
				c.ues.permIdx.insert(u.PermIP, slot)
			}
			r.bs, r.ueid, r.locIP = rep.BS, u.UEID, u.LocIP
			c.ues.locIdx.insert(u.LocIP, slot)
			c.ensureBSLocked(rep.BS)
			if u.UEID > c.nextUEID[rep.BS] {
				c.nextUEID[rep.BS] = u.UEID
			}
			if err := c.persistUELocked(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemovePolicyPaths withdraws every installed path of one policy clause
// (policy change or middlebox rebalancing) and rebuilds the forwarding
// state from the remaining paths — removal by recomputation, per the
// paper's offline-algorithm discussion. Classifier caches at agents go
// stale by design: their next flow for the clause asks the controller
// again (tag 0 semantics). The tag memo is rebuilt from the surviving
// paths, so no removed tag can be served again.
func (c *Controller) RemovePolicyPaths(clause int) error {
	c.ruleMu.Lock()
	defer c.ruleMu.Unlock()
	drop := make(map[PathID]bool)
	for key, rec := range c.paths {
		if key.clause == clause {
			drop[rec.ID] = true
			delete(c.paths, key)
			if _, err := c.Store.Delete(fmt.Sprintf("path/%d/%d", key.bs, clause)); err != nil {
				return err
			}
		}
	}
	if len(drop) == 0 {
		return nil
	}
	err := c.Installer.Rebuild(func(p *InstalledPath) bool { return !drop[p.ID] })
	// After the rebuild: it re-tags the surviving records in place, and the
	// memo must reflect the tags agents will actually be served.
	c.rebuildTagCacheLocked()
	return err
}
