package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/packet"
	"repro/internal/policy"
)

// This file is the binary codec for the controller's replicated-store
// records. The JSON blobs it replaces cost one marshal allocation tree per
// Attach/Handoff persist; at city rates that is the store's dominant
// allocation source. The binary form appends into a caller-owned scratch
// buffer (store.Put copies per replica, so the buffer is immediately
// reusable) and is versioned so a mixed-version store stays readable.

// ueRecordVersion tags the encoding; bump on any layout change.
const ueRecordVersion = 1

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// AppendUERecord encodes one UE record (the "ue/<imsi>" store value),
// appending to dst and returning the extended slice.
func AppendUERecord(dst []byte, ue *UE) []byte {
	dst = append(dst, ueRecordVersion)
	dst = appendString(dst, ue.IMSI)
	dst = appendAttributes(dst, ue.Attr)
	dst = appendU32(dst, uint32(ue.PermIP))
	dst = appendU32(dst, uint32(ue.BS))
	dst = appendU32(dst, uint32(ue.UEID))
	dst = appendU32(dst, uint32(ue.LocIP))
	return dst
}

// DecodeUERecord decodes a "ue/<imsi>" store value. The shard failover
// path reads salvaged records through this.
func DecodeUERecord(blob []byte) (UE, error) {
	d := decoder{buf: blob}
	if v := d.byte(); v != ueRecordVersion {
		return UE{}, fmt.Errorf("core: UE record version %d, want %d", v, ueRecordVersion)
	}
	var ue UE
	ue.IMSI = d.string()
	ue.Attr = d.attributes()
	ue.PermIP = packet.Addr(d.u32())
	ue.BS = packet.BSID(d.u32())
	ue.UEID = packet.UEID(d.u32())
	ue.LocIP = packet.Addr(d.u32())
	if d.err != nil {
		return UE{}, fmt.Errorf("core: corrupt UE record: %w", d.err)
	}
	return ue, nil
}

// attrFlag bits pack the boolean attributes.
const (
	attrRoaming = 1 << iota
	attrOverCap
	attrParental
)

func appendAttributes(dst []byte, a policy.Attributes) []byte {
	dst = appendString(dst, a.Provider)
	dst = appendString(dst, a.Plan)
	dst = appendString(dst, a.DeviceType)
	dst = appendString(dst, a.Model)
	dst = appendString(dst, a.OSVersion)
	var flags byte
	if a.Roaming {
		flags |= attrRoaming
	}
	if a.OverCap {
		flags |= attrOverCap
	}
	if a.Parental {
		flags |= attrParental
	}
	return append(dst, flags)
}

// AppendSubscriberRecord encodes one subscriber-attribute record (the
// "sub/<imsi>" store value).
func AppendSubscriberRecord(dst []byte, a policy.Attributes) []byte {
	dst = append(dst, ueRecordVersion)
	return appendAttributes(dst, a)
}

// DecodeSubscriberRecord decodes a "sub/<imsi>" store value.
func DecodeSubscriberRecord(blob []byte) (policy.Attributes, error) {
	d := decoder{buf: blob}
	if v := d.byte(); v != ueRecordVersion {
		return policy.Attributes{}, fmt.Errorf("core: subscriber record version %d, want %d", v, ueRecordVersion)
	}
	a := d.attributes()
	if d.err != nil {
		return policy.Attributes{}, fmt.Errorf("core: corrupt subscriber record: %w", d.err)
	}
	return a, nil
}

// decoder is a bounds-checked cursor over an encoded record.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record")
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) string() string {
	if d.err != nil {
		return ""
	}
	n, used := binary.Uvarint(d.buf)
	if used <= 0 || uint64(len(d.buf)-used) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[used : used+int(n)])
	d.buf = d.buf[used+int(n):]
	return s
}

func (d *decoder) attributes() policy.Attributes {
	var a policy.Attributes
	a.Provider = d.string()
	a.Plan = d.string()
	a.DeviceType = d.string()
	a.Model = d.string()
	a.OSVersion = d.string()
	flags := d.byte()
	a.Roaming = flags&attrRoaming != 0
	a.OverCap = flags&attrOverCap != 0
	a.Parental = flags&attrParental != 0
	return a
}
