package cbench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/topo"
)

// ShardedOptions configure the sharded-controller throughput benchmark.
type ShardedOptions struct {
	ControllerOptions
	// Shards is the partition width (default 4).
	Shards int
}

func (o ShardedOptions) withDefaults() ShardedOptions {
	o.ControllerOptions = o.ControllerOptions.withDefaults()
	if o.Shards <= 0 {
		o.Shards = 4
	}
	return o
}

// newShardedTestbed mirrors newTestbed over a shard.Dispatcher: the same
// k=4 network and Table 1 policy, every (station, clause) path pre-warmed,
// so the measurement window sees only steady-state request handling.
func newShardedTestbed(shards int, reg *obs.Registry) (*shard.Dispatcher, []int, int, error) {
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 3, Seed: 1})
	if err != nil {
		return nil, nil, 0, err
	}
	pol := policy.ExampleCarrierPolicy()
	d, err := shard.New(shard.Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   pol,
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards: shards,
		Obs:    reg,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	var clauses []int
	for id := 0; id < pol.Len(); id++ {
		cl, _ := pol.Clause(id)
		if cl.Action.Allow {
			clauses = append(clauses, id)
		}
	}
	for bs := 0; bs < len(g.Stations); bs++ {
		for _, c := range clauses {
			if _, err := d.RequestPath(packet.BSID(bs), c); err != nil {
				d.Close()
				return nil, nil, 0, err
			}
		}
	}
	return d, clauses, len(g.Stations), nil
}

// BenchShardedController measures sustained path-request throughput through
// a shard.Dispatcher: the same agent storm as BenchController, but requests
// fan out over N parallel controller shards with no shared lock.
func BenchShardedController(opts ShardedOptions) (Result, error) {
	opts = opts.withDefaults()
	d, clauses, nBS, err := newShardedTestbed(opts.Shards, opts.Obs)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()

	var stop atomic.Bool
	var total uint64
	var wg sync.WaitGroup
	before := d.Served()
	start := time.Now()
	for i := 0; i < opts.Agents*opts.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			var n uint64
			for !stop.Load() {
				bs := packet.BSID(rng.Intn(nBS))
				clause := clauses[rng.Intn(len(clauses))]
				if _, err := d.RequestPath(bs, clause); err != nil {
					break
				}
				n++
			}
			atomic.AddUint64(&total, n)
		}(i)
	}
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	after := d.Served()
	perShard := make([]uint64, len(after))
	for i := range after {
		perShard[i] = after[i] - before[i]
	}
	return Result{Requests: total, Elapsed: elapsed, PerShard: perShard, Mem: d.MemStats()}, nil
}

// SweepRow is one line of a shard-scaling sweep.
type SweepRow struct {
	Shards int
	Result Result
}

// ShardSweep measures the single-controller baseline, then the sharded
// dispatcher at each width, filling in Speedup relative to the baseline.
func ShardSweep(base ControllerOptions, widths []int) (Result, []SweepRow, error) {
	base = base.withDefaults()
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	baseline, err := BenchController(base)
	if err != nil {
		return Result{}, nil, err
	}
	rows := make([]SweepRow, 0, len(widths))
	for _, w := range widths {
		res, err := BenchShardedController(ShardedOptions{ControllerOptions: base, Shards: w})
		if err != nil {
			return baseline, rows, err
		}
		if baseline.PerSecond() > 0 {
			res.Speedup = res.PerSecond() / baseline.PerSecond()
		}
		rows = append(rows, SweepRow{Shards: w, Result: res})
	}
	return baseline, rows, nil
}

// FormatSweep renders a sweep as the table committed to results/.
func FormatSweep(baseline Result, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline (1 controller, no dispatcher): %s\n\n", baseline)
	fmt.Fprintf(&b, "%-8s %12s %12s %9s  %s\n", "shards", "requests", "req/s", "speedup", "per-shard")
	for _, r := range rows {
		per := make([]string, len(r.Result.PerShard))
		for i, n := range r.Result.PerShard {
			per[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "%-8d %12d %12.0f %8.2fx  [%s]\n",
			r.Shards, r.Result.Requests, r.Result.PerSecond(), r.Result.Speedup,
			strings.Join(per, " "))
	}
	return b.String()
}
