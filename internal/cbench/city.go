// City-scale soak benchmark (DESIGN.md §14): the §6.1 workload generator
// drives a sharded control plane sized like the paper's measured network —
// ~1500 base stations and a ~1M-subscriber population — for minutes of
// sustained arrival/handoff/bearer churn, and the report answers the
// memory-compaction question directly: live-heap bytes per subscriber under
// the struct-of-arrays layout, next to an emulation of the pre-compaction
// pointer-and-maps layout measured in the same process.
package cbench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/topo"
	"repro/internal/workload"
)

// CityOptions configure the city soak.
type CityOptions struct {
	// Stations is the base-station count; it must be expressible as
	// C·K³/4 for the topology generator (default 1536 = K=8, C=12 — the
	// closest generator point to the paper's ≈1500).
	Stations int
	// Shards is the control-plane partition width (default 4).
	Shards int
	// UEs is the subscriber population (default 1,000,000). The attached
	// population at any instant follows the workload model (§6.1: ~220K at
	// the evening peak); the rest are registered subscribers between
	// sessions.
	UEs int
	// SimSeconds is the minimum number of simulated workload seconds to
	// soak (default 300).
	SimSeconds int
	// MinWall keeps the soak looping (whole simulated seconds) until this
	// much wall clock has elapsed, whichever of SimSeconds/MinWall is
	// longer (default 0 — SimSeconds alone bounds the run).
	MinWall time.Duration
	// StartSecond is the diurnal clock offset (default 19h — the evening
	// peak, so short soaks see the high quantiles).
	StartSecond int
	Seed        int64
	// ReleaseAfter delays each handoff's old-LocIP release by this many
	// simulated seconds (default 2), modelling the §5.1 soft timeout.
	ReleaseAfter int
	// LegacySample is the UE count used to measure the pre-compaction
	// layout emulation (default 100,000, capped at UEs). 0 keeps the
	// default; negative skips the baseline measurement.
	LegacySample int
	// Obs instruments the stack under test; the final MemStats snapshot
	// also refreshes each shard's core.mem.* gauges.
	Obs *obs.Registry
}

func (o CityOptions) withDefaults() CityOptions {
	if o.Stations <= 0 {
		o.Stations = 1536
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.UEs <= 0 {
		o.UEs = 1_000_000
	}
	if o.SimSeconds <= 0 {
		o.SimSeconds = 300
	}
	if o.StartSecond == 0 {
		o.StartSecond = 19 * 3600
	}
	if o.ReleaseAfter <= 0 {
		o.ReleaseAfter = 2
	}
	if o.LegacySample == 0 {
		o.LegacySample = 100_000
	}
	if o.LegacySample > o.UEs {
		o.LegacySample = o.UEs
	}
	return o
}

// workloadParams scales the paper's network-wide rates (calibrated for
// ~1500 stations / ~1M subscribers) to the configured population, so a
// scaled-down smoke run keeps the same per-station intensity.
func (o CityOptions) workloadParams() workload.Params {
	scale := float64(o.Stations) / 1500
	return workload.Params{
		Stations:           o.Stations,
		StartSecond:        o.StartSecond,
		Seed:               o.Seed,
		PeakArrivalsPerSec: 206 * scale,
		PeakHandoffsPerSec: 275 * scale,
	}
}

// cityStoreReplicas pins each shard's §5.2 store replication (primary plus
// this many replicas) so the legacy-baseline emulation models the same
// durability — its documents are charged once per store member.
const cityStoreReplicas = 2

// cityPlan is the address/tag layout the city runs: the default carrier
// block and 12/12 BS/UE split, with the tag field widened to the full 12
// bits so the per-shard residue classes stay comfortable at any width.
func cityPlan() packet.Plan {
	pl := packet.DefaultPlan
	pl.TagBits = 12
	return pl
}

// cityTopoParams maps a station count onto generator parameters: the
// largest K in {8, 4, 2} whose K³/4 divides the count. 1536 → K=8 C=12;
// the smoke point 48 → K=4 C=3.
func cityTopoParams(stations int) (topo.GenParams, error) {
	for _, k := range []int{8, 4, 2} {
		rings := k * k / 2 * k / 2
		if stations >= rings && stations%rings == 0 {
			return topo.GenParams{K: k, ClusterSize: stations / rings, MBTypes: 3, Seed: 1}, nil
		}
	}
	return topo.GenParams{}, fmt.Errorf(
		"cbench: %d stations is not C·K³/4 for K in {8,4,2}; try 1536 (city) or 48 (smoke)", stations)
}

// ValidateCity checks, before anything is built, that the configured
// shard count and population fit the address plan's sub-spaces — turning
// what would be a mid-soak allocator failure into an immediate, explicit
// error naming the flag to change.
func ValidateCity(o CityOptions) error {
	o = o.withDefaults()
	pl := cityPlan()
	if _, err := cityTopoParams(o.Stations); err != nil {
		return err
	}

	// Per-shard tag sub-space: shard i allocates tags ≡ i (mod Shards), so
	// its capacity is the size of that residue class within [1, MaxTag].
	// Every allow clause needs at least one tag per shard, and route-shape
	// diversity (distinct middlebox chains per clause) multiplies that, so
	// demand 8× headroom.
	clauses := 0
	pol := policy.ExampleCarrierPolicy()
	for id := 0; id < pol.Len(); id++ {
		if cl, ok := pol.Clause(id); ok && cl.Action.Allow {
			clauses++
		}
	}
	tagCap := int(pl.MaxTag()) / o.Shards
	if need := clauses * 8; tagCap < need {
		return fmt.Errorf(
			"cbench: -shards %d leaves each shard %d policy tags of the plan's %d (residue class, stride %d), below the %d (= %d allow clauses × 8 headroom) the soak needs; lower -shards",
			o.Shards, tagCap, pl.MaxTag(), o.Shards, need, clauses)
	}

	// Per-station UE-ID sub-space: the workload's attached population
	// concentrates on popular stations; demand 4× the mean concurrent
	// per-station load (Fig. 6(b)'s tail is ≈3× the typical station).
	wp := o.workloadParams()
	concurrent := int(wp.PeakArrivalsPerSec * wp.MeanSessionSeconds)
	if concurrent > o.UEs {
		concurrent = o.UEs
	}
	ueCap := 1<<pl.UEBits - 1
	if need := 4 * (concurrent/o.Stations + 1); ueCap < need {
		return fmt.Errorf(
			"cbench: -ues %d across %d stations peaks near %d attached per popular station, but the plan encodes only %d UE IDs per station; lower -ues or raise -stations",
			o.UEs, o.Stations, need, ueCap)
	}

	// Per-shard permanent-IP sub-pool: permanent addresses are carved into
	// disjoint per-shard blocks and allocated on first attach; demand 2×
	// the mean per-shard share to absorb placement skew.
	permBits := 0
	for 1<<permBits < o.Shards {
		permBits++
	}
	permCap := 1 << (32 - 10 - permBits) // 100.64.0.0/10 pool
	if need := 2 * (o.UEs/o.Shards + 1); permCap < need {
		return fmt.Errorf(
			"cbench: -ues %d over %d shards needs ~%d permanent IPs per shard, but each shard's slice of 100.64.0.0/10 holds %d; lower -ues or -shards",
			o.UEs, o.Shards, need, permCap)
	}
	return nil
}

// CityResult is the BENCH_city.json payload.
type CityResult struct {
	// Configuration.
	Stations   int   `json:"stations"`
	Shards     int   `json:"shards"`
	UEs        int   `json:"ues"`
	Seed       int64 `json:"seed"`
	SimSeconds int   `json:"sim_seconds"` // simulated seconds actually soaked

	// Load phase: registering the population and attaching the initial
	// steady-state population.
	Registered    int     `json:"registered"`
	InitialAttach int     `json:"initial_attached"`
	LoadWallMS    int64   `json:"load_wall_ms"`
	LoadOpsPerSec float64 `json:"load_ops_per_sec"`

	// Soak phase: sustained churn, measured in wall time.
	SoakWallMS    int64   `json:"soak_wall_ms"`
	Arrivals      uint64  `json:"arrivals"`
	Handoffs      uint64  `json:"handoffs"`
	Departures    uint64  `json:"departures"`
	Bearers       uint64  `json:"bearers"`
	Releases      uint64  `json:"releases"`
	OpErrors      uint64  `json:"op_errors"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec"`
	HandoffsPerSec float64 `json:"handoffs_per_sec"`

	// Handoff completion latency over the soak (nanoseconds).
	HandoffP50NS float64 `json:"handoff_p50_ns"`
	HandoffP99NS float64 `json:"handoff_p99_ns"`
	HandoffMaxNS float64 `json:"handoff_max_ns"`

	// Rule-table occupancy at the end of the soak (hardware switches).
	RuleTableMax    int `json:"rule_table_max"`
	RuleTableMedian int `json:"rule_table_median"`
	RuleTableTotal  int `json:"rule_table_total"`

	// Memory: GC-settled live-heap growth across the load phase, divided
	// by the registered population, next to the measured pre-compaction
	// baseline emulation. AttachedBytesPerUE charges the whole delta to
	// the concurrently-attached population instead (the paper's ~220K).
	//
	// The comparison is fleet-to-fleet: BytesPerUE covers all Shards
	// controllers (each holds the full subscriber base — registrations
	// broadcast by dispatcher design — plus its replicated store), so the
	// baseline is the per-shard legacy emulation (one controller's maps,
	// heap records, and per-replica store documents) times Shards.
	LiveHeapBytes      uint64  `json:"live_heap_bytes"`
	BytesPerUE         float64 `json:"bytes_per_ue"`
	AttachedBytesPerUE float64 `json:"bytes_per_attached_ue"`
	LegacySample       int     `json:"legacy_sample"`
	LegacyBytesPerUE   float64 `json:"legacy_bytes_per_ue"`       // one pre-compaction controller + its store copies
	LegacyFleetPerUE   float64 `json:"legacy_fleet_bytes_per_ue"` // × Shards, the deployment BytesPerUE measures
	CompactionRatio    float64 `json:"compaction_ratio"`          // legacy fleet ÷ compacted bytes/UE

	// GC behaviour across the soak window.
	GCCount       uint32  `json:"gc_count"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	GCPauseMaxMS   float64 `json:"gc_pause_max_ms"`

	// Controller-internal accounting, aggregated across shards.
	Mem core.MemStats `json:"mem"`

	// Attribution is the per-layer critical-path waterfall over the soak's
	// sampled traces (DESIGN.md §16): handoffs root an e2e.handoff span
	// around exactly the region the latency CDF times, so within every
	// complete trace the segment self-times sum to the measured end-to-end
	// latency. Absent when the soak ran uninstrumented.
	Attribution *obs.Attribution `json:"attribution,omitempty"`
}

// legacyUE mirrors the pre-compaction per-UE controller state: one heap
// record per UE holding its attributes inline, indexed by three Go maps,
// with the replicated store keeping JSON-encoded copies. Building it for a
// sample population and reading the GC-settled heap delta measures what
// the struct-of-arrays layout replaced, in this process, on this
// allocator.
type legacyUE struct {
	IMSI   string
	Attr   policy.Attributes
	PermIP packet.Addr
	BS     packet.BSID
	UEID   packet.UEID
	LocIP  packet.Addr
}

// measureLegacyBaseline builds the legacy layout for n UEs and returns its
// GC-settled bytes per UE; everything it builds is garbage afterwards.
func measureLegacyBaseline(n, storeCopies int) float64 {
	if n <= 0 {
		return 0
	}
	if storeCopies < 1 {
		storeCopies = 1
	}
	before := liveHeap()
	byIMSI := make(map[string]*legacyUE, n)
	byPerm := make(map[packet.Addr]*legacyUE, n)
	byLoc := make(map[packet.Addr]*legacyUE, n)
	stores := make([]map[string][]byte, storeCopies)
	for c := range stores {
		stores[c] = make(map[string][]byte, n)
	}
	for i := 0; i < n; i++ {
		u := &legacyUE{
			IMSI:   fmt.Sprintf("imsi-%07d", i),
			Attr:   cityAttr(i),
			PermIP: packet.Addr(0x64400000 + uint32(i)),
			BS:     packet.BSID(i % 1536),
			UEID:   packet.UEID(i % 4096),
			LocIP:  packet.Addr(0x0A000000 + uint32(i)),
		}
		byIMSI[u.IMSI] = u
		byPerm[u.PermIP] = u
		byLoc[u.LocIP] = u
		// The old store kept encoding/json documents, ~190 bytes of JSON
		// per record (field names and quoted strings), and its replicas
		// each applied their own defensive copy of every committed value —
		// one document per store member, exactly as the pre-compaction
		// store.Replica.apply did.
		doc := fmt.Sprintf(
			`{"imsi":%q,"attr":{"provider":%q,"plan":%q,"device_type":%q,"roaming":%v,"over_cap":%v,"parental":%v},"perm_ip":%q,"bs":%d,"ueid":%d,"loc_ip":%q}`,
			u.IMSI, u.Attr.Provider, u.Attr.Plan, u.Attr.DeviceType,
			u.Attr.Roaming, u.Attr.OverCap, u.Attr.Parental,
			u.PermIP, u.BS, u.UEID, u.LocIP)
		for c := 0; c < storeCopies; c++ {
			stores[c]["ue/"+u.IMSI] = []byte(doc)
		}
	}
	perUE := float64(liveHeap()-before) / float64(n)
	// Keep every structure reachable until after the measurement.
	runtime.KeepAlive(byIMSI)
	runtime.KeepAlive(byPerm)
	runtime.KeepAlive(byLoc)
	runtime.KeepAlive(stores)
	return perUE
}

// liveHeap returns the GC-settled live-heap size.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// cityAttr draws a subscriber's attributes from a small set of profiles —
// a real carrier's population clusters onto far fewer distinct attribute
// combinations than it has subscribers, which is what makes the intern
// pool pay.
func cityAttr(i int) policy.Attributes {
	providers := [4]string{"carrier-a", "carrier-b", "mvno-c", "mvno-d"}
	plans := [3]string{"gold", "silver", "bronze"}
	devices := [3]string{"phone", "tablet", "m2m"}
	return policy.Attributes{
		Provider:   providers[i%4],
		Plan:       plans[(i/4)%3],
		DeviceType: devices[(i/12)%3],
		Roaming:    i%17 == 0,
	}
}

// pendingRelease is one handoff's deferred old-LocIP release.
type pendingRelease struct {
	due       int // simulated second
	shard     *shard.Shard
	oldLoc    packet.Addr
	shortcuts []*core.Shortcut
}

// BenchCity runs the city soak.
func BenchCity(opts CityOptions) (CityResult, error) {
	opts = opts.withDefaults()
	if err := ValidateCity(opts); err != nil {
		return CityResult{}, err
	}
	res := CityResult{
		Stations: opts.Stations, Shards: opts.Shards, UEs: opts.UEs, Seed: opts.Seed,
		LegacySample: opts.LegacySample,
	}

	// Measure the pre-compaction layout first, while the heap is small;
	// it is garbage before the real control plane is built.
	if opts.LegacySample > 0 {
		res.LegacyBytesPerUE = measureLegacyBaseline(opts.LegacySample, 1+cityStoreReplicas)
	} else {
		res.LegacySample = 0
	}

	gp, err := cityTopoParams(opts.Stations)
	if err != nil {
		return res, err
	}
	g, err := topo.Generate(gp)
	if err != nil {
		return res, err
	}
	pol := policy.ExampleCarrierPolicy()
	d, err := shard.New(shard.Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   pol,
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards:   opts.Shards,
		Replicas: cityStoreReplicas,
		Plan:     cityPlan(),
		Obs:      opts.Obs,
	})
	if err != nil {
		return res, err
	}
	defer d.Close()
	var clauses []int
	for id := 0; id < pol.Len(); id++ {
		if cl, ok := pol.Clause(id); ok && cl.Action.Allow {
			clauses = append(clauses, id)
		}
	}

	heapBase := liveHeap()
	loadStart := time.Now()

	// Register the full subscriber population. IMSIs are materialised once
	// here and reused for every later operation.
	imsis := make([]string, opts.UEs)
	for i := range imsis {
		imsis[i] = fmt.Sprintf("imsi-%07d", i)
		if err := d.RegisterSubscriber(imsis[i], cityAttr(i)); err != nil {
			return res, fmt.Errorf("cbench: register %s: %w", imsis[i], err)
		}
	}
	res.Registered = opts.UEs

	// Pre-warm every (station, clause) path so the soak measures
	// steady-state request handling, then attach the diurnal steady-state
	// population at the stations the workload model chose for it.
	for bs := 0; bs < opts.Stations; bs++ {
		for _, c := range clauses {
			if _, err := d.RequestPath(packet.BSID(bs), c); err != nil {
				return res, fmt.Errorf("cbench: warm bs %d clause %d: %w", bs, c, err)
			}
		}
	}
	stream := workload.NewStream(opts.workloadParams())
	initial := stream.InitialPopulation()
	if len(initial) > opts.UEs {
		initial = initial[:opts.UEs]
	}
	// attachedAt[bs] lists attached UE indices; detached is a LIFO of
	// indices between sessions; UEs ≥ nextFresh have never attached.
	attachedAt := make([][]int, opts.Stations)
	var detached []int
	nextFresh := 0
	attach := func(ue, bs int) error {
		if _, _, err := d.Attach(imsis[ue], packet.BSID(bs)); err != nil {
			return err
		}
		attachedAt[bs] = append(attachedAt[bs], ue)
		return nil
	}
	for _, bs := range initial {
		if nextFresh >= opts.UEs {
			break
		}
		if err := attach(nextFresh, bs); err != nil {
			return res, fmt.Errorf("cbench: initial attach: %w", err)
		}
		nextFresh++
	}
	res.InitialAttach = nextFresh
	res.LoadWallMS = time.Since(loadStart).Milliseconds()
	if res.LoadWallMS > 0 {
		res.LoadOpsPerSec = float64(opts.UEs+nextFresh) / (float64(res.LoadWallMS) / 1000)
	}

	// The compaction claim, measured: GC-settled heap growth across the
	// load phase over the registered population.
	res.LiveHeapBytes = liveHeap() - heapBase
	res.BytesPerUE = float64(res.LiveHeapBytes) / float64(opts.UEs)
	if res.InitialAttach > 0 {
		res.AttachedBytesPerUE = float64(res.LiveHeapBytes) / float64(res.InitialAttach)
	}
	if res.BytesPerUE > 0 && res.LegacyBytesPerUE > 0 {
		// Fleet-to-fleet: every shard holds the full subscriber base
		// (broadcast registration) under either layout, so the deployment
		// BytesPerUE measures is Shards pre-compaction controllers' worth.
		res.LegacyFleetPerUE = res.LegacyBytesPerUE * float64(opts.Shards)
		res.CompactionRatio = res.LegacyFleetPerUE / res.BytesPerUE
	}

	// Soak. Single-threaded event application in workload order keeps the
	// run deterministic for a fixed SimSeconds; MinWall extends it by
	// whole simulated seconds.
	var gcBefore runtime.MemStats
	runtime.ReadMemStats(&gcBefore)
	var handoffLat metrics.CDF
	var releases []pendingRelease
	// The e2e root spans bracket the same code region the latency CDF
	// times, so a sampled trace's root duration is the measured latency.
	spE2E := opts.Obs.SpanName("e2e.handoff")
	soakStart := time.Now()
	sec := 0
	for ; sec < opts.SimSeconds || time.Since(soakStart) < opts.MinWall; sec++ {
		ev := stream.Next()

		for _, bs := range ev.Arrivals {
			var ue int
			if n := len(detached); n > 0 {
				ue = detached[n-1]
				detached = detached[:n-1]
			} else if nextFresh < opts.UEs {
				ue = nextFresh
				nextFresh++
			} else {
				continue // whole population already attached
			}
			if err := attach(ue, bs); err != nil {
				res.OpErrors++
				continue
			}
			res.Arrivals++
		}

		for _, ho := range ev.Handoffs {
			src, dst := ho[0], ho[1]
			l := attachedAt[src]
			if len(l) == 0 {
				continue // model and plant disagree; nothing to move
			}
			ue := l[len(l)-1]
			t0 := time.Now()
			sp := spE2E.Root()
			hr, err := d.HandoffCtx(sp.Context(), imsis[ue], packet.BSID(dst))
			sp.End()
			if err != nil {
				res.OpErrors++
				continue
			}
			handoffLat.Add(float64(time.Since(t0)))
			attachedAt[src] = l[:len(l)-1]
			attachedAt[dst] = append(attachedAt[dst], ue)
			res.Handoffs++
			if hr.OldLocIP != 0 && len(hr.Shortcuts) > 0 {
				if s, err := d.ShardOf(packet.BSID(dst)); err == nil {
					releases = append(releases, pendingRelease{
						due: sec + opts.ReleaseAfter, shard: s,
						oldLoc: hr.OldLocIP, shortcuts: hr.Shortcuts,
					})
				}
			}
		}

		for _, bs := range ev.Departures {
			l := attachedAt[bs]
			if len(l) == 0 {
				continue
			}
			ue := l[len(l)-1]
			if err := d.Detach(imsis[ue]); err != nil {
				res.OpErrors++
				continue
			}
			attachedAt[bs] = l[:len(l)-1]
			detached = append(detached, ue)
			res.Departures++
		}

		for bs, n := range ev.Bearers {
			for i := 0; i < n; i++ {
				if _, err := d.RequestPath(packet.BSID(bs), clauses[(bs+i)%len(clauses)]); err != nil {
					res.OpErrors++
					continue
				}
				res.Bearers++
			}
		}

		// Expire the §5.1 soft timeouts that have come due.
		kept := releases[:0]
		for _, r := range releases {
			if r.due > sec {
				kept = append(kept, r)
				continue
			}
			r.shard.Ctrl.ReleaseOldLocIP(r.oldLoc, r.shortcuts)
			res.Releases++
		}
		releases = kept
	}
	// Drain the remaining reservations so the final invariant check sees
	// a quiescent plant.
	for _, r := range releases {
		r.shard.Ctrl.ReleaseOldLocIP(r.oldLoc, r.shortcuts)
		res.Releases++
	}
	soakWall := time.Since(soakStart)
	res.SimSeconds = sec
	res.SoakWallMS = soakWall.Milliseconds()
	if s := soakWall.Seconds(); s > 0 {
		ops := res.Arrivals + res.Handoffs + res.Departures + res.Bearers
		res.OpsPerSec = float64(ops) / s
		res.ArrivalsPerSec = float64(res.Arrivals) / s
		res.HandoffsPerSec = float64(res.Handoffs) / s
	}
	res.HandoffP50NS = handoffLat.Quantile(0.5)
	res.HandoffP99NS = handoffLat.Quantile(0.99)
	res.HandoffMaxNS = handoffLat.Max()

	var gcAfter runtime.MemStats
	runtime.ReadMemStats(&gcAfter)
	res.GCCount = gcAfter.NumGC - gcBefore.NumGC
	res.GCPauseTotalMS = float64(gcAfter.PauseTotalNs-gcBefore.PauseTotalNs) / 1e6
	for n := gcBefore.NumGC; n < gcAfter.NumGC && n < gcBefore.NumGC+256; n++ {
		if p := float64(gcAfter.PauseNs[(n+255)%256]) / 1e6; p > res.GCPauseMaxMS {
			res.GCPauseMaxMS = p
		}
	}

	// Final cross-shard invariant sweep: a soak that corrupted state does
	// not get to report numbers.
	if _, err := d.CheckInvariants(); err != nil {
		return res, fmt.Errorf("cbench: post-soak invariant violation: %w", err)
	}

	var hw metrics.IntSummary
	for _, s := range d.Shards() {
		h, _ := s.Ctrl.Installer.TableSizes()
		hw.Merge(h)
	}
	res.RuleTableMax = hw.Max()
	res.RuleTableMedian = hw.Median()
	res.RuleTableTotal = hw.Total()
	res.Mem = d.MemStats()
	if opts.Obs != nil {
		a := obs.Attribute(opts.Obs.SpanRecords())
		res.Attribution = &a
	}
	return res, nil
}
