package cbench

import (
	"strings"
	"testing"
	"time"
)

func TestDurationDefaultAppliedInBothPaths(t *testing.T) {
	// The "default 1s" promise lives in one place and both benchmark entry
	// points go through it.
	if got := (ControllerOptions{}).withDefaults(); got.Duration != time.Second ||
		got.Agents != 16 || got.Workers != 1 {
		t.Fatalf("ControllerOptions defaults = %+v", got)
	}
	so := (ShardedOptions{}).withDefaults()
	if so.Duration != time.Second || so.Agents != 16 || so.Workers != 1 || so.Shards != 4 {
		t.Fatalf("ShardedOptions defaults = %+v", so)
	}
	// Explicit values survive defaulting.
	kept := (ShardedOptions{
		ControllerOptions: ControllerOptions{Duration: 50 * time.Millisecond, Agents: 2},
		Shards:            2,
	}).withDefaults()
	if kept.Duration != 50*time.Millisecond || kept.Agents != 2 || kept.Shards != 2 {
		t.Fatalf("explicit options clobbered: %+v", kept)
	}
}

func TestBenchShardedController(t *testing.T) {
	res, err := BenchShardedController(ShardedOptions{
		ControllerOptions: ControllerOptions{Agents: 4, Duration: 100 * time.Millisecond},
		Shards:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests processed")
	}
	if len(res.PerShard) != 2 {
		t.Fatalf("PerShard has %d entries, want 2", len(res.PerShard))
	}
	var sum uint64
	for _, n := range res.PerShard {
		sum += n
	}
	// The dispatcher's served counters must account for every completed
	// request (warm-up is excluded by the before/after snapshot).
	if sum < res.Requests {
		t.Fatalf("per-shard counts sum to %d but %d requests completed", sum, res.Requests)
	}
	if !strings.Contains(res.String(), "per-shard") {
		t.Fatalf("render lacks per-shard column: %s", res)
	}
}

func TestShardSweepComputesSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	base := ControllerOptions{Agents: 4, Duration: 80 * time.Millisecond}
	baseline, rows, err := ShardSweep(base, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Requests == 0 || len(rows) != 2 {
		t.Fatalf("sweep: baseline %v, %d rows", baseline, len(rows))
	}
	for _, r := range rows {
		if r.Result.Speedup <= 0 {
			t.Fatalf("row %d has no speedup: %+v", r.Shards, r.Result)
		}
		if len(r.Result.PerShard) != r.Shards {
			t.Fatalf("row %d has %d per-shard entries", r.Shards, len(r.Result.PerShard))
		}
	}
	out := FormatSweep(baseline, rows)
	for _, want := range []string{"baseline", "shards", "speedup", "per-shard"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep table lacks %q:\n%s", want, out)
		}
	}
}
