// Package cbench is the reproduction's Cbench [27] equivalent (§6.2): it
// emulates a population of local agents hammering the central controller
// with packet-classifier/path requests and measures sustained throughput,
// and it measures a single local agent's flow-handling throughput as a
// function of its classifier-cache hit ratio (Table 2).
package cbench

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/ctrlproto"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/switchsim"
	"repro/internal/topo"
)

// ControllerOptions configure the central-controller throughput benchmark.
type ControllerOptions struct {
	// Agents is the number of emulated agent connections (the paper: 1000
	// emulated switches).
	Agents int
	// Workers is the number of concurrent requests each connection keeps in
	// flight — together with GOMAXPROCS this plays the role of the paper's
	// controller thread count.
	Workers int
	// Duration bounds the measurement (default 1s).
	Duration time.Duration
	// OverWire routes requests through the ctrlproto framing over net.Pipe;
	// false measures the controller's in-process request path only.
	OverWire bool
	// Obs, when set, instruments the controller (and the wire when
	// OverWire) so the caller can embed a telemetry snapshot in its
	// report. Nil benchmarks the uninstrumented baseline.
	Obs *obs.Registry
}

// withDefaults fills the zero values. Every benchmark entry point applies
// it, so a zero ControllerOptions always measures 16 agents × 1 worker for
// one second.
func (o ControllerOptions) withDefaults() ControllerOptions {
	if o.Agents <= 0 {
		o.Agents = 16
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	return o
}

// Result reports a throughput measurement.
type Result struct {
	Requests uint64
	Elapsed  time.Duration

	// AllocsPerOp is heap allocations per completed request, measured as
	// the runtime's malloc-count delta across the run divided by Requests.
	// The whole process is counted, so wire-mode numbers include framing;
	// the in-process number isolates the controller fast path.
	AllocsPerOp float64

	// PerShard holds per-shard completed-request counts when the sharded
	// benchmark produced the result (empty for single-controller runs).
	PerShard []uint64
	// Speedup is throughput relative to the single-controller baseline
	// measured in the same sweep (0 when no baseline was taken).
	Speedup float64

	// Mem is the controller's (or, sharded, the aggregated fleet's)
	// end-of-run memory accounting; every BENCH_*.json embeds it.
	Mem core.MemStats
}

// PerSecond is the headline number.
func (r Result) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

func (r Result) String() string {
	s := fmt.Sprintf("%d requests in %v (%.0f/s)", r.Requests, r.Elapsed.Round(time.Millisecond), r.PerSecond())
	if len(r.PerShard) > 0 {
		s += " per-shard ["
		for i, n := range r.PerShard {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("%d", n)
		}
		s += "]"
	}
	if r.Speedup > 0 {
		s += fmt.Sprintf(" speedup %.2fx", r.Speedup)
	}
	return s
}

// testbed is the shared fixture: a k=4 generated network with a controller
// running the Table 1 policy and all policy paths pre-installed, so the
// benchmark measures steady-state request handling (like Cbench's packet-in
// storm against a warmed controller).
type testbed struct {
	ctrl    *core.Controller
	clauses []int
	nBS     int
}

func newTestbed(reg *obs.Registry) (*testbed, error) {
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 3, Seed: 1})
	if err != nil {
		return nil, err
	}
	pol := policy.ExampleCarrierPolicy()
	ctrl, err := core.NewController(g.Topology, core.ControllerConfig{
		Gateway: g.GatewayID,
		Policy:  pol,
		Obs:     reg,
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
	})
	if err != nil {
		return nil, err
	}
	tb := &testbed{ctrl: ctrl, nBS: len(g.Stations)}
	for id := 0; id < pol.Len(); id++ {
		cl, _ := pol.Clause(id)
		if cl.Action.Allow {
			tb.clauses = append(tb.clauses, id)
		}
	}
	// Warm every (station, clause) path once.
	for bs := 0; bs < tb.nBS; bs++ {
		for _, c := range tb.clauses {
			if _, err := ctrl.RequestPath(packet.BSID(bs), c); err != nil {
				return nil, err
			}
		}
	}
	return tb, nil
}

// BenchController runs the §6.2 central-controller micro-benchmark.
func BenchController(opts ControllerOptions) (Result, error) {
	opts = opts.withDefaults()
	tb, err := newTestbed(opts.Obs)
	if err != nil {
		return Result{}, err
	}

	var stop atomic.Bool
	var total uint64
	var wg sync.WaitGroup
	start := time.Now()

	// Each request roots a bench.op span under the registry's sampling
	// knob: the sampled few carry their context through the wire (or the
	// in-process call) and come back as complete traces for attribution.
	rootSp := opts.Obs.SpanName("bench.op")
	runLoop := func(id int, ask func(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error)) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(id)))
		var n uint64
		for !stop.Load() {
			bs := packet.BSID(rng.Intn(tb.nBS))
			clause := tb.clauses[rng.Intn(len(tb.clauses))]
			sp := rootSp.Root()
			_, err := ask(sp.Context(), bs, clause)
			sp.End()
			if err != nil {
				break
			}
			n++
		}
		atomic.AddUint64(&total, n)
	}

	if opts.OverWire {
		srv := ctrlproto.NewServer(tb.ctrl)
		srv.Instrument(opts.Obs)
		clients := make([]*ctrlproto.Client, opts.Agents)
		for i := range clients {
			a, b := net.Pipe()
			go srv.ServeConn(a)
			clients[i] = ctrlproto.NewClient(b)
			clients[i].Instrument(opts.Obs)
		}
		defer func() {
			for _, c := range clients {
				_ = c.Close()
			}
		}()
		for i, c := range clients {
			for w := 0; w < opts.Workers; w++ {
				wg.Add(1)
				go runLoop(i*opts.Workers+w, c.RequestPathCtx)
			}
		}
	} else {
		for i := 0; i < opts.Agents*opts.Workers; i++ {
			wg.Add(1)
			go runLoop(i, tb.ctrl.RequestPathCtx)
		}
	}

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	res := Result{Requests: total, Elapsed: elapsed, Mem: tb.ctrl.MemStats()}
	if total > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(total)
	}
	return res, nil
}

// AgentOptions configure the Table 2 local-agent benchmark.
type AgentOptions struct {
	// HitRatio is the classifier-cache hit fraction (1, 0.99, 0.9, 0.8, 0 in
	// Table 2).
	HitRatio float64
	// Flows is the number of new-flow arrivals to process (default 20000;
	// low hit ratios use fewer because each miss costs a controller RTT).
	Flows int
	// ControllerRTT simulates the network+processing round trip a cache
	// miss pays (default 500µs, a LAN RTT plus controller work — the knob
	// that separates Table 2's rows, not an absolute claim).
	ControllerRTT time.Duration
	// Obs, when set, instruments the agent under test.
	Obs *obs.Registry
}

// BenchAgent measures one local agent's new-flow throughput at a fixed
// classifier-cache hit ratio (Table 2).
func BenchAgent(opts AgentOptions) (Result, error) {
	if opts.Flows <= 0 {
		opts.Flows = 20000
	}
	if opts.ControllerRTT <= 0 {
		opts.ControllerRTT = 500 * time.Microsecond
	}
	ctrl := &latencyController{rtt: opts.ControllerRTT}
	plan := packet.DefaultPlan
	sw := switchsim.NewSwitch("bench-as")
	ag := agent.New(1, sw, plan, ctrl)
	ag.Instrument(opts.Obs)

	// One UE per few flows, all with a resolvable web classifier.
	loc, err := plan.LocIP(1, 1)
	if err != nil {
		return Result{}, err
	}
	ue := core.UE{IMSI: "bench", PermIP: packet.AddrFrom4(100, 64, 9, 9), BS: 1, UEID: 1, LocIP: loc}
	admit := func(tag packet.Tag) error {
		return ag.AdmitUE(ue, []core.Classifier{{App: policy.AppWeb, Clause: 1, Tag: tag, Allow: true}})
	}
	if err := admit(1); err != nil {
		return Result{}, err
	}

	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for i := 0; i < opts.Flows; i++ {
		if rng.Float64() >= opts.HitRatio {
			// Force a miss: invalidate the cached tag so this flow pays the
			// controller round trip, exactly the Table 2 ratio semantics.
			if err := ag.UpdateClassifiers(ue.PermIP, []core.Classifier{
				{App: policy.AppWeb, Clause: 1, Tag: 0, Allow: true}}); err != nil {
				return Result{}, err
			}
		}
		p := &packet.Packet{
			Src: ue.PermIP, Dst: packet.Addr(0x08080808 + uint32(i)),
			SrcPort: uint16(20000 + i%2000), DstPort: 80, Proto: packet.ProtoTCP,
		}
		if _, err := ag.HandlePacketIn(p); err != nil {
			return Result{}, err
		}
	}
	return Result{Requests: uint64(opts.Flows), Elapsed: time.Since(start)}, nil
}

// latencyController answers path requests after a simulated RTT.
type latencyController struct {
	rtt      time.Duration
	requests uint64
}

func (l *latencyController) RequestPath(bs packet.BSID, clause int) (packet.Tag, error) {
	atomic.AddUint64(&l.requests, 1)
	time.Sleep(l.rtt)
	return 1, nil
}
