package cbench

import (
	"strings"
	"testing"
)

// TestValidateCityFailsFast pins the up-front sub-space validation: a
// configuration whose shard count or population cannot fit the address
// plan must be rejected with an error naming the flag to change, before
// anything is built — not discovered as an allocator panic minutes into
// a soak.
func TestValidateCityFailsFast(t *testing.T) {
	cases := []struct {
		name string
		opts CityOptions
		want string // substring of the error; "" = must pass
	}{
		{"defaults", CityOptions{}, ""},
		{"smoke scale", CityOptions{Stations: 48, Shards: 2, UEs: 20000}, ""},
		{"too many shards for the tag space", CityOptions{Shards: 1024}, "policy tags"},
		{"stations not generator-shaped", CityOptions{Stations: 49}, "stations"},
		{"population overflows per-shard perm pool", CityOptions{UEs: 4_000_000}, "permanent IPs"},
	}
	for _, tc := range cases {
		err := ValidateCity(tc.opts)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validation passed, want error mentioning %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCitySoakSmokeDeterministic runs the city soak at test scale twice
// with the same seed and checks (a) it completes cleanly with the
// population accounted for, and (b) every simulation-determined quantity
// — event counts, memory accounting, rule-table shape — is identical
// across runs. Wall-clock-derived fields (rates, latencies) are excluded;
// everything the workload stream decides must replay byte for byte.
func TestCitySoakSmokeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("city smoke builds a 48-station plant")
	}
	run := func() CityResult {
		t.Helper()
		res, err := BenchCity(CityOptions{
			Stations: 48, Shards: 2, UEs: 2000,
			SimSeconds: 3, Seed: 7, LegacySample: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.Registered != 2000 {
		t.Fatalf("registered %d subscribers, want 2000", a.Registered)
	}
	if a.OpErrors != 0 {
		t.Fatalf("%d op errors in smoke soak", a.OpErrors)
	}
	if a.InitialAttach == 0 || a.Arrivals == 0 || a.Handoffs == 0 {
		t.Fatalf("soak did not exercise the workload: %+v", a)
	}
	// Subscriber records broadcast to every shard by design.
	if a.Mem.Subscribers != 2000*2 {
		t.Fatalf("fleet holds %d subscriber records, want %d", a.Mem.Subscribers, 2000*2)
	}
	if a.Mem.Attached == 0 || a.LiveHeapBytes == 0 {
		t.Fatalf("memory accounting empty: %+v", a.Mem)
	}

	b := run()
	type detKey struct {
		initial               int
		arr, ho, dep          uint64
		bear, rel, errs       uint64
		attached, subs, paths int
		ruleMax               int
	}
	key := func(r CityResult) detKey {
		return detKey{
			initial: r.InitialAttach, arr: r.Arrivals, ho: r.Handoffs,
			dep: r.Departures, bear: r.Bearers, rel: r.Releases, errs: r.OpErrors,
			attached: r.Mem.Attached, subs: r.Mem.Subscribers, paths: r.Mem.Paths,
			ruleMax: r.RuleTableMax,
		}
	}
	if key(a) != key(b) {
		t.Fatalf("same-seed soak diverged:\n  a: %+v\n  b: %+v", key(a), key(b))
	}
}
