package cbench

import (
	"testing"
	"time"
)

func TestBenchControllerInProcess(t *testing.T) {
	res, err := BenchController(ControllerOptions{
		Agents: 4, Workers: 1, Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests processed")
	}
	if res.PerSecond() <= 0 {
		t.Fatal("rate not positive")
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestBenchControllerOverWire(t *testing.T) {
	res, err := BenchController(ControllerOptions{
		Agents: 2, Workers: 2, Duration: 100 * time.Millisecond, OverWire: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests over the wire")
	}
}

func TestBenchAgentHitRatioOrdering(t *testing.T) {
	fast, err := BenchAgent(AgentOptions{HitRatio: 1, Flows: 3000, ControllerRTT: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := BenchAgent(AgentOptions{HitRatio: 0, Flows: 300, ControllerRTT: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.PerSecond() > 2*slow.PerSecond()) {
		t.Fatalf("hit ratio should dominate: 100%%=%.0f/s 0%%=%.0f/s",
			fast.PerSecond(), slow.PerSecond())
	}
}

func TestBenchAgentMonotoneInHitRatio(t *testing.T) {
	rates := make([]float64, 0, 3)
	for _, h := range []float64{0, 0.9, 1} {
		flows := 400
		if h == 1 {
			flows = 4000
		}
		res, err := BenchAgent(AgentOptions{HitRatio: h, Flows: flows, ControllerRTT: 300 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, res.PerSecond())
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Fatalf("rates not monotone in hit ratio: %v", rates)
	}
}

func TestZeroValueDefaults(t *testing.T) {
	res, err := BenchController(ControllerOptions{Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("defaults produced no work")
	}
	if (Result{}).PerSecond() != 0 {
		t.Fatal("zero result rate")
	}
}
