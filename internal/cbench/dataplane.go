package cbench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/mbox"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// DataplaneOptions configure one forwarding-plane throughput point.
type DataplaneOptions struct {
	// Flows is the number of warmed (microflow-installed) upstream flows
	// the generators cycle through (default 64).
	Flows int
	// Burst is the packets-per-burst of the fast path; 0 measures the
	// single-packet SendUpstream baseline instead.
	Burst int
	// Workers is the number of engine workers and concurrent generators
	// (default 1).
	Workers int
	// Duration bounds the measurement (default 1s).
	Duration time.Duration
	// Obs, when set, instruments the network and fast path.
	Obs *obs.Registry
}

func (o DataplaneOptions) withDefaults() DataplaneOptions {
	if o.Flows <= 0 {
		o.Flows = 64
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	return o
}

// DataplaneResult is one measured throughput point.
type DataplaneResult struct {
	Packets uint64
	Elapsed time.Duration
	// AllocsPerPacket is the whole-process malloc-count delta divided by
	// packets forwarded; the burst path's steady state should hold this
	// near zero.
	AllocsPerPacket float64

	// Mem is the testbed controller's end-of-run memory accounting.
	Mem core.MemStats
}

// PerSecond is the headline packets-per-second number.
func (r DataplaneResult) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds()
}

// dataplaneBed is a middlebox-free line network (gateway - core - access)
// under a pure-allow policy with Flows warmed upstream flows, so the
// measurement sees steady-state forwarding only: every packet rides
// microflow + TCAM state end to end with no punts and no slow-path
// elements in the path.
type dataplaneBed struct {
	net  *dataplane.Network
	ctrl *core.Controller
	bs   packet.BSID
	tmpl []packet.Packet // pre-walk header templates, one per flow
}

func newDataplaneBed(flows int, reg *obs.Registry) (*dataplaneBed, error) {
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	cs := tp.AddNode(topo.Core, "cs")
	as := tp.AddNode(topo.Access, "as")
	if err := tp.AddBaseStation(0, as); err != nil {
		return nil, err
	}
	if err := tp.Connect(gw, cs); err != nil {
		return nil, err
	}
	if err := tp.Connect(cs, as); err != nil {
		return nil, err
	}
	pol := &policy.Policy{}
	pol.Add(policy.Clause{Priority: 10, Name: "allow-A",
		Pred: policy.Attr(policy.FieldProvider, "A"), Action: policy.Via()})
	ctrl, err := core.NewController(tp, core.ControllerConfig{Gateway: gw, Policy: pol})
	if err != nil {
		return nil, err
	}
	mreg := mbox.NewRegistry(ctrl.Plan(), packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24))
	net, err := dataplane.New(ctrl, dataplane.Config{Registry: mreg})
	if err != nil {
		return nil, err
	}
	net.Instrument(reg)
	if err := ctrl.RegisterSubscriber("bench", policy.Attributes{Provider: "A"}); err != nil {
		return nil, err
	}
	ue, err := net.Attach("bench", 0)
	if err != nil {
		return nil, err
	}
	bed := &dataplaneBed{net: net, ctrl: ctrl, bs: 0, tmpl: make([]packet.Packet, flows)}
	for i := range bed.tmpl {
		bed.tmpl[i] = packet.Packet{
			Src: ue.PermIP, Dst: packet.AddrFrom4(93, 184, 216, 34),
			SrcPort: uint16(40000 + i), DstPort: 80, Proto: packet.ProtoTCP, TTL: 64,
		}
		// Prime on a copy: the walk rewrites headers in place, and the
		// template must stay the pre-walk header every iteration replays.
		p := bed.tmpl[i]
		res, err := net.SendUpstream(0, &p)
		if err != nil {
			return nil, err
		}
		if res.Disposition != dataplane.ExitedNet {
			return nil, fmt.Errorf("cbench: warm flow %d ended %s, want exited", i, res.Disposition)
		}
	}
	return bed, nil
}

// BenchDataplane measures forwarding-plane throughput for one
// configuration: the burst fast path when opts.Burst > 0, the
// single-packet SendUpstream baseline otherwise.
func BenchDataplane(opts DataplaneOptions) (DataplaneResult, error) {
	opts = opts.withDefaults()
	bed, err := newDataplaneBed(opts.Flows, opts.Obs)
	if err != nil {
		return DataplaneResult{}, err
	}
	if opts.Burst > 0 {
		bed.net.EnableFastPath(opts.Workers)
		defer bed.net.DisableFastPath()
	}

	var stop atomic.Bool
	var total uint64
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}
	var wg sync.WaitGroup

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			if opts.Burst > 0 {
				bed.runBurst(opts.Burst, off, &stop, &total, fail)
			} else {
				bed.runSingle(off, &stop, &total, fail)
			}
		}(w * 17)
	}
	time.Sleep(opts.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	if ep := firstErr.Load(); ep != nil {
		return DataplaneResult{}, *ep
	}
	res := DataplaneResult{Packets: atomic.LoadUint64(&total), Elapsed: elapsed, Mem: bed.ctrl.MemStats()}
	if res.Packets > 0 {
		res.AllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(res.Packets)
	}
	return res, nil
}

// runSingle drives the per-packet baseline: one SendUpstream per packet,
// header reset from the flow template each iteration.
func (b *dataplaneBed) runSingle(off int, stop *atomic.Bool, total *uint64, fail func(error)) {
	var p packet.Packet
	var n uint64
	for i := off % len(b.tmpl); !stop.Load(); {
		p = b.tmpl[i]
		if i++; i == len(b.tmpl) {
			i = 0
		}
		res, err := b.net.SendUpstream(b.bs, &p)
		if err != nil {
			fail(err)
			return
		}
		if res.Disposition != dataplane.ExitedNet {
			fail(fmt.Errorf("cbench: warmed packet ended %s", res.Disposition))
			return
		}
		n++
	}
	atomic.AddUint64(total, n)
}

// runBurst drives the fast path: bursts of size burst, headers reset from
// the flow templates, reusing the sender's scratch throughout.
func (b *dataplaneBed) runBurst(burst, off int, stop *atomic.Bool, total *uint64, fail func(error)) {
	sender, err := b.net.NewBurstSender()
	if err != nil {
		fail(err)
		return
	}
	backing := make([]packet.Packet, burst)
	pkts := make([]*packet.Packet, burst)
	for i := range pkts {
		pkts[i] = &backing[i]
	}
	out := make([]dataplane.BurstOutcome, burst)
	var n uint64
	for i := off % len(b.tmpl); !stop.Load(); {
		for j := range backing {
			backing[j] = b.tmpl[i]
			if i++; i == len(b.tmpl) {
				i = 0
			}
		}
		out, err = sender.Send(b.bs, pkts, out)
		if err != nil {
			fail(err)
			return
		}
		for j := range out {
			if out[j].Disposition != dataplane.ExitedNet || out[j].Slow {
				fail(fmt.Errorf("cbench: burst packet ended %s (slow=%v) on a warmed flow", out[j].Disposition, out[j].Slow))
				return
			}
		}
		n += uint64(burst)
	}
	atomic.AddUint64(total, n)
}
