package simexp

import (
	"math/rand"
	"testing"

	"repro/internal/topo"
)

// small is a fast configuration exercising the full pipeline.
func small() Params { return Params{K: 4, N: 20, M: 3, Seed: 1} }

func TestRunBasics(t *testing.T) {
	r, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseStations != 160 {
		t.Fatalf("base stations = %d", r.BaseStations)
	}
	if r.PathsInstalled != uint64(160*20) {
		t.Fatalf("paths = %d", r.PathsInstalled)
	}
	if r.Max < r.Median || r.Max == 0 {
		t.Fatalf("max=%d median=%d", r.Max, r.Median)
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Max != b.Max || a.Median != b.Median || a.TagsAllocated != b.TagsAllocated {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestRunScalesLinearlyInN(t *testing.T) {
	small1, err := Run(Params{K: 4, N: 10, M: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Params{K: 4, N: 40, M: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.Mean) / float64(small1.Mean)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("mean grew %.1fx for 4x clauses (want roughly linear)", ratio)
	}
}

func TestStationStrideReducesWork(t *testing.T) {
	full, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	p := small()
	p.StationStride = 4
	quarter, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if quarter.PathsInstalled*4 != full.PathsInstalled {
		t.Fatalf("stride 4: %d paths vs %d", quarter.PathsInstalled, full.PathsInstalled)
	}
}

func TestBothDirectionsCostMore(t *testing.T) {
	down, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	p := small()
	p.BothDirections = true
	both, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if both.Mean <= down.Mean {
		t.Fatalf("both-direction install should cost more: %v vs %v", both.Mean, down.Mean)
	}
}

func TestAblationsOrdering(t *testing.T) {
	var rs []AblationResult
	if err := Ablations(small(), func(r AblationResult) { rs = append(rs, r) }); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("ablation count = %d", len(rs))
	}
	full := rs[0]
	if full.Name != "full" {
		t.Fatalf("first ablation = %s", full.Name)
	}
	for _, r := range rs[1:] {
		// At this tiny n the no-location ablation can edge out the full
		// design (the bootstrapped location table is a constant overhead
		// that pays off as n grows — the n=1000 ablation run in
		// EXPERIMENTS.md shows the crossover); everything else must lose
		// outright even here.
		slack := full.Mean * 0.99
		if r.Name == "no-location-routing" {
			slack = full.Mean * 0.7
		}
		if r.Mean < slack {
			t.Errorf("%s should not beat the full design: %.1f vs %.1f", r.Name, r.Mean, full.Mean)
		}
	}
}

func TestRandomChainsNoImmediateRepeats(t *testing.T) {
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	chains := randomChains(g.Topology, 50, 7, 4, newTestRng())
	for _, ch := range chains {
		if len(ch) != 7 {
			t.Fatalf("chain length %d", len(ch))
		}
		for i := 1; i < len(ch); i++ {
			if ch[i] == ch[i-1] {
				t.Fatalf("immediate repeat in %v", ch)
			}
		}
	}
	// m <= k uses distinct types throughout.
	chains = randomChains(g.Topology, 50, 4, 4, newTestRng())
	for _, ch := range chains {
		seen := map[topo.MBType]bool{}
		for _, inst := range ch {
			typ := g.Instance(inst).Type
			if seen[typ] {
				t.Fatalf("type repeated in %v", ch)
			}
			seen[typ] = true
		}
	}
}

func TestPlanForSizes(t *testing.T) {
	for _, bs := range []int{160, 1280, 20000} {
		pl, err := planFor(bs)
		if err != nil {
			t.Fatal(err)
		}
		if int(pl.MaxBS())+1 < bs {
			t.Fatalf("plan for %d stations holds only %d", bs, pl.MaxBS()+1)
		}
	}
	if _, err := planFor(1 << 25); err == nil {
		t.Fatal("absurd station count should fail")
	}
}

func TestSweepDriversScaleDown(t *testing.T) {
	count := 0
	if err := Fig7b(SweepOptions{Seed: 1, Scale: 100}, func(r Result) {
		count++
		if r.PathsInstalled == 0 {
			t.Error("empty sweep point")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(Fig7bPoints) {
		t.Fatalf("points = %d", count)
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(9)) }
