// Package simexp drives the paper's large-scale simulations (§6.3, Fig. 7):
// it generates the synthetic three-layer topology, draws n random service
// policy clauses of length m, installs one policy path per (clause, base
// station) through the Algorithm 1 installer, and reports per-switch rule
// table occupancy.
package simexp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topo"
)

// Params configures one simulation point.
type Params struct {
	K           int // topology parameter (paper: 8 base case, up to 20)
	N           int // number of service policy clauses (paper: 1000 base)
	M           int // clause length in middleboxes (paper: 5 base)
	ClusterSize int // base stations per ring (paper: 10)
	Seed        int64

	// StationStride installs paths for the first 1/StationStride of the
	// base stations (default 1 = all), keeping the sampled stations
	// CONTIGUOUS so sibling-prefix aggregation behaves as at full scale.
	// The covered region's rule densities match a full run; switches
	// serving only unsampled stations hold just the shared location
	// tables.
	StationStride int

	// MaxCandidates bounds Algorithm 1's tag-candidate evaluation
	// (0 = paper-exact full candidate set).
	MaxCandidates int

	// Ablations (DESIGN.md §5).
	FreshTagPerPath     bool
	NoPrefixAggregation bool
	NoTagDefault        bool
	NoLocationRouting   bool

	// BothDirections also installs and counts upstream rules. The default
	// (false) counts downstream only, matching the paper's methodology
	// (Fig. 3: "rules for traffic arriving from the Internet").
	BothDirections bool

	// CountAccessSwitches includes software access switches in the reported
	// summary (off by default: Fig. 7 is about hardware TCAMs).
	CountAccessSwitches bool

	// Debug prints the five fullest switches.
	Debug bool

	// Now, when set, supplies the timestamps behind Result.Elapsed (callers
	// that want wall-clock timing pass time.Now). The simulation itself is a
	// pure function of the other parameters; with Now nil, Elapsed stays
	// zero and no clock is read at all.
	Now func() time.Time
}

func (p Params) withDefaults() Params {
	if p.ClusterSize == 0 {
		p.ClusterSize = 10
	}
	if p.StationStride <= 0 {
		p.StationStride = 1
	}
	return p
}

// planFor picks an address plan wide enough for the topology's stations.
func planFor(numBS int) (packet.Plan, error) {
	bsBits := 1
	for 1<<bsBits < numBS {
		bsBits++
	}
	ueBits := 32 - 8 - bsBits
	if ueBits < 1 {
		return packet.Plan{}, fmt.Errorf("simexp: %d base stations exceed the address plan", numBS)
	}
	if ueBits > 12 {
		// Keep prefixes aligned with the default plan when possible.
		bsBits, ueBits = 12, 12
	}
	pl := packet.Plan{
		Carrier: packet.NewPrefix(packet.AddrFrom4(10, 0, 0, 0), 8),
		BSBits:  bsBits,
		UEBits:  ueBits,
		TagBits: 12,
	}
	return pl, pl.Validate()
}

// Result is one simulation row — exactly what one Fig. 7 point plots, plus
// diagnostics.
type Result struct {
	Params         Params
	BaseStations   int
	PathsInstalled uint64

	// Fig. 7 reports the maximum and median switch table size.
	Max    int
	Median int
	Mean   float64

	// Rule-type split (§7 multi-table discussion).
	TagPrefixRules int
	TagOnlyRules   int
	LocationRules  int

	TagsAllocated uint64
	LoopsSplit    uint64
	Elapsed       time.Duration
}

// String renders the row the way the experiment tables print it.
func (r Result) String() string {
	return fmt.Sprintf("k=%d n=%d m=%d bs=%d paths=%d max=%d median=%d mean=%.1f tags=%d (%.2fs)",
		r.Params.K, r.Params.N, r.Params.M, r.BaseStations, r.PathsInstalled,
		r.Max, r.Median, r.Mean, r.TagsAllocated, r.Elapsed.Seconds())
}

// randomChains draws n policy clauses: each is an ordered sequence of m
// middlebox instances chosen uniformly (one instance fixed per clause, as a
// deployed service chain would be), with no instance repeated back-to-back.
// Distinct types are preferred while m <= k, mirroring "k different types of
// middleboxes ... A policy path traverses m randomly chosen middlebox
// instances".
func randomChains(t *topo.Topology, n, m, k int, rng *rand.Rand) [][]topo.MBInstanceID {
	chains := make([][]topo.MBInstanceID, n)
	for c := range chains {
		chain := make([]topo.MBInstanceID, m)
		var types []topo.MBType
		if m <= k {
			perm := rng.Perm(k)[:m]
			types = make([]topo.MBType, m)
			for i, v := range perm {
				types[i] = topo.MBType(v)
			}
		} else {
			types = make([]topo.MBType, m)
			for i := range types {
				types[i] = topo.MBType(rng.Intn(k))
				for i > 0 && types[i] == types[i-1] {
					types[i] = topo.MBType(rng.Intn(k))
				}
			}
		}
		for i, typ := range types {
			insts := t.InstancesOf(typ)
			chain[i] = insts[rng.Intn(len(insts))]
			for i > 0 && chain[i] == chain[i-1] {
				chain[i] = insts[rng.Intn(len(insts))]
			}
		}
		chains[c] = chain
	}
	return chains
}

// Run executes one simulation point.
func Run(p Params) (Result, error) {
	p = p.withDefaults()
	now := p.Now
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	start := now()
	g, err := topo.Generate(topo.GenParams{K: p.K, ClusterSize: p.ClusterSize, MBTypes: p.K, Seed: p.Seed})
	if err != nil {
		return Result{}, err
	}
	plan, err := planFor(len(g.Stations))
	if err != nil {
		return Result{}, err
	}
	inst, err := core.NewInstaller(g.Topology, core.InstallerOptions{
		Plan:                  plan,
		MaxCandidates:         p.MaxCandidates,
		FreshTagPerPath:       p.FreshTagPerPath,
		NoPrefixAggregation:   p.NoPrefixAggregation,
		NoTagDefault:          p.NoTagDefault,
		NoLocationRouting:     p.NoLocationRouting,
		DownstreamOnly:        !p.BothDirections,
		SkipAccessSwitchRules: !p.CountAccessSwitches,
		DiscardPathRecords:    true,
		// Rule-counting methodology: table sizes are the measured quantity,
		// so tag allocation is not bounded by the plan's encodable space
		// (the fresh-tag-per-path ablation alone exceeds any TagBits).
		UnboundedTags: true,
	})
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(p.Seed + 1))
	chains := randomChains(g.Topology, p.N, p.M, p.K, rng)
	planner := routing.NewPlanner(g.Topology)
	planner.LegacyTails = p.NoLocationRouting

	// Station-major iteration keeps the planner's reverse-walk cache hot.
	limit := len(g.Stations) / p.StationStride
	if limit < 1 {
		limit = 1
	}
	for s := 0; s < limit; s++ {
		bs := g.Stations[s].ID
		for _, chain := range chains {
			route, err := planner.PlanInstances(bs, chain, g.GatewayID)
			if err != nil {
				return Result{}, fmt.Errorf("simexp: plan bs%d: %w", bs, err)
			}
			if _, err := inst.InstallPath(route); err != nil {
				return Result{}, fmt.Errorf("simexp: install bs%d: %w", bs, err)
			}
		}
	}

	hw, sw := inst.TableSizes()
	summary := hw
	if p.CountAccessSwitches {
		summary.Merge(sw)
	}
	if p.Debug {
		type nr struct{ n, r int }
		var all []nr
		for i := range g.Nodes {
			all = append(all, nr{i, inst.FIB(topo.NodeID(i)).NumRules()})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].r > all[b].r })
		for i := 0; i < 5 && i < len(all); i++ {
			nd := g.Nodes[all[i].n]
			mt, df, mb, pt, lc, tg := inst.FIB(topo.NodeID(all[i].n)).DebugComposition()
			fmt.Printf("  top%d: %s (%s) rules=%d mainTrie=%d defs=%d mb=%d port=%d loc=%d tags=%d\n",
				i, nd.Name, nd.Kind, all[i].r, mt, df, mb, pt, lc, tg)
		}
	}
	tp, to, loc, _ := inst.RuleTypeTotals()
	st := inst.Stats()
	return Result{
		Params:         p,
		BaseStations:   len(g.Stations),
		PathsInstalled: st.Paths,
		Max:            summary.Max(),
		Median:         summary.Median(),
		Mean:           summary.Mean(),
		TagPrefixRules: tp,
		TagOnlyRules:   to,
		LocationRules:  loc,
		TagsAllocated:  st.TagsAllocated,
		LoopsSplit:     st.LoopsSplit,
		Elapsed:        now().Sub(start),
	}, nil
}
