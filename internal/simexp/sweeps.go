package simexp

import (
	"fmt"
	"time"
)

// Fig7aPoints is the paper's clause-count sweep (Fig. 7(a)): n from 1000 to
// 8000 at k=8, m=5.
var Fig7aPoints = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000}

// Fig7bPoints is the clause-length sweep (Fig. 7(b)): m from 4 to 8.
var Fig7bPoints = []int{4, 5, 6, 7, 8}

// Fig7cPoints is the network-size sweep (Fig. 7(c)): k giving 1280 to 20000
// base stations.
var Fig7cPoints = []int{8, 10, 12, 14, 16, 18, 20}

// SweepOptions scale a sweep to the host. Scale divides every n (and
// applies a station stride on the largest networks) so laptops can regenerate
// the figures quickly; Scale=1 is the paper-exact run.
type SweepOptions struct {
	Seed  int64
	Scale int // divide clause counts by this (default 1)
	// StrideAt maps k to a station stride (0/absent = all stations).
	StrideAt map[int]int
	// Now passes through to Params.Now (wall-clock timing for Elapsed).
	Now func() time.Time
}

func (o SweepOptions) scale() int {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// Fig7a sweeps the number of policy clauses.
func Fig7a(opt SweepOptions, report func(Result)) error {
	for _, n := range Fig7aPoints {
		r, err := Run(Params{K: 8, N: n / opt.scale(), M: 5, Seed: opt.Seed, Now: opt.Now})
		if err != nil {
			return fmt.Errorf("simexp: fig7a n=%d: %w", n, err)
		}
		report(r)
	}
	return nil
}

// Fig7b sweeps the clause length.
func Fig7b(opt SweepOptions, report func(Result)) error {
	for _, m := range Fig7bPoints {
		r, err := Run(Params{K: 8, N: 1000 / opt.scale(), M: m, Seed: opt.Seed, Now: opt.Now})
		if err != nil {
			return fmt.Errorf("simexp: fig7b m=%d: %w", m, err)
		}
		report(r)
	}
	return nil
}

// Fig7c sweeps the network size.
func Fig7c(opt SweepOptions, report func(Result)) error {
	for _, k := range Fig7cPoints {
		stride := 1
		if opt.StrideAt != nil && opt.StrideAt[k] > 0 {
			stride = opt.StrideAt[k]
		}
		r, err := Run(Params{K: k, N: 1000 / opt.scale(), M: 5, Seed: opt.Seed, StationStride: stride, Now: opt.Now})
		if err != nil {
			return fmt.Errorf("simexp: fig7c k=%d: %w", k, err)
		}
		report(r)
	}
	return nil
}

// AblationResult pairs a configuration label with its result.
type AblationResult struct {
	Name string
	Result
}

// Ablations runs the DESIGN.md §5 design-choice ablations at one
// configuration point.
func Ablations(base Params, report func(AblationResult)) error {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"full", func(*Params) {}},
		{"fresh-tag-per-path", func(p *Params) { p.FreshTagPerPath = true }},
		{"no-prefix-aggregation", func(p *Params) { p.NoPrefixAggregation = true }},
		{"no-tag-default", func(p *Params) { p.NoTagDefault = true }},
		{"no-location-routing", func(p *Params) { p.NoLocationRouting = true }},
	}
	for _, c := range cases {
		p := base
		c.mut(&p)
		r, err := Run(p)
		if err != nil {
			return fmt.Errorf("simexp: ablation %s: %w", c.name, err)
		}
		report(AblationResult{Name: c.name, Result: r})
	}
	return nil
}
