package workload

import "math/rand"

// This file exposes the §6.1 generator as an *event stream* instead of an
// aggregate simulation: the same seeded model (diurnal curve, station
// popularity weights, Poisson arrival/handoff/departure/bearer processes),
// but emitting the concrete per-second events so a live control plane can
// be driven by them. Generate and Stream share every model constant; a
// Stream with the same Params draws the same processes.

// SecondEvents is one simulated second of workload, with stations named by
// dense index (the city benchmark maps index i to base-station ID i).
// Slices are reused across Next calls — consume before the next call.
type SecondEvents struct {
	Sec  int     // simulated second since the stream started
	Load float64 // diurnal load factor in (0, 1]

	// Arrivals holds the station index of each UE arrival this second.
	Arrivals []int
	// Handoffs holds [src, dst] station-index pairs; the model moves one
	// active UE from src to its ring neighbour dst.
	Handoffs [][2]int
	// Departures holds the station index of each session end this second.
	Departures []int
	// Bearers[bs] is the number of radio-bearer arrivals at station bs
	// this second (each is one path/classifier request).
	Bearers []int
}

// Stream drives the workload model one simulated second at a time.
type Stream struct {
	p      Params
	rng    *rand.Rand
	smp    *sampler
	active []int
	sec    int
	ev     SecondEvents
}

// NewStream builds a stream with the same defaults and seeded processes as
// Generate. The model's station populations start empty; call
// InitialPopulation to pre-populate to the diurnal steady state (and attach
// the same UEs in the system under test).
func NewStream(p Params) *Stream {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Stream{p: p, rng: rng, active: make([]int, p.Stations)}
	s.smp = newSampler(stationWeights(p.Stations, p.SkewSigma, rng))
	s.ev.Bearers = make([]int, p.Stations)
	return s
}

// Params returns the stream's effective (default-filled) parameters.
func (s *Stream) Params() Params { return s.p }

// InitialPopulation draws the warm-up population — the station index of
// each UE active at t=0, sized to the diurnal steady state — and installs
// it in the model. Call at most once, before the first Next.
func (s *Stream) InitialPopulation() []int {
	mean := int(s.p.PeakArrivalsPerSec * diurnal(s.p.StartSecond) * s.p.MeanSessionSeconds)
	out := make([]int, mean)
	for i := range out {
		bs := s.smp.draw(s.rng)
		s.active[bs]++
		out[i] = bs
	}
	return out
}

// Active reports the model's current active-UE count at a station.
func (s *Stream) Active(bs int) int { return s.active[bs] }

// Next advances the model one simulated second and returns its events.
// The returned struct (and its slices) are reused by the following call.
func (s *Stream) Next() *SecondEvents {
	ev := &s.ev
	ev.Sec = s.sec
	load := diurnal(s.p.StartSecond + s.sec)
	ev.Load = load
	ev.Arrivals = ev.Arrivals[:0]
	ev.Handoffs = ev.Handoffs[:0]
	ev.Departures = ev.Departures[:0]

	nArr := poisson(s.rng, s.p.PeakArrivalsPerSec*load)
	for i := 0; i < nArr; i++ {
		bs := s.smp.draw(s.rng)
		s.active[bs]++
		ev.Arrivals = append(ev.Arrivals, bs)
	}

	nHO := poisson(s.rng, s.p.PeakHandoffsPerSec*load)
	for i := 0; i < nHO; i++ {
		src := s.smp.draw(s.rng)
		if s.active[src] == 0 {
			continue
		}
		dst := (src + 1) % s.p.Stations
		s.active[src]--
		s.active[dst]++
		ev.Handoffs = append(ev.Handoffs, [2]int{src, dst})
	}

	pDep := 1 / s.p.MeanSessionSeconds
	for bs := 0; bs < s.p.Stations; bs++ {
		if a := s.active[bs]; a > 0 {
			dep := poisson(s.rng, float64(a)*pDep)
			if dep > a {
				dep = a
			}
			s.active[bs] = a - dep
			for i := 0; i < dep; i++ {
				ev.Departures = append(ev.Departures, bs)
			}
		}
		ev.Bearers[bs] = poisson(s.rng, float64(s.active[bs])*s.p.BearersPerUESec*load)
	}

	s.sec++
	return ev
}
