package workload

import (
	"math"
	"math/rand"
	"testing"
)

// quickParams simulates a shorter, peak-hour window so tests stay fast.
func quickParams(seed int64) Params {
	return Params{Stations: 300, Seconds: 1200, Seed: seed}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(quickParams(5))
	b := Generate(quickParams(5))
	if a.TotalArrivals != b.TotalArrivals || a.TotalHandoffs != b.TotalHandoffs ||
		a.TotalBearers != b.TotalBearers {
		t.Fatal("same seed must give identical totals")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(quickParams(1))
	b := Generate(quickParams(2))
	if a.TotalArrivals == b.TotalArrivals && a.TotalBearers == b.TotalBearers {
		t.Fatal("different seeds should differ")
	}
}

func TestDistributionsPopulated(t *testing.T) {
	r := Generate(quickParams(7))
	if r.ArrivalsPerSec.Len() != 1200 {
		t.Fatalf("arrival samples = %d", r.ArrivalsPerSec.Len())
	}
	if r.HandoffsPerSec.Len() != 1200 {
		t.Fatalf("handoff samples = %d", r.HandoffsPerSec.Len())
	}
	if r.BearersPerBSSec.Len() != 1200*300 {
		t.Fatalf("bearer samples = %d", r.BearersPerBSSec.Len())
	}
	if r.ActiveUEsPerBS.Len() != 20*300 {
		t.Fatalf("active samples = %d", r.ActiveUEsPerBS.Len())
	}
	if r.TotalArrivals == 0 || r.TotalBearers == 0 {
		t.Fatal("no activity generated")
	}
}

func TestDiurnalShape(t *testing.T) {
	night := diurnal(4 * 3600)
	noon := diurnal(12 * 3600)
	evening := diurnal(20 * 3600)
	if !(night < noon && noon < evening) {
		t.Fatalf("diurnal shape wrong: night=%.2f noon=%.2f evening=%.2f", night, noon, evening)
	}
	for s := 0; s < 86400; s += 600 {
		v := diurnal(s)
		if v <= 0 || v > 1 {
			t.Fatalf("diurnal(%d) = %f out of (0,1]", s, v)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.5, 4, 40, 200} {
		n := 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(poisson(rng, lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.1*lambda+0.5 {
			t.Errorf("lambda=%v: mean=%v", lambda, mean)
		}
		variance := sumSq/float64(n) - mean*mean
		if math.Abs(variance-lambda) > 0.25*lambda+1 {
			t.Errorf("lambda=%v: var=%v", lambda, variance)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestStationWeightsNormalised(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := stationWeights(500, 0.35, rng)
	var sum float64
	max := 0.0
	for _, v := range w {
		if v <= 0 {
			t.Fatal("non-positive weight")
		}
		sum += v
		if v > max {
			max = v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if max < 1.5/500 {
		t.Fatalf("no skew: max weight %v", max)
	}
	if max > 10.0/500 {
		t.Fatalf("too much skew: max weight %v", max)
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := []float64{0.5, 0.3, 0.2}
	s := newSampler(w)
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.draw(rng)]++
	}
	for i, want := range w {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("station %d: frequency %v, want %v", i, got, want)
		}
	}
}

func TestSkewProducesHotStations(t *testing.T) {
	r := Generate(quickParams(9))
	med := r.ActiveUEsPerBS.Quantile(0.5)
	hot := r.ActiveUEsPerBS.Quantile(0.999)
	if !(hot > 1.3*med) {
		t.Fatalf("expected mild skew: median=%v p99.9=%v", med, hot)
	}
}

func TestPaperScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration run")
	}
	// Two peak hours at full scale: the high quantiles should land in the
	// paper's ballpark (exactness is checked by the Fig. 6 bench run).
	r := Generate(Params{Stations: 1500, Seconds: 7200, StartSecond: 19 * 3600, Seed: 42})
	// Shift the window into the evening peak by reading the top quantiles.
	arr := r.ArrivalsPerSec.Quantile(0.99999)
	if arr < 30 || arr > 400 {
		t.Errorf("arrivals p99.999 = %v, out of plausible band", arr)
	}
	act := r.ActiveUEsPerBS.Max()
	if act < 100 || act > 1500 {
		t.Errorf("active max = %v, out of plausible band", act)
	}
	bear := r.BearersPerBSSec.Quantile(0.99999)
	if bear < 3 || bear > 120 {
		t.Errorf("bearers p99.999 = %v, out of plausible band", bear)
	}
	if tg := Targets(); tg.ArrivalsP99999 != 214 || tg.BearersP99999 != 34 {
		t.Error("paper targets changed")
	}
}
