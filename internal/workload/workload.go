// Package workload synthesises the LTE control-plane workload of §6.1.
//
// The paper measured one week of bearer-level traces from a large ISP's LTE
// network (≈1500 base stations, ≈1M devices) — data we cannot obtain. Per
// DESIGN.md's substitution policy, this generator reproduces the *published
// aggregate characteristics* the paper derives from that trace:
//
//	Fig. 6(a): network-wide UE arrivals and handoffs per second
//	           (99.999-pct ≈ 214 and 280);
//	Fig. 6(b): active UEs per base station (99.999-pct ≈ 514);
//	Fig. 6(c): radio-bearer arrivals per second per base station
//	           (99.999-pct ≈ 34).
//
// The model: a diurnal load curve modulates Poisson arrival/handoff
// processes; stations draw popularity weights from a Zipf-like law (cities
// have hot cells); sessions end geometrically; bearer arrivals are Poisson
// in the per-station active-UE count. Everything is seeded and deterministic.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/metrics"
)

// Params configures the generator. Zero values take the paper-calibrated
// defaults.
type Params struct {
	Stations int // default 1500
	Seconds  int // simulated wall-clock seconds; default 86400 (one day)
	// StartSecond offsets the diurnal clock (0 = midnight). Short windows
	// should start near the evening peak (e.g. 18*3600) to observe the
	// high quantiles a full day would.
	StartSecond int
	Seed        int64

	// PeakArrivalsPerSec is the diurnal peak of the network-wide UE-arrival
	// Poisson rate (default 206, calibrated so the observed 99.999-pct over
	// a day lands near the paper's 214).
	PeakArrivalsPerSec float64
	// PeakHandoffsPerSec likewise for handoffs (default 275 → ≈280).
	PeakHandoffsPerSec float64
	// MeanSessionSeconds is the average attachment lifetime (default 1300).
	MeanSessionSeconds float64
	// BearersPerUESec is the per-active-UE radio-bearer arrival rate
	// (default 0.062: a handful of concurrent flows with multi-second
	// bearer timeouts, per the paper's [25,26] discussion).
	BearersPerUESec float64
	// SkewSigma is the lognormal sigma of station popularity (default
	// 0.35): real cells differ, but the paper's per-station distribution is
	// only mildly skewed (99.999-pct ≈ 2-3x the typical station).
	SkewSigma float64
}

func (p Params) withDefaults() Params {
	if p.Stations == 0 {
		p.Stations = 1500
	}
	if p.Seconds == 0 {
		p.Seconds = 86400
	}
	if p.PeakArrivalsPerSec == 0 {
		p.PeakArrivalsPerSec = 206
	}
	if p.PeakHandoffsPerSec == 0 {
		p.PeakHandoffsPerSec = 275
	}
	if p.MeanSessionSeconds == 0 {
		p.MeanSessionSeconds = 1300
	}
	if p.BearersPerUESec == 0 {
		p.BearersPerUESec = 0.062
	}
	if p.SkewSigma == 0 {
		p.SkewSigma = 0.35
	}
	return p
}

// Result carries the three Fig. 6 distributions plus totals.
type Result struct {
	Params Params

	// Fig. 6(a): per-second network-wide counts.
	ArrivalsPerSec metrics.CDF
	HandoffsPerSec metrics.CDF
	// Fig. 6(b): per-(station, sample) active-UE counts (sampled each
	// simulated minute, like a periodic poll of every station).
	ActiveUEsPerBS metrics.CDF
	// Fig. 6(c): per-(station, second) bearer arrivals.
	BearersPerBSSec metrics.CDF

	TotalArrivals uint64
	TotalHandoffs uint64
	TotalBearers  uint64
	PeakActive    int
}

// diurnal is the load curve: a day shaped like real cellular load — a deep
// night trough, a morning ramp, and an evening peak with bursts.
func diurnal(sec int) float64 {
	h := float64(sec%86400) / 3600
	base := 0.25 +
		0.45*math.Exp(-((h-12.5)*(h-12.5))/18) + // daytime bulge
		0.55*math.Exp(-((h-20)*(h-20))/4.5) // evening peak
	if base > 1 {
		base = 1
	}
	return base
}

// poisson draws a Poisson variate (Knuth for small lambda, normal
// approximation above 64 — adequate for aggregate-rate simulation).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// stationWeights builds normalised lognormal popularity weights: mildly
// skewed, matching the paper's narrow spread between the typical and the
// busiest station.
func stationWeights(n int, sigma float64, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Exp(sigma * rng.NormFloat64())
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampler draws station indices proportionally to weights via the alias-free
// cumulative method with binary search.
type sampler struct {
	cum []float64
}

func newSampler(w []float64) *sampler {
	cum := make([]float64, len(w))
	var acc float64
	for i, v := range w {
		acc += v
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &sampler{cum: cum}
}

func (s *sampler) draw(rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Generate runs the simulation and returns the Fig. 6 distributions.
func Generate(p Params) *Result {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	res := &Result{Params: p}

	weights := stationWeights(p.Stations, p.SkewSigma, rng)
	smp := newSampler(weights)
	active := make([]int, p.Stations)
	pDep := 1 / p.MeanSessionSeconds

	// Warm-up: pre-populate to the diurnal steady state at t=0 so the
	// active-UE distribution does not start empty.
	meanActive := p.PeakArrivalsPerSec * diurnal(p.StartSecond) * p.MeanSessionSeconds
	for i := 0; i < int(meanActive); i++ {
		active[smp.draw(rng)]++
	}

	for sec := 0; sec < p.Seconds; sec++ {
		load := diurnal(p.StartSecond + sec)

		// Network-wide arrivals (Fig. 6(a)).
		nArr := poisson(rng, p.PeakArrivalsPerSec*load)
		for i := 0; i < nArr; i++ {
			active[smp.draw(rng)]++
		}
		res.ArrivalsPerSec.Add(float64(nArr))
		res.TotalArrivals += uint64(nArr)

		// Handoffs move a UE from a busy station to a neighbour.
		nHO := poisson(rng, p.PeakHandoffsPerSec*load)
		for i := 0; i < nHO; i++ {
			src := smp.draw(rng)
			if active[src] == 0 {
				continue
			}
			dst := (src + 1) % p.Stations
			active[src]--
			active[dst]++
		}
		res.HandoffsPerSec.Add(float64(nHO))
		res.TotalHandoffs += uint64(nHO)

		// Departures and bearer arrivals per station.
		for bs := 0; bs < p.Stations; bs++ {
			a := active[bs]
			if a > 0 {
				// Binomial departures approximated by Poisson thinning.
				dep := poisson(rng, float64(a)*pDep)
				if dep > a {
					dep = a
				}
				active[bs] = a - dep
			}
			nb := poisson(rng, float64(active[bs])*p.BearersPerUESec*load)
			res.BearersPerBSSec.Add(float64(nb))
			res.TotalBearers += uint64(nb)
			if active[bs] > res.PeakActive {
				res.PeakActive = active[bs]
			}
		}

		// Sample the per-station population once a simulated minute.
		if sec%60 == 0 {
			for bs := 0; bs < p.Stations; bs++ {
				res.ActiveUEsPerBS.Add(float64(active[bs]))
			}
		}
	}
	return res
}

// PaperTargets are the percentile values §6.1 reports; EXPERIMENTS.md
// compares the generator against them.
type PaperTargets struct {
	ArrivalsP99999 float64 // 214
	HandoffsP99999 float64 // 280
	ActiveP99999   float64 // 514
	BearersP99999  float64 // 34
}

// Targets returns the paper's numbers.
func Targets() PaperTargets {
	return PaperTargets{ArrivalsP99999: 214, HandoffsP99999: 280, ActiveP99999: 514, BearersP99999: 34}
}
