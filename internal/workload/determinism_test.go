package workload

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/metrics"
)

// serialise renders a Result canonically: totals plus the bit pattern of
// every sample of every distribution. Byte equality of two serialisations
// means the generator emitted the exact same event stream.
func serialise(res *Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "arrivals=%d handoffs=%d bearers=%d peak=%d\n",
		res.TotalArrivals, res.TotalHandoffs, res.TotalBearers, res.PeakActive)
	for _, c := range []struct {
		name string
		cdf  *metrics.CDF
	}{
		{"arrivals/s", &res.ArrivalsPerSec},
		{"handoffs/s", &res.HandoffsPerSec},
		{"active-ues", &res.ActiveUEsPerBS},
		{"bearers", &res.BearersPerBSSec},
	} {
		fmt.Fprintf(&b, "%s n=%d:", c.name, c.cdf.Len())
		for _, v := range c.cdf.Samples() {
			fmt.Fprintf(&b, " %016x", math.Float64bits(v))
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestGenerateByteIdentical runs the workload generator twice with the same
// seed and requires byte-identical output distributions — stronger than the
// totals-only check in workload_test.go, which would miss sample-level or
// ordering drift.
func TestGenerateByteIdentical(t *testing.T) {
	p := Params{Stations: 50, Seconds: 600, StartSecond: 18 * 3600, Seed: 3}
	first := serialise(Generate(p))
	second := serialise(Generate(p))
	if len(first) < 100 {
		t.Fatalf("suspiciously small serialisation (%d bytes)", len(first))
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed runs differ:\n first=%.200s...\nsecond=%.200s...", first, second)
	}
	// A different seed must actually change the stream, or the comparison
	// above proves nothing.
	other := serialise(Generate(Params{Stations: 50, Seconds: 600, StartSecond: 18 * 3600, Seed: 4}))
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical streams")
	}
}
