// Package chaos is a deterministic fault-injection harness over the sharded
// SoftCell control plane (DESIGN.md §11). One seeded schedule interleaves
// live workload (attach/detach, handoffs, path and resolution requests —
// some in-process, some over a faulty ctrlproto link) with injected faults
// (switch fail/recover, shard kill + failover, agent restart, detach
// mid-handoff, policy churn, and dropped/duplicated/reordered control
// frames), running the cross-layer invariant checker after every fault and
// at quiescence. Two runs with the same Config produce byte-identical event
// traces and equal Results.
//
// Determinism over a real wire works as follows. The driver is single
// threaded (the sim kernel's event loop) and keeps at most one wire request
// outstanding. Only the client->server direction is faulted, only
// idempotent operations travel the wire (Hello, Echo, Resolve, RequestPath;
// attach/handoff/detach go in-process), and the fault verdict for a request
// id is made exactly once — retransmissions of an already-judged frame are
// always delivered, so the fault RNG's consumption order cannot depend on
// wall-clock retry timing. After every wire operation the driver sends a
// barrier Echo (never faulted); the server handles frames in order, so the
// barrier's reply proves every stray duplicate has been processed before
// the schedule advances.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctrlproto"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Mix weights the event categories of the schedule. Zero values fall back
// to the defaults (12/2/1/2/2/1).
type Mix struct {
	Workload         int // attach/detach, handoff, path/resolve/echo requests
	SwitchFault      int // fail or recover an aggregation/core switch
	ShardKill        int // kill a shard and fail its state over
	AgentRestart     int // drop the agent's control channel and reconnect
	DetachMidHandoff int // handoff immediately followed by detach
	PolicyChurn      int // withdraw one policy clause's paths everywhere
}

// Config parameterises one chaos run. Only Seed has no default.
type Config struct {
	Seed   int64
	Events int // scheduled events (default 2000)

	Shards      int // control-plane shards (default 3)
	ClusterSize int // base stations per cluster; K=2, so stations = 2*ClusterSize (default 4)
	UEs         int // subscriber population (default 16)

	// WireFaultRate is the probability a first-sent control frame is
	// faulted (default 0.25; negative disables wire faults).
	WireFaultRate float64
	// RetryTimeout is the client's retransmission timeout (default 50ms).
	// It is wall-clock: the sim kernel drives the schedule, but the wire
	// underneath is a real net.Pipe.
	RetryTimeout time.Duration
	// CheckEvery runs the invariant checker every N events in addition to
	// the run after every injected fault (default 40).
	CheckEvery int

	Mix Mix

	// Trace receives one line per event; two same-seed runs write identical
	// bytes. Nil discards.
	Trace io.Writer

	// Obs, when set, instruments the whole stack under test (core, shard,
	// wire, plus the harness's own fault/check telemetry). The harness
	// points the registry's clock at the sim kernel, so the registry's
	// trace dump is deterministic too: two same-seed runs emit
	// byte-identical TraceJSON. Counters are NOT covered by that
	// guarantee — wire retransmissions depend on wall-clock retry timing.
	Obs *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.Events <= 0 {
		cfg.Events = 2000
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = 4
	}
	if cfg.UEs <= 0 {
		cfg.UEs = 16
	}
	if cfg.WireFaultRate == 0 {
		cfg.WireFaultRate = 0.25
	} else if cfg.WireFaultRate < 0 {
		cfg.WireFaultRate = 0
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 50 * time.Millisecond
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 40
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = Mix{Workload: 12, SwitchFault: 2, ShardKill: 1, AgentRestart: 2, DetachMidHandoff: 2, PolicyChurn: 1}
	}
	return cfg
}

// FaultCounts tallies every fault the schedule injected.
type FaultCounts struct {
	SwitchFail       int
	SwitchRecover    int
	ShardKill        int
	AgentRestart     int
	DetachMidHandoff int
	PolicyChurn      int
	WireFrames       int // first transmissions shown to the fault schedule
	WireFaulted      int // of those, dropped/duplicated/held
}

// Result summarises a run. It is comparable, so tests can assert two
// same-seed runs agree with ==.
type Result struct {
	Events   int // scheduled events executed
	Ops      int // workload operations attempted
	OpErrors int // operations that returned an error (expected under faults)
	Checks   int // invariant-checker passes
	Releases int // old-LocIP releases fired (two-phase handoff completions)
	Faults   FaultCounts
	Final    shard.InvariantReport // checker report at quiescence
	Mem      core.MemStats         // fleet memory accounting at quiescence
}

const (
	genK          = 2 // pod parameter of the synthetic topology
	retryAttempts = 10
	tick          = sim.Time(time.Millisecond)
	maxDownSw     = 2
)

type engine struct {
	cfg Config
	k   *sim.Kernel
	rng *rand.Rand // schedule decisions

	g   *topo.Generated
	d   *shard.Dispatcher
	srv *ctrlproto.Server
	cl  *ctrlproto.Client

	stations []packet.BSID
	clauses  []int // allow-clause ids with installable paths
	imsis    []string
	perms    map[string]packet.Addr
	swPool   []topo.NodeID // fail candidates: aggregation + core switches
	downSw   []topo.NodeID

	res Result
	obs chaosObs
	err error

	// Wire-fault state, shared with the connection's writer goroutine (the
	// decide callback); everything else belongs to the driver alone.
	wireMu  sync.Mutex
	wireRNG *rand.Rand      // guarded by wireMu
	seen    map[uint32]bool // guarded by wireMu
	barrier bool            // guarded by wireMu
}

// Run executes one seeded chaos schedule and returns its summary. A nil
// error means every workload consistency assertion and every invariant
// check passed; the first violation aborts the schedule and is returned.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	e := &engine{
		cfg:   cfg,
		k:     sim.NewKernel(cfg.Seed),
		perms: make(map[string]packet.Addr),
		seen:  make(map[uint32]bool),
	}
	e.rng = e.k.Fork("chaos-schedule")
	e.wireMu.Lock()
	e.wireRNG = e.k.Fork("chaos-wire")
	e.wireMu.Unlock()
	if cfg.Obs != nil {
		k := e.k
		cfg.Obs.SetClock(func() int64 { return int64(k.Now()) })
	}
	e.obs = newChaosObs(cfg.Obs)
	if err := e.setup(); err != nil {
		return e.res, err
	}
	defer e.d.Close()
	defer func() { _ = e.cl.Close() }()

	_, err := e.k.Every(tick, func() bool {
		if e.err != nil {
			return false
		}
		e.res.Events++
		e.step()
		return e.err == nil && e.res.Events < e.cfg.Events
	})
	if err != nil {
		return e.res, err
	}
	e.k.Run() // drains the schedule plus every pending old-LocIP release
	if e.err != nil {
		return e.res, e.err
	}
	e.finish()
	if e.err == nil {
		e.res.Mem = e.d.MemStats()
	}
	return e.res, e.err
}

func (e *engine) setup() error {
	g, err := topo.Generate(topo.GenParams{
		K: genK, ClusterSize: e.cfg.ClusterSize, MBTypes: 3, Seed: e.cfg.Seed,
	})
	if err != nil {
		return err
	}
	e.g = g
	for _, st := range g.Stations {
		e.stations = append(e.stations, st.ID)
	}
	for _, pod := range g.PodSwitch {
		e.swPool = append(e.swPool, pod...)
	}
	e.swPool = append(e.swPool, g.CoreSwitch...)

	pol := policy.ExampleCarrierPolicy()
	for id := 0; id < pol.Len(); id++ {
		if cl, ok := pol.Clause(id); ok && cl.Action.Allow {
			e.clauses = append(e.clauses, id)
		}
	}
	// Policy churn and switch fail/recover allocate a fresh tag for every
	// rebuilt path (stale tags must miss, never alias onto new paths), so a
	// long chaos schedule consumes far more tag space than a steady-state
	// dataplane. Widen the tag field: exhausting it mid-run would only
	// exercise the allocator's fail-fast error, not the recovery logic
	// under test.
	plan := packet.DefaultPlan
	plan.TagBits = 12
	// Fail fast on a shard count the tag partition cannot feed — better
	// an explicit configuration error here than an allocator error deep
	// into the schedule.
	if tagCap := int(plan.MaxTag()) / e.cfg.Shards; tagCap < 16 {
		return fmt.Errorf(
			"chaos: %d shards leave each shard only %d policy tags of the plan's %d; a churning schedule needs at least 16 per shard — lower -shards",
			e.cfg.Shards, tagCap, plan.MaxTag())
	}
	d, err := shard.New(shard.Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   pol,
		Plan:     plan,
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards:  e.cfg.Shards,
		Workers: 1, // single worker per shard: queue order is processing order
		Obs:     e.cfg.Obs,
	})
	if err != nil {
		return err
	}
	e.d = d
	e.srv = ctrlproto.NewServer(d)
	e.srv.Workers = 1 // in-order frame handling makes the barrier a full drain
	e.srv.Instrument(e.cfg.Obs)
	e.connect()

	for i := 0; i < e.cfg.UEs; i++ {
		imsi := fmt.Sprintf("imsi-%03d", i)
		e.imsis = append(e.imsis, imsi)
		if err := d.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"}); err != nil {
			return err
		}
		bs := e.stations[e.rng.Intn(len(e.stations))]
		ue, _, err := d.Attach(imsi, bs)
		if err != nil {
			return fmt.Errorf("chaos: seeding attach %s at bs %d: %w", imsi, bs, err)
		}
		e.perms[imsi] = ue.PermIP
		e.trace("seed attach %s bs=%d loc=%s", imsi, bs, ue.LocIP)
	}
	e.check("setup")
	return e.err
}

// connect (re)builds the faulty control channel: a fresh net.Pipe served by
// the shared server, with the client side wrapped in the fault injector.
func (e *engine) connect() {
	a, b := net.Pipe()
	go e.srv.ServeConn(a)
	e.wireMu.Lock()
	e.seen = make(map[uint32]bool) // request ids restart with the connection
	e.wireMu.Unlock()
	e.cl = ctrlproto.NewClient(ctrlproto.NewFaultyConn(b, e.decide))
	e.cl.Timeout = e.cfg.RetryTimeout
	e.cl.Attempts = retryAttempts
	e.cl.Instrument(e.cfg.Obs)
}

// decide is the wire fault schedule. It runs on the connection's writer
// goroutine, so everything it touches sits behind wireMu.
func (e *engine) decide(info ctrlproto.FrameInfo) ctrlproto.FaultAction {
	e.wireMu.Lock()
	defer e.wireMu.Unlock()
	if e.seen[info.ReqID] {
		return ctrlproto.FaultDeliver // retransmission: already judged
	}
	e.seen[info.ReqID] = true
	if e.barrier {
		return ctrlproto.FaultDeliver // barrier traffic is never faulted
	}
	e.res.Faults.WireFrames++
	if e.wireRNG.Float64() >= e.cfg.WireFaultRate {
		return ctrlproto.FaultDeliver
	}
	e.res.Faults.WireFaulted++
	switch e.wireRNG.Intn(3) {
	case 0:
		return ctrlproto.FaultDrop
	case 1:
		return ctrlproto.FaultDuplicate
	default:
		return ctrlproto.FaultHold
	}
}

func (e *engine) setBarrier(on bool) {
	e.wireMu.Lock()
	e.barrier = on
	e.wireMu.Unlock()
}

// drainWire sends a never-faulted Echo. The server answers frames in
// order, so the reply proves every earlier frame — including duplicates the
// injector manufactured — has been fully processed. Every wire operation
// ends with one, which is what keeps the schedule's view of controller
// state independent of retransmission timing.
func (e *engine) drainWire() {
	e.setBarrier(true)
	_, err := e.cl.Echo([]byte("barrier"))
	e.setBarrier(false)
	if err != nil {
		e.fail(fmt.Errorf("chaos: wire barrier: %w", err))
	}
}

func (e *engine) trace(format string, args ...any) {
	if e.cfg.Trace == nil {
		return
	}
	fmt.Fprintf(e.cfg.Trace, "t=%d ev=%d ", int64(e.k.Now()), e.res.Events)
	fmt.Fprintf(e.cfg.Trace, format, args...)
	fmt.Fprintln(e.cfg.Trace)
}

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.trace("FATAL %v", err)
}

// check runs the cross-layer invariant checker and aborts the run on the
// first violation.
func (e *engine) check(label string) {
	rep, err := e.d.CheckInvariants()
	e.res.Checks++
	e.res.Final = rep
	if err != nil {
		e.fail(fmt.Errorf("chaos: invariants after %s: %w", label, err))
		return
	}
	e.obs.checks.Inc()
	e.trace("check %s shards=%d paths=%d rules=%d attached=%d resv=%d",
		label, rep.Shards, rep.Paths, rep.Rules, rep.Attached, rep.Reservations)
}

// step executes one scheduled event, weighted by the mix.
func (e *engine) step() {
	m := e.cfg.Mix
	weighted := []struct {
		w  int
		fn func()
	}{
		{m.Workload, e.workload},
		{m.SwitchFault, e.switchFault},
		{m.ShardKill, e.shardKill},
		{m.AgentRestart, e.agentRestart},
		{m.DetachMidHandoff, func() { e.handoff(true) }},
		{m.PolicyChurn, e.policyChurn},
	}
	total := 0
	for _, w := range weighted {
		total += w.w
	}
	r := e.rng.Intn(total)
	for _, w := range weighted {
		if r < w.w {
			w.fn()
			return
		}
		r -= w.w
	}
}

func (e *engine) workload() {
	e.res.Ops++
	switch e.rng.Intn(6) {
	case 0:
		e.attachToggle()
	case 1:
		e.handoff(false)
	case 2:
		e.wirePath()
	case 3:
		e.wireResolve()
	case 4:
		e.wireEcho()
	default:
		e.directPath()
	}
	if e.res.Events%e.cfg.CheckEvery == 0 {
		e.check("periodic")
	}
}

// pickUE scans the population from a seeded offset for a UE in the wanted
// attachment state.
func (e *engine) pickUE(wantAttached bool) (string, core.UE, bool) {
	start := e.rng.Intn(len(e.imsis))
	for i := 0; i < len(e.imsis); i++ {
		imsi := e.imsis[(start+i)%len(e.imsis)]
		ue, ok := e.d.LookupUE(imsi)
		if (ok && ue.LocIP != 0) == wantAttached {
			return imsi, ue, true
		}
	}
	return "", core.UE{}, false
}

func (e *engine) attachToggle() {
	imsi := e.imsis[e.rng.Intn(len(e.imsis))]
	ue, ok := e.d.LookupUE(imsi)
	if ok && ue.LocIP != 0 {
		err := e.d.Detach(imsi)
		e.countErr(err)
		e.trace("detach %s err=%v", imsi, err)
		return
	}
	bs := e.stations[e.rng.Intn(len(e.stations))]
	got, _, err := e.d.Attach(imsi, bs)
	e.countErr(err)
	if err == nil {
		e.perms[imsi] = got.PermIP
	}
	e.trace("attach %s bs=%d loc=%s err=%v", imsi, bs, got.LocIP, err)
}

// handoff moves an attached UE; when detach is set it detaches immediately
// afterwards, racing the scheduled old-LocIP release against teardown. The
// release is scheduled only for same-shard handoffs — a cross-shard move
// tears the old location down with the migration and leaves no reservation.
func (e *engine) handoff(detach bool) {
	if detach {
		e.res.Ops++
		e.res.Faults.DetachMidHandoff++
		e.obs.fault(kindDetachMidHandoff, -1)
	}
	imsi, ue, ok := e.pickUE(true)
	if !ok {
		e.trace("handoff skip: nothing attached")
		return
	}
	newBS := e.stations[e.rng.Intn(len(e.stations))]
	if newBS == ue.BS {
		newBS = e.stations[(int(newBS)+1)%len(e.stations)]
	}
	ring := e.d.Ring()
	oldOwner, _ := ring.Owner(ue.BS)
	newOwner, _ := ring.Owner(newBS)
	res, err := e.d.Handoff(imsi, newBS)
	e.countErr(err)
	e.trace("handoff %s bs %d->%d sameShard=%v oldLoc=%s err=%v",
		imsi, ue.BS, newBS, oldOwner == newOwner, res.OldLocIP, err)
	if err == nil && oldOwner == newOwner && res.OldLocIP != 0 {
		s := e.d.Shard(newOwner)
		oldLoc, shortcuts := res.OldLocIP, res.Shortcuts
		delay := sim.Time(e.rng.Int63n(int64(40*tick))) + 1
		e.k.After(delay, func() {
			if s.Down() {
				e.trace("release %s skipped: shard %d down", oldLoc, s.ID)
				return
			}
			s.Ctrl.ReleaseOldLocIP(oldLoc, shortcuts)
			e.res.Releases++
			e.trace("release %s shard=%d", oldLoc, s.ID)
		})
	}
	if detach {
		derr := e.d.Detach(imsi)
		e.countErr(derr)
		e.trace("detach-mid-handoff %s err=%v", imsi, derr)
		e.check("detach-mid-handoff")
	}
}

func (e *engine) wirePath() {
	bs := e.stations[e.rng.Intn(len(e.stations))]
	clause := e.clauses[e.rng.Intn(len(e.clauses))]
	tag, err := e.cl.RequestPath(bs, clause)
	e.drainWire()
	e.countErr(err)
	e.trace("wire-path bs=%d clause=%d tag=%d err=%v", bs, clause, tag, err)
	if err != nil {
		return
	}
	if owner, ok := e.d.Ring().Owner(bs); ok && int(tag)%e.cfg.Shards != owner {
		e.fail(fmt.Errorf("chaos: station %d tag %d outside shard %d's residue class", bs, tag, owner))
	}
}

func (e *engine) wireResolve() {
	imsi := e.imsis[e.rng.Intn(len(e.imsis))]
	perm := e.perms[imsi]
	want, ok := e.d.LookupUE(imsi)
	loc, err := e.cl.ResolveLocIP(perm)
	e.drainWire()
	e.countErr(err)
	e.trace("wire-resolve %s perm=%s loc=%s err=%v", imsi, perm, loc, err)
	if err == nil && ok && want.PermIP == perm && want.LocIP != 0 && loc != want.LocIP {
		e.fail(fmt.Errorf("chaos: resolve %s returned %s, controller holds %s", perm, loc, want.LocIP))
	}
}

func (e *engine) wireEcho() {
	payload := fmt.Sprintf("probe-%d", e.rng.Int63())
	got, err := e.cl.Echo([]byte(payload))
	e.drainWire()
	e.countErr(err)
	if err == nil && string(got) != payload {
		e.fail(fmt.Errorf("chaos: echo answered %q to %q", got, payload))
	}
	e.trace("wire-echo err=%v", err)
}

func (e *engine) directPath() {
	bs := e.stations[e.rng.Intn(len(e.stations))]
	clause := e.clauses[e.rng.Intn(len(e.clauses))]
	tag, err := e.d.RequestPath(bs, clause)
	e.countErr(err)
	e.trace("path bs=%d clause=%d tag=%d err=%v", bs, clause, tag, err)
	if err == nil {
		if owner, ok := e.d.Ring().Owner(bs); ok && int(tag)%e.cfg.Shards != owner {
			e.fail(fmt.Errorf("chaos: station %d tag %d outside shard %d's residue class", bs, tag, owner))
		}
	}
}

// switchFault fails a random aggregation/core switch, or recovers one when
// the budget of concurrently-down switches is spent (or a coin says so).
// Every live shard replans: the topology is shared, the forwarding state is
// not.
func (e *engine) switchFault() {
	if len(e.downSw) > 0 && (len(e.downSw) >= maxDownSw || e.rng.Intn(2) == 0) {
		i := e.rng.Intn(len(e.downSw))
		n := e.downSw[i]
		e.downSw = append(e.downSw[:i], e.downSw[i+1:]...)
		e.recoverSwitch(n)
		e.check("switch-recover")
		return
	}
	candidates := make([]topo.NodeID, 0, len(e.swPool))
	for _, n := range e.swPool {
		if !e.g.Down(n) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		e.trace("switch-fail skip: pool exhausted")
		return
	}
	n := candidates[e.rng.Intn(len(candidates))]
	e.downSw = append(e.downSw, n)
	e.res.Faults.SwitchFail++
	e.obs.fault(kindSwitchFail, int64(n))
	for _, s := range e.d.Shards() {
		if s.Down() {
			continue
		}
		rep, err := s.Ctrl.FailSwitch(n)
		// "installed no paths" just means every path this shard had ran
		// through the dead switch and nothing was replannable; state stays
		// consistent and paths reinstall on demand.
		e.trace("switch-fail sw=%d shard=%d recomputed=%d unreachable=%d err=%v",
			n, s.ID, rep.Recomputed, rep.Unreachable, err)
	}
	e.check("switch-fail")
}

func (e *engine) recoverSwitch(n topo.NodeID) {
	e.res.Faults.SwitchRecover++
	e.obs.fault(kindSwitchRecover, int64(n))
	for _, s := range e.d.Shards() {
		if s.Down() {
			continue
		}
		rep, err := s.Ctrl.RecoverSwitch(n)
		e.trace("switch-recover sw=%d shard=%d recomputed=%d err=%v", n, s.ID, rep.Recomputed, err)
	}
}

// shardKill picks a victim shard and fails it over. Agent reports cover a
// seeded ~70% of the victim's attached UEs; the replicated store supplies
// the remainder, exercising both §5.2 recovery sources.
func (e *engine) shardKill() {
	var live []*shard.Shard
	for _, s := range e.d.Shards() {
		if !s.Down() {
			live = append(live, s)
		}
	}
	if len(live) < 2 {
		e.trace("shard-kill skip: %d live", len(live))
		e.workload() // keep the schedule length useful
		return
	}
	victim := live[e.rng.Intn(len(live))]
	byBS := make(map[packet.BSID][]core.UE)
	for _, ue := range victim.Ctrl.UEs() { // sorted by IMSI: stable RNG use
		if ue.LocIP != 0 && e.rng.Float64() < 0.7 {
			byBS[ue.BS] = append(byBS[ue.BS], ue)
		}
	}
	stations := make([]int, 0, len(byBS))
	for bs := range byBS {
		stations = append(stations, int(bs))
	}
	sort.Ints(stations)
	reports := make([]core.AgentLocationReport, 0, len(stations))
	for _, bs := range stations {
		reports = append(reports, core.AgentLocationReport{BS: packet.BSID(bs), UEs: byBS[packet.BSID(bs)]})
	}
	rep, err := e.d.FailShard(victim.ID, reports)
	if err != nil {
		e.fail(fmt.Errorf("chaos: failing shard %d: %w", victim.ID, err))
		return
	}
	e.res.Faults.ShardKill++
	e.obs.fault(kindShardKill, int64(victim.ID))
	e.trace("shard-kill id=%d reports=%d %s", victim.ID, len(reports), rep)
	e.check("shard-kill")
}

// agentRestart tears down the control channel (dropping any held frames)
// and reconnects, re-announcing a base station like a rebooted local agent.
func (e *engine) agentRestart() {
	_ = e.cl.Close()
	e.connect()
	bs := e.stations[e.rng.Intn(len(e.stations))]
	e.setBarrier(true)
	err := e.cl.Hello(bs)
	e.setBarrier(false)
	if err != nil {
		e.fail(fmt.Errorf("chaos: hello after agent restart: %w", err))
		return
	}
	e.res.Faults.AgentRestart++
	e.obs.fault(kindAgentRestart, int64(bs))
	e.trace("agent-restart hello bs=%d", bs)
	e.check("agent-restart")
}

// policyChurn withdraws one allow clause's paths on every live shard; later
// path requests reinstall them.
func (e *engine) policyChurn() {
	clause := e.clauses[e.rng.Intn(len(e.clauses))]
	for _, s := range e.d.Shards() {
		if s.Down() {
			continue
		}
		err := s.Ctrl.RemovePolicyPaths(clause)
		e.trace("policy-churn clause=%d shard=%d err=%v", clause, s.ID, err)
	}
	e.res.Faults.PolicyChurn++
	e.obs.fault(kindPolicyChurn, int64(clause))
	e.check("policy-churn")
}

// finish recovers every switch, sweeps a path request over every (station,
// clause) pair, and runs the checker twice: once to prove the system
// converged (no reservation survives its release), once after the sweep to
// prove full reinstallation stays consistent.
func (e *engine) finish() {
	for _, n := range e.downSw {
		e.recoverSwitch(n)
	}
	e.downSw = nil
	e.check("final-recovery")
	if e.err != nil {
		return
	}
	if e.res.Final.Reservations != 0 {
		e.fail(fmt.Errorf("chaos: %d reservations survived quiescence", e.res.Final.Reservations))
		return
	}
	for _, bs := range e.stations {
		for _, clause := range e.clauses {
			tag, err := e.d.RequestPath(bs, clause)
			if err != nil {
				e.fail(fmt.Errorf("chaos: final sweep bs=%d clause=%d: %w", bs, clause, err))
				return
			}
			if owner, ok := e.d.Ring().Owner(bs); ok && int(tag)%e.cfg.Shards != owner {
				e.fail(fmt.Errorf("chaos: final sweep bs=%d tag %d outside shard %d's residue class", bs, tag, owner))
				return
			}
		}
	}
	e.check("final-sweep")
}

func (e *engine) countErr(err error) {
	if err != nil {
		e.res.OpErrors++
	}
}
