package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/ctrlproto"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/topo"
)

// BlackoutConfig parameterises one control-plane blackout run: a fleet of
// pushed-snapshot agents (no synchronous controller RPC anywhere in the
// packet-in path) admits live traffic, the control channel to every agent
// is severed for OutageTicks sim-milliseconds while the controller keeps
// mutating underneath (policy churn reallocating tags), and the run then
// reconnects, re-pushes, and checks reconciliation. Only Seed has no
// default.
type BlackoutConfig struct {
	Seed int64

	Shards      int // control-plane shards (default 2)
	ClusterSize int // stations per cluster; K=2, so stations = 2*ClusterSize (default 4)
	UEs         int // subscriber population (default 16)

	// OutageTicks is the blackout length in sim-kernel ticks (1ms each;
	// default 2000). The CI smoke runs 30000 — 30 sim-seconds dark.
	OutageTicks int
	// ProbeEvery runs the continuity probe (every admitted UE classified
	// and forwarded against LKG state) every N outage ticks (default 10).
	ProbeEvery int
	// ChurnEvery mutates the controller mid-blackout every N outage ticks
	// (default 500): one allow clause's paths are withdrawn and
	// re-requested, so reconnecting agents have real divergence to
	// reconcile.
	ChurnEvery int

	// Trace receives one line per notable event; two same-seed runs write
	// identical bytes. Nil discards.
	Trace io.Writer

	// Obs instruments the stack under test plus every agent (per-station
	// Sub views). The registry clock is pointed at the sim kernel.
	Obs *obs.Registry
}

func (cfg BlackoutConfig) withDefaults() BlackoutConfig {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = 4
	}
	if cfg.UEs <= 0 {
		cfg.UEs = 16
	}
	if cfg.OutageTicks <= 0 {
		cfg.OutageTicks = 2000
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 10
	}
	if cfg.ChurnEvery <= 0 {
		cfg.ChurnEvery = 500
	}
	return cfg
}

// BlackoutResult summarises a blackout run. It is comparable, so tests
// assert two same-seed runs agree with ==.
type BlackoutResult struct {
	Stations int
	Admitted int // UEs admitted (baseline verdicts recorded) before the outage

	OutageTicks    int
	OutageProbes   int // continuity verdicts evaluated while dark
	OutageForward  int // probe packets forwarded by access switches on LKG state
	OutageNewFlows int // brand-new flows admitted from the snapshot while dark
	VerdictFlips   int // MUST be zero: an admitted UE's verdict changed mid-blackout
	PolicyChurns   int // controller mutations injected during the outage

	Kept          int // reconciliation: flows confirmed on reconnect
	Replayed      int // reconciliation: flows reinstalled under changed tags
	TornDown      int // reconciliation: flows whose path the new state withdrew
	StaleRejected int // re-deliveries of old snapshot versions refused by CAS
	Converged     bool
}

// blackoutEngine drives one run. The driver is single-threaded (the sim
// kernel); snapshot publication happens on per-connection read loops, and
// every push is followed by a barrier Echo on the same connection, so the
// driver never observes a half-delivered push.
type blackoutEngine struct {
	cfg BlackoutConfig
	k   *sim.Kernel
	rng *rand.Rand

	g        *topo.Generated
	d        *shard.Dispatcher
	srv      *ctrlproto.Server
	plan     packet.Plan
	stations []packet.BSID
	clauses  []int

	agents map[packet.BSID]*agent.Agent
	conns  map[packet.BSID]*ctrlproto.Client
	ues    []core.UE // admitted population, attach order

	// baseline holds each admitted UE's reference verdict; any deviation
	// during the blackout is an invariant violation.
	baseline map[packet.Addr]agent.Verdict

	// pubMu guards the publish results written by connection read loops
	// and read by the driver after its barrier.
	pubMu   sync.Mutex
	lastRep agent.ReconcileReport // guarded by pubMu
	lastErr error                 // guarded by pubMu

	res BlackoutResult
	obs chaosObs
	err error
}

// RunBlackout executes one seeded blackout schedule. A nil error means the
// continuity invariant held: zero verdict flips while dark, reconciliation
// converged on reconnect, and every stale re-delivery was refused.
func RunBlackout(cfg BlackoutConfig) (BlackoutResult, error) {
	cfg = cfg.withDefaults()
	e := &blackoutEngine{
		cfg:      cfg,
		k:        sim.NewKernel(cfg.Seed),
		agents:   make(map[packet.BSID]*agent.Agent),
		conns:    make(map[packet.BSID]*ctrlproto.Client),
		baseline: make(map[packet.Addr]agent.Verdict),
	}
	e.rng = e.k.Fork("blackout-schedule")
	if cfg.Obs != nil {
		k := e.k
		cfg.Obs.SetClock(func() int64 { return int64(k.Now()) })
	}
	e.obs = newChaosObs(cfg.Obs)
	if err := e.setup(); err != nil {
		return e.res, err
	}
	defer e.d.Close()
	defer e.closeConns()

	e.warm()
	if e.err != nil {
		return e.res, e.err
	}
	e.blackout()
	if e.err != nil {
		return e.res, e.err
	}
	e.reconnectAndReconcile()
	return e.res, e.err
}

func (e *blackoutEngine) setup() error {
	g, err := topo.Generate(topo.GenParams{
		K: genK, ClusterSize: e.cfg.ClusterSize, MBTypes: 3, Seed: e.cfg.Seed,
	})
	if err != nil {
		return err
	}
	e.g = g
	for _, st := range g.Stations {
		e.stations = append(e.stations, st.ID)
	}
	pol := policy.ExampleCarrierPolicy()
	for id := 0; id < pol.Len(); id++ {
		if cl, ok := pol.Clause(id); ok && cl.Action.Allow {
			e.clauses = append(e.clauses, id)
		}
	}
	// Same widened tag field as the chaos engine: every churn round
	// allocates fresh tags, and stale ones must miss, never alias.
	e.plan = packet.DefaultPlan
	e.plan.TagBits = 12
	d, err := shard.New(shard.Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   pol,
		Plan:     e.plan,
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards:  e.cfg.Shards,
		Workers: 1, // queue order is processing order: deterministic views
		Obs:     e.cfg.Obs,
	})
	if err != nil {
		return err
	}
	e.d = d
	e.srv = ctrlproto.NewServer(d)
	e.srv.Workers = 1
	e.srv.Instrument(e.cfg.Obs)

	for _, bs := range e.stations {
		sw := switchsim.NewSwitch(fmt.Sprintf("as-%d", bs))
		ag := agent.New(bs, sw, e.plan, nil) // nil controller: pushed-snapshot mode
		if e.cfg.Obs != nil {
			ag.Instrument(e.cfg.Obs.Sub(fmt.Sprintf("bs.%d", bs)))
		}
		e.agents[bs] = ag
	}
	e.res.Stations = len(e.stations)
	e.connectAll()
	return e.err
}

// connectAll (re)builds one control channel per station and announces it.
func (e *blackoutEngine) connectAll() {
	for _, bs := range e.stations {
		ag := e.agents[bs]
		a, b := net.Pipe()
		go e.srv.ServeConn(a)
		cl := ctrlproto.NewClient(b)
		cl.OnSnapshot = func(n ctrlproto.SnapshotNotify) error {
			rep, err := ag.Publish(agent.NewSnapshot(n.Version, n.View))
			e.pubMu.Lock()
			e.lastRep, e.lastErr = rep, err
			e.pubMu.Unlock()
			return err
		}
		if err := cl.Hello(bs); err != nil {
			e.fail(fmt.Errorf("blackout: hello bs%d: %w", bs, err))
			return
		}
		e.conns[bs] = cl
	}
}

func (e *blackoutEngine) closeConns() {
	for _, bs := range e.stations {
		if cl := e.conns[bs]; cl != nil {
			_ = cl.Close()
			delete(e.conns, bs)
		}
	}
}

// push exports bs's view from the dispatcher, pushes it at the given
// version over the station's control channel, and barriers with an Echo so
// the publish (or its refusal) is complete when push returns.
func (e *blackoutEngine) push(bs packet.BSID, version uint64) (agent.ReconcileReport, error) {
	view, err := e.d.AgentView(bs)
	if err != nil {
		return agent.ReconcileReport{}, err
	}
	n, err := e.srv.PushSnapshot(ctrlproto.SnapshotNotify{Version: version, View: view})
	if err != nil {
		return agent.ReconcileReport{}, err
	}
	if n != 1 {
		return agent.ReconcileReport{}, fmt.Errorf("blackout: push bs%d reached %d conns", bs, n)
	}
	if _, err := e.conns[bs].Echo(nil); err != nil { // barrier
		return agent.ReconcileReport{}, err
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	return e.lastRep, e.lastErr
}

// probePacket is a UE's canonical upstream web flow.
func probePacket(ue core.UE, sport uint16) *packet.Packet {
	return &packet.Packet{Src: ue.PermIP, Dst: packet.AddrFrom4(1, 1, 1, 1),
		SrcPort: sport, DstPort: 80, Proto: packet.ProtoTCP}
}

// warm attaches the population, sweeps every (station, clause) path so the
// controllers' tag state is fully admitted, pushes the first snapshot
// generation to every agent, and records each UE's baseline verdict plus
// one established microflow.
func (e *blackoutEngine) warm() {
	for i := 0; i < e.cfg.UEs; i++ {
		imsi := fmt.Sprintf("imsi-%03d", i)
		if err := e.d.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"}); err != nil {
			e.fail(err)
			return
		}
		bs := e.stations[e.rng.Intn(len(e.stations))]
		ue, _, err := e.d.Attach(imsi, bs)
		if err != nil {
			e.fail(fmt.Errorf("blackout: seeding attach %s at bs%d: %w", imsi, bs, err))
			return
		}
		e.ues = append(e.ues, ue)
		e.trace("seed attach %s bs=%d loc=%s", imsi, bs, ue.LocIP)
	}
	for _, bs := range e.stations {
		for _, clause := range e.clauses {
			if _, err := e.d.RequestPath(bs, clause); err != nil {
				e.fail(fmt.Errorf("blackout: warm path bs%d clause %d: %w", bs, clause, err))
				return
			}
		}
	}
	for _, bs := range e.stations {
		ag := e.agents[bs]
		if _, err := e.push(bs, ag.Version()+1); err != nil {
			e.fail(fmt.Errorf("blackout: warm push bs%d: %w", bs, err))
			return
		}
		e.trace("warm push bs=%d v=%d ues=%d", bs, ag.Version(), ag.NumUEs())
	}
	for _, ue := range e.ues {
		ag := e.agents[ue.BS]
		allowed, err := ag.HandlePacketIn(probePacket(ue, 40000))
		if err != nil || !allowed {
			e.fail(fmt.Errorf("blackout: baseline flow for %s: allowed=%v err=%v", ue.IMSI, allowed, err))
			return
		}
		v := ag.Classify(probePacket(ue, 40000))
		if !v.Known || !v.Allowed || v.Tag == 0 {
			e.fail(fmt.Errorf("blackout: baseline verdict for %s: %+v", ue.IMSI, v))
			return
		}
		e.baseline[ue.PermIP] = v
		e.res.Admitted++
	}
	e.trace("warm done admitted=%d stations=%d", e.res.Admitted, e.res.Stations)
}

// blackout severs every control channel and drives OutageTicks of live
// traffic: continuity probes (classify + forward through the access
// switch against the baseline), new flows admitted purely from LKG state,
// and controller-side policy churn the agents cannot see.
func (e *blackoutEngine) blackout() {
	e.closeConns()
	e.obs.fault(kindBlackout, int64(e.cfg.OutageTicks))
	e.trace("blackout begin ticks=%d", e.cfg.OutageTicks)
	tickNo := 0
	_, err := e.k.Every(tick, func() bool {
		if e.err != nil {
			return false
		}
		tickNo++
		e.res.OutageTicks++
		if tickNo%e.cfg.ProbeEvery == 0 {
			e.probe(tickNo)
		}
		if tickNo%e.cfg.ChurnEvery == 0 {
			e.churn()
		}
		return e.err == nil && tickNo < e.cfg.OutageTicks
	})
	if err != nil {
		e.fail(err)
		return
	}
	e.k.Run()
	e.trace("blackout end probes=%d forwarded=%d newflows=%d flips=%d churns=%d",
		e.res.OutageProbes, e.res.OutageForward, e.res.OutageNewFlows,
		e.res.VerdictFlips, e.res.PolicyChurns)
}

// probe checks every admitted UE against its baseline: the verdict must
// not flip, and the established microflow must still rewrite and forward
// the packet in the access switch.
func (e *blackoutEngine) probe(tickNo int) {
	for _, ue := range e.ues {
		ag := e.agents[ue.BS]
		v := ag.Classify(probePacket(ue, 40000))
		e.res.OutageProbes++
		if base := e.baseline[ue.PermIP]; v != base {
			e.res.VerdictFlips++
			e.fail(fmt.Errorf("blackout: t=%d verdict flip for %s: %+v -> %+v",
				tickNo, ue.IMSI, base, v))
			return
		}
		q := probePacket(ue, 40000)
		sv := ag.Access.Process(q, switchsim.PortUE)
		if sv.Drop || q.Src != ue.LocIP {
			e.fail(fmt.Errorf("blackout: t=%d LKG microflow for %s stopped forwarding (drop=%v src=%s)",
				tickNo, ue.IMSI, sv.Drop, q.Src))
			return
		}
		e.res.OutageForward++
	}
	// One rotating UE also opens a brand-new flow, admitted purely from
	// the snapshot: the controller is unreachable, and it must not matter.
	ue := e.ues[(tickNo/e.cfg.ProbeEvery)%len(e.ues)]
	ag := e.agents[ue.BS]
	sport := uint16(42000 + tickNo%1024)
	allowed, err := ag.HandlePacketIn(probePacket(ue, sport))
	if err != nil || !allowed {
		e.fail(fmt.Errorf("blackout: t=%d new flow for %s during outage: allowed=%v err=%v",
			tickNo, ue.IMSI, allowed, err))
		return
	}
	e.res.OutageNewFlows++
}

// churn mutates the controller mid-blackout: one allow clause's paths are
// withdrawn everywhere and immediately re-requested, allocating fresh
// tags. Agents keep forwarding on their (now stale) LKG tags — exactly the
// divergence reconciliation must repair on reconnect.
func (e *blackoutEngine) churn() {
	clause := e.clauses[e.rng.Intn(len(e.clauses))]
	for _, s := range e.d.Shards() {
		if s.Down() {
			continue
		}
		if err := s.Ctrl.RemovePolicyPaths(clause); err != nil {
			e.trace("churn clause=%d shard=%d err=%v", clause, s.ID, err)
		}
	}
	for _, bs := range e.stations {
		if _, err := e.d.RequestPath(bs, clause); err != nil {
			e.fail(fmt.Errorf("blackout: churn repath bs%d clause %d: %w", bs, clause, err))
			return
		}
	}
	e.res.PolicyChurns++
	e.obs.fault(kindPolicyChurn, int64(clause))
	e.trace("churn clause=%d", clause)
}

// reconnectAndReconcile restores every control channel, pushes the fresh
// generation (collecting reconciliation reports), replays a stale version
// at every station (which must be refused), and verifies convergence: every
// admitted UE's verdict now matches the controller's current tag state.
func (e *blackoutEngine) reconnectAndReconcile() {
	e.connectAll()
	if e.err != nil {
		return
	}
	for _, bs := range e.stations {
		ag := e.agents[bs]
		staleVer := ag.Version() // current LKG: anything <= this must be refused later
		rep, err := e.push(bs, staleVer+1)
		if err != nil {
			e.fail(fmt.Errorf("blackout: reconnect push bs%d: %w", bs, err))
			return
		}
		e.res.Kept += rep.Kept
		e.res.Replayed += rep.Replayed
		e.res.TornDown += rep.TornDown
		e.trace("reconcile bs=%d v=%d kept=%d replayed=%d torndown=%d",
			bs, ag.Version(), rep.Kept, rep.Replayed, rep.TornDown)

		// Out-of-order delivery: the wire replays the pre-outage version.
		// CAS-by-version must refuse it without touching state.
		before := ag.Stats().StaleDrops
		if _, err := e.push(bs, staleVer); !errors.Is(err, agent.ErrStaleSnapshot) {
			e.fail(fmt.Errorf("blackout: bs%d accepted stale v%d (err=%v)", bs, staleVer, err))
			return
		}
		if ag.Stats().StaleDrops != before+1 {
			e.fail(fmt.Errorf("blackout: bs%d stale drop not counted", bs))
			return
		}
		e.res.StaleRejected++
	}
	// Convergence: re-derive each station's view and check every admitted
	// UE classifies to the controller's current tag for its clause.
	for _, ue := range e.ues {
		ag := e.agents[ue.BS]
		view, err := e.d.AgentView(ue.BS)
		if err != nil {
			e.fail(err)
			return
		}
		want := agent.NewSnapshot(ag.Version(), view)
		v := ag.Classify(probePacket(ue, 40000))
		ref, ok := want.UE(ue.PermIP)
		if !ok || !v.Known || !v.Allowed || v.Tag == 0 {
			e.fail(fmt.Errorf("blackout: %s did not converge: verdict=%+v ref=%+v ok=%v",
				ue.IMSI, v, ref, ok))
			return
		}
		// The verdict the live agent gives must equal the verdict a fresh
		// snapshot of controller state gives: reconciliation converged.
		tmp := agent.New(ue.BS, switchsim.NewSwitch("conv"), e.plan, nil)
		if _, err := tmp.Publish(agent.NewSnapshot(1, view)); err != nil {
			e.fail(err)
			return
		}
		if ref := tmp.Classify(probePacket(ue, 40000)); ref != v {
			e.fail(fmt.Errorf("blackout: %s verdict %+v, controller state says %+v", ue.IMSI, v, ref))
			return
		}
	}
	e.res.Converged = true
	e.trace("converged kept=%d replayed=%d torndown=%d stale_rejected=%d",
		e.res.Kept, e.res.Replayed, e.res.TornDown, e.res.StaleRejected)
}

func (e *blackoutEngine) trace(format string, args ...any) {
	if e.cfg.Trace == nil {
		return
	}
	fmt.Fprintf(e.cfg.Trace, "t=%d ", int64(e.k.Now()))
	fmt.Fprintf(e.cfg.Trace, format, args...)
	fmt.Fprintln(e.cfg.Trace)
}

func (e *blackoutEngine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.trace("FATAL %v", err)
}
