package chaos

import (
	"repro/internal/obs"
)

// Fault kind codes carried as the first argument of the "chaos.fault"
// trace event (event args are int64s, so kinds are coded, not named).
const (
	kindSwitchFail = iota
	kindSwitchRecover
	kindShardKill
	kindAgentRestart
	kindDetachMidHandoff
	kindPolicyChurn
	kindBlackout
)

// chaosObs is the harness's own telemetry: faults injected vs invariant
// checks passed, plus one trace event per injected fault. The fault
// events are emitted on the driver thread with sim-kernel timestamps, so
// same-seed runs dump byte-identical traces.
type chaosObs struct {
	faults  *obs.Counter
	checks  *obs.Counter
	evFault *obs.EventType
}

func newChaosObs(reg *obs.Registry) chaosObs {
	if reg == nil {
		return chaosObs{}
	}
	return chaosObs{
		faults:  reg.Counter("chaos.faults.injected"),
		checks:  reg.Counter("chaos.checks.passed"),
		evFault: reg.EventType("chaos.fault", "kind", "id"),
	}
}

// fault records one injected fault: kind is a kind* code, id the faulted
// entity (switch, shard, station, or clause; -1 when not applicable).
func (o chaosObs) fault(kind, id int64) {
	o.faults.Inc()
	o.evFault.Emit(kind, id)
}
