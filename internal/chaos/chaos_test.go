package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// smokeConfig is the fixed-seed tier-1 configuration: long enough that
// every fault category fires, short enough for -race CI.
func smokeConfig() Config {
	return Config{Seed: 1, Events: 600}
}

// TestChaosSmokeDeterministic is the tier-1 gate: one seeded schedule with
// every fault type enabled must pass every invariant check, and running it
// twice must produce byte-identical traces and equal results. Both runs
// carry a full obs registry, so the gate also proves instrumentation does
// not perturb the schedule and that the registry's own event trace is
// byte-identical across same-seed runs (counters are exempt: wire
// retransmissions depend on wall-clock retry timing).
func TestChaosSmokeDeterministic(t *testing.T) {
	var t1, t2 bytes.Buffer
	reg1, reg2 := obs.New(), obs.New()
	cfg1 := smokeConfig()
	cfg1.Trace = &t1
	cfg1.Obs = reg1
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatalf("chaos run: %v\ntail:\n%s", err, tail(t1.String(), 30))
	}
	cfg2 := smokeConfig()
	cfg2.Trace = &t2
	cfg2.Obs = reg2
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatalf("second chaos run: %v", err)
	}

	if r1 != r2 {
		t.Errorf("same-seed results differ:\n  %+v\n  %+v", r1, r2)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatalf("same-seed traces differ: %s", firstDiff(t1.String(), t2.String()))
	}
	d1, d2 := reg1.TraceJSON(), reg2.TraceJSON()
	if !bytes.Equal(d1, d2) {
		t.Fatalf("same-seed obs trace dumps differ: %s", firstDiff(string(d1), string(d2)))
	}
	if reg1.TraceLen() == 0 {
		t.Error("obs registry recorded no trace events")
	}
	f := r1.Faults
	wantFaults := uint64(f.SwitchFail + f.SwitchRecover + f.ShardKill +
		f.AgentRestart + f.DetachMidHandoff + f.PolicyChurn)
	s := reg1.Snapshot()
	if got := s.Counters["chaos.faults.injected"]; got != wantFaults {
		t.Errorf("chaos.faults.injected = %d, want %d", got, wantFaults)
	}
	if got := s.Counters["chaos.checks.passed"]; got != uint64(r1.Checks) {
		t.Errorf("chaos.checks.passed = %d, want %d", got, r1.Checks)
	}

	if r1.Events != 600 {
		t.Errorf("events = %d, want 600", r1.Events)
	}
	if f.SwitchFail == 0 || f.SwitchRecover == 0 || f.ShardKill == 0 ||
		f.AgentRestart == 0 || f.DetachMidHandoff == 0 || f.PolicyChurn == 0 {
		t.Errorf("a fault category never fired: %+v", f)
	}
	if f.WireFaulted == 0 {
		t.Errorf("no wire frame was ever faulted: %+v", f)
	}
	if r1.Checks == 0 || r1.Releases == 0 {
		t.Errorf("checks=%d releases=%d, want both > 0", r1.Checks, r1.Releases)
	}
	if r1.Final.Reservations != 0 {
		t.Errorf("final report leaks %d reservations", r1.Final.Reservations)
	}
	if r1.Final.Shards == 0 || r1.Final.Paths == 0 {
		t.Errorf("final report empty: %+v", r1.Final)
	}
}

// TestChaosSeedsDiverge guards against the harness accidentally ignoring
// its seed (a constant schedule would still be "deterministic").
func TestChaosSeedsDiverge(t *testing.T) {
	var t1, t2 bytes.Buffer
	cfg := Config{Seed: 7, Events: 120, Trace: &t1}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("seed 7: %v", err)
	}
	cfg = Config{Seed: 8, Events: 120, Trace: &t2}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("seed 8: %v", err)
	}
	if bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestChaosNoWireFaults: with wire faults disabled the harness still
// injects every other fault type and converges.
func TestChaosNoWireFaults(t *testing.T) {
	r, err := Run(Config{Seed: 3, Events: 200, WireFaultRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.WireFaulted != 0 {
		t.Fatalf("wire faults injected while disabled: %+v", r.Faults)
	}
	if r.Faults.SwitchFail == 0 {
		t.Fatalf("no switch faults in %d events: %+v", r.Events, r.Faults)
	}
}

func tail(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  %s\n  %s", i+1, al[i], bl[i])
		}
	}
	return "length mismatch"
}
