package chaos

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// blackoutSmoke is the tier-1 configuration: the controller is dark for 30
// sim-seconds (30000 one-millisecond ticks) under live traffic.
var blackoutSmoke = BlackoutConfig{Seed: 7, OutageTicks: 30000}

func runBlackout(t *testing.T, cfg BlackoutConfig) (BlackoutResult, string, string) {
	t.Helper()
	var trace strings.Builder
	reg := obs.New()
	cfg.Trace = &trace
	cfg.Obs = reg
	res, err := RunBlackout(cfg)
	if err != nil {
		t.Fatalf("blackout run failed: %v\ntail:\n%s", err, tail(trace.String(), 20))
	}
	return res, trace.String(), string(reg.TraceJSON())
}

// TestBlackoutContinuity is the data-plane-continuity invariant: during a 30
// sim-second control-plane blackout, every admitted UE keeps its verdict and
// its forwarding microflows, new flows are admitted purely from LKG state,
// and post-reconnect reconciliation converges with every stale re-delivery
// refused. Two same-seed runs must agree byte-for-byte.
func TestBlackoutContinuity(t *testing.T) {
	res, trace, events := runBlackout(t, blackoutSmoke)

	if res.VerdictFlips != 0 {
		t.Errorf("verdict flips during blackout = %d, want 0", res.VerdictFlips)
	}
	if !res.Converged {
		t.Error("post-reconnect reconciliation did not converge")
	}
	if res.Admitted == 0 || res.OutageProbes == 0 || res.OutageForward == 0 {
		t.Errorf("blackout exercised nothing: %+v", res)
	}
	if res.OutageForward != res.OutageProbes {
		t.Errorf("forwarded %d of %d probes during outage", res.OutageForward, res.OutageProbes)
	}
	if res.OutageNewFlows == 0 {
		t.Error("no new flow was admitted from LKG state during the outage")
	}
	if res.PolicyChurns == 0 {
		t.Error("no controller churn during the outage: reconciliation untested")
	}
	if res.Replayed == 0 {
		t.Error("churn reallocated tags but reconciliation replayed nothing")
	}
	if res.StaleRejected != res.Stations {
		t.Errorf("stale snapshots rejected at %d of %d stations", res.StaleRejected, res.Stations)
	}

	res2, trace2, events2 := runBlackout(t, blackoutSmoke)
	if res != res2 {
		t.Errorf("same-seed results differ:\n%+v\n%+v", res, res2)
	}
	if trace != trace2 {
		t.Errorf("same-seed traces diverge: %s", firstDiff(trace, trace2))
	}
	if events != events2 {
		t.Error("same-seed obs event traces diverge")
	}
}

// TestBlackoutSeedsDiverge guards the harness against degenerating into a
// constant: different seeds must produce different schedules.
func TestBlackoutSeedsDiverge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgA := BlackoutConfig{Seed: 1, OutageTicks: 2000}
	cfgB := BlackoutConfig{Seed: 2, OutageTicks: 2000}
	_, traceA, _ := runBlackout(t, cfgA)
	_, traceB, _ := runBlackout(t, cfgB)
	if traceA == traceB {
		t.Error("seeds 1 and 2 produced identical traces")
	}
}
