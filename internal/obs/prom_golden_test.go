package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestWritePrometheusGolden pins the exact text exposition — HELP and
// TYPE lines, cumulative le buckets, +Inf, _sum/_count — against a
// checked-in golden file. Scrape-format regressions (ordering, spacing,
// escaping) show up as a byte diff, not as a broken dashboard.
// Regenerate deliberately with: go test ./internal/obs -run Golden -update-golden
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	c := r.Counter("golden.requests.total")
	r.Doc("golden.requests.total", "Requests handled since start")
	g := r.Gauge("golden.queue.depth")
	r.Doc("golden.queue.depth", `Live queue depth; escapes \ and
newlines`)
	h := r.Histogram("golden.latency.ns", 100, 1000, 10000)
	r.Doc("golden.latency.ns", "Request latency in nanoseconds")
	r.Counter("golden.undocumented.total") // no Doc: no HELP line

	c.Add(42)
	g.Set(-3)
	for _, v := range []int64{50, 50, 500, 5000, 50000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden file %s:\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}
