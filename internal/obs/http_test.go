package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	r := New()
	r.SetClock(func() int64 { return 1000 })
	r.Counter("debug.hits").Add(3)
	r.Histogram("debug.lat", 10, 100).Observe(42)
	r.EventType("debug.ev", "n").Emit(7)
	srv := httptest.NewServer(DebugHandler(r))
	t.Cleanup(srv.Close)
	return r, srv
}

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestDebugMetricsEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, ctype := get(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	for _, line := range []string{"debug_hits 3", `debug_lat_bucket{le="100"} 1`, "debug_lat_count 1"} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metrics missing %q:\n%s", line, body)
		}
	}
}

func TestDebugSnapshotEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, ctype := get(t, srv.URL+"/debug/snapshot")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, body)
	}
	if snap.Counters["debug.hits"] != 3 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if snap.Histograms["debug.lat"].Count != 1 {
		t.Fatalf("snapshot histograms = %v", snap.Histograms)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, ctype := get(t, srv.URL+"/debug/events")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("events not JSON: %v\n%s", err, body)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	if events[0]["type"] != "debug.ev" || events[0]["n"] != float64(7) || events[0]["t"] != float64(1000) {
		t.Fatalf("event = %v", events[0])
	}
}

func TestDebugPprofEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, _ := get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}
	if body, _ := get(t, srv.URL+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
