package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	r := New()
	r.SetClock(func() int64 { return 1000 })
	r.Counter("debug.hits").Add(3)
	r.Histogram("debug.lat", 10, 100).Observe(42)
	r.EventType("debug.ev", "n").Emit(7)
	srv := httptest.NewServer(DebugHandler(r))
	t.Cleanup(srv.Close)
	return r, srv
}

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestDebugMetricsEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, ctype := get(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	for _, line := range []string{"debug_hits 3", `debug_lat_bucket{le="100"} 1`, "debug_lat_count 1"} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metrics missing %q:\n%s", line, body)
		}
	}
}

func TestDebugSnapshotEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, ctype := get(t, srv.URL+"/debug/snapshot")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, body)
	}
	if snap.Counters["debug.hits"] != 3 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if snap.Histograms["debug.lat"].Count != 1 {
		t.Fatalf("snapshot histograms = %v", snap.Histograms)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, ctype := get(t, srv.URL+"/debug/events")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("events not JSON: %v\n%s", err, body)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	if events[0]["type"] != "debug.ev" || events[0]["n"] != float64(7) || events[0]["t"] != float64(1000) {
		t.Fatalf("event = %v", events[0])
	}
}

func TestDebugEventsSinceEndpoint(t *testing.T) {
	r, srv := debugServer(t)
	ev := r.EventType("debug.ev", "n")
	ev.Emit(8)
	ev.Emit(9)
	// Cursor past the first two events: only seq 2 remains, and the
	// payload carries the cursor for the next poll.
	body, _ := get(t, srv.URL+"/debug/events?since=2")
	var page struct {
		Next   uint64           `json:"next"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("incremental events not JSON: %v\n%s", err, body)
	}
	if page.Next != 3 {
		t.Fatalf("next cursor %d, want 3", page.Next)
	}
	if len(page.Events) != 1 || page.Events[0]["seq"] != float64(2) || page.Events[0]["n"] != float64(9) {
		t.Fatalf("incremental page = %+v", page.Events)
	}
	// Polling from the returned cursor drains nothing new.
	body, _ = get(t, srv.URL+"/debug/events?since=3")
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 0 || page.Next != 3 {
		t.Fatalf("tail poll = next %d, %d events", page.Next, len(page.Events))
	}
	if resp, err := http.Get(srv.URL + "/debug/events?since=nope"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor must 400, got %v %v", resp.StatusCode, err)
	}
}

func TestDebugSpansEndpoint(t *testing.T) {
	r, srv := debugServer(t)
	r.SetSpanSampling(1)
	root := r.SpanName("debug.span.op")
	child := r.SpanName("debug.span.inner")
	sp := root.Root()
	child.Start(sp.Context()).End()
	sp.End()

	body, ctype := get(t, srv.URL+"/debug/spans")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var page struct {
		Attribution Attribution  `json:"attribution"`
		Spans       []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("spans not JSON: %v\n%s", err, body)
	}
	if len(page.Spans) != 2 || page.Attribution.Traces != 1 {
		t.Fatalf("span page = %+v", page)
	}
	if page.Spans[0].Name != "debug.span.op" {
		t.Fatalf("spans[0] = %+v", page.Spans[0])
	}

	text, ctype := get(t, srv.URL+"/debug/spans?format=waterfall")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("waterfall content type %q", ctype)
	}
	if !strings.Contains(text, "debug.span.inner") || !strings.Contains(text, "end-to-end") {
		t.Fatalf("waterfall missing layers:\n%s", text)
	}
}

func TestDebugPprofEndpoint(t *testing.T) {
	_, srv := debugServer(t)
	body, _ := get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}
	if body, _ := get(t, srv.URL+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
