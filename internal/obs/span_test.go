package obs

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// tickClock returns a deterministic monotone clock: every read advances
// one nanosecond. Spans timed with it get exact, replayable durations.
func tickClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }
}

func TestSpanBasics(t *testing.T) {
	r := New()
	r.SetClock(tickClock())
	r.SetSpanSampling(1)
	root := r.SpanName("span.root")
	child := r.SpanName("span.child")

	sp := root.Root()
	if !sp.Context().Sampled() {
		t.Fatal("sampling 1 must trace the first request")
	}
	c1 := child.Start(sp.Context())
	c1.End()
	c2 := child.Start(sp.Context())
	c2.End()
	sp.End()

	recs := r.SpanRecords()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records sort by (trace, span): root allocated its ID first.
	if recs[0].Name != "span.root" || recs[0].Parent != 0 {
		t.Fatalf("first record is not the root: %+v", recs[0])
	}
	for _, rec := range recs[1:] {
		if rec.Name != "span.child" {
			t.Fatalf("unexpected span name %q", rec.Name)
		}
		if rec.Parent != recs[0].Span {
			t.Fatalf("child parent %d, want root span %d", rec.Parent, recs[0].Span)
		}
		if rec.Trace != recs[0].Trace {
			t.Fatalf("child trace %d, want %d", rec.Trace, recs[0].Trace)
		}
		if rec.End <= rec.Start {
			t.Fatalf("non-positive child duration: %+v", rec)
		}
	}
	// The root opened before and closed after both children.
	if recs[0].Start >= recs[1].Start || recs[0].End <= recs[2].End {
		t.Fatalf("root does not enclose children: %+v", recs)
	}
	if got := r.SpanCount(); got != 3 {
		t.Fatalf("SpanCount %d, want 3", got)
	}
	if r.SpanDropped() != 0 {
		t.Fatalf("unexpected drops: %d", r.SpanDropped())
	}
}

func TestSpanSamplingDeterministic(t *testing.T) {
	run := func() []byte {
		r := New()
		r.SetClock(tickClock())
		r.SetSpanSampling(4)
		root := r.SpanName("span.root")
		child := r.SpanName("span.child")
		for i := 0; i < 10; i++ {
			sp := root.Root()
			c := child.Start(sp.Context())
			c.End()
			sp.End()
		}
		return r.SpanJSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed span dumps differ:\n%s\n----\n%s", a, b)
	}
	// 10 root attempts at 1-in-4: attempts 0, 4 and 8 sample.
	r := New()
	r.SetSpanSampling(4)
	root := r.SpanName("span.root")
	var sampled int
	for i := 0; i < 10; i++ {
		sp := root.Root()
		if sp.Context().Sampled() {
			sampled++
		}
		sp.End()
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 10 at 1-in-4, want 3", sampled)
	}
}

func TestSpanDisabledAndNilSafety(t *testing.T) {
	r := New()
	r.SetSpanSampling(0)
	root := r.SpanName("span.root")
	if root.Root().Context().Sampled() {
		t.Fatal("sampling 0 must disable tracing")
	}
	var nilName *SpanName
	nilName.Root().End()
	nilName.Start(SpanContext{}).End()
	if nilName.Name() != "" {
		t.Fatal("nil SpanName must have empty name")
	}
	var nilReg *Registry
	nilReg.SetSpanSampling(8)
	nilReg.SpanName("span.x").Root().End()
	if nilReg.SpanRecords() != nil || nilReg.SpanCount() != 0 || nilReg.SpanDropped() != 0 {
		t.Fatal("nil registry must report no spans")
	}
	if !bytes.Equal(nilReg.SpanJSON(), []byte("[\n]\n")) {
		t.Fatalf("nil registry span dump: %q", nilReg.SpanJSON())
	}
	// A child under an unsampled parent stays unsampled.
	if r.SpanName("span.child").Start(SpanContext{}).Context().Sampled() {
		t.Fatal("child of unsampled context must be unsampled")
	}
}

func TestSpanNameRegistration(t *testing.T) {
	r := New()
	a := r.SpanName("span.one")
	if b := r.SpanName("span.one"); a != b {
		t.Fatal("re-registration must return the same handle")
	}
	sub := r.Sub("shard.0")
	if got := sub.SpanName("span.one").Name(); got != "shard.0.span.one" {
		t.Fatalf("sub-prefixed span name %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("single-segment span name must panic")
		}
	}()
	r.SpanName("single")
}

// TestSpanRingWraps drives one trace far past the stripe capacity: the
// retained set stays bounded, the total recorded count stays exact, and
// the retained records are the most recent ones.
func TestSpanRingWraps(t *testing.T) {
	r := New()
	r.SetClock(tickClock())
	r.SetSpanSampling(1)
	root := r.SpanName("span.root")
	child := r.SpanName("span.child")
	sp := root.Root()
	const n = spanStripeSlots * 3
	for i := 0; i < n; i++ {
		child.Start(sp.Context()).End()
	}
	sp.End()
	if got := r.SpanCount(); got != n+1 {
		t.Fatalf("SpanCount %d, want %d", got, n+1)
	}
	recs := r.SpanRecords()
	if len(recs) > spanStripeSlots {
		t.Fatalf("one-trace retention %d exceeds stripe capacity %d", len(recs), spanStripeSlots)
	}
	// The root closed last, so it must have survived the wrap.
	if recs[0].Name != "span.root" {
		t.Fatalf("root span evicted: first retained is %+v", recs[0])
	}
}

// TestSpanUnsampledZeroAlloc is the alloc gate for the tracing fast
// path (make verify fails if it regresses): the not-sampled branches of
// Root, Start and End must not allocate.
func TestSpanUnsampledZeroAlloc(t *testing.T) {
	r := New()
	r.SetSpanSampling(1 << 30) // sampled once at most, on the first run
	root := r.SpanName("span.root")
	child := r.SpanName("span.child")
	root.Root().End() // burn the always-sampled first attempt
	if n := testing.AllocsPerRun(1000, func() {
		sp := root.Root()
		c := child.Start(sp.Context())
		c.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("unsampled span path allocates %.1f per op, want 0", n)
	}
}

// TestSpanSampledZeroAlloc pins the sampled path too: recording into
// the ring is slot reuse, never allocation.
func TestSpanSampledZeroAlloc(t *testing.T) {
	r := New()
	r.SetClock(tickClock())
	r.SetSpanSampling(1)
	root := r.SpanName("span.root")
	child := r.SpanName("span.child")
	if n := testing.AllocsPerRun(1000, func() {
		sp := root.Root()
		c := child.Start(sp.Context())
		c.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("sampled span path allocates %.1f per op, want 0", n)
	}
}

// TestSpanRingStress hammers the span rings from concurrent recorders
// while a reader snapshots continuously — run under -race by make
// verify. Asserts the recorded count is monotone and every snapshot is
// torn-read-free: all fields of a record are mutually consistent (valid
// name, end at or after start, live trace ID) because the seqlock
// rejects slots that changed mid-copy.
func TestSpanRingStress(t *testing.T) {
	const (
		writers = 8
		perG    = 4000
	)
	r := New()
	r.SetClock(tickClock())
	r.SetSpanSampling(1)
	root := r.SpanName("span.root")
	child := r.SpanName("span.child")

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer done.Done()
			start.Wait()
			for i := 0; i < perG; i++ {
				sp := root.Root()
				child.Start(sp.Context()).End()
				sp.End()
			}
		}()
	}

	stop := make(chan struct{})
	var readerErr error
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := r.SpanCount()
			if n < last {
				readerErr = errorf("span count moved backwards: %d -> %d", last, n)
				return
			}
			last = n
			for _, rec := range r.SpanRecords() {
				if rec.Name != "span.root" && rec.Name != "span.child" {
					readerErr = errorf("torn record: bad name %q", rec.Name)
					return
				}
				if rec.End < rec.Start {
					readerErr = errorf("torn record: end %d before start %d", rec.End, rec.Start)
					return
				}
				if rec.Trace == 0 || rec.Span == 0 {
					readerErr = errorf("torn record: zero ids %+v", rec)
					return
				}
			}
		}
	}()

	start.Done()
	done.Wait()
	close(stop)
	reader.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if got := r.SpanCount() + r.SpanDropped(); got != writers*perG*2 {
		t.Fatalf("recorded+dropped %d, want %d", got, writers*perG*2)
	}
}
