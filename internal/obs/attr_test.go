package obs

import (
	"bytes"
	"strings"
	"testing"
)

// rec builds a SpanRecord tersely for table tests.
func rec(trace, span, parent uint64, name string, start, end int64) SpanRecord {
	return SpanRecord{
		Trace: TraceID(trace), Span: SpanID(span), Parent: SpanID(parent),
		Name: name, Start: start, End: end,
	}
}

func TestAttributeSelfTimes(t *testing.T) {
	// One trace: root [0,100] with children queue [10,30] and core
	// [40,90]; core has child rule [50,70].
	recs := []SpanRecord{
		rec(1, 1, 0, "e2e.op", 0, 100),
		rec(1, 2, 1, "shard.queue.wait", 10, 30),
		rec(1, 3, 1, "core.op", 40, 90),
		rec(1, 4, 3, "core.lock.rule", 50, 70),
	}
	a := Attribute(recs)
	if a.Traces != 1 || a.Incomplete != 0 || a.Spans != 4 {
		t.Fatalf("trace accounting: %+v", a)
	}
	if a.TotalNS != 100 {
		t.Fatalf("TotalNS %d, want 100", a.TotalNS)
	}
	if a.SelfSumNS != a.TotalNS {
		t.Fatalf("self times sum to %d, want root duration %d", a.SelfSumNS, a.TotalNS)
	}
	want := map[string]int64{
		"e2e.op":           30, // 100 - 20 - 50
		"shard.queue.wait": 20,
		"core.op":          30, // 50 - 20
		"core.lock.rule":   20,
	}
	for _, seg := range a.Segments {
		if seg.SelfNS != want[seg.Name] {
			t.Errorf("%s self %d, want %d", seg.Name, seg.SelfNS, want[seg.Name])
		}
		if seg.Count != 1 {
			t.Errorf("%s count %d, want 1", seg.Name, seg.Count)
		}
	}
	// Segments are name-sorted for deterministic output.
	for i := 1; i < len(a.Segments); i++ {
		if a.Segments[i-1].Name >= a.Segments[i].Name {
			t.Fatalf("segments not sorted: %q >= %q", a.Segments[i-1].Name, a.Segments[i].Name)
		}
	}
}

func TestAttributeIncompleteTraces(t *testing.T) {
	recs := []SpanRecord{
		// Complete trace.
		rec(1, 1, 0, "e2e.op", 0, 10),
		// Orphan child: its root was evicted from the ring.
		rec(2, 3, 2, "core.op", 0, 5),
		// Two roots in one trace: ambiguous, excluded.
		rec(3, 4, 0, "e2e.op", 0, 5),
		rec(3, 5, 0, "e2e.op", 5, 9),
	}
	a := Attribute(recs)
	if a.Traces != 1 || a.Incomplete != 2 {
		t.Fatalf("want 1 complete + 2 incomplete, got %+v", a)
	}
	if a.TotalNS != 10 || a.SelfSumNS != 10 {
		t.Fatalf("totals over complete traces only: %+v", a)
	}
}

func TestAttributeQuantiles(t *testing.T) {
	var recs []SpanRecord
	// 100 single-span traces with self times 1..100.
	for i := 1; i <= 100; i++ {
		recs = append(recs, rec(uint64(i), uint64(i), 0, "e2e.op", 0, int64(i)))
	}
	a := Attribute(recs)
	if len(a.Segments) != 1 {
		t.Fatalf("want one segment, got %d", len(a.Segments))
	}
	seg := a.Segments[0]
	if seg.P50NS != 50 || seg.P99NS != 99 {
		t.Fatalf("p50 %d p99 %d, want 50 and 99 (nearest rank)", seg.P50NS, seg.P99NS)
	}
	if seg.Share != 1.0 {
		t.Fatalf("single-layer share %f, want 1", seg.Share)
	}
}

func TestAttributeNegativeSelfClamped(t *testing.T) {
	// Child reported longer than its parent (clock skew between
	// goroutines under a coarse clock): self clamps at zero rather
	// than going negative.
	recs := []SpanRecord{
		rec(1, 1, 0, "e2e.op", 0, 10),
		rec(1, 2, 1, "core.op", 0, 15),
	}
	a := Attribute(recs)
	for _, seg := range a.Segments {
		if seg.SelfNS < 0 {
			t.Fatalf("negative self time: %+v", seg)
		}
	}
}

func TestAttributeClipsAsyncOverhang(t *testing.T) {
	// A group-commit flush span outlives the serve span that parents it:
	// only the overlap is on this request's critical path, so the sum
	// invariant must hold anyway.
	recs := []SpanRecord{
		rec(1, 1, 0, "e2e.op", 0, 100),
		rec(1, 2, 1, "wire.serve", 10, 20),
		rec(1, 3, 2, "wire.flush", 15, 80), // 65ns long, 5ns inside its parent
	}
	a := Attribute(recs)
	if a.SelfSumNS != a.TotalNS {
		t.Fatalf("self sum %d, want root duration %d", a.SelfSumNS, a.TotalNS)
	}
	want := map[string]int64{"e2e.op": 90, "wire.serve": 5, "wire.flush": 5}
	for _, seg := range a.Segments {
		if seg.SelfNS != want[seg.Name] {
			t.Errorf("%s self %d, want %d", seg.Name, seg.SelfNS, want[seg.Name])
		}
	}
}

func TestAttributionDeterministicJSONAndWaterfall(t *testing.T) {
	recs := []SpanRecord{
		rec(1, 1, 0, "e2e.op", 0, 100),
		rec(1, 2, 1, "core.op", 10, 60),
	}
	a, b := Attribute(recs), Attribute(recs)
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatal("identical inputs must render identical JSON")
	}
	w := a.Waterfall()
	for _, want := range []string{"e2e.op", "core.op", "end-to-end", "share"} {
		if !strings.Contains(w, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, w)
		}
	}
	// Widest layer prints first: core.op holds 50 of 100ns self time,
	// e2e.op the other 50 — ties break by name, core.op < e2e.op.
	if strings.Index(w, "core.op") > strings.Index(w, "e2e.op") {
		t.Fatalf("waterfall not sorted by self time:\n%s", w)
	}
	if Attribute(nil).Waterfall() == "" {
		t.Fatal("empty attribution must still render a header")
	}
}
