package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test.hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every call on the nil registry and its nil handles must be a no-op.
	r.Counter("a.b").Inc()
	r.Counter("a.b").Add(3)
	r.Gauge("a.b").Set(1)
	r.Histogram("a.b", 1, 2).Observe(5)
	r.EventType("a.b", "x").Emit(1)
	r.SetClock(func() int64 { return 9 })
	if r.Now() != 0 {
		t.Fatal("nil registry Now != 0")
	}
	if r.Sub("x") != nil {
		t.Fatal("nil registry Sub != nil")
	}
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("nil snapshot has %d counters", n)
	}
	if got := string(r.TraceJSON()); got != "[\n]\n" {
		t.Fatalf("nil trace dump = %q", got)
	}
}

func TestGetOrCreate(t *testing.T) {
	r := New()
	a := r.Counter("dup.count")
	b := r.Counter("dup.count")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("dup.lat", 1, 2, 3)
	h2 := r.Histogram("dup.lat", 1, 2, 3)
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
	e1 := r.EventType("dup.ev", "a", "b")
	e2 := r.EventType("dup.ev", "a", "b")
	if e1 != e2 {
		t.Fatal("re-registration returned a different event type")
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := New()
	r.Counter("kind.clash")
	mustPanic("kind clash", func() { r.Gauge("kind.clash") })
	r.Histogram("hist.bounds", 1, 2)
	mustPanic("bounds clash", func() { r.Histogram("hist.bounds", 1, 3) })
	mustPanic("unsorted bounds", func() { r.Histogram("hist.bad", 2, 1) })
	mustPanic("no bounds", func() { r.Histogram("hist.none") })
	r.EventType("ev.keys", "a")
	mustPanic("key clash", func() { r.EventType("ev.keys", "b") })
	mustPanic("too many keys", func() { r.EventType("ev.wide", "a", "b", "c", "d", "e") })
	mustPanic("single segment", func() { r.Counter("flat") })
	mustPanic("uppercase", func() { r.Counter("Core.hits") })
	mustPanic("empty segment", func() { r.Counter("core..hits") })
	mustPanic("trailing dot", func() { r.Counter("core.hits.") })
	mustPanic("bad sub", func() { r.Sub("Bad") })
	ev := r.EventType("ev.narrow", "a")
	mustPanic("excess args", func() { ev.Emit(1, 2) })
}

func TestSubScoping(t *testing.T) {
	r := New()
	s0 := r.Sub("shard.0")
	s1 := r.Sub("shard.1")
	s0.Counter("queue.drops").Inc()
	s1.Counter("queue.drops").Add(2)
	snap := r.Snapshot()
	if snap.Counters["shard.0.queue.drops"] != 1 || snap.Counters["shard.1.queue.drops"] != 2 {
		t.Fatalf("sub-scoped counters wrong: %v", snap.Counters)
	}
	// Sub views share the clock.
	r.SetClock(func() int64 { return 42 })
	if s0.Now() != 42 {
		t.Fatalf("sub view Now = %d, want 42", s0.Now())
	}
}

// TestHistogramBucketBoundaries pins the boundary semantics the exporters
// rely on: bounds are inclusive upper bounds, values above the last bound
// land in the overflow bucket, and negative values land in the first.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("bound.check", 10, 100, 1000)
	for _, v := range []int64{-5, 0, 10, 11, 100, 101, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	want := []uint64{3, 2, 2, 2} // (-inf,10] (10,100] (100,1000] (1000,inf)
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	var sum int64
	for _, v := range []int64{-5, 0, 10, 11, 100, 101, 1000, 1001, 1 << 40} {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	snap := r.Snapshot().Histograms["bound.check"]
	if snap.Count != 9 {
		t.Fatalf("snapshot count = %d, want 9", snap.Count)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := New()
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.Gauge("m.mid").Set(-2)
		r.Histogram("h.lat", 5, 50).Observe(7)
		return r.Snapshot().JSON()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical registries produced different snapshot JSON")
	}
}

func TestTraceRingAndDump(t *testing.T) {
	r := New()
	var now int64
	r.SetClock(func() int64 { return now })
	ev := r.EventType("trace.step", "idx", "val")
	now = 100
	ev.Emit(0, 10)
	now = 200
	ev.Emit(1) // trailing arg omitted: key dropped from the dump
	dump := string(r.TraceJSON())
	want := "[\n" +
		"  {\"seq\":0,\"t\":100,\"type\":\"trace.step\",\"idx\":0,\"val\":10},\n" +
		"  {\"seq\":1,\"t\":200,\"type\":\"trace.step\",\"idx\":1}\n" +
		"]\n"
	if dump != want {
		t.Fatalf("trace dump:\n%s\nwant:\n%s", dump, want)
	}
	if r.TraceLen() != 2 {
		t.Fatalf("TraceLen = %d, want 2", r.TraceLen())
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := New()
	ev := r.EventType("wrap.tick", "i")
	n := defaultTraceCap + 10
	for i := 0; i < n; i++ {
		ev.Emit(int64(i))
	}
	dump := string(r.TraceJSON())
	if strings.Count(dump, "\"type\"") != defaultTraceCap {
		t.Fatalf("retained %d events, want %d", strings.Count(dump, "\"type\""), defaultTraceCap)
	}
	// Oldest retained must be event n - cap, newest n - 1.
	if !strings.Contains(dump, "\"seq\":10,") {
		t.Fatal("oldest retained event missing")
	}
	if strings.Contains(dump, "\"seq\":9,") {
		t.Fatal("overwritten event still present")
	}
	if !strings.Contains(dump, "\"seq\":"+itoa(n-1)+",") {
		t.Fatal("newest event missing")
	}
	if r.TraceLen() != uint64(n) {
		t.Fatalf("TraceLen = %d, want %d", r.TraceLen(), n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("core.tagcache.hit").Add(12)
	r.Gauge("shard.queue.depth").Set(3)
	h := r.Histogram("wire.flush.frames", 1, 8)
	h.Observe(1)
	h.Observe(4)
	h.Observe(99)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# TYPE core_tagcache_hit counter",
		"core_tagcache_hit 12",
		"# TYPE shard_queue_depth gauge",
		"shard_queue_depth 3",
		"# TYPE wire_flush_frames histogram",
		`wire_flush_frames_bucket{le="1"} 1`,
		`wire_flush_frames_bucket{le="8"} 2`,
		`wire_flush_frames_bucket{le="+Inf"} 3`,
		"wire_flush_frames_sum 104",
		"wire_flush_frames_count 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("prometheus output missing %q:\n%s", line, out)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	r.Counter("b.two")
	r.Gauge("a.one")
	r.Histogram("c.three", 1)
	got := r.Names()
	want := []string{"a.one", "b.two", "c.three"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}
