package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryStress hammers one registry from concurrent writer
// goroutines — mimicking RequestPath counters, handoff histograms and
// chaos trace emissions all sharing a table — while a reader snapshots
// continuously. Run under -race by make verify. Asserts:
//
//   - successive snapshots are monotone (counters and histogram totals
//     never move backwards),
//   - every snapshot is internally consistent (histogram Count equals
//     the sum of its buckets as copied),
//   - the final snapshot, taken after all writers join, is exact.
func TestRegistryStress(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	r := New()
	r.Counter("stress.ops")
	g := r.Gauge("stress.inflight")
	h := r.Histogram("stress.lat", 10, 100, 1000)
	ev := r.EventType("stress.ev", "g", "i")

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			// Writers also re-register: get-or-create must be safe under
			// concurrent lookups (chaos clients re-instrument on restart).
			c2 := r.Counter("stress.ops")
			for i := 0; i < perG; i++ {
				c2.Inc()
				g.Add(1)
				h.Observe(int64(i % 2000))
				if i%64 == 0 {
					ev.Emit(int64(w), int64(i))
				}
				g.Add(-1)
			}
		}(w)
	}

	stop := make(chan struct{})
	var readerErr error
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastOps, lastHist uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			ops := snap.Counters["stress.ops"]
			if ops < lastOps {
				readerErr = errorf("counter moved backwards: %d -> %d", lastOps, ops)
				return
			}
			lastOps = ops
			hs := snap.Histograms["stress.lat"]
			var bucketSum uint64
			for _, n := range hs.Counts {
				bucketSum += n
			}
			if hs.Count != bucketSum {
				readerErr = errorf("histogram count %d != bucket sum %d", hs.Count, bucketSum)
				return
			}
			if hs.Count < lastHist {
				readerErr = errorf("histogram count moved backwards: %d -> %d", lastHist, hs.Count)
				return
			}
			lastHist = hs.Count
			if depth := snap.Gauges["stress.inflight"]; depth < 0 || depth > writers {
				readerErr = errorf("inflight gauge out of range: %d", depth)
				return
			}
		}
	}()

	start.Done()
	done.Wait()
	close(stop)
	reader.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	final := r.Snapshot()
	const total = writers * perG
	if got := final.Counters["stress.ops"]; got != total {
		t.Fatalf("final counter = %d, want %d", got, total)
	}
	if got := final.Histograms["stress.lat"].Count; got != total {
		t.Fatalf("final histogram count = %d, want %d", got, total)
	}
	if got := final.Gauges["stress.inflight"]; got != 0 {
		t.Fatalf("final gauge = %d, want 0", got)
	}
	wantEvents := uint64(writers * (perG + 63) / 64)
	if got := r.TraceLen(); got != wantEvents {
		t.Fatalf("TraceLen = %d, want %d", got, wantEvents)
	}
}

func errorf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
