package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync"
)

// defaultTraceCap bounds the event ring: old events are overwritten,
// never allocated past the cap.
const defaultTraceCap = 4096

// maxEventArgs is the fixed per-event argument capacity; registration
// rejects event types with more keys.
const maxEventArgs = 4

// EventType is one registered kind of trace event: a name plus the
// ordered key names its Emit arguments bind to. Obtain through
// Registry.EventType; nil-safe like every obs handle.
type EventType struct {
	tr   *Tracer
	st   *state
	name string
	keys []string
}

// Name returns the registered (prefixed) event name.
func (e *EventType) Name() string {
	if e == nil {
		return ""
	}
	return e.name
}

// Emit records one event, binding args to the type's keys in order
// (missing trailing args read as absent in the dump). Extra args panic:
// that is a programming error at the call site. Emit copies args into a
// fixed-size slot — no allocation — and timestamps the event with the
// registry's injected clock. Emission takes the tracer mutex, so trace
// points belong on slow paths only: the annotation is deliberately just
// "no alloc".
//
// hotpath: no alloc
func (e *EventType) Emit(args ...int64) {
	if e == nil {
		return
	}
	if len(args) > len(e.keys) {
		panic("obs: event " + quote(e.name) + " emitted with too many args")
	}
	e.tr.emit(e, (*e.st.clock.Load())(), args)
}

// event is one ring slot.
type event struct {
	seq  uint64
	time int64
	typ  *EventType
	n    int
	args [maxEventArgs]int64
}

// Tracer is the bounded ring of structured events shared by a registry
// and its Sub views. Emission takes a short mutex — trace points sit on
// slow paths (installs, handoffs, faults), never on the per-request fast
// path, so a lock here is cheap and keeps dumps consistent under -race.
type Tracer struct {
	mu    sync.Mutex
	types map[string]*EventType // guarded by mu
	ring  []event               // guarded by mu
	next  int                   // guarded by mu; ring write cursor
	seq   uint64                // guarded by mu; total events ever emitted
}

func newTracer(cap int) *Tracer {
	return &Tracer{types: make(map[string]*EventType), ring: make([]event, cap)}
}

// EventType registers (or finds) a trace event type. Names follow the
// metric grammar (lowercase dot-separated, two or more segments) and the
// view's Sub prefix applies. Re-registering with different keys panics.
func (r *Registry) EventType(name string, keys ...string) *EventType {
	if r == nil {
		return nil
	}
	if len(keys) > maxEventArgs {
		panic("obs: event " + quote(name) + " declares more than " +
			strconv.Itoa(maxEventArgs) + " keys")
	}
	for _, k := range keys {
		if !validName(k, 1) {
			panic("obs: invalid event key " + quote(k))
		}
	}
	full := r.full(name)
	return r.st.tracer.register(r.st, full, keys)
}

func (t *Tracer) register(st *state, full string, keys []string) *EventType {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.types[full]; ok {
		if !equalKeys(e.keys, keys) {
			panic("obs: event " + quote(full) + " re-registered with different keys")
		}
		return e
	}
	e := &EventType{tr: t, st: st, name: full, keys: append([]string(nil), keys...)}
	t.types[full] = e
	return e
}

func (t *Tracer) emit(e *EventType, now int64, args []int64) {
	ev := event{time: now, typ: e, n: len(args)}
	copy(ev.args[:], args)
	t.mu.Lock()
	ev.seq = t.seq
	t.seq++
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
}

// snapshot copies the retained events in emission order.
func (t *Tracer) snapshot() []event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]event, 0, len(t.ring))
	// Oldest retained event sits at the write cursor once the ring has
	// wrapped; before that, the ring is [0, next).
	start := 0
	if t.seq >= uint64(len(t.ring)) {
		start = t.next
	}
	for i := 0; i < len(t.ring); i++ {
		ev := t.ring[(start+i)%len(t.ring)]
		if ev.typ == nil {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// WriteTrace dumps the retained events as a JSON array, oldest first.
// The encoding is hand-built in declaration order — no maps — so two
// identical event sequences produce byte-identical dumps:
//
//	[
//	  {"seq":0,"t":120,"type":"core.path.install","bs":3,"clause":1},
//	  ...
//	]
func (r *Registry) WriteTrace(w io.Writer) error {
	_, err := w.Write(r.TraceJSON())
	return err
}

// TraceJSON renders the retained events; see WriteTrace.
func (r *Registry) TraceJSON() []byte {
	var buf bytes.Buffer
	buf.WriteString("[\n")
	if r != nil {
		events := r.st.tracer.snapshot()
		for i, ev := range events {
			buf.WriteString("  ")
			appendEvent(&buf, ev)
			if i < len(events)-1 {
				buf.WriteString(",")
			}
			buf.WriteString("\n")
		}
	}
	buf.WriteString("]\n")
	return buf.Bytes()
}

// appendEvent writes one event object in the hand-built deterministic
// encoding shared by TraceJSON and TraceJSONSince.
func appendEvent(buf *bytes.Buffer, ev event) {
	buf.WriteString("{\"seq\":")
	buf.WriteString(strconv.FormatUint(ev.seq, 10))
	buf.WriteString(",\"t\":")
	buf.WriteString(strconv.FormatInt(ev.time, 10))
	buf.WriteString(",\"type\":\"")
	buf.WriteString(ev.typ.name)
	buf.WriteString("\"")
	for k := 0; k < ev.n; k++ {
		buf.WriteString(",\"")
		buf.WriteString(ev.typ.keys[k])
		buf.WriteString("\":")
		buf.WriteString(strconv.FormatInt(ev.args[k], 10))
	}
	buf.WriteString("}")
}

// TraceJSONSince renders the retained events whose sequence number is
// >= since, wrapped with the cursor a poller should pass next time:
//
//	{"next":42,
//	"events":[
//	  {"seq":40,...},
//	  {"seq":41,...}
//	]}
//
// Polling with the returned cursor tails the ring incrementally without
// re-downloading the full dump; events evicted between polls are simply
// absent (seq gaps tell the poller how many it lost).
func (r *Registry) TraceJSONSince(since uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString("{\"next\":")
	if r == nil {
		buf.WriteString("0,\n\"events\":[\n]}\n")
		return buf.Bytes()
	}
	events := r.st.tracer.snapshot()
	next := r.TraceLen()
	buf.WriteString(strconv.FormatUint(next, 10))
	buf.WriteString(",\n\"events\":[\n")
	kept := events[:0]
	for _, ev := range events {
		if ev.seq >= since {
			kept = append(kept, ev)
		}
	}
	for i, ev := range kept {
		buf.WriteString("  ")
		appendEvent(&buf, ev)
		if i < len(kept)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("]}\n")
	return buf.Bytes()
}

// TraceLen reports how many events have ever been emitted (not just
// retained) — the stress test asserts it is monotone and exact.
func (r *Registry) TraceLen() uint64 {
	if r == nil {
		return 0
	}
	t := r.st.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
