package obs

import (
	"bytes"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
)

// Request-scoped causal spans (DESIGN.md §16). A sampled request carries
// a SpanContext end to end — dispatcher queue, admission, controller
// lock domains, ctrlproto frames, agent publish — and every layer hangs
// child spans off it, so one handoff yields a complete parent/child
// tree that obs.Attribute folds into a per-layer latency waterfall.
//
// Unlike the event tracer (trace.go), which is mutexed and slow-path
// only, spans ride the hot path: End records into fixed-size per-stripe
// slots claimed by an atomic cursor and published under a per-slot
// seqlock version word — no locks, no allocation, and a "not sampled"
// branch that is one atomic load plus one atomic add. Timestamps come
// from the registry's injected clock and IDs from deterministic
// counters, so same-seed deterministic harnesses dump byte-identical
// span JSON.

// spanStripes is the number of independent span rings ("per-worker"
// slots: concurrent recorders on different traces land on different
// stripes). Must be a power of two.
const spanStripes = 8

// spanStripeSlots is the ring capacity per stripe; old spans are
// overwritten, never allocated past the cap. Must be a power of two.
const spanStripeSlots = 1024

// DefaultSpanSampling is the default root-sampling period: one request
// in every N starts a trace. Runtime knob: Registry.SetSpanSampling,
// `softcelld -trace-sample`, `softcell-bench -trace-sample`.
const DefaultSpanSampling = 1024

// TraceID identifies one sampled request's span tree. 0 means "not
// sampled": every span operation on a zero trace is a cheap no-op.
type TraceID uint64

// SpanID identifies one span within a trace. IDs are allocated from a
// process-wide counter, so they are unique per registry and, under the
// sequential deterministic harnesses, identical across same-seed runs.
type SpanID uint64

// SpanContext is the propagated pair (trace, current span). The zero
// value means "not sampled" and is what every layer receives for the
// 1023-in-1024 unsampled requests.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Sampled reports whether this context carries a live trace.
//
// hotpath: no alloc, no lock
func (sc SpanContext) Sampled() bool { return sc.Trace != 0 }

// SpanName is one registered span type: the layer label spans of this
// kind carry in dumps and attribution. Obtain through Registry.SpanName;
// nil-safe like every obs handle.
type SpanName struct {
	st   *state
	name string
	idx  int32
}

// Name returns the registered (prefixed) span name.
func (n *SpanName) Name() string {
	if n == nil {
		return ""
	}
	return n.name
}

// Span is one in-flight timed section. The zero Span is "not sampled":
// Context returns the zero SpanContext and End is a no-op, so callers
// never branch on sampling themselves.
type Span struct {
	name   *SpanName
	trace  TraceID
	id     SpanID
	parent SpanID
	start  int64
}

// Context returns the propagation context for children of this span.
//
// hotpath: no alloc, no lock
func (s Span) Context() SpanContext {
	return SpanContext{Trace: s.trace, Span: s.id}
}

// spanSlot is one ring entry. All fields are atomics so concurrent
// recording and snapshotting stay exact under -race; ver is a seqlock
// word (0 = never written, odd = write in progress, even = published).
type spanSlot struct {
	ver    atomic.Uint64
	trace  atomic.Uint64
	span   atomic.Uint64
	parent atomic.Uint64
	name   atomic.Int64
	start  atomic.Int64
	end    atomic.Int64
}

// spanStripe is one independent ring with its own write cursor.
type spanStripe struct {
	cursor atomic.Uint64
	_      [7]uint64 // keep hot cursors off each other's cache line
	ring   [spanStripeSlots]spanSlot
}

// spanTable is the per-state span machinery shared by a registry and
// its Sub views.
type spanTable struct {
	every    atomic.Int64  // sampling period; <=0 disables tracing
	rootSeq  atomic.Uint64 // root attempts, drives deterministic sampling
	traceSeq atomic.Uint64 // allocated trace IDs
	spanSeq  atomic.Uint64 // allocated span IDs
	dropped  atomic.Uint64 // spans lost to slot-claim contention

	names map[string]*SpanName // under the owning state's mu
	byIdx []*SpanName          // under the owning state's mu; append-only

	stripes [spanStripes]spanStripe
}

func newSpanTable() *spanTable {
	t := &spanTable{names: make(map[string]*SpanName)}
	t.every.Store(DefaultSpanSampling)
	return t
}

// SpanName registers (or finds) a span type. Names follow the metric
// grammar (lowercase dot-separated, two or more segments) and the
// view's Sub prefix applies; the obscheck analyzer enforces literal,
// once-registered names at call sites.
func (r *Registry) SpanName(name string) *SpanName {
	if r == nil {
		return nil
	}
	full := r.full(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	t := r.st.spans
	if n, ok := t.names[full]; ok {
		return n
	}
	n := &SpanName{st: r.st, name: full, idx: int32(len(t.byIdx))}
	t.names[full] = n
	t.byIdx = append(t.byIdx, n)
	return n
}

// SetSpanSampling sets the root-sampling period: one root attempt in
// every n starts a trace. n == 1 traces everything, n <= 0 disables
// tracing entirely (Root returns only zero Spans). The swap is atomic
// and safe under load; Sub views share the knob.
func (r *Registry) SetSpanSampling(n int) {
	if r == nil {
		return
	}
	r.st.spans.every.Store(int64(n))
}

// SpanSampling reports the current sampling period.
func (r *Registry) SpanSampling() int {
	if r == nil {
		return 0
	}
	return int(r.st.spans.every.Load())
}

// Root makes the sampling decision for a new request. One call in every
// SetSpanSampling(n) returns a live root span (the first attempt is
// always sampled, so short deterministic runs trace from op zero); the
// rest return the zero Span. The decision is a deterministic counter,
// not a random draw, so same-seed runs sample the same requests.
//
// hotpath: no alloc, no lock
func (n *SpanName) Root() Span {
	if n == nil {
		return Span{}
	}
	t := n.st.spans
	every := t.every.Load()
	if every <= 0 {
		return Span{}
	}
	if (t.rootSeq.Add(1)-1)%uint64(every) != 0 {
		return Span{}
	}
	return Span{
		name:  n,
		trace: TraceID(t.traceSeq.Add(1)),
		id:    SpanID(t.spanSeq.Add(1)),
		start: (*n.st.clock.Load())(),
	}
}

// Start opens a child span under parent. On an unsampled context this
// is a single compare returning the zero Span.
//
// hotpath: no alloc, no lock
func (n *SpanName) Start(parent SpanContext) Span {
	if n == nil || parent.Trace == 0 {
		return Span{}
	}
	return Span{
		name:   n,
		trace:  parent.Trace,
		id:     SpanID(n.st.spans.spanSeq.Add(1)),
		parent: parent.Span,
		start:  (*n.st.clock.Load())(),
	}
}

// End timestamps the span and records it into its stripe's ring. A slot
// whose seqlock CAS fails (another recorder mid-write after a cursor
// lap) drops the span and counts it — recording never blocks.
//
// hotpath: no alloc, no lock
func (s Span) End() {
	if s.trace == 0 {
		return
	}
	st := s.name.st
	st.spans.record(s, (*st.clock.Load())())
}

func (t *spanTable) record(s Span, end int64) {
	str := &t.stripes[uint64(s.trace)&(spanStripes-1)]
	i := str.cursor.Add(1) - 1
	slot := &str.ring[i&(spanStripeSlots-1)]
	v := slot.ver.Load()
	if v&1 != 0 || !slot.ver.CompareAndSwap(v, v+1) {
		t.dropped.Add(1)
		return
	}
	slot.trace.Store(uint64(s.trace))
	slot.span.Store(uint64(s.id))
	slot.parent.Store(uint64(s.parent))
	slot.name.Store(int64(s.name.idx))
	slot.start.Store(s.start)
	slot.end.Store(end)
	slot.ver.Store(v + 2)
}

// SpanCount reports how many spans have ever been recorded (including
// ones since overwritten) — the stress test asserts it is monotone.
func (r *Registry) SpanCount() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.st.spans.stripes {
		n += r.st.spans.stripes[i].cursor.Load()
	}
	return n - r.SpanDropped()
}

// SpanDropped reports spans lost to slot-claim contention.
func (r *Registry) SpanDropped() uint64 {
	if r == nil {
		return 0
	}
	return r.st.spans.dropped.Load()
}

// SpanRecord is one completed span as read back from the rings.
type SpanRecord struct {
	Trace  TraceID `json:"trace"`
	Span   SpanID  `json:"span"`
	Parent SpanID  `json:"parent"`
	Name   string  `json:"name"`
	Start  int64   `json:"start"`
	End    int64   `json:"end"`
}

// SpanRecords snapshots the retained spans, sorted by (trace, span) so
// identical histories read back identically. Each slot is copied under
// its seqlock version: a slot that changes mid-copy is skipped, never
// returned torn.
func (r *Registry) SpanRecords() []SpanRecord {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	byIdx := r.st.spans.byIdx[:len(r.st.spans.byIdx):len(r.st.spans.byIdx)]
	r.st.mu.Unlock()
	var out []SpanRecord
	for si := range r.st.spans.stripes {
		str := &r.st.spans.stripes[si]
		for i := range str.ring {
			slot := &str.ring[i]
			v1 := slot.ver.Load()
			if v1 == 0 || v1&1 != 0 {
				continue
			}
			rec := SpanRecord{
				Trace:  TraceID(slot.trace.Load()),
				Span:   SpanID(slot.span.Load()),
				Parent: SpanID(slot.parent.Load()),
				Start:  slot.start.Load(),
				End:    slot.end.Load(),
			}
			idx := slot.name.Load()
			if slot.ver.Load() != v1 {
				continue
			}
			if idx < 0 || idx >= int64(len(byIdx)) {
				continue
			}
			rec.Name = byIdx[idx].name
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// WriteSpans dumps the retained spans as a JSON array sorted by
// (trace, span). Like WriteTrace, the encoding is hand-built in
// declaration order so two identical histories produce byte-identical
// dumps:
//
//	[
//	  {"trace":1,"span":1,"parent":0,"name":"shard.handoff","start":10,"end":90},
//	  ...
//	]
func (r *Registry) WriteSpans(w io.Writer) error {
	_, err := w.Write(r.SpanJSON())
	return err
}

// SpanJSON renders the retained spans; see WriteSpans.
func (r *Registry) SpanJSON() []byte {
	var buf bytes.Buffer
	buf.WriteString("[\n")
	recs := r.SpanRecords()
	for i, rec := range recs {
		buf.WriteString("  {\"trace\":")
		buf.WriteString(strconv.FormatUint(uint64(rec.Trace), 10))
		buf.WriteString(",\"span\":")
		buf.WriteString(strconv.FormatUint(uint64(rec.Span), 10))
		buf.WriteString(",\"parent\":")
		buf.WriteString(strconv.FormatUint(uint64(rec.Parent), 10))
		buf.WriteString(",\"name\":\"")
		buf.WriteString(rec.Name)
		buf.WriteString("\",\"start\":")
		buf.WriteString(strconv.FormatInt(rec.Start, 10))
		buf.WriteString(",\"end\":")
		buf.WriteString(strconv.FormatInt(rec.End, 10))
		buf.WriteString("}")
		if i < len(recs)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("]\n")
	return buf.Bytes()
}
