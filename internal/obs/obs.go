// Package obs is the runtime observability layer: lock-free counters,
// gauges and fixed-bucket histograms cheap enough for the controller's
// zero-allocation fast path, plus a bounded structured event tracer
// (trace.go) and text/HTTP exporters (prom.go, http.go).
//
// Design rules, enforced by the obscheck/determinism lint analyzers:
//
//   - Metric and event names are lowercase dot-separated literals
//     ("core.tagcache.hit"), each registered at exactly one call site.
//     Per-instance scoping (one name per shard, per agent, ...) goes
//     through Sub, which prepends a prefix — the literal at the call
//     site stays checkable.
//   - Registration is get-or-create: asking for an already-registered
//     name of the same kind returns the existing metric, so rebuilt
//     components (shard failover, chaos agent restarts) re-instrument
//     safely. A kind or bucket mismatch is a programming error and
//     panics.
//   - obs never reads the wall clock. Time comes from an injected clock
//     (SetClock); the default clock returns 0. Deterministic harnesses
//     inject the sim kernel's virtual clock, so same-seed runs produce
//     byte-identical trace dumps; daemons inject time.Now at the edge.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *EventType or *Registry are no-ops, so instrumented code
// needs no "is observability on?" branches.
package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// clockFunc is the injected time source; it reports nanoseconds on an
// arbitrary (caller-chosen) epoch.
type clockFunc func() int64

// Registry is a named view onto a metric table. The zero of the API is a
// nil *Registry, on which every method is a no-op. Sub derives prefixed
// views sharing the same table.
type Registry struct {
	prefix string
	st     *state
}

// state is the table shared by a registry and all its Sub views.
//
// The registration maps are mutated only under mu; the metric values
// themselves are atomics, written lock-free by the handles.
type state struct {
	clock atomic.Pointer[clockFunc]

	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	docs     map[string]string     // guarded by mu; metric help strings
	tracer   *Tracer
	spans    *spanTable
}

// New creates an empty registry. The clock starts at a constant zero;
// inject a real or virtual time source with SetClock.
func New() *Registry {
	st := &state{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		docs:     make(map[string]string),
		tracer:   newTracer(defaultTraceCap),
		spans:    newSpanTable(),
	}
	zero := clockFunc(func() int64 { return 0 })
	st.clock.Store(&zero)
	return &Registry{st: st}
}

// SetClock injects the time source used for histogram latency math by
// callers (via Now) and for trace event timestamps. Safe to call at any
// time; the swap is atomic. Sub views share the clock.
func (r *Registry) SetClock(now func() int64) {
	if r == nil || now == nil {
		return
	}
	fn := clockFunc(now)
	r.st.clock.Store(&fn)
}

// Now reads the injected clock; 0 on a nil registry.
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return (*r.st.clock.Load())()
}

// Sub returns a view whose registrations are prefixed with prefix + ".".
// The view shares the parent's table, clock and tracer. The prefix must
// be one or more lowercase dot-separated segments ("shard.0").
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	if !validName(prefix, 1) {
		panic("obs: invalid sub prefix " + quote(prefix))
	}
	return &Registry{prefix: r.prefix + prefix + ".", st: r.st}
}

// Counter is a monotone event count. Nil-safe; increments are single
// atomic adds (~a few ns) and never allocate.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
// hotpath: no alloc, no lock
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
// hotpath: no alloc, no lock
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute level.
//
// hotpath: no alloc, no lock
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by delta (negative to decrement).
//
// hotpath: no alloc, no lock
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds in the caller's unit (latencies: nanoseconds); one implicit
// overflow bucket catches everything above the last bound. Observe is a
// short linear scan plus two atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []int64 // immutable after registration
	counts []atomic.Uint64
	sum    atomic.Int64
}

// Observe records one value.
//
// hotpath: no alloc, no lock
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Bounds returns the bucket upper bounds (shared slice: do not mutate).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts snapshots the per-bucket counts; index len(Bounds()) is the
// overflow bucket.
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Counter registers (or finds) a counter. The name must be at least two
// lowercase dot-separated segments; a name already registered as another
// kind panics.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	full := r.full(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if c, ok := r.st.counters[full]; ok {
		return c
	}
	r.st.checkFresh(full, "counter")
	c := &Counter{}
	r.st.counters[full] = c
	return c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	full := r.full(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if g, ok := r.st.gauges[full]; ok {
		return g
	}
	r.st.checkFresh(full, "gauge")
	g := &Gauge{}
	r.st.gauges[full] = g
	return g
}

// Histogram registers (or finds) a histogram with the given strictly
// increasing bucket upper bounds. Re-registering with different bounds
// panics.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	full := r.full(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if h, ok := r.st.hists[full]; ok {
		if !equalBounds(h.bounds, bounds) {
			panic("obs: histogram " + quote(full) + " re-registered with different bounds")
		}
		return h
	}
	r.st.checkFresh(full, "histogram")
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.st.hists[full] = h
	return h
}

// Doc attaches a help string to a metric name (the view prefix applies).
// The Prometheus exporter emits it as a `# HELP` line ahead of `# TYPE`.
// Docs are optional; re-registering the same doc is a no-op and a
// conflicting doc for the same name panics — one metric, one meaning.
func (r *Registry) Doc(name, doc string) {
	if r == nil {
		return
	}
	full := r.full(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	if prev, ok := r.st.docs[full]; ok && prev != doc {
		panic("obs: conflicting help for " + quote(full))
	}
	r.st.docs[full] = doc
}

// full validates a registration name and applies the view prefix.
func (r *Registry) full(name string) string {
	if !validName(name, 2) {
		panic("obs: invalid metric name " + quote(name) +
			" (want lowercase dot-separated, at least two segments)")
	}
	return r.prefix + name
}

// checkFresh panics if full is already registered as a different kind.
//
// caller holds mu
func (st *state) checkFresh(full, kind string) {
	for other, m := range map[string]bool{
		"counter":   st.counters[full] != nil,
		"gauge":     st.gauges[full] != nil,
		"histogram": st.hists[full] != nil,
	} {
		if m && other != kind {
			panic("obs: " + quote(full) + " already registered as a " + other)
		}
	}
}

// validName reports whether s is minSeg+ dot-separated segments of
// [a-z0-9_]. Hand-rolled so registration stays dependency- and
// regexp-free.
func validName(s string, minSeg int) bool {
	seg, segs := 0, 0
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; {
		case ch >= 'a' && ch <= 'z', ch >= '0' && ch <= '9', ch == '_':
			seg++
		case ch == '.':
			if seg == 0 {
				return false
			}
			segs++
			seg = 0
		default:
			return false
		}
	}
	if seg == 0 {
		return false
	}
	return segs+1 >= minSeg
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// quote quotes a name for panic messages without importing fmt.
func quote(s string) string {
	return "\"" + s + "\""
}

// HistogramSnapshot is one histogram in a Snapshot: parallel bounds and
// counts (counts has one extra overflow entry), plus sum and total.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
}

// Snapshot is a point-in-time copy of every registered metric. Maps
// marshal with sorted keys, so JSON output is deterministic given
// deterministic values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Help       map[string]string            `json:"help,omitempty"`
}

// Snapshot copies every metric's current value. Counters are read with
// individual atomic loads: values written before the snapshot started
// are always included, so repeated snapshots see monotone counters.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	type namedCounter struct {
		name string
		c    *Counter
	}
	type namedGauge struct {
		name string
		g    *Gauge
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	var cs []namedCounter
	var gs []namedGauge
	var hs []namedHist
	r.st.mu.Lock()
	for name, c := range r.st.counters {
		cs = append(cs, namedCounter{name, c})
	}
	for name, g := range r.st.gauges {
		gs = append(gs, namedGauge{name, g})
	}
	for name, h := range r.st.hists {
		hs = append(hs, namedHist{name, h})
	}
	if len(r.st.docs) > 0 {
		s.Help = make(map[string]string, len(r.st.docs))
		for name, doc := range r.st.docs {
			s.Help[name] = doc
		}
	}
	r.st.mu.Unlock()
	for _, nc := range cs {
		s.Counters[nc.name] = nc.c.Value()
	}
	for _, ng := range gs {
		s.Gauges[ng.name] = ng.g.Value()
	}
	for _, nh := range hs {
		counts := nh.h.Counts()
		var total uint64
		for _, n := range counts {
			total += n
		}
		s.Histograms[nh.name] = HistogramSnapshot{
			Bounds: nh.h.Bounds(), Counts: counts, Count: total, Sum: nh.h.Sum(),
		}
	}
	return s
}

// JSON renders the snapshot with sorted keys and stable indentation.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only maps of scalars; this cannot fail.
		panic("obs: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Names returns every registered metric name, sorted — handy for tests
// and for the Prometheus exporter's stable output order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	names := make([]string, 0, len(r.st.counters)+len(r.st.gauges)+len(r.st.hists))
	for name := range r.st.counters {
		names = append(names, name)
	}
	for name := range r.st.gauges {
		names = append(names, name)
	}
	for name := range r.st.hists {
		names = append(names, name)
	}
	r.st.mu.Unlock()
	sort.Strings(names)
	return names
}
