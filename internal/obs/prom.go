package obs

import (
	"bytes"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): dots become underscores, histograms expand to
// cumulative _bucket{le="..."} series plus _sum and _count. Output is
// sorted by name, so identical snapshots render identically.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var buf bytes.Buffer
	help := func(name, m string) {
		if doc, ok := s.Help[name]; ok && doc != "" {
			buf.WriteString("# HELP " + m + " " + escapeHelp(doc) + "\n")
		}
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		help(name, m)
		buf.WriteString("# TYPE " + m + " counter\n")
		buf.WriteString(m + " " + strconv.FormatUint(s.Counters[name], 10) + "\n")
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		help(name, m)
		buf.WriteString("# TYPE " + m + " gauge\n")
		buf.WriteString(m + " " + strconv.FormatInt(s.Gauges[name], 10) + "\n")
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		m := promName(name)
		help(name, m)
		buf.WriteString("# TYPE " + m + " histogram\n")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			buf.WriteString(m + `_bucket{le="` + strconv.FormatInt(bound, 10) + `"} ` +
				strconv.FormatUint(cum, 10) + "\n")
		}
		buf.WriteString(m + `_bucket{le="+Inf"} ` + strconv.FormatUint(h.Count, 10) + "\n")
		buf.WriteString(m + "_sum " + strconv.FormatInt(h.Sum, 10) + "\n")
		buf.WriteString(m + "_count " + strconv.FormatUint(h.Count, 10) + "\n")
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// promName maps a dot-separated obs name to a Prometheus metric name.
func promName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// escapeHelp escapes a help string per the exposition format: backslash
// and newline are the only characters HELP lines must escape.
func escapeHelp(doc string) string {
	doc = strings.ReplaceAll(doc, `\`, `\\`)
	return strings.ReplaceAll(doc, "\n", `\n`)
}
