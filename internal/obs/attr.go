package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strconv"
	"time"
)

// Critical-path latency attribution (DESIGN.md §16). Attribute folds
// sampled span trees into a per-layer waterfall: each span is charged
// its *self time* — duration minus the summed durations of its direct
// children — so within one complete trace the self times sum exactly to
// the root span's duration, and across traces every nanosecond of
// end-to-end latency is attributed to exactly one layer. Spans are
// clipped to their parent's window first: an asynchronous section that
// outlives its parent (a group-commit flush carrying an already-replied
// frame) is charged only for the part inside the request's window —
// the overhang is not on this request's critical path.

// Segment is one layer (span name) of the waterfall.
type Segment struct {
	Name   string  `json:"name"`
	Count  int     `json:"count"`
	SelfNS int64   `json:"self_ns"`     // summed self time across spans
	Share  float64 `json:"share"`       // SelfNS / Attribution.TotalNS
	P50NS  int64   `json:"self_p50_ns"` // per-span self-time quantiles
	P99NS  int64   `json:"self_p99_ns"`
}

// Attribution is the folded waterfall over a set of span records.
// Incomplete traces — a ring eviction or drop took the root or an
// interior parent — are excluded and counted, so the sum invariant
// (SelfSumNS == TotalNS up to clamping) holds over what remains.
type Attribution struct {
	Traces     int       `json:"traces"`
	Incomplete int       `json:"incomplete_traces"`
	Spans      int       `json:"spans"`
	TotalNS    int64     `json:"total_ns"`    // summed root-span durations
	SelfSumNS  int64     `json:"self_sum_ns"` // summed segment self times
	Segments   []Segment `json:"segments"`
}

// Attribute folds span records (Registry.SpanRecords) into a per-layer
// attribution. Output is deterministic: segments sort by name and every
// quantile is a nearest-rank pick from exact integer self times.
func Attribute(recs []SpanRecord) Attribution {
	byTrace := make(map[TraceID][]SpanRecord)
	for _, rec := range recs {
		byTrace[rec.Trace] = append(byTrace[rec.Trace], rec)
	}
	traces := make([]TraceID, 0, len(byTrace))
	for id := range byTrace {
		traces = append(traces, id)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i] < traces[j] })

	var a Attribution
	selfs := make(map[string][]int64)
	for _, id := range traces {
		spans := byTrace[id]
		present := make(map[SpanID]bool, len(spans))
		children := make(map[SpanID][]int, len(spans))
		rootIdx := -1
		complete := true
		for i := range spans {
			present[spans[i].Span] = true
			if spans[i].Parent == 0 {
				if rootIdx >= 0 {
					complete = false
				}
				rootIdx = i
			}
		}
		if rootIdx < 0 {
			complete = false
		}
		for i := range spans {
			if spans[i].Parent != 0 && !present[spans[i].Parent] {
				complete = false
			}
			children[spans[i].Parent] = append(children[spans[i].Parent], i)
		}
		if !complete {
			a.Incomplete++
			continue
		}
		root := spans[rootIdx]
		a.Traces++
		a.Spans += len(spans)
		a.TotalNS += root.End - root.Start
		// Walk the tree clipping each span to its parent's window; self
		// is the clipped duration minus the clipped direct children.
		// Span IDs grow parent-before-child (counter allocation), so the
		// parent map cannot cycle.
		var walk func(i int, ws, we int64)
		walk = func(i int, ws, we int64) {
			cs, ce := clip(spans[i].Start, spans[i].End, ws, we)
			var kids int64
			for _, j := range children[spans[i].Span] {
				ks, ke := clip(spans[j].Start, spans[j].End, cs, ce)
				kids += ke - ks
				walk(j, cs, ce)
			}
			self := ce - cs - kids
			if self < 0 {
				self = 0
			}
			selfs[spans[i].Name] = append(selfs[spans[i].Name], self)
		}
		walk(rootIdx, root.Start, root.End)
	}

	names := make([]string, 0, len(selfs))
	for name := range selfs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vs := selfs[name]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		var sum int64
		for _, v := range vs {
			sum += v
		}
		seg := Segment{
			Name:   name,
			Count:  len(vs),
			SelfNS: sum,
			P50NS:  quantile(vs, 50),
			P99NS:  quantile(vs, 99),
		}
		if a.TotalNS > 0 {
			seg.Share = float64(sum) / float64(a.TotalNS)
		}
		a.SelfSumNS += sum
		a.Segments = append(a.Segments, seg)
	}
	return a
}

// clip intersects [s,e] with the window [ws,we], collapsing to an empty
// interval at the window edge when they do not overlap.
func clip(s, e, ws, we int64) (int64, int64) {
	if s < ws {
		s = ws
	}
	if e > we {
		e = we
	}
	if e < s {
		e = s
	}
	return s, e
}

// quantile is the nearest-rank pick from an ascending-sorted slice.
func quantile(sorted []int64, pct int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)*pct/100]
}

// JSON renders the attribution with stable field order and indentation.
func (a Attribution) JSON() []byte {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		// Attribution holds only scalars and slices; this cannot fail.
		panic("obs: attribution marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Waterfall renders the attribution as a fixed-width text table, widest
// layers first — the form softcell-bench -attr prints and /debug/spans
// serves with ?format=waterfall.
func (a Attribution) Waterfall() string {
	var buf bytes.Buffer
	buf.WriteString("critical-path attribution: ")
	buf.WriteString(strconv.Itoa(a.Traces))
	buf.WriteString(" traces, ")
	buf.WriteString(strconv.Itoa(a.Spans))
	buf.WriteString(" spans")
	if a.Incomplete > 0 {
		buf.WriteString(" (")
		buf.WriteString(strconv.Itoa(a.Incomplete))
		buf.WriteString(" incomplete traces excluded)")
	}
	buf.WriteString("\n")
	buf.WriteString(padRight("layer", 28))
	buf.WriteString(padLeft("count", 8))
	buf.WriteString(padLeft("self", 12))
	buf.WriteString(padLeft("share", 8))
	buf.WriteString(padLeft("p50", 12))
	buf.WriteString(padLeft("p99", 12))
	buf.WriteString("\n")
	segs := append([]Segment(nil), a.Segments...)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].SelfNS != segs[j].SelfNS {
			return segs[i].SelfNS > segs[j].SelfNS
		}
		return segs[i].Name < segs[j].Name
	})
	for _, seg := range segs {
		buf.WriteString(padRight(seg.Name, 28))
		buf.WriteString(padLeft(strconv.Itoa(seg.Count), 8))
		buf.WriteString(padLeft(time.Duration(seg.SelfNS).String(), 12))
		buf.WriteString(padLeft(strconv.FormatFloat(seg.Share*100, 'f', 1, 64)+"%", 8))
		buf.WriteString(padLeft(time.Duration(seg.P50NS).String(), 12))
		buf.WriteString(padLeft(time.Duration(seg.P99NS).String(), 12))
		buf.WriteString("\n")
	}
	buf.WriteString(padRight("end-to-end", 28))
	buf.WriteString(padLeft(strconv.Itoa(a.Traces), 8))
	buf.WriteString(padLeft(time.Duration(a.TotalNS).String(), 12))
	buf.WriteString(padLeft("100.0%", 8))
	buf.WriteString("\n")
	return buf.String()
}

func padRight(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func padLeft(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s + "  "
}
