package obs

import "testing"

// BenchmarkObsOverhead pins the cost of the primitives that sit on (or
// next to) the controller's fast path. The acceptance budget: a counter
// increment stays within ~10ns and none of the hot-path primitives
// allocate. make profile records the numbers in results/bench_obs.txt.
func BenchmarkObsOverhead(b *testing.B) {
	r := New()
	b.Run("counter_inc", func(b *testing.B) {
		c := r.Counter("bench.counter")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter_inc_nil", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge_add", func(b *testing.B) {
		g := r.Gauge("bench.gauge")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Add(1)
		}
	})
	b.Run("histogram_observe", func(b *testing.B) {
		h := r.Histogram("bench.hist", 100, 1000, 10000, 100000, 1000000)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i) % 2000000)
		}
	})
	b.Run("event_emit", func(b *testing.B) {
		ev := r.EventType("bench.event", "a", "b")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.Emit(int64(i), 7)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = r.Snapshot()
		}
	})
}

// BenchmarkSpanNotSampled pins the tracing fast path for the
// 1023-in-1024 unsampled requests: one atomic load plus one atomic add
// for the root decision, a single compare for child starts and ends.
// make verify fails if this reports any allocations (span-alloc-gate).
func BenchmarkSpanNotSampled(b *testing.B) {
	r := New()
	r.SetSpanSampling(1 << 30)
	root := r.SpanName("bench.span.root")
	child := r.SpanName("bench.span.child")
	root.Root().End() // burn the always-sampled first attempt
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := root.Root()
		c := child.Start(sp.Context())
		c.End()
		sp.End()
	}
}

// BenchmarkSpanSampled prices a fully recorded parent+child pair:
// ID allocation, two clock reads each, and two seqlock ring writes.
func BenchmarkSpanSampled(b *testing.B) {
	r := New()
	r.SetSpanSampling(1)
	root := r.SpanName("bench.span.sampled.root")
	child := r.SpanName("bench.span.sampled.child")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := root.Root()
		c := child.Start(sp.Context())
		c.End()
		sp.End()
	}
}
