package obs

import "testing"

// BenchmarkObsOverhead pins the cost of the primitives that sit on (or
// next to) the controller's fast path. The acceptance budget: a counter
// increment stays within ~10ns and none of the hot-path primitives
// allocate. make profile records the numbers in results/bench_obs.txt.
func BenchmarkObsOverhead(b *testing.B) {
	r := New()
	b.Run("counter_inc", func(b *testing.B) {
		c := r.Counter("bench.counter")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter_inc_nil", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge_add", func(b *testing.B) {
		g := r.Gauge("bench.gauge")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Add(1)
		}
	})
	b.Run("histogram_observe", func(b *testing.B) {
		h := r.Histogram("bench.hist", 100, 1000, 10000, 100000, 1000000)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i) % 2000000)
		}
	})
	b.Run("event_emit", func(b *testing.B) {
		ev := r.EventType("bench.event", "a", "b")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.Emit(int64(i), 7)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = r.Snapshot()
		}
	})
}
