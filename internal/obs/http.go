package obs

import (
	"net/http"
	"net/http/pprof"
	"strconv"
)

// DebugHandler serves a registry for live introspection:
//
//	/metrics        Prometheus text exposition of the current snapshot
//	/debug/snapshot the Snapshot as JSON
//	/debug/events   the retained trace ring as JSON, oldest first;
//	                ?since=<seq> tails incrementally and wraps the
//	                events with the next poll cursor
//	/debug/spans    the retained sampled spans plus their critical-path
//	                attribution as JSON; ?format=waterfall renders the
//	                attribution as a text table
//	/debug/pprof/   the standard runtime profiles
//
// softcelld mounts it behind -debug-addr (off by default — the endpoints
// expose internals and profiling, so binding them is an explicit
// operator decision).
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, r.Snapshot()); err != nil {
			// The snapshot rendered; the write failed because the client
			// went away — nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/debug/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(r.Snapshot().JSON()); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		if raw := req.URL.Query().Get("since"); raw != "" {
			since, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if _, err := w.Write(r.TraceJSONSince(since)); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteTrace(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		attr := Attribute(r.SpanRecords())
		if req.URL.Query().Get("format") == "waterfall" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := w.Write([]byte(attr.Waterfall())); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte("{\"attribution\":")); err != nil {
			return
		}
		if _, err := w.Write(attr.JSON()); err != nil {
			return
		}
		if _, err := w.Write([]byte(",\"spans\":")); err != nil {
			return
		}
		if err := r.WriteSpans(w); err != nil {
			return
		}
		if _, err := w.Write([]byte("}\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
