package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves a registry for live introspection:
//
//	/metrics        Prometheus text exposition of the current snapshot
//	/debug/snapshot the Snapshot as JSON
//	/debug/events   the retained trace ring as JSON, oldest first
//	/debug/pprof/   the standard runtime profiles
//
// softcelld mounts it behind -debug-addr (off by default — the endpoints
// expose internals and profiling, so binding them is an explicit
// operator decision).
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, r.Snapshot()); err != nil {
			// The snapshot rendered; the write failed because the client
			// went away — nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/debug/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(r.Snapshot().JSON()); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteTrace(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
