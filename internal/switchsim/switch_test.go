package switchsim

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func pkt(src, dst packet.Addr, sp, dp uint16) *packet.Packet {
	return &packet.Packet{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: packet.ProtoTCP, TTL: 64}
}

func TestMatchAllCoversEverything(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, inPort uint8) bool {
		p := pkt(packet.Addr(src), packet.Addr(dst), sp, dp)
		return MatchAll().Covers(p, int(inPort))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMatchBehavesAsMatchAll(t *testing.T) {
	var m Match
	m.InPort = AnyPort
	p := pkt(1, 2, 3, 4)
	if !m.Covers(p, 7) {
		t.Fatal("zero match (ports unset) should normalise to match-all")
	}
}

func TestMatchFields(t *testing.T) {
	m := Match{
		InPort:    2,
		Src:       packet.NewPrefix(packet.AddrFrom4(10, 0, 0, 0), 8),
		Dst:       packet.NewPrefix(packet.AddrFrom4(8, 8, 0, 0), 16),
		SrcPortLo: 100, SrcPortHi: 200,
		DstPortLo: 443, DstPortHi: 443,
		Proto: packet.ProtoTCP,
	}
	good := pkt(packet.AddrFrom4(10, 1, 1, 1), packet.AddrFrom4(8, 8, 8, 8), 150, 443)
	if !m.Covers(good, 2) {
		t.Fatal("should match")
	}
	cases := []struct {
		name string
		mut  func(p *packet.Packet) int
	}{
		{"wrong port", func(p *packet.Packet) int { return 3 }},
		{"src outside", func(p *packet.Packet) int { p.Src = packet.AddrFrom4(11, 0, 0, 1); return 2 }},
		{"dst outside", func(p *packet.Packet) int { p.Dst = packet.AddrFrom4(8, 9, 0, 1); return 2 }},
		{"sport low", func(p *packet.Packet) int { p.SrcPort = 99; return 2 }},
		{"sport high", func(p *packet.Packet) int { p.SrcPort = 201; return 2 }},
		{"dport", func(p *packet.Packet) int { p.DstPort = 80; return 2 }},
		{"proto", func(p *packet.Packet) int { p.Proto = packet.ProtoUDP; return 2 }},
	}
	for _, tc := range cases {
		p := pkt(packet.AddrFrom4(10, 1, 1, 1), packet.AddrFrom4(8, 8, 8, 8), 150, 443)
		in := tc.mut(p)
		if m.Covers(p, in) {
			t.Errorf("%s: should not match", tc.name)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := NewSwitch("s")
	s.Install(PrioPrefix, Match{InPort: AnyPort, Dst: packet.NewPrefix(packet.AddrFrom4(10, 0, 0, 0), 8)}, Forward(1))
	s.Install(PrioTagPrefix, Match{InPort: AnyPort, Dst: packet.NewPrefix(packet.AddrFrom4(10, 1, 0, 0), 16)}, Forward(2))
	p := pkt(1, packet.AddrFrom4(10, 1, 2, 3), 5, 6)
	v := s.Process(p, 0)
	if v.Output != 2 {
		t.Fatalf("high-priority rule should win, got port %d", v.Output)
	}
	p2 := pkt(1, packet.AddrFrom4(10, 9, 2, 3), 5, 6)
	if v := s.Process(p2, 0); v.Output != 1 {
		t.Fatalf("fallback to low priority, got %d", v.Output)
	}
}

func TestTableMissDefaultDrop(t *testing.T) {
	s := NewSwitch("s")
	v := s.Process(pkt(1, 2, 3, 4), 0)
	if !v.Drop || v.Rule != nil {
		t.Fatalf("miss should drop: %+v", v)
	}
	if s.Misses != 1 {
		t.Fatalf("Misses = %d", s.Misses)
	}
}

func TestTableMissPunt(t *testing.T) {
	s := NewSwitch("as")
	s.TableMiss = Punt()
	v := s.Process(pkt(1, 2, 3, 4), 0)
	if !v.ToController || v.Drop {
		t.Fatalf("miss should punt: %+v", v)
	}
}

func TestRewriteActions(t *testing.T) {
	s := NewSwitch("as")
	newSrc := packet.AddrFrom4(10, 0, 16, 10)
	newSport := uint16(0x1234)
	s.Install(PrioMicroflow, MatchAll(), Action{Output: 3, SetSrc: &newSrc, SetSrcPort: &newSport})
	p := pkt(packet.AddrFrom4(192, 168, 0, 5), 2, 555, 80)
	v := s.Process(p, 0)
	if v.Output != 3 {
		t.Fatalf("output = %d", v.Output)
	}
	if p.Src != newSrc || p.SrcPort != newSport {
		t.Fatalf("rewrite not applied: %s", p.Flow())
	}
}

func TestMicroflowBeatsTCAM(t *testing.T) {
	s := NewSwitch("as")
	s.Install(PrioTagPrefix, MatchAll(), Forward(1))
	key := pkt(5, 6, 7, 8).Flow()
	s.InstallMicroflow(key, Forward(9))
	if v := s.Process(pkt(5, 6, 7, 8), 0); v.Output != 9 {
		t.Fatalf("microflow should win: %+v", v)
	}
	if v := s.Process(pkt(5, 6, 7, 9), 0); v.Output != 1 {
		t.Fatalf("other flows hit TCAM: %+v", v)
	}
	if s.NumMicroflows() != 1 {
		t.Fatalf("NumMicroflows = %d", s.NumMicroflows())
	}
	if !s.RemoveMicroflow(key) {
		t.Fatal("remove should succeed")
	}
	if s.RemoveMicroflow(key) {
		t.Fatal("second remove should fail")
	}
}

func TestRemoveRule(t *testing.T) {
	s := NewSwitch("s")
	id := s.Install(PrioTag, MatchAll(), Forward(1))
	if s.NumRules() != 1 {
		t.Fatal("install failed")
	}
	if !s.Remove(id) {
		t.Fatal("remove failed")
	}
	if s.Remove(id) {
		t.Fatal("double remove should fail")
	}
	if v := s.Process(pkt(1, 2, 3, 4), 0); !v.Drop {
		t.Fatal("rule should be gone")
	}
}

func TestNewerRuleWinsAtSamePriority(t *testing.T) {
	s := NewSwitch("s")
	s.Install(PrioTag, MatchAll(), Forward(1))
	s.Install(PrioTag, MatchAll(), Forward(2))
	if v := s.Process(pkt(1, 2, 3, 4), 0); v.Output != 2 {
		t.Fatalf("newest same-priority rule should win, got %d", v.Output)
	}
}

func TestApplyAtomicBatch(t *testing.T) {
	s := NewSwitch("s")
	old := s.Install(PrioTag, MatchAll(), Forward(1))
	ids := s.Apply([]Mod{
		{Remove: old},
		{Install: true, Priority: PrioTag, Match: MatchAll(), Action: Forward(2)},
	})
	if ids[1] == 0 {
		t.Fatal("install id missing")
	}
	if v := s.Process(pkt(1, 2, 3, 4), 0); v.Output != 2 {
		t.Fatalf("batch result wrong: %+v", v)
	}
	if s.NumRules() != 1 {
		t.Fatalf("NumRules = %d", s.NumRules())
	}
}

func TestCounters(t *testing.T) {
	s := NewSwitch("s")
	id := s.Install(PrioTag, MatchAll(), Forward(1))
	p := pkt(1, 2, 3, 4)
	p.Payload = []byte("xyz")
	for i := 0; i < 5; i++ {
		s.Process(p, 0)
	}
	r, ok := s.Rule(id)
	if !ok || r.Packets != 5 {
		t.Fatalf("Packets = %d", r.Packets)
	}
	if r.Bytes != 5*(3+24) {
		t.Fatalf("Bytes = %d", r.Bytes)
	}
	if s.Processed != 5 {
		t.Fatalf("Processed = %d", s.Processed)
	}
}

func TestRulesSnapshotOrdered(t *testing.T) {
	s := NewSwitch("s")
	s.Install(PrioPrefix, MatchAll(), Forward(1))
	s.Install(PrioMobility, MatchAll(), Forward(2))
	s.Install(PrioTag, MatchAll(), Forward(3))
	rules := s.Rules()
	if len(rules) != 3 {
		t.Fatalf("len = %d", len(rules))
	}
	if rules[0].Priority != PrioMobility || rules[2].Priority != PrioPrefix {
		t.Fatalf("order wrong: %d %d %d", rules[0].Priority, rules[1].Priority, rules[2].Priority)
	}
}

func TestConcurrentProcessAndInstall(t *testing.T) {
	s := NewSwitch("s")
	s.Install(PrioDefault, MatchAll(), Forward(0))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					id := s.Install(PrioTag, MatchAll(), Forward(i))
					s.Remove(id)
				case 1:
					s.Process(pkt(packet.Addr(g), packet.Addr(i), 1, 2), 0)
				case 2:
					s.NumRules()
					s.Rules()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestVerdictStrings(t *testing.T) {
	// Exercise String methods for coverage of the debug surface.
	m := Match{InPort: 1, Src: packet.NewPrefix(packet.AddrFrom4(10, 0, 0, 0), 8),
		SrcPortLo: 5, SrcPortHi: 6, Proto: packet.ProtoTCP}
	if m.String() == "" || MatchAll().String() != "any" {
		t.Fatal("match strings")
	}
	a := Forward(3)
	src := packet.AddrFrom4(1, 2, 3, 4)
	a.SetSrc = &src
	if a.String() == "" || DropAction().String() == "" || Punt().String() == "" {
		t.Fatal("action strings")
	}
	r := Rule{ID: 1, Priority: 2, Match: MatchAll(), Action: Forward(1)}
	if r.String() == "" {
		t.Fatal("rule string")
	}
}
