package switchsim

import (
	"testing"

	"repro/internal/packet"
)

// FuzzMatch drives the TCAM predicate with arbitrary rules and packets and
// checks its algebraic invariants: MatchAll covers everything, Covers is
// insensitive to normalisation, normalisation is idempotent, widening a
// matching rule (wildcard port, shorter prefixes, full port ranges, any
// protocol) never loses the packet, and String never panics.
func FuzzMatch(f *testing.F) {
	f.Add(-1, uint32(0x0A000000), uint8(8), uint32(0x0A001000), uint8(24),
		uint16(0), uint16(0), uint16(80), uint16(8080), uint8(6),
		uint32(0x0A000001), uint32(0x0A001001), uint16(1234), uint16(443), uint8(6), uint8(3))
	f.Add(2, uint32(0), uint8(0), uint32(0xFFFFFFFF), uint8(32),
		uint16(53), uint16(53), uint16(0), uint16(0xFFFF), uint8(17),
		uint32(0x7F000001), uint32(0xFFFFFFFF), uint16(53), uint16(9), uint8(17), uint8(2))
	f.Fuzz(func(t *testing.T,
		inPort int,
		srcAddr uint32, srcLen uint8,
		dstAddr uint32, dstLen uint8,
		spLo, spHi, dpLo, dpHi uint16,
		proto uint8,
		pSrc, pDst uint32, pSp, pDp uint16, pProto uint8,
		arrive uint8,
	) {
		m := Match{
			InPort:    inPort,
			Src:       packet.NewPrefix(packet.Addr(srcAddr), int(srcLen%33)),
			Dst:       packet.NewPrefix(packet.Addr(dstAddr), int(dstLen%33)),
			SrcPortLo: spLo, SrcPortHi: spHi,
			DstPortLo: dpLo, DstPortHi: dpHi,
			Proto: packet.Proto(proto),
		}
		if inPort < 0 {
			m.InPort = AnyPort
		}
		p := &packet.Packet{
			Src:     packet.Addr(pSrc),
			Dst:     packet.Addr(pDst),
			SrcPort: pSp,
			DstPort: pDp,
			Proto:   packet.Proto(pProto),
		}
		in := int(arrive % 8)

		if !MatchAll().Covers(p, in) {
			t.Fatalf("MatchAll does not cover %+v on port %d", p, in)
		}
		got := m.Covers(p, in)
		norm := m.normalised()
		if norm.Covers(p, in) != got {
			t.Fatalf("Covers disagrees with normalised form: %v vs %v for %s", got, !got, m)
		}
		if norm.normalised() != norm {
			t.Fatalf("normalise not idempotent: %+v -> %+v", norm, norm.normalised())
		}
		_ = m.String()
		_ = norm.String()

		if got {
			wide := Match{
				InPort:    AnyPort,
				Src:       packet.NewPrefix(m.Src.Addr, m.Src.Len-1),
				Dst:       packet.NewPrefix(m.Dst.Addr, m.Dst.Len-1),
				SrcPortHi: 0xFFFF,
				DstPortHi: 0xFFFF,
			}
			if !wide.Covers(p, in) {
				t.Fatalf("widened rule %s lost packet %+v covered by %s", wide, p, m)
			}
		}
	})
}
