package switchsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/packet"
)

// RuleID identifies an installed rule within one switch.
type RuleID uint64

// Rule is one installed TCAM entry: a prioritised match with an action and
// traffic counters. Higher Priority wins; ties break toward the more
// recently installed rule (like OpenFlow's overlapping-rule behaviour with
// distinct priorities, which SoftCell's controller always uses anyway).
type Rule struct {
	ID       RuleID
	Priority int
	Match    Match
	Action   Action

	// Packets and Bytes are traffic counters, mutated with atomic adds
	// (see Account) so both the locked Process path and lock-free
	// fast-path snapshots can attribute traffic to the same live rule.
	Packets uint64
	Bytes   uint64
	seq     uint64
}

// Account attributes one packet of payloadBytes payload to the rule's
// traffic counters. The adds are atomic so compiled fast-path snapshots
// (internal/fastpath) can account without holding the switch lock.
func (r *Rule) Account(payloadBytes int) {
	atomic.AddUint64(&r.Packets, 1)
	atomic.AddUint64(&r.Bytes, uint64(payloadBytes)+24)
}

// AccountN attributes a batch of packets to the rule's traffic counters in
// one pair of atomic adds; the fast path tallies per burst and flushes here.
func (r *Rule) AccountN(pkts, bytes uint64) {
	atomic.AddUint64(&r.Packets, pkts)
	atomic.AddUint64(&r.Bytes, bytes)
}

// snapshot copies the rule with atomically read counters.
//
// caller holds mu
func (r *Rule) snapshot() Rule {
	return Rule{
		ID: r.ID, Priority: r.Priority, Match: r.Match, Action: r.Action,
		Packets: atomic.LoadUint64(&r.Packets),
		Bytes:   atomic.LoadUint64(&r.Bytes),
		seq:     r.seq,
	}
}

func (r *Rule) String() string {
	return fmt.Sprintf("#%d prio=%d %s -> %s", r.ID, r.Priority, r.Match, r.Action)
}

// Priority bands for SoftCell's rule types (§7): microflow and mobility
// entries override tag+prefix entries, which override tag-only, which
// override prefix-only, with a default band at the bottom. Bands are 100
// apart so longest-prefix-match within a band is expressed by adding the
// prefix length (0..32) to the band's base priority, as TCAM compilers do.
const (
	PrioDefault   = 0
	PrioPrefix    = 100 // Type 3: location (LPM) rules
	PrioTag       = 200 // Type 2: tag-only rules
	PrioTagPrefix = 300 // Type 1: tag + prefix TCAM rules
	PrioPort      = 400 // in-port-qualified Type 1 rules
	PrioMBLoc     = 500 // middlebox-return location rules
	PrioMBTag     = 600 // middlebox-return tag rules
	PrioMobility  = 700 // per-UE mobility overrides
	PrioBinding   = 800 // gateway public-IP classifiers (§7)
	PrioMicroflow = 900 // exact-match microflows at access switches
)

// Verdict is the outcome of processing one packet.
type Verdict struct {
	Rule         *Rule // matching rule; nil when table-miss
	Output       int   // egress port, -1 if none
	Drop         bool
	ToController bool
	resubmit     bool
}

// Switch is a software model of one OpenFlow switch. It is safe for
// concurrent use.
type Switch struct {
	Name string

	mu      sync.RWMutex
	rules   map[RuleID]*Rule         // guarded by mu
	ordered []*Rule                  // guarded by mu; sorted by (priority desc, seq desc)
	micro   map[packet.FlowKey]*Rule // guarded by mu
	nextID  RuleID                   // guarded by mu
	nextSeq uint64                   // guarded by mu

	// gen counts table mutations: every Install/Remove (TCAM or
	// microflow), Apply and ClearTCAM bumps it. Writes happen under mu;
	// reads go through Generation's atomic load, so fast-path snapshot
	// caches detect staleness without touching the lock.
	gen uint64

	// TableMiss is the verdict for packets no rule covers. The default
	// zero value drops; gateway/core switches usually leave it, access
	// switches punt to the local agent. Set it before traffic starts; it is
	// deliberately not guarded (agent.New assigns it during wiring).
	TableMiss Action

	// Stats, mutated with atomic adds (Process runs under a read lock,
	// and fast-path snapshots account bursts with no lock at all).
	Processed uint64
	Misses    uint64

	// obs is the optional telemetry handle set; see Instrument. All
	// handles are nil (no-op) until then.
	obs swObs
}

// Generation reports the table-mutation counter. A compiled snapshot taken
// at generation g is exactly the current tables iff Generation() == g; a
// mismatch means Apply/ClearTCAM/Install/Remove ran since and the snapshot
// must be recompiled rather than silently served.
func (s *Switch) Generation() uint64 {
	return atomic.LoadUint64(&s.gen)
}

// bumpGen records one table mutation.
//
// caller holds mu
func (s *Switch) bumpGen() {
	atomic.AddUint64(&s.gen, 1)
}

// BurstStats aggregates one burst's pipeline tallies so compiled fast
// paths can flush switch accounting once per burst instead of per packet.
type BurstStats struct {
	Packets   uint64 // packets entering the pipeline
	MicroHit  uint64 // microflow exact-match hits
	MicroMiss uint64 // packets falling through to the TCAM
	TCAMHit   uint64 // TCAM rule executions (resubmits count again)
	Miss      uint64 // table misses
	Punt      uint64 // final verdict: to controller/agent
	Drop      uint64 // final verdict: dropped
}

// AccountBurst adds a burst's tallies to the switch counters and telemetry.
// The switch's Processed/Misses counts and obs series therefore read the
// same whether packets took the locked Process path or a compiled
// fast-path burst.
func (s *Switch) AccountBurst(b BurstStats) {
	atomic.AddUint64(&s.Processed, b.Packets)
	atomic.AddUint64(&s.Misses, b.Miss)
	s.obs.packets.Add(b.Packets)
	s.obs.microHit.Add(b.MicroHit)
	s.obs.microMiss.Add(b.MicroMiss)
	s.obs.tcamHit.Add(b.TCAMHit)
	s.obs.miss.Add(b.Miss)
	s.obs.punt.Add(b.Punt)
	s.obs.drop.Add(b.Drop)
}

// TableView is a consistent export of the switch's tables for fast-path
// compilers: the generation it was taken at, the microflow entries, the
// TCAM rules in match order, and the table-miss action. The rule pointers
// are the live rules — treat them as read-only except for the atomic
// traffic counters behind Rule.Account.
type TableView struct {
	Gen     uint64
	Micro   map[packet.FlowKey]*Rule
	Ordered []*Rule
	Miss    Action
}

// View snapshots the tables under one read lock.
func (s *Switch) View() TableView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	micro := make(map[packet.FlowKey]*Rule, len(s.micro))
	for k, r := range s.micro {
		micro[k] = r
	}
	return TableView{
		Gen:     s.Generation(),
		Micro:   micro,
		Ordered: append([]*Rule(nil), s.ordered...),
		Miss:    s.TableMiss,
	}
}

// NewSwitch returns an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{
		Name:      name,
		rules:     make(map[RuleID]*Rule),
		micro:     make(map[packet.FlowKey]*Rule),
		TableMiss: Action{Output: -1, Drop: true},
	}
}

// Install adds a TCAM rule and returns its ID.
func (s *Switch) Install(prio int, m Match, a Action) RuleID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installLocked(prio, m, a)
}

// installLocked is Install's body, shared with the batched Apply.
//
// caller holds mu
func (s *Switch) installLocked(prio int, m Match, a Action) RuleID {
	s.bumpGen()
	s.nextID++
	s.nextSeq++
	r := &Rule{ID: s.nextID, Priority: prio, Match: m.normalised(), Action: a, seq: s.nextSeq}
	s.rules[r.ID] = r
	i := sort.Search(len(s.ordered), func(i int) bool {
		o := s.ordered[i]
		if o.Priority != r.Priority {
			return o.Priority < r.Priority
		}
		return o.seq < r.seq
	})
	s.ordered = append(s.ordered, nil)
	copy(s.ordered[i+1:], s.ordered[i:])
	s.ordered[i] = r
	return r.ID
}

// Remove deletes a TCAM rule by ID. It reports whether the rule existed.
func (s *Switch) Remove(id RuleID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(id)
}

// removeLocked is Remove's body, shared with the batched Apply.
//
// caller holds mu
func (s *Switch) removeLocked(id RuleID) bool {
	r, ok := s.rules[id]
	if !ok {
		return false
	}
	s.bumpGen()
	delete(s.rules, id)
	for i, o := range s.ordered {
		if o == r {
			s.ordered = append(s.ordered[:i], s.ordered[i+1:]...)
			break
		}
	}
	return true
}

// InstallMicroflow adds (or replaces) an exact-match microflow entry.
// Access switches use these for the per-flow classification rules the local
// agent installs (§4.1: "one rule for each microflow at the access switch").
func (s *Switch) InstallMicroflow(key packet.FlowKey, a Action) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpGen()
	s.nextID++
	s.micro[key] = &Rule{ID: s.nextID, Priority: PrioMicroflow, Action: a}
}

// RemoveMicroflow deletes an exact-match entry.
func (s *Switch) RemoveMicroflow(key packet.FlowKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.micro[key]; !ok {
		return false
	}
	s.bumpGen()
	delete(s.micro, key)
	return true
}

// Microflow returns the microflow rule for key, if present.
func (s *Switch) Microflow(key packet.FlowKey) (*Rule, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.micro[key]
	return r, ok
}

// Mod is one element of an atomic batch update.
type Mod struct {
	Remove   RuleID // when non-zero, remove this rule
	Install  bool   // when true, install Priority/Match/Action
	Priority int
	Match    Match
	Action   Action
}

// Apply performs a batch of modifications atomically with respect to
// Process: no packet observes a partially applied batch. Installed rule IDs
// are returned in batch order (zero for removals).
func (s *Switch) Apply(mods []Mod) []RuleID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]RuleID, len(mods))
	for i, m := range mods {
		if m.Remove != 0 {
			s.removeLocked(m.Remove)
		}
		if m.Install {
			ids[i] = s.installLocked(m.Priority, m.Match, m.Action)
		}
	}
	return ids
}

// Process runs one packet through the pipeline: microflow exact match
// first, then the TCAM in priority order, then the table-miss action.
// Rewrites are applied to p in place. A Resubmit action re-runs the TCAM
// lookup (not the microflow table) with the rewritten headers, at most
// four times.
//
// The whole walk — microflow lookup, resubmit chain, miss — runs under a
// single read lock, so concurrent packets proceed in parallel and every
// packet observes one consistent table state; counters are atomic.
func (s *Switch) Process(p *packet.Packet, inPort int) Verdict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	atomic.AddUint64(&s.Processed, 1)
	s.obs.packets.Inc()

	var v Verdict
	matched := false
	if r, ok := s.micro[p.Flow()]; ok {
		s.obs.microHit.Inc()
		v = s.execute(r, p)
		matched = true
	} else {
		s.obs.microMiss.Inc()
	}
	for depth := 0; depth < 4; depth++ {
		if matched && !v.resubmit {
			return s.finish(v)
		}
		matched = false
		for _, r := range s.ordered {
			if r.Match.Covers(p, inPort) {
				s.obs.tcamHit.Inc()
				v = s.execute(r, p)
				matched = true
				break
			}
		}
		if !matched {
			break
		}
	}
	if matched {
		return s.finish(v)
	}
	atomic.AddUint64(&s.Misses, 1)
	s.obs.miss.Inc()
	v = Verdict{Output: -1}
	a := s.TableMiss
	a.apply(p)
	v.Drop = a.Drop || (!a.ToController && a.Output < 0)
	v.ToController = a.ToController
	v.Output = a.Output
	return s.finish(v)
}

// finish counts the packet's final outcome.
func (s *Switch) finish(v Verdict) Verdict {
	switch {
	case v.ToController:
		s.obs.punt.Inc()
	case v.Drop:
		s.obs.drop.Inc()
	}
	return v
}

func (s *Switch) execute(r *Rule, p *packet.Packet) Verdict {
	r.Account(len(p.Payload))
	r.Action.apply(p)
	return Verdict{
		Rule:         r,
		Output:       r.Action.Output,
		Drop:         r.Action.Drop || (!r.Action.ToController && !r.Action.Resubmit && r.Action.Output < 0),
		ToController: r.Action.ToController,
		resubmit:     r.Action.Resubmit,
	}
}

// NumRules reports TCAM entries (microflows excluded — the paper counts
// those separately because they live in cheap software hash tables).
func (s *Switch) NumRules() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rules)
}

// NumMicroflows reports exact-match entries.
func (s *Switch) NumMicroflows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.micro)
}

// Rules returns a snapshot of the TCAM in match order.
func (s *Switch) Rules() []Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Rule, len(s.ordered))
	for i, r := range s.ordered {
		out[i] = r.snapshot()
	}
	return out
}

// Rule returns a snapshot of one rule by ID.
func (s *Switch) Rule(id RuleID) (Rule, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rules[id]
	if !ok {
		return Rule{}, false
	}
	return r.snapshot(), true
}

// ClearTCAM removes every TCAM rule but keeps the microflow table — the
// dataplane uses it to re-materialise controller state without disturbing
// agent-installed flows.
func (s *Switch) ClearTCAM() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpGen()
	s.rules = make(map[RuleID]*Rule)
	s.ordered = nil
}
