// Package switchsim models an OpenFlow-style switch as SoftCell assumes it:
// a TCAM table of prioritised wildcard rules (matching on in-port, IP
// prefixes and port ranges), an exact-match microflow table for access
// switches, header-rewrite actions, per-rule counters, and atomic batch
// updates. Gateway and core switches use only the TCAM table; access
// switches additionally hold microflow rules installed by the local agent.
package switchsim

import (
	"fmt"
	"strings"

	"repro/internal/packet"
)

// AnyPort is the wildcard in-port.
const AnyPort = -1

// Distinguished port numbers shared by the access agents and the dataplane.
// Regular ports 0..len(neighbors)-1 map to topology links (the index in
// topo.Node.Neighbors); middlebox attachment ports follow; these pseudo
// ports sit far above both ranges.
const (
	// PortUE delivers to the locally attached UEs (radio side).
	PortUE = 1 << 20
	// PortExit leaves the network through the gateway's Internet side.
	PortExit = PortUE + 1
	// PortTunnelBase + bsID sends through the inter-station mobility
	// tunnel toward that base station (§5.1).
	PortTunnelBase = 1 << 21
)

// Match is a TCAM rule predicate. Zero-valued port bounds widen to the full
// range, and zero-length prefixes match every address; set InPort to AnyPort
// (not 0, which is a real port) to wildcard the ingress port.
type Match struct {
	InPort    int // AnyPort matches any ingress port
	Src       packet.Prefix
	Dst       packet.Prefix
	SrcPortLo uint16
	SrcPortHi uint16 // 0 means "no upper bound set"; see normalise
	DstPortLo uint16
	DstPortHi uint16
	Proto     packet.Proto // 0 matches any protocol
}

// MatchAll returns a predicate matching every packet on every port.
func MatchAll() Match {
	return Match{InPort: AnyPort, SrcPortHi: 0xFFFF, DstPortHi: 0xFFFF}
}

// normalised returns the match with zero-valued port bounds widened to the
// full range, so that the zero Match value behaves as match-all.
func (m Match) normalised() Match {
	if m.SrcPortLo == 0 && m.SrcPortHi == 0 {
		m.SrcPortHi = 0xFFFF
	}
	if m.DstPortLo == 0 && m.DstPortHi == 0 {
		m.DstPortHi = 0xFFFF
	}
	return m
}

// Covers reports whether the match accepts the packet arriving on inPort.
func (m Match) Covers(p *packet.Packet, inPort int) bool {
	m = m.normalised()
	if m.InPort != AnyPort && m.InPort != inPort {
		return false
	}
	if !m.Src.Contains(p.Src) || !m.Dst.Contains(p.Dst) {
		return false
	}
	if p.SrcPort < m.SrcPortLo || p.SrcPort > m.SrcPortHi {
		return false
	}
	if p.DstPort < m.DstPortLo || p.DstPort > m.DstPortHi {
		return false
	}
	if m.Proto != 0 && m.Proto != p.Proto {
		return false
	}
	return true
}

func (m Match) String() string {
	m2 := m.normalised()
	var parts []string
	if m2.InPort != AnyPort {
		parts = append(parts, fmt.Sprintf("in=%d", m2.InPort))
	}
	if m2.Src.Len > 0 {
		parts = append(parts, "src="+m2.Src.String())
	}
	if m2.Dst.Len > 0 {
		parts = append(parts, "dst="+m2.Dst.String())
	}
	if m2.SrcPortLo != 0 || m2.SrcPortHi != 0xFFFF {
		parts = append(parts, fmt.Sprintf("sport=%d-%d", m2.SrcPortLo, m2.SrcPortHi))
	}
	if m2.DstPortLo != 0 || m2.DstPortHi != 0xFFFF {
		parts = append(parts, fmt.Sprintf("dport=%d-%d", m2.DstPortLo, m2.DstPortHi))
	}
	if m2.Proto != 0 {
		parts = append(parts, m2.Proto.String())
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// Action is what a matching rule does to a packet. Rewrites apply before
// output. Exactly one of Output >= 0, Drop, or ToController should be set;
// when none is, the packet is dropped.
type Action struct {
	Output       int // egress port; -1 when not forwarding
	Drop         bool
	ToController bool
	// Resubmit re-runs the TCAM lookup after the rewrites (OVS-style):
	// the access switch's microflows rewrite headers and resubmit so the
	// controller-installed forwarding rules pick the egress port.
	Resubmit bool

	SetSrc     *packet.Addr
	SetDst     *packet.Addr
	SetSrcPort *uint16
	SetDstPort *uint16

	// Tag-field rewrites replace only the top TagEphBits-complement bits of
	// a port — the §3.2 swap rule, which must preserve the ephemeral bits
	// that distinguish a UE's flows.
	SetSrcTag  *packet.Tag
	SetDstTag  *packet.Tag
	TagEphBits int // low bits preserved by tag rewrites

	// SetDSCP marks the packet's QoS class (the access edge applies the
	// clause's quality-of-service specification, §2.2).
	SetDSCP *uint8
}

// Forward builds a plain output action.
func Forward(port int) Action { return Action{Output: port} }

// DropAction builds a drop action.
func DropAction() Action { return Action{Output: -1, Drop: true} }

// Punt builds a send-to-controller action.
func Punt() Action { return Action{Output: -1, ToController: true} }

// apply mutates the packet's headers per the rewrite fields.
func (a Action) apply(p *packet.Packet) {
	if a.SetSrc != nil {
		p.Src = *a.SetSrc
	}
	if a.SetDst != nil {
		p.Dst = *a.SetDst
	}
	if a.SetSrcPort != nil {
		p.SrcPort = *a.SetSrcPort
	}
	if a.SetDstPort != nil {
		p.DstPort = *a.SetDstPort
	}
	if a.SetSrcTag != nil {
		mask := uint16(1)<<a.TagEphBits - 1
		p.SrcPort = uint16(*a.SetSrcTag)<<a.TagEphBits | p.SrcPort&mask
	}
	if a.SetDstTag != nil {
		mask := uint16(1)<<a.TagEphBits - 1
		p.DstPort = uint16(*a.SetDstTag)<<a.TagEphBits | p.DstPort&mask
	}
	if a.SetDSCP != nil {
		p.DSCP = *a.SetDSCP
	}
}

func (a Action) String() string {
	var parts []string
	if a.SetSrc != nil {
		parts = append(parts, "src<-"+a.SetSrc.String())
	}
	if a.SetDst != nil {
		parts = append(parts, "dst<-"+a.SetDst.String())
	}
	if a.SetSrcPort != nil {
		parts = append(parts, fmt.Sprintf("sport<-%d", *a.SetSrcPort))
	}
	if a.SetDstPort != nil {
		parts = append(parts, fmt.Sprintf("dport<-%d", *a.SetDstPort))
	}
	if a.SetSrcTag != nil {
		parts = append(parts, fmt.Sprintf("stag<-%d", *a.SetSrcTag))
	}
	if a.SetDstTag != nil {
		parts = append(parts, fmt.Sprintf("dtag<-%d", *a.SetDstTag))
	}
	switch {
	case a.Drop:
		parts = append(parts, "drop")
	case a.ToController:
		parts = append(parts, "punt")
	case a.Resubmit:
		parts = append(parts, "resubmit")
	case a.Output >= 0:
		parts = append(parts, fmt.Sprintf("out:%d", a.Output))
	default:
		parts = append(parts, "drop(implicit)")
	}
	return strings.Join(parts, " ")
}
