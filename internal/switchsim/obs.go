package switchsim

import (
	"repro/internal/obs"
)

// swObs is the switch's telemetry handle set: per-packet pipeline
// outcomes, cheap enough for the forwarding hot path (every handle is a
// single atomic add; all nil, hence no-op, until Instrument runs).
type swObs struct {
	packets   *obs.Counter // packets entering the pipeline
	microHit  *obs.Counter // exact-match microflow hits
	microMiss *obs.Counter // packets falling through to the TCAM
	tcamHit   *obs.Counter // TCAM rule executions (resubmits count again)
	miss      *obs.Counter // table misses (table-miss action applied)
	punt      *obs.Counter // final verdict: to controller/agent
	drop      *obs.Counter // final verdict: dropped
}

// Instrument registers the switch's telemetry on reg. Call it before
// traffic starts (it swaps the handle set unlocked). Registration is
// get-or-create: many switches instrumenting the same registry aggregate
// into one series; callers wanting per-switch series pass a Sub view.
func (s *Switch) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obs = swObs{
		packets:   reg.Counter("switchsim.packets"),
		microHit:  reg.Counter("switchsim.micro.hit"),
		microMiss: reg.Counter("switchsim.micro.miss"),
		tcamHit:   reg.Counter("switchsim.tcam.hit"),
		miss:      reg.Counter("switchsim.tcam.miss"),
		punt:      reg.Counter("switchsim.punt"),
		drop:      reg.Counter("switchsim.drop"),
	}
}
