package dataplane

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fastpath"
	"repro/internal/packet"
	"repro/internal/switchsim"
	"repro/internal/topo"
)

// fastConfig compiles the topology into the fast path's view: one link
// table per node (egress port -> neighbour and its return port) and the
// mobility-tunnel targets. Middlebox attachment ports sit beyond each
// link table, so packets heading there fall to the slow path; a gateway
// NAT forces exiting packets there too (translation is stateful).
func (n *Network) fastConfig() fastpath.NetConfig {
	links := make([][]fastpath.Link, len(n.T.Nodes))
	for i := range n.T.Nodes {
		nb := n.T.Nodes[i].Neighbors
		row := make([]fastpath.Link, len(nb))
		for p, next := range nb {
			row[p] = fastpath.Link{
				Next:   int32(next),
				InPort: int32(n.T.Nodes[next].PortTo(topo.NodeID(i))),
			}
		}
		links[i] = row
	}
	tunnels := make(map[packet.BSID]int32, len(n.T.Stations))
	for _, st := range n.T.Stations {
		tunnels[st.ID] = int32(st.Access)
	}
	return fastpath.NetConfig{
		Switches: n.Switches,
		Links:    links,
		Tunnels:  tunnels,
		SlowExit: n.GatewayNAT != nil,
		Obs:      n.reg,
	}
}

// EnableFastPath compiles the fast-path topology view and starts a
// burst-forwarding engine with the given worker count. Call Instrument
// first to attach telemetry. A prior engine is stopped and replaced.
func (n *Network) EnableFastPath(workers int) *fastpath.Engine {
	if n.fast != nil {
		n.fast.Close()
	}
	n.fast = fastpath.NewEngine(fastpath.NewNet(n.fastConfig()), workers)
	return n.fast
}

// FastEngine returns the running engine, nil before EnableFastPath.
func (n *Network) FastEngine() *fastpath.Engine { return n.fast }

// DisableFastPath stops the engine's workers.
func (n *Network) DisableFastPath() {
	if n.fast != nil {
		n.fast.Close()
		n.fast = nil
	}
}

// BurstOutcome is one packet's end-to-end outcome from a burst send.
type BurstOutcome struct {
	Disposition Disposition
	Last        topo.NodeID
	Hops        int  // switch traversals
	Slow        bool // finished on the stateful slow path
}

// BurstSender is one goroutine's handle for burst injection: it owns the
// walk-result and header-restore scratch, so steady-state sends allocate
// nothing. Concurrent senders are safe while their traffic stays on the
// fast path (established flows, no middleboxes or NAT on the path);
// packets that punt or hit stateful elements replay through the
// Network's single-threaded slow path, so bursts carrying them must not
// run concurrently with other injection.
type BurstSender struct {
	n    *Network
	w    *fastpath.Walker
	res  []fastpath.Result
	orig []packet.Packet
}

// NewBurstSender returns an injection handle; EnableFastPath must have
// run. Each concurrent sending goroutine needs its own handle. Sends walk
// the fast path synchronously in the caller's goroutine (no engine-queue
// handoff); the engine's worker queues serve asynchronous Submit traffic.
func (n *Network) NewBurstSender() (*BurstSender, error) {
	if n.fast == nil {
		return nil, fmt.Errorf("dataplane: fast path not enabled")
	}
	return &BurstSender{n: n, w: n.fast.Net().NewWalker()}, nil
}

// Send injects a burst of packets a UE sends at its base station and
// reports each packet's end-to-end outcome, reusing out when it has the
// capacity. The burst walks the fast path; any packet the fast path
// declines (punt, middlebox, NAT exit, hop overrun) has its original
// header restored and replays end-to-end through SendUpstream, so its
// final header and disposition match the single-packet path exactly.
func (s *BurstSender) Send(bs packet.BSID, pkts []*packet.Packet, out []BurstOutcome) ([]BurstOutcome, error) {
	n := s.n
	st, ok := n.T.Station(bs)
	if !ok {
		return out, fmt.Errorf("dataplane: unknown base station %d", bs)
	}
	if cap(s.res) < len(pkts) {
		s.res = make([]fastpath.Result, len(pkts))
		s.orig = make([]packet.Packet, len(pkts))
	}
	res := s.res[:len(pkts)]
	orig := s.orig[:len(pkts)]
	for i, p := range pkts {
		orig[i] = *p
	}
	s.w.Walk(int(st.Access), switchsim.PortUE, pkts, res)
	n.obs.burst(len(pkts))

	if cap(out) < len(pkts) {
		out = make([]BurstOutcome, len(pkts))
	}
	out = out[:len(pkts)]
	var delivered, exited, dropped uint64 // flushed once per burst
	for i := range res {
		r := res[i]
		o := &out[i]
		o.Last, o.Hops, o.Slow = topo.NodeID(r.Last), int(r.Hops), false
		switch r.Disp {
		case fastpath.DispDelivered:
			delivered++
			o.Disposition = Delivered
		case fastpath.DispExited:
			exited++
			o.Disposition = ExitedNet
		case fastpath.DispDropped:
			dropped++
			o.Disposition = DroppedAt
		default:
			// The fast path declined mid-walk (its rewrites already
			// applied); restore the injected header and replay from the
			// origin so the outcome equals the single-packet path. The
			// aborted prefix stays in the switch counters, as a real
			// punt-and-reinject would.
			*pkts[i] = orig[i]
			n.obs.slowPath()
			wr, err := n.SendUpstream(bs, pkts[i])
			if err != nil {
				atomic.AddUint64(&n.Delivered, delivered)
				atomic.AddUint64(&n.Exited, exited)
				atomic.AddUint64(&n.Dropped, dropped)
				return out, err
			}
			o.Disposition, o.Last = wr.Disposition, wr.Last
			o.Hops, o.Slow = len(wr.Hops), true
		}
	}
	if delivered > 0 {
		atomic.AddUint64(&n.Delivered, delivered)
	}
	if exited > 0 {
		atomic.AddUint64(&n.Exited, exited)
	}
	if dropped > 0 {
		atomic.AddUint64(&n.Dropped, dropped)
	}
	return out, nil
}

// SendUpstreamBurst is the allocation-per-call convenience over a
// one-shot BurstSender; benchmarks and concurrent callers should hold a
// BurstSender instead.
func (n *Network) SendUpstreamBurst(bs packet.BSID, pkts []*packet.Packet) ([]BurstOutcome, error) {
	s, err := n.NewBurstSender()
	if err != nil {
		return nil, err
	}
	return s.Send(bs, pkts, nil)
}
