package dataplane

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mbox"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// fig3 builds the paper's Fig. 2/3-style network: gateway, three core
// switches, four stations, a firewall near the gateway, two transcoders,
// and an echo canceller.
type fig3 struct {
	*topo.Topology
	gw, cs1, cs2, cs3 topo.NodeID
	as                [4]topo.NodeID
}

func newFig3(t *testing.T) *fig3 {
	t.Helper()
	n := &fig3{Topology: topo.New()}
	n.gw = n.AddNode(topo.Gateway, "gw")
	n.cs1 = n.AddNode(topo.Core, "cs1")
	n.cs2 = n.AddNode(topo.Core, "cs2")
	n.cs3 = n.AddNode(topo.Core, "cs3")
	for i := 0; i < 4; i++ {
		n.as[i] = n.AddNode(topo.Access, "as")
		if err := n.AddBaseStation(packet.BSID(i), n.as[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]topo.NodeID{
		{n.gw, n.cs1}, {n.cs1, n.cs2}, {n.cs2, n.cs3},
		{n.cs2, n.as[0]}, {n.cs2, n.as[1]}, {n.cs3, n.as[2]}, {n.cs3, n.as[3]},
	} {
		if err := n.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	mustAttach := func(typ topo.MBType, sw topo.NodeID) {
		if _, err := n.AttachMiddlebox(typ, sw); err != nil {
			t.Fatal(err)
		}
	}
	mustAttach(0, n.cs1) // firewall
	mustAttach(1, n.cs2) // transcoder 1
	mustAttach(1, n.cs3) // transcoder 2
	mustAttach(2, n.cs1) // echo canceller
	return n
}

func newNet(t *testing.T, natPool packet.Prefix) (*Network, *fig3) {
	t.Helper()
	n := newFig3(t)
	ctrl, err := core.NewController(n.Topology, core.ControllerConfig{
		Gateway: n.gw,
		Policy:  policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall:   0,
			policy.MBTranscoder: 1,
			policy.MBEchoCancel: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := mbox.NewRegistry(ctrl.Plan(), packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24))
	net, err := New(ctrl, Config{
		Registry: reg,
		MBFuncs: map[topo.MBType]string{
			0: "firewall", 1: "transcoder", 2: "echo-cancel",
		},
		NATPool: natPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, n
}

func webPacket(ue core.UE, sport uint16) *packet.Packet {
	return &packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(93, 184, 216, 34),
		SrcPort: sport, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64,
	}
}

func mbNames(net *Network, hops []Hop) []string {
	var out []string
	for _, h := range hops {
		if h.MB != core.NoMB {
			out = append(out, net.Boxes[h.MB].Func())
		}
	}
	return out
}

func TestUpstreamWebFlowThroughFirewall(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	ue, err := net.Attach("a", 0)
	if err == nil {
		t.Fatal("attach before registration should fail")
	}
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, err = net.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	p := webPacket(ue, 40000)
	res, err := net.SendUpstream(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != ExitedNet {
		t.Fatalf("disposition = %s (last %d)", res.Disposition, res.Last)
	}
	boxes := mbNames(net, res.Hops)
	if len(boxes) != 1 || boxes[0] != "firewall" {
		t.Fatalf("middleboxes = %v, want [firewall]", boxes)
	}
	// The exiting packet carries the LocIP and a tagged source port (§4.1).
	if p.Src != ue.LocIP {
		t.Fatalf("exit src = %s, want LocIP %s", p.Src, ue.LocIP)
	}
	tag, _ := net.Ctrl.Plan().SplitPort(p.SrcPort)
	if tag == 0 {
		t.Fatal("exit source port carries no tag")
	}
}

func TestDownstreamReturnDelivered(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	up := webPacket(ue, 40000)
	if _, err := net.SendUpstream(0, up); err != nil {
		t.Fatal(err)
	}
	// Internet replies to what it saw.
	reply := &packet.Packet{
		Src: up.Dst, Dst: up.Src, SrcPort: up.DstPort, DstPort: up.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendDownstream(reply)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Delivered {
		t.Fatalf("disposition = %s at %d (hops %v)", res.Disposition, res.Last, res.Hops)
	}
	// Restored to the permanent address and original port.
	if reply.Dst != ue.PermIP || reply.DstPort != 40000 {
		t.Fatalf("restore failed: %s", reply.Flow())
	}
	// Same firewall instance both ways: zero consistency violations.
	if v, _ := net.MiddleboxStats(); v != 0 {
		t.Fatalf("violations = %d", v)
	}
	boxes := mbNames(net, res.Hops)
	if len(boxes) != 1 || boxes[0] != "firewall" {
		t.Fatalf("downstream middleboxes = %v", boxes)
	}
}

func TestSecondFlowIsCacheHit(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	if _, err := net.SendUpstream(0, webPacket(ue, 40000)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.SendUpstream(0, webPacket(ue, 40001)); err != nil {
		t.Fatal(err)
	}
	st := net.Agents[0].Stats()
	if st.CacheMiss != 1 || st.CacheHits != 1 {
		t.Fatalf("agent stats = %+v, want 1 miss then 1 hit", st)
	}
	if st := net.Ctrl.Stats(); st.PathMiss != 1 {
		t.Fatalf("controller installed %d paths, want 1", st.PathMiss)
	}
}

func TestSilverVideoTranscoded(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("s", policy.Attributes{Provider: "A", Plan: "silver"})
	ue, _ := net.Attach("s", 2)
	video := &packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 9),
		SrcPort: 41000, DstPort: 554, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendUpstream(2, video)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != ExitedNet {
		t.Fatalf("disposition = %s", res.Disposition)
	}
	boxes := mbNames(net, res.Hops)
	if len(boxes) != 2 || boxes[0] != "transcoder" || boxes[1] != "firewall" {
		// Upstream traverses the chain in reverse: transcoder then firewall.
		t.Fatalf("middleboxes = %v, want [transcoder firewall]", boxes)
	}
	// Downstream media is transcoded (payload halves).
	reply := &packet.Packet{
		Src: video.Dst, Dst: video.Src, SrcPort: video.DstPort, DstPort: video.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64, Payload: make([]byte, 1000),
	}
	dres, err := net.SendDownstream(reply)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Disposition != Delivered {
		t.Fatalf("reply %s at %d", dres.Disposition, dres.Last)
	}
	if len(reply.Payload) != 500 {
		t.Fatalf("payload = %d, want 500 (transcoded)", len(reply.Payload))
	}
	dboxes := mbNames(net, dres.Hops)
	if len(dboxes) != 2 || dboxes[0] != "firewall" || dboxes[1] != "transcoder" {
		t.Fatalf("downstream middleboxes = %v, want [firewall transcoder]", dboxes)
	}
}

func TestForeignSubscriberDenied(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("c", policy.Attributes{Provider: "C"})
	ue, _ := net.Attach("c", 0)
	res, err := net.SendUpstream(0, webPacket(ue, 40000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != DroppedAt {
		t.Fatalf("foreign traffic should drop, got %s", res.Disposition)
	}
	if net.Agents[0].Stats().Denied != 1 {
		t.Fatal("denial not counted")
	}
}

func TestUnsolicitedInboundBlocked(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	// Prime a path so downstream rules exist at all, then probe another port.
	if _, err := net.SendUpstream(0, webPacket(ue, 40000)); err != nil {
		t.Fatal(err)
	}
	probe := &packet.Packet{
		Src: packet.AddrFrom4(198, 18, 0, 9), Dst: ue.LocIP,
		SrcPort: 4444, DstPort: 0x0801, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendDownstream(probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition == Delivered {
		t.Fatal("unsolicited inbound reached the UE")
	}
}

func TestGatewayNATHidesLocation(t *testing.T) {
	pool := packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24)
	net, _ := newNet(t, pool)
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	up := webPacket(ue, 40000)
	res, err := net.SendUpstream(0, up)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != ExitedNet {
		t.Fatalf("disposition = %s", res.Disposition)
	}
	// The Internet never sees the LocIP (§4.1 privacy).
	if net.Ctrl.Plan().Carrier.Contains(up.Src) {
		t.Fatalf("LocIP leaked: %s", up.Src)
	}
	if !pool.Contains(up.Src) {
		t.Fatalf("source %s outside NAT pool", up.Src)
	}
	reply := &packet.Packet{
		Src: up.Dst, Dst: up.Src, SrcPort: up.DstPort, DstPort: up.SrcPort,
		Proto: packet.ProtoTCP, TTL: 64,
	}
	dres, err := net.SendDownstream(reply)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Disposition != Delivered || reply.Dst != ue.PermIP {
		t.Fatalf("NAT return failed: %s %s", dres.Disposition, reply.Flow())
	}
}

func TestVoIPUsesEchoCancel(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 1)
	voip := &packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 50),
		SrcPort: 42000, DstPort: 5060, Proto: packet.ProtoUDP, TTL: 64,
	}
	res, err := net.SendUpstream(1, voip)
	if err != nil {
		t.Fatal(err)
	}
	boxes := mbNames(net, res.Hops)
	if len(boxes) != 2 || boxes[0] != "echo-cancel" || boxes[1] != "firewall" {
		t.Fatalf("middleboxes = %v, want [echo-cancel firewall] (reverse chain)", boxes)
	}
}

func TestAgentRestartKeepsForwarding(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	up := webPacket(ue, 40000)
	if _, err := net.SendUpstream(0, up); err != nil {
		t.Fatal(err)
	}
	// Agent fails and restarts empty (§5.2); established flows keep
	// forwarding because the microflows live in the switch.
	net.Agents[0].Restart()
	again := webPacket(ue, 40000)
	res, err := net.SendUpstream(0, again)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != ExitedNet {
		t.Fatalf("established flow broken after agent restart: %s", res.Disposition)
	}
	// The controller re-pushes state; new flows work again.
	u, cls, err := net.Ctrl.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Agents[0].AdmitUE(u, cls); err != nil {
		t.Fatal(err)
	}
	if res, err := net.SendUpstream(0, webPacket(ue, 40002)); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("new flow after recovery: %v %v", res.Disposition, err)
	}
}

// TestExportRespectsLPM: within one rule band, a longer prefix must win in
// the materialised TCAM exactly as it does in the controller's FIB — the
// property that encodes prefix length into rule priority.
func TestExportRespectsLPM(t *testing.T) {
	net, f := newNet(t, packet.Prefix{})
	// The bootstrapped location table at cs1 contains both the carrier-wide
	// climb default and per-station descend entries; a downstream packet to
	// station 0 must follow the specific entry (toward cs2), never the
	// climb default (toward gw).
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	if err := net.Sync(); err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{Src: packet.AddrFrom4(10, 0, 0, 77), Dst: ue.LocIP,
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP, TTL: 64}
	// Inject at cs1 as if mid-path; it must head down toward cs2, i.e. the
	// walk ends at station 0's access switch (punted there: no microflow).
	v := net.Switches[f.cs1].Process(p, net.T.Nodes[f.cs1].PortTo(f.gw))
	next := net.T.Nodes[f.cs1].Neighbors[v.Output]
	if next != f.cs2 {
		t.Fatalf("cs1 sent dst=%s to node %d, want cs2 (%d)", ue.LocIP, next, f.cs2)
	}
}
