package dataplane

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
)

// TestMobileToMobileDirectPath reproduces §7 "Mobile-to-mobile traffic":
// two UEs in the same core talk over a direct location-routed path that
// never detours through the gateway (unlike today's P-GW hairpin).
func TestMobileToMobileDirectPath(t *testing.T) {
	net, topo := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	_ = net.Ctrl.RegisterSubscriber("b", policy.Attributes{Provider: "A"})
	ueA, err := net.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ueB, err := net.Attach("b", 3)
	if err != nil {
		t.Fatal(err)
	}

	// A addresses B by its stable permanent IP.
	p := &packet.Packet{
		Src: ueA.PermIP, Dst: ueB.PermIP,
		SrcPort: 50000, DstPort: 7000, Proto: packet.ProtoUDP, TTL: 64,
	}
	res, err := net.SendUpstream(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Delivered {
		t.Fatalf("m2m: %s at %d (hops %v)", res.Disposition, res.Last, res.Hops)
	}
	if p.Dst != ueB.PermIP {
		t.Fatalf("delivered dst = %s, want B's permanent IP", p.Dst)
	}
	// The gateway must NOT appear on the path (§7: "without detouring via a
	// gateway switch").
	for _, h := range res.Hops {
		if h.Node == topo.gw {
			t.Fatalf("m2m path detoured via the gateway: %v", res.Hops)
		}
	}
	st3, _ := net.T.Station(3)
	if res.Last != st3.Access {
		t.Fatalf("delivered at %d, want station 3 (%d)", res.Last, st3.Access)
	}

	// B replies; the reverse microflows route it straight back.
	reply := &packet.Packet{
		Src: ueB.PermIP, Dst: ueA.PermIP,
		SrcPort: 7000, DstPort: 50000, Proto: packet.ProtoUDP, TTL: 64,
	}
	rres, err := net.SendUpstream(3, reply)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Disposition != Delivered || reply.Dst != ueA.PermIP {
		t.Fatalf("m2m reply: %s, dst %s", rres.Disposition, reply.Dst)
	}
	for _, h := range rres.Hops {
		if h.Node == topo.gw {
			t.Fatalf("reply detoured via the gateway: %v", rres.Hops)
		}
	}
}

// TestPublicIPInbound reproduces §7 "Traffic initiated from the Internet":
// a UE exposed on a public address receives an Internet-initiated
// connection; the gateway's single coarse classifier translates to
// (LocIP, tag) and ordinary forwarding — including the clause's middlebox
// chain — applies.
func TestPublicIPInbound(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("srv", policy.Attributes{Provider: "A"})
	ue, err := net.Attach("srv", 2)
	if err != nil {
		t.Fatal(err)
	}
	public := packet.AddrFrom4(192, 0, 2, 80)
	// A server binding implies an inbound-permissive clause: stateful
	// firewalls drop unsolicited inbound, so the operator provisions a
	// chain-free (or inbound-aware) clause for exposed services.
	clause := net.Ctrl.Policy.Add(policy.Clause{
		Priority: 90, Name: "exposed-server",
		Pred:   policy.Attr(policy.FieldProvider, "A"),
		Action: policy.Via(),
	})
	if err := net.BindPublicIP("srv", public, clause); err != nil {
		t.Fatal(err)
	}
	// An Internet client connects to the public address on port 80 (must
	// fit the plan's ephemeral field).
	p := &packet.Packet{
		Src: packet.AddrFrom4(198, 18, 5, 5), Dst: public,
		SrcPort: 31000, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64,
	}
	res, err := net.SendDownstream(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Delivered {
		t.Fatalf("inbound: %s at %d (hops %v)", res.Disposition, res.Last, res.Hops)
	}
	if p.Dst != ue.PermIP || p.DstPort != 80 {
		t.Fatalf("inbound restore: %s", p.Flow())
	}
	// The clause's firewall is on the inbound path... but stateful
	// firewalls drop unsolicited inbound; a server binding implies a
	// permissive clause in deployment. Here we assert the traversal
	// happened at all by checking the UE's REPLY retraces the tagged path
	// and exits.
	reply := &packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(198, 18, 5, 5),
		SrcPort: 80, DstPort: 31000, Proto: packet.ProtoTCP, TTL: 64,
	}
	rres, err := net.SendUpstream(2, reply)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Disposition != ExitedNet {
		t.Fatalf("reply: %s at %d", rres.Disposition, rres.Last)
	}
	// The reply leaves carrying the UE's LocIP and the binding's tag, so
	// the Internet peer sees a consistent 5-tuple.
	if rres.Packet.Src != ue.LocIP {
		t.Fatalf("reply src = %s, want LocIP", rres.Packet.Src)
	}
	tag, svc := net.Ctrl.Plan().SplitPort(rres.Packet.SrcPort)
	if tag == 0 || svc != 80 {
		t.Fatalf("reply port = %d (tag %d, svc %d)", rres.Packet.SrcPort, tag, svc)
	}
}

// TestPublicIPBindingValidation covers the §7 binding's error paths.
func TestPublicIPBindingValidation(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	if err := net.BindPublicIP("ghost", packet.AddrFrom4(192, 0, 2, 1), 0); err == nil {
		t.Error("unattached UE should fail")
	}
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	if err := net.BindPublicIP("a", ue.LocIP, 0); err == nil {
		t.Error("carrier-internal address should be rejected")
	}
	if err := net.BindPublicIP("a", ue.PermIP, 0); err == nil {
		t.Error("permanent-pool address should be rejected")
	}
}

// TestM2MDeniedByPolicy: the classifier still gates M2M traffic.
func TestM2MDeniedByPolicy(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("c", policy.Attributes{Provider: "C"}) // denied carrier
	_ = net.Ctrl.RegisterSubscriber("b", policy.Attributes{Provider: "A"})
	ueC, _ := net.Attach("c", 0)
	ueB, _ := net.Attach("b", 1)
	p := &packet.Packet{Src: ueC.PermIP, Dst: ueB.PermIP,
		SrcPort: 50000, DstPort: 7000, Proto: packet.ProtoUDP, TTL: 64}
	res, err := net.SendUpstream(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != DroppedAt {
		t.Fatalf("foreign M2M should drop, got %s", res.Disposition)
	}
}

// TestMobileToMobileByLocIP: M2M also works when the sender addresses the
// peer's current LocIP directly (carrier-internal destination).
func TestMobileToMobileByLocIP(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	_ = net.Ctrl.RegisterSubscriber("b", policy.Attributes{Provider: "A"})
	ueA, _ := net.Attach("a", 1)
	ueB, _ := net.Attach("b", 2)
	p := &packet.Packet{
		Src: ueA.PermIP, Dst: ueB.LocIP,
		SrcPort: 51000, DstPort: 7000, Proto: packet.ProtoUDP, TTL: 64,
	}
	res, err := net.SendUpstream(1, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Delivered || p.Dst != ueB.PermIP {
		t.Fatalf("LocIP-addressed m2m: %s, dst %s", res.Disposition, p.Dst)
	}
}

// TestArrivalRefusesUnknownLoc: a punted arrival for a LocIP nobody holds
// is an error, not a silent drop (it indicates stale routing state).
func TestArrivalRefusesUnknownLoc(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	if err := net.Sync(); err != nil {
		t.Fatal(err)
	}
	other, _ := net.Ctrl.Plan().LocIP(ue.BS, ue.UEID+1) // unallocated
	p := &packet.Packet{Src: packet.AddrFrom4(198, 18, 1, 1), Dst: other,
		SrcPort: 9, DstPort: 9, Proto: packet.ProtoUDP, TTL: 64}
	if _, err := net.SendDownstream(p); err == nil {
		t.Fatal("arrival for unallocated LocIP should surface an error")
	}
}
