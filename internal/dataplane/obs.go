package dataplane

import (
	"repro/internal/obs"
)

// dpObs is the data plane's burst-injection telemetry: burst shape at the
// network entry points plus slow-path fallbacks. A nil *dpObs is a no-op;
// every hot-path update is an atomic add or a fixed-bucket observe.
type dpObs struct {
	bursts  *obs.Counter   // bursts injected via SendUpstreamBurst
	burstSz *obs.Histogram // injected burst sizes in packets
	pkts    *obs.Counter   // packets injected through burst sends
	slow    *obs.Counter   // packets replayed on the stateful slow path
}

// newDPObs registers the data plane's series on reg; nil reg returns nil.
func newDPObs(reg *obs.Registry) *dpObs {
	if reg == nil {
		return nil
	}
	return &dpObs{
		bursts:  reg.Counter("dataplane.bursts"),
		burstSz: reg.Histogram("dataplane.burst.size", 1, 2, 4, 8, 16, 32, 64, 128, 256),
		pkts:    reg.Counter("dataplane.burst.packets"),
		slow:    reg.Counter("dataplane.slowpath"),
	}
}

func (o *dpObs) burst(n int) {
	if o != nil {
		o.bursts.Inc()
		o.burstSz.Observe(int64(n))
		o.pkts.Add(uint64(n))
	}
}

func (o *dpObs) slowPath() {
	if o != nil {
		o.slow.Inc()
	}
}

// Instrument registers the data plane's burst telemetry and every
// switch's pipeline counters on reg. Call it before EnableFastPath so the
// fast path inherits the same registry.
func (n *Network) Instrument(reg *obs.Registry) {
	n.obs = newDPObs(reg)
	n.reg = reg
	for _, sw := range n.Switches {
		sw.Instrument(reg)
	}
}
