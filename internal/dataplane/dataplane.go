// Package dataplane assembles the full SoftCell data plane: one
// switchsim.Switch per topology node programmed from the controller's
// abstract FIBs, live middlebox instances on their attachment ports, local
// agents on the access switches, inter-station mobility tunnels, and an
// optional gateway NAT (§4.1). It walks packets hop by hop exactly as the
// hardware would, which is what the integration and mobility tests observe.
package dataplane

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fastpath"
	"repro/internal/mbox"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/switchsim"
	"repro/internal/topo"
)

// Priority bands for materialised rules, mirroring the FIB's resolution
// order (see core.RuleBand). The matched prefix's length is added so
// longest-prefix-match holds within each band.
var bandPriority = map[core.RuleBand]int{
	core.BandLocation:  switchsim.PrioPrefix,
	core.BandTagOnly:   switchsim.PrioTag,
	core.BandTagPrefix: switchsim.PrioTagPrefix,
	core.BandPort:      switchsim.PrioPort,
	core.BandMBLoc:     switchsim.PrioMBLoc,
	core.BandMBTag:     switchsim.PrioMBTag,
	core.BandMobility:  switchsim.PrioMobility,
}

// Network is the assembled data plane.
type Network struct {
	T        *topo.Topology
	Ctrl     *core.Controller
	Switches []*switchsim.Switch
	Agents   map[packet.BSID]*agent.Agent
	Boxes    map[topo.MBInstanceID]mbox.Middlebox

	// GatewayNAT, when set, translates at the Internet boundary (§4.1).
	GatewayNAT *mbox.NAT

	plan     packet.Plan
	mbPort   map[topo.MBInstanceID]int
	agentAt  map[topo.NodeID]*agent.Agent
	bindings []publicBinding // §7 public-IP classifiers, re-applied on Sync

	fast *fastpath.Engine // burst fast path; see EnableFastPath (burst.go)
	obs  *dpObs           // burst telemetry; see Instrument (obs.go)
	reg  *obs.Registry    // registry handed to the fast path on enable

	// Congestion scales the modelled queueing delay per hop (0 = idle
	// network: only propagation and processing latency accrue). The walk's
	// latency model serves the QoS experiments: higher-DSCP traffic waits
	// in shorter virtual queues.
	Congestion float64

	// Stats; bumped atomically so concurrent fast-path burst senders can
	// tally alongside the single-threaded walks.
	Delivered uint64
	Exited    uint64
	Dropped   uint64
}

// Config parameterises New.
type Config struct {
	// Registry builds middlebox instances; MBFuncs names the function each
	// topology middlebox type realises.
	Registry *mbox.Registry
	MBFuncs  map[topo.MBType]string
	// NATPool, when non-zero, enables a gateway NAT drawing from the pool.
	NATPool packet.Prefix
}

// New assembles the data plane for a controller's topology: switches,
// middlebox instances, and one local agent per base station.
func New(ctrl *core.Controller, cfg Config) (*Network, error) {
	t := ctrl.T
	n := &Network{
		T:        t,
		Ctrl:     ctrl,
		Switches: make([]*switchsim.Switch, len(t.Nodes)),
		Agents:   make(map[packet.BSID]*agent.Agent),
		Boxes:    make(map[topo.MBInstanceID]mbox.Middlebox),
		plan:     ctrl.Plan(),
		mbPort:   make(map[topo.MBInstanceID]int),
	}
	for i := range t.Nodes {
		n.Switches[i] = switchsim.NewSwitch(t.Nodes[i].Name)
	}
	// Middlebox ports follow the link ports on the attachment switch.
	seen := make(map[topo.NodeID]int)
	for _, inst := range t.MBoxes {
		port := len(t.Nodes[inst.Attached].Neighbors) + seen[inst.Attached]
		seen[inst.Attached]++
		n.mbPort[inst.ID] = port
		fn, ok := cfg.MBFuncs[inst.Type]
		if !ok {
			return nil, fmt.Errorf("dataplane: no function mapped for middlebox type %d", inst.Type)
		}
		box, err := cfg.Registry.Build(fn, inst.ID)
		if err != nil {
			return nil, err
		}
		n.Boxes[inst.ID] = box
	}
	n.agentAt = make(map[topo.NodeID]*agent.Agent)
	for _, st := range t.Stations {
		ag := agent.New(st.ID, n.Switches[st.Access], n.plan, ctrl)
		ag.PermPool = ctrl.PermPool()
		n.Agents[st.ID] = ag
		n.agentAt[st.Access] = ag
	}
	if cfg.NATPool != (packet.Prefix{}) {
		n.GatewayNAT = mbox.NewNAT(-1, cfg.NATPool)
	}
	return n, nil
}

// MBPort returns the attachment port of a middlebox instance.
func (n *Network) MBPort(id topo.MBInstanceID) int { return n.mbPort[id] }

// Sync re-materialises every switch's TCAM from the controller's FIBs.
// Call it after control-plane changes (path installs, handoffs). Microflow
// tables and public-IP bindings are preserved.
func (n *Network) Sync() error {
	for i := range n.Switches {
		if err := n.syncSwitch(topo.NodeID(i)); err != nil {
			return err
		}
	}
	for _, b := range n.bindings {
		n.installBinding(b)
	}
	if n.fast != nil {
		// Recompile stale fast-path snapshots now, so the control-plane
		// change is paid for here rather than on the next burst.
		n.fast.Net().Warm()
	}
	return nil
}

// publicBinding is one §7 gateway classifier.
type publicBinding struct {
	public packet.Addr
	loc    packet.Addr
	tag    packet.Tag
}

func (n *Network) installBinding(b publicBinding) {
	loc, tag := b.loc, b.tag
	n.Switches[n.Ctrl.Gateway()].Install(switchsim.PrioBinding, switchsim.Match{
		InPort: switchsim.AnyPort,
		Dst:    packet.Prefix{Addr: b.public, Len: 32},
	}, switchsim.Action{
		Resubmit:   true,
		Output:     -1,
		SetDst:     &loc,
		SetDstTag:  &tag,
		TagEphBits: n.plan.EphemeralBits(),
	})
}

// syncSwitch rebuilds one switch's TCAM.
func (n *Network) syncSwitch(node topo.NodeID) error {
	sw := n.Switches[node]
	sw.ClearTCAM()
	var exportErr error
	n.Ctrl.Installer.FIB(node).Export(func(r core.ExportedRule) {
		if exportErr != nil {
			return
		}
		if err := n.installExported(sw, node, r); err != nil {
			exportErr = err
		}
	})
	return exportErr
}

// installExported translates one abstract rule into a concrete TCAM entry.
func (n *Network) installExported(sw *switchsim.Switch, node topo.NodeID, r core.ExportedRule) error {
	m := switchsim.Match{InPort: switchsim.AnyPort}
	prefix := r.Prefix
	// Clamp catch-alls (like the gateway exit route) to the carrier block
	// so upstream source matches never swallow downstream traffic.
	if prefix.Len < n.plan.Carrier.Len {
		prefix = n.plan.Carrier
	}
	if r.Dir == core.Down {
		m.Dst = prefix
	} else {
		m.Src = prefix
	}
	if r.Tag != 0 {
		if r.Tag > n.plan.MaxTag() {
			return fmt.Errorf("dataplane: tag %d exceeds the plan's %d-bit field (use a wider plan for dataplane networks)", r.Tag, n.plan.TagBits)
		}
		lo, hi, err := n.plan.TagPortRange(r.Tag)
		if err != nil {
			return err
		}
		if r.Dir == core.Down {
			m.DstPortLo, m.DstPortHi = lo, hi
		} else {
			m.SrcPortLo, m.SrcPortHi = lo, hi
		}
	}
	switch {
	case r.FromMB != core.NoMB:
		m.InPort = n.mbPort[r.FromMB]
	case r.From != topo.None:
		p := n.T.Nodes[node].PortTo(r.From)
		if p < 0 {
			return fmt.Errorf("dataplane: switch %d has no port to %d", node, r.From)
		}
		m.InPort = p
	}

	var act switchsim.Action
	act.Output = -1
	switch {
	case r.NH.IsDeliver():
		// Hand to the local agent; established flows match their
		// higher-priority microflows instead.
		act.ToController = true
	case r.NH.IsExit():
		act.Output = switchsim.PortExit
	case r.NH.MB != core.NoMB:
		act.Output = n.mbPort[r.NH.MB]
	default:
		p := n.T.Nodes[node].PortTo(r.NH.Node)
		if p < 0 {
			return fmt.Errorf("dataplane: switch %d has no port to next hop %d", node, r.NH.Node)
		}
		act.Output = p
	}
	if r.NH.NewTag != 0 {
		if r.NH.NewTag > n.plan.MaxTag() {
			return fmt.Errorf("dataplane: swap tag %d exceeds the plan's tag field", r.NH.NewTag)
		}
		tag := r.NH.NewTag
		act.TagEphBits = n.plan.EphemeralBits()
		if r.Dir == core.Down {
			act.SetDstTag = &tag
		} else {
			act.SetSrcTag = &tag
		}
	}
	sw.Install(bandPriority[r.Band]+r.Prefix.Len, m, act)
	return nil
}

// Hop is one event of a packet walk.
type Hop struct {
	Node topo.NodeID
	MB   topo.MBInstanceID // core.NoMB for plain forwarding
}

// Disposition says how a walk ended.
type Disposition uint8

// Dispositions.
const (
	Delivered   Disposition = iota // handed to a UE at an access switch
	ExitedNet                      // left through the gateway's Internet port
	DroppedAt                      // dropped (policy or table miss)
	PuntedAgent                    // reached an access agent (caller handles)
)

func (d Disposition) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case ExitedNet:
		return "exited"
	case DroppedAt:
		return "dropped"
	case PuntedAgent:
		return "punted"
	default:
		return fmt.Sprintf("disposition(%d)", uint8(d))
	}
}

// WalkResult reports one packet's journey.
type WalkResult struct {
	Hops        []Hop
	Disposition Disposition
	Last        topo.NodeID
	Packet      *packet.Packet // final header state
	// Latency is the modelled one-way delay: per-hop propagation plus
	// DSCP-weighted queueing under Network.Congestion, plus middlebox
	// processing time.
	Latency time.Duration
}

// Latency model constants.
const (
	hopPropagation = 50 * time.Microsecond
	mbProcessing   = 100 * time.Microsecond
	queueUnit      = 200 * time.Microsecond
)

// queueDelay models one hop's queueing wait: congestion raises it, the
// packet's DSCP class divides it (strict-ish priority queues: CS6 traffic
// overtakes best effort).
func (n *Network) queueDelay(dscp uint8) time.Duration {
	if n.Congestion <= 0 {
		return 0
	}
	weight := 1 + time.Duration(dscp)/8 // 0->1, 10->2, 46->6, 48->7
	return time.Duration(n.Congestion*float64(queueUnit)) / weight
}

// direction infers a packet's orientation from its addresses.
func (n *Network) direction(p *packet.Packet) mbox.Direction {
	if n.plan.Carrier.Contains(p.Dst) && !n.plan.Carrier.Contains(p.Src) {
		return mbox.Downstream
	}
	return mbox.Upstream
}

// walk processes a packet starting at node with the given ingress port.
func (n *Network) walk(node topo.NodeID, inPort int, p *packet.Packet) (WalkResult, error) {
	res := WalkResult{Packet: p}
	cur := node
	for hops := 0; hops < 4*len(n.T.Nodes)+32; hops++ {
		res.Hops = append(res.Hops, Hop{Node: cur, MB: core.NoMB})
		v := n.Switches[cur].Process(p, inPort)
		switch {
		case v.ToController:
			res.Disposition, res.Last = PuntedAgent, cur
			return res, nil
		case v.Drop:
			atomic.AddUint64(&n.Dropped, 1)
			res.Disposition, res.Last = DroppedAt, cur
			return res, nil
		case v.Output == switchsim.PortUE:
			atomic.AddUint64(&n.Delivered, 1)
			res.Disposition, res.Last = Delivered, cur
			return res, nil
		case v.Output == switchsim.PortExit:
			if n.GatewayNAT != nil && !n.GatewayNAT.Process(p, mbox.Upstream) {
				atomic.AddUint64(&n.Dropped, 1)
				res.Disposition, res.Last = DroppedAt, cur
				return res, nil
			}
			atomic.AddUint64(&n.Exited, 1)
			res.Disposition, res.Last = ExitedNet, cur
			return res, nil
		case v.Output >= switchsim.PortTunnelBase:
			bs := packet.BSID(v.Output - switchsim.PortTunnelBase)
			st, ok := n.T.Station(bs)
			if !ok {
				return res, fmt.Errorf("dataplane: tunnel to unknown station %d", bs)
			}
			cur = st.Access
			inPort = switchsim.PortTunnelBase // tunnel ingress pseudo port
			continue
		case v.Output >= len(n.T.Nodes[cur].Neighbors):
			// Middlebox attachment port.
			inst, ok := n.mbAtPort(cur, v.Output)
			if !ok {
				return res, fmt.Errorf("dataplane: switch %d has no port %d", cur, v.Output)
			}
			box := n.Boxes[inst]
			res.Hops = append(res.Hops, Hop{Node: cur, MB: inst})
			res.Latency += mbProcessing
			if !box.Process(p, n.direction(p)) {
				atomic.AddUint64(&n.Dropped, 1)
				res.Disposition, res.Last = DroppedAt, cur
				return res, nil
			}
			inPort = v.Output // returns on the same port
			continue
		default:
			next := n.T.Nodes[cur].Neighbors[v.Output]
			inPort = n.T.Nodes[next].PortTo(cur)
			cur = next
			res.Latency += hopPropagation + n.queueDelay(p.DSCP)
		}
	}
	return res, fmt.Errorf("dataplane: packet exceeded hop budget (forwarding loop?)")
}

func (n *Network) mbAtPort(node topo.NodeID, port int) (topo.MBInstanceID, bool) {
	for id, p := range n.mbPort {
		if p == port && n.T.Instance(id).Attached == node {
			return id, true
		}
	}
	return 0, false
}

// SendUpstream injects a packet a UE sends at its base station. First
// packets of new flows are punted to the local agent (which installs
// microflows and asks the controller if needed) and then re-injected;
// packets punted at a *destination* station (mobile-to-mobile or
// Internet-initiated arrivals) are resolved by that station's agent. Callers
// see the end-to-end outcome directly.
func (n *Network) SendUpstream(bs packet.BSID, p *packet.Packet) (WalkResult, error) {
	st, ok := n.T.Station(bs)
	if !ok {
		return WalkResult{}, fmt.Errorf("dataplane: unknown base station %d", bs)
	}
	res, err := n.walk(st.Access, switchsim.PortUE, p)
	if err != nil || res.Disposition != PuntedAgent {
		return res, err
	}
	ag := n.Agents[bs]
	allowed, err := ag.HandlePacketIn(p)
	if err != nil {
		return res, err
	}
	if !allowed {
		atomic.AddUint64(&n.Dropped, 1)
		res.Disposition = DroppedAt
		return res, nil
	}
	if err := n.Sync(); err != nil { // new paths may have been installed
		return res, err
	}
	res, err = n.walk(st.Access, switchsim.PortUE, p)
	if err != nil {
		return res, err
	}
	return n.resolveArrivalPunts(res, p)
}

// resolveArrivalPunts handles punts at a destination access switch: the
// local agent there installs delivery microflows for flows addressed to one
// of its UEs (M2M and public-IP arrivals), then the walk resumes.
func (n *Network) resolveArrivalPunts(res WalkResult, p *packet.Packet) (WalkResult, error) {
	for tries := 0; tries < 2 && res.Disposition == PuntedAgent; tries++ {
		ag, ok := n.agentAt[res.Last]
		if !ok {
			return res, fmt.Errorf("dataplane: punt at non-access switch %d", res.Last)
		}
		delivered, err := ag.HandleArrival(p)
		if err != nil {
			return res, err
		}
		if !delivered {
			atomic.AddUint64(&n.Dropped, 1)
			res.Disposition = DroppedAt
			return res, nil
		}
		next, err := n.walk(res.Last, switchsim.PortTunnelBase, p)
		if err != nil {
			return next, err
		}
		next.Hops = append(res.Hops, next.Hops...)
		res = next
	}
	return res, nil
}

// SendDownstream injects a packet arriving from the Internet at the
// gateway. With a gateway NAT configured, the packet addresses the public
// binding; otherwise it addresses the LocIP (or a bound public IP, §7)
// directly.
func (n *Network) SendDownstream(p *packet.Packet) (WalkResult, error) {
	if n.GatewayNAT != nil && !n.GatewayNAT.Process(p, mbox.Downstream) {
		atomic.AddUint64(&n.Dropped, 1)
		return WalkResult{Disposition: DroppedAt, Last: n.Ctrl.Gateway(), Packet: p}, nil
	}
	res, err := n.walk(n.Ctrl.Gateway(), switchsim.PortExit, p)
	if err != nil {
		return res, err
	}
	return n.resolveArrivalPunts(res, p)
}

// BindPublicIP exposes a UE on a public address (§7 "Traffic initiated from
// the Internet"): the gateway gets one coarse classifier rule translating
// the public destination to the UE's LocIP plus the policy tag of the given
// clause, then ordinary forwarding applies. Inbound service ports must fit
// the plan's ephemeral field (the tag rides the high bits).
func (n *Network) BindPublicIP(imsi string, public packet.Addr, clause int) error {
	ue, ok := n.Ctrl.LookupUE(imsi)
	if !ok || ue.LocIP == 0 {
		return fmt.Errorf("dataplane: UE %q is not attached", imsi)
	}
	if n.plan.Carrier.Contains(public) || n.Ctrl.PermPool().Contains(public) {
		return fmt.Errorf("dataplane: public address %s collides with internal blocks", public)
	}
	tag, err := n.Ctrl.RequestPath(ue.BS, clause)
	if err != nil {
		return err
	}
	b := publicBinding{public: public, loc: ue.LocIP, tag: tag}
	n.bindings = append(n.bindings, b)
	n.Agents[ue.BS].AllowInbound(ue.LocIP, tag)
	return n.Sync()
}

// Handoff performs the complete handoff choreography: controller move,
// new-agent admission, microflow migration with tunnelling, and TCAM
// resync. It returns the controller's result (for later ReleaseOldLocIP).
func (n *Network) Handoff(imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	ue, ok := n.Ctrl.LookupUE(imsi)
	if !ok {
		return core.HandoffResult{}, fmt.Errorf("dataplane: unknown UE %q", imsi)
	}
	oldAgent := n.Agents[ue.BS]
	res, err := n.Ctrl.Handoff(imsi, newBS)
	if err != nil {
		return res, err
	}
	newAgent := n.Agents[newBS]
	if err := newAgent.AdmitUE(res.UE, res.Classifiers); err != nil {
		return res, err
	}
	if err := oldAgent.MigrateFlows(newAgent, res.UE, res.OldLocIP); err != nil {
		return res, err
	}
	return res, n.Sync()
}

// Attach runs the attach choreography: controller admission plus agent
// state push.
func (n *Network) Attach(imsi string, bs packet.BSID) (core.UE, error) {
	ue, cls, err := n.Ctrl.Attach(imsi, bs)
	if err != nil {
		return ue, err
	}
	return ue, n.Agents[bs].AdmitUE(ue, cls)
}

// RefreshClassifiers re-pushes every attached UE's compiled classifiers to
// its agent — used after policy changes or failure recomputation, when
// cached tags have gone stale (stale tags miss and re-resolve; they never
// alias, because the controller's tag sequence survives rebuilds).
func (n *Network) RefreshClassifiers() error {
	for bs, ag := range n.Agents {
		rep := ag.LocationReport()
		for _, ue := range rep.UEs {
			u2, cls, err := n.Ctrl.Attach(ue.IMSI, bs)
			if err != nil {
				return err
			}
			if err := ag.AdmitUE(u2, cls); err != nil {
				return err
			}
		}
	}
	return n.Sync()
}

// MiddleboxStats sums consistency violations across all instances — the
// mobility experiments' pass/fail signal.
func (n *Network) MiddleboxStats() (violations, connections uint64) {
	for _, b := range n.Boxes {
		s := b.Stats()
		violations += s.Violations
		connections += s.Connections
	}
	return
}
