package dataplane

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
)

// openFlow establishes a bidirectional connection and returns the upstream
// template packet (post-send header state for building replies).
func openFlow(t *testing.T, net *Network, bs packet.BSID, ue core.UE, sport uint16) *packet.Packet {
	t.Helper()
	up := webPacket(ue, sport)
	res, err := net.SendUpstream(bs, up)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != ExitedNet {
		t.Fatalf("flow open failed: %s at %d", res.Disposition, res.Last)
	}
	return up
}

func reply(up *packet.Packet, payload int) *packet.Packet {
	return &packet.Packet{
		Src: up.Dst, Dst: up.Src, SrcPort: up.DstPort, DstPort: up.SrcPort,
		Proto: up.Proto, TTL: 64, Payload: make([]byte, payload),
	}
}

func TestHandoffPolicyConsistency(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("m", policy.Attributes{Provider: "A"})
	ue, err := net.Attach("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	up := openFlow(t, net, 0, ue, 40000)

	// Which firewall instance owns the connection pre-handoff?
	var preConns uint64
	for _, b := range net.Boxes {
		if b.Func() == "firewall" {
			preConns = b.Stats().Connections
		}
	}
	if preConns != 1 {
		t.Fatalf("firewall connections = %d", preConns)
	}

	res, err := net.Handoff("m", 3)
	if err != nil {
		t.Fatal(err)
	}
	newUE := res.UE

	// OLD flow, downstream: the Internet still addresses the old LocIP; the
	// packet must traverse the same firewall and reach the UE at station 3.
	d := reply(up, 10)
	dres, err := net.SendDownstream(d)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Disposition != Delivered {
		t.Fatalf("old flow downstream: %s at %d (hops %v)", dres.Disposition, dres.Last, dres.Hops)
	}
	st3, _ := net.T.Station(3)
	if dres.Last != st3.Access {
		t.Fatalf("old flow delivered at %d, want new station %d", dres.Last, st3.Access)
	}
	if d.Dst != ue.PermIP || d.DstPort != 40000 {
		t.Fatalf("old flow restore failed: %s", d.Flow())
	}

	// OLD flow, upstream from the NEW station: keeps old LocIP + tag, so it
	// rejoins the old path (triangle/shortcut) and the same firewall sees it.
	u2 := webPacket(ue, 40000) // same five-tuple as the established flow
	ures, err := net.SendUpstream(3, u2)
	if err != nil {
		t.Fatal(err)
	}
	if ures.Disposition != ExitedNet {
		t.Fatalf("old flow upstream after handoff: %s at %d (hops %v)", ures.Disposition, ures.Last, ures.Hops)
	}
	if u2.Src != res.OldLocIP {
		t.Fatalf("old flow should keep the old LocIP: %s vs %s", u2.Src, res.OldLocIP)
	}

	// No middlebox ever saw mid-connection traffic it had no state for.
	if v, _ := net.MiddleboxStats(); v != 0 {
		t.Fatalf("policy consistency violations: %d", v)
	}

	// NEW flow after handoff uses the new LocIP and the new station's path.
	n2 := webPacket(newUE, 41000)
	nres, err := net.SendUpstream(3, n2)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Disposition != ExitedNet {
		t.Fatalf("new flow: %s", nres.Disposition)
	}
	if n2.Src != newUE.LocIP {
		t.Fatalf("new flow src = %s, want new LocIP %s", n2.Src, newUE.LocIP)
	}

	// After the soft timeout the shortcuts disappear; new flows unaffected.
	net.Ctrl.ReleaseOldLocIP(res.OldLocIP, res.Shortcuts)
	if err := net.Sync(); err != nil {
		t.Fatal(err)
	}
	if res2, err := net.SendUpstream(3, webPacket(newUE, 41001)); err != nil || res2.Disposition != ExitedNet {
		t.Fatalf("post-release new flow: %v %v", res2.Disposition, err)
	}
}

func TestHandoffChainMove(t *testing.T) {
	// Move a silver-plan video subscriber between stations served by
	// different transcoder instances: old flows must keep the OLD
	// transcoder instance (it holds codec state), new flows may use the new
	// one.
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("v", policy.Attributes{Provider: "A", Plan: "silver"})
	ue, _ := net.Attach("v", 0)
	video := &packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 9),
		SrcPort: 41000, DstPort: 554, Proto: packet.ProtoTCP, TTL: 64,
	}
	if res, err := net.SendUpstream(0, video); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("open: %v %v", res.Disposition, err)
	}

	res, err := net.Handoff("v", 3)
	if err != nil {
		t.Fatal(err)
	}

	// Old flow downstream media still transcodes with zero violations.
	d := reply(video, 1000)
	dres, err := net.SendDownstream(d)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Disposition != Delivered {
		t.Fatalf("old video downstream: %s at %d", dres.Disposition, dres.Last)
	}
	if len(d.Payload) != 500 {
		t.Fatalf("payload = %d; transcoder state lost", len(d.Payload))
	}
	if v, _ := net.MiddleboxStats(); v != 0 {
		t.Fatalf("violations = %d", v)
	}

	// New video flow from the new station uses the nearer transcoder.
	nv := &packet.Packet{
		Src: res.UE.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 9),
		SrcPort: 41500, DstPort: 554, Proto: packet.ProtoTCP, TTL: 64,
	}
	nres, err := net.SendUpstream(3, nv)
	if err != nil || nres.Disposition != ExitedNet {
		t.Fatalf("new video flow: %v %v", nres.Disposition, err)
	}
}

// Property-style test (DESIGN.md §6): random attach/flow/handoff schedules
// never produce a policy-consistency violation, and every established flow
// keeps working bidirectionally after every move.
func TestRandomHandoffScheduleConsistency(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	rng := rand.New(rand.NewSource(7))
	type conn struct {
		ue    string
		up    *packet.Packet
		sport uint16
	}
	ues := []string{"u0", "u1", "u2"}
	at := map[string]packet.BSID{}
	var conns []conn
	sport := uint16(40000)
	for _, u := range ues {
		_ = net.Ctrl.RegisterSubscriber(u, policy.Attributes{Provider: "A"})
		bs := packet.BSID(rng.Intn(4))
		if _, err := net.Attach(u, bs); err != nil {
			t.Fatal(err)
		}
		at[u] = bs
	}
	for step := 0; step < 30; step++ {
		u := ues[rng.Intn(len(ues))]
		switch rng.Intn(3) {
		case 0: // open a new flow
			ue, _ := net.Ctrl.LookupUE(u)
			sport++
			p := webPacket(ue, sport)
			res, err := net.SendUpstream(at[u], p)
			if err != nil {
				t.Fatalf("step %d open: %v", step, err)
			}
			if res.Disposition != ExitedNet {
				t.Fatalf("step %d open: %s at %d", step, res.Disposition, res.Last)
			}
			conns = append(conns, conn{ue: u, up: p, sport: sport})
		case 1: // handoff
			nb := packet.BSID(rng.Intn(4))
			if nb == at[u] {
				continue
			}
			if _, err := net.Handoff(u, nb); err != nil {
				t.Fatalf("step %d handoff: %v", step, err)
			}
			at[u] = nb
		case 2: // exercise an existing connection both ways
			if len(conns) == 0 {
				continue
			}
			c := conns[rng.Intn(len(conns))]
			d := reply(c.up, 8)
			res, err := net.SendDownstream(d)
			if err != nil {
				t.Fatalf("step %d downstream: %v", step, err)
			}
			if res.Disposition != Delivered {
				t.Fatalf("step %d downstream: %s at %d", step, res.Disposition, res.Last)
			}
			ue, _ := net.Ctrl.LookupUE(c.ue)
			u2 := &packet.Packet{Src: ue.PermIP, Dst: c.up.Dst,
				SrcPort: c.sport, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64}
			ur, err := net.SendUpstream(at[c.ue], u2)
			if err != nil {
				t.Fatalf("step %d upstream: %v", step, err)
			}
			if ur.Disposition != ExitedNet {
				t.Fatalf("step %d upstream: %s at %d", step, ur.Disposition, ur.Last)
			}
		}
	}
	if v, _ := net.MiddleboxStats(); v != 0 {
		t.Fatalf("violations after random schedule: %d", v)
	}
}
