package dataplane

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mbox"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// newPlainNet builds a middlebox-free line network (gateway - core - two
// access switches) under a pure-allow policy, so established flows stay
// entirely on the fast path.
func newPlainNet(t *testing.T) *Network {
	t.Helper()
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	cs := tp.AddNode(topo.Core, "cs")
	for i := 0; i < 2; i++ {
		as := tp.AddNode(topo.Access, "as")
		if err := tp.AddBaseStation(packet.BSID(i), as); err != nil {
			t.Fatal(err)
		}
		if err := tp.Connect(cs, as); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.Connect(gw, cs); err != nil {
		t.Fatal(err)
	}
	pol := &policy.Policy{}
	pol.Add(policy.Clause{Priority: 10, Name: "allow-A",
		Pred: policy.Attr(policy.FieldProvider, "A"), Action: policy.Via()})
	ctrl, err := core.NewController(tp, core.ControllerConfig{Gateway: gw, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	reg := mbox.NewRegistry(ctrl.Plan(), packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24))
	net, err := New(ctrl, Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestBurstPureFastPath sends an established flow as a burst and checks
// it completes on the fast path with the same outcome and headers as the
// sequential walk on a twin network.
func TestBurstPureFastPath(t *testing.T) {
	mk := func() (*Network, core.UE) {
		net := newPlainNet(t)
		_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
		ue, err := net.Attach("a", 0)
		if err != nil {
			t.Fatal(err)
		}
		// Prime: first packet installs the flow's microflows and paths.
		if _, err := net.SendUpstream(0, webPacket(ue, 40000)); err != nil {
			t.Fatal(err)
		}
		return net, ue
	}
	fastNet, ue := mk()
	refNet, ue2 := mk()
	if ue.PermIP != ue2.PermIP || ue.LocIP != ue2.LocIP {
		t.Fatalf("twin networks diverged: %+v vs %+v", ue, ue2)
	}

	reg := obs.New()
	fastNet.Instrument(reg)
	fastNet.EnableFastPath(2)
	defer fastNet.DisableFastPath()
	sender, err := fastNet.NewBurstSender()
	if err != nil {
		t.Fatal(err)
	}

	const burst = 32
	pkts := make([]*packet.Packet, burst)
	refs := make([]*packet.Packet, burst)
	for i := range pkts {
		pkts[i] = webPacket(ue, 40000)
		pkts[i].Seq = uint32(i)
		refs[i] = webPacket(ue2, 40000)
		refs[i].Seq = uint32(i)
	}
	out, err := sender.Send(0, pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		wr, err := refNet.SendUpstream(0, refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Slow {
			t.Fatalf("packet %d fell to the slow path on a middlebox-free established flow", i)
		}
		if out[i].Disposition != wr.Disposition || out[i].Last != wr.Last || out[i].Hops != len(wr.Hops) {
			t.Fatalf("packet %d: burst %s at %d (%d hops) != sequential %s at %d (%d hops)",
				i, out[i].Disposition, out[i].Last, out[i].Hops, wr.Disposition, wr.Last, len(wr.Hops))
		}
		if pkts[i].Src != refs[i].Src || pkts[i].Dst != refs[i].Dst ||
			pkts[i].SrcPort != refs[i].SrcPort || pkts[i].DstPort != refs[i].DstPort || pkts[i].DSCP != refs[i].DSCP {
			t.Fatalf("packet %d headers diverged: %v vs %v", i, pkts[i], refs[i])
		}
	}
	if got := atomic.LoadUint64(&fastNet.Exited); got != 1+burst {
		t.Fatalf("Exited = %d, want %d", got, 1+burst)
	}
	if v := reg.Counter("dataplane.burst.packets").Value(); v != burst {
		t.Fatalf("dataplane.burst.packets = %d, want %d", v, burst)
	}
	if v := reg.Counter("fastpath.packets").Value(); v != burst {
		t.Fatalf("fastpath.packets = %d, want %d", v, burst)
	}
	if v := reg.Counter("dataplane.slowpath").Value(); v != 0 {
		t.Fatalf("dataplane.slowpath = %d, want 0", v)
	}
}

// TestBurstSlowPathFallback runs bursts over the fig3 network, where every
// allowed flow traverses a firewall: the fast path must decline each
// packet and the replay must match the sequential path end to end,
// including the punt choreography for brand-new flows.
func TestBurstSlowPathFallback(t *testing.T) {
	fastNet, _ := newNet(t, packet.Prefix{})
	refNet, _ := newNet(t, packet.Prefix{})
	for _, n := range []*Network{fastNet, refNet} {
		_ = n.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
		if _, err := n.Attach("a", 0); err != nil {
			t.Fatal(err)
		}
	}
	ue, _ := fastNet.Ctrl.LookupUE("a")

	fastNet.EnableFastPath(1)
	defer fastNet.DisableFastPath()
	sender, err := fastNet.NewBurstSender()
	if err != nil {
		t.Fatal(err)
	}

	// Three flows, two packets each, interleaved in one burst — the first
	// packet of each flow punts and installs state, the rest replay off
	// the firewall port.
	var pkts, refs []*packet.Packet
	for i := 0; i < 6; i++ {
		sport := uint16(40000 + i%3)
		pkts = append(pkts, webPacket(ue, sport))
		refs = append(refs, webPacket(ue, sport))
	}
	out, err := sender.Send(0, pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		wr, err := refNet.SendUpstream(0, refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !out[i].Slow {
			t.Fatalf("packet %d claims pure fast path through a firewall", i)
		}
		if out[i].Disposition != wr.Disposition || out[i].Last != wr.Last {
			t.Fatalf("packet %d: burst %s at %d != sequential %s at %d",
				i, out[i].Disposition, out[i].Last, wr.Disposition, wr.Last)
		}
		if pkts[i].Src != refs[i].Src || pkts[i].SrcPort != refs[i].SrcPort || pkts[i].DSCP != refs[i].DSCP {
			t.Fatalf("packet %d headers diverged: %v vs %v", i, pkts[i], refs[i])
		}
	}
	if fastNet.Exited != refNet.Exited || fastNet.Dropped != refNet.Dropped {
		t.Fatalf("stats diverged: exited %d/%d dropped %d/%d",
			fastNet.Exited, refNet.Exited, fastNet.Dropped, refNet.Dropped)
	}
	// The same firewall instance saw both directionless flows: no
	// consistency violations on the replayed path.
	if v, _ := fastNet.MiddleboxStats(); v != 0 {
		t.Fatalf("middlebox violations = %d", v)
	}
}

// TestBurstSeesSyncedRules checks control-plane invalidation through the
// data plane: rules installed after EnableFastPath (attach + first-packet
// punt, then Sync) are visible to later bursts without restarting the
// engine.
func TestBurstSeesSyncedRules(t *testing.T) {
	net := newPlainNet(t)
	net.EnableFastPath(1)
	defer net.DisableFastPath()
	sender, err := net.NewBurstSender()
	if err != nil {
		t.Fatal(err)
	}

	_ = net.Ctrl.RegisterSubscriber("b", policy.Attributes{Provider: "A"})
	ue, err := net.Attach("b", 1)
	if err != nil {
		t.Fatal(err)
	}

	// First burst: brand-new flow, must replay through the punt path yet
	// still exit.
	first := []*packet.Packet{webPacket(ue, 41000)}
	out, err := sender.Send(1, first, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Disposition != ExitedNet || !out[0].Slow {
		t.Fatalf("first packet: %s slow=%v, want exited on the slow path", out[0].Disposition, out[0].Slow)
	}

	// Second burst: the punt installed microflows and Sync warmed the
	// snapshots, so the same flow now runs on the fast path.
	second := []*packet.Packet{webPacket(ue, 41000), webPacket(ue, 41000)}
	out, err = sender.Send(1, second, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Disposition != ExitedNet || out[i].Slow {
			t.Fatalf("packet %d after sync: %s slow=%v, want exited on the fast path",
				i, out[i].Disposition, out[i].Slow)
		}
	}
}
