package dataplane

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
)

// TestQoSLowLatencyForM2M reproduces Table 1's fifth clause: M2M
// fleet-tracking traffic is "forwarded with high priority to ensure low
// latency". Under congestion, the tracking flow's modelled latency must
// beat a best-effort web flow over the same network.
func TestQoSLowLatencyForM2M(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	net.Congestion = 5

	_ = net.Ctrl.RegisterSubscriber("fleet", policy.Attributes{Provider: "A", DeviceType: "m2m-fleet"})
	_ = net.Ctrl.RegisterSubscriber("phone", policy.Attributes{Provider: "A"})
	fleet, _ := net.Attach("fleet", 0)
	phone, _ := net.Attach("phone", 0)

	tracking := &packet.Packet{
		Src: fleet.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 77),
		SrcPort: 47000, DstPort: 5684, Proto: packet.ProtoUDP, TTL: 64,
	}
	tres, err := net.SendUpstream(0, tracking)
	if err != nil || tres.Disposition != ExitedNet {
		t.Fatalf("tracking: %v %v", tres.Disposition, err)
	}
	if tracking.DSCP == 0 {
		t.Fatal("tracking flow not QoS-marked")
	}

	web := webPacket(phone, 47001)
	wres, err := net.SendUpstream(0, web)
	if err != nil || wres.Disposition != ExitedNet {
		t.Fatalf("web: %v %v", wres.Disposition, err)
	}
	if web.DSCP != 0 {
		t.Fatalf("web flow should be best effort, got DSCP %d", web.DSCP)
	}

	// Same path length (both station 0 through the firewall to the
	// gateway), so the latency difference is pure queueing priority.
	if !(tres.Latency < wres.Latency) {
		t.Fatalf("tracking latency %v should beat web %v under congestion",
			tres.Latency, wres.Latency)
	}
}

// TestQoSIdleNetworkNoQueueing: without congestion the latency model
// reduces to propagation + middlebox processing.
func TestQoSIdleNetworkNoQueueing(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 0)
	p := webPacket(ue, 40000)
	res, err := net.SendUpstream(0, p)
	if err != nil || res.Disposition != ExitedNet {
		t.Fatalf("flow: %v %v", res.Disposition, err)
	}
	// Path: as0->cs2->cs1(fw)->gw = 3 network hops + 1 middlebox.
	want := 3*hopPropagation + mbProcessing
	if res.Latency != want {
		t.Fatalf("idle latency = %v, want %v", res.Latency, want)
	}
}

// TestQoSVoiceMarking: VoIP flows get the EF class.
func TestQoSVoiceMarking(t *testing.T) {
	net, _ := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 1)
	voip := &packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, 50),
		SrcPort: 42000, DstPort: 5060, Proto: packet.ProtoUDP, TTL: 64,
	}
	if res, err := net.SendUpstream(1, voip); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("voip: %v %v", res.Disposition, err)
	}
	if voip.DSCP != 46 {
		t.Fatalf("voip DSCP = %d, want 46 (EF)", voip.DSCP)
	}
}
