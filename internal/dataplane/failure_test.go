package dataplane

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mbox"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// genNet assembles a full network over the §6.3 generated topology (k=4),
// which has the path redundancy a failure test needs (ring double uplinks,
// pod and core meshes, multiple middlebox instances per type).
func genNet(t *testing.T) *Network {
	t.Helper()
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(g.Topology, core.ControllerConfig{
		Gateway: g.GatewayID,
		Policy:  policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := mbox.NewRegistry(ctrl.Plan(), packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24))
	net, err := New(ctrl, Config{
		Registry: reg,
		MBFuncs:  map[topo.MBType]string{0: "firewall", 1: "transcoder", 2: "echo-cancel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSwitchFailureRecomputation(t *testing.T) {
	net := genNet(t)
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, err := net.Attach("a", 7)
	if err != nil {
		t.Fatal(err)
	}
	open := webPacket(ue, 40000)
	res, err := net.SendUpstream(7, open)
	if err != nil || res.Disposition != ExitedNet {
		t.Fatalf("pre-failure flow: %v %v", res.Disposition, err)
	}

	// Fail a CORE switch on the installed path: the core mesh offers
	// alternatives (an access-facing pod switch would orphan its clusters,
	// which TestFailureDropsUnreachableStations covers).
	var victim topo.NodeID = topo.None
	for _, h := range res.Hops {
		if net.T.Nodes[h.Node].Kind == topo.Core {
			victim = h.Node
			break
		}
	}
	if victim == topo.None {
		t.Fatal("no core switch on path")
	}
	rep, err := net.Ctrl.FailSwitch(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recomputed == 0 {
		t.Fatalf("no paths recomputed: %+v", rep)
	}
	if err := net.RefreshClassifiers(); err != nil {
		t.Fatal(err)
	}

	// A new flow routes around the failure.
	p2 := webPacket(ue, 40001)
	res2, err := net.SendUpstream(7, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Disposition != ExitedNet {
		t.Fatalf("post-failure flow: %s at %d", res2.Disposition, res2.Last)
	}
	for _, h := range res2.Hops {
		if h.Node == victim {
			t.Fatalf("post-failure path still crosses failed switch %d: %v", victim, res2.Hops)
		}
	}
	// Return traffic works too.
	reply := &packet.Packet{Src: p2.Dst, Dst: p2.Src, SrcPort: p2.DstPort,
		DstPort: p2.SrcPort, Proto: packet.ProtoTCP, TTL: 64}
	dres, err := net.SendDownstream(reply)
	if err != nil || dres.Disposition != Delivered {
		t.Fatalf("post-failure downstream: %v %v", dres.Disposition, err)
	}
	for _, h := range dres.Hops {
		if h.Node == victim {
			t.Fatalf("downstream crosses failed switch: %v", dres.Hops)
		}
	}
}

func TestSwitchRecoveryReoptimises(t *testing.T) {
	net := genNet(t)
	_ = net.Ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _ := net.Attach("a", 3)
	if res, err := net.SendUpstream(3, webPacket(ue, 40000)); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("open: %v %v", res.Disposition, err)
	}
	st, _ := net.T.Station(3)
	// Fail the ring head's pod uplink target... pick any agg switch NOT on
	// the station's direct chain so the path survives, then recover it.
	var victim topo.NodeID = topo.None
	for i, nd := range net.T.Nodes {
		if nd.Kind == topo.Agg && topo.NodeID(i) != st.Access {
			victim = topo.NodeID(i)
			break
		}
	}
	if _, err := net.Ctrl.FailSwitch(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Ctrl.RecoverSwitch(victim); err != nil {
		t.Fatal(err)
	}
	if err := net.RefreshClassifiers(); err != nil {
		t.Fatal(err)
	}
	if res, err := net.SendUpstream(3, webPacket(ue, 40002)); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("post-recovery flow: %v %v", res.Disposition, err)
	}
	if net.T.Down(victim) {
		t.Fatal("switch should be up")
	}
}

func TestFailUnknownSwitch(t *testing.T) {
	net := genNet(t)
	if _, err := net.Ctrl.FailSwitch(9999); err == nil {
		t.Fatal("unknown switch should fail")
	}
}

func TestFailureDropsUnreachableStations(t *testing.T) {
	// In the Fig. 3 tree topology, cs3 is the only way to stations 2 and 3:
	// failing it must withdraw their paths but keep stations 0/1 working.
	net, f := newNet(t, packet.Prefix{})
	_ = net.Ctrl.RegisterSubscriber("x", policy.Attributes{Provider: "A"})
	_ = net.Ctrl.RegisterSubscriber("y", policy.Attributes{Provider: "A"})
	ueX, _ := net.Attach("x", 2) // behind cs3
	ueY, _ := net.Attach("y", 0)
	if res, err := net.SendUpstream(2, webPacket(ueX, 40000)); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("x pre-failure: %v %v", res.Disposition, err)
	}
	if res, err := net.SendUpstream(0, webPacket(ueY, 40000)); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("y pre-failure: %v %v", res.Disposition, err)
	}
	rep, err := net.Ctrl.FailSwitch(f.cs3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable == 0 {
		t.Fatalf("expected unreachable paths: %+v", rep)
	}
	if err := net.RefreshClassifiers(); err != nil {
		t.Fatal(err)
	}
	// Station 0 keeps working.
	if res, err := net.SendUpstream(0, webPacket(ueY, 40001)); err != nil || res.Disposition != ExitedNet {
		t.Fatalf("y post-failure: %v %v", res.Disposition, err)
	}
}
