package agent

import (
	"repro/internal/obs"
)

// agentObs mirrors the mutex-guarded Stats counters onto lock-free obs
// counters so a live registry can watch classifier-cache behaviour
// without taking the agent's lock. All handles nil (no-op) until
// Instrument is called.
type agentObs struct {
	packetIns  *obs.Counter
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	denied     *obs.Counter
	microflows *obs.Counter
	publishes  *obs.Counter
	staleDrops *obs.Counter
	rejected   *obs.Counter
	replayed   *obs.Counter
	tornDown   *obs.Counter
	version    *obs.Gauge

	// spPublish times validate+swap+reconcile of one snapshot publication.
	// Publications are controller-pushed, not request-scoped, so each one
	// roots its own trace under the sampling knob.
	spPublish *obs.SpanName
}

// Instrument registers the agent's telemetry on reg. Call it before the
// agent starts handling packets (it swaps the handle set unlocked).
// Callers wanting per-agent series pass a Sub-scoped view; registration
// is get-or-create, so a restarted agent re-instrumenting on the same
// registry keeps counting in the same series.
func (a *Agent) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	a.obs = agentObs{
		packetIns:  reg.Counter("agent.packet_in"),
		cacheHits:  reg.Counter("agent.cache.hit"),
		cacheMiss:  reg.Counter("agent.cache.miss"),
		denied:     reg.Counter("agent.denied"),
		microflows: reg.Counter("agent.microflows.installed"),
		publishes:  reg.Counter("agent.snapshot.publish"),
		staleDrops: reg.Counter("agent.snapshot.stale"),
		rejected:   reg.Counter("agent.snapshot.rejected"),
		replayed:   reg.Counter("agent.reconcile.replayed"),
		tornDown:   reg.Counter("agent.reconcile.torndown"),
		version:    reg.Gauge("agent.snapshot.version"),

		spPublish: reg.SpanName("agent.publish"),
	}
	reg.Doc("agent.snapshot.publish", "Snapshots accepted and swapped in as LKG state")
	reg.Doc("agent.snapshot.stale", "Snapshot publications refused for stale versions")
	reg.Doc("agent.snapshot.version", "Version of the agent's current LKG snapshot")
}
