// Package agent implements SoftCell's local control agent (§4.2): the
// software controller co-located with each base station's access switch. It
// caches per-UE packet classifiers at the behest of the central controller,
// installs microflow rules for new flows, and only contacts the controller
// when a flow needs a policy path that does not exist yet — the hierarchy
// that keeps tens of thousands of flow arrivals per second off the central
// controller.
package agent

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/switchsim"
)

// ControllerClient is the slice of the central controller an agent needs.
// core.Controller implements it in-process; internal/ctrlproto implements it
// over the wire.
type ControllerClient interface {
	RequestPath(bs packet.BSID, clause int) (packet.Tag, error)
}

// LocResolver is the optional capability mobile-to-mobile traffic needs:
// translating a destination UE's permanent address to its current LocIP.
// Controllers that implement it enable §7's direct M2M paths; otherwise the
// agent denies carrier-internal destinations.
type LocResolver interface {
	ResolveLocIP(perm packet.Addr) (packet.Addr, error)
}

// flowState records one active upstream microflow for a UE.
type flowState struct {
	orig      packet.FlowKey // as sent by the UE (permanent IP)
	rewritten packet.FlowKey // as it travels the core (LocIP + tag port)
}

// ueState is the agent's cached state for one attached UE. Per §5.2 it is
// read-mostly: only the central controller changes classifiers.
type ueState struct {
	ue          core.UE
	classifiers map[policy.AppType]core.Classifier
	flows       map[packet.FlowKey]flowState // keyed by orig
	nextEph     uint16
}

// Stats count the agent's control-plane activity; Table 2's benchmark reads
// them.
type Stats struct {
	PacketIns  uint64 // table-miss packets handled
	CacheHits  uint64 // flows admitted without contacting the controller
	CacheMiss  uint64 // flows that required a controller round trip
	Denied     uint64
	Microflows uint64
}

// Agent is one base station's local controller.
type Agent struct {
	BS     packet.BSID
	Access *switchsim.Switch

	// PermPool, when set, marks the block of permanent UE addresses: flows
	// addressed inside it are mobile-to-mobile candidates the agent
	// resolves through the controller (§7). Zero disables M2M-by-permanent
	// address (LocIP-addressed M2M still works).
	PermPool packet.Prefix

	plan packet.Plan
	ctrl ControllerClient

	mu      sync.Mutex
	ues     map[packet.Addr]*ueState // guarded by mu; keyed by permanent IP
	byLoc   map[packet.Addr]*ueState // guarded by mu; keyed by LocIP (incl. reserved old ones)
	inbound map[inboundKey]struct{}  // guarded by mu; §7 public-IP bindings this station accepts
	stats   Stats                    // guarded by mu

	obs agentObs // lock-free mirrors of Stats; set by Instrument
}

// inboundKey identifies an accepted Internet-initiated service binding.
type inboundKey struct {
	loc packet.Addr
	tag packet.Tag
}

// New builds an agent controlling the given access switch.
func New(bs packet.BSID, access *switchsim.Switch, plan packet.Plan, ctrl ControllerClient) *Agent {
	access.TableMiss = switchsim.Punt() // misses go to this agent
	return &Agent{
		BS:      bs,
		Access:  access,
		plan:    plan,
		ctrl:    ctrl,
		ues:     make(map[packet.Addr]*ueState),
		byLoc:   make(map[packet.Addr]*ueState),
		inbound: make(map[inboundKey]struct{}),
	}
}

// AllowInbound registers a §7 public-IP binding: Internet-initiated flows
// arriving tagged for (loc, tag) may be delivered. Without a registration,
// externally sourced packets that reach the access switch untagged or with
// an unknown tag are dropped — spoofed-tag probes included (§4.1).
func (a *Agent) AllowInbound(loc packet.Addr, tag packet.Tag) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inbound[inboundKey{loc, tag}] = struct{}{}
}

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// AdmitUE caches a UE's state and classifiers (the controller pushes these
// on attach and handoff).
func (a *Agent) AdmitUE(ue core.UE, classifiers []core.Classifier) error {
	if ue.BS != a.BS {
		return fmt.Errorf("agent: UE %s is attached to bs%d, not bs%d", ue.IMSI, ue.BS, a.BS)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &ueState{
		ue:          ue,
		classifiers: make(map[policy.AppType]core.Classifier, len(classifiers)),
		flows:       make(map[packet.FlowKey]flowState),
	}
	for _, c := range classifiers {
		st.classifiers[c.App] = c
	}
	a.ues[ue.PermIP] = st
	a.byLoc[ue.LocIP] = st
	return nil
}

// UpdateClassifiers refreshes a UE's classifier cache (read-only to the
// agent otherwise, §5.2).
func (a *Agent) UpdateClassifiers(permIP packet.Addr, classifiers []core.Classifier) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.ues[permIP]
	if !ok {
		return fmt.Errorf("agent: no UE with permanent IP %s", permIP)
	}
	for _, c := range classifiers {
		st.classifiers[c.App] = c
	}
	return nil
}

// classifyApp labels a flow, preferring the packet's explicit label.
func classifyApp(p *packet.Packet) policy.AppType {
	if p.App != 0 {
		return policy.AppType(p.App)
	}
	return policy.AppFromPort(p.DstPort)
}

// HandlePacketIn processes one table-miss packet from the access switch —
// the first packet of a new upstream flow. It classifies the flow, obtains
// the policy tag (from the classifier cache, or from the controller when no
// policy path exists yet), installs the two microflow rules (upstream
// rewrite+resubmit, downstream restore+deliver), and returns the verdict
// for this first packet.
func (a *Agent) HandlePacketIn(p *packet.Packet) (allowed bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.PacketIns++
	a.obs.packetIns.Inc()
	st, ok := a.ues[p.Src]
	if !ok {
		return false, fmt.Errorf("agent: packet from unknown UE %s", p.Src)
	}
	app := classifyApp(p)
	cl, ok := st.classifiers[app]
	if !ok || !cl.Allow {
		a.stats.Denied++
		a.obs.denied.Inc()
		a.Access.InstallMicroflow(p.Flow(), switchsim.DropAction())
		return false, nil
	}
	if a.plan.Carrier.Contains(p.Dst) || a.isLocalPerm(p.Dst) {
		// Mobile-to-mobile (§7): translate the peer's permanent address to
		// its LocIP and route directly by location — no tag, no gateway
		// detour. The reply direction is set up by the peer's agent when
		// the packet arrives there.
		return a.handleM2M(st, p)
	}
	if cl.Tag == 0 {
		// "send to controller": the policy path does not exist yet (§4.2).
		a.stats.CacheMiss++
		a.obs.cacheMiss.Inc()
		tag, err := a.ctrl.RequestPath(a.BS, cl.Clause)
		if err != nil {
			return false, fmt.Errorf("agent: controller refused path for clause %d: %w", cl.Clause, err)
		}
		cl.Tag = tag
		st.classifiers[app] = cl
	} else {
		a.stats.CacheHits++
		a.obs.cacheHits.Inc()
	}
	if err := a.installMicroflows(st, p.Flow(), cl.Tag, cl.QoS); err != nil {
		return false, err
	}
	return true, nil
}

// isLocalPerm reports whether the destination sits in the deployment's
// permanent-address pool — a mobile-to-mobile candidate. The check is a
// prefix test, so ordinary Internet-bound flows never pay a controller
// round trip here.
func (a *Agent) isLocalPerm(dst packet.Addr) bool {
	return a.PermPool.Len > 0 && a.PermPool.Contains(dst)
}

// handleM2M installs the microflows for a carrier-internal destination.
//
// caller holds mu
func (a *Agent) handleM2M(st *ueState, p *packet.Packet) (bool, error) {
	r, ok := a.ctrl.(LocResolver)
	if !ok {
		a.stats.Denied++
		a.obs.denied.Inc()
		a.Access.InstallMicroflow(p.Flow(), switchsim.DropAction())
		return false, nil
	}
	dstLoc := p.Dst
	if !a.plan.Carrier.Contains(dstLoc) {
		loc, err := r.ResolveLocIP(p.Dst)
		if err != nil {
			a.stats.Denied++
			a.obs.denied.Inc()
			a.Access.InstallMicroflow(p.Flow(), switchsim.DropAction())
			return false, nil
		}
		dstLoc = loc
	}
	a.stats.CacheMiss++ // the resolution is a controller round trip
	a.obs.cacheMiss.Inc()
	orig := p.Flow()
	srcLoc := st.ue.LocIP
	// Tag 0: pure location routing (Type 3 rules) carries the flow to the
	// peer's station directly.
	up := switchsim.Action{Resubmit: true, Output: -1, SetSrc: &srcLoc, SetDst: &dstLoc}
	a.Access.InstallMicroflow(orig, up)
	rewritten := packet.FlowKey{Src: srcLoc, Dst: dstLoc, SrcPort: orig.SrcPort,
		DstPort: orig.DstPort, Proto: orig.Proto}
	perm := st.ue.PermIP
	down := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm}
	a.Access.InstallMicroflow(rewritten.Reverse(), down)
	st.flows[orig] = flowState{orig: orig, rewritten: rewritten}
	a.stats.Microflows += 2
	a.obs.microflows.Add(2)
	return true, nil
}

// HandleArrival handles a punted packet ADDRESSED TO this station: a
// mobile-to-mobile or Internet-initiated (public IP, §7) flow reaching its
// destination access switch with no microflow yet. Internal sources
// (carrier or permanent-pool addresses) are mobile-to-mobile and always
// deliverable; external sources must match a registered inbound binding —
// anything else (including spoofed-tag probes, §4.1) is refused. On
// success it installs the delivery microflow and the reverse rule so
// replies retrace the same header transformation.
func (a *Agent) HandleArrival(p *packet.Packet) (delivered bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.byLoc[p.Dst]
	if !ok {
		return false, fmt.Errorf("agent: no UE with LocIP %s at bs%d", p.Dst, a.BS)
	}
	internal := a.plan.Carrier.Contains(p.Src) ||
		(a.PermPool.Len > 0 && a.PermPool.Contains(p.Src))
	if !internal {
		tag, _ := a.plan.SplitPort(p.DstPort)
		if _, allowed := a.inbound[inboundKey{p.Dst, tag}]; !allowed {
			a.stats.Denied++
			a.obs.denied.Inc()
			return false, nil
		}
	}
	a.stats.PacketIns++
	a.obs.packetIns.Inc()
	key := p.Flow()
	perm := st.ue.PermIP
	tag, svc := a.plan.SplitPort(p.DstPort)
	deliver := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm}
	if tag != 0 {
		// Inbound-tagged flows (public IP bindings) carry the service port
		// in the ephemeral bits; restore it for the UE.
		svcPort := svc
		deliver.SetDstPort = &svcPort
	}
	a.Access.InstallMicroflow(key, deliver)
	// Replies from the UE: restore the wire form so they retrace the same
	// (tagged) path back out.
	locIP := p.Dst
	tagged := p.DstPort
	replyKey := packet.FlowKey{Src: perm, Dst: p.Src, SrcPort: svc, DstPort: p.SrcPort, Proto: p.Proto}
	if tag == 0 {
		replyKey.SrcPort = p.DstPort
	}
	reply := switchsim.Action{Resubmit: true, Output: -1, SetSrc: &locIP, SetSrcPort: &tagged}
	a.Access.InstallMicroflow(replyKey, reply)
	a.stats.Microflows += 2
	a.obs.microflows.Add(2)
	return true, nil
}

// dscpFor maps a clause's QoS class to the DSCP marking the access edge
// applies (§2.2: actions carry "quality-of-service (QoS) ... specifications").
func dscpFor(q policy.QoS) uint8 {
	switch q {
	case policy.QoSVideo:
		return 10 // AF11-ish
	case policy.QoSVoice:
		return 46 // EF
	case policy.QoSLowLatency:
		return 48 // CS6: Table 1's M2M fleet tracking rides the top class
	default:
		return 0
	}
}

// installMicroflows writes the pair of exact-match rules for one flow.
//
// caller holds mu
func (a *Agent) installMicroflows(st *ueState, orig packet.FlowKey, tag packet.Tag, qos policy.QoS) error {
	if tag > a.plan.MaxTag() {
		return fmt.Errorf("agent: tag %d does not fit the %d-bit tag field", tag, a.plan.TagBits)
	}
	st.nextEph++
	if int(st.nextEph) >= 1<<a.plan.EphemeralBits() {
		st.nextEph = 1 // wrap: ephemeral reuse, like real port allocation
	}
	sport, err := a.plan.EmbedPort(tag, st.nextEph)
	if err != nil {
		return err
	}
	loc := st.ue.LocIP

	// Upstream: rewrite source to (LocIP, tag|eph), mark the QoS class, and
	// resubmit so the controller-installed rules forward it (§4.1, Fig. 4).
	up := switchsim.Action{Resubmit: true, Output: -1, SetSrc: &loc, SetSrcPort: &sport}
	if d := dscpFor(qos); d != 0 {
		dscp := d
		up.SetDSCP = &dscp
	}
	a.Access.InstallMicroflow(orig, up)

	// Downstream: the reverse of the rewritten flow; restore the permanent
	// address and deliver to the UE.
	rewritten := packet.FlowKey{Src: loc, Dst: orig.Dst, SrcPort: sport, DstPort: orig.DstPort, Proto: orig.Proto}
	perm := st.ue.PermIP
	origPort := orig.SrcPort
	down := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm, SetDstPort: &origPort}
	a.Access.InstallMicroflow(rewritten.Reverse(), down)

	st.flows[orig] = flowState{orig: orig, rewritten: rewritten}
	a.stats.Microflows += 2
	a.obs.microflows.Add(2)
	return nil
}

// ActiveFlows lists a UE's live upstream flow keys (original form).
func (a *Agent) ActiveFlows(permIP packet.Addr) []packet.FlowKey {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.ues[permIP]
	if !ok {
		return nil
	}
	out := make([]packet.FlowKey, 0, len(st.flows))
	for k := range st.flows {
		out = append(out, k)
	}
	return out
}

// MigrateFlows implements the access side of a handoff (§5.1): the old
// agent copies the moving UE's microflow rules to the new agent's switch
// (old flows keep the old LocIP and tags), retargets its own downstream
// microflows into the inter-station tunnel toward the new station, and
// hands over the UE state. newUE is the controller's post-handoff record.
func (a *Agent) MigrateFlows(newAgent *Agent, newUE core.UE, oldLocIP packet.Addr) error {
	a.mu.Lock()
	st, ok := a.ues[newUE.PermIP]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("agent: no state for UE %s", newUE.IMSI)
	}
	delete(a.ues, newUE.PermIP)
	delete(a.byLoc, oldLocIP)
	flows := make([]flowState, 0, len(st.flows))
	for _, f := range st.flows {
		flows = append(flows, f)
	}
	tunnel := switchsim.PortTunnelBase + int(newUE.BS)
	for _, f := range flows {
		// Downstream packets for the old flow now tunnel to the new station
		// unmodified: the copied microflow there restores the permanent
		// address on delivery.
		down := f.rewritten.Reverse()
		if _, ok := a.Access.Microflow(down); ok {
			a.Access.InstallMicroflow(down, switchsim.Action{Output: tunnel})
		}
		// The upstream rule at the old switch is obsolete (the UE is gone).
		a.Access.RemoveMicroflow(f.orig)
	}
	a.mu.Unlock()

	// The new agent inherits the UE (with its new LocIP for new flows) and
	// re-installs the old flows' microflows: upstream packets keep the old
	// LocIP and tag and triangle-route through the tunnel to the flow's
	// ORIGIN station (decoded from the old LocIP), where the old policy
	// path's upstream rules take over — so they traverse the old middlebox
	// sequence (§5.1).
	newAgent.mu.Lock()
	defer newAgent.mu.Unlock()
	nst, ok := newAgent.ues[newUE.PermIP]
	if !ok {
		return fmt.Errorf("agent: new agent has not admitted UE %s", newUE.IMSI)
	}
	newAgent.byLoc[oldLocIP] = nst // reserved old address still maps here
	for _, f := range flows {
		loc := f.rewritten.Src
		sport := f.rewritten.SrcPort
		originBS, _, ok := newAgent.plan.Split(loc)
		if !ok {
			return fmt.Errorf("agent: flow source %s outside the carrier block", loc)
		}
		up := switchsim.Action{
			Output:     switchsim.PortTunnelBase + int(originBS),
			SetSrc:     &loc,
			SetSrcPort: &sport,
		}
		newAgent.Access.InstallMicroflow(f.orig, up)
		perm := newUE.PermIP
		origPort := f.orig.SrcPort
		down := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm, SetDstPort: &origPort}
		newAgent.Access.InstallMicroflow(f.rewritten.Reverse(), down)
		nst.flows[f.orig] = f
		newAgent.stats.Microflows += 2
		newAgent.obs.microflows.Add(2)
	}
	return nil
}

// LocationReport answers a recovering controller's location query (§5.2).
func (a *Agent) LocationReport() core.AgentLocationReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := core.AgentLocationReport{BS: a.BS}
	for _, st := range a.ues {
		rep.UEs = append(rep.UEs, st.ue)
	}
	return rep
}

// Restart simulates a local-agent failure (§5.2): all cached state is
// dropped; the controller re-pushes it via AdmitUE. Microflows in the
// switch survive (the switch did not fail), so established flows keep
// forwarding while the agent recovers.
func (a *Agent) Restart() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ues = make(map[packet.Addr]*ueState)
	a.byLoc = make(map[packet.Addr]*ueState)
	a.stats = Stats{}
}

// NumUEs reports the attached-UE count (Fig. 6(b)'s per-station quantity).
func (a *Agent) NumUEs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ues)
}

// FlowWireForm reports the tracked rewritten (wire) key for a UE's original
// flow key — diagnostics for migration tests.
func (a *Agent) FlowWireForm(permIP packet.Addr, orig packet.FlowKey) (packet.FlowKey, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.ues[permIP]
	if !ok {
		return packet.FlowKey{}, false
	}
	f, ok := st.flows[orig]
	return f.rewritten, ok
}
