// Package agent implements SoftCell's local control agent (§4.2): the
// software controller co-located with each base station's access switch. It
// classifies new flows against an immutable, versioned snapshot of per-UE
// classifiers and admitted policy tags — last-known-good state the data
// plane keeps using through controller outages — installs microflow rules,
// and only contacts the controller when a flow needs a policy path the
// snapshot does not carry yet (and even that falls away in the
// pushed-snapshot deployment shape, where the controller publishes fresh
// snapshots asynchronously instead of answering blocking RPCs).
package agent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/switchsim"
)

// ControllerClient is the slice of the central controller an agent needs
// for synchronous path resolution. core.Controller implements it
// in-process; internal/ctrlproto implements it over the wire. A nil client
// puts the agent in pushed-snapshot mode: packet-ins never block on the
// control plane, and a clause with no admitted tag fails with ErrNoPath
// until a fresh snapshot arrives.
type ControllerClient interface {
	RequestPath(bs packet.BSID, clause int) (packet.Tag, error)
}

// LocResolver is the optional capability mobile-to-mobile traffic needs:
// translating a destination UE's permanent address to its current LocIP.
// Controllers that implement it enable §7's direct M2M paths; otherwise the
// agent denies carrier-internal destinations.
type LocResolver interface {
	ResolveLocIP(perm packet.Addr) (packet.Addr, error)
}

// flowState records one active upstream microflow for a UE, with the
// policy coordinates reconciliation needs to replay or tear it down when a
// newer snapshot changes the clause's tag.
type flowState struct {
	orig      packet.FlowKey // as sent by the UE (permanent IP)
	rewritten packet.FlowKey // as it travels the core (LocIP + tag port)
	clause    int
	tag       packet.Tag // 0 for M2M location-routed flows
	qos       policy.QoS
}

// ueFlows is the mutable per-UE flow book: soft state owned by this agent
// (unlike classifiers, which live in the immutable snapshot) and dropped on
// Restart — the microflows themselves survive in the switch.
type ueFlows struct {
	flows   map[packet.FlowKey]flowState // keyed by orig
	nextEph uint16
}

// Stats count the agent's control-plane activity; Table 2's benchmark
// reads them. All fields are monotonic and survive Restart, keeping them
// coherent with the obs registry mirrors (which are registered
// get-or-create and also keep counting across restarts).
type Stats struct {
	PacketIns  uint64 // table-miss packets handled
	CacheHits  uint64 // flows admitted from the LKG snapshot alone
	CacheMiss  uint64 // flows that required a controller round trip
	Denied     uint64
	Microflows uint64
	Publishes  uint64 // snapshots accepted by Publish
	StaleDrops uint64 // snapshots refused for stale versions (ErrStaleSnapshot)
	Rejected   uint64 // snapshots refused by validation
	Replayed   uint64 // flows reinstalled under a changed tag at reconcile
	TornDown   uint64 // flows removed at reconcile (path or UE withdrawn)
}

// counters is the lock-free backing store for Stats.
type counters struct {
	packetIns  atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	denied     atomic.Uint64
	microflows atomic.Uint64
	publishes  atomic.Uint64
	staleDrops atomic.Uint64
	rejected   atomic.Uint64
	replayed   atomic.Uint64
	tornDown   atomic.Uint64
}

// Agent is one base station's local controller.
type Agent struct {
	BS     packet.BSID
	Access *switchsim.Switch

	// PermPool, when set, marks the block of permanent UE addresses: flows
	// addressed inside it are mobile-to-mobile candidates the agent
	// resolves through the controller (§7). Zero disables M2M-by-permanent
	// address (LocIP-addressed M2M still works).
	PermPool packet.Prefix

	plan packet.Plan
	ctrl ControllerClient

	// snap is the LKG classifier state: swapped whole by Publish (pushed
	// snapshots, CAS ordered by version) and derive (local admits). Always
	// non-nil; classification loads it exactly once per decision.
	snap atomic.Pointer[Snapshot]

	mu      sync.Mutex
	flows   map[packet.Addr]*ueFlows // guarded by mu; keyed by permanent IP
	inbound map[inboundKey]struct{}  // guarded by mu; §7 public-IP bindings this station accepts

	stats counters
	obs   agentObs // lock-free mirrors; set by Instrument
}

// inboundKey identifies an accepted Internet-initiated service binding.
type inboundKey struct {
	loc packet.Addr
	tag packet.Tag
}

// New builds an agent controlling the given access switch. A nil ctrl is
// valid: see ControllerClient.
func New(bs packet.BSID, access *switchsim.Switch, plan packet.Plan, ctrl ControllerClient) *Agent {
	access.TableMiss = switchsim.Punt() // misses go to this agent
	a := &Agent{
		BS:      bs,
		Access:  access,
		plan:    plan,
		ctrl:    ctrl,
		flows:   make(map[packet.Addr]*ueFlows),
		inbound: make(map[inboundKey]struct{}),
	}
	a.snap.Store(newDraft(0).seal(0)) // version 0: nothing published yet
	return a
}

// AllowInbound registers a §7 public-IP binding: Internet-initiated flows
// arriving tagged for (loc, tag) may be delivered. Without a registration,
// externally sourced packets that reach the access switch untagged or with
// an unknown tag are dropped — spoofed-tag probes included (§4.1).
func (a *Agent) AllowInbound(loc packet.Addr, tag packet.Tag) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inbound[inboundKey{loc, tag}] = struct{}{}
}

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() Stats {
	return Stats{
		PacketIns:  a.stats.packetIns.Load(),
		CacheHits:  a.stats.cacheHits.Load(),
		CacheMiss:  a.stats.cacheMiss.Load(),
		Denied:     a.stats.denied.Load(),
		Microflows: a.stats.microflows.Load(),
		Publishes:  a.stats.publishes.Load(),
		StaleDrops: a.stats.staleDrops.Load(),
		Rejected:   a.stats.rejected.Load(),
		Replayed:   a.stats.replayed.Load(),
		TornDown:   a.stats.tornDown.Load(),
	}
}

// AdmitUE folds a UE's record and classifiers into the LKG snapshot (the
// controller pushes these on attach and handoff) by deriving and swapping
// in a successor snapshot.
func (a *Agent) AdmitUE(ue core.UE, classifiers []core.Classifier) error {
	if ue.BS != a.BS {
		return fmt.Errorf("agent: UE %s is attached to bs%d, not bs%d", ue.IMSI, ue.BS, a.BS)
	}
	a.derive(func(d *snapshotDraft) { d.putUE(ue, classifiers) })
	return nil
}

// UpdateClassifiers refreshes a UE's classifiers in the LKG snapshot. A
// classifier carrying Tag 0 explicitly invalidates the station's admitted
// tag for its clause, forcing the next flow back to the controller.
func (a *Agent) UpdateClassifiers(permIP packet.Addr, classifiers []core.Classifier) error {
	if _, ok := a.lkg().ues[permIP]; !ok {
		return fmt.Errorf("agent: no UE with permanent IP %s", permIP)
	}
	a.derive(func(d *snapshotDraft) { d.mergeClassifiers(permIP, classifiers) })
	return nil
}

// classifyApp labels a flow, preferring the packet's explicit label.
func classifyApp(p *packet.Packet) policy.AppType {
	if p.App != 0 {
		return policy.AppType(p.App)
	}
	return policy.AppFromPort(p.DstPort)
}

// deny counts a policy denial and pins a drop microflow for the flow so
// later packets die in the switch instead of punting again.
func (a *Agent) deny(p *packet.Packet) {
	a.stats.denied.Add(1)
	a.obs.denied.Inc()
	a.Access.InstallMicroflow(p.Flow(), switchsim.DropAction())
}

// HandlePacketIn processes one table-miss packet from the access switch —
// the first packet of a new upstream flow. The whole decision reads one
// atomically loaded LKG snapshot: classify, resolve the clause's tag
// (classifier pin, then the snapshot's admitted-tag table), and install the
// two microflow rules (upstream rewrite+resubmit, downstream
// restore+deliver). Only a clause absent from the snapshot falls back to a
// synchronous controller request — and only when the agent has a resolver;
// without one it fails fast with ErrNoPath and keeps serving everything the
// snapshot already admits, which is what lets admitted traffic ride out a
// controller blackout.
func (a *Agent) HandlePacketIn(p *packet.Packet) (allowed bool, err error) {
	snap := a.lkg()
	a.stats.packetIns.Add(1)
	a.obs.packetIns.Inc()
	su, ok := snap.ues[p.Src]
	if !ok {
		return false, fmt.Errorf("agent: packet from unknown UE %s", p.Src)
	}
	app := classifyApp(p)
	cl, ok := su.classifiers[app]
	if !ok || !cl.Allow {
		a.deny(p)
		return false, nil
	}
	if a.plan.Carrier.Contains(p.Dst) || a.isLocalPerm(p.Dst) {
		// Mobile-to-mobile (§7): translate the peer's permanent address to
		// its LocIP and route directly by location — no tag, no gateway
		// detour. The reply direction is set up by the peer's agent when
		// the packet arrives there.
		return a.handleM2M(su, p)
	}
	tag := cl.Tag
	if tag == 0 {
		tag = snap.tags[cl.Clause]
	}
	if tag != 0 {
		a.stats.cacheHits.Add(1)
		a.obs.cacheHits.Inc()
	} else {
		// "send to controller": the policy path does not exist yet (§4.2).
		a.stats.cacheMiss.Add(1)
		a.obs.cacheMiss.Inc()
		if a.ctrl == nil {
			return false, fmt.Errorf("agent: clause %d at bs%d: %w", cl.Clause, a.BS, ErrNoPath)
		}
		t, err := a.ctrl.RequestPath(a.BS, cl.Clause)
		if err != nil {
			return false, fmt.Errorf("agent: controller refused path for clause %d: %w", cl.Clause, err)
		}
		tag = t
		// Record the admitted tag in the snapshot so later flows (and
		// restarts) hit it without another round trip.
		a.derive(func(d *snapshotDraft) { d.tags[cl.Clause] = t })
	}
	return true, a.installFlow(su, p.Flow(), tag, cl.Clause, cl.QoS)
}

// installFlow takes the agent lock and installs one admitted flow.
func (a *Agent) installFlow(su *snapUE, orig packet.FlowKey, tag packet.Tag, clause int, qos policy.QoS) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.installMicroflows(su, a.flowsFor(su.ue.PermIP), orig, tag, clause, qos)
}

// isLocalPerm reports whether the destination sits in the deployment's
// permanent-address pool — a mobile-to-mobile candidate. The check is a
// prefix test, so ordinary Internet-bound flows never pay a controller
// round trip here.
func (a *Agent) isLocalPerm(dst packet.Addr) bool {
	return a.PermPool.Len > 0 && a.PermPool.Contains(dst)
}

// handleM2M installs the microflows for a carrier-internal destination.
func (a *Agent) handleM2M(su *snapUE, p *packet.Packet) (bool, error) {
	r, ok := a.ctrl.(LocResolver)
	if !ok {
		a.deny(p)
		return false, nil
	}
	dstLoc := p.Dst
	if !a.plan.Carrier.Contains(dstLoc) {
		loc, err := r.ResolveLocIP(p.Dst)
		if err != nil {
			a.deny(p)
			return false, nil
		}
		dstLoc = loc
	}
	a.stats.cacheMiss.Add(1) // the resolution is a controller round trip
	a.obs.cacheMiss.Inc()
	orig := p.Flow()
	srcLoc := su.ue.LocIP
	// Tag 0: pure location routing (Type 3 rules) carries the flow to the
	// peer's station directly.
	up := switchsim.Action{Resubmit: true, Output: -1, SetSrc: &srcLoc, SetDst: &dstLoc}
	a.Access.InstallMicroflow(orig, up)
	rewritten := packet.FlowKey{Src: srcLoc, Dst: dstLoc, SrcPort: orig.SrcPort,
		DstPort: orig.DstPort, Proto: orig.Proto}
	perm := su.ue.PermIP
	down := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm}
	a.Access.InstallMicroflow(rewritten.Reverse(), down)
	a.mu.Lock()
	a.flowsFor(perm).flows[orig] = flowState{orig: orig, rewritten: rewritten}
	a.mu.Unlock()
	a.stats.microflows.Add(2)
	a.obs.microflows.Add(2)
	return true, nil
}

// HandleArrival handles a punted packet ADDRESSED TO this station: a
// mobile-to-mobile or Internet-initiated (public IP, §7) flow reaching its
// destination access switch with no microflow yet. Internal sources
// (carrier or permanent-pool addresses) are mobile-to-mobile and always
// deliverable; external sources must match a registered inbound binding —
// anything else (including spoofed-tag probes, §4.1) is refused. On
// success it installs the delivery microflow and the reverse rule so
// replies retrace the same header transformation.
func (a *Agent) HandleArrival(p *packet.Packet) (delivered bool, err error) {
	snap := a.lkg()
	su, ok := snap.byLoc[p.Dst]
	if !ok {
		return false, fmt.Errorf("agent: no UE with LocIP %s at bs%d", p.Dst, a.BS)
	}
	internal := a.plan.Carrier.Contains(p.Src) ||
		(a.PermPool.Len > 0 && a.PermPool.Contains(p.Src))
	if !internal {
		tag, _ := a.plan.SplitPort(p.DstPort)
		a.mu.Lock()
		_, bound := a.inbound[inboundKey{p.Dst, tag}]
		a.mu.Unlock()
		if !bound {
			a.stats.denied.Add(1)
			a.obs.denied.Inc()
			return false, nil
		}
	}
	a.stats.packetIns.Add(1)
	a.obs.packetIns.Inc()
	key := p.Flow()
	perm := su.ue.PermIP
	tag, svc := a.plan.SplitPort(p.DstPort)
	deliver := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm}
	if tag != 0 {
		// Inbound-tagged flows (public IP bindings) carry the service port
		// in the ephemeral bits; restore it for the UE.
		svcPort := svc
		deliver.SetDstPort = &svcPort
	}
	a.Access.InstallMicroflow(key, deliver)
	// Replies from the UE: restore the wire form so they retrace the same
	// (tagged) path back out.
	locIP := p.Dst
	tagged := p.DstPort
	replyKey := packet.FlowKey{Src: perm, Dst: p.Src, SrcPort: svc, DstPort: p.SrcPort, Proto: p.Proto}
	if tag == 0 {
		replyKey.SrcPort = p.DstPort
	}
	reply := switchsim.Action{Resubmit: true, Output: -1, SetSrc: &locIP, SetSrcPort: &tagged}
	a.Access.InstallMicroflow(replyKey, reply)
	a.stats.microflows.Add(2)
	a.obs.microflows.Add(2)
	return true, nil
}

// dscpFor maps a clause's QoS class to the DSCP marking the access edge
// applies (§2.2: actions carry "quality-of-service (QoS) ... specifications").
func dscpFor(q policy.QoS) uint8 {
	switch q {
	case policy.QoSVideo:
		return 10 // AF11-ish
	case policy.QoSVoice:
		return 46 // EF
	case policy.QoSLowLatency:
		return 48 // CS6: Table 1's M2M fleet tracking rides the top class
	default:
		return 0
	}
}

// flowsFor returns (creating if needed) the mutable flow book for a UE.
//
// caller holds mu
func (a *Agent) flowsFor(perm packet.Addr) *ueFlows {
	uf, ok := a.flows[perm]
	if !ok {
		uf = &ueFlows{flows: make(map[packet.FlowKey]flowState)}
		a.flows[perm] = uf
	}
	return uf
}

// installMicroflows writes the pair of exact-match rules for one flow and
// records it in the UE's flow book for later reconciliation.
//
// caller holds mu
func (a *Agent) installMicroflows(su *snapUE, uf *ueFlows, orig packet.FlowKey, tag packet.Tag, clause int, qos policy.QoS) error {
	if tag > a.plan.MaxTag() {
		return fmt.Errorf("agent: tag %d does not fit the %d-bit tag field", tag, a.plan.TagBits)
	}
	uf.nextEph++
	if int(uf.nextEph) >= 1<<a.plan.EphemeralBits() {
		uf.nextEph = 1 // wrap: ephemeral reuse, like real port allocation
	}
	sport, err := a.plan.EmbedPort(tag, uf.nextEph)
	if err != nil {
		return err
	}
	loc := su.ue.LocIP

	// Upstream: rewrite source to (LocIP, tag|eph), mark the QoS class, and
	// resubmit so the controller-installed rules forward it (§4.1, Fig. 4).
	up := switchsim.Action{Resubmit: true, Output: -1, SetSrc: &loc, SetSrcPort: &sport}
	if d := dscpFor(qos); d != 0 {
		dscp := d
		up.SetDSCP = &dscp
	}
	a.Access.InstallMicroflow(orig, up)

	// Downstream: the reverse of the rewritten flow; restore the permanent
	// address and deliver to the UE.
	rewritten := packet.FlowKey{Src: loc, Dst: orig.Dst, SrcPort: sport, DstPort: orig.DstPort, Proto: orig.Proto}
	perm := su.ue.PermIP
	origPort := orig.SrcPort
	down := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm, SetDstPort: &origPort}
	a.Access.InstallMicroflow(rewritten.Reverse(), down)

	uf.flows[orig] = flowState{orig: orig, rewritten: rewritten, clause: clause, tag: tag, qos: qos}
	a.stats.microflows.Add(2)
	a.obs.microflows.Add(2)
	return nil
}

// ActiveFlows lists a UE's live upstream flow keys (original form).
func (a *Agent) ActiveFlows(permIP packet.Addr) []packet.FlowKey {
	a.mu.Lock()
	defer a.mu.Unlock()
	uf, ok := a.flows[permIP]
	if !ok {
		return nil
	}
	out := make([]packet.FlowKey, 0, len(uf.flows))
	for k := range uf.flows {
		out = append(out, k)
	}
	return out
}

// MigrateFlows implements the access side of a handoff (§5.1): the old
// agent copies the moving UE's microflow rules to the new agent's switch
// (old flows keep the old LocIP and tags), retargets its own downstream
// microflows into the inter-station tunnel toward the new station, and
// hands over the UE state. newUE is the controller's post-handoff record;
// the new agent must already have admitted it (AdmitUE).
func (a *Agent) MigrateFlows(newAgent *Agent, newUE core.UE, oldLocIP packet.Addr) error {
	if _, ok := a.lkg().ues[newUE.PermIP]; !ok {
		return fmt.Errorf("agent: no state for UE %s", newUE.IMSI)
	}
	if _, ok := newAgent.lkg().ues[newUE.PermIP]; !ok {
		return fmt.Errorf("agent: new agent has not admitted UE %s", newUE.IMSI)
	}
	// The UE leaves this agent's snapshot; its flow book moves out under mu.
	a.derive(func(d *snapshotDraft) { d.removeUE(newUE.PermIP) })
	a.mu.Lock()
	uf := a.flows[newUE.PermIP]
	delete(a.flows, newUE.PermIP)
	var flows []flowState
	if uf != nil {
		flows = make([]flowState, 0, len(uf.flows))
		for _, f := range uf.flows {
			flows = append(flows, f)
		}
	}
	tunnel := switchsim.PortTunnelBase + int(newUE.BS)
	for _, f := range flows {
		// Downstream packets for the old flow now tunnel to the new station
		// unmodified: the copied microflow there restores the permanent
		// address on delivery.
		down := f.rewritten.Reverse()
		if _, ok := a.Access.Microflow(down); ok {
			a.Access.InstallMicroflow(down, switchsim.Action{Output: tunnel})
		}
		// The upstream rule at the old switch is obsolete (the UE is gone).
		a.Access.RemoveMicroflow(f.orig)
	}
	a.mu.Unlock()

	// The new agent inherits the UE (with its new LocIP for new flows) and
	// re-installs the old flows' microflows: upstream packets keep the old
	// LocIP and tag and triangle-route through the tunnel to the flow's
	// ORIGIN station (decoded from the old LocIP), where the old policy
	// path's upstream rules take over — so they traverse the old middlebox
	// sequence (§5.1). The reserved old address aliases into the new
	// agent's snapshot.
	newAgent.derive(func(d *snapshotDraft) { d.alias(oldLocIP, newUE.PermIP) })
	newAgent.mu.Lock()
	defer newAgent.mu.Unlock()
	nuf := newAgent.flowsFor(newUE.PermIP)
	for _, f := range flows {
		loc := f.rewritten.Src
		sport := f.rewritten.SrcPort
		originBS, _, ok := newAgent.plan.Split(loc)
		if !ok {
			return fmt.Errorf("agent: flow source %s outside the carrier block", loc)
		}
		up := switchsim.Action{
			Output:     switchsim.PortTunnelBase + int(originBS),
			SetSrc:     &loc,
			SetSrcPort: &sport,
		}
		newAgent.Access.InstallMicroflow(f.orig, up)
		perm := newUE.PermIP
		origPort := f.orig.SrcPort
		down := switchsim.Action{Output: switchsim.PortUE, SetDst: &perm, SetDstPort: &origPort}
		newAgent.Access.InstallMicroflow(f.rewritten.Reverse(), down)
		nuf.flows[f.orig] = f
		newAgent.stats.microflows.Add(2)
		newAgent.obs.microflows.Add(2)
	}
	return nil
}

// LocationReport answers a recovering controller's location query (§5.2).
func (a *Agent) LocationReport() core.AgentLocationReport {
	snap := a.lkg()
	rep := core.AgentLocationReport{BS: a.BS}
	for _, su := range snap.ues {
		rep.UEs = append(rep.UEs, su.ue)
	}
	return rep
}

// Restart simulates a local-agent process failure (§5.2). The LKG snapshot
// — validated, versioned, published state — survives, exactly as a
// persisted config would: the agent keeps classifying and keeps its
// version floor, so a stale snapshot replayed after the restart is still
// refused. The counters survive too, staying coherent with their obs
// registry mirrors (which are per-series and never reset). What is lost is
// the soft state: the per-UE flow books. Microflows in the switch survive
// (the switch did not fail), so established flows keep forwarding while
// the controller re-pushes anything it wants changed.
func (a *Agent) Restart() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flows = make(map[packet.Addr]*ueFlows)
}

// NumUEs reports the attached-UE count (Fig. 6(b)'s per-station quantity).
func (a *Agent) NumUEs() int {
	return len(a.lkg().ues)
}

// FlowWireForm reports the tracked rewritten (wire) key for a UE's original
// flow key — diagnostics for migration tests.
func (a *Agent) FlowWireForm(permIP packet.Addr, orig packet.FlowKey) (packet.FlowKey, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	uf, ok := a.flows[permIP]
	if !ok {
		return packet.FlowKey{}, false
	}
	f, ok := uf.flows[orig]
	return f.rewritten, ok
}
