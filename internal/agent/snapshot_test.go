package agent

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

// view builds a pushable controller export for bs1 with the given UEs (all
// carrying webClassifiers(0), i.e. clause 5 resolved through the tag table)
// and tag grants.
func view(ues []core.UE, grants ...core.TagGrant) core.AgentView {
	v := core.AgentView{BS: 1, Tags: grants}
	for _, ue := range ues {
		v.UEs = append(v.UEs, core.AgentViewUE{UE: ue, Classifiers: webClassifiers(0)})
	}
	return v
}

// admitWithFlow builds an agent with one UE and one established tagged
// flow (clause 5, tag 1 — resolved via the controller on first miss).
func admitWithFlow(t *testing.T) (*Agent, core.UE) {
	t.Helper()
	ctrl := newFakeController()
	ag := newAgent(t, ctrl)
	ue := testUE(t, 1, 1)
	if err := ag.AdmitUE(ue, webClassifiers(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ag.HandlePacketIn(upPkt(ue, 40000)); err != nil {
		t.Fatal(err)
	}
	if got, _ := ag.lkg().Tag(5); got != 1 {
		t.Fatalf("admitted tag = %d, want 1", got)
	}
	return ag, ue
}

// TestReconcileEdges drives Publish through the reconciliation edge cases:
// a stale admit replayed under the snapshot's new tag, a tombstoned UE in a
// newer snapshot, a withdrawn path, and a confirmed one. In every case the
// established flow is kept, replayed, or torn down — never silently dropped.
func TestReconcileEdges(t *testing.T) {
	cases := []struct {
		name  string
		push  func(ue core.UE) core.AgentView
		want  ReconcileReport
		flows int // surviving tracked flows for the UE
		tag   packet.Tag
	}{
		{
			name: "confirmed tag kept",
			push: func(ue core.UE) core.AgentView {
				return view([]core.UE{ue}, core.TagGrant{Clause: 5, Tag: 1})
			},
			want: ReconcileReport{Kept: 1}, flows: 1, tag: 1,
		},
		{
			name: "stale admit replayed under new tag",
			push: func(ue core.UE) core.AgentView {
				return view([]core.UE{ue}, core.TagGrant{Clause: 5, Tag: 9})
			},
			want: ReconcileReport{Replayed: 1}, flows: 1, tag: 9,
		},
		{
			name: "withdrawn path torn down",
			push: func(ue core.UE) core.AgentView {
				return view([]core.UE{ue}) // no grant for clause 5
			},
			want: ReconcileReport{TornDown: 1}, flows: 0,
		},
		{
			name: "tombstoned UE dropped whole",
			push: func(core.UE) core.AgentView {
				return view(nil, core.TagGrant{Clause: 5, Tag: 1})
			},
			want: ReconcileReport{TornDown: 1, UEsDropped: 1}, flows: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ag, ue := admitWithFlow(t)
			rep, err := ag.Publish(NewSnapshot(ag.Version()+1, tc.push(ue)))
			if err != nil {
				t.Fatal(err)
			}
			if rep != tc.want {
				t.Fatalf("reconcile report = %+v, want %+v", rep, tc.want)
			}
			if got := len(ag.ActiveFlows(ue.PermIP)); got != tc.flows {
				t.Fatalf("tracked flows = %d, want %d", got, tc.flows)
			}
			if tc.flows > 0 {
				// The replayed/kept microflow must carry the snapshot's tag.
				q := upPkt(ue, 40000)
				ag.Access.Process(q, switchsim.PortUE)
				tag, _ := plan.SplitPort(q.SrcPort)
				if tag != tc.tag {
					t.Fatalf("wire tag = %d, want %d", tag, tc.tag)
				}
			}
			st := ag.Stats()
			if int(st.Replayed) != tc.want.Replayed || int(st.TornDown) != tc.want.TornDown {
				t.Fatalf("stats replayed/torndown = %d/%d, want %d/%d",
					st.Replayed, st.TornDown, tc.want.Replayed, tc.want.TornDown)
			}
		})
	}
}

// TestOutOfOrderPublishRejected asserts CAS-on-version: an old snapshot
// must never overwrite a newer one, regardless of delivery order — and the
// refusal also survives an agent restart (the version floor is part of the
// LKG state).
func TestOutOfOrderPublishRejected(t *testing.T) {
	ag, ue := admitWithFlow(t)
	base := ag.Version()
	if _, err := ag.Publish(NewSnapshot(base+5, view([]core.UE{ue}, core.TagGrant{Clause: 5, Tag: 2}))); err != nil {
		t.Fatal(err)
	}
	for _, stale := range []uint64{base, base + 5} {
		_, err := ag.Publish(NewSnapshot(stale, view([]core.UE{ue}, core.TagGrant{Clause: 5, Tag: 3})))
		if !errors.Is(err, ErrStaleSnapshot) {
			t.Fatalf("publish v%d: err = %v, want ErrStaleSnapshot", stale, err)
		}
	}
	if got, _ := ag.lkg().Tag(5); got != 2 {
		t.Fatalf("stale publish changed state: tag = %d, want 2", got)
	}
	if ag.Version() != base+5 {
		t.Fatalf("version = %d, want %d", ag.Version(), base+5)
	}
	ag.Restart()
	if _, err := ag.Publish(NewSnapshot(base+5, view([]core.UE{ue}))); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("restart lowered the version floor: err = %v", err)
	}
	if st := ag.Stats(); st.StaleDrops != 3 {
		t.Fatalf("StaleDrops = %d, want 3", st.StaleDrops)
	}
}

// TestPublishValidation asserts validate-then-swap: a snapshot that
// misattributes UEs or grants unusable tags is refused whole and leaves the
// LKG state untouched.
func TestPublishValidation(t *testing.T) {
	ag, ue := admitWithFlow(t)
	ver := ag.Version()
	foreign := testUE(t, 2, 7) // attached to bs2
	bad := []core.AgentView{
		view([]core.UE{foreign}),
		view([]core.UE{ue}, core.TagGrant{Clause: 5, Tag: 0}),
		view([]core.UE{ue}, core.TagGrant{Clause: 5, Tag: plan.MaxTag() + 1}),
	}
	for i, v := range bad {
		if _, err := ag.Publish(NewSnapshot(ver+1, v)); err == nil {
			t.Fatalf("bad view %d accepted", i)
		}
	}
	if ag.Version() != ver {
		t.Fatal("rejected snapshot changed the version")
	}
	if st := ag.Stats(); st.Rejected != uint64(len(bad)) {
		t.Fatalf("Rejected = %d, want %d", st.Rejected, len(bad))
	}
}

// snapOp is one step of a randomized publish/packet-in interleaving.
// testing/quick fills it via reflection.
type snapOp struct {
	Publish bool
	Delta   uint8 // version step; %4 == 0 makes the push stale on purpose
	Tag     uint8 // granted tag for clause 5; %8 == 0 omits the grant
	DropUE  bool  // tombstone the UE in this push
}

// TestVerdictMatchesHighestPublished is the atomicity property: for any
// sequential interleaving of snapshot publishes and classifications, the
// verdict equals classifying against the highest fully-published snapshot
// version — stale pushes change nothing, and no verdict ever mixes fields
// from two generations.
func TestVerdictMatchesHighestPublished(t *testing.T) {
	ue := testUE(t, 1, 1)
	check := func(ops []snapOp) bool {
		ag := newAgent(t, nil) // pushed-snapshot mode: no controller
		// Model state: what the highest accepted publication carries.
		var hasUE bool
		var tag packet.Tag
		for _, op := range ops {
			if op.Publish {
				delta := uint64(op.Delta % 4) // 0 => stale/duplicate version
				grantTag := packet.Tag(op.Tag % 8)
				var ues []core.UE
				if !op.DropUE {
					ues = append(ues, ue)
				}
				var grants []core.TagGrant
				if grantTag != 0 {
					grants = append(grants, core.TagGrant{Clause: 5, Tag: grantTag})
				}
				_, err := ag.Publish(NewSnapshot(ag.Version()+delta, view(ues, grants...)))
				if delta == 0 {
					if !errors.Is(err, ErrStaleSnapshot) {
						t.Logf("stale push accepted: %v", err)
						return false
					}
					continue // model unchanged
				}
				if err != nil {
					t.Logf("publish failed: %v", err)
					return false
				}
				hasUE = !op.DropUE
				tag = grantTag
				continue
			}
			got := ag.Classify(upPkt(ue, 41000))
			want := Verdict{}
			if hasUE {
				want = Verdict{Known: true, Allowed: true, Tag: tag, Pending: tag == 0}
			}
			if got != want {
				t.Logf("verdict = %+v, want %+v (hasUE=%v tag=%d v=%d)",
					got, want, hasUE, tag, ag.Version())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPublishClassify races publishers against classifiers under
// -race. Every published snapshot v correlates its tag grant with its
// version (tag = v%62+1), so a reader observing a verdict whose tag does
// not match any single version proves a torn read; per-reader versions must
// also be monotonic, since swaps are CAS-ordered by version.
func TestConcurrentPublishClassify(t *testing.T) {
	ag := newAgent(t, nil)
	ue := testUE(t, 1, 1)
	if err := ag.AdmitUE(ue, webClassifiers(0)); err != nil {
		t.Fatal(err)
	}
	tagOf := func(v uint64) packet.Tag { return packet.Tag(v%62) + 1 }
	const versions = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := ag.Version() + 1; v <= versions; v++ {
			if _, err := ag.Publish(NewSnapshot(v, view([]core.UE{ue},
				core.TagGrant{Clause: 5, Tag: tagOf(v)}))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	errs := make(chan string, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < 2000; i++ {
				s := ag.lkg() // one atomic load: the whole read side
				if s.Version() < last {
					errs <- "version went backwards"
					return
				}
				last = s.Version()
				if tag, ok := s.Tag(5); ok && tag != tagOf(s.Version()) {
					errs <- "tag does not match snapshot version: torn read"
					return
				}
				if v := ag.Classify(upPkt(ue, 42000)); !v.Known || !v.Allowed {
					errs <- "admitted UE lost its verdict mid-publish"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if ag.Version() != versions {
		t.Fatalf("final version = %d, want %d", ag.Version(), versions)
	}
}

// TestInstrumentedCountersMatchStats keeps the obs mirrors coherent with
// Stats across publishes, rejections, and a restart.
func TestInstrumentedCountersMatchStats(t *testing.T) {
	ag, ue := admitWithFlow(t)
	reg := obs.New()
	ag.Instrument(reg)
	if _, err := ag.Publish(NewSnapshot(ag.Version()+1, view([]core.UE{ue},
		core.TagGrant{Clause: 5, Tag: 4}))); err != nil {
		t.Fatal(err)
	}
	if _, err := ag.Publish(NewSnapshot(0, view([]core.UE{ue}))); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("err = %v", err)
	}
	ag.Restart()
	st := ag.Stats()
	checks := map[string]uint64{
		"agent.snapshot.publish":   st.Publishes,
		"agent.snapshot.stale":     st.StaleDrops,
		"agent.reconcile.replayed": st.Replayed,
		"agent.reconcile.torndown": st.TornDown,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("agent.snapshot.version").Value(); uint64(got) != ag.Version() {
		t.Errorf("version gauge = %d, want %d", got, ag.Version())
	}
}
