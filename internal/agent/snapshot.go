package agent

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
)

// ErrStaleSnapshot rejects a published snapshot whose version does not
// exceed the agent's current one: old versions must never overwrite new
// state, no matter how the wire reorders deliveries.
var ErrStaleSnapshot = errors.New("agent: stale snapshot version")

// ErrNoPath marks a packet-in whose clause has no admitted tag in the LKG
// snapshot and no synchronous resolver to fall back on: the pushed-snapshot
// deployment shape, where the controller answers with a fresh snapshot
// instead of a blocking RPC.
var ErrNoPath = errors.New("agent: no admitted policy path in snapshot")

// Snapshot is the agent's versioned classifier state: per-UE classifiers,
// the station's admitted (clause -> tag) grants, and the controller's
// tag-plan epoch. It is immutable after publish — readers pick it up
// through one atomic pointer load and classify against that one consistent
// view, so a packet-in never observes half of an update. New states are
// whole replacement snapshots built by NewSnapshot (controller pushes) or
// derived copy-on-write from the current one (local admits), then swapped
// in by version: this is the last-known-good state the data plane keeps
// forwarding on through controller and shard blackouts.
type Snapshot struct {
	version uint64
	epoch   uint64
	ues     map[packet.Addr]*snapUE
	byLoc   map[packet.Addr]*snapUE // incl. reserved old-LocIP aliases (§5.1)
	tags    map[int]packet.Tag      // admitted policy paths: clause -> tag
}

// snapUE is one UE's share of a Snapshot. Instances are shared across
// snapshot generations and never mutated after construction; an update
// replaces the whole record.
type snapUE struct {
	ue          core.UE
	classifiers map[policy.AppType]core.Classifier
}

// Version reports the snapshot's publication version.
func (s *Snapshot) Version() uint64 { return s.version }

// Epoch reports the controller tag-plan epoch the snapshot was cut from.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumUEs reports how many UEs the snapshot carries.
func (s *Snapshot) NumUEs() int { return len(s.ues) }

// Tag reports the admitted tag for a policy clause, if any.
func (s *Snapshot) Tag(clause int) (packet.Tag, bool) {
	t, ok := s.tags[clause]
	return t, ok
}

// UE reports the snapshot's record for a permanent address.
func (s *Snapshot) UE(perm packet.Addr) (core.UE, bool) {
	su, ok := s.ues[perm]
	if !ok {
		return core.UE{}, false
	}
	return su.ue, true
}

// pathFor resolves the forwarding tag a clause grants one UE under this
// snapshot: the classifier's own pinned tag first, then the station-wide
// admitted-tag table. ok is false when the clause no longer admits traffic
// for the UE (classifier withdrawn or denied) or no tag is admitted.
func (s *Snapshot) pathFor(su *snapUE, clause int) (packet.Tag, policy.QoS, bool) {
	for _, cl := range su.classifiers {
		if cl.Clause != clause || !cl.Allow {
			continue
		}
		if cl.Tag != 0 {
			return cl.Tag, cl.QoS, true
		}
		if t, ok := s.tags[clause]; ok && t != 0 {
			return t, cl.QoS, true
		}
		return 0, cl.QoS, false
	}
	return 0, 0, false
}

// NewSnapshot builds a publishable snapshot from a controller's exported
// station view. version is assigned by the pusher and must exceed the
// receiving agent's current version to take effect (see Publish).
func NewSnapshot(version uint64, view core.AgentView) *Snapshot {
	d := newDraft(view.Epoch)
	for _, v := range view.UEs {
		d.putUE(v.UE, v.Classifiers)
	}
	for _, g := range view.Tags {
		d.tags[g.Clause] = g.Tag
	}
	return d.seal(version)
}

// snapshotDraft is the private mutable form a successor snapshot is built
// in before it is sealed and published. Drafts shallow-copy the previous
// generation's maps; snapUE values are shared until replaced whole.
type snapshotDraft struct {
	epoch uint64
	ues   map[packet.Addr]*snapUE
	byLoc map[packet.Addr]*snapUE
	tags  map[int]packet.Tag
}

func newDraft(epoch uint64) *snapshotDraft {
	return &snapshotDraft{
		epoch: epoch,
		ues:   make(map[packet.Addr]*snapUE),
		byLoc: make(map[packet.Addr]*snapUE),
		tags:  make(map[int]packet.Tag),
	}
}

// draftOf copies a snapshot's maps into a fresh draft (copy-on-write: the
// snapUE records themselves are shared, not copied).
func draftOf(s *Snapshot) *snapshotDraft {
	d := &snapshotDraft{
		epoch: s.epoch,
		ues:   make(map[packet.Addr]*snapUE, len(s.ues)+1),
		byLoc: make(map[packet.Addr]*snapUE, len(s.byLoc)+1),
		tags:  make(map[int]packet.Tag, len(s.tags)+1),
	}
	for k, v := range s.ues {
		d.ues[k] = v
	}
	for k, v := range s.byLoc {
		d.byLoc[k] = v
	}
	for k, v := range s.tags {
		d.tags[k] = v
	}
	return d
}

// seal freezes the draft into a publishable snapshot.
//
// seal constructs Snapshot.
func (d *snapshotDraft) seal(version uint64) *Snapshot {
	return &Snapshot{
		version: version,
		epoch:   d.epoch,
		ues:     d.ues,
		byLoc:   d.byLoc,
		tags:    d.tags,
	}
}

// putUE installs (or replaces) one UE record, repointing every location
// alias that referenced the UE's previous record so reserved old LocIPs
// keep resolving to fresh state.
func (d *snapshotDraft) putUE(ue core.UE, classifiers []core.Classifier) {
	cls := make(map[policy.AppType]core.Classifier, len(classifiers))
	for _, c := range classifiers {
		cls[c.App] = c
	}
	su := &snapUE{ue: ue, classifiers: cls}
	d.ues[ue.PermIP] = su
	for loc, old := range d.byLoc {
		if old.ue.PermIP == ue.PermIP {
			d.byLoc[loc] = su
		}
	}
	d.byLoc[ue.LocIP] = su
}

// removeUE drops one UE record and every location alias pointing at it.
func (d *snapshotDraft) removeUE(perm packet.Addr) {
	delete(d.ues, perm)
	for loc, su := range d.byLoc {
		if su.ue.PermIP == perm {
			delete(d.byLoc, loc)
		}
	}
}

// alias maps an extra LocIP (a §5.1 reserved old address) to an existing
// UE record. It reports whether the UE exists.
func (d *snapshotDraft) alias(loc packet.Addr, perm packet.Addr) bool {
	su, ok := d.ues[perm]
	if !ok {
		return false
	}
	d.byLoc[loc] = su
	return true
}

// mergeClassifiers replaces a UE's classifiers for the listed apps. A
// classifier arriving with Tag 0 is an explicit invalidation: any admitted
// station-wide tag for its clause is withdrawn, so the next flow re-asks
// the controller (the Table 2 hit-ratio semantics).
func (d *snapshotDraft) mergeClassifiers(perm packet.Addr, classifiers []core.Classifier) bool {
	su, ok := d.ues[perm]
	if !ok {
		return false
	}
	cls := make(map[policy.AppType]core.Classifier, len(su.classifiers)+len(classifiers))
	for k, v := range su.classifiers {
		cls[k] = v
	}
	for _, c := range classifiers {
		cls[c.App] = c
		if c.Tag == 0 {
			delete(d.tags, c.Clause)
		}
	}
	next := &snapUE{ue: su.ue, classifiers: cls}
	d.ues[perm] = next
	for loc, old := range d.byLoc {
		if old.ue.PermIP == perm {
			d.byLoc[loc] = next
		}
	}
	return true
}

// ReconcileReport accounts for what a newly published snapshot did to the
// agent's live microflow state: nothing is ever silently dropped — every
// tagged flow is either kept, replayed onto the snapshot's current tag, or
// torn down because the snapshot withdrew its path or its UE.
type ReconcileReport struct {
	Kept       int // flows whose tag the snapshot confirms
	Replayed   int // flows reinstalled under a changed tag
	TornDown   int // flows removed: path or classifier withdrawn, or UE gone
	UEsDropped int // UEs tombstoned by the snapshot whose flow state was discarded
}

// lkg returns the agent's current last-known-good snapshot (never nil).
func (a *Agent) lkg() *Snapshot { return a.snap.Load() }

// Version reports the current LKG snapshot version. It survives Restart.
func (a *Agent) Version() uint64 { return a.lkg().version }

// validateSnapshot is the validate half of validate-then-swap: a snapshot
// that misattributes UEs or carries un-embeddable tags is refused whole,
// before it can become anyone's LKG state.
func (a *Agent) validateSnapshot(s *Snapshot) error {
	for perm, su := range s.ues {
		if su.ue.BS != a.BS {
			return fmt.Errorf("agent: snapshot v%d places UE %s at bs%d, not bs%d",
				s.version, su.ue.IMSI, su.ue.BS, a.BS)
		}
		if su.ue.PermIP != perm {
			return fmt.Errorf("agent: snapshot v%d keys UE %s under %s", s.version, su.ue.IMSI, perm)
		}
		if su.ue.LocIP == 0 {
			return fmt.Errorf("agent: snapshot v%d carries UE %s with no LocIP", s.version, su.ue.IMSI)
		}
	}
	for clause, tag := range s.tags {
		if tag == 0 || tag > a.plan.MaxTag() {
			return fmt.Errorf("agent: snapshot v%d grants clause %d unusable tag %d", s.version, clause, tag)
		}
	}
	return nil
}

// Publish validates s and atomically swaps it in as the agent's LKG state,
// provided its version is strictly newer than the current one (CAS on the
// snapshot pointer, ordered by version — an out-of-order delivery fails
// with ErrStaleSnapshot and changes nothing). On success it reconciles the
// agent's live microflows against the new state and reports what was kept,
// replayed, or torn down.
func (a *Agent) Publish(s *Snapshot) (ReconcileReport, error) {
	sp := a.obs.spPublish.Root()
	defer sp.End()
	if s == nil {
		return ReconcileReport{}, errors.New("agent: nil snapshot")
	}
	if err := a.validateSnapshot(s); err != nil {
		a.stats.rejected.Add(1)
		a.obs.rejected.Inc()
		return ReconcileReport{}, err
	}
	for {
		cur := a.snap.Load()
		if s.version <= cur.version {
			a.stats.staleDrops.Add(1)
			a.obs.staleDrops.Inc()
			return ReconcileReport{}, fmt.Errorf("agent: bs%d holds v%d, refused v%d: %w",
				a.BS, cur.version, s.version, ErrStaleSnapshot)
		}
		if a.snap.CompareAndSwap(cur, s) {
			break
		}
	}
	a.stats.publishes.Add(1)
	a.obs.publishes.Inc()
	a.obs.version.Set(int64(s.version))
	return a.reconcile(), nil
}

// derive publishes a local successor of the current LKG snapshot: copy the
// maps into a draft, apply mutate, seal at version+1, and swap — retrying
// from the fresh state if a concurrent publication won the pointer.
func (a *Agent) derive(mutate func(d *snapshotDraft)) *Snapshot {
	for {
		cur := a.snap.Load()
		d := draftOf(cur)
		mutate(d)
		next := d.seal(cur.version + 1)
		if a.snap.CompareAndSwap(cur, next) {
			a.obs.version.Set(int64(next.version))
			return next
		}
	}
}

// reconcile walks the agent's live flow book under the freshly published
// snapshot. Stale admits are replayed (reinstalled under the snapshot's
// tag) or torn down (path or UE withdrawn) — never silently dropped; every
// disposition is counted here and on the obs registry.
func (a *Agent) reconcile() ReconcileReport {
	snap := a.lkg()
	a.mu.Lock()
	defer a.mu.Unlock()
	var rep ReconcileReport
	for perm, uf := range a.flows {
		su, ok := snap.ues[perm]
		if !ok {
			// Tombstoned UE: the snapshot no longer carries it, so its
			// microflows must not keep forwarding.
			for _, f := range uf.flows {
				a.Access.RemoveMicroflow(f.orig)
				a.Access.RemoveMicroflow(f.rewritten.Reverse())
			}
			rep.TornDown += len(uf.flows)
			rep.UEsDropped++
			delete(a.flows, perm)
			continue
		}
		for orig, f := range uf.flows {
			if f.tag == 0 {
				continue // M2M and location-routed flows carry no tag to reconcile
			}
			tag, qos, ok := snap.pathFor(su, f.clause)
			switch {
			case !ok:
				a.Access.RemoveMicroflow(f.orig)
				a.Access.RemoveMicroflow(f.rewritten.Reverse())
				delete(uf.flows, orig)
				rep.TornDown++
			case tag != f.tag:
				a.Access.RemoveMicroflow(f.orig)
				a.Access.RemoveMicroflow(f.rewritten.Reverse())
				delete(uf.flows, orig)
				if err := a.installMicroflows(su, uf, orig, tag, f.clause, qos); err != nil {
					rep.TornDown++ // unembeddable replacement tag: counted, not hidden
				} else {
					rep.Replayed++
				}
			default:
				rep.Kept++
			}
		}
	}
	a.stats.replayed.Add(uint64(rep.Replayed))
	a.stats.tornDown.Add(uint64(rep.TornDown))
	a.obs.replayed.Add(uint64(rep.Replayed))
	a.obs.tornDown.Add(uint64(rep.TornDown))
	return rep
}

// Verdict is Classify's result: the decision the agent would make for a
// packet using only the LKG snapshot.
type Verdict struct {
	Known   bool       // the source UE is in the snapshot
	Allowed bool       // its classifier admits the flow
	Pending bool       // admitted, but no tag yet: needs a path (ErrNoPath territory)
	Tag     packet.Tag // the tag the flow would carry (0 for M2M location routing)
}

// Classify resolves the verdict for p against the current LKG snapshot —
// read-only: no locks taken, no controller contact, no microflows
// installed. The chaos harness's continuity checker drives it during
// control-plane blackouts, where any verdict flip for previously admitted
// traffic is an invariant violation.
//
// hotpath: no alloc, no lock
func (a *Agent) Classify(p *packet.Packet) Verdict {
	snap := a.lkg()
	su, ok := snap.ues[p.Src]
	if !ok {
		return Verdict{}
	}
	cl, ok := su.classifiers[classifyApp(p)]
	if !ok || !cl.Allow {
		return Verdict{Known: true}
	}
	tag := cl.Tag
	if tag == 0 {
		tag = snap.tags[cl.Clause]
	}
	if tag == 0 && !(a.plan.Carrier.Contains(p.Dst) || a.isLocalPerm(p.Dst)) {
		return Verdict{Known: true, Allowed: true, Pending: true}
	}
	return Verdict{Known: true, Allowed: true, Tag: tag}
}
