package agent

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/switchsim"
)

// fakeController counts path requests and can inject failures.
type fakeController struct {
	nextTag  packet.Tag
	requests int
	fail     bool
	tags     map[int]packet.Tag
}

func newFakeController() *fakeController {
	return &fakeController{tags: make(map[int]packet.Tag)}
}

func (f *fakeController) RequestPath(bs packet.BSID, clause int) (packet.Tag, error) {
	f.requests++
	if f.fail {
		return 0, errors.New("controller unavailable")
	}
	if t, ok := f.tags[clause]; ok {
		return t, nil
	}
	f.nextTag++
	f.tags[clause] = f.nextTag
	return f.nextTag, nil
}

var plan = packet.DefaultPlan

func testUE(t *testing.T, bs packet.BSID, id packet.UEID) core.UE {
	t.Helper()
	loc, err := plan.LocIP(bs, id)
	if err != nil {
		t.Fatal(err)
	}
	return core.UE{
		IMSI:   fmt.Sprintf("imsi-%d-%d", bs, id),
		PermIP: packet.AddrFrom4(100, 64, 0, byte(id)),
		BS:     bs, UEID: id, LocIP: loc,
	}
}

func newAgent(t *testing.T, ctrl ControllerClient) *Agent {
	t.Helper()
	sw := switchsim.NewSwitch("as-test")
	return New(1, sw, plan, ctrl)
}

func webClassifiers(tag packet.Tag) []core.Classifier {
	return []core.Classifier{
		{App: policy.AppWeb, Clause: 5, Tag: tag, Allow: true},
		{App: policy.AppSSH, Clause: 1, Allow: false},
	}
}

func upPkt(ue core.UE, sport uint16) *packet.Packet {
	return &packet.Packet{Src: ue.PermIP, Dst: packet.AddrFrom4(1, 1, 1, 1),
		SrcPort: sport, DstPort: 80, Proto: packet.ProtoTCP}
}

func TestPacketInInstallsMicroflows(t *testing.T) {
	ctrl := newFakeController()
	ag := newAgent(t, ctrl)
	ue := testUE(t, 1, 3)
	if err := ag.AdmitUE(ue, webClassifiers(7)); err != nil {
		t.Fatal(err)
	}
	p := upPkt(ue, 40000)
	allowed, err := ag.HandlePacketIn(p)
	if err != nil {
		t.Fatal(err)
	}
	if !allowed {
		t.Fatal("web flow should be allowed")
	}
	if ctrl.requests != 0 {
		t.Fatalf("cache hit should not contact the controller (%d requests)", ctrl.requests)
	}
	if ag.Access.NumMicroflows() != 2 {
		t.Fatalf("microflows = %d, want 2", ag.Access.NumMicroflows())
	}
	// Replay the packet through the switch: rewritten and resubmitted.
	q := upPkt(ue, 40000)
	v := ag.Access.Process(q, switchsim.PortUE)
	if q.Src != ue.LocIP {
		t.Fatalf("src = %s, want LocIP", q.Src)
	}
	tag, _ := plan.SplitPort(q.SrcPort)
	if tag != 7 {
		t.Fatalf("embedded tag = %d, want 7", tag)
	}
	_ = v
	st := ag.Stats()
	if st.PacketIns != 1 || st.CacheHits != 1 || st.Microflows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPacketInAsksControllerOnce(t *testing.T) {
	ctrl := newFakeController()
	ag := newAgent(t, ctrl)
	ue := testUE(t, 1, 3)
	_ = ag.AdmitUE(ue, webClassifiers(0)) // no tag: path missing
	if _, err := ag.HandlePacketIn(upPkt(ue, 40000)); err != nil {
		t.Fatal(err)
	}
	if ctrl.requests != 1 {
		t.Fatalf("requests = %d, want 1", ctrl.requests)
	}
	// Second flow of the same app: the agent cached the tag.
	if _, err := ag.HandlePacketIn(upPkt(ue, 40001)); err != nil {
		t.Fatal(err)
	}
	if ctrl.requests != 1 {
		t.Fatalf("requests = %d after second flow, want 1", ctrl.requests)
	}
	st := ag.Stats()
	if st.CacheMiss != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPacketInDenies(t *testing.T) {
	ctrl := newFakeController()
	ag := newAgent(t, ctrl)
	ue := testUE(t, 1, 3)
	_ = ag.AdmitUE(ue, webClassifiers(7))
	ssh := &packet.Packet{Src: ue.PermIP, Dst: packet.AddrFrom4(1, 1, 1, 1),
		SrcPort: 40000, DstPort: 22, Proto: packet.ProtoTCP}
	allowed, err := ag.HandlePacketIn(ssh)
	if err != nil {
		t.Fatal(err)
	}
	if allowed {
		t.Fatal("ssh should be denied")
	}
	// The drop is installed as a microflow so later packets never punt.
	v := ag.Access.Process(ssh, switchsim.PortUE)
	if !v.Drop {
		t.Fatal("drop microflow missing")
	}
	if ag.Stats().Denied != 1 {
		t.Fatal("denial not counted")
	}
}

func TestPacketInUnknownUE(t *testing.T) {
	ag := newAgent(t, newFakeController())
	p := &packet.Packet{Src: packet.AddrFrom4(9, 9, 9, 9), DstPort: 80, Proto: packet.ProtoTCP}
	if _, err := ag.HandlePacketIn(p); err == nil {
		t.Fatal("unknown UE should error")
	}
}

func TestControllerFailurePropagates(t *testing.T) {
	ctrl := newFakeController()
	ctrl.fail = true
	ag := newAgent(t, ctrl)
	ue := testUE(t, 1, 3)
	_ = ag.AdmitUE(ue, webClassifiers(0))
	if _, err := ag.HandlePacketIn(upPkt(ue, 40000)); err == nil {
		t.Fatal("controller failure should propagate")
	}
}

func TestAdmitWrongStation(t *testing.T) {
	ag := newAgent(t, newFakeController())
	ue := testUE(t, 2, 3) // attached to bs2, agent serves bs1
	if err := ag.AdmitUE(ue, nil); err == nil {
		t.Fatal("wrong station should be rejected")
	}
}

func TestUpdateClassifiers(t *testing.T) {
	ag := newAgent(t, newFakeController())
	ue := testUE(t, 1, 3)
	_ = ag.AdmitUE(ue, webClassifiers(0))
	if err := ag.UpdateClassifiers(ue.PermIP, webClassifiers(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := ag.HandlePacketIn(upPkt(ue, 40000)); err != nil {
		t.Fatal(err)
	}
	if ag.Stats().CacheMiss != 0 {
		t.Fatal("updated classifier should hit")
	}
	if err := ag.UpdateClassifiers(packet.AddrFrom4(9, 9, 9, 9), nil); err == nil {
		t.Fatal("unknown permanent IP should fail")
	}
}

func TestLocationReport(t *testing.T) {
	ag := newAgent(t, newFakeController())
	for i := packet.UEID(1); i <= 3; i++ {
		if err := ag.AdmitUE(testUE(t, 1, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	rep := ag.LocationReport()
	if rep.BS != 1 || len(rep.UEs) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if ag.NumUEs() != 3 {
		t.Fatalf("NumUEs = %d", ag.NumUEs())
	}
}

func TestRestartKeepsLKGAndCounters(t *testing.T) {
	ag := newAgent(t, newFakeController())
	ue := testUE(t, 1, 1)
	_ = ag.AdmitUE(ue, webClassifiers(7))
	if _, err := ag.HandlePacketIn(upPkt(ue, 40000)); err != nil {
		t.Fatal(err)
	}
	before := ag.Stats()
	ver := ag.Version()
	ag.Restart()
	// The validated, versioned LKG snapshot survives a process restart
	// (like persisted config would), so the agent keeps classifying and
	// keeps its version floor; the counters stay coherent with it.
	if ag.NumUEs() != 1 {
		t.Fatalf("NumUEs = %d after restart, want 1 (LKG snapshot survives)", ag.NumUEs())
	}
	if got := ag.Version(); got != ver {
		t.Fatalf("version = %d after restart, want %d", got, ver)
	}
	if got := ag.Stats(); got != before {
		t.Fatalf("stats changed across restart: %+v != %+v", got, before)
	}
	// The flow book is soft state and is dropped...
	if got := len(ag.ActiveFlows(ue.PermIP)); got != 0 {
		t.Fatalf("active flows = %d after restart, want 0", got)
	}
	// ...but microflows survive in the switch (it did not fail).
	if ag.Access.NumMicroflows() == 0 {
		t.Fatal("switch state should survive an agent restart")
	}
	// And the agent still classifies new flows purely from the snapshot.
	if allowed, err := ag.HandlePacketIn(upPkt(ue, 40001)); err != nil || !allowed {
		t.Fatalf("post-restart packet-in: allowed=%v err=%v", allowed, err)
	}
}

func TestActiveFlows(t *testing.T) {
	ag := newAgent(t, newFakeController())
	ue := testUE(t, 1, 1)
	_ = ag.AdmitUE(ue, webClassifiers(7))
	for i := uint16(0); i < 4; i++ {
		if _, err := ag.HandlePacketIn(upPkt(ue, 41000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ag.ActiveFlows(ue.PermIP)); got != 4 {
		t.Fatalf("active flows = %d", got)
	}
	if ag.ActiveFlows(packet.AddrFrom4(9, 9, 9, 9)) != nil {
		t.Fatal("unknown UE should report no flows")
	}
}

func TestEphemeralPortsDistinctPerFlow(t *testing.T) {
	ag := newAgent(t, newFakeController())
	ue := testUE(t, 1, 1)
	_ = ag.AdmitUE(ue, webClassifiers(7))
	seen := map[uint16]bool{}
	for i := uint16(0); i < 16; i++ {
		p := upPkt(ue, 42000+i)
		if _, err := ag.HandlePacketIn(p); err != nil {
			t.Fatal(err)
		}
		q := upPkt(ue, 42000+i)
		ag.Access.Process(q, switchsim.PortUE)
		_, eph := plan.SplitPort(q.SrcPort)
		if seen[eph] {
			t.Fatalf("ephemeral %d reused too early", eph)
		}
		seen[eph] = true
	}
}

func TestTagTooWideRejected(t *testing.T) {
	ag := newAgent(t, newFakeController())
	ue := testUE(t, 1, 1)
	_ = ag.AdmitUE(ue, []core.Classifier{{App: policy.AppWeb, Clause: 0,
		Tag: plan.MaxTag() + 1, Allow: true}})
	if _, err := ag.HandlePacketIn(upPkt(ue, 40000)); err == nil {
		t.Fatal("oversized tag should be rejected")
	}
}
