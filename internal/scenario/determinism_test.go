package scenario

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestRunDeterministic runs the same schedule twice on fresh networks and
// requires byte-identical event traces (and equal stats): the scenario must
// be a pure function of its seed, or the simulation figures would not be
// reproducible. Any map-iteration or wall-clock dependence sneaking into the
// control plane shows up here as a trace diff.
func TestRunDeterministic(t *testing.T) {
	run := func() (string, Stats) {
		var buf bytes.Buffer
		r, err := New(testNetwork(t, 4, 7), Params{
			Seed:     11,
			Duration: sim.Time(20 * time.Second),
			Trace:    &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), st
	}
	trace1, stats1 := run()
	trace2, stats2 := run()
	if trace1 == "" {
		t.Fatal("empty event trace: the schedule produced no events")
	}
	if stats1 != stats2 {
		t.Errorf("stats differ across same-seed runs:\n first=%+v\nsecond=%+v", stats1, stats2)
	}
	if trace1 != trace2 {
		l1, l2 := splitLines(trace1), splitLines(trace2)
		n := len(l1)
		if len(l2) < n {
			n = len(l2)
		}
		for i := 0; i < n; i++ {
			if l1[i] != l2[i] {
				t.Fatalf("traces diverge at line %d:\n first=%q\nsecond=%q", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(l1), len(l2))
	}
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
