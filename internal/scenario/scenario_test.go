package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/mbox"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topo"
)

func testNetwork(t *testing.T, k int, seed int64) *dataplane.Network {
	t.Helper()
	g, err := topo.Generate(topo.GenParams{K: k, ClusterSize: 10, MBTypes: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(g.Topology, core.ControllerConfig{
		Gateway: g.GatewayID,
		Policy:  policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := mbox.NewRegistry(ctrl.Plan(), packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24))
	net, err := dataplane.New(ctrl, dataplane.Config{
		Registry: reg,
		MBFuncs:  map[topo.MBType]string{0: "firewall", 1: "transcoder", 2: "echo-cancel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestScenarioDayInTheLife(t *testing.T) {
	net := testNetwork(t, 2, 3)
	r, err := New(net, Params{Seed: 11, Duration: sim.Time(90 * time.Second), UEs: 24})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attaches == 0 || stats.FlowsOpen == 0 || stats.Handoffs == 0 || stats.Probes == 0 {
		t.Fatalf("schedule too quiet: %+v", stats)
	}
	// The headline §5.1 property: an arbitrary churn schedule produces
	// zero policy-consistency violations.
	if stats.Violations != 0 {
		t.Fatalf("policy-consistency violations: %d (stats %+v)", stats.Violations, stats)
	}
	// The hierarchy works: far fewer controller path installs than asks.
	if stats.ControllerMisses > stats.ControllerPathAsks {
		t.Fatalf("misses %d > asks %d", stats.ControllerMisses, stats.ControllerPathAsks)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	a, err := New(testNetwork(t, 2, 3), Params{Seed: 5, Duration: sim.Time(30 * time.Second), UEs: 12})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testNetwork(t, 2, 3), Params{Seed: 5, Duration: sim.Time(30 * time.Second), UEs: 12})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same seed diverged:\n%+v\n%+v", sa, sb)
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	a, _ := New(testNetwork(t, 2, 3), Params{Seed: 1, Duration: sim.Time(30 * time.Second), UEs: 12})
	sa, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(testNetwork(t, 2, 3), Params{Seed: 2, Duration: sim.Time(30 * time.Second), UEs: 12})
	sb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sa == sb {
		t.Fatal("different seeds should produce different schedules")
	}
}

func TestScenarioEmptyNetwork(t *testing.T) {
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	ctrl, err := core.NewController(tp, core.ControllerConfig{
		Gateway: gw, Policy: policy.ExampleCarrierPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := mbox.NewRegistry(ctrl.Plan(), packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24))
	net, err := dataplane.New(ctrl, dataplane.Config{Registry: reg, MBFuncs: map[topo.MBType]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, Params{}); err == nil {
		t.Fatal("network without stations should be rejected")
	}
}
