// Package scenario drives a full SoftCell deployment through a randomised
// control-plane schedule on the deterministic simulation kernel: UEs attach
// with Poisson arrivals, open flows (verified end to end through the real
// switch tables and middleboxes), hand off between stations, and detach.
// It is the integration harness that ties the workload model (§6.1) to the
// data plane: after any schedule, every active flow must still deliver in
// both directions and no middlebox may report a policy-consistency
// violation (§5.1).
package scenario

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/dataplane"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Params shape the schedule.
type Params struct {
	Seed     int64
	Duration sim.Time // simulated time to run (default 60s)

	UEs               int      // subscriber population (default 40)
	AttachRatePerSec  float64  // Poisson rate of attach events (default 2)
	FlowRatePerSec    float64  // new-flow rate per attached UE (default 0.5)
	HandoffRatePerSec float64  // handoff rate per attached UE (default 0.1)
	DetachRatePerSec  float64  // detach rate per attached UE (default 0.02)
	ProbeEvery        sim.Time // re-exercise a random existing flow (default 500ms)

	// Trace, when set, receives one line per simulated event (attach, flow,
	// handoff, detach, probe) stamped with its virtual time. The schedule is
	// a pure function of Seed and the other parameters, so two runs with
	// equal Params produce byte-identical traces; the determinism regression
	// test asserts exactly that.
	Trace io.Writer
}

func (p Params) withDefaults() Params {
	if p.Duration == 0 {
		p.Duration = sim.Time(60 * time.Second)
	}
	if p.UEs == 0 {
		p.UEs = 40
	}
	if p.AttachRatePerSec == 0 {
		p.AttachRatePerSec = 2
	}
	if p.FlowRatePerSec == 0 {
		p.FlowRatePerSec = 0.5
	}
	if p.HandoffRatePerSec == 0 {
		p.HandoffRatePerSec = 0.1
	}
	if p.DetachRatePerSec == 0 {
		p.DetachRatePerSec = 0.02
	}
	if p.ProbeEvery == 0 {
		p.ProbeEvery = sim.Time(500 * time.Millisecond)
	}
	return p
}

// Stats summarise a run.
type Stats struct {
	Attaches  int
	Detaches  int
	Handoffs  int
	FlowsOpen int
	Probes    int
	Denied    int

	Violations  uint64
	Connections uint64

	ControllerPathAsks uint64
	ControllerMisses   uint64
}

// conn tracks one live connection for probing.
type conn struct {
	imsi string
	up   packet.Packet // upstream template (pre-rewrite form)
	wire packet.Packet // post-rewrite header as the Internet saw it
}

// Runner executes a schedule over a network.
type Runner struct {
	Net    *dataplane.Network
	Params Params

	kernel   *sim.Kernel
	rng      *rand.Rand
	stations []packet.BSID
	attached map[string]packet.BSID
	order    []string // attached imsis in attach order (determinism)
	conns    []conn
	nextPort uint16
	stats    Stats
	failed   error
}

// New prepares a runner. The network's subscribers are registered here:
// ueN with provider A (every fourth a silver plan, every eighth an M2M
// fleet device).
func New(net *dataplane.Network, p Params) (*Runner, error) {
	p = p.withDefaults()
	r := &Runner{
		Net:      net,
		Params:   p,
		kernel:   sim.NewKernel(p.Seed),
		attached: make(map[string]packet.BSID),
		nextPort: 20000,
	}
	// Derive the schedule RNG from the kernel, like every other seeded
	// component, so the stream is a pure function of (Seed, name) and stays
	// independent of whatever else draws from the kernel's root.
	r.rng = r.kernel.Fork("scenario-schedule")
	for _, st := range net.T.Stations {
		r.stations = append(r.stations, st.ID)
	}
	if len(r.stations) == 0 {
		return nil, fmt.Errorf("scenario: network has no base stations")
	}
	for i := 0; i < p.UEs; i++ {
		attr := policy.Attributes{Provider: "A"}
		if i%4 == 1 {
			attr.Plan = "silver"
		}
		if i%8 == 2 {
			attr.DeviceType = "m2m-fleet"
		}
		if err := net.Ctrl.RegisterSubscriber(r.imsi(i), attr); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (r *Runner) imsi(i int) string { return fmt.Sprintf("ue%03d", i) }

// expo draws an exponential inter-arrival for a rate per second.
func (r *Runner) expo(ratePerSec float64) sim.Time {
	if ratePerSec <= 0 {
		return sim.Time(time.Hour)
	}
	return sim.Time(float64(time.Second) * r.rng.ExpFloat64() / ratePerSec)
}

// trace appends one event line to Params.Trace (nil = tracing off).
func (r *Runner) trace(format string, args ...any) {
	if r.Params.Trace == nil {
		return
	}
	fmt.Fprintf(r.Params.Trace, "t=%d "+format+"\n", append([]any{int64(r.kernel.Now())}, args...)...)
}

func (r *Runner) fail(err error) {
	if r.failed == nil && err != nil {
		r.failed = fmt.Errorf("scenario at %v: %w", r.kernel.Now(), err)
	}
}

// Run executes the schedule and returns the stats.
func (r *Runner) Run() (Stats, error) {
	r.kernel.After(0, r.attachTick)
	r.kernel.After(r.expo(r.Params.FlowRatePerSec), r.flowTick)
	r.kernel.After(r.expo(r.Params.HandoffRatePerSec), r.handoffTick)
	r.kernel.After(r.expo(r.Params.DetachRatePerSec), r.detachTick)
	r.kernel.After(r.Params.ProbeEvery, r.probeTick)
	r.kernel.RunUntil(r.Params.Duration)
	if r.failed != nil {
		return r.stats, r.failed
	}
	r.stats.Violations, r.stats.Connections = r.Net.MiddleboxStats()
	cs := r.Net.Ctrl.Stats()
	r.stats.ControllerPathAsks = cs.PathAsks
	r.stats.ControllerMisses = cs.PathMiss
	return r.stats, nil
}

func (r *Runner) reschedule(rate float64, fn func()) {
	if r.failed != nil {
		return
	}
	r.kernel.After(r.expo(rate), fn)
}

func (r *Runner) attachTick() {
	defer r.reschedule(r.Params.AttachRatePerSec, r.attachTick)
	// Pick a detached subscriber.
	for try := 0; try < 8; try++ {
		imsi := r.imsi(r.rng.Intn(r.Params.UEs))
		if _, ok := r.attached[imsi]; ok {
			continue
		}
		bs := r.stations[r.rng.Intn(len(r.stations))]
		if _, err := r.Net.Attach(imsi, bs); err != nil {
			r.fail(err)
			return
		}
		r.attached[imsi] = bs
		r.order = append(r.order, imsi)
		r.stats.Attaches++
		r.trace("attach %s bs=%d", imsi, bs)
		return
	}
}

func (r *Runner) randomAttached() (string, packet.BSID, bool) {
	if len(r.order) == 0 {
		return "", 0, false
	}
	imsi := r.order[r.rng.Intn(len(r.order))]
	return imsi, r.attached[imsi], true
}

func (r *Runner) flowTick() {
	defer r.reschedule(r.Params.FlowRatePerSec*float64(len(r.attached)+1), r.flowTick)
	imsi, bs, ok := r.randomAttached()
	if !ok {
		return
	}
	ue, _ := r.Net.Ctrl.LookupUE(imsi)
	r.nextPort++
	dports := []uint16{80, 443, 554, 5060, 5684}
	p := packet.Packet{
		Src: ue.PermIP, Dst: packet.AddrFrom4(203, 0, 113, byte(r.rng.Intn(250))),
		SrcPort: r.nextPort, DstPort: dports[r.rng.Intn(len(dports))],
		Proto: packet.ProtoTCP, TTL: 64,
	}
	sent := p
	res, err := r.Net.SendUpstream(bs, &sent)
	if err != nil {
		r.fail(err)
		return
	}
	switch res.Disposition {
	case dataplane.ExitedNet:
		r.stats.FlowsOpen++
		r.conns = append(r.conns, conn{imsi: imsi, up: p, wire: sent})
		r.trace("flow %s %s wire=%s", imsi, p.Flow(), sent.Flow())
	case dataplane.DroppedAt:
		r.stats.Denied++
		r.trace("deny %s %s at=%d", imsi, p.Flow(), res.Last)
	default:
		r.fail(fmt.Errorf("flow open ended %s at node %d", res.Disposition, res.Last))
	}
}

func (r *Runner) handoffTick() {
	defer r.reschedule(r.Params.HandoffRatePerSec*float64(len(r.attached)+1), r.handoffTick)
	imsi, bs, ok := r.randomAttached()
	if !ok || len(r.stations) < 2 {
		return
	}
	nb := r.stations[r.rng.Intn(len(r.stations))]
	if nb == bs {
		return
	}
	if _, err := r.Net.Handoff(imsi, nb); err != nil {
		r.fail(err)
		return
	}
	r.attached[imsi] = nb
	r.stats.Handoffs++
	r.trace("handoff %s bs=%d->%d", imsi, bs, nb)
}

func (r *Runner) detachTick() {
	defer r.reschedule(r.Params.DetachRatePerSec*float64(len(r.attached)+1), r.detachTick)
	imsi, _, ok := r.randomAttached()
	if !ok {
		return
	}
	// Drop its connections from the probe pool first.
	kept := r.conns[:0]
	for _, c := range r.conns {
		if c.imsi != imsi {
			kept = append(kept, c)
		}
	}
	r.conns = kept
	if err := r.Net.Ctrl.Detach(imsi); err != nil {
		r.fail(err)
		return
	}
	delete(r.attached, imsi)
	for i, v := range r.order {
		if v == imsi {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.stats.Detaches++
	r.trace("detach %s", imsi)
}

// trimHops keeps failure messages readable.
func trimHops(h []dataplane.Hop) []dataplane.Hop {
	if len(h) > 24 {
		return h[:24]
	}
	return h
}

// probeTick exercises a random live connection in both directions; any
// break is a hard failure (the §5.1 property under churn).
func (r *Runner) probeTick() {
	defer func() {
		if r.failed == nil {
			r.kernel.After(r.Params.ProbeEvery, r.probeTick)
		}
	}()
	if len(r.conns) == 0 {
		return
	}
	c := r.conns[r.rng.Intn(len(r.conns))]
	bs, stillAttached := r.attached[c.imsi]
	if !stillAttached {
		return
	}
	r.stats.Probes++

	// Downstream: the Internet peer replies to what it saw on the wire.
	down := packet.Packet{
		Src: c.wire.Dst, Dst: c.wire.Src, SrcPort: c.wire.DstPort,
		DstPort: c.wire.SrcPort, Proto: c.wire.Proto, TTL: 64, Payload: make([]byte, 64),
	}
	dres, err := r.Net.SendDownstream(&down)
	if err != nil {
		r.fail(fmt.Errorf("probe DOWN %s wire=%s: %w (hops %v...)", c.imsi, c.wire.Flow(), err, trimHops(dres.Hops)))
		return
	}
	if dres.Disposition != dataplane.Delivered {
		r.fail(fmt.Errorf("probe downstream for %s: %s at node %d", c.imsi, dres.Disposition, dres.Last))
		return
	}

	// Upstream from wherever the UE is now.
	up := c.up
	ures, err := r.Net.SendUpstream(bs, &up)
	if err != nil {
		r.fail(fmt.Errorf("probe UP %s from bs%d orig=%s: %w (hops %v...)", c.imsi, bs, c.up.Flow(), err, trimHops(ures.Hops)))
		return
	}
	if ures.Disposition != dataplane.ExitedNet {
		r.fail(fmt.Errorf("probe upstream for %s: %s at node %d", c.imsi, ures.Disposition, ures.Last))
		return
	}
	r.trace("probe %s wire=%s bs=%d", c.imsi, c.wire.Flow(), bs)
}
