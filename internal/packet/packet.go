// Package packet models the data plane's unit of work: IPv4-style packets
// with TCP/UDP port numbers, five-tuple flow keys, CIDR prefixes, and the
// SoftCell state-embedding codec that piggybacks the policy tag, base-station
// ID and UE ID in the source address and port (paper §4.1, Fig. 4).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Proto identifies the transport protocol of a packet.
type Proto uint8

// Transport protocols understood by the simulator.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an address from dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is a CIDR block: the top Len bits of Addr, with the remaining bits
// zero. The zero value is 0.0.0.0/0, which matches everything.
type Prefix struct {
	Addr Addr
	Len  int
}

// NewPrefix masks addr down to its top length bits.
func NewPrefix(addr Addr, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & lenMask(length), Len: length}
}

func lenMask(length int) Addr {
	if length <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - length))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip Addr) bool {
	return ip&lenMask(p.Len) == p.Addr
}

// ContainsPrefix reports whether q is a (non-strict) subnet of p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// Sibling returns the prefix that differs from p only in its lowest
// significant bit — the buddy block p can merge with. A /0 has no sibling.
func (p Prefix) Sibling() (Prefix, bool) {
	if p.Len == 0 {
		return Prefix{}, false
	}
	bit := Addr(1) << (32 - p.Len)
	return Prefix{Addr: p.Addr ^ bit, Len: p.Len}, true
}

// Parent returns the prefix one bit shorter that covers p.
func (p Prefix) Parent() (Prefix, bool) {
	if p.Len == 0 {
		return Prefix{}, false
	}
	return NewPrefix(p.Addr, p.Len-1), true
}

// Overlaps reports whether the two blocks share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// Tag is a SoftCell policy tag. Tag 0 is reserved to mean "no tag".
// Tags carried in packet headers must additionally fit the Plan's TagBits;
// the wider type lets the rule-minimisation simulations exercise networks
// with many more tags than one UE's port space can hold at once.
type Tag uint32

// NoTag is the absent-tag sentinel.
const NoTag Tag = 0

// Packet is a simulated data-plane packet. Header fields mirror an
// IPv4+TCP/UDP header; App labels the application type for policy matching
// (in a real deployment this comes from DPI at the access edge).
type Packet struct {
	Src     Addr
	Dst     Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
	TTL     uint8
	App     uint8 // application class (policy.AppType); carried for the simulator
	DSCP    uint8 // differentiated-services class, set by the access edge QoS marking
	Seq     uint32
	Payload []byte
}

// Flow returns the packet's five-tuple key.
func (p *Packet) Flow() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// FlowKey is a hashable five-tuple identifying one direction of a connection.
type FlowKey struct {
	Src     Addr
	Dst     Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Canonical returns a direction-independent key: the lexicographically
// smaller of k and k.Reverse(). Both directions of a connection map to the
// same canonical key, which stateful middleboxes use for connection state.
func (k FlowKey) Canonical() FlowKey {
	r := k.Reverse()
	if k.less(r) {
		return k
	}
	return r
}

func (k FlowKey) less(o FlowKey) bool {
	if k.Src != o.Src {
		return k.Src < o.Src
	}
	if k.Dst != o.Dst {
		return k.Dst < o.Dst
	}
	if k.SrcPort != o.SrcPort {
		return k.SrcPort < o.SrcPort
	}
	return k.DstPort < o.DstPort
}

// FastHash is a cheap, well-mixed hash of the flow key, symmetric across
// directions so both halves of a connection land in the same bucket.
func (k FlowKey) FastHash() uint64 {
	c := k.Canonical()
	h := uint64(c.Src)<<32 | uint64(c.Dst)
	h ^= uint64(c.SrcPort)<<16 | uint64(c.DstPort) | uint64(c.Proto)<<40
	// fmix64 from MurmurHash3.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// wire format: 2-byte magic, 1 version, 1 proto, 4 src, 4 dst, 2 sport,
// 2 dport, 1 ttl, 1 app, 1 dscp, 4 seq, 2 payload length, payload.
const (
	wireMagic   = 0x5C17 // "SoftCell"
	headerBytes = 25
)

// MarshalBinary serialises the packet to its wire format.
func (p *Packet) MarshalBinary() ([]byte, error) {
	if len(p.Payload) > 0xFFFF {
		return nil, fmt.Errorf("packet: payload %d bytes exceeds 64KiB", len(p.Payload))
	}
	buf := make([]byte, headerBytes+len(p.Payload))
	binary.BigEndian.PutUint16(buf[0:2], wireMagic)
	buf[2] = 1
	buf[3] = uint8(p.Proto)
	binary.BigEndian.PutUint32(buf[4:8], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[8:12], uint32(p.Dst))
	binary.BigEndian.PutUint16(buf[12:14], p.SrcPort)
	binary.BigEndian.PutUint16(buf[14:16], p.DstPort)
	buf[16] = p.TTL
	buf[17] = p.App
	buf[18] = p.DSCP
	binary.BigEndian.PutUint32(buf[19:23], p.Seq)
	binary.BigEndian.PutUint16(buf[23:25], uint16(len(p.Payload)))
	copy(buf[headerBytes:], p.Payload)
	return buf, nil
}

// Errors returned by UnmarshalBinary.
var (
	ErrShortPacket = errors.New("packet: truncated")
	ErrBadMagic    = errors.New("packet: bad magic")
	ErrBadVersion  = errors.New("packet: unsupported version")
)

// UnmarshalBinary parses the wire format produced by MarshalBinary.
func (p *Packet) UnmarshalBinary(buf []byte) error {
	if len(buf) < headerBytes {
		return ErrShortPacket
	}
	if binary.BigEndian.Uint16(buf[0:2]) != wireMagic {
		return ErrBadMagic
	}
	if buf[2] != 1 {
		return ErrBadVersion
	}
	p.Proto = Proto(buf[3])
	p.Src = Addr(binary.BigEndian.Uint32(buf[4:8]))
	p.Dst = Addr(binary.BigEndian.Uint32(buf[8:12]))
	p.SrcPort = binary.BigEndian.Uint16(buf[12:14])
	p.DstPort = binary.BigEndian.Uint16(buf[14:16])
	p.TTL = buf[16]
	p.App = buf[17]
	p.DSCP = buf[18]
	p.Seq = binary.BigEndian.Uint32(buf[19:23])
	n := int(binary.BigEndian.Uint16(buf[23:25]))
	if len(buf) < headerBytes+n {
		return ErrShortPacket
	}
	p.Payload = append(p.Payload[:0], buf[headerBytes:headerBytes+n]...)
	return nil
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s seq=%d ttl=%d", p.Flow(), p.Seq, p.TTL)
}
