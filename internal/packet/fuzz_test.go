package packet

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzEncodeDecode round-trips arbitrary header fields and payloads through
// MarshalBinary/UnmarshalBinary: every packet the marshaller accepts must
// decode back to the same packet, and re-encoding the decoded packet must
// reproduce the wire bytes exactly.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint32(0x0A000001), uint32(0x01010101), uint16(40000), uint16(80),
		byte(ProtoTCP), byte(64), byte(1), byte(0), uint32(7), []byte("hello"))
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0),
		byte(ProtoUDP), byte(0), byte(0), byte(0), uint32(0), []byte{})
	f.Add(uint32(0xFFFFFFFF), uint32(0xFFFFFFFF), uint16(0xFFFF), uint16(0xFFFF),
		byte(255), byte(255), byte(255), byte(255), uint32(0xFFFFFFFF), bytes.Repeat([]byte{0xAA}, 64))
	f.Fuzz(func(t *testing.T, src, dst uint32, sport, dport uint16, proto, ttl, app, dscp byte, seq uint32, payload []byte) {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		in := Packet{
			Src: Addr(src), Dst: Addr(dst), SrcPort: sport, DstPort: dport,
			Proto: Proto(proto), TTL: ttl, App: app, DSCP: dscp, Seq: seq,
			Payload: payload,
		}
		wire, err := in.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal rejected an in-range packet: %v", err)
		}
		var out Packet
		if err := out.UnmarshalBinary(wire); err != nil {
			t.Fatalf("unmarshal of marshalled bytes: %v", err)
		}
		if out.Src != in.Src || out.Dst != in.Dst || out.SrcPort != in.SrcPort ||
			out.DstPort != in.DstPort || out.Proto != in.Proto || out.TTL != in.TTL ||
			out.App != in.App || out.DSCP != in.DSCP || out.Seq != in.Seq {
			t.Fatalf("header round-trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
		if !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("payload round-trip mismatch: in=%x out=%x", in.Payload, out.Payload)
		}
		wire2, err := out.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("re-encoded bytes differ:\n first=%x\nsecond=%x", wire, wire2)
		}
	})
}

// FuzzUnmarshal feeds arbitrary bytes to the decoder: it must either reject
// them with one of the documented errors or produce a packet whose
// re-encoding decodes back to the same packet (trailing garbage beyond the
// declared payload length is deliberately ignored, so the raw input is not
// compared byte-for-byte).
func FuzzUnmarshal(f *testing.F) {
	valid, _ := (&Packet{
		Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(1, 1, 1, 1),
		SrcPort: 40000, DstPort: 80, Proto: ProtoTCP, TTL: 64, Seq: 7,
		Payload: []byte("abc"),
	}).MarshalBinary()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x5C, 0x17, 0x01})
	f.Add(append(append([]byte{}, valid...), 0xDE, 0xAD))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		err := p.UnmarshalBinary(data)
		if err != nil {
			if !errors.Is(err, ErrShortPacket) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) {
				t.Fatalf("undocumented decode error: %v", err)
			}
			return
		}
		wire, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of a decoded packet: %v", err)
		}
		var q Packet
		if err := q.UnmarshalBinary(wire); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if p.Flow() != q.Flow() || p.Seq != q.Seq || p.TTL != q.TTL || !bytes.Equal(p.Payload, q.Payload) {
			t.Fatalf("decode/encode/decode mismatch:\n p=%+v\n q=%+v", p, q)
		}
	})
}
