package packet

import "fmt"

// BSID numbers a base station within the carrier's address plan.
type BSID uint32

// UEID numbers a UE locally within one base station (paper: "local UE
// identifier"; it has meaning only together with the base-station prefix).
type UEID uint32

// Plan is the carrier's address and port layout for SoftCell's
// state-embedding (§4.1, Fig. 4). A location-dependent IP address (LocIP) is
//
//	[ carrier prefix | base-station ID | UE ID ]
//
// and an upstream packet's source port is
//
//	[ policy tag | ephemeral bits ]
//
// so the classification outcome rides along in the header and return traffic
// from the Internet is implicitly pre-classified.
type Plan struct {
	Carrier Prefix // the carrier's public block, e.g. 10.0.0.0/8
	BSBits  int    // width of the base-station ID field
	UEBits  int    // width of the local UE ID field
	TagBits int    // high bits of the port carrying the policy tag
}

// DefaultPlan is a comfortable layout: a /8 carrier block, 12 bits of base
// station (4096 stations), 12 bits of UE (4096 per station), and 6 bits of
// policy tag (63 usable tags in flight per UE port-space; the paper's core
// needs far fewer distinct tags than that per UE).
var DefaultPlan = Plan{
	Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: 8},
	BSBits:  12,
	UEBits:  12,
	TagBits: 6,
}

// Validate checks the plan's field widths are coherent.
func (pl Plan) Validate() error {
	if pl.Carrier.Len < 0 || pl.Carrier.Len > 30 {
		return fmt.Errorf("packet: carrier prefix length %d out of range", pl.Carrier.Len)
	}
	if pl.BSBits < 1 || pl.UEBits < 1 {
		return fmt.Errorf("packet: BSBits=%d UEBits=%d must be positive", pl.BSBits, pl.UEBits)
	}
	if pl.Carrier.Len+pl.BSBits+pl.UEBits != 32 {
		return fmt.Errorf("packet: carrier(%d)+BS(%d)+UE(%d) bits != 32",
			pl.Carrier.Len, pl.BSBits, pl.UEBits)
	}
	if pl.TagBits < 1 || pl.TagBits > 12 {
		return fmt.Errorf("packet: TagBits=%d out of range [1,12]", pl.TagBits)
	}
	if pl.Carrier.Addr != pl.Carrier.Addr&lenMask(pl.Carrier.Len) {
		return fmt.Errorf("packet: carrier prefix %s has host bits set", pl.Carrier)
	}
	return nil
}

// MaxBS is the largest encodable base-station ID.
func (pl Plan) MaxBS() BSID { return BSID(1)<<pl.BSBits - 1 }

// MaxUE is the largest encodable local UE ID. UE ID 0 is reserved so a
// base-station prefix is never also a LocIP.
func (pl Plan) MaxUE() UEID { return UEID(1)<<pl.UEBits - 1 }

// MaxTag is the largest encodable policy tag.
func (pl Plan) MaxTag() Tag { return Tag(1)<<pl.TagBits - 1 }

// EphemeralBits is the width of the port's local-ephemeral field.
func (pl Plan) EphemeralBits() int { return 16 - pl.TagBits }

// BSPrefix returns the base station's CIDR block inside the carrier space.
func (pl Plan) BSPrefix(bs BSID) (Prefix, error) {
	if bs > pl.MaxBS() {
		return Prefix{}, fmt.Errorf("packet: base station id %d exceeds plan max %d", bs, pl.MaxBS())
	}
	addr := pl.Carrier.Addr | Addr(uint32(bs)<<pl.UEBits)
	return Prefix{Addr: addr, Len: pl.Carrier.Len + pl.BSBits}, nil
}

// LocIP encodes the location-dependent address of UE ue at base station bs.
func (pl Plan) LocIP(bs BSID, ue UEID) (Addr, error) {
	p, err := pl.BSPrefix(bs)
	if err != nil {
		return 0, err
	}
	if ue == 0 || ue > pl.MaxUE() {
		return 0, fmt.Errorf("packet: UE id %d out of range [1,%d]", ue, pl.MaxUE())
	}
	return p.Addr | Addr(ue), nil
}

// Split decomposes a LocIP back into its base-station and UE fields.
// ok is false when the address is outside the carrier block.
func (pl Plan) Split(a Addr) (bs BSID, ue UEID, ok bool) {
	if !pl.Carrier.Contains(a) {
		return 0, 0, false
	}
	rest := uint32(a) &^ uint32(lenMask(pl.Carrier.Len))
	ue = UEID(rest & (1<<pl.UEBits - 1))
	bs = BSID(rest >> pl.UEBits)
	return bs, ue, true
}

// EmbedPort packs a policy tag and an ephemeral port index into one port
// number. The ephemeral index must fit in the plan's low bits.
func (pl Plan) EmbedPort(tag Tag, eph uint16) (uint16, error) {
	if tag > pl.MaxTag() {
		return 0, fmt.Errorf("packet: tag %d exceeds plan max %d", tag, pl.MaxTag())
	}
	if int(eph) >= 1<<pl.EphemeralBits() {
		return 0, fmt.Errorf("packet: ephemeral index %d exceeds %d bits", eph, pl.EphemeralBits())
	}
	return uint16(tag)<<pl.EphemeralBits() | eph, nil
}

// SplitPort unpacks a port produced by EmbedPort.
func (pl Plan) SplitPort(port uint16) (Tag, uint16) {
	eb := pl.EphemeralBits()
	return Tag(port >> eb), port & (1<<eb - 1)
}

// TagPortRange returns the contiguous port range [lo, hi] whose high bits
// equal tag. Gateway and core switches match return traffic with a single
// range (or masked) rule over this span rather than one rule per port.
func (pl Plan) TagPortRange(tag Tag) (lo, hi uint16, err error) {
	if tag > pl.MaxTag() {
		return 0, 0, fmt.Errorf("packet: tag %d exceeds plan max %d", tag, pl.MaxTag())
	}
	eb := pl.EphemeralBits()
	lo = uint16(tag) << eb
	hi = lo | (1<<eb - 1)
	return lo, hi, nil
}
