package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom4(10, 1, 2, 3)
	if a.String() != "10.1.2.3" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestPrefixContains(t *testing.T) {
	p := NewPrefix(AddrFrom4(10, 1, 0, 0), 16)
	if !p.Contains(AddrFrom4(10, 1, 200, 3)) {
		t.Error("should contain 10.1.200.3")
	}
	if p.Contains(AddrFrom4(10, 2, 0, 0)) {
		t.Error("should not contain 10.2.0.0")
	}
	all := NewPrefix(0, 0)
	if !all.Contains(AddrFrom4(255, 255, 255, 255)) {
		t.Error("/0 should contain everything")
	}
}

func TestNewPrefixMasksHostBits(t *testing.T) {
	p := NewPrefix(AddrFrom4(10, 1, 2, 3), 16)
	if p.Addr != AddrFrom4(10, 1, 0, 0) {
		t.Fatalf("host bits not masked: %s", p)
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestNewPrefixClampsLength(t *testing.T) {
	if p := NewPrefix(1, 40); p.Len != 32 {
		t.Errorf("len clamp high: %d", p.Len)
	}
	if p := NewPrefix(1, -2); p.Len != 0 {
		t.Errorf("len clamp low: %d", p.Len)
	}
}

func TestPrefixSiblingParent(t *testing.T) {
	p := NewPrefix(AddrFrom4(10, 0, 0, 0), 9) // 10.0.0.0/9
	sib, ok := p.Sibling()
	if !ok || sib.Addr != AddrFrom4(10, 128, 0, 0) || sib.Len != 9 {
		t.Fatalf("sibling = %v %v", sib, ok)
	}
	par, ok := p.Parent()
	if !ok || par.String() != "10.0.0.0/8" {
		t.Fatalf("parent = %v %v", par, ok)
	}
	if _, ok := (Prefix{}).Sibling(); ok {
		t.Error("/0 has no sibling")
	}
	if _, ok := (Prefix{}).Parent(); ok {
		t.Error("/0 has no parent")
	}
}

// Property: a prefix and its sibling are disjoint and their parent covers both.
func TestSiblingDisjointParentCovers(t *testing.T) {
	f := func(raw uint32, lraw uint8) bool {
		l := int(lraw%32) + 1
		p := NewPrefix(Addr(raw), l)
		sib, ok := p.Sibling()
		if !ok {
			return false
		}
		if p.Overlaps(sib) {
			return false
		}
		par, _ := p.Parent()
		return par.ContainsPrefix(p) && par.ContainsPrefix(sib)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsPrefix(t *testing.T) {
	a := NewPrefix(AddrFrom4(10, 0, 0, 0), 8)
	b := NewPrefix(AddrFrom4(10, 5, 0, 0), 16)
	if !a.ContainsPrefix(b) {
		t.Error("a should contain b")
	}
	if b.ContainsPrefix(a) {
		t.Error("b should not contain a")
	}
	if !a.ContainsPrefix(a) {
		t.Error("containment is reflexive")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlap should be symmetric")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 20 || r.DstPort != 10 {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse should be identity")
	}
}

func TestCanonicalSymmetric(t *testing.T) {
	f := func(s, d uint32, sp, dp uint16) bool {
		k := FlowKey{Src: Addr(s), Dst: Addr(d), SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		return k.Canonical() == k.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastHashSymmetric(t *testing.T) {
	f := func(s, d uint32, sp, dp uint16) bool {
		k := FlowKey{Src: Addr(s), Dst: Addr(d), SrcPort: sp, DstPort: dp, Proto: ProtoUDP}
		return k.FastHash() == k.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastHashSpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint32(0); i < 1000; i++ {
		k := FlowKey{Src: Addr(i), Dst: Addr(i + 1), SrcPort: uint16(i), DstPort: 80, Proto: ProtoTCP}
		seen[k.FastHash()] = true
	}
	if len(seen) < 990 {
		t.Fatalf("too many hash collisions: %d distinct out of 1000", len(seen))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := &Packet{
		Src: AddrFrom4(10, 1, 2, 3), Dst: AddrFrom4(8, 8, 8, 8),
		SrcPort: 31337, DstPort: 443, Proto: ProtoTCP, TTL: 64,
		App: 3, Seq: 12345, Payload: []byte("hello softcell"),
	}
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if q.Flow() != p.Flow() || q.TTL != p.TTL || q.App != p.App || q.Seq != p.Seq {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, *p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, ttl, app uint8, seq uint32, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		p := &Packet{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp,
			Proto: ProtoUDP, TTL: ttl, App: app, Seq: seq, Payload: payload}
		buf, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var q Packet
		if err := q.UnmarshalBinary(buf); err != nil {
			return false
		}
		return q.Flow() == p.Flow() && q.TTL == ttl && q.App == app &&
			q.Seq == seq && bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var p Packet
	if err := p.UnmarshalBinary(nil); err != ErrShortPacket {
		t.Errorf("nil: %v", err)
	}
	if err := p.UnmarshalBinary(make([]byte, 10)); err != ErrShortPacket {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, headerBytes)
	if err := p.UnmarshalBinary(bad); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	good, _ := (&Packet{Proto: ProtoTCP}).MarshalBinary()
	good[2] = 99
	if err := p.UnmarshalBinary(good); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	// Truncated payload.
	withPayload, _ := (&Packet{Proto: ProtoTCP, Payload: []byte("abcdef")}).MarshalBinary()
	if err := p.UnmarshalBinary(withPayload[:len(withPayload)-2]); err != ErrShortPacket {
		t.Errorf("truncated payload: %v", err)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("proto names")
	}
	if Proto(9).String() != "proto(9)" {
		t.Fatalf("unknown proto: %s", Proto(9))
	}
}
