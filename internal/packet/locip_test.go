package packet

import (
	"testing"
	"testing/quick"
)

func TestDefaultPlanValid(t *testing.T) {
	if err := DefaultPlan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidateRejects(t *testing.T) {
	cases := []Plan{
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: 8}, BSBits: 10, UEBits: 10, TagBits: 6},  // != 32
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: 8}, BSBits: 0, UEBits: 24, TagBits: 6},   // zero BS
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: 8}, BSBits: 12, UEBits: 12, TagBits: 0},  // zero tag
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: 8}, BSBits: 12, UEBits: 12, TagBits: 13}, // tag too wide
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 1), Len: 8}, BSBits: 12, UEBits: 12, TagBits: 6},  // host bits
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: 31}, BSBits: 12, UEBits: 12, TagBits: 6}, // carrier too long
		{Carrier: Prefix{Addr: AddrFrom4(10, 0, 0, 0), Len: -1}, BSBits: 21, UEBits: 12, TagBits: 6}, // negative
	}
	for i, pl := range cases {
		if err := pl.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, pl)
		}
	}
}

func TestLocIPRoundTrip(t *testing.T) {
	pl := DefaultPlan
	a, err := pl.LocIP(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	bs, ue, ok := pl.Split(a)
	if !ok || bs != 5 || ue != 10 {
		t.Fatalf("split(%s) = %d %d %v", a, bs, ue, ok)
	}
}

func TestLocIPExample(t *testing.T) {
	// With the default plan, base station 1's prefix is 10.0.16.0/20 (12 UE
	// bits) and UE 10 there has address 10.0.16.10 — mirroring the paper's
	// "UE7 arrives at base station 1 with prefix 10.0.0.0/16 ... address
	// 10.0.0.10" example, adapted to our field widths.
	pl := DefaultPlan
	pfx, err := pl.BSPrefix(1)
	if err != nil {
		t.Fatal(err)
	}
	if pfx.String() != "10.0.16.0/20" {
		t.Fatalf("BSPrefix(1) = %s", pfx)
	}
	a, err := pl.LocIP(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.0.16.10" {
		t.Fatalf("LocIP(1,10) = %s", a)
	}
	if !pfx.Contains(a) {
		t.Fatal("LocIP should fall inside its BS prefix")
	}
}

func TestLocIPRoundTripProperty(t *testing.T) {
	pl := DefaultPlan
	f := func(bsRaw, ueRaw uint32) bool {
		bs := BSID(bsRaw) % (pl.MaxBS() + 1)
		ue := UEID(ueRaw)%pl.MaxUE() + 1 // 1..MaxUE
		a, err := pl.LocIP(bs, ue)
		if err != nil {
			return false
		}
		gotBS, gotUE, ok := pl.Split(a)
		return ok && gotBS == bs && gotUE == ue
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocIPRange(t *testing.T) {
	pl := DefaultPlan
	if _, err := pl.LocIP(pl.MaxBS()+1, 1); err == nil {
		t.Error("BS overflow should fail")
	}
	if _, err := pl.LocIP(0, 0); err == nil {
		t.Error("UE 0 is reserved")
	}
	if _, err := pl.LocIP(0, pl.MaxUE()+1); err == nil {
		t.Error("UE overflow should fail")
	}
	if _, err := pl.BSPrefix(pl.MaxBS() + 1); err == nil {
		t.Error("BSPrefix overflow should fail")
	}
}

func TestSplitOutsideCarrier(t *testing.T) {
	if _, _, ok := DefaultPlan.Split(AddrFrom4(8, 8, 8, 8)); ok {
		t.Fatal("addresses outside the carrier block should not split")
	}
}

func TestEmbedPortRoundTrip(t *testing.T) {
	pl := DefaultPlan
	f := func(tagRaw uint16, ephRaw uint16) bool {
		tag := Tag(tagRaw) % (pl.MaxTag() + 1)
		eph := ephRaw % (1 << pl.EphemeralBits())
		port, err := pl.EmbedPort(tag, eph)
		if err != nil {
			return false
		}
		gotTag, gotEph := pl.SplitPort(port)
		return gotTag == tag && gotEph == eph
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedPortRange(t *testing.T) {
	pl := DefaultPlan
	if _, err := pl.EmbedPort(pl.MaxTag()+1, 0); err == nil {
		t.Error("tag overflow should fail")
	}
	if _, err := pl.EmbedPort(0, uint16(1<<pl.EphemeralBits())); err == nil {
		t.Error("ephemeral overflow should fail")
	}
}

func TestTagPortRange(t *testing.T) {
	pl := DefaultPlan
	lo, hi, err := pl.TagPortRange(3)
	if err != nil {
		t.Fatal(err)
	}
	if tag, _ := pl.SplitPort(lo); tag != 3 {
		t.Errorf("lo %d decodes to tag %d", lo, tag)
	}
	if tag, _ := pl.SplitPort(hi); tag != 3 {
		t.Errorf("hi %d decodes to tag %d", hi, tag)
	}
	if hi-lo != uint16(1<<pl.EphemeralBits())-1 {
		t.Errorf("range span = %d", hi-lo)
	}
	if tag, _ := pl.SplitPort(hi + 1); tag == 3 {
		t.Error("range should be tight")
	}
	if _, _, err := pl.TagPortRange(pl.MaxTag() + 1); err == nil {
		t.Error("tag overflow should fail")
	}
}

func TestBSPrefixesDisjoint(t *testing.T) {
	pl := DefaultPlan
	a, _ := pl.BSPrefix(7)
	b, _ := pl.BSPrefix(8)
	if a.Overlaps(b) {
		t.Fatalf("distinct BS prefixes overlap: %s %s", a, b)
	}
	// Adjacent even/odd stations are buddy blocks — the aggregation the
	// paper relies on ("IDs of nearby base stations can be aggregated").
	sib, ok := mustPrefix(t, pl, 6).Sibling()
	if !ok || sib != mustPrefix(t, pl, 7) {
		t.Fatalf("BS 6's sibling should be BS 7, got %v", sib)
	}
}

func mustPrefix(t *testing.T, pl Plan, bs BSID) Prefix {
	t.Helper()
	p, err := pl.BSPrefix(bs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
