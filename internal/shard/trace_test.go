package shard

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ctrlproto"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/topo"
)

// Both layers must satisfy the span-aware control-plane surface so a
// ctrlproto server can forward wire-decoded trace contexts into them.
var (
	_ ctrlproto.TracedControlPlane = (*Dispatcher)(nil)
	_ ctrlproto.TracedControlPlane = (*core.Controller)(nil)
)

// tracedOps builds a single-shard dispatcher with sampling 1 and a
// virtual clock, drives one attach, one path request, and one handoff,
// and returns the registry holding the recorded spans. Ops run strictly
// sequentially, so every clock read is totally ordered and two calls
// with the same seed topology produce identical span dumps.
func tracedOps(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.New()
	var tick atomic.Int64
	reg.SetClock(func() int64 { return tick.Add(1) })
	reg.SetSpanSampling(1)

	g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 10, MBTypes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards: 1,
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	if err := d.RegisterSubscriber("tracee", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		t.Fatal(err)
	}
	bsA, bsB := g.Stations[0].ID, g.Stations[1].ID
	if _, _, err := d.Attach("tracee", bsA); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RequestPath(bsA, allowClauses(t, d)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Handoff("tracee", bsB); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestSpanTreeEndToEnd drives sampled requests through the dispatcher
// and asserts the acceptance contract of DESIGN.md §16: every trace is
// complete (root present, no orphan parents), each layer shows up as a
// child segment under its shard root, and the per-segment self times
// sum exactly to the summed root durations — the waterfall accounts for
// every virtual nanosecond of end-to-end latency.
func TestSpanTreeEndToEnd(t *testing.T) {
	reg := tracedOps(t)
	recs := reg.SpanRecords()
	if len(recs) == 0 {
		t.Fatal("no spans recorded at sampling 1")
	}
	if n := reg.SpanDropped(); n != 0 {
		t.Fatalf("%d spans dropped in a sequential run", n)
	}

	a := obs.Attribute(recs)
	if a.Incomplete != 0 {
		t.Fatalf("%d incomplete traces, want 0:\n%s", a.Incomplete, reg.SpanJSON())
	}
	if a.Traces != 3 { // attach, path request, handoff — one root each
		t.Fatalf("attribution folded %d traces, want 3:\n%s", a.Traces, reg.SpanJSON())
	}
	if a.SelfSumNS != a.TotalNS {
		t.Fatalf("self times sum to %dns but roots total %dns — lost latency:\n%s",
			a.SelfSumNS, a.TotalNS, a.Waterfall())
	}

	segments := make(map[string]bool, len(a.Segments))
	for _, seg := range a.Segments {
		segments[seg.Name] = true
	}
	// Dispatcher roots plus the shared per-shard queue segments.
	for _, want := range []string{
		"shard.attach", "shard.path", "shard.handoff",
		"shard.admission", "shard.queue.wait",
	} {
		if !segments[want] {
			t.Errorf("segment %q missing from attribution:\n%s", want, a.Waterfall())
		}
	}
	// Controller children live under the per-shard Sub prefix; match by
	// suffix so the assertion holds for any shard id.
	for _, want := range []string{
		"core.attach", "core.path", "core.handoff",
		"core.handoff.alloc", "core.handoff.rule",
	} {
		found := false
		for name := range segments {
			if strings.HasSuffix(name, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no segment ends in %q:\n%s", want, a.Waterfall())
		}
	}
}

// TestSpanDumpDeterministic runs the same traced schedule twice and
// requires byte-identical span dumps: IDs come from counters, times
// from the injected clock, and the dump is sorted and hand-encoded, so
// nothing about a same-seed rerun may differ.
func TestSpanDumpDeterministic(t *testing.T) {
	first := tracedOps(t).SpanJSON()
	second := tracedOps(t).SpanJSON()
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed span dumps differ:\nrun 1:\n%srun 2:\n%s", first, second)
	}
}

// TestQueueWaitSpanParent pins the cross-goroutine span handoff: the
// queue-wait child is started by the enqueuing caller and ended by the
// dequeuing worker, and must still parent correctly under the request
// root rather than floating loose.
func TestQueueWaitSpanParent(t *testing.T) {
	reg := tracedOps(t)
	recs := reg.SpanRecords()
	byID := make(map[obs.SpanID]obs.SpanRecord, len(recs))
	for _, rec := range recs {
		byID[rec.Span] = rec
	}
	waits := 0
	for _, rec := range recs {
		if rec.Name != "shard.queue.wait" {
			continue
		}
		waits++
		parent, ok := byID[rec.Parent]
		if !ok {
			t.Fatalf("queue-wait span %d has unrecorded parent %d", rec.Span, rec.Parent)
		}
		if !strings.HasPrefix(parent.Name, "shard.") {
			t.Fatalf("queue-wait span %d parented under %q, want a shard root", rec.Span, parent.Name)
		}
		if rec.Start < parent.Start || rec.End > parent.End {
			t.Fatalf("queue-wait span [%d,%d] escapes parent %q [%d,%d]",
				rec.Start, rec.End, parent.Name, parent.Start, parent.End)
		}
	}
	if waits == 0 {
		t.Fatal("no shard.queue.wait spans recorded")
	}
}
