package shard

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// Config parameterises New. Topology, Gateway and Policy are required.
type Config struct {
	Topology *topo.Topology
	Gateway  topo.NodeID
	Policy   *policy.Policy
	MBTypes  map[string]topo.MBType

	// Shards is the partition width (default 1).
	Shards int
	// VNodes is the ring's virtual-node count per shard (default 128).
	VNodes int
	// QueueLen bounds each shard's work queue (default 1024): a full queue
	// applies backpressure to callers instead of growing without bound.
	QueueLen int
	// Workers is the number of worker goroutines per shard (default 2).
	Workers int
	// Batch bounds how many queued requests one worker dequeues at a time
	// (default 64); path requests inside a batch share one tag-cache
	// snapshot, and only cache misses take the controller's rule-table lock.
	Batch int

	// Plan defaults to packet.DefaultPlan. PermPool (default
	// 100.64.0.0/10) is carved into one disjoint sub-block per shard.
	Plan     packet.Plan
	PermPool packet.Prefix
	// Replicas per shard store (default 2, so a replica survives the
	// shard process and failover can rebuild from it).
	Replicas int
	// Install passes installer options through; each shard's TagOffset and
	// TagStride are overwritten with its partition coordinates.
	Install core.InstallerOptions

	// Admission configures per-shard overload protection (class-based load
	// shedding, per-station token buckets, circuit breakers). The zero
	// value disables all of it.
	Admission Admission

	// Obs, when non-nil, registers dispatcher-wide telemetry (cross-shard
	// handoff latency, failover events) plus per-shard queue metrics and
	// controller instrumentation under "shard.<id>" sub-views. nil runs
	// uninstrumented.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.PermPool == (packet.Prefix{}) {
		c.PermPool = packet.NewPrefix(packet.AddrFrom4(100, 64, 0, 0), 10)
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	return c
}

// subPool carves the i-th of n disjoint sub-blocks out of pool.
func subPool(pool packet.Prefix, i, n int) (packet.Prefix, error) {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if pool.Len+bits > 30 {
		return packet.Prefix{}, fmt.Errorf("shard: permanent pool %s too small for %d shards", pool, n)
	}
	addr := pool.Addr | packet.Addr(uint32(i)<<(32-pool.Len-bits))
	return packet.NewPrefix(addr, pool.Len+bits), nil
}

// ueEntry tracks which shard currently holds one UE's record. Its mutex
// serialises every UE-keyed operation (attach, handoff, detach), and
// doubles as the forwarding stub during a cross-shard migration: a request
// arriving mid-migration blocks on the entry until the move commits, then
// follows the updated pointer to the target shard.
type ueEntry struct {
	mu    sync.Mutex
	shard *Shard // guarded by mu
}

// Dispatcher fronts a set of controller shards: it routes base-station-
// keyed requests through the consistent-hash ring and UE-keyed requests
// through its UE directory, and owns the cross-shard handoff and failover
// protocols. The hot path (RequestPath) touches no dispatcher-wide lock —
// only an atomic ring snapshot and the owning shard's queue.
type Dispatcher struct {
	cfg    Config
	shards []*Shard     // indexed by shard id; entries outlive failure
	ring   atomic.Value // *Ring

	mu     sync.RWMutex
	ues    map[string]*ueEntry    // guarded by mu
	byPerm map[packet.Addr]string // guarded by mu

	failMu sync.Mutex // serialises failovers

	obs dispObs
}

// New builds the ring, partitions the topology's stations, and starts one
// restricted controller (plus its queue and workers) per shard.
func New(cfg Config) (*Dispatcher, error) {
	cfg = cfg.withDefaults()
	if cfg.Topology == nil {
		return nil, fmt.Errorf("shard: Config.Topology is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("shard: Config.Policy is required")
	}
	ids := make([]int, cfg.Shards)
	for i := range ids {
		ids[i] = i
	}
	ring := NewRing(cfg.VNodes, ids...)
	stations := make([]packet.BSID, 0, len(cfg.Topology.Stations))
	for _, st := range cfg.Topology.Stations {
		stations = append(stations, st.ID)
	}
	part, err := ring.Partition(stations)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{
		cfg:    cfg,
		shards: make([]*Shard, cfg.Shards),
		ues:    make(map[string]*ueEntry),
		byPerm: make(map[packet.Addr]string),
		obs:    newDispObs(cfg.Obs),
	}
	d.ring.Store(ring)
	for _, id := range ids {
		pool, err := subPool(cfg.PermPool, id, cfg.Shards)
		if err != nil {
			return nil, err
		}
		install := cfg.Install
		install.TagOffset, install.TagStride = id, cfg.Shards
		owned := part[id]
		if owned == nil {
			owned = []packet.BSID{} // non-nil: restricted to nothing rather than everything
		}
		var sub *obs.Registry
		if cfg.Obs != nil {
			sub = cfg.Obs.Sub("shard." + strconv.Itoa(id))
		}
		ctrl, err := core.NewController(cfg.Topology, core.ControllerConfig{
			Plan:     cfg.Plan,
			Gateway:  cfg.Gateway,
			Policy:   cfg.Policy,
			MBTypes:  cfg.MBTypes,
			Replicas: cfg.Replicas,
			PermPool: pool,
			Stations: owned,
			Install:  install,
			Obs:      sub,
		})
		if err != nil {
			return nil, err
		}
		adm := newAdmission(cfg.Admission, newAdmObs(cfg.Obs, id))
		d.shards[id] = newShard(id, ctrl, owned, cfg.QueueLen, cfg.Workers, cfg.Batch, newShardObs(cfg.Obs, id), adm)
	}
	return d, nil
}

// Ring returns the current ring snapshot.
func (d *Dispatcher) Ring() *Ring { return d.ring.Load().(*Ring) }

// Shards returns every shard ever started, including failed ones (check
// Down); index equals shard id.
func (d *Dispatcher) Shards() []*Shard { return d.shards }

// Shard returns the shard with the given id.
func (d *Dispatcher) Shard(id int) *Shard { return d.shards[id] }

// ShardOf resolves the shard currently owning a base station.
func (d *Dispatcher) ShardOf(bs packet.BSID) (*Shard, error) {
	id, ok := d.Ring().Owner(bs)
	if !ok {
		return nil, fmt.Errorf("shard: no live shards")
	}
	return d.shards[id], nil
}

// MemStats aggregates every live shard's controller memory accounting
// into one fleet-wide snapshot (core.MemStats.Add). Down shards are
// skipped: their slabs are unreachable and awaiting collection, not part
// of the serving footprint. Each per-shard snapshot also refreshes that
// shard's core.mem.* gauges as a side effect.
func (d *Dispatcher) MemStats() core.MemStats {
	var ms core.MemStats
	for _, s := range d.shards {
		if s.Down() {
			continue
		}
		ms.Add(s.Ctrl.MemStats())
	}
	return ms
}

// Served reports per-shard completed-request counts, indexed by shard id.
func (d *Dispatcher) Served() []uint64 {
	out := make([]uint64, len(d.shards))
	for i, s := range d.shards {
		out[i] = s.Served()
	}
	return out
}

// RegisterSubscriber loads one subscriber record into every live shard:
// the subscriber database is slow-changing shared state (the paper keeps
// it in the replicated store), so broadcasting keeps any shard able to
// admit the UE wherever it first attaches.
func (d *Dispatcher) RegisterSubscriber(imsi string, attr policy.Attributes) error {
	for _, s := range d.shards {
		if s.Down() {
			continue
		}
		if err := s.Ctrl.RegisterSubscriber(imsi, attr); err != nil {
			return err
		}
	}
	return nil
}

// RequestPath resolves a policy path through the owning shard's queue —
// the sharded hot path. As an in-process entry point it makes the trace
// root-sampling decision (one request in every Registry.SpanSampling);
// wire-originated requests come through RequestPathCtx instead and join
// their frame's trace.
func (d *Dispatcher) RequestPath(bs packet.BSID, clause int) (packet.Tag, error) {
	sp := d.obs.spPath.Root()
	tag, err := d.requestPath(sp.Context(), bs, clause)
	sp.End()
	return tag, err
}

// RequestPathCtx is RequestPath continuing the caller's trace (it makes
// no sampling decision of its own). With the zero context it behaves
// exactly like an unsampled RequestPath.
func (d *Dispatcher) RequestPathCtx(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error) {
	sp := d.obs.spPath.Start(sc)
	tag, err := d.requestPath(sp.Context(), bs, clause)
	sp.End()
	return tag, err
}

// requestPath routes one path request, retrying once when it was caught
// by a concurrent failover (a dead shard, or its tripped breaker failing
// fast) against the fresh ring.
func (d *Dispatcher) requestPath(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error) {
	for attempt := 0; ; attempt++ {
		s, err := d.ShardOf(bs)
		if err != nil {
			return 0, err
		}
		w := getWork(opPath)
		w.bs, w.clause = bs, clause
		w.sc = sc
		s.do(w)
		tag, err := w.tag, w.err
		putWork(w)
		if attempt == 0 && (errors.Is(err, ErrShardDown) || errors.Is(err, ErrCircuitOpen)) {
			continue
		}
		return tag, err
	}
}

// AgentView exports the owning shard's snapshot of one base station's
// agent state (core.Controller.AgentView) through the shard queue, so the
// export is serialised with the mutations it snapshots. It is the source
// of the versioned LKG snapshots pushed to agents; as protocol-internal
// work it bypasses admission control.
func (d *Dispatcher) AgentView(bs packet.BSID) (core.AgentView, error) {
	for attempt := 0; ; attempt++ {
		s, err := d.ShardOf(bs)
		if err != nil {
			return core.AgentView{}, err
		}
		w := getWork(opView)
		w.bs = bs
		s.do(w)
		view, err := w.view, w.err
		putWork(w)
		if attempt == 0 && errors.Is(err, ErrShardDown) {
			continue
		}
		return view, err
	}
}

// entry returns (creating if needed) the directory entry for a UE.
func (d *Dispatcher) entry(imsi string) *ueEntry {
	d.mu.RLock()
	e := d.ues[imsi]
	d.mu.RUnlock()
	if e != nil {
		return e
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e = d.ues[imsi]; e == nil {
		e = &ueEntry{}
		d.ues[imsi] = e
	}
	return e
}

func (d *Dispatcher) lookupEntry(imsi string) (*ueEntry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.ues[imsi]
	return e, ok
}

func (d *Dispatcher) setPerm(perm packet.Addr, imsi string) {
	d.mu.Lock()
	d.byPerm[perm] = imsi
	d.mu.Unlock()
}

// Attach admits a UE at a base station, routing to the station's owner.
// When the UE's record lives on a different shard (a previous attach or a
// detached record), it is migrated first so the permanent IP survives.
// Like RequestPath, the in-process entry point makes the root-sampling
// decision; AttachCtx joins an existing trace.
func (d *Dispatcher) Attach(imsi string, bs packet.BSID) (core.UE, []core.Classifier, error) {
	sp := d.obs.spAttach.Root()
	ue, cls, err := d.attach(sp.Context(), imsi, bs)
	sp.End()
	return ue, cls, err
}

// AttachCtx is Attach continuing the caller's trace.
func (d *Dispatcher) AttachCtx(sc obs.SpanContext, imsi string, bs packet.BSID) (core.UE, []core.Classifier, error) {
	sp := d.obs.spAttach.Start(sc)
	ue, cls, err := d.attach(sp.Context(), imsi, bs)
	sp.End()
	return ue, cls, err
}

func (d *Dispatcher) attach(sc obs.SpanContext, imsi string, bs packet.BSID) (core.UE, []core.Classifier, error) {
	target, err := d.ShardOf(bs)
	if err != nil {
		return core.UE{}, nil, err
	}
	e := d.entry(imsi)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shard != nil && e.shard != target && !e.shard.Down() {
		mig, err := d.extract(sc, e.shard, imsi)
		if err != nil {
			return core.UE{}, nil, err
		}
		ue, cls, err := d.adopt(sc, target, mig, bs)
		if err != nil {
			return core.UE{}, nil, err
		}
		e.shard = target
		return ue, cls, nil
	}
	w := getWork(opAttach)
	w.imsi, w.bs = imsi, bs
	w.sc = sc
	target.do(w)
	ue, cls, err := w.ue, w.cls, w.err
	putWork(w)
	if err != nil {
		return core.UE{}, nil, err
	}
	e.shard = target
	d.setPerm(ue.PermIP, imsi)
	return ue, cls, nil
}

// Detach releases a UE's location state on its current shard (the record
// and its permanent IP stay there, as in the single-controller core).
func (d *Dispatcher) Detach(imsi string) error {
	e, ok := d.lookupEntry(imsi)
	if !ok {
		return fmt.Errorf("shard: unknown UE %q", imsi)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shard == nil {
		return fmt.Errorf("shard: UE %q has no shard", imsi)
	}
	w := getWork(opDetach)
	w.imsi = imsi
	e.shard.do(w)
	err := w.err
	putWork(w)
	return err
}

// LookupUE resolves a UE's record from whichever shard holds it.
func (d *Dispatcher) LookupUE(imsi string) (core.UE, bool) {
	e, ok := d.lookupEntry(imsi)
	if !ok {
		return core.UE{}, false
	}
	e.mu.Lock()
	s := e.shard
	e.mu.Unlock()
	if s == nil {
		return core.UE{}, false
	}
	return s.Ctrl.LookupUE(imsi)
}

// ResolveLocIP translates a permanent address to the UE's current LocIP.
func (d *Dispatcher) ResolveLocIP(perm packet.Addr) (packet.Addr, error) {
	d.mu.RLock()
	imsi, ok := d.byPerm[perm]
	var e *ueEntry
	if ok {
		e = d.ues[imsi]
	}
	d.mu.RUnlock()
	if !ok || e == nil {
		return 0, fmt.Errorf("shard: no UE with permanent address %s", perm)
	}
	e.mu.Lock()
	s := e.shard
	e.mu.Unlock()
	if s == nil {
		return 0, fmt.Errorf("shard: UE %q has no shard", imsi)
	}
	w := getWork(opResolve)
	w.perm = perm
	s.do(w)
	addr, err := w.addr, w.err
	putWork(w)
	return addr, err
}

// RecoverLocations rebuilds UE-location state across the shards from live
// agents' reports (§5.2), routing each station's report to its owner.
func (d *Dispatcher) RecoverLocations(reports []core.AgentLocationReport) error {
	byShard := make(map[*Shard][]core.AgentLocationReport)
	for _, rep := range reports {
		s, err := d.ShardOf(rep.BS)
		if err != nil {
			return err
		}
		byShard[s] = append(byShard[s], rep)
	}
	for s, reps := range byShard {
		w := getWork(opRecover)
		w.reports = reps
		s.do(w)
		err := w.err
		putWork(w)
		if err != nil {
			return err
		}
		for _, rep := range reps {
			for _, u := range rep.UEs {
				e := d.entry(u.IMSI)
				e.mu.Lock()
				e.shard = s
				e.mu.Unlock()
				d.setPerm(u.PermIP, u.IMSI)
			}
		}
	}
	return nil
}

// extract runs phase one of a migration on the source shard. The span
// context times the source queue wait under the migration's trace (the
// controller-side extract itself is untraced — it is rare, protocol-
// internal work).
func (d *Dispatcher) extract(sc obs.SpanContext, s *Shard, imsi string) (core.MigratedUE, error) {
	w := getWork(opExtract)
	w.imsi = imsi
	w.sc = sc
	s.do(w)
	mig, err := w.mig, w.err
	putWork(w)
	return mig, err
}

// adopt runs phase two of a migration on the target shard.
func (d *Dispatcher) adopt(sc obs.SpanContext, s *Shard, mig core.MigratedUE, bs packet.BSID) (core.UE, []core.Classifier, error) {
	w := getWork(opAdopt)
	w.mig, w.bs = mig, bs
	w.sc = sc
	s.do(w)
	ue, cls, err := w.ue, w.cls, w.err
	putWork(w)
	if err == nil {
		d.setPerm(ue.PermIP, mig.IMSI)
	}
	return ue, cls, err
}

// Close drains and stops every shard. Callers must have stopped issuing
// requests first.
func (d *Dispatcher) Close() {
	for _, s := range d.shards {
		s.close()
	}
}
