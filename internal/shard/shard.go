package shard

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
)

// ErrShardDown marks a request that reached a shard after its failure was
// declared; the dispatcher retries against a fresh ring snapshot once, so
// callers only see this during the failover window itself.
var ErrShardDown = errors.New("shard: controller shard is down")

// opKind discriminates the work items a shard worker serves.
type opKind uint8

const (
	opPath opKind = iota
	opAttach
	opHandoff
	opDetach
	opResolve
	opExtract
	opAdopt
	opAbsorb
	opRecover
	opView
)

// work is one queued request plus its result slots. Items are pooled; the
// done channel is allocated once per item and reused across requests.
type work struct {
	kind    opKind
	bs      packet.BSID
	clause  int
	imsi    string
	perm    packet.Addr
	mig     core.MigratedUE
	ues     []core.UE
	reports []core.AgentLocationReport

	// sc is the request's span context (zero for the unsampled majority);
	// qspan times enqueue-to-dequeue, started by do and ended by the
	// dequeuing worker (the channel send orders the handoff).
	sc    obs.SpanContext
	qspan obs.Span

	tag  packet.Tag
	ue   core.UE
	cls  []core.Classifier
	hr   core.HandoffResult
	addr packet.Addr
	view core.AgentView
	err  error

	done chan struct{}
}

var workPool = sync.Pool{New: func() any { return &work{done: make(chan struct{}, 1)} }}

func getWork(kind opKind) *work {
	w := workPool.Get().(*work)
	w.kind = kind
	return w
}

func putWork(w *work) {
	w.imsi = ""
	w.ues, w.reports, w.cls = nil, nil, nil
	w.mig = core.MigratedUE{}
	w.hr = core.HandoffResult{}
	w.view = core.AgentView{}
	w.err = nil
	w.sc, w.qspan = obs.SpanContext{}, obs.Span{}
	workPool.Put(w)
}

// Shard is one partition of the control plane: a restricted controller
// owning a disjoint set of base stations, fed by a bounded work queue that
// its workers drain in batches. The controller synchronises internally
// with fine-grained domain locks (UE state, allocation, rule table) and a
// lock-free tag cache on the path-request fast path; per-shard queues mean
// even those narrow locks are only ever contended by this shard's few
// workers — never across shards.
type Shard struct {
	ID   int
	Ctrl *core.Controller
	// Stations is the disjoint base-station set this shard owned at
	// construction (failover may extend the live set; see Ctrl.Stations).
	Stations []packet.BSID

	queue  chan *work
	batch  int
	dead   atomic.Bool
	served atomic.Uint64
	wg     sync.WaitGroup
	obs    shardObs
	adm    *admission
}

// newShard wires the queue and workers around a restricted controller.
func newShard(id int, ctrl *core.Controller, stations []packet.BSID, queueLen, workers, batch int, so shardObs, adm *admission) *Shard {
	s := &Shard{
		ID:       id,
		Ctrl:     ctrl,
		Stations: stations,
		queue:    make(chan *work, queueLen),
		batch:    batch,
		obs:      so,
		adm:      adm,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Served reports the number of requests this shard has completed.
func (s *Shard) Served() uint64 { return s.served.Load() }

// Down reports whether the shard has been declared failed.
func (s *Shard) Down() bool { return s.dead.Load() }

// do runs one work item through the shard's queue and waits for it. The
// admission pipeline (circuit breaker, class shedding against queue
// occupancy, per-station token bucket) runs before the item is enqueued;
// protected protocol-internal kinds bypass it. Every outcome — including a
// dead-shard refusal — feeds the breaker.
func (s *Shard) do(w *work) {
	isProtected := protectedOp(w.kind)
	if s.dead.Load() {
		w.err = ErrShardDown
		s.adm.result(ErrShardDown, isProtected)
		return
	}
	asp := s.obs.spAdmit.Start(w.sc)
	err := s.adm.admit(w.kind, w.bs, len(s.queue), cap(s.queue))
	asp.End()
	if err != nil {
		w.err = err
		return
	}
	s.obs.depth.Add(1)
	w.qspan = s.obs.spQueueWait.Start(w.sc)
	s.queue <- w
	<-w.done
	s.adm.result(w.err, isProtected)
}

// worker drains the queue in batches: one blocking receive, then as many
// non-blocking receives as the batch bound allows. Consecutive path
// requests inside a batch resolve through one core.RequestPathBatch call:
// cached tags come from a single tag-cache snapshot and only the misses
// pay a rule-table lock acquisition.
func (s *Shard) worker() {
	defer s.wg.Done()
	var (
		batch = make([]*work, 0, s.batch)
		qs    = make([]core.PathQuery, 0, s.batch)
		idx   = make([]int, 0, s.batch)
		ans   = make([]core.PathAnswer, 0, s.batch)
	)
	for {
		w, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], w)
	drain:
		for len(batch) < s.batch {
			select {
			case w2, ok := <-s.queue:
				if !ok {
					break drain
				}
				batch = append(batch, w2)
			default:
				break drain
			}
		}
		s.serve(batch, &qs, &idx, &ans)
	}
}

// serve answers one dequeued batch.
func (s *Shard) serve(batch []*work, qs *[]core.PathQuery, idx *[]int, ans *[]core.PathAnswer) {
	s.obs.depth.Add(-int64(len(batch)))
	s.obs.batchSize.Observe(int64(len(batch)))
	for _, w := range batch {
		w.qspan.End() // queue wait is over, whatever happens next
	}
	if s.dead.Load() {
		for _, w := range batch {
			w.err = ErrShardDown
			w.done <- struct{}{}
		}
		return
	}
	*qs, *idx = (*qs)[:0], (*idx)[:0]
	for i, w := range batch {
		// Sampled path requests resolve individually below so their
		// controller sections attach to the right trace; only the unsampled
		// majority joins the shared-snapshot batch.
		if w.kind == opPath && !w.sc.Sampled() {
			*qs = append(*qs, core.PathQuery{BS: w.bs, Clause: w.clause})
			*idx = append(*idx, i)
		}
	}
	if len(*qs) > 0 {
		*ans = s.Ctrl.RequestPathBatch(*qs, (*ans)[:0])
		for j, i := range *idx {
			batch[i].tag, batch[i].err = (*ans)[j].Tag, (*ans)[j].Err
		}
	}
	for _, w := range batch {
		switch w.kind {
		case opPath:
			if w.sc.Sampled() {
				w.tag, w.err = s.Ctrl.RequestPathCtx(w.sc, w.bs, w.clause)
			}
			// unsampled: answered by the batch above
		case opAttach:
			w.ue, w.cls, w.err = s.Ctrl.AttachCtx(w.sc, w.imsi, w.bs)
		case opHandoff:
			w.hr, w.err = s.Ctrl.HandoffCtx(w.sc, w.imsi, w.bs)
		case opDetach:
			w.err = s.Ctrl.Detach(w.imsi)
		case opResolve:
			w.addr, w.err = s.Ctrl.ResolveLocIP(w.perm)
		case opExtract:
			w.mig, w.err = s.Ctrl.ExtractUE(w.imsi)
		case opAdopt:
			w.ue, w.cls, w.err = s.Ctrl.AdoptUE(w.mig, w.bs)
		case opAbsorb:
			w.err = s.Ctrl.AbsorbStation(w.bs, w.ues)
		case opRecover:
			w.err = s.Ctrl.RecoverLocations(w.reports)
		case opView:
			w.view, w.err = s.Ctrl.AgentView(w.bs)
		}
		w.done <- struct{}{}
	}
	s.served.Add(uint64(len(batch)))
}

// close shuts the queue down and waits for the workers to drain it.
func (s *Shard) close() {
	close(s.queue)
	s.wg.Wait()
}
