package shard

import (
	"strconv"

	"repro/internal/obs"
)

// dispObs bundles the dispatcher's observability handles (nil-safe
// no-ops when Config.Obs is unset). Dispatcher-wide metrics register on
// the root registry; per-shard queue metrics register through a
// "shard.<id>" Sub view, and each shard's controller instruments itself
// under the same view — so one registry carries, e.g.,
// shard.0.queue.depth next to shard.0.core.tagcache.hit.
type dispObs struct {
	reg        *obs.Registry
	crossLat   *obs.Histogram // cross-shard handoff latency (ns)
	crossDone  *obs.Counter
	localDone  *obs.Counter
	evFailover *obs.EventType
}

func newDispObs(reg *obs.Registry) dispObs {
	if reg == nil {
		return dispObs{}
	}
	return dispObs{
		reg: reg,
		crossLat: reg.Histogram("shard.handoff.cross_ns",
			10000, 100000, 1000000, 10000000, 100000000),
		crossDone:  reg.Counter("shard.handoff.cross"),
		localDone:  reg.Counter("shard.handoff.local"),
		evFailover: reg.EventType("shard.failover", "shard", "stations", "ues", "dropped"),
	}
}

// shardObs holds one shard's queue telemetry, registered on the
// dispatcher registry's "shard.<id>" view.
type shardObs struct {
	depth     *obs.Gauge
	batchSize *obs.Histogram
}

func newShardObs(reg *obs.Registry, id int) shardObs {
	if reg == nil {
		return shardObs{}
	}
	sub := reg.Sub("shard." + strconv.Itoa(id))
	return shardObs{
		depth:     sub.Gauge("queue.depth"),
		batchSize: sub.Histogram("batch.size", 1, 2, 4, 8, 16, 32, 64, 128),
	}
}

// admObs holds one shard's admission-control telemetry: shed counts by
// request class, token-bucket refusals, and the circuit breaker's state
// machine, all under the same "shard.<id>" view as the queue metrics.
// Handles are nil-safe no-ops when the dispatcher runs uninstrumented.
type admObs struct {
	shed            [numClasses]*obs.Counter
	throttled       *obs.Counter
	breakerState    *obs.Gauge // 0 closed, 1 open, 2 half-open
	breakerTrips    *obs.Counter
	breakerFastFail *obs.Counter
}

func newAdmObs(reg *obs.Registry, id int) admObs {
	if reg == nil {
		return admObs{}
	}
	sub := reg.Sub("shard." + strconv.Itoa(id))
	return admObs{
		shed: [numClasses]*obs.Counter{
			ClassBearer:  sub.Counter("admission.shed.bearer"),
			ClassAttach:  sub.Counter("admission.shed.attach"),
			ClassHandoff: sub.Counter("admission.shed.handoff"),
		},
		throttled:       sub.Counter("admission.throttled"),
		breakerState:    sub.Gauge("breaker.state"),
		breakerTrips:    sub.Counter("breaker.trips"),
		breakerFastFail: sub.Counter("breaker.fastfail"),
	}
}
