package shard

import (
	"strconv"

	"repro/internal/obs"
)

// dispObs bundles the dispatcher's observability handles (nil-safe
// no-ops when Config.Obs is unset). Dispatcher-wide metrics register on
// the root registry; per-shard queue metrics register through a
// "shard.<id>" Sub view, and each shard's controller instruments itself
// under the same view — so one registry carries, e.g.,
// shard.0.queue.depth next to shard.0.core.tagcache.hit.
type dispObs struct {
	reg        *obs.Registry
	crossLat   *obs.Histogram // cross-shard handoff latency (ns)
	crossDone  *obs.Counter
	localDone  *obs.Counter
	evFailover *obs.EventType

	// Span sections (DESIGN.md §16). The dispatcher is where in-process
	// callers enter the control plane, so its entry points make the
	// root-sampling decision; requests arriving over the wire join their
	// frame's trace through the Ctx variants instead.
	spPath    *obs.SpanName // shard.path — sharded path request, end to end
	spAttach  *obs.SpanName // shard.attach
	spHandoff *obs.SpanName // shard.handoff — local or cross-shard move
}

func newDispObs(reg *obs.Registry) dispObs {
	if reg == nil {
		return dispObs{}
	}
	reg.Doc("shard.handoff.cross", "Cross-shard two-phase UE migrations completed")
	reg.Doc("shard.handoff.local", "Handoffs served entirely inside one shard")
	return dispObs{
		reg: reg,
		crossLat: reg.Histogram("shard.handoff.cross_ns",
			10000, 100000, 1000000, 10000000, 100000000),
		crossDone:  reg.Counter("shard.handoff.cross"),
		localDone:  reg.Counter("shard.handoff.local"),
		evFailover: reg.EventType("shard.failover", "shard", "stations", "ues", "dropped"),

		spPath:    reg.SpanName("shard.path"),
		spAttach:  reg.SpanName("shard.attach"),
		spHandoff: reg.SpanName("shard.handoff"),
	}
}

// shardObs holds one shard's queue telemetry, registered on the
// dispatcher registry's "shard.<id>" view. The two span names register
// on the root registry instead: every shard's queue wait lands in one
// waterfall segment, not a per-shard sliver.
type shardObs struct {
	depth     *obs.Gauge
	batchSize *obs.Histogram

	spQueueWait *obs.SpanName // shard.queue.wait — enqueue to dequeue
	spAdmit     *obs.SpanName // shard.admission — the admission pipeline
}

func newShardObs(reg *obs.Registry, id int) shardObs {
	if reg == nil {
		return shardObs{}
	}
	sub := reg.Sub("shard." + strconv.Itoa(id))
	return shardObs{
		depth:     sub.Gauge("queue.depth"),
		batchSize: sub.Histogram("batch.size", 1, 2, 4, 8, 16, 32, 64, 128),

		spQueueWait: reg.SpanName("shard.queue.wait"),
		spAdmit:     reg.SpanName("shard.admission"),
	}
}

// admObs holds one shard's admission-control telemetry: shed counts by
// request class, token-bucket refusals, and the circuit breaker's state
// machine, all under the same "shard.<id>" view as the queue metrics.
// Handles are nil-safe no-ops when the dispatcher runs uninstrumented.
type admObs struct {
	shed            [numClasses]*obs.Counter
	throttled       *obs.Counter
	breakerState    *obs.Gauge // 0 closed, 1 open, 2 half-open
	breakerTrips    *obs.Counter
	breakerFastFail *obs.Counter
}

func newAdmObs(reg *obs.Registry, id int) admObs {
	if reg == nil {
		return admObs{}
	}
	sub := reg.Sub("shard." + strconv.Itoa(id))
	return admObs{
		shed: [numClasses]*obs.Counter{
			ClassBearer:  sub.Counter("admission.shed.bearer"),
			ClassAttach:  sub.Counter("admission.shed.attach"),
			ClassHandoff: sub.Counter("admission.shed.handoff"),
		},
		throttled:       sub.Counter("admission.throttled"),
		breakerState:    sub.Gauge("breaker.state"),
		breakerTrips:    sub.Counter("breaker.trips"),
		breakerFastFail: sub.Counter("breaker.fastfail"),
	}
}
