package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// TestFailShardRebuildsFromStoreAndReports kills a shard and checks its UE
// state is reassembled on the survivors from the two recovery sources: live
// agents' location reports, and — for a UE whose agent stays silent — the
// dead shard's replicated store alone.
func TestFailShardRebuildsFromStoreAndReports(t *testing.T) {
	d, g := newTestDispatcher(t, 3)
	ring := d.Ring()

	// Pick a victim shard owning at least two stations, so one UE can be
	// covered by an agent report and another left to the store.
	part, err := ring.Partition(stationIDs(g.Stations))
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for id, owned := range part {
		if len(owned) >= 2 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Skip("no shard owns two stations under this ring")
	}
	bsReported, bsSilent := part[victim][0], part[victim][1]

	for i, bs := range []packet.BSID{bsReported, bsSilent} {
		imsi := fmt.Sprintf("ue-%d", i)
		if err := d.RegisterSubscriber(imsi, policy.Attributes{Provider: "A"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := d.Attach(imsi, bs); err != nil {
			t.Fatal(err)
		}
	}
	reportedUE, _ := d.LookupUE("ue-0")
	silentUE, _ := d.LookupUE("ue-1")

	// Only the first station's agent answers the post-failure query.
	reports := []core.AgentLocationReport{{BS: bsReported, UEs: []core.UE{reportedUE}}}
	rep, err := d.FailShard(victim, reports)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromReports != 1 || rep.FromStore != 1 {
		t.Fatalf("recovery sources: %+v, want 1 from reports and 1 from store", rep)
	}
	if rep.Stations != len(part[victim]) {
		t.Fatalf("rehashed %d stations, want %d", rep.Stations, len(part[victim]))
	}
	if d.Ring().Has(victim) {
		t.Fatal("failed shard still on the ring")
	}
	if !d.Shard(victim).Down() {
		t.Fatal("failed shard not marked down")
	}

	// Both UEs survive with their addresses intact on surviving shards.
	for _, want := range []core.UE{reportedUE, silentUE} {
		got, ok := d.LookupUE(want.IMSI)
		if !ok {
			t.Fatalf("UE %q lost in failover", want.IMSI)
		}
		if got.BS != want.BS || got.LocIP != want.LocIP || got.PermIP != want.PermIP {
			t.Fatalf("UE %q rebuilt as %+v, want %+v", want.IMSI, got, want)
		}
		owner, _ := d.Ring().Owner(got.BS)
		if owner == victim {
			t.Fatalf("UE %q still maps to the dead shard", want.IMSI)
		}
		if _, ok := d.Shard(owner).Ctrl.LookupUE(want.IMSI); !ok {
			t.Fatalf("new owner shard %d does not hold UE %q", owner, want.IMSI)
		}
		if loc, err := d.ResolveLocIP(want.PermIP); err != nil || loc != want.LocIP {
			t.Fatalf("ResolveLocIP(%s) = %s, %v after failover", want.PermIP, loc, err)
		}
	}

	// Every rehashed station serves path requests again — including ones
	// that held no UEs — and new tags come from the survivor's partition.
	clauses := allowClauses(t, d)
	for _, bs := range part[victim] {
		owner, _ := d.Ring().Owner(bs)
		tag, err := d.RequestPath(bs, clauses[0])
		if err != nil {
			t.Fatalf("RequestPath(%d) after failover: %v", bs, err)
		}
		if tag == 0 || int(tag)%3 != owner {
			t.Fatalf("station %d tag %d not from new owner %d", bs, tag, owner)
		}
	}

	// The survivors can keep serving handoffs for the recovered UE.
	var other packet.BSID
	for _, st := range g.Stations {
		if owner, _ := d.Ring().Owner(st.ID); owner != victim && st.ID != reportedUE.BS {
			other = st.ID
			break
		}
	}
	if hr, err := d.Handoff("ue-0", other); err != nil {
		t.Fatalf("handoff of recovered UE: %v", err)
	} else if hr.UE.PermIP != reportedUE.PermIP {
		t.Fatal("recovered UE lost its permanent IP on handoff")
	}

	// A second failure of the same shard is refused.
	if _, err := d.FailShard(victim, nil); err == nil {
		t.Fatal("FailShard accepted an already-dead shard")
	}
}

func TestFailShardRefusesLastShard(t *testing.T) {
	d, _ := newTestDispatcher(t, 1)
	if _, err := d.FailShard(0, nil); err == nil {
		t.Fatal("failed the only shard")
	}
	if _, err := d.FailShard(7, nil); err == nil {
		t.Fatal("failed a nonexistent shard")
	}
}

// TestRequestPathRetriesAcrossFailover checks the documented retry: a
// request that catches ErrShardDown rides the fresh ring to a survivor.
func TestRequestPathRetriesAcrossFailover(t *testing.T) {
	d, g := newTestDispatcher(t, 2)
	clauses := allowClauses(t, d)
	part, err := d.Ring().Partition(stationIDs(g.Stations))
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for id, owned := range part {
		if len(owned) > 0 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Skip("degenerate partition")
	}
	bs := part[victim][0]
	if _, err := d.FailShard(victim, nil); err != nil {
		t.Fatal(err)
	}
	// The dead shard answers ErrShardDown directly; the dispatcher's retry
	// hides it from the caller.
	w := getWork(opPath)
	w.bs, w.clause = bs, clauses[0]
	d.Shard(victim).do(w)
	if !errors.Is(w.err, ErrShardDown) {
		t.Fatalf("dead shard answered %v, want ErrShardDown", w.err)
	}
	putWork(w)
	if tag, err := d.RequestPath(bs, clauses[0]); err != nil || tag == 0 {
		t.Fatalf("RequestPath through failover = %d, %v", tag, err)
	}
}

func stationIDs(stations []topo.BaseStation) []packet.BSID {
	out := make([]packet.BSID, len(stations))
	for i, st := range stations {
		out[i] = st.ID
	}
	return out
}
