package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/store"
)

// FailoverReport summarises a shard failover.
type FailoverReport struct {
	Shard       int // the failed shard
	Stations    int // base stations rehashed to survivors
	FromReports int // UEs rebuilt from live agents' location reports
	FromStore   int // UEs rebuilt from the replicated store alone
	Dropped     int // report/store records at stations the dead shard did not own
}

func (r FailoverReport) String() string {
	return fmt.Sprintf("shard %d failed: %d stations rehashed, %d UEs from agent reports, %d from store, %d dropped",
		r.Shard, r.Stations, r.FromReports, r.FromStore, r.Dropped)
}

// salvageUEs reads the dead shard's UE records out of a surviving store
// replica. The shard process is gone, but the §5.2 replicated store is
// exactly the state designed to outlive it; with no replica configured the
// primary's in-memory copy stands in (a modelling convenience).
func salvageUEs(st *store.Store) (map[string]core.UE, error) {
	var rep *store.Replica
	if replicas := st.Replicas(); len(replicas) > 0 {
		rep = replicas[0]
	} else {
		rep = st.Primary()
	}
	out := make(map[string]core.UE)
	for _, key := range rep.Keys("ue/") {
		entry, ok := rep.Get(key)
		if !ok {
			continue
		}
		ue, err := core.DecodeUERecord(entry.Value)
		if err != nil {
			return nil, fmt.Errorf("shard: corrupt store record %q: %w", key, err)
		}
		out[ue.IMSI] = ue
	}
	return out, nil
}

// FailShard declares a shard dead and rebuilds its slice of the control
// plane on the survivors:
//
//   - the shard leaves the ring, so its base stations rehash to the
//     surviving shards (consistent hashing moves only the dead shard's
//     stations — every other station keeps its owner);
//   - its UE-location state is reassembled from live agents' location
//     reports (authoritative, per §5.2's recovery argument) merged with
//     the UE records salvaged from its replicated store (covering agents
//     that did not answer);
//   - each reassembled station is absorbed by its new owner, which
//     extends its ownership and imports the records verbatim.
//
// Requests racing the failover see ErrShardDown once and retry against
// the fresh ring (see Dispatcher.RequestPath).
func (d *Dispatcher) FailShard(id int, reports []core.AgentLocationReport) (FailoverReport, error) {
	d.failMu.Lock()
	defer d.failMu.Unlock()
	if id < 0 || id >= len(d.shards) {
		return FailoverReport{}, fmt.Errorf("shard: no shard %d", id)
	}
	victim := d.shards[id]
	if victim.Down() {
		return FailoverReport{}, fmt.Errorf("shard: shard %d already down", id)
	}
	oldRing := d.Ring()
	newRing := oldRing.Without(id)
	if newRing.Len() == 0 {
		return FailoverReport{}, fmt.Errorf("shard: cannot fail the last shard")
	}
	// Publish the new ring first so no new request routes to the victim,
	// then declare it dead so queued requests drain with ErrShardDown, and
	// trip its breaker so stragglers fail fast instead of probing a corpse.
	d.ring.Store(newRing)
	victim.dead.Store(true)
	victim.adm.trip()

	rep := FailoverReport{Shard: id}
	salvaged, err := salvageUEs(victim.Ctrl.Store)
	if err != nil {
		return rep, err
	}

	// The victim's live owned set (its construction-time stations plus any
	// it absorbed in earlier failovers) is what must be rehashed — every
	// one of them, populated or not, so path requests at empty stations
	// keep working.
	victimStations := victim.Ctrl.Stations()
	victimOwned := make(map[packet.BSID]bool, len(victimStations))
	for _, bs := range victimStations {
		victimOwned[bs] = true
	}
	rep.Stations = len(victimStations)

	// Merge: agent reports are authoritative for location; store records
	// fill in UEs whose agents did not answer. Only stations the dead
	// shard owned are rebuilt — anything else is another shard's live
	// state and must not be overwritten.
	ownedByVictim := func(bs packet.BSID) bool { return victimOwned[bs] }
	byBS := make(map[packet.BSID][]core.UE)
	seen := make(map[string]bool)
	for _, r := range reports {
		if !ownedByVictim(r.BS) {
			rep.Dropped += len(r.UEs)
			continue
		}
		for _, u := range r.UEs {
			u.BS = r.BS
			byBS[r.BS] = append(byBS[r.BS], u)
			seen[u.IMSI] = true
			rep.FromReports++
		}
	}
	for imsi, u := range salvaged {
		if seen[imsi] || u.LocIP == 0 {
			continue
		}
		if !ownedByVictim(u.BS) {
			rep.Dropped++
			continue
		}
		byBS[u.BS] = append(byBS[u.BS], u)
		rep.FromStore++
	}

	for _, bs := range victimStations {
		owner, ok := newRing.Owner(bs)
		if !ok {
			return rep, fmt.Errorf("shard: empty ring during failover")
		}
		s := d.shards[owner]
		ues := byBS[bs] // may be empty — ownership still transfers
		w := getWork(opAbsorb)
		w.bs, w.ues = bs, ues
		s.do(w)
		err := w.err
		putWork(w)
		if err != nil {
			return rep, err
		}
		for _, u := range ues {
			e := d.entry(u.IMSI)
			e.mu.Lock()
			e.shard = s
			e.mu.Unlock()
			d.setPerm(u.PermIP, u.IMSI)
		}
	}
	d.obs.evFailover.Emit(int64(rep.Shard), int64(rep.Stations),
		int64(rep.FromReports+rep.FromStore), int64(rep.Dropped))
	return rep, nil
}
