package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
)

// ErrOverload marks a request shed by class under queue pressure: the
// shard's queue occupancy crossed the class's threshold, so lower-value
// work is refused before it can crowd out handoffs.
var ErrOverload = errors.New("shard: overloaded, request shed")

// ErrThrottled marks a request refused by a station's token bucket: that
// agent is sending faster than its provisioned control-plane rate.
var ErrThrottled = errors.New("shard: agent rate limit exceeded")

// ErrCircuitOpen marks a request refused without touching the shard at
// all: the shard's circuit breaker is open after repeated infrastructure
// failures and has not yet half-opened for a probe.
var ErrCircuitOpen = errors.New("shard: circuit breaker open")

// Class ranks request classes for load shedding (§3's control-plane
// priorities): handoffs outrank new attaches, which outrank bearer/path
// updates — under pressure the cheap-to-retry work goes first.
type Class uint8

const (
	ClassBearer  Class = iota // path/bearer/resolve updates: shed first
	ClassAttach               // new attaches
	ClassHandoff              // handoffs: shed last
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassBearer:
		return "bearer"
	case ClassAttach:
		return "attach"
	case ClassHandoff:
		return "handoff"
	}
	return "unknown"
}

// classOf maps a queued op kind to its shedding class.
func classOf(k opKind) Class {
	switch k {
	case opAttach:
		return ClassAttach
	case opHandoff:
		return ClassHandoff
	default:
		return ClassBearer
	}
}

// protectedOp reports whether a kind bypasses admission control entirely:
// the two-phase migration internals (extract/adopt), failover absorption,
// recovery, and snapshot export must never be shed — refusing them
// mid-protocol would strand UE state between shards.
func protectedOp(k opKind) bool {
	switch k {
	case opExtract, opAdopt, opAbsorb, opRecover, opView:
		return true
	}
	return false
}

// Admission parameterises a shard's overload protection. The zero value
// disables every mechanism, so existing callers see no behaviour change.
type Admission struct {
	// Shed thresholds are queue-occupancy fractions in (0,1]; a class is
	// refused with ErrOverload once len(queue) >= threshold*cap(queue).
	// Zero disables shedding for that class. Sensible configs order them
	// ShedBearer < ShedAttach < ShedHandoff.
	ShedBearer  float64
	ShedAttach  float64
	ShedHandoff float64

	// AgentRate is each station's sustained control-request budget in
	// requests/sec, with AgentBurst as the bucket depth (defaults to
	// AgentRate when zero). Zero AgentRate disables per-agent throttling.
	AgentRate  float64
	AgentBurst float64

	// BreakerFailures is how many consecutive infrastructure failures
	// (ErrShardDown) trip the circuit breaker; zero disables it.
	// BreakerCooldown is how long (ns) an open breaker waits before
	// half-opening to let one probe through.
	BreakerFailures int
	BreakerCooldown int64

	// Now supplies monotonic nanoseconds for the buckets and breaker;
	// nil uses the wall clock. Tests and the deterministic harness
	// inject virtual time here.
	Now func() int64
}

// Breaker states, exported through the shard.<id>.breaker.state gauge.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// bucket is one station's token bucket.
type bucket struct {
	tokens float64
	last   int64
}

// admission is a shard's live overload-protection state. The breaker runs
// on atomics (it sits on the request path); the token-bucket map is behind
// a mutex, touched only when per-agent throttling is enabled.
type admission struct {
	cfg Admission
	now func() int64

	mu      sync.Mutex
	buckets map[packet.BSID]*bucket // guarded by mu

	state    atomic.Int32 // breakerClosed/breakerOpen/breakerHalfOpen
	fails    atomic.Int32 // consecutive infrastructure failures
	openedAt atomic.Int64

	obs admObs
}

func newAdmission(cfg Admission, ao admObs) *admission {
	if cfg.AgentBurst <= 0 {
		cfg.AgentBurst = cfg.AgentRate
	}
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &admission{cfg: cfg, now: now, buckets: make(map[packet.BSID]*bucket), obs: ao}
}

// shedThreshold returns the occupancy fraction above which a class sheds.
func (a *admission) shedThreshold(c Class) float64 {
	switch c {
	case ClassAttach:
		return a.cfg.ShedAttach
	case ClassHandoff:
		return a.cfg.ShedHandoff
	default:
		return a.cfg.ShedBearer
	}
}

// admit runs the full admission pipeline for one unprotected request:
// breaker, class shedding against current queue occupancy, then the
// station's token bucket. A nil error admits the request to the queue.
func (a *admission) admit(k opKind, bs packet.BSID, depth, capacity int) error {
	if protectedOp(k) {
		return nil
	}
	if err := a.breakerAllow(); err != nil {
		return err
	}
	c := classOf(k)
	if th := a.shedThreshold(c); th > 0 && float64(depth) >= th*float64(capacity) {
		a.obs.shed[c].Inc()
		return fmt.Errorf("shard: %s queue at %d/%d: %w", c, depth, capacity, ErrOverload)
	}
	if bs != 0 && a.cfg.AgentRate > 0 {
		if !a.takeToken(bs) {
			a.obs.throttled.Inc()
			return fmt.Errorf("shard: bs%d over %.0f req/s: %w", bs, a.cfg.AgentRate, ErrThrottled)
		}
	}
	return nil
}

// takeToken refills and draws from one station's bucket.
func (a *admission) takeToken(bs packet.BSID) bool {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[bs]
	if !ok {
		b = &bucket{tokens: a.cfg.AgentBurst, last: now}
		a.buckets[bs] = b
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += float64(dt) * a.cfg.AgentRate / 1e9
		if b.tokens > a.cfg.AgentBurst {
			b.tokens = a.cfg.AgentBurst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// breakerAllow gates one request through the circuit breaker. An open
// breaker fails fast until the cooldown elapses, then CASes to half-open
// and lets exactly one probe through; half-open refuses everyone else
// until the probe reports back.
func (a *admission) breakerAllow() error {
	if a.cfg.BreakerFailures <= 0 {
		return nil
	}
	switch a.state.Load() {
	case breakerClosed:
		return nil
	case breakerOpen:
		if a.now()-a.openedAt.Load() >= a.cfg.BreakerCooldown &&
			a.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
			a.obs.breakerState.Set(int64(breakerHalfOpen))
			return nil // this caller is the probe
		}
	case breakerHalfOpen:
		// A probe is already in flight.
	}
	a.obs.breakerFastFail.Inc()
	return fmt.Errorf("shard: %w", ErrCircuitOpen)
}

// result feeds one completed request's outcome back into the breaker.
// Only infrastructure failures (a dead shard) count against it; policy
// errors are healthy answers.
func (a *admission) result(err error, isProtected bool) {
	if a.cfg.BreakerFailures <= 0 || isProtected {
		return
	}
	infra := errors.Is(err, ErrShardDown)
	if a.state.Load() == breakerHalfOpen {
		// The probe's verdict decides: recovery closes, failure re-opens.
		if infra {
			a.trip()
		} else {
			a.state.Store(breakerClosed)
			a.fails.Store(0)
			a.obs.breakerState.Set(int64(breakerClosed))
		}
		return
	}
	if !infra {
		a.fails.Store(0)
		return
	}
	if a.fails.Add(1) >= int32(a.cfg.BreakerFailures) {
		a.trip()
	}
}

// trip opens the breaker (idempotent; FailShard calls it directly so a
// declared-dead shard fails fast without waiting for organic failures).
func (a *admission) trip() {
	if a.cfg.BreakerFailures <= 0 {
		return
	}
	a.openedAt.Store(a.now())
	a.fails.Store(0)
	if a.state.Swap(breakerOpen) != breakerOpen {
		a.obs.breakerTrips.Inc()
	}
	a.obs.breakerState.Set(int64(breakerOpen))
}

// BreakerOpen reports whether the shard's circuit breaker is currently
// refusing requests (open or probing half-open).
func (s *Shard) BreakerOpen() bool {
	return s.adm.state.Load() != breakerClosed
}
