package shard

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

// TestRingRemovalMovesOnlyVictimsStations checks the defining consistent-
// hashing invariant with testing/quick: removing a shard relocates exactly
// the stations it owned — every other station keeps its owner.
func TestRingRemovalMovesOnlyVictimsStations(t *testing.T) {
	prop := func(nShards uint8, victimPick uint8, seed uint16) bool {
		n := int(nShards%7) + 2 // 2..8 shards
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		r := NewRing(64, ids...)
		victim := int(victimPick) % n
		r2 := r.Without(victim)
		if r2.Has(victim) || r2.Len() != n-1 {
			return false
		}
		for bs := packet.BSID(seed); bs < packet.BSID(seed)+512; bs++ {
			before, _ := r.Owner(bs)
			after, _ := r2.Owner(bs)
			if before == victim {
				if after == victim {
					return false // the victim must actually lose its stations
				}
				continue
			}
			if after != before {
				return false // a surviving shard's station moved — not consistent
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRingAdditionMovesStationsOnlyToNewcomer checks the dual invariant:
// growing the ring moves stations only onto the new shard.
func TestRingAdditionMovesStationsOnlyToNewcomer(t *testing.T) {
	prop := func(nShards uint8, seed uint16) bool {
		n := int(nShards%7) + 1 // 1..7 existing shards
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		r := NewRing(64, ids...)
		newcomer := n
		r2 := r.With(newcomer)
		if !r2.Has(newcomer) || r2.Len() != n+1 {
			return false
		}
		moved := 0
		for bs := packet.BSID(seed); bs < packet.BSID(seed)+512; bs++ {
			before, _ := r.Owner(bs)
			after, _ := r2.Owner(bs)
			if after != before {
				if after != newcomer {
					return false // stations may only move to the new shard
				}
				moved++
			}
		}
		// With vnodes the newcomer takes ~1/(n+1) of stations; allow a wide
		// margin but insist it is nowhere near a full reshuffle.
		return moved <= 512*2/(n+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRingBalance(t *testing.T) {
	const nShards, nBS = 4, 4096
	r := NewRing(DefaultVNodes, 0, 1, 2, 3)
	counts := make(map[int]int)
	for bs := packet.BSID(0); bs < nBS; bs++ {
		owner, ok := r.Owner(bs)
		if !ok {
			t.Fatal("empty ring")
		}
		counts[owner]++
	}
	for id := 0; id < nShards; id++ {
		frac := float64(counts[id]) / nBS
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("shard %d owns %.0f%% of stations (counts %v) — ring badly unbalanced", id, frac*100, counts)
		}
	}
}

func TestRingPartitionCoversAllStations(t *testing.T) {
	r := NewRing(0, 0, 1, 2)
	stations := make([]packet.BSID, 160)
	for i := range stations {
		stations[i] = packet.BSID(i)
	}
	part, err := r.Partition(stations)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for id, owned := range part {
		if !r.Has(id) {
			t.Fatalf("partition assigned stations to unknown shard %d", id)
		}
		total += len(owned)
		for _, bs := range owned {
			if owner, _ := r.Owner(bs); owner != id {
				t.Fatalf("station %d grouped under %d but owned by %d", bs, id, owner)
			}
		}
	}
	if total != len(stations) {
		t.Fatalf("partition covers %d of %d stations", total, len(stations))
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(8)
	if _, ok := empty.Owner(0); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if _, err := empty.Partition([]packet.BSID{0}); err == nil {
		t.Fatal("empty ring partitioned stations")
	}
	r := NewRing(8, 5)
	if r.With(5) != r {
		t.Fatal("With(existing) should return the same ring")
	}
	if r.Without(9) != r {
		t.Fatal("Without(absent) should return the same ring")
	}
	if owner, ok := r.Owner(1234); !ok || owner != 5 {
		t.Fatalf("single-shard ring: owner = %d, %v", owner, ok)
	}
}
