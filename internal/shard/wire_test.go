package shard

import (
	"net"
	"testing"

	"repro/internal/ctrlproto"
	"repro/internal/policy"
)

// The sharded dispatcher is a drop-in control plane for the wire protocol.
var _ ctrlproto.ControlPlane = (*Dispatcher)(nil)

// TestDispatcherServesWireProtocol runs an agent conversation — attach,
// path request, cross-shard handoff, resolve — through ctrlproto framing
// against a sharded dispatcher instead of a bare controller.
func TestDispatcherServesWireProtocol(t *testing.T) {
	d, g := newTestDispatcher(t, 4)
	bsA, bsB := twoShardStations(t, d, g)
	if err := d.RegisterSubscriber("wired", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}

	srv := ctrlproto.NewServer(d)
	a, b := net.Pipe()
	go srv.ServeConn(a)
	cl := ctrlproto.NewClient(b)
	defer cl.Close()

	if err := cl.Hello(bsA); err != nil {
		t.Fatal(err)
	}
	ue, cls, err := cl.Attach("wired", bsA)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) == 0 {
		t.Fatal("attach over the wire returned no classifiers")
	}
	tag, err := cl.RequestPath(bsA, cls[0].Clause)
	if err != nil || tag == 0 {
		t.Fatalf("RequestPath over the wire = %d, %v", tag, err)
	}
	hr, err := cl.Handoff("wired", bsB)
	if err != nil {
		t.Fatalf("cross-shard handoff over the wire: %v", err)
	}
	if hr.UE.PermIP != ue.PermIP || hr.UE.BS != bsB {
		t.Fatalf("handoff reply %+v", hr.UE)
	}
	loc, err := cl.ResolveLocIP(ue.PermIP)
	if err != nil || loc != hr.UE.LocIP {
		t.Fatalf("ResolveLocIP over the wire = %s, %v; want %s", loc, err, hr.UE.LocIP)
	}
}
