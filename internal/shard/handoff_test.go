package shard

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/policy"
)

func TestCrossShardHandoffPreservesPolicyPath(t *testing.T) {
	const shards = 4
	d, g := newTestDispatcher(t, shards)
	bsA, bsB := twoShardStations(t, d, g)
	if err := d.RegisterSubscriber("mover", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		t.Fatal(err)
	}
	ue, before, err := d.Attach("mover", bsA)
	if err != nil {
		t.Fatal(err)
	}

	hr, err := d.Handoff("mover", bsB)
	if err != nil {
		t.Fatal(err)
	}
	if hr.OldBS != bsA || hr.OldLocIP != ue.LocIP {
		t.Fatalf("handoff result names old location %d/%s, want %d/%s",
			hr.OldBS, hr.OldLocIP, bsA, ue.LocIP)
	}
	if hr.UE.PermIP != ue.PermIP {
		t.Fatalf("permanent IP changed: %s -> %s", ue.PermIP, hr.UE.PermIP)
	}
	if hr.UE.BS != bsB {
		t.Fatalf("UE at station %d after handoff, want %d", hr.UE.BS, bsB)
	}

	// The policy path survives the shard boundary: the same clauses
	// classify the UE on the target, and each resolves to a live path
	// minted from the target shard's tag partition.
	targetOwner, _ := d.Ring().Owner(bsB)
	byClause := make(map[int]bool)
	for _, c := range before {
		byClause[c.Clause] = true
	}
	if len(hr.Classifiers) != len(before) {
		t.Fatalf("classifier count changed: %d -> %d", len(before), len(hr.Classifiers))
	}
	for _, c := range hr.Classifiers {
		if !byClause[c.Clause] {
			t.Fatalf("classifier clause %d appeared out of nowhere", c.Clause)
		}
		tag, err := d.RequestPath(bsB, c.Clause)
		if err != nil {
			t.Fatalf("path for clause %d at new station: %v", c.Clause, err)
		}
		if tag == 0 || int(tag)%shards != targetOwner {
			t.Fatalf("clause %d path tag %d not from target shard %d", c.Clause, tag, targetOwner)
		}
	}

	// The directory follows the move.
	if loc, err := d.ResolveLocIP(ue.PermIP); err != nil || loc != hr.UE.LocIP {
		t.Fatalf("ResolveLocIP = %s, %v; want %s", loc, err, hr.UE.LocIP)
	}
	srcShard, _ := d.ShardOf(bsA)
	if _, ok := srcShard.Ctrl.LookupUE("mover"); ok {
		t.Fatal("source shard still holds the UE")
	}
}

func TestHandoffOfUnknownUE(t *testing.T) {
	d, g := newTestDispatcher(t, 2)
	_, err := d.Handoff("ghost", g.Stations[0].ID)
	if err == nil || !strings.Contains(err.Error(), "not attached") {
		t.Fatalf("Handoff(ghost) = %v", err)
	}
}

// TestConcurrentCrossShardHandoffs hammers one UE with competing handoffs
// from two goroutines (plus readers) and checks, under the race detector,
// that the record ends up on exactly one shard with a consistent directory.
func TestConcurrentCrossShardHandoffs(t *testing.T) {
	d, g := newTestDispatcher(t, 4)
	bsA, bsB := twoShardStations(t, d, g)
	if err := d.RegisterSubscriber("contested", policy.Attributes{Provider: "B"}); err != nil {
		t.Fatal(err)
	}
	ue, _, err := d.Attach("contested", bsA)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	var wg sync.WaitGroup
	hammer := func(phase int) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			bs := bsA
			if (i+phase)%2 == 0 {
				bs = bsB
			}
			// "already at" errors are expected when both goroutines pick the
			// same side; the invariant under test is consistency, not success.
			_, _ = d.Handoff("contested", bs)
		}
	}
	wg.Add(2)
	go hammer(0)
	go hammer(1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*2; i++ {
			_, _ = d.ResolveLocIP(ue.PermIP)
			_, _ = d.LookupUE("contested")
		}
	}()
	wg.Wait()

	// Exactly one shard holds the record, and the directory points at it.
	holders := 0
	var heldBy *Shard
	for _, s := range d.Shards() {
		if _, ok := s.Ctrl.LookupUE("contested"); ok {
			holders++
			heldBy = s
		}
	}
	if holders != 1 {
		t.Fatalf("%d shards hold the UE, want exactly 1", holders)
	}
	got, ok := d.LookupUE("contested")
	if !ok {
		t.Fatal("dispatcher lost the UE")
	}
	if got.BS != bsA && got.BS != bsB {
		t.Fatalf("UE at unexpected station %d", got.BS)
	}
	if owner, _ := d.Ring().Owner(got.BS); d.Shard(owner) != heldBy {
		t.Fatalf("UE at station %d but held by shard %d", got.BS, heldBy.ID)
	}
	if loc, err := d.ResolveLocIP(ue.PermIP); err != nil || loc != got.LocIP {
		t.Fatalf("directory out of sync: ResolveLocIP = %s, %v; UE.LocIP = %s", loc, err, got.LocIP)
	}
}
