package shard

import (
	"fmt"
	"testing"

	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

// newTestDispatcher builds a dispatcher over a small generated network
// (K=2, ClusterSize=10 → 20 base stations) running the Table 1 policy.
func newTestDispatcher(t testing.TB, shards int) (*Dispatcher, *topo.Generated) {
	t.Helper()
	g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 10, MBTypes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, g
}

// allowClauses lists the policy's allow-clause ids (the ones with paths).
func allowClauses(t testing.TB, d *Dispatcher) []int {
	t.Helper()
	pol := d.cfg.Policy
	var out []int
	for id := 0; id < pol.Len(); id++ {
		cl, _ := pol.Clause(id)
		if cl.Action.Allow {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		t.Fatal("policy has no allow clauses")
	}
	return out
}

// twoShardStations finds two stations owned by different shards.
func twoShardStations(t testing.TB, d *Dispatcher, g *topo.Generated) (a, b packet.BSID) {
	t.Helper()
	ring := d.Ring()
	first, _ := ring.Owner(g.Stations[0].ID)
	for _, st := range g.Stations[1:] {
		if owner, _ := ring.Owner(st.ID); owner != first {
			return g.Stations[0].ID, st.ID
		}
	}
	t.Skip("ring placed every station on one shard")
	return 0, 0
}

func TestSubPoolCarvesDisjointBlocks(t *testing.T) {
	pool := packet.NewPrefix(packet.AddrFrom4(100, 64, 0, 0), 10)
	const n = 4
	var pools []packet.Prefix
	for i := 0; i < n; i++ {
		p, err := subPool(pool, i, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len != pool.Len+2 {
			t.Fatalf("sub-pool %d length = /%d, want /%d", i, p.Len, pool.Len+2)
		}
		if !pool.Contains(p.Addr) {
			t.Fatalf("sub-pool %d (%s) escapes parent %s", i, p, pool)
		}
		for j, q := range pools {
			if p.Contains(q.Addr) || q.Contains(p.Addr) {
				t.Fatalf("sub-pools %d (%s) and %d (%s) overlap", i, p, j, q)
			}
		}
		pools = append(pools, p)
	}
	// A pool with no room left must be refused, not silently shared.
	tiny := packet.NewPrefix(packet.AddrFrom4(10, 0, 0, 0), 30)
	if _, err := subPool(tiny, 0, 4); err == nil {
		t.Fatal("subPool accepted a /30 for 4 shards")
	}
}

func TestDispatcherServesPathsWithPartitionedTags(t *testing.T) {
	const shards = 4
	d, g := newTestDispatcher(t, shards)
	clauses := allowClauses(t, d)
	ring := d.Ring()
	requests := 0
	for _, st := range g.Stations {
		owner, _ := ring.Owner(st.ID)
		for _, cl := range clauses {
			tag, err := d.RequestPath(st.ID, cl)
			if err != nil {
				t.Fatalf("RequestPath(%d, %d): %v", st.ID, cl, err)
			}
			if tag == 0 {
				t.Fatalf("RequestPath(%d, %d) returned the ask-controller tag", st.ID, cl)
			}
			// Each shard allocates from its own residue class, so a tag
			// proves which shard minted it.
			if int(tag)%shards != owner {
				t.Fatalf("station %d owned by shard %d got tag %d (residue %d)",
					st.ID, owner, tag, int(tag)%shards)
			}
			requests++
		}
	}
	total := uint64(0)
	for id, served := range d.Served() {
		if served > 0 && !ring.Has(id) {
			t.Fatalf("dead shard %d served requests", id)
		}
		total += served
	}
	if total != uint64(requests) {
		t.Fatalf("shards served %d requests, want %d", total, requests)
	}
}

func TestDispatcherAttachResolveDetach(t *testing.T) {
	d, g := newTestDispatcher(t, 3)
	if err := d.RegisterSubscriber("imsi-1", policy.Attributes{Provider: "A", Plan: "gold"}); err != nil {
		t.Fatal(err)
	}
	bs := g.Stations[0].ID
	ue, cls, err := d.Attach("imsi-1", bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) == 0 {
		t.Fatal("attach returned no classifiers")
	}
	got, ok := d.LookupUE("imsi-1")
	if !ok || got.BS != bs || got.LocIP != ue.LocIP {
		t.Fatalf("LookupUE = %+v, %v", got, ok)
	}
	loc, err := d.ResolveLocIP(ue.PermIP)
	if err != nil || loc != ue.LocIP {
		t.Fatalf("ResolveLocIP = %s, %v; want %s", loc, err, ue.LocIP)
	}
	if err := d.Detach("imsi-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ResolveLocIP(ue.PermIP); err == nil {
		t.Fatal("resolved a detached UE")
	}
}

func TestAttachOnAnotherShardMigratesRecord(t *testing.T) {
	d, g := newTestDispatcher(t, 4)
	bsA, bsB := twoShardStations(t, d, g)
	if err := d.RegisterSubscriber("roamer", policy.Attributes{Provider: "B"}); err != nil {
		t.Fatal(err)
	}
	first, _, err := d.Attach("roamer", bsA)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := d.Attach("roamer", bsB)
	if err != nil {
		t.Fatal(err)
	}
	if second.PermIP != first.PermIP {
		t.Fatalf("permanent IP changed across shards: %s -> %s", first.PermIP, second.PermIP)
	}
	srcShard, _ := d.ShardOf(bsA)
	if _, ok := srcShard.Ctrl.LookupUE("roamer"); ok {
		t.Fatal("source shard still holds the migrated record")
	}
	if loc, err := d.ResolveLocIP(first.PermIP); err != nil || loc != second.LocIP {
		t.Fatalf("ResolveLocIP after migration = %s, %v; want %s", loc, err, second.LocIP)
	}
}

func TestDispatcherSingleShardMatchesUnsharded(t *testing.T) {
	d, g := newTestDispatcher(t, 1)
	clauses := allowClauses(t, d)
	for _, st := range g.Stations[:4] {
		for _, cl := range clauses {
			if tag, err := d.RequestPath(st.ID, cl); err != nil || tag == 0 {
				t.Fatalf("RequestPath(%d, %d) = %d, %v", st.ID, cl, tag, err)
			}
		}
	}
	if err := d.RegisterSubscriber("solo", policy.Attributes{Provider: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Attach("solo", g.Stations[0].ID); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config with no topology")
	}
	g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 2, MBTypes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Topology: g.Topology, Gateway: g.GatewayID}); err == nil {
		t.Fatal("New accepted a config with no policy")
	}
}

func ExampleRing_Owner() {
	r := NewRing(DefaultVNodes, 0, 1)
	owner, _ := r.Owner(7)
	fmt.Println(owner >= 0 && owner <= 1)
	// Output: true
}
