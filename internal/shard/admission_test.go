package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/topo"
)

// fakeClock is an injectable monotonic clock for the buckets and breaker.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64       { return c.ns }
func (c *fakeClock) advance(ns int64) { c.ns += ns }

func newTestAdmission(cfg Admission, reg *obs.Registry) *admission {
	return newAdmission(cfg, newAdmObs(reg, 0))
}

func TestShedByClass(t *testing.T) {
	reg := obs.New()
	adm := newTestAdmission(Admission{
		ShedBearer: 0.5, ShedAttach: 0.75, ShedHandoff: 0.9,
	}, reg)
	const capacity = 100
	cases := []struct {
		depth                   int
		bearer, attach, handoff bool // expect shed?
	}{
		{depth: 10},
		{depth: 60, bearer: true},
		{depth: 80, bearer: true, attach: true},
		{depth: 95, bearer: true, attach: true, handoff: true},
	}
	for _, tc := range cases {
		for _, op := range []struct {
			kind opKind
			shed bool
		}{
			{opPath, tc.bearer}, {opAttach, tc.attach}, {opHandoff, tc.handoff},
		} {
			err := adm.admit(op.kind, 1, tc.depth, capacity)
			if shed := errors.Is(err, ErrOverload); shed != op.shed {
				t.Errorf("depth %d, %s: shed=%v, want %v (err=%v)",
					tc.depth, classOf(op.kind), shed, op.shed, err)
			}
		}
		// Protected protocol internals are never shed, even at full queue.
		for _, k := range []opKind{opExtract, opAdopt, opAbsorb, opRecover, opView} {
			if err := adm.admit(k, 1, capacity, capacity); err != nil {
				t.Errorf("protected op %d shed at full queue: %v", k, err)
			}
		}
	}
	for name, want := range map[string]uint64{
		"shard.0.admission.shed.bearer":  3,
		"shard.0.admission.shed.attach":  2,
		"shard.0.admission.shed.handoff": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestAgentTokenBucket(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.New()
	adm := newTestAdmission(Admission{AgentRate: 10, AgentBurst: 2, Now: clk.now}, reg)
	take := func() error { return adm.admit(opPath, 7, 0, 100) }
	if err := take(); err != nil {
		t.Fatal(err)
	}
	if err := take(); err != nil {
		t.Fatal(err)
	}
	if err := take(); !errors.Is(err, ErrThrottled) {
		t.Fatalf("burst exhausted, err = %v, want ErrThrottled", err)
	}
	clk.advance(100_000_000) // 100ms at 10/s refills exactly one token
	if err := take(); err != nil {
		t.Fatal(err)
	}
	if err := take(); !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", err)
	}
	// Another station has its own bucket.
	if err := adm.admit(opPath, 8, 0, 100); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("shard.0.admission.throttled").Value(); got != 2 {
		t.Fatalf("throttled = %d, want 2", got)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.New()
	adm := newTestAdmission(Admission{
		BreakerFailures: 3, BreakerCooldown: 1_000_000, Now: clk.now,
	}, reg)
	admit := func() error { return adm.admit(opPath, 1, 0, 100) }
	// Two failures, then a success: the consecutive count resets.
	adm.result(ErrShardDown, false)
	adm.result(ErrShardDown, false)
	adm.result(nil, false)
	if err := admit(); err != nil {
		t.Fatalf("breaker tripped early: %v", err)
	}
	// Three consecutive infrastructure failures trip it.
	for i := 0; i < 3; i++ {
		adm.result(ErrShardDown, false)
	}
	if err := admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	// After the cooldown exactly one probe passes; others still fail fast.
	clk.advance(1_000_000)
	if err := admit(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second probe admitted during half-open: %v", err)
	}
	// A failed probe re-opens; a successful one closes.
	adm.result(ErrShardDown, false)
	if err := admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("failed probe should re-open the breaker")
	}
	clk.advance(1_000_000)
	if err := admit(); err != nil {
		t.Fatal(err)
	}
	adm.result(nil, false)
	if err := admit(); err != nil {
		t.Fatalf("successful probe should close the breaker: %v", err)
	}
	if got := reg.Counter("shard.0.breaker.trips").Value(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	if got := reg.Gauge("shard.0.breaker.state").Value(); got != int64(breakerClosed) {
		t.Fatalf("state gauge = %d, want closed", got)
	}
	// Protected results never feed the breaker.
	for i := 0; i < 10; i++ {
		adm.result(ErrShardDown, true)
	}
	if err := admit(); err != nil {
		t.Fatalf("protected failures tripped the breaker: %v", err)
	}
}

// TestFloodThroughTrippedBreaker is the -race overload scenario: a shard
// dies mid-flood (tripping its breaker), concurrent mixed-class requests
// keep hammering both partitions, and afterwards (a) every shed/refused
// request carries a typed admission error, (b) shed counters by class add
// up to exactly the refusals the callers saw, and (c) a cross-shard
// two-phase handoff still completes — protected protocol internals are
// never dropped mid-protocol.
func TestFloodThroughTrippedBreaker(t *testing.T) {
	g, err := topo.Generate(topo.GenParams{K: 2, ClusterSize: 10, MBTypes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	d, err := New(Config{
		Topology: g.Topology,
		Gateway:  g.GatewayID,
		Policy:   policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 1, policy.MBEchoCancel: 2,
		},
		Shards:   2,
		QueueLen: 8, // small queue so occupancy shedding actually engages
		Admission: Admission{
			ShedBearer: 0.5, ShedAttach: 0.75, ShedHandoff: 0.95,
			BreakerFailures: 4, BreakerCooldown: 1 << 60, // stays open once tripped
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	bsA, bsB := twoShardStations(t, d, g)
	clauses := allowClauses(t, d)

	// Seed subscribers; one UE per worker for attach/handoff traffic.
	const workers = 8
	for i := 0; i < workers; i++ {
		imsi := fmt.Sprintf("imsi-%d", i)
		if err := d.RegisterSubscriber(imsi, policy.Attributes{Provider: "p", DeviceType: "phone"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := d.Attach(imsi, bsA); err != nil {
			t.Fatal(err)
		}
	}

	victim, err := d.ShardOf(bsB)
	if err != nil {
		t.Fatal(err)
	}
	var refused [numClasses]uint64
	var refMu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			imsi := fmt.Sprintf("imsi-%d", i)
			var mine [numClasses]uint64
			for n := 0; n < 200; n++ {
				bs := bsA
				if n%2 == 1 {
					bs = bsB
				}
				var err error
				var class Class
				switch n % 3 {
				case 0:
					class = ClassBearer
					_, err = d.RequestPath(bs, clauses[n%len(clauses)])
				case 1:
					class = ClassHandoff
					_, err = d.Handoff(imsi, bs)
				default:
					class = ClassAttach
					_, _, err = d.Attach(imsi, bs)
				}
				if errors.Is(err, ErrOverload) || errors.Is(err, ErrThrottled) {
					mine[class]++
				}
				// Other errors are healthy policy answers ("already at
				// base station N") or the dead-shard window
				// (ErrShardDown/ErrCircuitOpen surfacing through retries).
				if n == 50 && i == 0 {
					if _, ferr := d.FailShard(victim.ID, nil); ferr != nil {
						t.Errorf("failover: %v", ferr)
					}
				}
			}
			refMu.Lock()
			for c, v := range mine {
				refused[c] += v
			}
			refMu.Unlock()
		}(i)
	}
	close(start)
	wg.Wait()

	if !victim.BreakerOpen() {
		t.Error("failed shard's breaker should be open")
	}
	// Shed counters must account exactly for the typed refusals callers saw.
	var counted [numClasses]uint64
	for _, id := range []int{0, 1} {
		for c, name := range map[Class]string{
			ClassBearer:  fmt.Sprintf("shard.%d.admission.shed.bearer", id),
			ClassAttach:  fmt.Sprintf("shard.%d.admission.shed.attach", id),
			ClassHandoff: fmt.Sprintf("shard.%d.admission.shed.handoff", id),
		} {
			counted[c] += reg.Counter(name).Value()
		}
	}
	for c := Class(0); c < numClasses; c++ {
		if counted[c] != refused[c] {
			t.Errorf("%s: shed counter = %d, callers saw %d", c, counted[c], refused[c])
		}
	}
	// The survivors still run the full two-phase cross-shard machinery:
	// a fresh attach at the rehashed station and a handoff back complete.
	if err := d.RegisterSubscriber("imsi-final", policy.Attributes{Provider: "p", DeviceType: "phone"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Attach("imsi-final", bsB); err != nil {
		t.Fatalf("post-failover attach: %v", err)
	}
	if _, err := d.Handoff("imsi-final", bsA); err != nil {
		t.Fatalf("post-failover handoff: %v", err)
	}
	if ue, ok := d.LookupUE("imsi-final"); !ok || ue.BS != bsA {
		t.Fatalf("handoff lost the UE mid-protocol: %+v ok=%v", ue, ok)
	}
}
