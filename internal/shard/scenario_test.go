package shard

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/sim"
)

// TestScenarioCrossShardHandover drives the sharded control plane from the
// deterministic sim kernel: a UE attaches, its traffic resolves policy
// paths on a tick, it hands over across a shard boundary mid-run, and the
// same clauses keep resolving afterwards — the paper's policy-consistency
// requirement, here across shards.
func TestScenarioCrossShardHandover(t *testing.T) {
	const shards = 4
	d, g := newTestDispatcher(t, shards)
	bsA, bsB := twoShardStations(t, d, g)
	if err := d.RegisterSubscriber("walker", policy.Attributes{Provider: "A", Plan: "silver"}); err != nil {
		t.Fatal(err)
	}

	k := sim.NewKernel(42)
	var (
		ue          packet.Addr // permanent IP, fixed at attach
		clauses     []int
		resolves    int
		preHandoff  int
		postHandoff int
		handedOver  bool
	)

	if _, err := k.At(0, func() {
		u, cls, err := d.Attach("walker", bsA)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		ue = u.PermIP
		for _, c := range cls {
			clauses = append(clauses, c.Clause)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Every 10ms of virtual time the UE's traffic shows up: the agent
	// resolves the LocIP and asks for each clause's path.
	if _, err := k.Every(sim.Time(10*time.Millisecond), func() bool {
		loc, err := d.ResolveLocIP(ue)
		if err != nil || loc == 0 {
			t.Errorf("t=%v: resolve: %v", k.Now(), err)
			return false
		}
		got, _ := d.LookupUE("walker")
		wantBS := bsA
		if handedOver {
			wantBS = bsB
		}
		if got.BS != wantBS || got.LocIP != loc {
			t.Errorf("t=%v: UE at %d/%s, want %d/%s", k.Now(), got.BS, got.LocIP, wantBS, loc)
			return false
		}
		owner, _ := d.Ring().Owner(got.BS)
		for _, cl := range clauses {
			tag, err := d.RequestPath(got.BS, cl)
			if err != nil {
				t.Errorf("t=%v: path for clause %d: %v", k.Now(), cl, err)
				return false
			}
			if tag == 0 || int(tag)%shards != owner {
				t.Errorf("t=%v: clause %d tag %d not from shard %d", k.Now(), cl, tag, owner)
				return false
			}
			resolves++
		}
		if handedOver {
			postHandoff++
		} else {
			preHandoff++
		}
		return k.Now() < sim.Time(200*time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}

	// Mid-run, the UE walks across the shard boundary.
	if _, err := k.At(sim.Time(95*time.Millisecond), func() {
		hr, err := d.Handoff("walker", bsB)
		if err != nil {
			t.Errorf("handover: %v", err)
			return
		}
		if hr.UE.PermIP != ue {
			t.Errorf("handover changed the permanent IP: %s -> %s", ue, hr.UE.PermIP)
		}
		handedOver = true
	}); err != nil {
		t.Fatal(err)
	}

	k.Run()
	if !handedOver {
		t.Fatal("scenario never handed over")
	}
	if preHandoff == 0 || postHandoff == 0 {
		t.Fatalf("traffic ticks: %d before, %d after handover — need both", preHandoff, postHandoff)
	}
	if resolves < (preHandoff+postHandoff)*len(clauses) {
		t.Fatalf("resolved %d paths over %d ticks", resolves, preHandoff+postHandoff)
	}
}
