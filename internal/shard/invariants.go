package shard

import (
	"fmt"
	"sort"

	"repro/internal/packet"
)

// InvariantReport aggregates a cross-shard CheckInvariants pass.
type InvariantReport struct {
	Shards       int // live shards checked
	Paths        int // installed policy paths across live shards
	Rules        int // net TCAM rules across live shards
	Attached     int // UEs with live location state
	Reservations int // in-flight handoff reservations
}

// CheckInvariants verifies the sharded control plane: every live shard's
// controller passes its own CheckInvariants, and on top of that the
// cross-shard sub-space properties the partition is supposed to guarantee:
//
//   - tag disjointness: no tag is installed by two live shards (the
//     TagOffset/TagStride residue classes really are disjoint);
//   - LocIP and permanent-IP uniqueness across live shards;
//   - record uniqueness: no UE's record is held by two live shards;
//   - station routing agreement: every station a live controller owns is
//     routed to that shard by the current ring;
//   - directory coherence: every UE-directory entry routed to a live shard
//     finds the record there (no orphaned forwarding stubs after two-phase
//     handoff), and every live record is reachable through the directory.
//
// Per-shard checks are internally synchronised; the cross-shard comparison
// reads shard snapshots one at a time, so callers that want an exact global
// cut (the chaos harness, tests) must quiesce concurrent mutation first.
func (d *Dispatcher) CheckInvariants() (InvariantReport, error) {
	var rep InvariantReport
	ring := d.Ring()

	type holder struct {
		shard int
		imsi  string
	}
	locs := make(map[packet.Addr]holder)
	perms := make(map[packet.Addr]holder)
	tags := make(map[packet.Tag]int)
	records := make(map[string]int) // IMSI -> live shard holding its record

	for _, s := range d.shards {
		if s.Down() {
			continue
		}
		rep.Shards++
		crep, err := s.Ctrl.CheckInvariants()
		if err != nil {
			return rep, fmt.Errorf("shard %d: %w", s.ID, err)
		}
		rep.Paths += crep.Paths
		rep.Rules += crep.Rules
		rep.Attached += crep.Attached
		rep.Reservations += crep.Reservations
		for _, t := range crep.Tags {
			if other, dup := tags[t]; dup && other != s.ID {
				return rep, fmt.Errorf("shard: tag %d installed by shards %d and %d (residue partition violated)", t, other, s.ID)
			}
			tags[t] = s.ID
		}
		for _, bs := range s.Ctrl.Stations() {
			owner, ok := ring.Owner(bs)
			if !ok || owner != s.ID {
				return rep, fmt.Errorf("shard: station %d owned by shard %d's controller but ring routes it to %d", bs, s.ID, owner)
			}
		}
		for _, ue := range s.Ctrl.UEs() {
			if prev, dup := records[ue.IMSI]; dup {
				return rep, fmt.Errorf("shard: UE %q held by shards %d and %d", ue.IMSI, prev, s.ID)
			}
			records[ue.IMSI] = s.ID
			if prev, dup := perms[ue.PermIP]; dup {
				return rep, fmt.Errorf("shard: permanent address %s serves UE %q (shard %d) and UE %q (shard %d)",
					ue.PermIP, prev.imsi, prev.shard, ue.IMSI, s.ID)
			}
			perms[ue.PermIP] = holder{s.ID, ue.IMSI}
			if ue.LocIP != 0 {
				if prev, dup := locs[ue.LocIP]; dup {
					return rep, fmt.Errorf("shard: location address %s serves UE %q (shard %d) and UE %q (shard %d)",
						ue.LocIP, prev.imsi, prev.shard, ue.IMSI, s.ID)
				}
				locs[ue.LocIP] = holder{s.ID, ue.IMSI}
			}
		}
	}

	// UE directory: snapshot under the dispatcher lock, then resolve each
	// entry through its own stub lock (the documented order).
	imsis, byPerm := d.directorySnapshot()
	unclaimed := make(map[string]int, len(records))
	for imsi, sid := range records {
		unclaimed[imsi] = sid
	}
	for _, imsi := range imsis {
		e, ok := d.lookupEntry(imsi)
		if !ok {
			continue
		}
		e.mu.Lock()
		s := e.shard
		e.mu.Unlock()
		if s == nil || s.Down() {
			// Never attached, or stranded on a dead shard (a detached record
			// failover had nothing to salvage; it re-attaches from scratch).
			continue
		}
		held, dup := records[imsi]
		if !dup {
			return rep, fmt.Errorf("shard: directory routes UE %q to shard %d, which has no record of it (orphaned stub)", imsi, s.ID)
		}
		if held != s.ID {
			return rep, fmt.Errorf("shard: directory routes UE %q to shard %d but its record is on shard %d", imsi, s.ID, held)
		}
		delete(unclaimed, imsi)
	}
	if len(unclaimed) > 0 {
		leftover := make([]string, 0, len(unclaimed))
		for imsi := range unclaimed {
			leftover = append(leftover, imsi)
		}
		sort.Strings(leftover)
		return rep, fmt.Errorf("shard: UE %q held by shard %d but unreachable through the directory", leftover[0], unclaimed[leftover[0]])
	}
	for perm, imsi := range byPerm {
		h, live := perms[perm]
		if !live {
			continue // record on a dead shard; the stale pointer resolves to nothing
		}
		if h.imsi != imsi {
			return rep, fmt.Errorf("shard: dispatcher maps permanent address %s to UE %q but shard %d holds it for %q", perm, imsi, h.shard, h.imsi)
		}
	}

	return rep, nil
}

// directorySnapshot copies the UE directory's key sets under the dispatcher
// lock, so the caller can resolve entries afterwards without holding it.
func (d *Dispatcher) directorySnapshot() ([]string, map[packet.Addr]string) {
	d.mu.RLock()
	imsis := make([]string, 0, len(d.ues))
	for imsi := range d.ues {
		imsis = append(imsis, imsi)
	}
	byPerm := make(map[packet.Addr]string, len(d.byPerm))
	for p, imsi := range d.byPerm {
		byPerm[p] = imsi
	}
	d.mu.RUnlock()
	sort.Strings(imsis)
	return imsis, byPerm
}
