package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
)

// Handoff moves a UE to a new base station. Within one shard this is the
// controller's own §5.1 handoff (old LocIP reserved, shortcuts installed).
// Across a shard boundary it is a two-phase migration:
//
//  1. freeze-on-source: the source shard extracts the UE's record, tearing
//     down its location state and old-LocIP reservations (the shortcut
//     state lives in the source shard's switches only);
//  2. install-on-target: the target shard adopts the record, allocating a
//     LocIP from its own sub-pool and compiling classifiers against its
//     own path table — the UE's policy paths resolve again immediately,
//     now with tags from the target's partition.
//
// For the whole migration the UE's directory entry is held locked: it is
// the forwarding stub. In-flight UE-keyed requests that arrive mid-move
// block on the entry and, once the move commits, follow the updated
// pointer to the target shard; concurrent handoffs of the same UE
// serialise the same way, so exactly one ordering wins.
func (d *Dispatcher) Handoff(imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	sp := d.obs.spHandoff.Root()
	hr, err := d.handoff(sp.Context(), imsi, newBS)
	sp.End()
	return hr, err
}

// HandoffCtx is Handoff continuing the caller's trace (wire-originated
// moves join their frame's span context here).
func (d *Dispatcher) HandoffCtx(sc obs.SpanContext, imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	sp := d.obs.spHandoff.Start(sc)
	hr, err := d.handoff(sp.Context(), imsi, newBS)
	sp.End()
	return hr, err
}

func (d *Dispatcher) handoff(sc obs.SpanContext, imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	target, err := d.ShardOf(newBS)
	if err != nil {
		return core.HandoffResult{}, err
	}
	e, ok := d.lookupEntry(imsi)
	if !ok {
		return core.HandoffResult{}, fmt.Errorf("shard: UE %q is not attached", imsi)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	src := e.shard
	if src == nil {
		return core.HandoffResult{}, fmt.Errorf("shard: UE %q is not attached", imsi)
	}
	if src == target {
		w := getWork(opHandoff)
		w.imsi, w.bs = imsi, newBS
		w.sc = sc
		src.do(w)
		hr, err := w.hr, w.err
		putWork(w)
		if err == nil {
			d.obs.localDone.Inc()
		}
		return hr, err
	}

	// Cross-shard: freeze on the source...
	start := d.obs.reg.Now()
	mig, err := d.extract(sc, src, imsi)
	if err != nil {
		return core.HandoffResult{}, err
	}
	if mig.OldLocIP == 0 {
		// The record existed but was detached; put it back where it can
		// re-attach and report the usual error.
		if _, _, aerr := d.adopt(obs.SpanContext{}, src, mig, mig.OldBS); aerr == nil {
			//lint:ignore errdrop best-effort rollback; the attach error below is the one reported
			_ = d.detachOn(src, imsi)
		}
		return core.HandoffResult{}, fmt.Errorf("shard: UE %q is not attached", imsi)
	}
	// ...install on the target.
	ue, cls, err := d.adopt(sc, target, mig, newBS)
	if err != nil {
		// Roll the record back onto the source so the UE is not lost.
		if _, _, rerr := d.adopt(obs.SpanContext{}, src, mig, mig.OldBS); rerr != nil {
			return core.HandoffResult{}, fmt.Errorf("shard: cross-shard handoff failed (%v) and rollback failed: %w", err, rerr)
		}
		return core.HandoffResult{}, err
	}
	e.shard = target
	d.obs.crossDone.Inc()
	d.obs.crossLat.Observe(d.obs.reg.Now() - start)
	return core.HandoffResult{
		UE:       ue,
		OldBS:    mig.OldBS,
		OldLocIP: mig.OldLocIP,
		// Classifiers come from the target shard; no Shortcuts: the old
		// LocIP's state was torn down with the source extraction, so old
		// flows re-resolve through the new classifiers instead of riding a
		// temporary shortcut (a cross-shard soft handoff would need
		// cross-shard FIB writes, which shards by design never do).
		Classifiers: cls,
	}, nil
}

// detachOn releases a UE's location state on a specific shard (rollback
// helper; the caller holds the UE's entry lock).
func (d *Dispatcher) detachOn(s *Shard, imsi string) error {
	w := getWork(opDetach)
	w.imsi = imsi
	s.do(w)
	err := w.err
	putWork(w)
	return err
}
