// Package shard partitions the SoftCell control plane into parallel
// controller shards. A consistent-hash Ring maps every base station to one
// shard; each Shard wraps a core.Controller restricted to its stations
// (which, because LocIPs embed the base-station ID, also gives it a
// disjoint LocIP sub-pool), a disjoint permanent-address sub-block, and a
// disjoint tag-space residue class. A Dispatcher fronts the shards with
// per-shard bounded work queues drained in batches by worker goroutines,
// so N shards serve requests with no shared lock on the hot path.
//
// Cross-shard concerns are explicit: handoff.go migrates a UE between
// shards in two phases (freeze-on-source, install-on-target) behind a
// per-UE forwarding stub, and failover.go rebuilds a dead shard's UE state
// on the survivors from its replicated store plus live agents' location
// reports, rehashing its stations across the ring.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/packet"
)

// Ring is an immutable consistent-hash ring with virtual nodes: each shard
// contributes vnodes points, and a base station is owned by the shard whose
// point follows the station's hash clockwise. With/Without derive new
// rings, so a ring value can be shared lock-free (the dispatcher publishes
// snapshots through an atomic pointer).
type Ring struct {
	vnodes int
	shards []int   // live shard ids, sorted
	points []point // sorted by hash
}

type point struct {
	hash  uint64
	shard int
}

// DefaultVNodes balances ownership well for hundreds-to-thousands of
// stations without making ring construction noticeable.
const DefaultVNodes = 128

// mix64 is fmix64 from MurmurHash3 — the same finaliser packet.FlowKey
// uses; it is a strong enough point spreader for ring placement.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func vnodeHash(shard, vnode int) uint64 {
	return mix64(uint64(shard+1)*0x9e3779b97f4a7c15 + uint64(vnode))
}

func bsHash(bs packet.BSID) uint64 {
	return mix64(uint64(bs) + 0x5c17c0de) // salted so BSIDs don't collide with vnode inputs
}

// NewRing builds a ring over the given shard ids. vnodes <= 0 selects
// DefaultVNodes.
func NewRing(vnodes int, shards ...int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, s := range shards {
		r.shards = append(r.shards, s)
	}
	sort.Ints(r.shards)
	r.points = make([]point, 0, vnodes*len(r.shards))
	for _, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{vnodeHash(s, v), s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard // deterministic tie-break
	})
	return r
}

// Shards lists the live shard ids, sorted.
func (r *Ring) Shards() []int {
	return append([]int(nil), r.shards...)
}

// Len reports the number of live shards.
func (r *Ring) Len() int { return len(r.shards) }

// Has reports whether shard id is on the ring.
func (r *Ring) Has(id int) bool {
	i := sort.SearchInts(r.shards, id)
	return i < len(r.shards) && r.shards[i] == id
}

// Owner maps a base station to its owning shard. ok is false only on an
// empty ring.
func (r *Ring) Owner(bs packet.BSID) (int, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := bsHash(bs)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard, true
}

// With returns a new ring that additionally contains shard id.
func (r *Ring) With(id int) *Ring {
	if r.Has(id) {
		return r
	}
	return NewRing(r.vnodes, append(r.Shards(), id)...)
}

// Without returns a new ring with shard id removed.
func (r *Ring) Without(id int) *Ring {
	if !r.Has(id) {
		return r
	}
	keep := make([]int, 0, len(r.shards)-1)
	for _, s := range r.shards {
		if s != id {
			keep = append(keep, s)
		}
	}
	return NewRing(r.vnodes, keep...)
}

// Partition groups the given stations by owning shard.
func (r *Ring) Partition(stations []packet.BSID) (map[int][]packet.BSID, error) {
	out := make(map[int][]packet.BSID, len(r.shards))
	for _, bs := range stations {
		owner, ok := r.Owner(bs)
		if !ok {
			return nil, fmt.Errorf("shard: empty ring cannot own station %d", bs)
		}
		out[owner] = append(out[owner], bs)
	}
	return out, nil
}
