// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a priority event queue, and a seeded random source.
//
// All SoftCell workload and mobility simulations run on this kernel so that
// every experiment is reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration so callers can use the
// time package's constants (sim.Time(3 * time.Second)).
type Time int64

// Seconds reports the timestamp as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Fn runs when the clock reaches At.
type Event struct {
	At Time
	Fn func()

	seq   uint64 // tie-break so equal-time events run FIFO
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event loop. It is not safe for
// concurrent use; simulations that need concurrency partition work across
// kernels.
type Kernel struct {
	now   Time
	queue eventQueue
	seq   uint64
	seed  int64
	rng   *rand.Rand

	// Processed counts events executed so far.
	Processed uint64
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic random stream from the kernel
// seed and a name. Equal (seed, name) pairs always yield the same stream,
// and distinct names yield streams that stay independent regardless of how
// many draws either consumes — so one subsystem's extra draws can never
// perturb another subsystem's schedule. The kernel's own source (Rand) is
// untouched.
func (k *Kernel) Fork(name string) *rand.Rand {
	// FNV-1a over the name, mixed with the seed (splitmix64 finaliser).
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h += uint64(k.seed) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending reports the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) is an error: deterministic simulations must not time-travel.
func (k *Kernel) At(at Time, fn func()) (*Event, error) {
	if at < k.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", at, k.now)
	}
	e := &Event{At: at, Fn: fn, seq: k.seq}
	k.seq++
	heap.Push(&k.queue, e)
	return e, nil
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	//lint:ignore errdrop At cannot fail: now+d >= now
	e, _ := k.At(k.now+d, fn)
	return e
}

// Every schedules fn to run every interval, starting one interval from now,
// for as long as fn returns true. The returned event is the *next* pending
// occurrence only at scheduling time; use the stop-by-returning-false
// protocol (not Cancel) to end the series.
func (k *Kernel) Every(interval Time, fn func() bool) (*Event, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sim: Every interval %v must be positive", interval)
	}
	var tick func()
	tick = func() {
		if fn() {
			k.After(interval, tick)
		}
	}
	//lint:ignore errdrop At cannot fail: now+interval > now
	e, _ := k.At(k.now+interval, tick)
	return e, nil
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op that returns false.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&k.queue, e.index)
	e.index = -2
	return true
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	k.now = e.At
	k.Processed++
	e.Fn()
	return true
}

// RunUntil executes events until the clock would pass deadline or the queue
// drains. The clock is left at min(deadline, last event time).
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.queue) > 0 && k.queue[0].At <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Run drains the event queue completely.
func (k *Kernel) Run() {
	for k.Step() {
	}
}
