package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(Time(3*time.Second), func() { got = append(got, 3) })
	k.After(Time(1*time.Second), func() { got = append(got, 1) })
	k.After(Time(2*time.Second), func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != Time(3*time.Second) {
		t.Errorf("Now = %v, want 3s", k.Now())
	}
}

func TestKernelFIFOAtSameTime(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(Time(time.Second), func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestKernelSchedulePastRejected(t *testing.T) {
	k := NewKernel(1)
	k.After(Time(time.Second), func() {})
	k.Run()
	if _, err := k.At(0, func() {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.After(Time(time.Second), func() { fired = true })
	if !k.Cancel(e) {
		t.Fatal("first cancel should succeed")
	}
	if k.Cancel(e) {
		t.Fatal("second cancel should be a no-op")
	}
	if !e.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelCancelMiddleOfQueue(t *testing.T) {
	k := NewKernel(1)
	var got []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, k.After(Time(i)*Time(time.Second), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		k.Cancel(events[i])
	}
	k.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("got %d events, want 13", len(got))
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(Time(1*time.Second), func() { fired++ })
	k.After(Time(5*time.Second), func() { fired++ })
	k.RunUntil(Time(2 * time.Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(2*time.Second) {
		t.Fatalf("Now = %v, want 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewKernel(42), NewKernel(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed should give same stream")
		}
	}
}

// Property: executing a random batch of events always yields a
// non-decreasing sequence of event timestamps.
func TestEventsFireInTimeOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(7)
		var fired []Time
		for _, d := range delays {
			k.After(Time(d)*Time(time.Millisecond), func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 50 {
			k.After(Time(time.Millisecond), grow)
		}
	}
	k.After(0, grow)
	k.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if k.Processed != 50 {
		t.Fatalf("Processed = %d, want 50", k.Processed)
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel(1)
	var at []Time
	if _, err := k.Every(Time(10*time.Millisecond), func() bool {
		at = append(at, k.Now())
		return len(at) < 5
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(at) != 5 {
		t.Fatalf("fired %d times, want 5", len(at))
	}
	for i, got := range at {
		want := Time((i + 1) * 10 * int(time.Millisecond))
		if got != want {
			t.Fatalf("tick %d at %v, want %v", i, got, want)
		}
	}
	if _, err := k.Every(0, func() bool { return false }); err == nil {
		t.Fatal("Every accepted a zero interval")
	}
}
