package routing

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/topo"
)

// testNet builds a small line network:
//
//	as0(bs0) - agg0 - core0 - gw
//	as1(bs1) - agg0
//	mb type 0: inst on agg0 and on core0; mb type 1: inst on core0.
type testNet struct {
	*topo.Topology
	as0, as1, agg0, core0, gw topo.NodeID
	fwAgg, fwCore, tcCore     topo.MBInstanceID
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	n := &testNet{Topology: topo.New()}
	n.as0 = n.AddNode(topo.Access, "as0")
	n.as1 = n.AddNode(topo.Access, "as1")
	n.agg0 = n.AddNode(topo.Agg, "agg0")
	n.core0 = n.AddNode(topo.Core, "core0")
	n.gw = n.AddNode(topo.Gateway, "gw")
	for _, l := range [][2]topo.NodeID{{n.as0, n.agg0}, {n.as1, n.agg0}, {n.agg0, n.core0}, {n.core0, n.gw}} {
		if err := n.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddBaseStation(0, n.as0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddBaseStation(1, n.as1); err != nil {
		t.Fatal(err)
	}
	var err error
	if n.fwAgg, err = n.AttachMiddlebox(0, n.agg0); err != nil {
		t.Fatal(err)
	}
	if n.fwCore, err = n.AttachMiddlebox(0, n.core0); err != nil {
		t.Fatal(err)
	}
	if n.tcCore, err = n.AttachMiddlebox(1, n.core0); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPlanNoChain(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	p, err := pl.Plan(0, nil, n.gw)
	if err != nil {
		t.Fatal(err)
	}
	want := []topo.NodeID{n.gw, n.core0, n.agg0, n.as0}
	if len(p.Switches) != len(want) {
		t.Fatalf("path = %v, want %v", p.Switches, want)
	}
	for i := range want {
		if p.Switches[i] != want[i] {
			t.Fatalf("path = %v, want %v", p.Switches, want)
		}
		if p.MBAt[i] != NoMB {
			t.Fatalf("unexpected middlebox at %d", i)
		}
	}
	if p.Gateway() != n.gw || p.Access() != n.as0 || p.Origin != 0 {
		t.Fatal("endpoints wrong")
	}
}

func TestPlanNearestInstance(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	// Both type-0 instances give the same total path length from the
	// gateway to bs0; the tie breaks toward the instance closer to the UE,
	// which is the one on agg0.
	p, err := pl.Plan(0, []topo.MBType{0}, n.gw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chain) != 1 || p.Chain[0] != n.fwAgg {
		t.Fatalf("chain = %v, want [%d]", p.Chain, n.fwAgg)
	}
	// The middlebox is marked at agg0's position.
	found := false
	for i, sw := range p.Switches {
		if p.MBAt[i] == n.fwAgg {
			if sw != n.agg0 {
				t.Fatalf("mb marked at switch %d, want %d", sw, n.agg0)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("middlebox not marked on path")
	}
}

func TestPlanChainOrder(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	p, err := pl.Plan(1, []topo.MBType{0, 1}, n.gw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chain) != 2 {
		t.Fatalf("chain = %v", p.Chain)
	}
	if p.Chain[0] != n.fwAgg || p.Chain[1] != n.tcCore {
		t.Fatalf("chain = %v, want [%d %d]", p.Chain, n.fwAgg, n.tcCore)
	}
	if p.Access() != n.as1 {
		t.Fatal("wrong access end")
	}
}

func TestPlanErrors(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	if _, err := pl.Plan(99, nil, n.gw); err == nil {
		t.Error("unknown base station should fail")
	}
	if _, err := pl.Plan(0, []topo.MBType{7}, n.gw); err == nil {
		t.Error("missing middlebox type should fail")
	}
}

func TestPlanDisconnected(t *testing.T) {
	tp := topo.New()
	as := tp.AddNode(topo.Access, "as")
	gw := tp.AddNode(topo.Gateway, "gw") // not connected
	_ = tp.AddBaseStation(0, as)
	pl := NewPlanner(tp)
	if _, err := pl.Plan(0, nil, gw); err == nil {
		t.Fatal("disconnected should fail")
	}
}

func TestPlanInstancesPinned(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	// Pin the *aggregation* instance even though core0's is nearer to gw.
	p, err := pl.PlanInstances(0, []topo.MBInstanceID{n.fwAgg}, n.gw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chain) != 1 || p.Chain[0] != n.fwAgg {
		t.Fatalf("chain = %v", p.Chain)
	}
	if _, err := pl.PlanInstances(0, []topo.MBInstanceID{99}, n.gw); err == nil {
		t.Error("unknown instance should fail")
	}
	if _, err := pl.PlanInstances(77, nil, n.gw); err == nil {
		t.Error("unknown station should fail")
	}
}

func TestPathContiguity(t *testing.T) {
	// Every consecutive switch pair on a planned path must be adjacent.
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(g.Topology)
	for bs := packet.BSID(0); bs < 40; bs += 7 {
		p, err := pl.Plan(bs, []topo.MBType{0, 2, 1}, g.GatewayID)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < p.Len(); i++ {
			if g.Nodes[p.Switches[i-1]].PortTo(p.Switches[i]) < 0 {
				t.Fatalf("bs%d: switches %d and %d not adjacent in %v",
					bs, p.Switches[i-1], p.Switches[i], p.Switches)
			}
		}
		if p.Gateway() != g.GatewayID {
			t.Fatal("path must start at gateway")
		}
		st, _ := g.Station(bs)
		if p.Access() != st.Access {
			t.Fatal("path must end at the origin's access switch")
		}
		if len(p.Chain) != 3 {
			t.Fatalf("chain length = %d", len(p.Chain))
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	g, err := topo.Generate(topo.GenParams{K: 4, ClusterSize: 10, MBTypes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := NewPlanner(g.Topology)
	b := NewPlanner(g.Topology)
	pa, err := a.Plan(17, []topo.MBType{1, 3}, g.GatewayID)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Plan(17, []topo.MBType{1, 3}, g.GatewayID)
	if err != nil {
		t.Fatal(err)
	}
	if pa.String() != pb.String() {
		t.Fatalf("plans differ:\n%s\n%s", pa, pb)
	}
}

func TestRandomSelectorReachableOnly(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	pl.Selector = RandomSelector{T: n.Topology, Rng: rand.New(rand.NewSource(1))}
	seen := map[topo.MBInstanceID]bool{}
	for i := 0; i < 50; i++ {
		p, err := pl.Plan(0, []topo.MBType{0}, n.gw)
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Chain[0]] = true
	}
	if !seen[n.fwAgg] || !seen[n.fwCore] {
		t.Fatalf("random selector should use both instances, saw %v", seen)
	}
}

func TestChainKey(t *testing.T) {
	a := ChainKey(1, []topo.MBInstanceID{2, 3})
	b := ChainKey(1, []topo.MBInstanceID{3, 2})
	c := ChainKey(2, []topo.MBInstanceID{2, 3})
	if a == b || a == c {
		t.Fatalf("chain keys should be distinct: %q %q %q", a, b, c)
	}
	if a != ChainKey(1, []topo.MBInstanceID{2, 3}) {
		t.Fatal("chain key should be stable")
	}
}

func TestPathString(t *testing.T) {
	n := newTestNet(t)
	pl := NewPlanner(n.Topology)
	p, _ := pl.Plan(0, []topo.MBType{0}, n.gw)
	if p.String() == "" {
		t.Fatal("empty string")
	}
}
