// Package routing computes policy paths: concrete switch walks from the
// gateway to a base station's access switch through an ordered chain of
// middlebox instances. The controller (internal/core) turns these walks into
// aggregated forwarding rules.
//
// Instance selection follows §2.2: the policy names middlebox *functions*;
// the planner picks instances and network paths "that minimize latency and
// load".
package routing

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/packet"
	"repro/internal/topo"
)

// Path is a policy path in downstream orientation: Switches[0] is the
// gateway, Switches[len-1] the access switch of the origin base station.
// MBAt[i] names the middlebox instance traversed *at* Switches[i] after
// arrival (topo.MBInstanceID >= 0), or NoMB. A switch may appear several
// times when middlebox placement forces a loop.
type Path struct {
	Origin   packet.BSID
	Switches []topo.NodeID
	MBAt     []topo.MBInstanceID
	Chain    []topo.MBInstanceID // the instances in traversal order
}

// NoMB marks path positions without a middlebox.
const NoMB topo.MBInstanceID = -1

// Len reports the number of switch positions.
func (p *Path) Len() int { return len(p.Switches) }

// Gateway returns the path's gateway end.
func (p *Path) Gateway() topo.NodeID { return p.Switches[0] }

// Access returns the path's access end.
func (p *Path) Access() topo.NodeID { return p.Switches[len(p.Switches)-1] }

func (p *Path) String() string {
	s := fmt.Sprintf("bs%d:", p.Origin)
	for i, sw := range p.Switches {
		if i > 0 {
			s += "->"
		}
		s += fmt.Sprintf("%d", sw)
		if p.MBAt[i] != NoMB {
			s += fmt.Sprintf("(mb%d)", p.MBAt[i])
		}
	}
	return s
}

// Selector chooses a middlebox instance for the next chain position.
type Selector interface {
	// Select picks among candidates. dist(n) returns hops from the current
	// position to node n; distToUE(n) returns hops from n to the path's
	// destination access switch. Either oracle may report -1 (unreachable).
	Select(candidates []topo.MBInstanceID, from topo.NodeID, dist, distToUE func(topo.NodeID) int32) (topo.MBInstanceID, error)
}

// NearestSelector minimises the total detour dist(cur, instance) +
// dist(instance, UE), breaking ties toward the instance closer to the UE
// (the paper's motivation for in-network placement of transcoders and
// caches) and then toward the lowest instance ID. This is the
// latency-minimising default of §2.2.
type NearestSelector struct{ T *topo.Topology }

// Select implements Selector.
func (s NearestSelector) Select(cands []topo.MBInstanceID, from topo.NodeID, dist, distToUE func(topo.NodeID) int32) (topo.MBInstanceID, error) {
	best := NoMB
	var bestTotal, bestToUE int32 = -1, -1
	for _, id := range cands {
		at := s.T.Instance(id).Attached
		d, u := dist(at), distToUE(at)
		if d < 0 || u < 0 {
			continue
		}
		total := d + u
		better := best == NoMB || total < bestTotal ||
			(total == bestTotal && (u < bestToUE || (u == bestToUE && id < best)))
		if better {
			best, bestTotal, bestToUE = id, total, u
		}
	}
	if best == NoMB {
		return NoMB, fmt.Errorf("routing: no reachable instance among %v", cands)
	}
	return best, nil
}

// RandomSelector picks uniformly among reachable candidates — the paper's
// large-scale simulation uses randomly chosen instances (§6.3), and this is
// also the load-spreading alternative.
type RandomSelector struct {
	T   *topo.Topology
	Rng *rand.Rand
}

// Select implements Selector.
func (s RandomSelector) Select(cands []topo.MBInstanceID, from topo.NodeID, dist, distToUE func(topo.NodeID) int32) (topo.MBInstanceID, error) {
	reachable := make([]topo.MBInstanceID, 0, len(cands))
	for _, id := range cands {
		if dist(s.T.Instance(id).Attached) >= 0 {
			reachable = append(reachable, id)
		}
	}
	if len(reachable) == 0 {
		return NoMB, fmt.Errorf("routing: no reachable instance among %v", cands)
	}
	return reachable[s.Rng.Intn(len(reachable))], nil
}

// Planner computes policy paths over one topology, memoising BFS distance
// fields per destination. It is safe for concurrent use.
//
// The final segment of every path — from the last middlebox down to the
// base station — follows the canonical shortest-path tree rooted at the
// gateway (topo.SPTree). That makes the fan-out region identical for every
// clause, which is what lets the controller serve it with shared Type 3
// location rules instead of per-tag state (paper §3.1 "Aggregation by
// location", Fig. 3(a)). Set LegacyTails to route tails with per-pair
// shortest walks instead (the no-location-routing ablation).
type Planner struct {
	T        *topo.Topology
	Selector Selector
	// LegacyTails disables canonical-tree tails.
	LegacyTails bool

	mu     sync.Mutex
	fields map[topo.NodeID][]int32
	trees  map[topo.NodeID][]topo.NodeID
}

// NewPlanner builds a planner with the nearest-instance selector.
func NewPlanner(t *topo.Topology) *Planner {
	return &Planner{
		T:        t,
		Selector: NearestSelector{T: t},
		fields:   make(map[topo.NodeID][]int32),
		trees:    make(map[topo.NodeID][]topo.NodeID),
	}
}

// Tree returns (and caches) the canonical shortest-path tree rooted at
// root (normally the gateway).
func (pl *Planner) Tree(root topo.NodeID) []topo.NodeID {
	pl.mu.Lock()
	tr, ok := pl.trees[root]
	pl.mu.Unlock()
	if ok {
		return tr
	}
	tr = pl.T.SPTree(root)
	pl.mu.Lock()
	pl.trees[root] = tr
	pl.mu.Unlock()
	return tr
}

// Field returns (and caches) the BFS distance field rooted at n. The graph
// is undirected, so dist-to equals dist-from.
func (pl *Planner) Field(n topo.NodeID) []int32 {
	pl.mu.Lock()
	f, ok := pl.fields[n]
	pl.mu.Unlock()
	if ok {
		return f
	}
	f = pl.T.BFS(n)
	pl.mu.Lock()
	pl.fields[n] = f
	pl.mu.Unlock()
	return f
}

// Plan computes the downstream policy path from gateway to base station
// origin, traversing one instance of each chain function type in order.
// The chain is given as middlebox *types*; instance choice is delegated to
// the Selector.
func (pl *Planner) Plan(origin packet.BSID, chain []topo.MBType, gateway topo.NodeID) (*Path, error) {
	bs, ok := pl.T.Station(origin)
	if !ok {
		return nil, fmt.Errorf("routing: unknown base station %d", origin)
	}
	p := &Path{Origin: origin}
	cur := gateway
	p.Switches = append(p.Switches, cur)
	p.MBAt = append(p.MBAt, NoMB)

	for _, typ := range chain {
		cands := pl.T.InstancesOf(typ)
		if len(cands) == 0 {
			return nil, fmt.Errorf("routing: no instances of middlebox type %d", typ)
		}
		field := func(n topo.NodeID) int32 { return pl.Field(n)[cur] }
		toUE := func(n topo.NodeID) int32 { return pl.Field(n)[bs.Access] }
		inst, err := pl.Selector.Select(cands, cur, field, toUE)
		if err != nil {
			return nil, err
		}
		attach := pl.T.Instance(inst).Attached
		if err := pl.appendWalk(p, &cur, attach); err != nil {
			return nil, err
		}
		if err := markMB(p, inst); err != nil {
			return nil, err
		}
	}
	if err := pl.appendTail(p, &cur, bs.Access, gateway); err != nil {
		return nil, err
	}
	return p, nil
}

// markMB records that the chain's next instance is traversed at the path's
// current tail. When a previous instance already sits on the same switch,
// the position is duplicated so both traversals are kept in order.
// Traversing the same instance twice in a row is rejected: switches
// disambiguate middlebox returns by in-port (paper footnote 1), which cannot
// tell a first return from a second.
func markMB(p *Path, inst topo.MBInstanceID) error {
	if p.MBAt[len(p.MBAt)-1] == inst {
		return fmt.Errorf("routing: chain traverses middlebox instance %d twice in a row", inst)
	}
	if p.MBAt[len(p.MBAt)-1] != NoMB {
		p.Switches = append(p.Switches, p.Switches[len(p.Switches)-1])
		p.MBAt = append(p.MBAt, NoMB)
	}
	p.MBAt[len(p.MBAt)-1] = inst
	p.Chain = append(p.Chain, inst)
	return nil
}

// appendWalk extends the path from *cur to dst along one shortest path.
// When dst is an access switch (there can be tens of thousands of those),
// the walk is computed in reverse against *cur's cached distance field so
// the planner never builds a BFS field per base station.
func (pl *Planner) appendWalk(p *Path, cur *topo.NodeID, dst topo.NodeID) error {
	var walk []topo.NodeID
	if pl.T.Nodes[dst].Kind == topo.Access {
		rev := pl.T.WalkToward(dst, pl.Field(*cur))
		if rev == nil {
			return fmt.Errorf("routing: no path from %d to %d", *cur, dst)
		}
		walk = make([]topo.NodeID, len(rev))
		for i, sw := range rev {
			walk[len(rev)-1-i] = sw
		}
	} else {
		// Seed the tie-break with the segment endpoints so different trunk
		// segments fan out across the mesh instead of all funnelling
		// through the lowest-numbered switches (which manufactures loops).
		walk = pl.T.WalkTowardSpread(*cur, pl.Field(dst), uint32(dst)*131+uint32(*cur))
		if walk == nil {
			return fmt.Errorf("routing: no path from %d to %d", *cur, dst)
		}
	}
	for _, sw := range walk[1:] { // walk[0] == *cur, already present
		p.Switches = append(p.Switches, sw)
		p.MBAt = append(p.MBAt, NoMB)
	}
	*cur = dst
	return nil
}

// appendTail extends the path from *cur down to the station's access
// switch along the canonical descend route (topo.CanonicalDescend over the
// gateway-rooted tree): climb toward the root until some ancestor of the
// access switch is adjacent, then jump as low as possible and walk down.
// All clauses produce identical decisions at every switch, which is what
// lets the controller serve the fan-out with shared Type 3 location rules
// (paper §3.1, Fig. 3(a)). LegacyTails uses per-pair shortest walks instead
// (the no-location-routing ablation).
func (pl *Planner) appendTail(p *Path, cur *topo.NodeID, access, gateway topo.NodeID) error {
	if pl.LegacyTails {
		return pl.appendWalk(p, cur, access)
	}
	parent := pl.Tree(gateway)
	chain := pl.T.AncestorChain(access, parent)
	if chain == nil || chain[len(chain)-1] != gateway {
		return fmt.Errorf("routing: access switch %d not under gateway %d", access, gateway)
	}
	chainIdx := make(map[topo.NodeID]int, len(chain))
	for i, n := range chain {
		chainIdx[n] = i
	}
	u := *cur
	for steps := 0; ; steps++ {
		if steps > 2*len(pl.T.Nodes) {
			return fmt.Errorf("routing: canonical descend did not converge from %d to %d", *cur, access)
		}
		next, done := pl.T.CanonicalDescend(u, chain, chainIdx, parent)
		if done {
			break
		}
		if next == topo.None {
			return fmt.Errorf("routing: no tree path from %d to %d", *cur, access)
		}
		p.Switches = append(p.Switches, next)
		p.MBAt = append(p.MBAt, NoMB)
		u = next
	}
	*cur = access
	return nil
}

// PlanInstances computes the downstream path through an explicit instance
// sequence (used when re-anchoring old flows after mobility, where the
// instances are pinned).
func (pl *Planner) PlanInstances(origin packet.BSID, chain []topo.MBInstanceID, gateway topo.NodeID) (*Path, error) {
	bs, ok := pl.T.Station(origin)
	if !ok {
		return nil, fmt.Errorf("routing: unknown base station %d", origin)
	}
	p := &Path{Origin: origin}
	cur := gateway
	p.Switches = append(p.Switches, cur)
	p.MBAt = append(p.MBAt, NoMB)
	for _, inst := range chain {
		if int(inst) < 0 || int(inst) >= len(pl.T.MBoxes) {
			return nil, fmt.Errorf("routing: unknown middlebox instance %d", inst)
		}
		if err := pl.appendWalk(p, &cur, pl.T.Instance(inst).Attached); err != nil {
			return nil, err
		}
		if err := markMB(p, inst); err != nil {
			return nil, err
		}
	}
	if err := pl.appendTail(p, &cur, bs.Access, gateway); err != nil {
		return nil, err
	}
	return p, nil
}

// ChainKey canonically identifies an instance chain plus endpoints; paths
// sharing a ChainKey are the ones that can share policy tags end-to-end.
func ChainKey(gateway topo.NodeID, chain []topo.MBInstanceID) string {
	key := fmt.Sprintf("g%d", gateway)
	for _, c := range chain {
		key += fmt.Sprintf(",%d", c)
	}
	return key
}
