package fastpath

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

// ruleSpec is a reproducible rule description, so reference and
// fast-path switches can be built identically.
type ruleSpec struct {
	prio int
	m    switchsim.Match
	a    switchsim.Action
}

// genAction draws a random action: forward, drop, punt, or a
// resubmit/rewrite combination exercising every rewrite field.
func genAction(r *rand.Rand) switchsim.Action {
	var a switchsim.Action
	a.Output = -1
	switch r.Intn(5) {
	case 0:
		a.Output = r.Intn(4)
	case 1:
		a.Drop = true
	case 2:
		a.ToController = true
	case 3:
		a.Resubmit = true
	case 4:
		a.Output = []int{switchsim.PortUE, switchsim.PortExit, switchsim.PortTunnelBase + r.Intn(3)}[r.Intn(3)]
	}
	if r.Intn(3) == 0 {
		v := packet.Addr(r.Uint32() % 64)
		a.SetSrc = &v
	}
	if r.Intn(3) == 0 {
		v := packet.Addr(r.Uint32() % 64)
		a.SetDst = &v
	}
	if r.Intn(4) == 0 {
		v := uint16(r.Intn(1 << 12))
		a.SetSrcPort = &v
	}
	if r.Intn(4) == 0 {
		v := uint16(r.Intn(1 << 12))
		a.SetDstPort = &v
	}
	if r.Intn(4) == 0 {
		v := packet.Tag(r.Intn(15) + 1)
		a.SetSrcTag = &v
		a.TagEphBits = 10
	}
	if r.Intn(4) == 0 {
		v := packet.Tag(r.Intn(15) + 1)
		a.SetDstTag = &v
		a.TagEphBits = 10
	}
	if r.Intn(5) == 0 {
		v := uint8(r.Intn(64))
		a.SetDSCP = &v
	}
	return a
}

// genMatch draws a random match over a small address pool so packets
// actually hit rules.
func genMatch(r *rand.Rand) switchsim.Match {
	m := switchsim.MatchAll()
	if r.Intn(2) == 0 {
		m.InPort = r.Intn(4)
	}
	if r.Intn(2) == 0 {
		m.Src = packet.Prefix{Addr: packet.Addr(r.Uint32() % 64), Len: []int{8, 16, 24, 32}[r.Intn(4)]}
	}
	if r.Intn(2) == 0 {
		m.Dst = packet.Prefix{Addr: packet.Addr(r.Uint32() % 64), Len: []int{8, 16, 24, 32}[r.Intn(4)]}
	}
	if r.Intn(3) == 0 {
		lo := uint16(r.Intn(1 << 12))
		m.SrcPortLo, m.SrcPortHi = lo, lo+uint16(r.Intn(1<<10))
	}
	if r.Intn(3) == 0 {
		lo := uint16(r.Intn(1 << 12))
		m.DstPortLo, m.DstPortHi = lo, lo+uint16(r.Intn(1<<10))
	}
	if r.Intn(3) == 0 {
		m.Proto = []packet.Proto{packet.ProtoTCP, packet.ProtoUDP}[r.Intn(2)]
	}
	return m
}

func genSpecs(r *rand.Rand, n int) []ruleSpec {
	specs := make([]ruleSpec, n)
	for i := range specs {
		specs[i] = ruleSpec{prio: r.Intn(900), m: genMatch(r), a: genAction(r)}
	}
	return specs
}

func buildSwitch(specs []ruleSpec, miss switchsim.Action) *switchsim.Switch {
	sw := switchsim.NewSwitch("t")
	sw.TableMiss = miss
	for _, s := range specs {
		sw.Install(s.prio, s.m, s.a)
	}
	return sw
}

func genPacket(r *rand.Rand) *packet.Packet {
	return &packet.Packet{
		Src:     packet.Addr(r.Uint32() % 64),
		Dst:     packet.Addr(r.Uint32() % 64),
		SrcPort: uint16(r.Intn(1 << 13)),
		DstPort: uint16(r.Intn(1 << 13)),
		Proto:   []packet.Proto{packet.ProtoTCP, packet.ProtoUDP}[r.Intn(2)],
		TTL:     64,
		Payload: make([]byte, r.Intn(64)),
	}
}

func headerEq(a, b *packet.Packet) bool {
	return a.Src == b.Src && a.Dst == b.Dst &&
		a.SrcPort == b.SrcPort && a.DstPort == b.DstPort &&
		a.Proto == b.Proto && a.DSCP == b.DSCP
}

// checkEquivalence builds a random switch and burst from rng and fails t
// if any burst verdict or resulting header differs from the sequential
// Process path over an identical switch.
func checkEquivalence(t *testing.T, rng *rand.Rand) {
	t.Helper()
	specs := genSpecs(rng, 1+rng.Intn(24))
	misses := []switchsim.Action{
		{Output: -1},
		switchsim.DropAction(),
		switchsim.Punt(),
		{Output: rng.Intn(4)},
	}
	miss := misses[rng.Intn(len(misses))]
	fast := buildSwitch(specs, miss)
	ref := buildSwitch(specs, miss)

	burst := make([]*packet.Packet, 1+rng.Intn(64))
	seq := make([]*packet.Packet, len(burst))
	for i := range burst {
		burst[i] = genPacket(rng)
		c := *burst[i]
		seq[i] = &c
	}
	// Microflows for a few of the burst's flows, on both switches.
	for i := 0; i < len(burst); i += 3 {
		a := genAction(rng)
		fast.InstallMicroflow(burst[i].Flow(), a)
		ref.InstallMicroflow(burst[i].Flow(), a)
	}
	inPort := rng.Intn(4)

	got := NewFIB(fast).NewProc().ProcessBurst(burst, inPort)
	for i := range burst {
		want := ref.Process(seq[i], inPort)
		var wantID switchsim.RuleID
		if want.Rule != nil {
			wantID = want.Rule.ID
		}
		g := got[i]
		if g.Rule != wantID || g.Output != want.Output || g.Drop != want.Drop || g.ToController != want.ToController {
			t.Fatalf("packet %d: burst verdict (rule=%d out=%d drop=%v punt=%v) != Process (rule=%d out=%d drop=%v punt=%v)",
				i, g.Rule, g.Output, g.Drop, g.ToController, wantID, want.Output, want.Drop, want.ToController)
		}
		if !headerEq(burst[i], seq[i]) {
			t.Fatalf("packet %d: burst header %v != Process header %v", i, burst[i], seq[i])
		}
	}

	// The pipelines must account identically too: switch totals and
	// per-rule traffic counters.
	if fp, rp := atomic.LoadUint64(&fast.Processed), atomic.LoadUint64(&ref.Processed); fp != rp {
		t.Fatalf("Processed: burst %d != sequential %d", fp, rp)
	}
	if fm, rm := atomic.LoadUint64(&fast.Misses), atomic.LoadUint64(&ref.Misses); fm != rm {
		t.Fatalf("Misses: burst %d != sequential %d", fm, rm)
	}
	fr, rr := fast.Rules(), ref.Rules()
	for i := range fr {
		if fr[i].Packets != rr[i].Packets || fr[i].Bytes != rr[i].Bytes {
			t.Fatalf("rule %d counters: burst %d/%dB != sequential %d/%dB",
				fr[i].ID, fr[i].Packets, fr[i].Bytes, rr[i].Packets, rr[i].Bytes)
		}
	}
}

// TestBurstEquivalenceQuick is the property test: for arbitrary tables
// and bursts, ProcessBurst ≡ sequential Process — verdicts, header
// rewrites, and traffic accounting.
func TestBurstEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		checkEquivalence(t, rand.New(rand.NewSource(seed)))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBurstEquivalence drives the same differential check from fuzzed
// seeds; the corpus in testdata/fuzz pins known-tricky table shapes
// (resubmit chains, overlapping priorities, tag rewrites).
func FuzzBurstEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(0x5071ce11)) // softcell
	f.Add(int64(-987654321))
	f.Fuzz(func(t *testing.T, seed int64) {
		checkEquivalence(t, rand.New(rand.NewSource(seed)))
	})
}

// TestSnapshotGeneration checks staleness detection: a snapshot is served
// only while the switch's generation matches, and every mutation kind
// bumps the generation.
func TestSnapshotGeneration(t *testing.T) {
	sw := switchsim.NewSwitch("gen")
	fib := NewFIB(sw)

	s1 := fib.Acquire()
	if s1.Gen != sw.Generation() {
		t.Fatalf("snapshot gen %d != switch gen %d", s1.Gen, sw.Generation())
	}
	if fib.Acquire() != s1 {
		t.Fatal("unchanged switch must serve the cached snapshot")
	}

	id := sw.Install(10, switchsim.MatchAll(), switchsim.Forward(1))
	s2 := fib.Acquire()
	if s2 == s1 || s2.Gen <= s1.Gen {
		t.Fatalf("Install must invalidate: gen %d -> %d, same=%v", s1.Gen, s2.Gen, s2 == s1)
	}
	if s2.NumRules() != 1 {
		t.Fatalf("recompiled snapshot has %d rules, want 1", s2.NumRules())
	}

	mutations := []func(){
		func() { sw.Remove(id) },
		func() { sw.InstallMicroflow(packet.FlowKey{Src: 1}, switchsim.Forward(2)) },
		func() { sw.RemoveMicroflow(packet.FlowKey{Src: 1}) },
		func() {
			sw.Apply([]switchsim.Mod{{Install: true, Priority: 5, Match: switchsim.MatchAll(), Action: switchsim.DropAction()}})
		},
		func() { sw.ClearTCAM() },
	}
	for i, mut := range mutations {
		before := fib.Acquire()
		mut()
		after := fib.Acquire()
		if after.Gen <= before.Gen {
			t.Fatalf("mutation %d did not bump the generation (%d -> %d)", i, before.Gen, after.Gen)
		}
	}

	// No-op mutations must not invalidate.
	before := fib.Acquire()
	if sw.Remove(id) {
		t.Fatal("double remove reported success")
	}
	if sw.RemoveMicroflow(packet.FlowKey{Src: 9}) {
		t.Fatal("removing an absent microflow reported success")
	}
	if fib.Acquire() != before {
		t.Fatal("failed removals must not invalidate the snapshot")
	}
}

// TestSnapshotSwapRace stresses concurrent burst workers against a
// control-plane mutator; run under -race it proves the steady state
// shares no locks and the swap protocol is sound. Verdicts during churn
// only need to be self-consistent; after the mutator stops, a final burst
// must match the sequential path exactly.
func TestSnapshotSwapRace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := genSpecs(rng, 16)
	sw := buildSwitch(specs, switchsim.Action{Output: -1})
	fib := NewFIB(sw)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			proc := fib.NewProc()
			burst := make([]*packet.Packet, 32)
			for !stop.Load() {
				for i := range burst {
					burst[i] = genPacket(r)
				}
				proc.ProcessBurst(burst, r.Intn(4))
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		var ids []switchsim.RuleID
		for i := 0; i < 400; i++ {
			switch r.Intn(4) {
			case 0:
				ids = append(ids, sw.Install(r.Intn(900), genMatch(r), genAction(r)))
			case 1:
				if len(ids) > 0 {
					sw.Remove(ids[len(ids)-1])
					ids = ids[:len(ids)-1]
				}
			case 2:
				sw.InstallMicroflow(genPacket(r).Flow(), genAction(r))
			case 3:
				sw.Apply([]switchsim.Mod{{Install: true, Priority: r.Intn(900), Match: genMatch(r), Action: genAction(r)}})
			}
		}
		stop.Store(true)
	}()
	wg.Wait()

	// Post-churn: the next Acquire sees the final generation and the burst
	// path agrees with Process again.
	snap := fib.Acquire()
	if snap.Gen != sw.Generation() {
		t.Fatalf("post-churn snapshot gen %d != switch gen %d", snap.Gen, sw.Generation())
	}
	p1, p2 := genPacket(rng), genPacket(rng)
	*p2 = *p1
	v := fib.NewProc().ProcessBurst([]*packet.Packet{p1}, 0)[0]
	want := sw.Process(p2, 0)
	if v.Output != want.Output || v.Drop != want.Drop || v.ToController != want.ToController {
		t.Fatalf("post-churn divergence: burst %+v vs process out=%d drop=%v punt=%v",
			v, want.Output, want.Drop, want.ToController)
	}
}

// TestEngineWalk drives bursts through a 3-node line (access - core -
// gateway) and checks dispositions, hop counts, tunnel forwarding, and
// the slow-path classifications.
func TestEngineWalk(t *testing.T) {
	// Topology: node 0 (access) -port0-> node 1 (core) -port1-> node 2
	// (gateway). Reverse links exist but carry no rules.
	sws := []*switchsim.Switch{
		switchsim.NewSwitch("access"), switchsim.NewSwitch("core"), switchsim.NewSwitch("gw"),
	}
	links := [][]Link{
		{{Next: 1, InPort: 0}},                       // access port 0 -> core in 0
		{{Next: 0, InPort: 0}, {Next: 2, InPort: 0}}, // core: port 0 back, port 1 -> gw
		{{Next: 1, InPort: 1}},                       // gw port 0 back to core
	}
	dstUE := packet.Prefix{Addr: 10, Len: 32}
	dstNet := packet.Prefix{Addr: 99, Len: 32}
	// Upstream: access forwards to core, core to gateway, gateway exits.
	sws[0].Install(100, switchsim.Match{InPort: switchsim.AnyPort, Dst: dstNet}, switchsim.Forward(0))
	sws[1].Install(100, switchsim.Match{InPort: switchsim.AnyPort, Dst: dstNet}, switchsim.Forward(1))
	sws[2].Install(100, switchsim.Match{InPort: switchsim.AnyPort, Dst: dstNet}, switchsim.Forward(switchsim.PortExit))
	// Downstream delivery at the access switch.
	sws[0].Install(100, switchsim.Match{InPort: switchsim.AnyPort, Dst: dstUE}, switchsim.Forward(switchsim.PortUE))
	// A mobility tunnel entry at the core: traffic to Addr 20 tunnels to
	// base station 7, whose access node is node 0.
	dstMob := packet.Prefix{Addr: 20, Len: 32}
	sws[1].Install(700, switchsim.Match{InPort: switchsim.AnyPort, Dst: dstMob}, switchsim.Forward(switchsim.PortTunnelBase+7))
	sws[0].Install(100, switchsim.Match{InPort: switchsim.PortUE, Dst: dstMob}, switchsim.Forward(0))
	sws[0].Install(100, switchsim.Match{InPort: switchsim.PortTunnelBase, Dst: dstMob}, switchsim.Forward(switchsim.PortUE))
	// A middlebox-ish port with no link entry at the access switch.
	dstMB := packet.Prefix{Addr: 30, Len: 32}
	sws[0].Install(100, switchsim.Match{InPort: switchsim.AnyPort, Dst: dstMB}, switchsim.Forward(5))

	reg := obs.New()
	net := NewNet(NetConfig{
		Switches: sws,
		Links:    links,
		Tunnels:  map[packet.BSID]int32{7: 0},
		Obs:      reg,
	})
	eng := NewEngine(net, 2)
	defer eng.Close()

	mk := func(dst packet.Addr) *packet.Packet {
		return &packet.Packet{Src: 10, Dst: dst, SrcPort: 1000, DstPort: 80, Proto: packet.ProtoTCP, TTL: 64}
	}
	pkts := []*packet.Packet{mk(99), mk(10), mk(20), mk(30), mk(50)}
	res := eng.Forward(0, switchsim.PortUE, pkts, make([]Result, len(pkts)))

	want := []struct {
		disp Disp
		last int32
		hops int32
	}{
		{DispExited, 2, 3},    // up through the line and out
		{DispDelivered, 0, 1}, // delivered at the access switch
		{DispDelivered, 0, 3}, // access -> core -> tunnel back to access
		{DispSlow, 0, 1},      // unlinked (middlebox) port
		{DispDropped, 0, 1},   // table miss drops
	}
	for i, w := range want {
		if res[i].Disp != w.disp || res[i].Last != w.last || res[i].Hops != w.hops {
			t.Errorf("packet %d: got %s at node %d after %d hops, want %s at %d after %d",
				i, res[i].Disp, res[i].Last, res[i].Hops, w.disp, w.last, w.hops)
		}
	}

	// SlowExit reroutes exits to the slow path.
	slow := NewNet(NetConfig{Switches: sws, Links: links, Tunnels: map[packet.BSID]int32{7: 0}, SlowExit: true})
	e2 := NewEngine(slow, 1)
	defer e2.Close()
	r2 := e2.Forward(0, switchsim.PortUE, []*packet.Packet{mk(99)}, make([]Result, 1))
	if r2[0].Disp != DispSlow {
		t.Fatalf("SlowExit: got %s, want %s", r2[0].Disp, DispSlow)
	}

	// A forwarding loop must exhaust the hop budget, not hang.
	loop := []*switchsim.Switch{switchsim.NewSwitch("a"), switchsim.NewSwitch("b")}
	loop[0].Install(1, switchsim.MatchAll(), switchsim.Forward(0))
	loop[1].Install(1, switchsim.MatchAll(), switchsim.Forward(0))
	ln := NewNet(NetConfig{
		Switches: loop,
		Links:    [][]Link{{{Next: 1, InPort: 0}}, {{Next: 0, InPort: 0}}},
	})
	e3 := NewEngine(ln, 1)
	defer e3.Close()
	r3 := e3.Forward(0, 0, []*packet.Packet{mk(1)}, make([]Result, 1))
	if r3[0].Disp != DispLoop {
		t.Fatalf("loop: got %s, want %s", r3[0].Disp, DispLoop)
	}

	// Telemetry flowed: packets walked and bursts observed.
	if reg.Counter("fastpath.packets").Value() == 0 {
		t.Fatal("fastpath.packets counter never moved")
	}
	if reg.Counter("fastpath.bursts").Value() == 0 {
		t.Fatal("fastpath.bursts counter never moved")
	}
}

// TestEngineConcurrentSubmit pushes many async jobs across workers and
// checks every one completes with consistent results.
func TestEngineConcurrentSubmit(t *testing.T) {
	sw := switchsim.NewSwitch("s")
	sw.Install(1, switchsim.MatchAll(), switchsim.Forward(switchsim.PortUE))
	net := NewNet(NetConfig{Switches: []*switchsim.Switch{sw}, Links: [][]Link{{}}})
	eng := NewEngine(net, 4)
	defer eng.Close()

	const jobs = 64
	var done sync.WaitGroup
	done.Add(jobs)
	for j := 0; j < jobs; j++ {
		pkts := make([]*packet.Packet, 8)
		for i := range pkts {
			pkts[i] = &packet.Packet{Src: packet.Addr(j), Dst: 1, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
		}
		eng.Submit(&Job{
			Origin: 0, InPort: switchsim.PortUE,
			Pkts: pkts, Res: make([]Result, len(pkts)),
			Done: func(jb *Job) {
				for i := range jb.Res {
					if jb.Res[i].Disp != DispDelivered {
						t.Errorf("job packet %d: %s, want delivered", i, jb.Res[i].Disp)
					}
				}
				done.Done()
			},
		})
	}
	done.Wait()
	if got := atomic.LoadUint64(&sw.Processed); got != jobs*8 {
		t.Fatalf("switch processed %d packets, want %d", got, jobs*8)
	}
}
