package fastpath

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

// Link is one egress-port edge in the compiled topology: the neighbour
// node the port leads to and the ingress port the packet arrives on
// there. Next < 0 marks a port the fast path does not own (middlebox
// attachment, unknown) — packets leaving through it take the slow path.
type Link struct {
	Next   int32
	InPort int32
}

// NoLink is the Next value of a port the fast path must not follow.
const NoLink int32 = -1

// NetConfig assembles a Net. The caller (internal/dataplane) supplies the
// per-node link tables and tunnel targets because it owns the topology
// and the middlebox port assignments.
type NetConfig struct {
	// Switches are the per-node switches, indexed by node ID.
	Switches []*switchsim.Switch
	// Links maps, per node, egress port -> link. Ports at or beyond the
	// slice, or with Next == NoLink, fall to the slow path.
	Links [][]Link
	// Tunnels maps a base-station ID to its access node, for the
	// inter-station mobility tunnel pseudo ports (PortTunnelBase + bs).
	Tunnels map[packet.BSID]int32
	// SlowExit forces PortExit verdicts to the slow path (the dataplane
	// sets it when a gateway NAT must translate exiting packets).
	SlowExit bool
	// MaxHops bounds a packet's walk; 0 means the dataplane's budget,
	// 4*len(Switches)+32.
	MaxHops int
	// Obs, when non-nil, registers fast-path telemetry. nil runs
	// uninstrumented at zero cost.
	Obs *obs.Registry
}

// Net is the compiled, immutable view of a whole topology: one FIB per
// switch plus the link tables. It is safe for any number of concurrent
// walkers; the only mutable state is the per-FIB snapshot pointer, which
// is lock-free.
type Net struct {
	fibs     []*FIB
	links    [][]Link
	tunnels  map[packet.BSID]int32
	slowExit bool
	maxHops  int32
	o        *fpObs
}

// NewNet compiles the topology view. Snapshots are compiled lazily on
// first acquisition, so construction is cheap.
func NewNet(cfg NetConfig) *Net {
	n := &Net{
		links:    cfg.Links,
		tunnels:  cfg.Tunnels,
		slowExit: cfg.SlowExit,
		o:        newFPObs(cfg.Obs),
	}
	if cfg.MaxHops > 0 {
		n.maxHops = int32(cfg.MaxHops)
	} else {
		n.maxHops = int32(4*len(cfg.Switches) + 32)
	}
	n.fibs = make([]*FIB, len(cfg.Switches))
	for i, sw := range cfg.Switches {
		n.fibs[i] = NewFIB(sw)
		n.fibs[i].instrument(n.o)
	}
	return n
}

// FIB returns node i's forwarding table.
func (n *Net) FIB(i int) *FIB { return n.fibs[i] }

// Warm recompiles every stale snapshot now, so the next burst pays no
// compile cost. Control-plane sync points call it after table rebuilds.
func (n *Net) Warm() {
	for _, f := range n.fibs {
		f.Acquire()
	}
}

// Disp classifies how one packet's fast-path walk ended.
type Disp uint8

// Dispositions. DispSlow and DispLoop are the fast path declining: a
// middlebox port, a NAT'd exit or an unknown port needs the stateful slow
// path, and a hop-budget overrun is the same forwarding-loop error the
// slow-path walk reports.
const (
	DispDelivered Disp = iota // handed to a UE at an access switch
	DispExited                // left through the gateway's Internet port
	DispDropped               // dropped (policy or table miss)
	DispPunted                // to-controller verdict (local agent resolves)
	DispSlow                  // needs the slow path; header state is mid-walk
	DispLoop                  // exceeded the hop budget
)

func (d Disp) String() string {
	switch d {
	case DispDelivered:
		return "delivered"
	case DispExited:
		return "exited"
	case DispDropped:
		return "dropped"
	case DispPunted:
		return "punted"
	case DispSlow:
		return "slowpath"
	case DispLoop:
		return "loop"
	default:
		return fmt.Sprintf("disp(%d)", uint8(d))
	}
}

// Result is one packet's walk outcome: the disposition, the node it ended
// at, and the number of switch traversals.
type Result struct {
	Disp Disp
	Last int32
	Hops int32
}

// Job is one burst handed to the engine: pkts entering at Origin on
// InPort. The worker fills Res (len(Res) must equal len(Pkts)) and then
// calls Done, if set. The caller must not touch Pkts or Res between
// Submit and Done.
type Job struct {
	Origin int
	InPort int
	Pkts   []*packet.Packet
	Res    []Result
	Done   func(*Job)
}

// group is a set of burst packets that share (node, inPort) mid-walk.
type group struct {
	node   int32
	inPort int32
	idx    []int32
}

// scratch is one worker's reusable walk state: the pending-group queue
// and a free list of index slices, so steady-state walks allocate
// nothing.
type scratch struct {
	queue []group
	free  [][]int32
	t     tally
}

func (sc *scratch) get() []int32 {
	if n := len(sc.free); n > 0 {
		s := sc.free[n-1]
		sc.free = sc.free[:n-1]
		return s[:0]
	}
	//lint:ignore hotpath warm-up only: every walked slice lands back on the free list
	return make([]int32, 0, 64)
}

func (sc *scratch) put(s []int32) {
	sc.free = append(sc.free, s)
}

// walkBurst drives one job's packets through the topology, burst-wise:
// the whole group traverses a switch with one snapshot acquisition, then
// continuing packets regroup by next (node, inPort) and the frontier
// repeats. Hop counts accrue per packet in Res.
func (n *Net) walkBurst(sc *scratch, j *Job) {
	n.o.walked(len(j.Pkts))
	//lint:ignore hotpath warm-up growth of the free list (see scratch.get); the compiler reports the inlined make here
	first := sc.get()
	for i := range j.Pkts {
		j.Res[i] = Result{}
		first = append(first, int32(i))
	}
	sc.queue = append(sc.queue[:0], group{node: int32(j.Origin), inPort: int32(j.InPort), idx: first})

	for len(sc.queue) > 0 {
		g := sc.queue[0]
		sc.queue = sc.queue[1:]
		n.stepGroup(sc, j, g)
		sc.put(g.idx)
	}
}

// stepGroup runs one group through one switch and enqueues the survivors.
func (n *Net) stepGroup(sc *scratch, j *Job, g group) {
	fib := n.fibs[g.node]
	snap := fib.Acquire()
	//lint:ignore hotpath accumulator grows only when a recompiled snapshot gains slots (see tally.ensure)
	sc.t.ensure(snap.slots())
	t := &sc.t
	links := n.links[g.node]
	for _, i := range g.idx {
		p := j.Pkts[i]
		r := &j.Res[i]
		r.Hops++
		r.Last = g.node
		if r.Hops > n.maxHops {
			r.Disp = DispLoop
			n.o.loop()
			continue
		}
		v := snap.lookup(p, int(g.inPort), t)
		switch {
		case v.ToController:
			r.Disp = DispPunted
		case v.Drop:
			r.Disp = DispDropped
		case v.Output == switchsim.PortUE:
			r.Disp = DispDelivered
		case v.Output == switchsim.PortExit:
			if n.slowExit {
				r.Disp = DispSlow
				n.o.slowPath()
			} else {
				r.Disp = DispExited
			}
		case v.Output >= switchsim.PortTunnelBase:
			bs := packet.BSID(v.Output - switchsim.PortTunnelBase)
			target, ok := n.tunnels[bs]
			if !ok {
				r.Disp = DispSlow
				n.o.slowPath()
				continue
			}
			n.forward(sc, j, i, target, switchsim.PortTunnelBase)
		case v.Output >= 0 && v.Output < len(links) && links[v.Output].Next >= 0:
			l := links[v.Output]
			n.forward(sc, j, i, l.Next, int(l.InPort))
		default:
			// Middlebox attachment port or a port the fast path does
			// not own: the stateful slow path finishes this packet.
			r.Disp = DispSlow
			n.o.slowPath()
		}
	}
	snap.flush(&sc.t)
	n.o.burst(len(g.idx))
}

// forward appends packet i to the pending group for (node, inPort),
// creating it if this is the first packet heading there this round.
func (n *Net) forward(sc *scratch, j *Job, i, node int32, inPort int) {
	for k := range sc.queue {
		if sc.queue[k].node == node && sc.queue[k].inPort == int32(inPort) {
			sc.queue[k].idx = append(sc.queue[k].idx, i)
			return
		}
	}
	//lint:ignore hotpath warm-up growth of the free list (see scratch.get); the compiler reports the inlined make here
	idx := sc.get()
	sc.queue = append(sc.queue, group{node: node, inPort: int32(inPort), idx: append(idx, i)})
}

// Walker is a caller-owned synchronous walk handle: Walk runs the burst
// in the calling goroutine against the walker's private scratch, so a
// synchronous sender pays no cross-goroutine handoff (the engine queues
// cost two scheduler switches per burst, which dominates once everything
// else is amortised). Any number of goroutines may walk the same Net
// concurrently; each needs its own Walker.
type Walker struct {
	n  *Net
	sc scratch
	j  Job
}

// NewWalker returns a synchronous walk handle on the topology.
func (n *Net) NewWalker() *Walker { return &Walker{n: n} }

// Walk runs one burst entering at origin on inPort in the calling
// goroutine. res must have len(pkts) entries; the same slice is returned
// filled.
//
// hotpath: no alloc, no lock
func (w *Walker) Walk(origin, inPort int, pkts []*packet.Packet, res []Result) []Result {
	w.j = Job{Origin: origin, InPort: inPort, Pkts: pkts, Res: res}
	w.n.walkBurst(&w.sc, &w.j)
	return res
}

// Engine drives N workers over per-worker burst queues. Each worker owns
// its scratch and touches only lock-free FIB snapshots, so steady-state
// forwarding shares no locks between workers or with the control plane.
type Engine struct {
	net *Net
	qs  []chan *Job
	wg  sync.WaitGroup
	rr  atomic.Uint32
}

// NewEngine starts workers goroutines, each consuming its own bounded
// burst queue. Close drains and stops them.
func NewEngine(net *Net, workers int) *Engine {
	if workers <= 0 {
		workers = 1
	}
	e := &Engine{net: net, qs: make([]chan *Job, workers)}
	for w := range e.qs {
		q := make(chan *Job, 64)
		e.qs[w] = q
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			var sc scratch
			for j := range q {
				net.walkBurst(&sc, j)
				if j.Done != nil {
					j.Done(j)
				}
			}
		}()
	}
	return e
}

// Workers reports the worker count.
func (e *Engine) Workers() int { return len(e.qs) }

// Net returns the engine's compiled topology view.
func (e *Engine) Net() *Net { return e.net }

// SubmitTo enqueues a job on worker w's queue, blocking when it is full.
func (e *Engine) SubmitTo(w int, j *Job) {
	e.qs[w] <- j
}

// Submit enqueues a job round-robin across the worker queues.
func (e *Engine) Submit(j *Job) {
	w := int(e.rr.Add(1)-1) % len(e.qs)
	e.qs[w] <- j
}

// Forward is the synchronous convenience: it submits one burst and waits
// for the worker to finish it. res must have len(pkts) entries; the same
// slice is returned filled.
func (e *Engine) Forward(origin, inPort int, pkts []*packet.Packet, res []Result) []Result {
	var wg sync.WaitGroup
	wg.Add(1)
	j := Job{Origin: origin, InPort: inPort, Pkts: pkts, Res: res,
		Done: func(*Job) { wg.Done() }}
	e.Submit(&j)
	wg.Wait()
	return j.Res
}

// Close stops the workers after the queued jobs drain.
func (e *Engine) Close() {
	for _, q := range e.qs {
		close(q)
	}
	e.wg.Wait()
}
