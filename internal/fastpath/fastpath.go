// Package fastpath is the burst-mode forwarding fast path: an immutable,
// compiled snapshot of a switchsim.Switch's three tables (microflow exact
// match, prioritised TCAM, table-miss default) published behind an
// atomic.Pointer and swapped whenever the switch's rule tables mutate,
// plus a multi-worker engine that drives packet bursts through a whole
// topology with zero shared locks in steady state.
//
// The design follows production burst-oriented routers (per-worker
// pipelines over immutable per-worker FIB views) and the control/data
// decoupling the paper's architecture assumes: data-plane workers
// classify from local snapshots; the control plane publishes new tables
// by bumping the switch's generation, never by taking a lock the workers
// share. The differential guarantee — enforced by property tests, a fuzz
// target and the -race swap stress — is that every burst verdict equals
// the verdict of the single-packet switchsim.Process walk over the same
// tables, including the header rewrites applied to the packet.
package fastpath

import (
	"repro/internal/packet"
	"repro/internal/switchsim"
)

// anyPort mirrors switchsim.AnyPort in the compiled matcher.
const anyPort = switchsim.AnyPort

// Verdict is the outcome of one packet's pipeline walk through a compiled
// snapshot. It carries the matched rule's ID instead of a pointer so burst
// results stay flat and allocation-free; Rule is 0 on a table miss.
type Verdict struct {
	Rule         switchsim.RuleID
	Output       int // egress port, -1 if none
	Drop         bool
	ToController bool
	resubmit     bool
}

// cmatch is a compiled TCAM predicate: the normalised match flattened to
// mask-and-compare fields, so a cover test is straight-line integer code
// with no normalisation and no method dispatch per packet.
type cmatch struct {
	inPort          int
	srcVal, srcMask uint32
	dstVal, dstMask uint32
	sLo, sHi        uint16
	dLo, dHi        uint16
	proto           packet.Proto
}

// covers reports whether the compiled match accepts p arriving on inPort.
func (m *cmatch) covers(p *packet.Packet, inPort int) bool {
	if m.inPort != anyPort && m.inPort != inPort {
		return false
	}
	if uint32(p.Src)&m.srcMask != m.srcVal || uint32(p.Dst)&m.dstMask != m.dstVal {
		return false
	}
	if p.SrcPort < m.sLo || p.SrcPort > m.sHi || p.DstPort < m.dLo || p.DstPort > m.dHi {
		return false
	}
	return m.proto == 0 || m.proto == p.Proto
}

// caction is a compiled action: rewrite flags flattened from the pointer
// fields of switchsim.Action, the tag rewrites pre-shifted, and the
// rule-verdict drop bit precomputed.
type caction struct {
	output       int
	drop         bool // effective rule drop: Drop || (!punt && !resubmit && output < 0)
	toController bool
	resubmit     bool

	hasSrc, hasDst     bool
	src, dst           packet.Addr
	hasSPort, hasDPort bool
	sport, dport       uint16
	hasSTag, hasDTag   bool
	stag, dtag         uint16 // pre-shifted tag field values
	ephMask            uint16 // low bits preserved by tag rewrites
	hasDSCP            bool
	dscp               uint8
}

// compileAction flattens a switchsim.Action.
func compileAction(a switchsim.Action) caction {
	c := caction{
		output:       a.Output,
		drop:         a.Drop || (!a.ToController && !a.Resubmit && a.Output < 0),
		toController: a.ToController,
		resubmit:     a.Resubmit,
	}
	if a.SetSrc != nil {
		c.hasSrc, c.src = true, *a.SetSrc
	}
	if a.SetDst != nil {
		c.hasDst, c.dst = true, *a.SetDst
	}
	if a.SetSrcPort != nil {
		c.hasSPort, c.sport = true, *a.SetSrcPort
	}
	if a.SetDstPort != nil {
		c.hasDPort, c.dport = true, *a.SetDstPort
	}
	if a.SetSrcTag != nil || a.SetDstTag != nil {
		c.ephMask = uint16(1)<<a.TagEphBits - 1
	}
	if a.SetSrcTag != nil {
		c.hasSTag, c.stag = true, uint16(*a.SetSrcTag)<<a.TagEphBits
	}
	if a.SetDstTag != nil {
		c.hasDTag, c.dtag = true, uint16(*a.SetDstTag)<<a.TagEphBits
	}
	if a.SetDSCP != nil {
		c.hasDSCP, c.dscp = true, *a.SetDSCP
	}
	return c
}

// apply mutates the packet's headers exactly as switchsim.Action.apply.
func (c *caction) apply(p *packet.Packet) {
	if c.hasSrc {
		p.Src = c.src
	}
	if c.hasDst {
		p.Dst = c.dst
	}
	if c.hasSPort {
		p.SrcPort = c.sport
	}
	if c.hasDPort {
		p.DstPort = c.dport
	}
	if c.hasSTag {
		p.SrcPort = c.stag | p.SrcPort&c.ephMask
	}
	if c.hasDTag {
		p.DstPort = c.dtag | p.DstPort&c.ephMask
	}
	if c.hasDSCP {
		p.DSCP = c.dscp
	}
}

// flowEntry is one probe slot of the microflow index.
type flowEntry struct {
	hi, lo uint64
	slot   int32 // index into mrul; -1 marks an empty probe slot
}

// flowTable is an immutable open-addressed microflow index specialised
// for the five-tuple. The generic map's hashing was the single largest
// line in the burst profile; packing the key into two words and probing a
// flat power-of-two table with one multiply-mix hash is severalfold
// cheaper per lookup. The table is built once at compile time and only
// read afterwards — it is immutable after publish — so it needs no
// tombstones and no resizing.
type flowTable struct {
	ent  []flowEntry
	mask uint32
	n    int
}

// flowWords packs a packet's five-tuple into the index's two key words.
func flowWords(p *packet.Packet) (uint64, uint64) {
	return uint64(p.Src)<<32 | uint64(p.Dst),
		uint64(p.SrcPort)<<24 | uint64(p.DstPort)<<8 | uint64(p.Proto)
}

// flowKeyWords packs a switchsim flow key the same way.
func flowKeyWords(k packet.FlowKey) (uint64, uint64) {
	return uint64(k.Src)<<32 | uint64(k.Dst),
		uint64(k.SrcPort)<<24 | uint64(k.DstPort)<<8 | uint64(k.Proto)
}

// flowHash mixes the two key words into a probe start.
func flowHash(hi, lo uint64) uint32 {
	x := hi ^ lo*0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xd6e8feb86659fd93
	x ^= x >> 32
	return uint32(x)
}

// init sizes the table for n flows at a <=50% load factor; init
// constructs flowTable state before the enclosing snapshot publishes.
func (t *flowTable) init(n int) {
	size := 8
	for size < 2*n {
		size <<= 1
	}
	t.ent = make([]flowEntry, size)
	t.mask = uint32(size - 1)
	for i := range t.ent {
		t.ent[i].slot = -1
	}
}

// insert adds a key during compilation (duplicates overwrite); insert
// constructs flowTable state before the enclosing snapshot publishes.
func (t *flowTable) insert(hi, lo uint64, slot int32) {
	i := flowHash(hi, lo) & t.mask
	for t.ent[i].slot >= 0 {
		if t.ent[i].hi == hi && t.ent[i].lo == lo {
			t.ent[i].slot = slot
			return
		}
		i = (i + 1) & t.mask
	}
	t.ent[i] = flowEntry{hi: hi, lo: lo, slot: slot}
	t.n++
}

// find probes for a key; linear probing, guaranteed to terminate because
// the load factor leaves empty slots.
func (t *flowTable) find(hi, lo uint64) (int32, bool) {
	i := flowHash(hi, lo) & t.mask
	for {
		e := &t.ent[i]
		if e.slot < 0 {
			return 0, false
		}
		if e.hi == hi && e.lo == lo {
			return e.slot, true
		}
		i = (i + 1) & t.mask
	}
}

// crule is one compiled rule: match, action, the live switchsim rule it
// was compiled from (for traffic-counter attribution), and its slot in
// the snapshot's flat rule numbering (microflows first, then TCAM).
type crule struct {
	id   switchsim.RuleID
	m    cmatch
	act  caction
	live *switchsim.Rule
	slot int32
}

// ruleAcc accumulates one burst's traffic against one compiled rule.
type ruleAcc struct {
	pkts, bytes uint64
}

// tally accumulates one burst's pipeline outcomes and per-rule traffic;
// flushed once per burst to the source switch (AccountBurst plus one
// atomic counter update per touched rule) and the fastpath telemetry.
// Batching here is what keeps the hot path free of per-packet atomics.
type tally struct {
	stats   switchsim.BurstStats
	acc     []ruleAcc // indexed by crule slot; entries zero unless touched
	touched []int32
}

// ensure sizes the per-rule accumulator for a snapshot with n slots.
// Entries are kept zeroed by flush, so re-slicing within capacity is safe.
func (t *tally) ensure(n int) {
	if cap(t.acc) < n {
		//lint:ignore hotpath grows only when a recompiled snapshot gains slots; steady state re-slices
		t.acc = make([]ruleAcc, n)
	}
	t.acc = t.acc[:n]
}

// account attributes one packet of payload bytes to a rule slot.
func (t *tally) account(slot int32, payload int) {
	a := &t.acc[slot]
	if a.pkts == 0 {
		t.touched = append(t.touched, slot)
	}
	a.pkts++
	a.bytes += uint64(payload) + 24
}

// Snapshot is the compiled state of one switch's tables at a single
// generation; it is immutable after publish. All lookups are read-only;
// the only mutation a lookup performs outside its own packet is the
// atomic traffic counter on the live rules.
type Snapshot struct {
	// Gen is the switch generation the snapshot was compiled at. A FIB
	// serves the snapshot only while the switch still reports the same
	// generation; any Apply/ClearTCAM/Install/Remove since makes it
	// stale, detected rather than silently served.
	Gen uint64

	micro flowTable // flow five-tuple -> index into mrul
	mrul  []crule   // compiled microflow entries
	tcam  []crule   // priority-sorted (same order as the switch)
	miss  caction
	// missDrop is the table-miss verdict's drop bit; the miss formula
	// ignores Resubmit, unlike rule verdicts, so it is compiled apart.
	missDrop bool
	src      *switchsim.Switch
}

// Compile flattens the switch's current tables into an immutable snapshot.
//
// hotpath: cold
func Compile(sw *switchsim.Switch) *Snapshot {
	v := sw.View()
	s := &Snapshot{
		Gen:      v.Gen,
		mrul:     make([]crule, 0, len(v.Micro)),
		tcam:     make([]crule, 0, len(v.Ordered)),
		miss:     compileAction(v.Miss),
		missDrop: v.Miss.Drop || (!v.Miss.ToController && v.Miss.Output < 0),
		src:      sw,
	}
	s.micro.init(len(v.Micro))
	for key, r := range v.Micro {
		hi, lo := flowKeyWords(key)
		s.micro.insert(hi, lo, int32(len(s.mrul)))
		s.mrul = append(s.mrul, compileRule(r, int32(len(s.mrul))))
	}
	for i, r := range v.Ordered {
		s.tcam = append(s.tcam, compileRule(r, int32(len(s.mrul)+i)))
	}
	return s
}

// slots reports the snapshot's flat rule count (microflows plus TCAM).
func (s *Snapshot) slots() int { return len(s.mrul) + len(s.tcam) }

// ruleAt returns the compiled rule in a flat slot.
func (s *Snapshot) ruleAt(slot int32) *crule {
	if int(slot) < len(s.mrul) {
		return &s.mrul[slot]
	}
	return &s.tcam[int(slot)-len(s.mrul)]
}

// flush drains a burst's tallies: per-rule traffic to the live rules'
// atomic counters, pipeline stats to the switch, and resets t for reuse.
func (s *Snapshot) flush(t *tally) {
	for _, slot := range t.touched {
		a := &t.acc[slot]
		s.ruleAt(slot).live.AccountN(a.pkts, a.bytes)
		*a = ruleAcc{}
	}
	t.touched = t.touched[:0]
	s.src.AccountBurst(t.stats)
	t.stats = switchsim.BurstStats{}
}

// compileRule flattens one live rule. The rule's match was normalised at
// install time, so the compiled port bounds are the effective ones.
func compileRule(r *switchsim.Rule, slot int32) crule {
	m := r.Match
	return crule{
		id:   r.ID,
		slot: slot,
		m: cmatch{
			inPort: m.InPort,
			srcVal: uint32(m.Src.Addr), srcMask: prefixMask(m.Src.Len),
			dstVal: uint32(m.Dst.Addr), dstMask: prefixMask(m.Dst.Len),
			sLo: m.SrcPortLo, sHi: m.SrcPortHi,
			dLo: m.DstPortLo, dHi: m.DstPortHi,
			proto: m.Proto,
		},
		act:  compileAction(r.Action),
		live: r,
	}
}

// prefixMask is the network mask of a CIDR length.
func prefixMask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - length)
}

// Switch returns the switch the snapshot was compiled from.
func (s *Snapshot) Switch() *switchsim.Switch { return s.src }

// NumRules reports compiled TCAM entries (microflows excluded).
func (s *Snapshot) NumRules() int { return len(s.tcam) }

// NumMicroflows reports compiled exact-match entries.
func (s *Snapshot) NumMicroflows() int { return len(s.mrul) }

// exec applies one compiled rule to the packet and builds its verdict,
// attributing traffic to the burst tally (flushed to the live rules'
// atomic counters once per burst).
func (s *Snapshot) exec(r *crule, p *packet.Packet, t *tally) Verdict {
	t.account(r.slot, len(p.Payload))
	r.act.apply(p)
	return Verdict{
		Rule:         r.id,
		Output:       r.act.output,
		Drop:         r.act.drop,
		ToController: r.act.toController,
		resubmit:     r.act.resubmit,
	}
}

// Lookup runs one packet through the compiled pipeline, mirroring
// switchsim.Process step for step: microflow exact match first, then the
// TCAM in priority order with at most four resubmits, then the table-miss
// action. Rewrites are applied to p in place. The burst tallies accrue in
// t; callers flush them to the switch once per burst.
func (s *Snapshot) lookup(p *packet.Packet, inPort int, t *tally) Verdict {
	t.stats.Packets++

	var v Verdict
	matched := false
	// The empty-table guard skips the five-tuple hash entirely on core
	// and gateway switches, which never hold microflows.
	if s.micro.n == 0 {
		t.stats.MicroMiss++
	} else if i, ok := s.micro.find(flowWords(p)); ok {
		t.stats.MicroHit++
		v = s.exec(&s.mrul[i], p, t)
		matched = true
	} else {
		t.stats.MicroMiss++
	}
	for depth := 0; depth < 4; depth++ {
		if matched && !v.resubmit {
			return s.finish(v, t)
		}
		matched = false
		for i := range s.tcam {
			if s.tcam[i].m.covers(p, inPort) {
				t.stats.TCAMHit++
				v = s.exec(&s.tcam[i], p, t)
				matched = true
				break
			}
		}
		if !matched {
			break
		}
	}
	if matched {
		return s.finish(v, t)
	}
	t.stats.Miss++
	v = Verdict{Output: -1}
	s.miss.apply(p)
	v.Drop = s.missDrop
	v.ToController = s.miss.toController
	v.Output = s.miss.output
	return s.finish(v, t)
}

// finish tallies the packet's final outcome.
func (s *Snapshot) finish(v Verdict, t *tally) Verdict {
	switch {
	case v.ToController:
		t.stats.Punt++
	case v.Drop:
		t.stats.Drop++
	}
	return v
}
