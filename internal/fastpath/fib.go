package fastpath

import (
	"sync/atomic"

	"repro/internal/packet"
	"repro/internal/switchsim"
)

// FIB publishes the compiled snapshot of one switch behind an atomic
// pointer. Readers acquire the current snapshot with one atomic load plus
// one atomic generation check; a stale snapshot (the switch mutated since
// it was compiled) is never served — Acquire recompiles and swaps it with
// a compare-and-swap, so concurrent acquirers converge on the newest
// generation without any lock.
type FIB struct {
	sw   *switchsim.Switch
	snap atomic.Pointer[Snapshot]
	o    *fpObs
}

// NewFIB wraps a switch. The first Acquire compiles the initial snapshot.
func NewFIB(sw *switchsim.Switch) *FIB {
	return &FIB{sw: sw}
}

// Switch returns the wrapped switch.
func (f *FIB) Switch() *switchsim.Switch { return f.sw }

// instrument attaches telemetry; see Net/Engine instrumentation.
func (f *FIB) instrument(o *fpObs) { f.o = o }

// Acquire returns a snapshot that is current as of the call: its
// generation equals the switch's at the moment of the check. Steady state
// is two atomic loads; after a table mutation the first acquirer pays one
// compile and publishes for everyone.
//
// hotpath: no alloc, no lock
func (f *FIB) Acquire() *Snapshot {
	cur := f.snap.Load()
	gen := f.sw.Generation()
	if cur != nil && cur.Gen == gen {
		return cur
	}
	if cur != nil {
		f.o.stale()
	}
	ns := Compile(f.sw)
	f.o.compiled()
	for {
		cur = f.snap.Load()
		if cur != nil && cur.Gen >= ns.Gen {
			// Someone published the same or a newer generation first.
			return cur
		}
		if f.snap.CompareAndSwap(cur, ns) {
			return ns
		}
	}
}

// Proc is one worker's processing handle on a FIB: it owns the reusable
// verdict scratch and the burst tally, so steady-state burst processing
// allocates nothing and shares no mutable state with other workers.
type Proc struct {
	fib      *FIB
	verdicts []Verdict
	t        tally
}

// NewProc returns a processing handle. Each concurrent worker needs its
// own; handles are cheap.
func (f *FIB) NewProc() *Proc {
	return &Proc{fib: f}
}

// ProcessBurst runs a burst of packets arriving on inPort through the
// switch's compiled tables: the snapshot is acquired once for the whole
// burst, verdicts land in the handle's reusable scratch (valid until the
// next call), and switch accounting plus telemetry flush once per burst.
// Header rewrites are applied to the packets in place, exactly as the
// single-packet Process path would.
//
// hotpath: no alloc, no lock
func (p *Proc) ProcessBurst(pkts []*packet.Packet, inPort int) []Verdict {
	snap := p.fib.Acquire()
	if cap(p.verdicts) < len(pkts) {
		//lint:ignore hotpath scratch growth on the first oversized burst only; steady state reuses it
		p.verdicts = make([]Verdict, len(pkts))
	}
	p.verdicts = p.verdicts[:len(pkts)]
	//lint:ignore hotpath accumulator grows only when a recompiled snapshot gains slots (see tally.ensure)
	p.t.ensure(snap.slots())
	for i, pkt := range pkts {
		p.verdicts[i] = snap.lookup(pkt, inPort, &p.t)
	}
	snap.flush(&p.t)
	p.fib.o.burst(len(pkts))
	return p.verdicts
}
