package fastpath

import (
	"repro/internal/obs"
)

// fpObs is the fast path's telemetry: snapshot lifecycle (compiles and
// stale detections), burst shape, and walk outcomes. A nil *fpObs is a
// no-op, so uninstrumented nets run at zero cost; every hot-path update
// is an atomic add or a fixed-bucket histogram observe — 0 allocs.
type fpObs struct {
	compile  *obs.Counter   // snapshots compiled
	staleHit *obs.Counter   // stale snapshots detected (generation moved)
	bursts   *obs.Counter   // bursts processed (per-switch acquisitions)
	burstSz  *obs.Histogram // burst sizes in packets
	pkts     *obs.Counter   // packets entering engine walks
	slow     *obs.Counter   // packets handed to the slow path
	looped   *obs.Counter   // packets exceeding the hop budget
}

// newFPObs registers the fast path's series on reg; nil reg returns nil.
func newFPObs(reg *obs.Registry) *fpObs {
	if reg == nil {
		return nil
	}
	return &fpObs{
		compile:  reg.Counter("fastpath.snapshot.compile"),
		staleHit: reg.Counter("fastpath.snapshot.stale"),
		bursts:   reg.Counter("fastpath.bursts"),
		burstSz:  reg.Histogram("fastpath.burst.size", 1, 2, 4, 8, 16, 32, 64, 128, 256),
		pkts:     reg.Counter("fastpath.packets"),
		slow:     reg.Counter("fastpath.slowpath"),
		looped:   reg.Counter("fastpath.looped"),
	}
}

func (o *fpObs) compiled() {
	if o != nil {
		o.compile.Inc()
	}
}

func (o *fpObs) stale() {
	if o != nil {
		o.staleHit.Inc()
	}
}

func (o *fpObs) burst(n int) {
	if o != nil {
		o.bursts.Inc()
		o.burstSz.Observe(int64(n))
	}
}

func (o *fpObs) walked(n int) {
	if o != nil {
		o.pkts.Add(uint64(n))
	}
}

func (o *fpObs) slowPath() {
	if o != nil {
		o.slow.Inc()
	}
}

func (o *fpObs) loop() {
	if o != nil {
		o.looped.Inc()
	}
}
