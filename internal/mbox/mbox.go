// Package mbox implements SoftCell's commodity middleboxes (§2.1): stateful
// packet-processing functions deployed as instances attached to switches.
// Stateful boxes require both directions of a connection to traverse the
// same instance (§5.1 "policy consistency"); every box here tracks
// per-connection state and counts a violation when it sees mid-connection
// traffic it has no state for, which is how the tests and the mobility
// experiments detect consistency breaches.
package mbox

import (
	"fmt"
	"sync"

	"repro/internal/packet"
	"repro/internal/topo"
)

// Direction orients a packet relative to the cellular core.
type Direction uint8

// Directions.
const (
	Upstream   Direction = iota // UE -> Internet
	Downstream                  // Internet -> UE
)

func (d Direction) String() string {
	if d == Upstream {
		return "up"
	}
	return "down"
}

// Middlebox is one deployed instance of a packet-processing function.
type Middlebox interface {
	// Func is the function name ("firewall", "transcoder", ...).
	Func() string
	// Instance is the topology instance this box realises.
	Instance() topo.MBInstanceID
	// Process handles one packet, possibly rewriting it. It returns false
	// to drop the packet.
	Process(p *packet.Packet, dir Direction) bool
	// Stats returns a snapshot of the box's counters.
	Stats() Stats
}

// Stats are a middlebox's observability counters.
type Stats struct {
	Packets     uint64
	Dropped     uint64
	Connections uint64
	// Violations counts packets that arrived mid-connection with no local
	// state — the signature of a policy-consistency breach under mobility.
	Violations uint64
}

// connTable is the shared stateful-connection bookkeeping: it records which
// connections this instance owns and flags unknown mid-stream packets.
type connTable struct {
	mu    sync.Mutex
	conns map[packet.FlowKey]*connState
	stats Stats
}

type connState struct {
	firstDir Direction
	packets  uint64
}

func newConnTable() *connTable {
	return &connTable{conns: make(map[packet.FlowKey]*connState)}
}

// observe registers a packet against the connection table. openOK says
// whether this packet may legitimately open a new connection (e.g. an
// upstream first packet); when it may not and no state exists, the packet is
// flagged as a consistency violation (but still tracked so one breach is
// counted once per connection, not once per packet).
func (ct *connTable) observe(p *packet.Packet, dir Direction, openOK bool) (isNew, violation bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.stats.Packets++
	key := p.Flow().Canonical()
	st, ok := ct.conns[key]
	if !ok {
		isNew = true
		violation = !openOK
		if violation {
			ct.stats.Violations++
		} else {
			ct.stats.Connections++
		}
		st = &connState{firstDir: dir}
		ct.conns[key] = st
	}
	st.packets++
	return isNew, violation
}

func (ct *connTable) drop() {
	ct.mu.Lock()
	ct.stats.Dropped++
	ct.mu.Unlock()
}

func (ct *connTable) snapshot() Stats {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.stats
}

// numConns reports live connection entries.
func (ct *connTable) numConns() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.conns)
}

// base carries the identity shared by all boxes.
type base struct {
	fn   string
	inst topo.MBInstanceID
	ct   *connTable
}

func (b *base) Func() string                { return b.fn }
func (b *base) Instance() topo.MBInstanceID { return b.inst }
func (b *base) Stats() Stats                { return b.ct.snapshot() }
func (b *base) NumConnections() int         { return b.ct.numConns() }
func (b *base) String() string              { return fmt.Sprintf("%s#%d", b.fn, b.inst) }

// Firewall admits connections initiated from inside (upstream first packet)
// and drops unsolicited downstream traffic.
type Firewall struct{ base }

// NewFirewall builds a firewall instance.
func NewFirewall(inst topo.MBInstanceID) *Firewall {
	return &Firewall{base{fn: "firewall", inst: inst, ct: newConnTable()}}
}

// Process implements Middlebox.
func (f *Firewall) Process(p *packet.Packet, dir Direction) bool {
	isNew, _ := f.ct.observe(p, dir, dir == Upstream)
	if isNew && dir == Downstream {
		// Unsolicited inbound: reject and forget so a later legitimate
		// upstream opener is not mistaken for an established connection.
		f.ct.mu.Lock()
		delete(f.ct.conns, p.Flow().Canonical())
		f.ct.stats.Violations-- // unsolicited inbound is policy, not breach
		f.ct.stats.Dropped++
		f.ct.mu.Unlock()
		return false
	}
	return true
}

// Transcoder models a video transcoder: it must see a connection's upstream
// setup before it can process downstream media (it builds codec context),
// and it shrinks downstream payloads.
type Transcoder struct {
	base
	// Ratio numerator/denominator for payload reduction.
	num, den int
}

// NewTranscoder builds a transcoder instance.
func NewTranscoder(inst topo.MBInstanceID) *Transcoder {
	return &Transcoder{base: base{fn: "transcoder", inst: inst, ct: newConnTable()}, num: 1, den: 2}
}

// Process implements Middlebox.
func (t *Transcoder) Process(p *packet.Packet, dir Direction) bool {
	_, violation := t.ct.observe(p, dir, dir == Upstream)
	if violation {
		// No codec context: a consistency breach. The box still forwards
		// (transparent failure) but the violation counter records it.
		return true
	}
	if dir == Downstream && len(p.Payload) > 0 {
		p.Payload = p.Payload[:len(p.Payload)*t.num/t.den]
	}
	return true
}

// EchoCanceller models the voice echo-cancellation box of Table 1: pure
// stateful pass-through whose value is in the consistency tracking.
type EchoCanceller struct{ base }

// NewEchoCanceller builds an echo-cancellation instance.
func NewEchoCanceller(inst topo.MBInstanceID) *EchoCanceller {
	return &EchoCanceller{base{fn: "echo-cancel", inst: inst, ct: newConnTable()}}
}

// Process implements Middlebox.
func (e *EchoCanceller) Process(p *packet.Packet, dir Direction) bool {
	e.ct.observe(p, dir, dir == Upstream)
	return true
}

// IDS models an intrusion-detection box. It groups flows by UE — which is
// only possible because the LocIP carries a UE ID (§3.1 "Aggregation by
// UE") — and raises an alert when one UE opens more than FlowLimit
// connections.
type IDS struct {
	base
	plan      packet.Plan
	FlowLimit int

	mu      sync.Mutex
	perUE   map[packet.Addr]int // LocIP (BS+UE) -> live flow count
	Alerts  uint64
	blocked map[packet.Addr]bool
}

// NewIDS builds an IDS instance using plan to extract UE identity.
func NewIDS(inst topo.MBInstanceID, plan packet.Plan) *IDS {
	return &IDS{
		base:      base{fn: "ids", inst: inst, ct: newConnTable()},
		plan:      plan,
		FlowLimit: 1000,
		perUE:     make(map[packet.Addr]int),
		blocked:   make(map[packet.Addr]bool),
	}
}

// ueAddr extracts the UE's LocIP from whichever end of the packet is inside
// the carrier block.
func (i *IDS) ueAddr(p *packet.Packet, dir Direction) (packet.Addr, bool) {
	a := p.Src
	if dir == Downstream {
		a = p.Dst
	}
	if _, _, ok := i.plan.Split(a); !ok {
		return 0, false
	}
	return a, true
}

// Process implements Middlebox.
func (i *IDS) Process(p *packet.Packet, dir Direction) bool {
	isNew, _ := i.ct.observe(p, dir, true) // IDS can pick up flows mid-stream
	ue, ok := i.ueAddr(p, dir)
	if !ok {
		return true
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.blocked[ue] {
		i.ct.drop()
		return false
	}
	if isNew {
		i.perUE[ue]++
		if i.perUE[ue] > i.FlowLimit {
			i.Alerts++
			i.blocked[ue] = true
			i.ct.drop()
			return false
		}
	}
	return true
}

// UEFlows reports the live flow count the IDS attributes to a LocIP.
func (i *IDS) UEFlows(ue packet.Addr) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.perUE[ue]
}

// NAT translates between internal LocIPs and a public pool so Internet
// servers cannot correlate a UE's address with its location (§4.1). Every
// *flow* gets a fresh public (address, port) binding.
type NAT struct {
	base
	pool     packet.Prefix // public pool, e.g. 198.51.100.0/24
	mu       sync.Mutex
	next     uint32
	nextPort uint16
	out      map[packet.FlowKey]natBinding // internal upstream key -> binding
	in       map[natKey]natBinding         // public (addr,port,proto) -> binding
}

type natKey struct {
	addr  packet.Addr
	port  uint16
	proto packet.Proto
}

type natBinding struct {
	pub      natKey
	internal packet.FlowKey // the original upstream five-tuple
}

// NewNAT builds a NAT instance allocating from pool.
func NewNAT(inst topo.MBInstanceID, pool packet.Prefix) *NAT {
	return &NAT{
		base: base{fn: "nat", inst: inst, ct: newConnTable()},
		pool: pool,
		out:  make(map[packet.FlowKey]natBinding),
		in:   make(map[natKey]natBinding),
	}
}

// Process implements Middlebox. Upstream packets get their source rewritten
// to a fresh public binding; downstream packets to a known binding get their
// destination restored, unknown ones are dropped.
func (n *NAT) Process(p *packet.Packet, dir Direction) bool {
	n.ct.observe(p, dir, dir == Upstream)
	n.mu.Lock()
	defer n.mu.Unlock()
	if dir == Upstream {
		key := p.Flow()
		b, ok := n.out[key]
		if !ok {
			hostBits := 32 - n.pool.Len
			addr := n.pool.Addr | packet.Addr(n.next%(1<<hostBits))
			if n.nextPort < 1024 {
				n.nextPort = 1024
			}
			b = natBinding{
				pub:      natKey{addr: addr, port: n.nextPort, proto: p.Proto},
				internal: key,
			}
			n.nextPort++
			if n.nextPort == 0 { // wrapped: move to the next pool address
				n.next++
				n.nextPort = 1024
			}
			n.out[key] = b
			n.in[b.pub] = b
		}
		p.Src = b.pub.addr
		p.SrcPort = b.pub.port
		return true
	}
	key := natKey{addr: p.Dst, port: p.DstPort, proto: p.Proto}
	b, ok := n.in[key]
	if !ok {
		n.ct.drop()
		return false
	}
	p.Dst = b.internal.Src
	p.DstPort = b.internal.SrcPort
	return true
}

// Bindings reports the number of live NAT entries.
func (n *NAT) Bindings() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.out)
}

// Factory builds a middlebox instance for a function name.
type Factory func(inst topo.MBInstanceID) Middlebox

// Registry maps function names to factories. The zero value is unusable;
// call NewRegistry.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns a registry pre-loaded with the built-in functions
// (firewall, transcoder, echo-cancel, ids, nat). plan parameterises the
// IDS's UE extraction; natPool the NAT's public pool.
func NewRegistry(plan packet.Plan, natPool packet.Prefix) *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	r.Register("firewall", func(i topo.MBInstanceID) Middlebox { return NewFirewall(i) })
	r.Register("transcoder", func(i topo.MBInstanceID) Middlebox { return NewTranscoder(i) })
	r.Register("echo-cancel", func(i topo.MBInstanceID) Middlebox { return NewEchoCanceller(i) })
	r.Register("ids", func(i topo.MBInstanceID) Middlebox { return NewIDS(i, plan) })
	r.Register("nat", func(i topo.MBInstanceID) Middlebox { return NewNAT(i, natPool) })
	return r
}

// Register adds (or replaces) a factory.
func (r *Registry) Register(fn string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[fn] = f
}

// Build instantiates the named function for a topology instance.
func (r *Registry) Build(fn string, inst topo.MBInstanceID) (Middlebox, error) {
	r.mu.RLock()
	f, ok := r.factories[fn]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mbox: unknown middlebox function %q", fn)
	}
	return f(inst), nil
}

// Functions lists the registered function names (unordered).
func (r *Registry) Functions() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for fn := range r.factories {
		out = append(out, fn)
	}
	return out
}
