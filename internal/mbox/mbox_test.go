package mbox

import (
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/topo"
)

var plan = packet.DefaultPlan

func upPkt(ue packet.Addr, sport uint16) *packet.Packet {
	return &packet.Packet{Src: ue, Dst: packet.AddrFrom4(93, 184, 216, 34),
		SrcPort: sport, DstPort: 443, Proto: packet.ProtoTCP}
}

func downPkt(ue packet.Addr, dport uint16) *packet.Packet {
	return &packet.Packet{Src: packet.AddrFrom4(93, 184, 216, 34), Dst: ue,
		SrcPort: 443, DstPort: dport, Proto: packet.ProtoTCP}
}

func TestFirewallAllowsEstablished(t *testing.T) {
	fw := NewFirewall(1)
	ue, _ := plan.LocIP(1, 10)
	if !fw.Process(upPkt(ue, 1000), Upstream) {
		t.Fatal("upstream opener should pass")
	}
	if !fw.Process(downPkt(ue, 1000), Downstream) {
		t.Fatal("return traffic should pass")
	}
	s := fw.Stats()
	if s.Connections != 1 || s.Packets != 2 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFirewallBlocksUnsolicited(t *testing.T) {
	fw := NewFirewall(1)
	ue, _ := plan.LocIP(1, 10)
	if fw.Process(downPkt(ue, 2000), Downstream) {
		t.Fatal("unsolicited inbound should be dropped")
	}
	s := fw.Stats()
	if s.Dropped != 1 || s.Violations != 0 || s.Connections != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// A later legitimate opener for the same five-tuple still works.
	if !fw.Process(upPkt(ue, 2000), Upstream) {
		t.Fatal("later upstream opener should pass")
	}
	if !fw.Process(downPkt(ue, 2000), Downstream) {
		t.Fatal("established return should pass")
	}
}

func TestTranscoderShrinksDownstream(t *testing.T) {
	tc := NewTranscoder(2)
	ue, _ := plan.LocIP(1, 10)
	up := upPkt(ue, 3000)
	tc.Process(up, Upstream)
	down := downPkt(ue, 3000)
	down.Payload = make([]byte, 1000)
	if !tc.Process(down, Downstream) {
		t.Fatal("downstream should pass")
	}
	if len(down.Payload) != 500 {
		t.Fatalf("payload = %d bytes, want 500", len(down.Payload))
	}
	if tc.Stats().Violations != 0 {
		t.Fatal("no violation expected")
	}
}

func TestTranscoderFlagsMidStreamWithoutState(t *testing.T) {
	tc := NewTranscoder(2)
	ue, _ := plan.LocIP(1, 10)
	down := downPkt(ue, 3000)
	if !tc.Process(down, Downstream) {
		t.Fatal("transparent failure: still forwards")
	}
	if v := tc.Stats().Violations; v != 1 {
		t.Fatalf("Violations = %d, want 1", v)
	}
	// Second packet on the same broken connection is not double-counted.
	tc.Process(downPkt(ue, 3000), Downstream)
	if v := tc.Stats().Violations; v != 1 {
		t.Fatalf("Violations = %d, want 1 (per connection)", v)
	}
}

func TestEchoCancellerTracksState(t *testing.T) {
	ec := NewEchoCanceller(3)
	ue, _ := plan.LocIP(2, 5)
	if !ec.Process(upPkt(ue, 4000), Upstream) || !ec.Process(downPkt(ue, 4000), Downstream) {
		t.Fatal("pass-through expected")
	}
	if ec.Stats().Connections != 1 {
		t.Fatalf("Connections = %d", ec.Stats().Connections)
	}
	if ec.NumConnections() != 1 {
		t.Fatalf("NumConnections = %d", ec.NumConnections())
	}
}

func TestIDSCountsPerUE(t *testing.T) {
	ids := NewIDS(4, plan)
	ids.FlowLimit = 3
	ue, _ := plan.LocIP(1, 10)
	for i := 0; i < 3; i++ {
		if !ids.Process(upPkt(ue, uint16(5000+i)), Upstream) {
			t.Fatalf("flow %d should pass", i)
		}
	}
	if ids.UEFlows(ue) != 3 {
		t.Fatalf("UEFlows = %d", ids.UEFlows(ue))
	}
	// Fourth flow trips the limit and the UE is blocked.
	if ids.Process(upPkt(ue, 5004), Upstream) {
		t.Fatal("flow over limit should drop")
	}
	if ids.Alerts != 1 {
		t.Fatalf("Alerts = %d", ids.Alerts)
	}
	if ids.Process(upPkt(ue, 5005), Upstream) {
		t.Fatal("blocked UE should stay blocked")
	}
	// Another UE at the same base station is unaffected — this is exactly
	// what the per-UE ID in the address enables (§3.1).
	other, _ := plan.LocIP(1, 11)
	if !ids.Process(upPkt(other, 5000), Upstream) {
		t.Fatal("other UE should pass")
	}
}

func TestIDSIgnoresNonCarrierTraffic(t *testing.T) {
	ids := NewIDS(4, plan)
	p := &packet.Packet{Src: packet.AddrFrom4(1, 2, 3, 4), Dst: packet.AddrFrom4(5, 6, 7, 8),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	if !ids.Process(p, Upstream) {
		t.Fatal("non-carrier traffic passes untracked")
	}
}

func TestNATRoundTrip(t *testing.T) {
	pool := packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24)
	nat := NewNAT(5, pool)
	ue, _ := plan.LocIP(1, 10)
	up := upPkt(ue, 6000)
	origDst, origDstPort := up.Dst, up.DstPort
	if !nat.Process(up, Upstream) {
		t.Fatal("upstream should pass")
	}
	if up.Src == ue {
		t.Fatal("source should be rewritten")
	}
	if !pool.Contains(up.Src) {
		t.Fatalf("public address %s outside pool %s", up.Src, pool)
	}
	// The server replies to the public binding.
	reply := &packet.Packet{Src: origDst, Dst: up.Src, SrcPort: origDstPort,
		DstPort: up.SrcPort, Proto: packet.ProtoTCP}
	if !nat.Process(reply, Downstream) {
		t.Fatal("downstream should pass")
	}
	if reply.Dst != ue || reply.DstPort != 6000 {
		t.Fatalf("destination not restored: %s", reply.Flow())
	}
	if nat.Bindings() != 1 {
		t.Fatalf("Bindings = %d", nat.Bindings())
	}
}

func TestNATFreshBindingPerFlow(t *testing.T) {
	pool := packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24)
	nat := NewNAT(5, pool)
	ue, _ := plan.LocIP(1, 10)
	a := upPkt(ue, 6000)
	b := upPkt(ue, 6001)
	nat.Process(a, Upstream)
	nat.Process(b, Upstream)
	if a.SrcPort == b.SrcPort && a.Src == b.Src {
		t.Fatal("distinct flows must get distinct public bindings")
	}
	// Same flow keeps its binding.
	c := upPkt(ue, 6000)
	nat.Process(c, Upstream)
	if c.Src != a.Src || c.SrcPort != a.SrcPort {
		t.Fatal("same flow should reuse its binding")
	}
}

func TestNATDropsUnknownInbound(t *testing.T) {
	pool := packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24)
	nat := NewNAT(5, pool)
	p := downPkt(packet.AddrFrom4(198, 51, 100, 7), 9999)
	if nat.Process(p, Downstream) {
		t.Fatal("unknown inbound should drop")
	}
	if nat.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", nat.Stats().Dropped)
	}
}

func TestRegistryBuild(t *testing.T) {
	pool := packet.NewPrefix(packet.AddrFrom4(198, 51, 100, 0), 24)
	r := NewRegistry(plan, pool)
	for _, fn := range []string{"firewall", "transcoder", "echo-cancel", "ids", "nat"} {
		mb, err := r.Build(fn, 7)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if mb.Func() != fn || mb.Instance() != 7 {
			t.Fatalf("%s: identity wrong: %s #%d", fn, mb.Func(), mb.Instance())
		}
	}
	if _, err := r.Build("nonsense", 1); err == nil {
		t.Fatal("unknown function should fail")
	}
	if len(r.Functions()) != 5 {
		t.Fatalf("Functions = %v", r.Functions())
	}
	// Custom registration overrides.
	r.Register("firewall", func(i topo.MBInstanceID) Middlebox { return NewEchoCanceller(i) })
	mb, _ := r.Build("firewall", 1)
	if mb.Func() != "echo-cancel" {
		t.Fatal("override should take effect")
	}
}

func TestConcurrentMiddleboxAccess(t *testing.T) {
	fw := NewFirewall(1)
	ue, _ := plan.LocIP(1, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fw.Process(upPkt(ue, uint16(g*100+i)), Upstream)
				fw.Stats()
			}
		}(g)
	}
	wg.Wait()
	if fw.Stats().Connections != 800 {
		t.Fatalf("Connections = %d", fw.Stats().Connections)
	}
}
